# Convenience wrapper around dune.  `make check` is the one-stop gate:
# full build, the whole test suite (unit + property + cram), an
# end-to-end trace validation of the telemetry pipeline, and the
# fault-injection stress pass.

TRACE := /tmp/fecsynth-smoke.ndjson
SMOKE_SPEC := len_G = 1 && len_d(G[0]) = 4 && len_c(G[0]) = 3 && md(G[0]) = 3

# Bench regression gate: the current PR's baseline file, the (fast,
# deterministic) experiment subset it runs, and the tolerated drift.
BENCH_OUT := BENCH_pr6.json
BENCH_GATE_EXPERIMENTS := ablation-card ablation-cex multibit sat
BENCH_GATE_THRESHOLD := 25
# ns_per_prop is wall-clock-derived (unlike the exact iteration/conflict
# counters), so on this single-core container it wobbles with load; the
# trend gate for it uses a looser threshold that still catches a real
# solver regression (undoing the core rewrite would show +135%).
BENCH_GATE_NSPROP_THRESHOLD := 50
# One-PR waiver for the pr4 -> pr6 diff only: the CDCL core rewrite
# changed propagation order (binary implications now fire before watcher
# scans), which legitimately shifts the search trajectory on tiny
# instances; ablation-card/adder moved 32 -> 42 conflicts while every
# other deterministic counter stayed inside the threshold and corpus
# propagation throughput improved >2x.  Clear this when cutting the next
# baseline so the metric is gated again.
BENCH_GATE_WAIVED := ablation-card/adder/conflicts

LEDGER_SMOKE_DIR := /tmp/fecsynth-ledger-smoke

SERVE_SMOKE_DIR := /tmp/fecsynth-serve-smoke
# Heavier than SMOKE_SPEC on purpose: the cold CEGIS run must dwarf the
# cache hit's fixed cost (re-verification + one socket round trip) so
# the >= 10x speedup assertion is load-tolerant.
SERVE_SMOKE_SPEC := len_G = 1 && len_d(G[0]) = 11 && len_c(G[0]) = 5 && md(G[0]) = 4
# The daemon runs in the background while clients talk to it, so the
# smoke drives the built binary directly instead of letting concurrent
# `dune exec` invocations fight over the build lock.
FECSYNTH := _build/install/default/bin/fecsynth

# Chaos matrix budget: seeded SIGKILL-under-fault-injection trials
# against the serve daemon (see test/chaos.sh).  20 trials run in
# ~15 s; CI can shrink the matrix with FEC_CHAOS_ITERS.
FEC_CHAOS_ITERS ?= 20

.PHONY: all build test trace-smoke ledger-smoke serve-smoke obs-smoke stress chaos check bench bench-gate sat-bench clean

all: build

build:
	dune build

test: build
	dune runtest

# End-to-end: synthesize with tracing on, then require every trace line to
# parse and the expected event vocabulary to be present.
trace-smoke: build
	dune exec -- fecsynth synth --trace $(TRACE) --stats json -p '$(SMOKE_SPEC)' > /dev/null
	dune exec -- fecsynth trace-check $(TRACE)

# Resilience gate, three layers:
#   1. the randomized cross-check harness under stall-only injection
#      (stalls must never change an answer; crash/interrupt faults would
#      break the oracles' exception contract by design);
#   2. the resilience suite (supervisor, checkpoint, budget edges, the
#      20-trial seeded crash matrix);
#   3. the CLI under a crash + spurious-interrupt matrix through the
#      supervised portfolio path — every run must still decide.
stress: build
	FEC_FAULT_SPEC="seed=9,stall_ms=1,sat.solve.stall=0.01" dune exec test/test_fuzz.exe
	dune exec test/test_resilience.exe
	for seed in 1 2 3; do \
	  FEC_FAULT_SPEC="seed=$$seed,sat.solve.crash=0.05:max=2,worker.start.crash=0.5:max=1,ctx.check.interrupt=0.05:max=3" \
	  dune exec -- fecsynth synth --portfolio --jobs 3 -p '$(SMOKE_SPEC)' > /dev/null || exit 1; \
	done
	@echo "stress: OK"

# End-to-end over the run ledger: record two real runs into a sandboxed
# ledger, then require the whole runs family to read them back — list,
# trend (threshold set far above noise so only plumbing can fail) and the
# dashboard's structural validator.
ledger-smoke: build
	rm -rf $(LEDGER_SMOKE_DIR)
	FEC_LEDGER_DIR=$(LEDGER_SMOKE_DIR) dune exec -- fecsynth synth -p '$(SMOKE_SPEC)' > /dev/null
	FEC_LEDGER_DIR=$(LEDGER_SMOKE_DIR) dune exec -- fecsynth synth -p '$(SMOKE_SPEC)' > /dev/null
	FEC_LEDGER_DIR=$(LEDGER_SMOKE_DIR) dune exec -- fecsynth runs list
	FEC_LEDGER_DIR=$(LEDGER_SMOKE_DIR) dune exec -- fecsynth runs trend --metric wall_s --threshold 1000000
	FEC_LEDGER_DIR=$(LEDGER_SMOKE_DIR) dune exec -- fecsynth runs html --check
	@echo "ledger-smoke: OK"

# End-to-end over the daemon: serve on a sandboxed socket/cache/ledger,
# submit one spec twice, require the second answer to be a cache hit at
# least 10x faster than the cold run (wall_s as the session measured
# it), then SIGTERM and require a drained, clean exit with both runs in
# the ledger.
serve-smoke: build
	@set -e; \
	rm -rf $(SERVE_SMOKE_DIR); mkdir -p $(SERVE_SMOKE_DIR); \
	FEC_LEDGER_DIR=$(SERVE_SMOKE_DIR)/ledger FEC_CACHE_DIR=$(SERVE_SMOKE_DIR)/cache \
	  $(FECSYNTH) serve --socket $(SERVE_SMOKE_DIR)/serve.sock \
	  2> $(SERVE_SMOKE_DIR)/serve.log & \
	pid=$$!; \
	for i in $$(seq 50); do \
	  test -S $(SERVE_SMOKE_DIR)/serve.sock && break; sleep 0.1; \
	done; \
	$(FECSYNTH) submit --socket $(SERVE_SMOKE_DIR)/serve.sock \
	  -p '$(SERVE_SMOKE_SPEC)' > $(SERVE_SMOKE_DIR)/first.json; \
	$(FECSYNTH) submit --socket $(SERVE_SMOKE_DIR)/serve.sock \
	  -p '$(SERVE_SMOKE_SPEC)' > $(SERVE_SMOKE_DIR)/second.json; \
	grep -q '"cache_hit":false' $(SERVE_SMOKE_DIR)/first.json; \
	grep -q '"cache_hit":true' $(SERVE_SMOKE_DIR)/second.json; \
	kill -TERM $$pid; wait $$pid; \
	grep -q 'drained' $(SERVE_SMOKE_DIR)/serve.log; \
	test $$(FEC_LEDGER_DIR=$(SERVE_SMOKE_DIR)/ledger \
	  $(FECSYNTH) runs list --cache-hits | awk 'NR>1' | wc -l) -eq 1; \
	cold=$$(grep -o '"wall_s":[0-9.e+-]*' $(SERVE_SMOKE_DIR)/first.json | cut -d: -f2); \
	hit=$$(grep -o '"wall_s":[0-9.e+-]*' $(SERVE_SMOKE_DIR)/second.json | cut -d: -f2); \
	awk -v c="$$cold" -v h="$$hit" 'BEGIN { \
	  r = c / h; \
	  printf "serve-smoke: cold %.6fs, cached %.6fs (%.1fx)\n", c, h, r; \
	  exit !(r >= 10) }'
	@echo "serve-smoke: OK"

# Fault-tolerance gate for the daemon: SIGKILL it at seeded random
# phases while FEC_FAULT_SPEC tears at the wire/cache/worker layers,
# then require a clean takeover restart every time — no stale-socket or
# pidfile lockout, zero corrupt cache entries, orphaned tmp files
# scavenged, the ledger parseable with the killed run recovered as a
# "crash" record — plus a deadline-carrying request against a stalled
# worker answered "timeout" on the wire instead of hanging.
chaos: build
	FEC_CHAOS_ITERS=$(FEC_CHAOS_ITERS) FECSYNTH=$(FECSYNTH) sh test/chaos.sh

# Observability gate for the daemon: /metrics scrape monotone, /healthz
# flips to draining on SIGTERM, a stalled-then-reaped worker leaves a
# parseable postmortem carrying its request id, and `trace report
# --request` attributes >= 90% of the reaped request's wall time; the
# runtime lens must land gc_* series + fec_build_info in the
# exposition, a "runtime" section in the daemon's trace report, and
# >= 95% wall coverage on a one-shot --runtime-lens run, with the
# disabled path allocating nothing (see test/obs_smoke.sh).
obs-smoke: build
	FECSYNTH=$(FECSYNTH) sh test/obs_smoke.sh

check: build test trace-smoke ledger-smoke serve-smoke obs-smoke stress chaos bench-gate
	@echo "check: OK"

# Quick benchmark pass (shrunken workloads); writes $(BENCH_OUT).
bench: build
	FEC_BENCH_SCALE=100 dune exec bench/main.exe

# Solver-only benchmark over the committed DIMACS corpus.  Each instance
# runs under a per-instance conflict-budget timeout (FEC_SAT_TIMEOUT,
# seconds) and reports propagations/sec and conflicts/sec; the run
# self-records into the run ledger so `runs trend` can gate on
# ns_per_prop drift across checkouts.
sat-bench: build
	dune exec -- bench/main.exe sat

# Regression gate, two layers.  Layer 1 (pairwise): rerun the
# deterministic bench subset, write $(BENCH_OUT), and diff it against the
# newest *prior* committed baseline.  Wall-clock metrics are excluded
# (sub-millisecond instances make them pure noise); iteration and
# conflict counts must stay within $(BENCH_GATE_THRESHOLD)%.  With no
# prior baseline the run itself becomes the baseline and the gate passes.
# Layer 2 (trend): the bench run also records itself in the run ledger,
# so the gate ends by asking the ledger whether the latest iteration,
# conflict and ns_per_prop (SAT corpus propagation cost, lower is
# better) figures regressed against the median of all prior recorded
# bench runs — a single noisy baseline can no longer mask (or fake) a
# drift that pairwise diffing misses.
bench-gate: build
	@prev=$$(ls BENCH_*.json 2>/dev/null | grep -vx '$(BENCH_OUT)' | sort -V | tail -1); \
	FEC_BENCH_SCALE=100 FEC_BENCH_OUT=$(BENCH_OUT) \
	  dune exec -- bench/main.exe $(BENCH_GATE_EXPERIMENTS) > /dev/null; \
	if [ -n "$$prev" ]; then \
	  echo "bench-gate: diffing $$prev -> $(BENCH_OUT)"; \
	  dune exec -- fecsynth trace diff --threshold $(BENCH_GATE_THRESHOLD) \
	    --ignore wall_s \
	    $(foreach w,$(BENCH_GATE_WAIVED),--ignore $(w)) \
	    "$$prev" $(BENCH_OUT) || exit 1; \
	else \
	  echo "bench-gate: no prior BENCH_*.json; $(BENCH_OUT) is the new baseline"; \
	fi; \
	echo "bench-gate: ledger trend verdict"; \
	dune exec -- fecsynth runs trend --subcommand bench \
	  --metric iterations --threshold $(BENCH_GATE_THRESHOLD) || exit 1; \
	dune exec -- fecsynth runs trend --subcommand bench \
	  --metric conflicts --threshold $(BENCH_GATE_THRESHOLD) || exit 1; \
	dune exec -- fecsynth runs trend --subcommand bench \
	  --metric ns_per_prop --threshold $(BENCH_GATE_NSPROP_THRESHOLD) || exit 1

clean:
	dune clean
	rm -f $(TRACE)
