# Convenience wrapper around dune.  `make check` is the one-stop gate:
# full build, the whole test suite (unit + property + cram), and an
# end-to-end trace validation of the telemetry pipeline.

TRACE := /tmp/fecsynth-smoke.ndjson
SMOKE_SPEC := len_G = 1 && len_d(G[0]) = 4 && len_c(G[0]) = 3 && md(G[0]) = 3

.PHONY: all build test trace-smoke check bench clean

all: build

build:
	dune build

test: build
	dune runtest

# End-to-end: synthesize with tracing on, then require every trace line to
# parse and the expected event vocabulary to be present.
trace-smoke: build
	dune exec -- fecsynth synth --trace $(TRACE) --stats json -p '$(SMOKE_SPEC)' > /dev/null
	dune exec -- fecsynth trace-check $(TRACE)

check: build test trace-smoke
	@echo "check: OK"

# Quick benchmark pass (shrunken workloads); writes BENCH_pr2.json.
bench: build
	FEC_BENCH_SCALE=100 dune exec bench/main.exe

clean:
	dune clean
	rm -f $(TRACE)
