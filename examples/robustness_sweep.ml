(* A Figure-4-style robustness sweep: synthesize generators of increasing
   minimum distance for 4-bit data (the §4.2 experiment), then measure
   undetected-error counts on a binary symmetric channel and compare with
   the theoretical P_u.  Reduced word count so the example is fast; the
   bench harness runs the paper-scale version.

   Run with: dune exec examples/robustness_sweep.exe *)

let words = 500_000
let p = 0.1

let () =
  Printf.printf "synthesizing 4-bit-data generators, md 2..6 (minimal check bits)\n\n";
  Printf.printf "%-4s %-6s %-11s %-12s %-12s %-14s\n" "md" "checks" "iterations"
    ">=md flips" "theoretical" "undetected";
  List.iter
    (fun md ->
      match
        Synth.Optimize.minimize_check_len ~timeout:120.0 ~data_len:4 ~md ~check_lo:2
          ~check_hi:14 ()
      with
      | Synth.Report.Unsat_config _ | Synth.Report.Timed_out _
      | Synth.Report.Partial _ ->
          Printf.printf "%-4d (synthesis failed)\n" md
      | Synth.Report.Synthesized (r, _) ->
          let code = r.Synth.Optimize.code in
          let codec = Channel.Montecarlo.codec_of_code code in
          let mc =
            Channel.Montecarlo.run ~codec ~md ~words ~p ~seed:(0xFEC + md)
              (Channel.Montecarlo.uniform_data codec)
          in
          Printf.printf "%-4d %-6d %-11d %-12d %-12.0f %-14d\n" md
            r.Synth.Optimize.check_len r.Synth.Optimize.stats.Synth.Report.Stats.iterations
            mc.Channel.Montecarlo.flips_ge_md mc.Channel.Montecarlo.expected_flips_ge_md
            mc.Channel.Montecarlo.undetected)
    [ 2; 3; 4; 5; 6 ];
  print_endline "\nas in the paper's Figure 4: undetected errors collapse as md grows,";
  print_endline "while the >=md-flip count tracks the analytic P_u closely."
