(* Quickstart: build the classic Hamming (7,4) code, encode a nibble,
   corrupt it on a simulated channel, and watch the decoder repair it.

   Run with: dune exec examples/quickstart.exe *)

open Gf2

let () =
  (* the paper's Figure 2 generator *)
  let code = Lazy.force Hamming.Catalog.fig2_7_4 in
  Format.printf "Generator G (I | P):@.%a@.@." Hamming.Code.pp code;

  let data = Bitvec.of_string "0011" in
  let codeword = Hamming.Code.encode code data in
  Format.printf "data     = %a@." Bitvec.pp data;
  Format.printf "codeword = %a   (matches the paper's example)@.@." Bitvec.pp codeword;

  (* flip one bit, as a noisy link would *)
  let received = Bitvec.copy codeword in
  Bitvec.flip received 5;
  Format.printf "received = %a   (bit 5 flipped in transit)@." Bitvec.pp received;

  (match Hamming.Code.decode code received with
  | Hamming.Code.Corrected (recovered, position) ->
      Format.printf "decoder: single-bit error at position %d, data recovered = %a@.@."
        position Bitvec.pp recovered
  | Hamming.Code.Valid _ -> print_endline "decoder: no error?!"
  | Hamming.Code.Uncorrectable _ -> print_endline "decoder: uncorrectable?!");

  (* the same machinery, exactly, at line rate: mask-compiled codec *)
  let fast = Hamming.Fastcodec.compile code in
  let w = fast.Hamming.Fastcodec.encode 0b1100 in
  Format.printf "fast codec: encode 0b1100 -> 0b%s, syndrome %d@."
    (Bitvec.to_string (Bitvec.init 7 (fun i -> (w lsr (6 - i)) land 1 = 1)))
    (fast.Hamming.Fastcodec.syndrome w);

  (* how robust is this code on a 10%%-error channel? *)
  let p_u = Hamming.Robustness.undetected_error_probability code ~p:0.1 in
  Format.printf "P_u at p=0.1: %.6f (paper formula, section 2.2)@." p_u;

  (* now synthesize a better one: same data length, minimum distance 4 *)
  print_endline "\nsynthesizing a 4-bit-data generator with minimum distance 4 ...";
  match
    Synth.Optimize.minimize_check_len ~timeout:60.0 ~data_len:4 ~md:4 ~check_lo:2
      ~check_hi:14 ()
  with
  | Synth.Report.Synthesized (r, _) ->
      Format.printf "found one with %d check bits after %d CEGIS iterations:@.%a@."
        r.Synth.Optimize.check_len r.Synth.Optimize.stats.Synth.Report.Stats.iterations
        Hamming.Code.pp r.Synth.Optimize.code
  | Synth.Report.Unsat_config _ | Synth.Report.Timed_out _
  | Synth.Report.Partial _ -> print_endline "synthesis failed (unexpected)"
