(* Reproduce the paper's §4.1: formally verify that the 802.3df-family
   (128,120) Hamming generator has minimum distance 3, and that it does
   NOT have minimum distance 4 — using the SAT-based verifier (the
   paper's methodology) cross-checked against exact enumeration.

   Run with: dune exec examples/verify_8023df.exe *)

let () =
  let code = Lazy.force Hamming.Catalog.ieee_128_120 in
  Format.printf "verifying the (%d,%d) Hamming generator (802.3df inner FEC family)@.@."
    (Hamming.Code.block_len code) (Hamming.Code.data_len code);

  (* Claim 1: minimum distance >= 3 (SAT answers UNSAT: no light codeword) *)
  let r3 = Synth.Verify.min_distance_at_least ~method_:Synth.Verify.Sat code 3 in
  Format.printf "md >= 3 : %s   (SAT verifier, %.2f s)@."
    (if r3.Synth.Verify.holds then "VERIFIED" else "REFUTED")
    r3.Synth.Verify.elapsed;

  (* Claim 2 (the paper's negation experiment): md = 4 does NOT hold *)
  let r4 = Synth.Verify.min_distance_at_least ~method_:Synth.Verify.Sat code 4 in
  Format.printf "md >= 4 : %s   (SAT verifier, %.2f s)@."
    (if r4.Synth.Verify.holds then "VERIFIED" else "REFUTED")
    r4.Synth.Verify.elapsed;
  (match r4.Synth.Verify.witness with
  | Some d ->
      Format.printf "  witness data word of weight %d encodes to codeword weight %d@."
        (Gf2.Bitvec.popcount d)
        (Gf2.Bitvec.popcount (Hamming.Code.encode code d))
  | None -> ());

  (* cross-check with the exact combinatorial computation *)
  let exact = Hamming.Distance.min_distance code in
  Format.printf "@.exact minimum distance (weight enumeration): %d@." exact;

  (* and through the property language, as a user would write it *)
  let env = Spec.Eval.env_of_code code in
  let prop = Spec.Parse.prop "md(G[0]) = 3 && len_d(G[0]) = 120 && len_c(G[0]) = 8" in
  let r = Synth.Verify.property env prop in
  Format.printf "property %S : %s (%.2f s)@."
    (Spec.Ast.prop_to_string prop)
    (if r.Synth.Verify.holds then "HOLDS" else "FAILS")
    r.Synth.Verify.elapsed
