(* Reproduce the paper's §4.3 workflow end to end: profile how bit flips
   damage IEEE float32 values (Figure 1), derive criticality weights,
   synthesize a weighted two-generator split for the upper half, assemble
   the composite codec, and compare its robustness against the uniform
   alternatives of Table 2 — at a reduced Monte-Carlo scale so the example
   runs in seconds.

   Run with: dune exec examples/float_specific.exe *)

open Fec_core

let words = 200_000
let p = 0.1

let evaluate name codec =
  let mc = Composite.to_codec codec in
  let undetected_err = ref 0.0 in
  let non_numeric = ref 0 in
  let count = ref 0 in
  let on_undetected ~sent ~received =
    incr count;
    let fs = Int32.float_of_bits (Int32.of_int sent) in
    let fr = Int32.float_of_bits (Int32.of_int received) in
    if Float.is_finite fr then undetected_err := !undetected_err +. Float.abs (fr -. fs)
    else incr non_numeric
  in
  let r =
    Channel.Montecarlo.run ~on_undetected ~codec:mc ~md:(Composite.min_distance codec)
      ~words ~p ~seed:0xF10A7 Channel.Montecarlo.numeric_float32_data
  in
  let avg =
    if !count - !non_numeric > 0 then !undetected_err /. float_of_int (!count - !non_numeric)
    else 0.0
  in
  Printf.printf "%-24s checks=%2d undetected=%8d avg|err|=%10.3e non-numeric=%d\n" name
    (Composite.check_len codec) r.Channel.Montecarlo.undetected avg !non_numeric

let () =
  (* Stage 1: Figure 1 profile and weights *)
  print_endline "profiling float32 bit-flip damage (Figure 1) ...";
  let profile = Channel.Bitflip.float32_profile ~samples:50_000 () in
  let weights = Channel.Bitflip.weights_for_upper_bits ~bits:16 profile in
  Printf.printf "derived weights: %s\n"
    (String.concat "," (Array.to_list (Array.map string_of_int weights)));
  Printf.printf "paper's weights: %s\n\n"
    (String.concat "," (Array.to_list (Array.map string_of_int Design.paper_weights)));

  (* Stage 2: weighted synthesis (minimize sum_w, paper §4.3) *)
  print_endline "synthesizing the weighted generator split ...";
  (match Design.float32_with_weights ~timeout:120.0 ~p weights with
  | None -> print_endline "no design found in time"
  | Some d ->
      Printf.printf "mapping (bit -> generator): %s\n"
        (String.concat "" (Array.to_list (Array.map string_of_int d.Design.mapping)));
      Printf.printf "achieved sum_w = %.3f in %.1f s\n" d.Design.sum_w d.Design.elapsed;
      Printf.printf "codec descriptor: %s\n\n" (Registry.describe d.Design.codec);

      (* Stage 3: Table 2 comparison *)
      Printf.printf "robustness over %d numeric float32 words at p = %.1f:\n" words p;
      evaluate "G1^16 G1^16 (parity)" (Lazy.force Design.table2_parity);
      evaluate "G6^16 G6^16 (md 3)" (Lazy.force Design.table2_md3);
      evaluate "G5^8 G1^8 G1^16 (paper)" (Lazy.force Design.table2_float_specific);
      evaluate "synthesized (ours)" d.Design.codec)
