(* Dynamic code exchange over a lossy link: a sender frames float32 words
   with a float-specific composite codec, the frame itself carries the
   code descriptor (RFC 5109 spirit), the channel corrupts some bits, and
   a receiver that has never seen the code reconstructs it from the frame
   and repairs what it can.

   Run with: dune exec examples/code_exchange.exe *)

open Fec_core

let () =
  (* md-3 on both halves: every single-bit error per half is correctable
     (the float-specific codec of §4.3 trades that away on the mantissa) *)
  let codec = Lazy.force Design.table2_md3 in
  Printf.printf "sender codec: %s\n" (Registry.describe codec);

  (* a little telemetry stream of floats *)
  let values = Array.init 256 (fun i -> sin (float_of_int i /. 10.0) *. 1000.0) in
  let words = Array.map (fun v -> Int32.to_int (Int32.bits_of_float v) land 0xFFFFFFFF) values in
  let frame = Framing.encode codec words in
  Printf.printf "frame: %d words, %d bytes on the wire\n" (Array.length words)
    (String.length frame);

  (* corrupt the payload region with a few random single-bit errors *)
  let g = Channel.Prng.create 2024 in
  let corrupted = Bytes.of_string frame in
  let header_len = 4 + 2 + String.length (Registry.describe codec) + 3 in
  let errors = 12 in
  for _ = 1 to errors do
    let pos = header_len + Channel.Prng.int_below g (Bytes.length corrupted - header_len) in
    let bit = Channel.Prng.int_below g 8 in
    Bytes.set corrupted pos (Char.chr (Char.code (Bytes.get corrupted pos) lxor (1 lsl bit)))
  done;
  Printf.printf "channel: injected %d single-bit errors into the payload\n\n" errors;

  (* the receiver knows nothing but the frame format *)
  let codec', recovered, report = Framing.decode (Bytes.to_string corrupted) in
  Printf.printf "receiver rebuilt codec: %s\n" (Registry.describe codec');
  Printf.printf "decode report: %d valid, %d corrected, %d uncorrectable\n"
    report.Framing.valid report.Framing.corrected report.Framing.uncorrectable;

  let wrong = ref 0 in
  Array.iteri (fun i w -> if w <> words.(i) then incr wrong) recovered;
  Printf.printf "payload words still wrong after correction: %d / %d\n" !wrong
    (Array.length words);
  if report.Framing.uncorrectable = 0 && !wrong = 0 then
    print_endline "\nall errors repaired without retransmission — that's FEC."
