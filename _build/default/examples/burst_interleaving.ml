(* Bursty links and interleaving: the same Hamming code that sails through
   a random-error channel collapses when errors arrive in bursts — unless
   an interleaver spreads each burst across many codewords.  This is the
   deployment context (optical/cellular links) the paper's introduction
   motivates FEC with.

   Run with: dune exec examples/burst_interleaving.exe *)

let () =
  let code = Hamming.Catalog.shortened ~data_len:16 ~check_len:6 in
  let codec = Hamming.Fastcodec.compile code in
  Printf.printf "code: (%d,%d) Hamming, corrects one error per word\n\n"
    (Hamming.Code.block_len code) (Hamming.Code.data_len code);

  let ge = { Channel.Burst.p_good = 0.0005; p_bad = 0.3; p_g2b = 0.001; p_b2g = 0.05 } in
  Printf.printf
    "channel: Gilbert-Elliott, %.2f%% errors in quiet stretches, %.0f%%\n\
     inside bursts of ~%.0f bits\n\n"
    (100.0 *. ge.Channel.Burst.p_good)
    (100.0 *. ge.Channel.Burst.p_bad)
    (1.0 /. ge.Channel.Burst.p_b2g);

  Printf.printf "%-18s %-14s %-18s\n" "interleave depth" "plain errors" "interleaved errors";
  List.iter
    (fun depth ->
      let r = Channel.Burst.trial codec ~depth ~blocks:(6400 / depth) ~ge ~seed:7 in
      Printf.printf "%-18d %-14d %-18d\n" depth r.Channel.Burst.word_errors_plain
        r.Channel.Burst.word_errors_interleaved)
    [ 4; 16; 64; 256 ];

  print_endline "\nthe crossover: interleaving only pays once its depth exceeds the";
  print_endline "burst length — then each codeword sees at most one burst bit, which";
  print_endline "single-error correction absorbs.  Deeper is better (and costs only";
  print_endline "latency, not redundancy)."
