(* Reproduce the §4.4 emission pipeline: synthesize a 32-bit-data
   generator with md 3 while minimizing coefficient set bits, then emit a
   specialized C implementation (AND/XOR only) and its OCaml counterpart
   to ./generated/.

   Run with: dune exec examples/emit_c.exe *)

let () =
  print_endline "minimizing coefficient set bits for a (49,32) md-3 generator ...";
  let steps =
    Synth.Optimize.minimize_set_bits ~timeout:60.0 ~data_len:32 ~check_len:17 ~md:3
      ~start_bound:200 ~stop_bound:100 ()
  in
  match List.rev steps with
  | [] -> print_endline "no generator found (unexpected)"
  | best :: _ ->
      let code = best.Synth.Optimize.generator in
      Printf.printf "best generator: %d set bits (walked %d bound steps)\n"
        (Hamming.Code.set_bits code) (List.length steps);
      let dir = "generated" in
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      let write name contents =
        let oc = open_out (Filename.concat dir name) in
        output_string oc contents;
        close_out oc;
        Printf.printf "wrote %s/%s (%d bytes)\n" dir name (String.length contents)
      in
      write "fec_encode.c" (Hamming.Emit.c_source ~name:"fec" code);
      write "fec_encode.ml" (Hamming.Emit.ocaml_source ~name:"fec" code);
      print_endline "\ncompile the C version with:  gcc -O3 generated/fec_encode.c -o fec && ./fec";
      (* demonstrate the in-process compiled codec on the same generator *)
      let fast = Hamming.Fastcodec.compile code in
      let start = Unix.gettimeofday () in
      let acc = ref 0 in
      let iterations = 2_000_000 in
      let d = ref 0 in
      for _ = 1 to iterations do
        let w = fast.Hamming.Fastcodec.encode !d in
        acc := !acc lxor w lxor fast.Hamming.Fastcodec.syndrome w;
        d := (!d + 21) land 0xFFFFFFFF
      done;
      let dt = Unix.gettimeofday () -. start in
      Printf.printf "in-process mask codec: %d encode+check in %.3f s (%.1f M ops/s), checksum %d\n"
        iterations dt
        (float_of_int iterations /. dt /. 1e6)
        !acc
