examples/robustness_sweep.mli:
