examples/float_specific.ml: Array Channel Composite Design Fec_core Float Int32 Lazy Printf Registry String
