examples/robustness_sweep.ml: Channel List Printf Synth
