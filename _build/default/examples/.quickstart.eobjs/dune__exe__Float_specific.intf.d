examples/float_specific.mli:
