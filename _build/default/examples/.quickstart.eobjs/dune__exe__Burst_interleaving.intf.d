examples/burst_interleaving.mli:
