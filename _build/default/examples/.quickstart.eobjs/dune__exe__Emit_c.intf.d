examples/emit_c.mli:
