examples/burst_interleaving.ml: Channel Hamming List Printf
