examples/code_exchange.mli:
