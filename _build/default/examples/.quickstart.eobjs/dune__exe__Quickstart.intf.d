examples/quickstart.mli:
