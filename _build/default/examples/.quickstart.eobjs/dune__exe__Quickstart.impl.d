examples/quickstart.ml: Bitvec Format Gf2 Hamming Lazy Synth
