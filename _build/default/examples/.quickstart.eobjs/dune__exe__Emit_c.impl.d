examples/emit_c.ml: Filename Hamming List Printf String Synth Sys Unix
