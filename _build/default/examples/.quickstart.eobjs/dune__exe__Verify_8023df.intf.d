examples/verify_8023df.mli:
