examples/code_exchange.ml: Array Bytes Channel Char Design Fec_core Framing Int32 Lazy Printf Registry String
