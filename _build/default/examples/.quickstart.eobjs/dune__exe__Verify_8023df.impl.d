examples/verify_8023df.ml: Format Gf2 Hamming Lazy Spec Synth
