(* Tests for the Hamming code library: codec round trips, minimum distance
   (combinatorial vs SAT cross-check), catalog constructions including the
   paper's generators, compiled codecs, emitters, and multi-bit detection. *)

open Gf2
open Hamming

let qtest = QCheck_alcotest.to_alcotest

(* random coefficient matrix -> random systematic code *)
let arb_code =
  let gen =
    QCheck.Gen.(
      int_range 1 8 >>= fun k ->
      int_range 1 8 >>= fun c ->
      map
        (fun bits ->
          Code.make ~p:(Matrix.init ~rows:k ~cols:c (fun i j -> List.nth bits ((i * c) + j))))
        (list_repeat (k * c) bool))
  in
  QCheck.make ~print:Code.to_string gen

let random_data st code =
  Bitvec.init (Code.data_len code) (fun _ -> Random.State.bool st)

(* ---------- Code basics ---------- *)

let fig2 () = Lazy.force Catalog.fig2_7_4

let test_fig2_dimensions () =
  let c = fig2 () in
  Alcotest.(check int) "k" 4 (Code.data_len c);
  Alcotest.(check int) "c" 3 (Code.check_len c);
  Alcotest.(check int) "n" 7 (Code.block_len c);
  Alcotest.(check int) "set bits" 9 (Code.set_bits c)

let test_fig2_encode_check () =
  let c = fig2 () in
  let w = Code.encode c (Bitvec.of_string "0011") in
  Alcotest.(check string) "paper codeword" "0011100" (Bitvec.to_string w);
  Alcotest.(check bool) "valid" true (Code.is_valid c w);
  Alcotest.(check string) "zero syndrome" "000" (Bitvec.to_string (Code.syndrome c w))

let test_fig2_check_matrix () =
  let c = fig2 () in
  Alcotest.(check string) "H = (P^T | I)" "1110100\n0111010\n1011001"
    (Matrix.to_string (Code.check_matrix c))

let test_decode_valid () =
  let c = fig2 () in
  let d = Bitvec.of_string "1011" in
  match Code.decode c (Code.encode c d) with
  | Code.Valid d' -> Alcotest.(check string) "data" "1011" (Bitvec.to_string d')
  | _ -> Alcotest.fail "expected Valid"

let test_decode_single_error_all_positions () =
  let c = fig2 () in
  let d = Bitvec.of_string "0110" in
  let w = Code.encode c d in
  for j = 0 to 6 do
    let w' = Bitvec.copy w in
    Bitvec.flip w' j;
    match Code.decode c w' with
    | Code.Corrected (d', pos) ->
        Alcotest.(check int) (Printf.sprintf "position %d" j) j pos;
        Alcotest.(check string) "data recovered" "0110" (Bitvec.to_string d')
    | _ -> Alcotest.fail "expected Corrected"
  done

let test_decode_double_error_detected_or_miscorrected () =
  (* with md 3, two-bit errors are detected but not correctable: decode
     must never silently return the original data as Valid *)
  let c = fig2 () in
  let d = Bitvec.of_string "0110" in
  let w = Code.encode c d in
  for j1 = 0 to 6 do
    for j2 = j1 + 1 to 6 do
      let w' = Bitvec.copy w in
      Bitvec.flip w' j1;
      Bitvec.flip w' j2;
      match Code.decode c w' with
      | Code.Valid _ -> Alcotest.fail "two-bit error produced a valid codeword"
      | Code.Corrected _ | Code.Uncorrectable _ -> ()
    done
  done

let test_of_generator_validation () =
  Alcotest.check_raises "not systematic"
    (Invalid_argument "Code.of_generator: generator is not in systematic (I|P) form")
    (fun () -> ignore (Code.of_string "0100101\n1000110\n0010111\n0001011"))

let test_code_string_roundtrip () =
  let c = fig2 () in
  Alcotest.(check bool) "round trip" true (Code.equal c (Code.of_string (Code.to_string c)))

let prop_encode_linear =
  QCheck.Test.make ~name:"encode is linear: E(a xor b) = E(a) xor E(b)" ~count:200 arb_code
    (fun code ->
      let st = Random.State.make [| Code.set_bits code; Code.data_len code |] in
      let a = random_data st code and b = random_data st code in
      Bitvec.equal
        (Code.encode code (Bitvec.xor a b))
        (Bitvec.xor (Code.encode code a) (Code.encode code b)))

let prop_encode_valid =
  QCheck.Test.make ~name:"encoded words are valid" ~count:200 arb_code (fun code ->
      let st = Random.State.make [| 7; Code.data_len code |] in
      Code.is_valid code (Code.encode code (random_data st code)))

let prop_single_error_syndrome_is_column =
  QCheck.Test.make ~name:"single-bit error syndrome = H column" ~count:200 arb_code
    (fun code ->
      let st = Random.State.make [| 11; Code.check_len code |] in
      let w = Code.encode code (random_data st code) in
      let j = Random.State.int st (Code.block_len code) in
      let w' = Bitvec.copy w in
      Bitvec.flip w' j;
      Bitvec.equal (Code.syndrome code w') (Matrix.col (Code.check_matrix code) j))

(* ---------- Catalog ---------- *)

let md = Distance.min_distance

let test_parity_code () =
  let c = Catalog.parity 16 in
  Alcotest.(check int) "check bits" 1 (Code.check_len c);
  Alcotest.(check int) "md" 2 (md c);
  (* behaves exactly as an even-parity bit (paper §4.3, G_1^16) *)
  let d = Bitvec.of_string "1011001110001111" in
  let w = Code.encode c d in
  Alcotest.(check bool) "even parity" false (Bitvec.parity w)

let test_repetition_code () =
  let c = Catalog.repetition 5 in
  Alcotest.(check int) "md" 5 (md c);
  Alcotest.(check string) "all ones" "11111"
    (Bitvec.to_string (Code.encode c (Bitvec.of_string "1")))

let test_perfect_codes () =
  List.iter
    (fun r ->
      let c = Catalog.perfect r in
      Alcotest.(check int) (Printf.sprintf "k for r=%d" r) ((1 lsl r) - 1 - r)
        (Code.data_len c);
      Alcotest.(check int) (Printf.sprintf "md for r=%d" r) 3 (md c))
    [ 2; 3; 4; 5 ]

let test_shortened_md3 () =
  List.iter
    (fun (k, c) ->
      let code = Catalog.shortened ~data_len:k ~check_len:c in
      Alcotest.(check int) (Printf.sprintf "md (%d,%d)" k c) 3 (md code))
    [ (4, 4); (11, 5); (26, 6); (32, 7); (57, 7) ]

let test_extend_raises_md () =
  let c = Catalog.extend (fig2 ()) in
  Alcotest.(check int) "extended (8,4) md" 4 (md c);
  let p = Catalog.extend (Catalog.perfect 4) in
  Alcotest.(check int) "extended perfect md" 4 (md p)

let test_ieee_128_120 () =
  let c = Lazy.force Catalog.ieee_128_120 in
  Alcotest.(check int) "k" 120 (Code.data_len c);
  Alcotest.(check int) "c" 8 (Code.check_len c);
  (* the two properties verified in the paper's §4.1 *)
  Alcotest.(check bool) "md >= 3" true (Distance.has_min_distance_at_least c 3);
  Alcotest.(check bool) "md <> 4" false (Distance.has_min_distance_at_least c 4);
  Alcotest.(check int) "md exactly 3" 3 (md c)

let test_paper_g5_4 () =
  let c = Lazy.force Catalog.paper_g5_4 in
  Alcotest.(check int) "k" 4 (Code.data_len c);
  Alcotest.(check int) "check bits" 5 (Code.check_len c);
  Alcotest.(check int) "md" 4 (md c)

(* ---------- Distance ---------- *)

let test_fig2_min_distance () = Alcotest.(check int) "md" 3 (md (fig2 ()))

let test_distance_has_exact () =
  let c = fig2 () in
  Alcotest.(check bool) "has md 3" true (Distance.has_min_distance c 3);
  Alcotest.(check bool) "not md 2" false (Distance.has_min_distance c 2);
  Alcotest.(check bool) "not md 4" false (Distance.has_min_distance c 4)

let test_counterexample_witness () =
  let c = fig2 () in
  match Distance.counterexample c 4 with
  | None -> Alcotest.fail "expected a witness that md < 4"
  | Some d ->
      Alcotest.(check bool) "non-zero" false (Bitvec.is_zero d);
      Alcotest.(check bool) "codeword weight < 4" true
        (Bitvec.popcount (Code.encode c d) < 4)

(* brute-force oracle over all non-zero data words *)
let brute_min_distance code =
  let k = Code.data_len code in
  let best = ref max_int in
  for x = 1 to (1 lsl k) - 1 do
    let d = Bitvec.init k (fun i -> (x lsr i) land 1 = 1) in
    let w = Bitvec.popcount (Code.encode code d) in
    if w < !best then best := w
  done;
  !best

let prop_min_distance_matches_bruteforce =
  QCheck.Test.make ~name:"min_distance matches brute force" ~count:200 arb_code
    (fun code -> md code = brute_min_distance code)

let prop_sat_distance_matches_combinatorial =
  QCheck.Test.make ~name:"SAT distance check matches combinatorial" ~count:60 arb_code
    (fun code ->
      let m = 1 + Random.int 5 in
      Distance.sat_has_min_distance_at_least code m
      = Distance.has_min_distance_at_least code m)

let prop_sat_counterexample_is_witness =
  QCheck.Test.make ~name:"SAT counterexample is a real witness" ~count:60 arb_code
    (fun code ->
      let m = 2 + Random.int 4 in
      match Distance.sat_counterexample code m with
      | None -> Distance.has_min_distance_at_least code m
      | Some d ->
          (not (Bitvec.is_zero d)) && Bitvec.popcount (Code.encode code d) < m)

let test_certified_verification () =
  (* (7,4): md >= 3 yields a checker-validated DRAT certificate *)
  let c = fig2 () in
  (match Distance.certified_min_distance_at_least c 3 with
  | `Certified proof -> Alcotest.(check bool) "non-trivial proof" true (String.length proof > 0)
  | `Refuted _ -> Alcotest.fail "expected certification");
  (* md >= 4 is refuted with a real witness *)
  match Distance.certified_min_distance_at_least c 4 with
  | `Refuted d ->
      Alcotest.(check bool) "witness weight < 4" true
        (Bitvec.popcount (Code.encode c d) < 4)
  | `Certified _ -> Alcotest.fail "expected refutation"

let prop_certified_agrees =
  QCheck.Test.make ~name:"certified check agrees with enumeration" ~count:40 arb_code
    (fun code ->
      let m = 2 + Random.int 3 in
      match Distance.certified_min_distance_at_least code m with
      | `Certified _ -> Distance.has_min_distance_at_least code m
      | `Refuted d ->
          (not (Bitvec.is_zero d)) && Bitvec.popcount (Code.encode code d) < m)

let test_certified_ieee_128_120 () =
  (* the §4.1 verification with a machine-checkable certificate *)
  let c = Lazy.force Catalog.ieee_128_120 in
  match Distance.certified_min_distance_at_least c 3 with
  | `Certified proof ->
      Alcotest.(check bool) "certificate recorded" true (String.length proof >= 0)
  | `Refuted _ -> Alcotest.fail "expected certification"

let test_sat_ieee_md3 () =
  (* the §4.1 verification, SAT side: md >= 3 holds, md >= 4 does not *)
  let c = Lazy.force Catalog.ieee_128_120 in
  Alcotest.(check bool) "md >= 3 via SAT" true
    (Distance.sat_has_min_distance_at_least c 3);
  match Distance.sat_counterexample c 4 with
  | None -> Alcotest.fail "expected witness that md < 4"
  | Some d ->
      Alcotest.(check bool) "witness weight" true
        (Bitvec.popcount (Code.encode c d) < 4)

(* ---------- Robustness math ---------- *)

let test_choose () =
  Alcotest.(check (float 1e-9)) "C(7,3)" 35.0 (Robustness.choose 7 3);
  Alcotest.(check (float 1e-9)) "C(128,2)" 8128.0 (Robustness.choose 128 2);
  Alcotest.(check (float 1e-9)) "C(5,0)" 1.0 (Robustness.choose 5 0);
  Alcotest.(check (float 1e-9)) "C(5,6)" 0.0 (Robustness.choose 5 6)

let test_prob_flips_total () =
  (* summing from m=0 must give 1 *)
  Alcotest.(check (float 1e-9)) "total probability" 1.0
    (Robustness.prob_flips_ge ~n:10 ~m:0 ~p:0.3)

let test_prob_flips_monotone () =
  let p1 = Robustness.prob_flips_ge ~n:9 ~m:3 ~p:0.1 in
  let p2 = Robustness.prob_flips_ge ~n:9 ~m:4 ~p:0.1 in
  Alcotest.(check bool) "monotone in m" true (p1 > p2)

let test_pu_fig2 () =
  (* P_u for (7,4) md 3 at p=0.1: sum_{j>=3} C(7,j) 0.1^j 0.9^(7-j) *)
  let exact = Robustness.undetected_error_probability (fig2 ()) ~p:0.1 in
  Alcotest.(check (float 1e-4)) "exact P_u" 0.025692 exact;
  let approx = Robustness.approx_undetected (fig2 ()) ~p:0.1 in
  Alcotest.(check (float 1e-9)) "approximation C(7,3) p^3" 0.035 approx

(* ---------- Weight distribution ---------- *)

let test_weightdist_hamming74 () =
  (* the (7,4) Hamming code famously has A = 1,0,0,7,7,0,0,1 *)
  let dist = Weightdist.distribution (fig2 ()) in
  Alcotest.(check (array int)) "weight enumerator" [| 1; 0; 0; 7; 7; 0; 0; 1 |] dist

let test_weightdist_parity () =
  (* even-weight code of length 5: A_w = C(5,w) for even w *)
  let dist = Weightdist.distribution (Catalog.parity 4) in
  Alcotest.(check (array int)) "parity(4)" [| 1; 0; 10; 0; 5; 0 |] dist

let test_weightdist_total () =
  let code = Catalog.shortened ~data_len:10 ~check_len:5 in
  let dist = Weightdist.distribution code in
  Alcotest.(check int) "sums to 2^k" (1 lsl 10) (Array.fold_left ( + ) 0 dist);
  Alcotest.(check int) "zero word" 1 dist.(0)

let prop_weightdist_min_distance_agrees =
  QCheck.Test.make ~name:"weight distribution min = Distance.min_distance" ~count:100
    arb_code (fun code ->
      Weightdist.min_distance_of_distribution (Weightdist.distribution code)
      = Distance.min_distance code)

let test_exact_undetected_matches_montecarlo_bound () =
  (* exact probability must lie below the paper's >=md-flips bound *)
  let code = fig2 () in
  let exact = Weightdist.exact_undetected_probability code ~p:0.1 in
  let bound = Robustness.undetected_error_probability code ~p:0.1 in
  Alcotest.(check bool) "positive" true (exact > 0.0);
  Alcotest.(check bool) "below P_u bound" true (exact < bound);
  (* analytic value for (7,4): 7 p^3 q^4 + 7 p^4 q^3 + p^7 *)
  let p = 0.1 and q = 0.9 in
  let expected = (7.0 *. p ** 3. *. q ** 4.) +. (7.0 *. p ** 4. *. q ** 3.) +. (p ** 7.) in
  Alcotest.(check (float 1e-12)) "closed form" expected exact

let test_weightdist_large_k_rejected () =
  let code = Lazy.force Catalog.ieee_128_120 in
  Alcotest.check_raises "too large"
    (Invalid_argument "Weightdist.distribution: data length too large for exact enumeration")
    (fun () -> ignore (Weightdist.distribution code))

(* ---------- Fastcodec ---------- *)

let prop_fastcodec_matches_code =
  QCheck.Test.make ~name:"compiled codec matches matrix codec" ~count:200 arb_code
    (fun code ->
      let fc = Fastcodec.compile code in
      let k = Code.data_len code in
      let st = Random.State.make [| 3; k |] in
      List.for_all
        (fun _ ->
          let d = random_data st code in
          let di = Fastcodec.int_of_bitvec d in
          let w = Code.encode code d in
          let wi = fc.Fastcodec.encode di in
          Fastcodec.int_of_bitvec w = wi
          && fc.Fastcodec.syndrome wi = 0
          &&
          (* single-bit error round trip *)
          let j = Random.State.int st (Code.block_len code) in
          let wi' = wi lxor (1 lsl j) in
          match fc.Fastcodec.correct wi' with
          | Some fixed -> fixed = wi || Code.is_valid code (Fastcodec.bitvec_of_int ~len:(Code.block_len code) fixed)
          | None -> false)
        [ (); (); () ])

let prop_naive_matches_fast =
  QCheck.Test.make ~name:"naive codec = mask codec" ~count:200 arb_code (fun code ->
      let fast = Fastcodec.compile code and naive = Fastcodec.compile_naive code in
      let st = Random.State.make [| 13; Code.data_len code |] in
      List.for_all
        (fun _ ->
          let d = Fastcodec.int_of_bitvec (random_data st code) in
          let wf = fast.Fastcodec.encode d in
          let wn = naive.Fastcodec.encode d in
          let e = Random.State.int st (1 lsl Code.block_len code) in
          wf = wn && fast.Fastcodec.syndrome (wf lxor e) = naive.Fastcodec.syndrome (wn lxor e))
        [ (); (); () ])

let prop_sparse_matches_fast =
  QCheck.Test.make ~name:"xor-chain codec = mask codec" ~count:200 arb_code (fun code ->
      let fast = Fastcodec.compile code and sparse = Fastcodec.compile_sparse code in
      let st = Random.State.make [| 29; Code.data_len code |] in
      List.for_all
        (fun _ ->
          let d = Fastcodec.int_of_bitvec (random_data st code) in
          let wf = fast.Fastcodec.encode d in
          let ws = sparse.Fastcodec.encode d in
          let e = Random.State.int st (1 lsl Code.block_len code) in
          wf = ws
          && fast.Fastcodec.syndrome (wf lxor e) = sparse.Fastcodec.syndrome (ws lxor e))
        [ (); (); () ])

let test_fastcodec_corrects_hamming74 () =
  let fc = Fastcodec.compile (fig2 ()) in
  let w = fc.Fastcodec.encode 0b1100 in
  (* data 0011 in paper order = LSB-first int 0b1100 *)
  for j = 0 to 6 do
    match fc.Fastcodec.correct (w lxor (1 lsl j)) with
    | Some w' -> Alcotest.(check int) (Printf.sprintf "restored %d" j) w w'
    | None -> Alcotest.fail "uncorrectable single-bit error"
  done

(* ---------- Chase soft decoding ---------- *)

let test_chase_clean_channel () =
  let code = fig2 () in
  let d = Bitvec.of_string "1010" in
  let w = Code.encode code d in
  (* perfect LLRs: strong confidence, matching signs *)
  let llrs = Array.init 7 (fun i -> if Bitvec.get w i then -8.0 else 8.0) in
  match Chase.decode code llrs with
  | Some r ->
      Alcotest.(check bool) "codeword" true (Bitvec.equal r.Chase.codeword w);
      Alcotest.(check string) "data" "1010" (Bitvec.to_string r.Chase.data);
      Alcotest.(check (float 1e-12)) "zero distance" 0.0 r.Chase.soft_distance
  | None -> Alcotest.fail "expected decode"

let test_chase_beats_hard_on_two_weak_errors () =
  (* two errors at the least-reliable positions: the hard decoder
     miscorrects (md 3), Chase recovers *)
  let code = fig2 () in
  let d = Bitvec.of_string "0110" in
  let w = Code.encode code d in
  let llrs =
    Array.init 7 (fun i ->
        let sign = if Bitvec.get w i then -1.0 else 1.0 in
        match i with
        | 1 | 4 -> -.sign *. 0.3 (* flipped, and known to be unreliable *)
        | _ -> sign *. 6.0)
  in
  (match Chase.decode_hard code llrs with
  | Some fixed ->
      Alcotest.(check bool) "hard decoder miscorrects" false (Bitvec.equal fixed w)
  | None -> ());
  match Chase.decode ~test_positions:3 code llrs with
  | Some r -> Alcotest.(check bool) "chase recovers" true (Bitvec.equal r.Chase.codeword w)
  | None -> Alcotest.fail "expected decode"

let test_chase_result_always_valid () =
  let code = Lazy.force Catalog.ieee_128_120 in
  let g = Random.State.make [| 91 |] in
  for _ = 1 to 10 do
    let llrs = Array.init 128 (fun _ -> Random.State.float g 8.0 -. 4.0) in
    match Chase.decode code llrs with
    | Some r ->
        Alcotest.(check bool) "valid codeword" true (Code.is_valid code r.Chase.codeword);
        Alcotest.(check bool) "tried some candidates" true (r.Chase.candidates_tried > 0)
    | None -> ()
  done

let test_chase_block_error_rate_on_awgn () =
  (* the Bliss et al. setup in miniature: (128,120) over AWGN; Chase must
     beat hard-decision decoding on block error rate *)
  let code = Lazy.force Catalog.ieee_128_120 in
  let g = Channel.Prng.create 2024 in
  let blocks = 150 in
  let snr_db = 5.0 in
  let hard_ok = ref 0 and chase_ok = ref 0 in
  for _ = 1 to blocks do
    let d = Bitvec.init 120 (fun _ -> Channel.Prng.bool_with g ~p:0.5) in
    let w = Code.encode code d in
    let rx = Channel.Awgn.transmit g ~snr_db w in
    let llrs = Channel.Awgn.llrs ~snr_db rx in
    (match Chase.decode_hard code llrs with
    | Some fixed when Bitvec.equal fixed w -> incr hard_ok
    | _ -> ());
    match Chase.decode ~test_positions:4 code llrs with
    | Some r when Bitvec.equal r.Chase.codeword w -> incr chase_ok
    | _ -> ()
  done;
  Alcotest.(check bool)
    (Printf.sprintf "chase (%d) > hard (%d)" !chase_ok !hard_ok)
    true (!chase_ok > !hard_ok);
  Alcotest.(check bool) "chase mostly succeeds" true (10 * !chase_ok >= 7 * blocks)

let test_chase_input_validation () =
  let code = fig2 () in
  Alcotest.check_raises "wrong length"
    (Invalid_argument "Chase.decode: 3 LLRs for block length 7") (fun () ->
      ignore (Chase.decode code [| 1.0; 2.0; 3.0 |]))

(* ---------- Emit ---------- *)

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_emit_c_contains_masks () =
  let src = Emit.c_source ~name:"h74" (fig2 ()) in
  Alcotest.(check bool) "has encode" true (contains ~sub:"h74_encode" src);
  Alcotest.(check bool) "has syndrome fn" true (contains ~sub:"h74_syndrome" src)

let test_emit_ocaml_is_consistent () =
  (* interpret emitted OCaml semantics via the mask table directly *)
  let code = fig2 () in
  let masks = Emit.check_masks code in
  let fc = Fastcodec.compile code in
  let d = 0b1010 in
  let expected = fc.Fastcodec.encode d in
  let parity x =
    let rec go x acc = if x = 0 then acc else go (x land (x - 1)) (acc + 1) in
    go x 0 land 1
  in
  let w = ref d in
  Array.iteri (fun j m -> w := !w lor (parity (d land m) lsl (4 + j))) masks;
  Alcotest.(check int) "mask semantics" expected !w

(* ---------- Multibit (§6) ---------- *)

let test_hamming74_not_two_distinguishing () =
  Alcotest.(check bool) "paper: (7,4) cannot tell 1 from 2 errors" false
    (Multibit.pair_sums_unique (fig2 ()))

let test_paper_multibit_generator () =
  let c = Lazy.force Catalog.paper_multibit_15_4 in
  (* the paper's variant reports md 3; our reconstruction of the doubled
     identity-block construction achieves md 5, which subsumes it *)
  Alcotest.(check bool) "md at least 3" true (Distance.has_min_distance_at_least c 3);
  Alcotest.(check int) "md of reconstruction" 5 (Distance.min_distance c);
  Alcotest.(check bool) "pair sums unique" true (Multibit.pair_sums_unique c)

let test_multibit_correct_two_errors () =
  let c = Lazy.force Catalog.paper_multibit_15_4 in
  let d = Bitvec.of_string "0011" in
  let w = Code.encode c d in
  let n = Code.block_len c in
  for j1 = 0 to n - 1 do
    for j2 = j1 + 1 to n - 1 do
      let w' = Bitvec.copy w in
      Bitvec.flip w' j1;
      Bitvec.flip w' j2;
      match Multibit.correct_up_to c 2 w' with
      | Some fixed ->
          Alcotest.(check bool)
            (Printf.sprintf "errors at %d,%d corrected" j1 j2)
            true (Bitvec.equal fixed w)
      | None -> Alcotest.fail "expected correction"
    done
  done

let test_max_distinguishable () =
  Alcotest.(check int) "(7,4)" 1 (Multibit.max_distinguishable (fig2 ()));
  Alcotest.(check int) "repetition 5" 2
    (Multibit.max_distinguishable (Catalog.repetition 5));
  Alcotest.(check int) "parity" 0 (Multibit.max_distinguishable (Catalog.parity 4))

let () =
  Alcotest.run "hamming"
    [
      ( "code",
        [
          Alcotest.test_case "fig2 dimensions" `Quick test_fig2_dimensions;
          Alcotest.test_case "fig2 encode/check" `Quick test_fig2_encode_check;
          Alcotest.test_case "fig2 check matrix" `Quick test_fig2_check_matrix;
          Alcotest.test_case "decode valid" `Quick test_decode_valid;
          Alcotest.test_case "decode corrects all single errors" `Quick
            test_decode_single_error_all_positions;
          Alcotest.test_case "double errors never valid" `Quick
            test_decode_double_error_detected_or_miscorrected;
          Alcotest.test_case "of_generator validation" `Quick test_of_generator_validation;
          Alcotest.test_case "string round trip" `Quick test_code_string_roundtrip;
          qtest prop_encode_linear;
          qtest prop_encode_valid;
          qtest prop_single_error_syndrome_is_column;
        ] );
      ( "catalog",
        [
          Alcotest.test_case "parity" `Quick test_parity_code;
          Alcotest.test_case "repetition" `Quick test_repetition_code;
          Alcotest.test_case "perfect codes" `Quick test_perfect_codes;
          Alcotest.test_case "shortened md 3" `Quick test_shortened_md3;
          Alcotest.test_case "extend raises md" `Quick test_extend_raises_md;
          Alcotest.test_case "ieee (128,120)" `Quick test_ieee_128_120;
          Alcotest.test_case "paper G_5^4" `Quick test_paper_g5_4;
        ] );
      ( "distance",
        [
          Alcotest.test_case "fig2 md" `Quick test_fig2_min_distance;
          Alcotest.test_case "exact md predicate" `Quick test_distance_has_exact;
          Alcotest.test_case "counterexample witness" `Quick test_counterexample_witness;
          Alcotest.test_case "SAT verification of (128,120)" `Slow test_sat_ieee_md3;
          Alcotest.test_case "certified verification" `Quick test_certified_verification;
          Alcotest.test_case "certified (128,120)" `Slow test_certified_ieee_128_120;
          qtest prop_certified_agrees;
          qtest prop_min_distance_matches_bruteforce;
          qtest prop_sat_distance_matches_combinatorial;
          qtest prop_sat_counterexample_is_witness;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "choose" `Quick test_choose;
          Alcotest.test_case "probability sums to one" `Quick test_prob_flips_total;
          Alcotest.test_case "monotone" `Quick test_prob_flips_monotone;
          Alcotest.test_case "fig2 P_u" `Quick test_pu_fig2;
        ] );
      ( "weightdist",
        [
          Alcotest.test_case "(7,4) enumerator" `Quick test_weightdist_hamming74;
          Alcotest.test_case "parity enumerator" `Quick test_weightdist_parity;
          Alcotest.test_case "totals" `Quick test_weightdist_total;
          Alcotest.test_case "exact undetected probability" `Quick
            test_exact_undetected_matches_montecarlo_bound;
          Alcotest.test_case "large k rejected" `Quick test_weightdist_large_k_rejected;
          qtest prop_weightdist_min_distance_agrees;
        ] );
      ( "fastcodec",
        [
          qtest prop_fastcodec_matches_code;
          qtest prop_naive_matches_fast;
          qtest prop_sparse_matches_fast;
          Alcotest.test_case "corrects (7,4)" `Quick test_fastcodec_corrects_hamming74;
        ] );
      ( "chase",
        [
          Alcotest.test_case "clean channel" `Quick test_chase_clean_channel;
          Alcotest.test_case "beats hard on weak 2-bit errors" `Quick
            test_chase_beats_hard_on_two_weak_errors;
          Alcotest.test_case "results always valid" `Quick test_chase_result_always_valid;
          Alcotest.test_case "AWGN block error rate" `Quick test_chase_block_error_rate_on_awgn;
          Alcotest.test_case "input validation" `Quick test_chase_input_validation;
        ] );
      ( "emit",
        [
          Alcotest.test_case "C source structure" `Quick test_emit_c_contains_masks;
          Alcotest.test_case "mask semantics" `Quick test_emit_ocaml_is_consistent;
        ] );
      ( "multibit",
        [
          Alcotest.test_case "(7,4) not 2-distinguishing" `Quick
            test_hamming74_not_two_distinguishing;
          Alcotest.test_case "paper multibit generator" `Quick test_paper_multibit_generator;
          Alcotest.test_case "corrects all 2-bit errors" `Quick test_multibit_correct_two_errors;
          Alcotest.test_case "max distinguishable" `Quick test_max_distinguishable;
        ] );
    ]
