(* Tests for the compression substrate: CRC-32 vectors, bit I/O, Huffman
   codes, LZ77, DEFLATE round trips (all block types, cross-validated
   against the system gzip when available), GZIP container, and TAR. *)

open Zip

let qtest = QCheck_alcotest.to_alcotest

(* ---------- CRC-32 ---------- *)

let test_crc32_vectors () =
  (* standard check value *)
  Alcotest.(check int32) "123456789" 0xCBF43926l (Crc32.digest "123456789");
  Alcotest.(check int32) "empty" 0l (Crc32.digest "");
  Alcotest.(check int32) "a" 0xE8B7BE43l (Crc32.digest "a")

let test_crc32_incremental () =
  let whole = Crc32.digest "hello world" in
  let part = Crc32.update (Crc32.update Crc32.init "hello ") "world" in
  Alcotest.(check int32) "incremental = whole" whole part

(* ---------- bit I/O ---------- *)

let test_bitio_roundtrip () =
  let w = Bitio.Writer.create () in
  Bitio.Writer.bits w 0b101 3;
  Bitio.Writer.bits w 0xABC 12;
  Bitio.Writer.bits w 1 1;
  Bitio.Writer.align_byte w;
  Bitio.Writer.byte w 0x42;
  let s = Bitio.Writer.contents w in
  let r = Bitio.Reader.create s in
  Alcotest.(check int) "3 bits" 0b101 (Bitio.Reader.bits r 3);
  Alcotest.(check int) "12 bits" 0xABC (Bitio.Reader.bits r 12);
  Alcotest.(check int) "1 bit" 1 (Bitio.Reader.bit r);
  Alcotest.(check int) "aligned byte" 0x42 (Bitio.Reader.byte r)

let test_bitio_truncation () =
  let r = Bitio.Reader.create "\x01" in
  ignore (Bitio.Reader.bits r 8);
  match Bitio.Reader.bits r 1 with
  | exception Bitio.Reader.Truncated -> ()
  | _ -> Alcotest.fail "expected Truncated"

let prop_bitio_roundtrip =
  QCheck.Test.make ~name:"bit writer/reader round trip" ~count:200
    (QCheck.list_of_size (QCheck.Gen.int_range 1 50)
       (QCheck.pair (QCheck.int_bound 0xFFFF) (QCheck.int_range 1 16)))
    (fun fields ->
      let fields = List.map (fun (v, n) -> (v land ((1 lsl n) - 1), n)) fields in
      let w = Bitio.Writer.create () in
      List.iter (fun (v, n) -> Bitio.Writer.bits w v n) fields;
      let r = Bitio.Reader.create (Bitio.Writer.contents w) in
      List.for_all (fun (v, n) -> Bitio.Reader.bits r n = v) fields)

(* ---------- Huffman ---------- *)

let test_huffman_lengths_kraft () =
  let freqs = [| 40; 30; 20; 5; 3; 1; 1 |] in
  let lens = Huffman.lengths ~max_len:15 freqs in
  let kraft = Array.fold_left (fun acc l -> if l > 0 then acc +. (2.0 ** float_of_int (-l)) else acc) 0.0 lens in
  Alcotest.(check bool) "kraft <= 1" true (kraft <= 1.0 +. 1e-9);
  Array.iteri (fun i l -> if freqs.(i) > 0 then Alcotest.(check bool) "used" true (l > 0)) lens

let test_huffman_respects_limit () =
  (* fibonacci-ish frequencies force deep trees without a limit *)
  let freqs = [| 1; 1; 2; 3; 5; 8; 13; 21; 34; 55; 89; 144; 233; 377; 610; 987; 1597; 2584 |] in
  let lens = Huffman.lengths ~max_len:7 freqs in
  Array.iter (fun l -> Alcotest.(check bool) "within limit" true (l <= 7)) lens

let test_huffman_single_symbol () =
  let lens = Huffman.lengths ~max_len:15 [| 0; 10; 0 |] in
  Alcotest.(check int) "single symbol gets length 1" 1 lens.(1)

let prop_huffman_code_decode =
  QCheck.Test.make ~name:"huffman encode/decode round trip" ~count:200
    (QCheck.list_of_size (QCheck.Gen.int_range 2 40) (QCheck.int_bound 100))
    (fun freq_list ->
      let freqs = Array.of_list (List.map (( + ) 1) freq_list) in
      let lens = Huffman.lengths ~max_len:15 freqs in
      let codes = Huffman.canonical_codes lens in
      let dec = Huffman.decoder lens in
      let symbols = List.init (Array.length freqs) Fun.id in
      let w = Bitio.Writer.create () in
      List.iter
        (fun s -> Bitio.Writer.huffman_code w ~code:codes.(s) ~len:lens.(s))
        symbols;
      let r = Bitio.Reader.create (Bitio.Writer.contents w) in
      List.for_all (fun s -> Huffman.decode dec r = s) symbols)

let test_huffman_oversubscribed_rejected () =
  match Huffman.canonical_codes [| 1; 1; 1 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection"

(* ---------- LZ77 ---------- *)

let test_lz77_finds_repeats () =
  let s = "abcabcabcabcabcabc" in
  let tokens = Lz77.tokenize s in
  Alcotest.(check bool) "found a match" true
    (List.exists (function Lz77.Match _ -> true | _ -> false) tokens);
  Alcotest.(check string) "reconstruction" s (Lz77.reconstruct tokens)

let test_lz77_no_match_in_random () =
  let s = "qwertyuiopasdfgh" in
  let tokens = Lz77.tokenize s in
  Alcotest.(check string) "reconstruction" s (Lz77.reconstruct tokens)

let prop_lz77_roundtrip =
  QCheck.Test.make ~name:"lz77 tokenize/reconstruct" ~count:200
    QCheck.(string_gen_of_size (Gen.int_range 0 2000) Gen.printable)
    (fun s -> Lz77.reconstruct (Lz77.tokenize s) = s)

(* ---------- DEFLATE ---------- *)

let sample_texts =
  [
    "";
    "a";
    "hello";
    String.make 1000 'x';
    String.concat "" (List.init 200 (fun i -> Printf.sprintf "line %d of text\n" (i mod 17)));
    String.init 3000 (fun i -> Char.chr (i * 7 mod 256));
  ]

let test_deflate_roundtrips () =
  List.iter
    (fun strategy ->
      List.iter
        (fun s ->
          let c = Deflate.compress ~strategy s in
          Alcotest.(check string)
            (Printf.sprintf "len %d" (String.length s))
            s (Deflate.decompress c))
        sample_texts)
    [ Deflate.Stored; Deflate.Fixed; Deflate.Dynamic ]

let test_deflate_compresses_redundancy () =
  let s = String.make 10000 'z' in
  let c = Deflate.compress s in
  Alcotest.(check bool) "much smaller" true (String.length c < 200)

let prop_deflate_roundtrip =
  QCheck.Test.make ~name:"deflate round trip (dynamic)" ~count:150
    QCheck.(string_gen_of_size (Gen.int_range 0 5000) Gen.char)
    (fun s -> Deflate.decompress (Deflate.compress s) = s)

let prop_deflate_fixed_roundtrip =
  QCheck.Test.make ~name:"deflate round trip (fixed)" ~count:100
    QCheck.(string_gen_of_size (Gen.int_range 0 2000) Gen.char)
    (fun s -> Deflate.decompress (Deflate.compress ~strategy:Deflate.Fixed s) = s)

(* ---------- GZIP ---------- *)

let test_gzip_roundtrip () =
  List.iter
    (fun s -> Alcotest.(check string) "round trip" s (Gzip.decompress (Gzip.compress s)))
    sample_texts

let test_gzip_crc_detects_corruption () =
  let c = Bytes.of_string (Gzip.compress "some payload that is long enough to corrupt") in
  let mid = Bytes.length c / 2 in
  Bytes.set c mid (Char.chr (Char.code (Bytes.get c mid) lxor 0xFF));
  match Gzip.decompress (Bytes.to_string c) with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "corruption not detected"

let test_gzip_magic_check () =
  match Gzip.decompress "not a gzip file at all................" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected failure"

(* our gzip output must be readable by the system tool, when present *)
let test_gzip_system_interop () =
  let sys_gzip = Sys.command "command -v gzip > /dev/null 2>&1" = 0 in
  if not sys_gzip then ()
  else begin
    let payload = String.concat "," (List.init 500 string_of_int) in
    let file = Filename.temp_file "fec" ".gz" in
    let oc = open_out_bin file in
    output_string oc (Gzip.compress payload);
    close_out oc;
    let ic = Unix.open_process_in (Printf.sprintf "gzip -dc %s" (Filename.quote file)) in
    let buf = Buffer.create 1024 in
    (try
       while true do
         Buffer.add_channel buf ic 1
       done
     with End_of_file -> ());
    ignore (Unix.close_process_in ic);
    Sys.remove file;
    Alcotest.(check string) "system gzip decodes our output" payload (Buffer.contents buf)
  end

let prop_inflate_fuzz_no_crash =
  QCheck.Test.make ~name:"inflate survives garbage streams" ~count:500
    QCheck.(string_gen_of_size (Gen.int_range 0 300) Gen.char)
    (fun s ->
      match Deflate.decompress s with _ -> true | exception Failure _ -> true)

let prop_gunzip_fuzz_no_crash =
  QCheck.Test.make ~name:"gunzip survives garbage" ~count:500
    QCheck.(string_gen_of_size (Gen.int_range 0 300) Gen.char)
    (fun s ->
      match Gzip.decompress s with
      | _ -> true
      | exception Failure _ -> true
      | exception Invalid_argument _ -> true)

(* ---------- TAR ---------- *)

let test_tar_roundtrip () =
  let entries =
    [
      { Tar.name = "a.bin"; contents = "hello" };
      { Tar.name = "dir-entryname.dat"; contents = String.make 1200 '\x07' };
      { Tar.name = "empty"; contents = "" };
    ]
  in
  let archive = Tar.archive entries in
  Alcotest.(check int) "512-aligned" 0 (String.length archive mod 512);
  let back = Tar.entries archive in
  Alcotest.(check int) "count" 3 (List.length back);
  List.iter2
    (fun a b ->
      Alcotest.(check string) "name" a.Tar.name b.Tar.name;
      Alcotest.(check string) "contents" a.Tar.contents b.Tar.contents)
    entries back

let test_tar_name_limit () =
  Alcotest.check_raises "long name" (Invalid_argument "Tar.archive: name too long")
    (fun () -> ignore (Tar.archive [ { Tar.name = String.make 101 'n'; contents = "" } ]))

let test_tar_system_interop () =
  let sys_tar = Sys.command "command -v tar > /dev/null 2>&1" = 0 in
  if not sys_tar then ()
  else begin
    let file = Filename.temp_file "fec" ".tar" in
    let oc = open_out_bin file in
    output_string oc (Tar.archive [ { Tar.name = "x.txt"; contents = "payload!" } ]);
    close_out oc;
    let rc = Sys.command (Printf.sprintf "tar -tf %s > /dev/null 2>&1" (Filename.quote file)) in
    Sys.remove file;
    Alcotest.(check int) "system tar lists our archive" 0 rc
  end

let () =
  Alcotest.run "zip"
    [
      ( "crc32",
        [
          Alcotest.test_case "vectors" `Quick test_crc32_vectors;
          Alcotest.test_case "incremental" `Quick test_crc32_incremental;
        ] );
      ( "bitio",
        [
          Alcotest.test_case "round trip" `Quick test_bitio_roundtrip;
          Alcotest.test_case "truncation" `Quick test_bitio_truncation;
          qtest prop_bitio_roundtrip;
        ] );
      ( "huffman",
        [
          Alcotest.test_case "kraft" `Quick test_huffman_lengths_kraft;
          Alcotest.test_case "length limit" `Quick test_huffman_respects_limit;
          Alcotest.test_case "single symbol" `Quick test_huffman_single_symbol;
          Alcotest.test_case "oversubscription" `Quick test_huffman_oversubscribed_rejected;
          qtest prop_huffman_code_decode;
        ] );
      ( "lz77",
        [
          Alcotest.test_case "repeats" `Quick test_lz77_finds_repeats;
          Alcotest.test_case "no repeats" `Quick test_lz77_no_match_in_random;
          qtest prop_lz77_roundtrip;
        ] );
      ( "deflate",
        [
          Alcotest.test_case "round trips all strategies" `Quick test_deflate_roundtrips;
          Alcotest.test_case "compresses redundancy" `Quick test_deflate_compresses_redundancy;
          qtest prop_deflate_roundtrip;
          qtest prop_deflate_fixed_roundtrip;
        ] );
      ( "gzip",
        [
          Alcotest.test_case "round trip" `Quick test_gzip_roundtrip;
          Alcotest.test_case "CRC detects corruption" `Quick test_gzip_crc_detects_corruption;
          Alcotest.test_case "magic check" `Quick test_gzip_magic_check;
          Alcotest.test_case "system gzip interop" `Quick test_gzip_system_interop;
          qtest prop_inflate_fuzz_no_crash;
          qtest prop_gunzip_fuzz_no_crash;
        ] );
      ( "tar",
        [
          Alcotest.test_case "round trip" `Quick test_tar_roundtrip;
          Alcotest.test_case "name limit" `Quick test_tar_name_limit;
          Alcotest.test_case "system tar interop" `Quick test_tar_system_interop;
        ] );
    ]
