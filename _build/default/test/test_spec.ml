(* Tests for the property language: lexer/parser, printing round trips, and
   concrete evaluation against catalog generators. *)

open Spec

let qtest = QCheck_alcotest.to_alcotest

let parse_ok s = try Some (Parse.prop s) with Parse.Error _ -> None

(* ---------- parsing ---------- *)

let test_parse_paper_example () =
  (* the §3.1 running example *)
  let p =
    Parse.prop
      "len_G = 1 && len_d(G[0]) = 4 && len_c(G[0]) <= 4 && md(G[0]) = 3 && \
       minimal(len_c(G[0]))"
  in
  Alcotest.(check int) "five conjuncts" 5 (List.length (Ast.conjuncts p));
  Alcotest.(check bool) "mentions md" true (Ast.mentions_min_distance p);
  Alcotest.(check int) "one objective" 1 (List.length (Ast.objectives p))

let test_parse_precedence () =
  let p = Parse.prop "1 = 1 || 2 = 2 && 3 = 4" in
  (match p with
  | Ast.Or (_, Ast.And (_, _)) -> ()
  | _ -> Alcotest.fail "&& should bind tighter than ||");
  let q = Parse.prop "1 = 1 => 2 = 2 => 3 = 3" in
  match q with
  | Ast.Imp (_, Ast.Imp (_, _)) -> ()
  | _ -> Alcotest.fail "=> should be right-associative"

let test_parse_arith_precedence () =
  match Parse.expr "1 + 2 * 3" with
  | Ast.Add (Ast.Int 1, Ast.Mul (Ast.Int 2, Ast.Int 3)) -> ()
  | e -> Alcotest.failf "got %s" (Ast.expr_to_string e)

let test_parse_unary_minus () =
  match Parse.expr "-2 * 3" with
  | Ast.Mul (Ast.Neg (Ast.Int 2), Ast.Int 3) -> ()
  | e -> Alcotest.failf "got %s" (Ast.expr_to_string e)

let test_parse_gen_entry () =
  match Parse.expr "G[0](1, 2)" with
  | Ast.Gen_entry (Ast.Int 0, Ast.Int 1, Ast.Int 2) -> ()
  | e -> Alcotest.failf "got %s" (Ast.expr_to_string e)

let test_parse_funcs () =
  List.iter
    (fun (src, expected) ->
      match Parse.expr src with
      | Ast.Func (f, Ast.Int 0) when f = expected -> ()
      | e -> Alcotest.failf "parsing %s got %s" src (Ast.expr_to_string e))
    [
      ("len_d(G[0])", Ast.Len_d);
      ("len_c(G[0])", Ast.Len_c);
      ("len_1(G[0])", Ast.Len_1);
      ("md(G[0])", Ast.Md);
    ]

let test_parse_not_and_parens () =
  match Parse.prop "!(1 = 2) && (3 > 2 || false)" with
  | Ast.And (Ast.Not _, Ast.Or (_, Ast.False)) -> ()
  | p -> Alcotest.failf "got %s" (Ast.prop_to_string p)

let test_parse_reals () =
  match Parse.prop "sum_w <= 12.5" with
  | Ast.Cmp (Ast.Le, Ast.Sum_w, Ast.Real r) ->
      Alcotest.(check (float 1e-12)) "value" 12.5 r
  | p -> Alcotest.failf "got %s" (Ast.prop_to_string p)

let test_parse_errors () =
  List.iter
    (fun src ->
      match parse_ok src with
      | Some p -> Alcotest.failf "%s should not parse: %s" src (Ast.prop_to_string p)
      | None -> ())
    [ "1 ="; "&& true"; "md(0) = 3"; "G[0](1) = 1"; "minimal"; "1 @ 2"; "len_G = " ]

let test_parse_comments_and_file () =
  let p =
    Parse.prop_file
      "# target generator\nlen_G = 1\nlen_d(G[0]) = 4 &&\nmd(G[0]) = 3 # inline\n\n"
  in
  Alcotest.(check int) "three conjuncts" 3 (List.length (Ast.conjuncts p))

let test_empty_file_is_true () =
  Alcotest.(check bool) "true" true (Parse.prop_file "# nothing\n" = Ast.True)

(* ---------- printing round trip ---------- *)

let arb_prop =
  let open QCheck.Gen in
  let gen_func = oneofl [ Ast.Len_d; Ast.Len_c; Ast.Len_1; Ast.Md ] in
  let rec gen_expr depth =
    if depth = 0 then
      oneof
        [
          map (fun n -> Ast.Int n) (int_range 0 100);
          return Ast.Len_g;
          return Ast.Len_w;
          return Ast.Sum_w;
          map (fun f -> Ast.Func (f, Ast.Int 0)) gen_func;
        ]
    else
      oneof
        [
          gen_expr 0;
          map2 (fun a b -> Ast.Add (a, b)) (gen_expr (depth - 1)) (gen_expr (depth - 1));
          map2 (fun a b -> Ast.Sub (a, b)) (gen_expr (depth - 1)) (gen_expr (depth - 1));
          map2 (fun a b -> Ast.Mul (a, b)) (gen_expr (depth - 1)) (gen_expr (depth - 1));
          map (fun a -> Ast.Neg a) (gen_expr (depth - 1));
          map3
            (fun g r c -> Ast.Gen_entry (g, r, c))
            (gen_expr 0) (gen_expr 0) (gen_expr 0);
          map (fun e -> Ast.Weight e) (gen_expr 0);
        ]
  in
  let gen_cmp = oneofl [ Ast.Eq; Ast.Neq; Ast.Lt; Ast.Gt; Ast.Le; Ast.Ge ] in
  let rec gen_prop depth =
    if depth = 0 then
      oneof
        [
          return Ast.True;
          return Ast.False;
          map3 (fun c a b -> Ast.Cmp (c, a, b)) gen_cmp (gen_expr 1) (gen_expr 1);
          map (fun e -> Ast.Minimal e) (gen_expr 1);
          map (fun e -> Ast.Maximal e) (gen_expr 1);
        ]
    else
      oneof
        [
          gen_prop 0;
          map (fun p -> Ast.Not p) (gen_prop (depth - 1));
          map2 (fun a b -> Ast.And (a, b)) (gen_prop (depth - 1)) (gen_prop (depth - 1));
          map2 (fun a b -> Ast.Or (a, b)) (gen_prop (depth - 1)) (gen_prop (depth - 1));
          map2 (fun a b -> Ast.Imp (a, b)) (gen_prop (depth - 1)) (gen_prop (depth - 1));
        ]
  in
  QCheck.make ~print:Ast.prop_to_string (int_range 0 3 >>= gen_prop)

let prop_print_parse_roundtrip =
  QCheck.Test.make ~name:"parse (print p) = p" ~count:500 arb_prop (fun p ->
      Ast.equal_prop p (Parse.prop (Ast.prop_to_string p)))

(* ---------- evaluation ---------- *)

let fig2_env = Eval.env_of_code (Lazy.force Hamming.Catalog.fig2_7_4)

let eval_bool s = Eval.eval_prop fig2_env (Parse.prop s)

let test_eval_lengths () =
  Alcotest.(check bool) "len_d" true (eval_bool "len_d(G[0]) = 4");
  Alcotest.(check bool) "len_c" true (eval_bool "len_c(G[0]) = 3");
  Alcotest.(check bool) "len_G" true (eval_bool "len_G = 1");
  Alcotest.(check bool) "len_1" true (eval_bool "len_1(G[0]) = 9");
  Alcotest.(check bool) "md" true (eval_bool "md(G[0]) = 3");
  Alcotest.(check bool) "md not 4" false (eval_bool "md(G[0]) = 4")

let test_eval_arith () =
  Alcotest.(check bool) "sum" true (eval_bool "len_d(G[0]) + len_c(G[0]) = 7");
  Alcotest.(check bool) "product" true (eval_bool "2 * md(G[0]) = 6");
  Alcotest.(check bool) "negation" true (eval_bool "- md(G[0]) = 0 - 3");
  Alcotest.(check bool) "mixed real" true (eval_bool "md(G[0]) * 1.5 = 4.5")

let test_eval_gen_entry () =
  (* generator row 0 = 1000101 *)
  Alcotest.(check bool) "identity bit" true (eval_bool "G[0](0, 0) = 1");
  Alcotest.(check bool) "zero bit" true (eval_bool "G[0](0, 1) = 0");
  Alcotest.(check bool) "check bit" true (eval_bool "G[0](0, 4) = 1")

let test_eval_connectives () =
  Alcotest.(check bool) "and" true (eval_bool "md(G[0]) = 3 && len_c(G[0]) = 3");
  Alcotest.(check bool) "or" true (eval_bool "md(G[0]) = 9 || true");
  Alcotest.(check bool) "imp false antecedent" true (eval_bool "false => 1 = 2");
  Alcotest.(check bool) "not" true (eval_bool "!(md(G[0]) = 4)");
  Alcotest.(check bool) "minimal is neutral" true (eval_bool "minimal(len_c(G[0]))")

let test_eval_errors () =
  let bad = Parse.prop "md(G[3]) = 2" in
  match Eval.eval_prop fig2_env bad with
  | exception Eval.Eval_error _ -> ()
  | _ -> Alcotest.fail "expected Eval_error"

let test_eval_sum_w () =
  (* two parity (8,1) generators, all 16 bits weighted 1, p = 0.1:
     each bit costs C(9,2) * 0.01 = 0.36 *)
  let env =
    {
      Eval.generators = [| Hamming.Catalog.parity 8; Hamming.Catalog.parity 8 |];
      weights = Array.make 16 1.0;
      mapping = Array.init 16 (fun i -> i / 8);
      channel_p = 0.1;
    }
  in
  Alcotest.(check (float 1e-9)) "sum_w" (16.0 *. 0.36) (Eval.sum_w env)

let prop_parser_fuzz_no_crash =
  QCheck.Test.make ~name:"parser survives garbage" ~count:1000
    QCheck.(string_gen_of_size (Gen.int_range 0 80) Gen.printable)
    (fun s ->
      match Parse.prop s with _ -> true | exception Parse.Error _ -> true)

let prop_prop_file_fuzz_no_crash =
  QCheck.Test.make ~name:"prop_file survives garbage" ~count:500
    QCheck.(string_gen_of_size (Gen.int_range 0 120) Gen.printable)
    (fun s ->
      match Parse.prop_file s with _ -> true | exception Parse.Error _ -> true)

let () =
  Alcotest.run "spec"
    [
      ( "parse",
        [
          Alcotest.test_case "paper example" `Quick test_parse_paper_example;
          Alcotest.test_case "boolean precedence" `Quick test_parse_precedence;
          Alcotest.test_case "arith precedence" `Quick test_parse_arith_precedence;
          Alcotest.test_case "unary minus" `Quick test_parse_unary_minus;
          Alcotest.test_case "generator entry" `Quick test_parse_gen_entry;
          Alcotest.test_case "functions" `Quick test_parse_funcs;
          Alcotest.test_case "not and parens" `Quick test_parse_not_and_parens;
          Alcotest.test_case "reals" `Quick test_parse_reals;
          Alcotest.test_case "rejects malformed" `Quick test_parse_errors;
          Alcotest.test_case "property files" `Quick test_parse_comments_and_file;
          Alcotest.test_case "empty file" `Quick test_empty_file_is_true;
          qtest prop_print_parse_roundtrip;
          qtest prop_parser_fuzz_no_crash;
          qtest prop_prop_file_fuzz_no_crash;
        ] );
      ( "eval",
        [
          Alcotest.test_case "lengths" `Quick test_eval_lengths;
          Alcotest.test_case "arithmetic" `Quick test_eval_arith;
          Alcotest.test_case "generator entries" `Quick test_eval_gen_entry;
          Alcotest.test_case "connectives" `Quick test_eval_connectives;
          Alcotest.test_case "errors" `Quick test_eval_errors;
          Alcotest.test_case "sum_w" `Quick test_eval_sum_w;
        ] );
    ]
