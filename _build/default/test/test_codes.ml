(* Tests for the modern-code substrates: parity-check-matrix import, LDPC
   construction and iterative decoding, and convolutional codes with
   Viterbi decoding. *)

open Gf2

let qtest = QCheck_alcotest.to_alcotest

(* ---------- Code.of_check_matrix ---------- *)

let test_of_check_matrix_hamming74 () =
  (* the paper's (7,4) check matrix is already systematic: H = (P^T|I) *)
  let h = Matrix.of_string_rows "1110100\n0111010\n1011001" in
  let code, perm = Hamming.Code.of_check_matrix h in
  Alcotest.(check int) "k" 4 (Hamming.Code.data_len code);
  Alcotest.(check int) "c" 3 (Hamming.Code.check_len code);
  Alcotest.(check int) "md" 3 (Hamming.Distance.min_distance code);
  (* permuted codewords must satisfy the original H *)
  let d = Bitvec.of_string "1011" in
  let w = Hamming.Code.encode code d in
  let original = Bitvec.create 7 in
  Array.iteri (fun i col -> if Bitvec.get w i then Bitvec.set original col true) perm;
  Alcotest.(check bool) "H * w = 0" true (Bitvec.is_zero (Matrix.mul_vec h original))

let test_of_check_matrix_rejects_rank_deficient () =
  let h = Matrix.of_string_rows "1100\n1100" in
  Alcotest.check_raises "rank deficient"
    (Invalid_argument "Code.of_check_matrix: H is not full row rank") (fun () ->
      ignore (Hamming.Code.of_check_matrix h))

let prop_of_check_matrix_codewords_valid =
  QCheck.Test.make ~name:"of_check_matrix codewords satisfy H" ~count:200
    (QCheck.pair (QCheck.int_range 2 5) QCheck.small_int)
    (fun (r, seed) ->
      let n = r + 3 in
      let st = Random.State.make [| seed; r |] in
      let h = Matrix.init ~rows:r ~cols:n (fun _ _ -> Random.State.bool st) in
      if Matrix.rank h < r then true
      else begin
        let code, perm = Hamming.Code.of_check_matrix h in
        let k = Hamming.Code.data_len code in
        let d = Bitvec.init k (fun _ -> Random.State.bool st) in
        let w = Hamming.Code.encode code d in
        let original = Bitvec.create n in
        Array.iteri (fun i col -> if Bitvec.get w i then Bitvec.set original col true) perm;
        Bitvec.is_zero (Matrix.mul_vec h original)
      end)

(* ---------- LDPC ---------- *)

let small_ldpc = lazy (Ldpc.gallager ~n:96 ~wc:3 ~wr:6 ~seed:11)

let test_gallager_structure () =
  let code = Lazy.force small_ldpc in
  Alcotest.(check int) "block length" 96 (Ldpc.n code);
  (* rank deficiency makes k a bit above n/2 *)
  Alcotest.(check bool) "rate around 1/2" true (Ldpc.k code >= 48 && Ldpc.k code <= 56);
  let h = Ldpc.check_matrix code in
  (* regular column weight 3, row weight 6 *)
  for c = 0 to Matrix.cols h - 1 do
    Alcotest.(check int) "column weight" 3 (Bitvec.popcount (Matrix.col h c))
  done;
  for r = 0 to Matrix.rows h - 1 do
    Alcotest.(check int) "row weight" 6 (Bitvec.popcount (Matrix.row h r))
  done

let test_ldpc_encode_valid () =
  let code = Lazy.force small_ldpc in
  let st = Random.State.make [| 3 |] in
  for _ = 1 to 20 do
    let d = Bitvec.init (Ldpc.k code) (fun _ -> Random.State.bool st) in
    let w = Ldpc.encode code d in
    Alcotest.(check bool) "valid" true (Ldpc.is_valid code w);
    Alcotest.(check bool) "data recoverable" true (Bitvec.equal d (Ldpc.data_of code w))
  done

let corrupt_random st w errors =
  let w' = Bitvec.copy w in
  let n = Bitvec.length w in
  let placed = Hashtbl.create errors in
  let remaining = ref errors in
  while !remaining > 0 do
    let pos = Random.State.int st n in
    if not (Hashtbl.mem placed pos) then begin
      Hashtbl.add placed pos ();
      Bitvec.flip w' pos;
      decr remaining
    end
  done;
  w'

let decoder_corrects name decode errors expected_success_rate =
  let code = Lazy.force small_ldpc in
  let st = Random.State.make [| 17; errors |] in
  let trials = 50 in
  let successes = ref 0 in
  for _ = 1 to trials do
    let d = Bitvec.init (Ldpc.k code) (fun _ -> Random.State.bool st) in
    let w = Ldpc.encode code d in
    let received = corrupt_random st w errors in
    match decode code received with
    | Some fixed when Bitvec.equal fixed w -> incr successes
    | _ -> ()
  done;
  Alcotest.(check bool)
    (Printf.sprintf "%s corrects %d errors in >= %d%% of trials (got %d/%d)" name errors
       expected_success_rate !successes trials)
    true
    (100 * !successes >= expected_success_rate * trials)

let test_bitflip_corrects_sparse () =
  decoder_corrects "bitflip" (fun c w -> Ldpc.decode_bitflip c w) 2 80

let test_minsum_corrects_more () =
  decoder_corrects "minsum" (fun c w -> Ldpc.decode_minsum ~p:0.05 c w) 3 60

let test_minsum_beats_bitflip () =
  let code = Lazy.force small_ldpc in
  let st = Random.State.make [| 23 |] in
  let trials = 60 in
  let errors = 5 in
  let bf = ref 0 and ms = ref 0 in
  for _ = 1 to trials do
    let d = Bitvec.init (Ldpc.k code) (fun _ -> Random.State.bool st) in
    let w = Ldpc.encode code d in
    let received = corrupt_random st w errors in
    (match Ldpc.decode_bitflip code received with
    | Some f when Bitvec.equal f w -> incr bf
    | _ -> ());
    match Ldpc.decode_minsum ~p:0.05 code received with
    | Some f when Bitvec.equal f w -> incr ms
    | _ -> ()
  done;
  Alcotest.(check bool)
    (Printf.sprintf "minsum (%d) >= bitflip (%d)" !ms !bf)
    true (!ms >= !bf)

let test_clean_word_decodes_immediately () =
  let code = Lazy.force small_ldpc in
  let d = Bitvec.create (Ldpc.k code) in
  let w = Ldpc.encode code d in
  (match Ldpc.decode_bitflip code w with
  | Some f -> Alcotest.(check bool) "bitflip identity" true (Bitvec.equal f w)
  | None -> Alcotest.fail "clean word rejected");
  match Ldpc.decode_minsum ~p:0.1 code w with
  | Some f -> Alcotest.(check bool) "minsum identity" true (Bitvec.equal f w)
  | None -> Alcotest.fail "clean word rejected"

let test_gallager_rejects_bad_params () =
  Alcotest.check_raises "wr does not divide n"
    (Invalid_argument "Ldpc.gallager: wr must divide n") (fun () ->
      ignore (Ldpc.gallager ~n:10 ~wc:3 ~wr:4 ~seed:1))

(* ---------- Convolutional / Viterbi ---------- *)

let test_conv_encode_length () =
  let t = Conv.standard_k7 in
  let data = Bitvec.of_string "10110" in
  let out = Conv.encode t data in
  Alcotest.(check int) "tailed length" ((5 + 6) * 2) (Bitvec.length out)

let test_conv_known_vector () =
  (* K=3 polys (7,5): a standard textbook pair; input 1011 (tail 00):
     hand-checkable first symbols: input 1 -> reg 001 -> out (1,1) *)
  let t = Conv.create ~constraint_len:3 ~polys:[| 0b111; 0b101 |] in
  let out = Conv.encode t (Bitvec.of_string "1") in
  (* steps: 1,0,0 -> symbols 11, 10, 11 *)
  Alcotest.(check string) "impulse response" "111011" (Bitvec.to_string out)

let test_conv_roundtrip_clean () =
  let t = Conv.standard_k7 in
  let st = Random.State.make [| 31 |] in
  for _ = 1 to 20 do
    let data = Bitvec.init 64 (fun _ -> Random.State.bool st) in
    let decoded = Conv.decode t ~data_len:64 (Conv.encode t data) in
    Alcotest.(check bool) "round trip" true (Bitvec.equal data decoded)
  done

let test_conv_corrects_scattered_errors () =
  (* dfree = 10: up to 4 errors per constraint span are correctable; we
     scatter errors at least 30 positions apart *)
  let t = Conv.standard_k7 in
  let st = Random.State.make [| 37 |] in
  for _ = 1 to 20 do
    let data = Bitvec.init 100 (fun _ -> Random.State.bool st) in
    let coded = Conv.encode t data in
    let n = Bitvec.length coded in
    let pos = ref (Random.State.int st 20) in
    while !pos < n do
      Bitvec.flip coded !pos;
      pos := !pos + 30 + Random.State.int st 10
    done;
    let decoded = Conv.decode t ~data_len:100 coded in
    Alcotest.(check bool) "corrected" true (Bitvec.equal data decoded)
  done

let test_conv_corrects_double_errors_k3 () =
  let t = Conv.create ~constraint_len:3 ~polys:[| 0b111; 0b101 |] in
  (* dfree = 5 for (7,5): any 2 errors are correctable *)
  let data = Bitvec.of_string "110100101100111010" in
  let coded = Conv.encode t data in
  let n = Bitvec.length coded in
  for i = 0 to n - 1 do
    for j = i + 1 to min (n - 1) (i + 8) do
      let w = Bitvec.copy coded in
      Bitvec.flip w i;
      Bitvec.flip w j;
      let decoded = Conv.decode t ~data_len:(Bitvec.length data) w in
      Alcotest.(check bool) (Printf.sprintf "errors at %d,%d" i j) true
        (Bitvec.equal data decoded)
    done
  done

let prop_conv_roundtrip =
  QCheck.Test.make ~name:"viterbi round trip (clean channel)" ~count:100
    (QCheck.pair (QCheck.int_range 1 80) QCheck.small_int)
    (fun (len, seed) ->
      let t = Conv.standard_k7 in
      let st = Random.State.make [| seed |] in
      let data = Bitvec.init len (fun _ -> Random.State.bool st) in
      Bitvec.equal data (Conv.decode t ~data_len:len (Conv.encode t data)))

let test_conv_rejects_bad_params () =
  Alcotest.check_raises "one poly"
    (Invalid_argument "Conv.create: need at least two polynomials") (fun () ->
      ignore (Conv.create ~constraint_len:7 ~polys:[| 0o171 |]));
  Alcotest.check_raises "poly too wide"
    (Invalid_argument "Conv.create: polynomial does not fit the register") (fun () ->
      ignore (Conv.create ~constraint_len:3 ~polys:[| 0b1111; 0b101 |]))

let () =
  Alcotest.run "codes"
    [
      ( "check-matrix-import",
        [
          Alcotest.test_case "(7,4) H" `Quick test_of_check_matrix_hamming74;
          Alcotest.test_case "rank deficient rejected" `Quick
            test_of_check_matrix_rejects_rank_deficient;
          qtest prop_of_check_matrix_codewords_valid;
        ] );
      ( "ldpc",
        [
          Alcotest.test_case "gallager structure" `Quick test_gallager_structure;
          Alcotest.test_case "encode validity" `Quick test_ldpc_encode_valid;
          Alcotest.test_case "bitflip corrects sparse" `Quick test_bitflip_corrects_sparse;
          Alcotest.test_case "minsum corrects more" `Quick test_minsum_corrects_more;
          Alcotest.test_case "minsum >= bitflip" `Quick test_minsum_beats_bitflip;
          Alcotest.test_case "clean word" `Quick test_clean_word_decodes_immediately;
          Alcotest.test_case "bad params" `Quick test_gallager_rejects_bad_params;
        ] );
      ( "conv",
        [
          Alcotest.test_case "encode length" `Quick test_conv_encode_length;
          Alcotest.test_case "impulse response" `Quick test_conv_known_vector;
          Alcotest.test_case "clean round trip" `Quick test_conv_roundtrip_clean;
          Alcotest.test_case "scattered errors" `Quick test_conv_corrects_scattered_errors;
          Alcotest.test_case "double errors (K=3)" `Quick test_conv_corrects_double_errors_k3;
          Alcotest.test_case "bad params" `Quick test_conv_rejects_bad_params;
          qtest prop_conv_roundtrip;
        ] );
    ]
