(* Tests for the public core library: composite codecs, the registry
   descriptor language, stream framing, and the design workflow. *)

open Fec_core

let qtest = QCheck_alcotest.to_alcotest

let float_specific () = Lazy.force Design.table2_float_specific
let parity_halves () = Lazy.force Design.table2_parity

(* ---------- Composite ---------- *)

let test_composite_sizes () =
  let c = float_specific () in
  Alcotest.(check int) "word" 32 (Composite.word_len c);
  Alcotest.(check int) "checks (paper: 7)" 7 (Composite.check_len c);
  Alcotest.(check int) "block" 39 (Composite.block_len c);
  Alcotest.(check int) "weakest md" 2 (Composite.min_distance c);
  let p = parity_halves () in
  Alcotest.(check int) "parity checks (paper: 2)" 2 (Composite.check_len p);
  let m = Lazy.force Design.table2_md3 in
  Alcotest.(check int) "md3 checks (paper: 12)" 12 (Composite.check_len m)

let test_composite_encode_valid () =
  let c = float_specific () in
  let w = Composite.encode c 0x3F8CCCCD (* 1.1f *) in
  Alcotest.(check bool) "valid" true (Composite.is_valid c w);
  Alcotest.(check int) "data preserved" 0x3F8CCCCD (Composite.data_of c w)

let test_composite_detects_single_errors () =
  let c = float_specific () in
  let w = Composite.encode c 0x40490FDB (* pi *) in
  for j = 0 to Composite.block_len c - 1 do
    let w' = w lxor (1 lsl j) in
    Alcotest.(check bool) (Printf.sprintf "bit %d detected" j) false
      (Composite.is_valid c w')
  done

let test_composite_corrects_strong_part () =
  (* errors in the upper-8 region (protected by md-3 code) are corrected *)
  let c = float_specific () in
  let data = 0xC2F70000 (* -123.5f *) in
  let w = Composite.encode c data in
  (* word bit 3 = integer bit 28 *)
  let w' = w lxor (1 lsl 28) in
  match Composite.correct c w' with
  | Some fixed -> Alcotest.(check int) "repaired" data (Composite.data_of c fixed)
  | None -> Alcotest.fail "expected correction"

let test_composite_rejects_bad_partition () =
  let overlapping =
    [
      (Hamming.Catalog.parity 2, [ 0; 1 ]);
      (Hamming.Catalog.parity 2, [ 1; 2 ]);
    ]
  in
  Alcotest.check_raises "overlap"
    (Invalid_argument "Composite.create: position 1 covered twice") (fun () ->
      ignore (Composite.create ~word_len:3 overlapping));
  Alcotest.check_raises "gap"
    (Invalid_argument "Composite.create: some word bits are unprotected") (fun () ->
      ignore (Composite.create ~word_len:3 [ (Hamming.Catalog.parity 2, [ 0; 1 ]) ]))

let test_of_mapping_matches_create () =
  let codes = [| Hamming.Catalog.parity 2; Hamming.Catalog.parity 2 |] in
  let c = Composite.of_mapping ~codes ~mapping:[| 0; 1; 0; 1 |] in
  Alcotest.(check int) "word len" 4 (Composite.word_len c);
  let w = Composite.encode c 0b1010 in
  Alcotest.(check bool) "valid" true (Composite.is_valid c w)

let prop_composite_encode_roundtrip =
  QCheck.Test.make ~name:"composite encode preserves data and validates" ~count:300
    (QCheck.int_bound 0xFFFFFF)
    (fun data ->
      let c =
        Composite.create ~word_len:24
          [
            (Hamming.Catalog.shortened ~data_len:8 ~check_len:4, List.init 8 Fun.id);
            (Hamming.Catalog.parity 16, List.init 16 (fun i -> 8 + i));
          ]
      in
      let w = Composite.encode c data in
      Composite.is_valid c w && Composite.data_of c w = data)

(* ---------- Registry ---------- *)

let test_descriptor_roundtrip_codes () =
  List.iter
    (fun code ->
      let d = Registry.describe_code code in
      Alcotest.(check bool) d true (Hamming.Code.equal code (Registry.code_of_string d)))
    [
      Hamming.Catalog.parity 16;
      Hamming.Catalog.repetition 5;
      Hamming.Catalog.perfect 3;
      Hamming.Catalog.shortened ~data_len:8 ~check_len:5;
      Lazy.force Hamming.Catalog.fig2_7_4;
      Hamming.Catalog.extend (Hamming.Catalog.perfect 3);
    ]

let test_descriptor_names () =
  Alcotest.(check string) "parity" "parity:16"
    (Registry.describe_code (Hamming.Catalog.parity 16));
  Alcotest.(check string) "perfect" "perfect:3"
    (Registry.describe_code (Hamming.Catalog.perfect 3));
  Alcotest.(check string) "shortened" "shortened:8:5"
    (Registry.describe_code (Hamming.Catalog.shortened ~data_len:8 ~check_len:5))

let test_descriptor_composite_roundtrip () =
  let c = float_specific () in
  let d = Registry.describe c in
  let c' = Registry.composite_of_string d in
  Alcotest.(check int) "word len" (Composite.word_len c) (Composite.word_len c');
  Alcotest.(check int) "check len" (Composite.check_len c) (Composite.check_len c');
  (* encodings agree on sample data *)
  List.iter
    (fun data ->
      Alcotest.(check int) "same encoding" (Composite.encode c data)
        (Composite.encode c' data))
    [ 0; 1; 0x3F8CCCCD; 0xFFFFFFFF; 0x12345678 ]

let test_registry_rejects_garbage () =
  List.iter
    (fun s ->
      match Registry.code_of_string s with
      | exception Registry.Parse_error _ -> ()
      | _ -> Alcotest.failf "%S should fail" s)
    [ "nope:3"; "parity"; "parity:x"; "matrix:10-0"; "shortened:9" ]

(* ---------- Framing ---------- *)

let test_framing_clean_roundtrip () =
  let codec = float_specific () in
  let words = Array.init 500 (fun i -> (i * 2654435761) land 0xFFFFFFFF) in
  let frame = Framing.encode codec words in
  let codec', out, report = Framing.decode frame in
  Alcotest.(check int) "word len" 32 (Composite.word_len codec');
  Alcotest.(check bool) "payload" true (out = words);
  Alcotest.(check int) "all valid" 500 report.Framing.valid;
  Alcotest.(check int) "none corrected" 0 report.Framing.corrected

let test_framing_corrects_sparse_errors () =
  (* flip one upper-region data bit in a few codewords inside the frame:
     decode must repair them all *)
  let codec =
    Composite.create ~word_len:16
      [ (Hamming.Catalog.shortened ~data_len:16 ~check_len:6, List.init 16 Fun.id) ]
  in
  let words = Array.init 64 (fun i -> i * 997 land 0xFFFF) in
  let frame = Bytes.of_string (Framing.encode codec words) in
  (* payload starts after magic(4) + len(2) + descriptor; flip a bit deep
     inside the codeword region *)
  let header = 4 + 2 + String.length (Registry.describe codec) + 3 in
  let target = header + 10 in
  Bytes.set frame target (Char.chr (Char.code (Bytes.get frame target) lxor 0x10));
  let _, out, report = Framing.decode (Bytes.to_string frame) in
  Alcotest.(check int) "one corrected" 1 report.Framing.corrected;
  Alcotest.(check bool) "payload recovered" true (out = words)

let test_framing_bad_magic () =
  match Framing.decode "XXXX-not-a-frame" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected failure"

let prop_framing_roundtrip =
  QCheck.Test.make ~name:"framing round trip" ~count:100
    (QCheck.list_of_size (QCheck.Gen.int_range 0 50) (QCheck.int_bound 0xFFFF))
    (fun words ->
      let codec =
        Composite.create ~word_len:16
          [ (Hamming.Catalog.parity 16, List.init 16 Fun.id) ]
      in
      let arr = Array.of_list words in
      let _, out, report = Framing.decode (Framing.encode codec arr) in
      out = arr && report.Framing.valid = Array.length arr)

(* ---------- fuzzing: hostile inputs fail cleanly ---------- *)

let prop_registry_fuzz_no_crash =
  QCheck.Test.make ~name:"registry survives garbage descriptors" ~count:500
    QCheck.(string_gen_of_size (Gen.int_range 0 60) Gen.printable)
    (fun s ->
      match Registry.code_of_string s with
      | _ -> true
      | exception Registry.Parse_error _ -> true
      | exception Invalid_argument _ -> true)

let prop_composite_descriptor_fuzz =
  QCheck.Test.make ~name:"composite parser survives garbage" ~count:500
    QCheck.(string_gen_of_size (Gen.int_range 0 80) Gen.printable)
    (fun s ->
      match Registry.composite_of_string s with
      | _ -> true
      | exception Registry.Parse_error _ -> true
      | exception Invalid_argument _ -> true)

let prop_framing_fuzz_no_crash =
  QCheck.Test.make ~name:"frame decoder survives garbage bytes" ~count:500
    QCheck.(string_gen_of_size (Gen.int_range 0 200) Gen.char)
    (fun s ->
      match Framing.decode s with
      | _ -> true
      | exception Failure _ -> true
      | exception Registry.Parse_error _ -> true
      | exception Zip.Bitio.Reader.Truncated -> true
      | exception Invalid_argument _ -> true)

let prop_framing_bitflip_fuzz =
  (* flipping any single bit of a valid frame must not crash the decoder *)
  QCheck.Test.make ~name:"frame decoder survives single bit flips" ~count:200
    (QCheck.pair QCheck.small_int QCheck.small_int)
    (fun (seed, flip) ->
      let codec =
        Composite.create ~word_len:16
          [ (Hamming.Catalog.shortened ~data_len:16 ~check_len:6, List.init 16 Fun.id) ]
      in
      let st = Random.State.make [| seed |] in
      let words = Array.init 8 (fun _ -> Random.State.int st 0x10000) in
      let frame = Bytes.of_string (Framing.encode codec words) in
      let pos = flip mod (Bytes.length frame * 8) in
      Bytes.set frame (pos / 8)
        (Char.chr (Char.code (Bytes.get frame (pos / 8)) lxor (1 lsl (pos mod 8))));
      match Framing.decode (Bytes.to_string frame) with
      | _ -> true
      | exception Failure _ -> true
      | exception Registry.Parse_error _ -> true
      | exception Zip.Bitio.Reader.Truncated -> true
      | exception Invalid_argument _ -> true)

(* ---------- Design ---------- *)

let test_paper_weights () =
  Alcotest.(check int) "16 weights" 16 (Array.length Design.paper_weights);
  Alcotest.(check int) "head" 100 Design.paper_weights.(0);
  Alcotest.(check int) "tail" 1 Design.paper_weights.(15)

let test_design_with_paper_weights () =
  match Design.float32_with_weights ~timeout:120.0 Design.paper_weights with
  | None -> Alcotest.fail "expected a design"
  | Some d ->
      Alcotest.(check int) "32-bit codec" 32 (Composite.word_len d.Design.codec);
      (* total checks: 5 + 1 from the weighted pair + 1 for the parity
         lower half = 7, matching the paper's float-specific combination *)
      Alcotest.(check int) "7 check bits" 7 (Composite.check_len d.Design.codec);
      (* heaviest bits must ride the strong generator *)
      Alcotest.(check int) "bit 0 strong" 0 d.Design.mapping.(0);
      Alcotest.(check int) "bit 1 strong" 0 d.Design.mapping.(1);
      let w = Composite.encode d.Design.codec 0x3F800000 in
      Alcotest.(check bool) "encodes valid" true (Composite.is_valid d.Design.codec w)

let () =
  Alcotest.run "core"
    [
      ( "composite",
        [
          Alcotest.test_case "sizes (Table 2 check columns)" `Quick test_composite_sizes;
          Alcotest.test_case "encode/validate" `Quick test_composite_encode_valid;
          Alcotest.test_case "detects single errors" `Quick test_composite_detects_single_errors;
          Alcotest.test_case "corrects strong part" `Quick test_composite_corrects_strong_part;
          Alcotest.test_case "partition validation" `Quick test_composite_rejects_bad_partition;
          Alcotest.test_case "of_mapping" `Quick test_of_mapping_matches_create;
          qtest prop_composite_encode_roundtrip;
        ] );
      ( "registry",
        [
          Alcotest.test_case "code round trips" `Quick test_descriptor_roundtrip_codes;
          Alcotest.test_case "descriptor names" `Quick test_descriptor_names;
          Alcotest.test_case "composite round trip" `Quick test_descriptor_composite_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_registry_rejects_garbage;
        ] );
      ( "framing",
        [
          Alcotest.test_case "clean round trip" `Quick test_framing_clean_roundtrip;
          Alcotest.test_case "corrects sparse errors" `Quick test_framing_corrects_sparse_errors;
          Alcotest.test_case "bad magic" `Quick test_framing_bad_magic;
          qtest prop_framing_roundtrip;
        ] );
      ( "fuzz",
        [
          qtest prop_registry_fuzz_no_crash;
          qtest prop_composite_descriptor_fuzz;
          qtest prop_framing_fuzz_no_crash;
          qtest prop_framing_bitflip_fuzz;
        ] );
      ( "design",
        [
          Alcotest.test_case "paper weights" `Quick test_paper_weights;
          Alcotest.test_case "design from paper weights" `Slow test_design_with_paper_weights;
        ] );
    ]
