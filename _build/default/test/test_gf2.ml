(* Tests for the GF(2) linear-algebra substrate. *)

open Gf2

let bitvec_gen =
  QCheck.Gen.(
    sized (fun n ->
        let n = max 1 (min n 200) in
        map
          (fun bits -> Bitvec.init n (fun i -> List.nth bits i))
          (list_repeat n bool)))

let arb_bitvec = QCheck.make ~print:(fun v -> Bitvec.to_string v) bitvec_gen

let arb_bitvec_pair =
  let gen =
    QCheck.Gen.(
      bitvec_gen >>= fun a ->
      map (fun bits -> (a, Bitvec.of_string (String.init (Bitvec.length a) (fun i -> if List.nth bits i then '1' else '0'))))
        (list_repeat (Bitvec.length a) bool))
  in
  QCheck.make
    ~print:(fun (a, b) -> Bitvec.to_string a ^ " / " ^ Bitvec.to_string b)
    gen

let qtest = QCheck_alcotest.to_alcotest

(* ---------- unit tests: Bitvec ---------- *)

let test_create_zero () =
  let v = Bitvec.create 100 in
  Alcotest.(check int) "length" 100 (Bitvec.length v);
  Alcotest.(check bool) "is_zero" true (Bitvec.is_zero v);
  Alcotest.(check int) "popcount" 0 (Bitvec.popcount v)

let test_set_get () =
  let v = Bitvec.create 70 in
  Bitvec.set v 0 true;
  Bitvec.set v 63 true;
  Bitvec.set v 69 true;
  Alcotest.(check bool) "bit 0" true (Bitvec.get v 0);
  Alcotest.(check bool) "bit 1" false (Bitvec.get v 1);
  Alcotest.(check bool) "bit 63" true (Bitvec.get v 63);
  Alcotest.(check bool) "bit 69" true (Bitvec.get v 69);
  Alcotest.(check int) "popcount" 3 (Bitvec.popcount v);
  Bitvec.set v 63 false;
  Alcotest.(check bool) "bit 63 cleared" false (Bitvec.get v 63);
  Alcotest.(check int) "popcount after clear" 2 (Bitvec.popcount v)

let test_flip () =
  let v = Bitvec.create 10 in
  Bitvec.flip v 3;
  Alcotest.(check bool) "flipped on" true (Bitvec.get v 3);
  Bitvec.flip v 3;
  Alcotest.(check bool) "flipped off" false (Bitvec.get v 3)

let test_bounds () =
  let v = Bitvec.create 8 in
  Alcotest.check_raises "get -1" (Invalid_argument "Bitvec.get: index -1 out of bounds [0,8)")
    (fun () -> ignore (Bitvec.get v (-1)));
  Alcotest.check_raises "get 8" (Invalid_argument "Bitvec.get: index 8 out of bounds [0,8)")
    (fun () -> ignore (Bitvec.get v 8))

let test_of_to_string () =
  let s = "0110010111000101" in
  Alcotest.(check string) "round trip" s (Bitvec.to_string (Bitvec.of_string s));
  Alcotest.check_raises "bad char" (Invalid_argument "Bitvec.of_string: invalid character '2'")
    (fun () -> ignore (Bitvec.of_string "012"))

let test_of_int () =
  let v = Bitvec.of_int ~width:8 0b10110001 in
  Alcotest.(check string) "msb first" "10110001" (Bitvec.to_string v);
  Alcotest.(check int) "round trip" 0b10110001 (Bitvec.to_int v)

let test_int32_bits () =
  let v = Bitvec.of_int32_bits 0x80000001l in
  Alcotest.(check bool) "msb" true (Bitvec.get v 0);
  Alcotest.(check bool) "lsb" true (Bitvec.get v 31);
  Alcotest.(check int) "popcount" 2 (Bitvec.popcount v);
  Alcotest.(check int32) "round trip" 0x80000001l (Bitvec.to_int32_bits v)

let test_append_sub () =
  let a = Bitvec.of_string "101" and b = Bitvec.of_string "0011" in
  let c = Bitvec.append a b in
  Alcotest.(check string) "append" "1010011" (Bitvec.to_string c);
  Alcotest.(check string) "sub" "100" (Bitvec.to_string (Bitvec.sub c 2 3))

let test_xor_logand_dot () =
  let a = Bitvec.of_string "1100" and b = Bitvec.of_string "1010" in
  Alcotest.(check string) "xor" "0110" (Bitvec.to_string (Bitvec.xor a b));
  Alcotest.(check string) "and" "1000" (Bitvec.to_string (Bitvec.logand a b));
  Alcotest.(check bool) "dot" true (Bitvec.dot a b);
  Alcotest.(check bool) "dot with zero" false (Bitvec.dot a (Bitvec.create 4))

let test_iter_set () =
  let v = Bitvec.of_string "01000001000000000000000000000000000000000000000000000000000000010" in
  Alcotest.(check (list int)) "set indices" [ 1; 7; 63 ] (Bitvec.to_list v)

let test_of_list () =
  let v = Bitvec.of_list 10 [ 9; 2; 2 ] in
  Alcotest.(check (list int)) "idempotent duplicates" [ 2; 9 ] (Bitvec.to_list v)

let test_hamming_distance () =
  let a = Bitvec.of_string "110011" and b = Bitvec.of_string "101010" in
  Alcotest.(check int) "distance" 3 (Bitvec.hamming_distance a b)

(* ---------- property tests: Bitvec ---------- *)

let prop_xor_self_zero =
  QCheck.Test.make ~name:"xor v v = 0" ~count:200 arb_bitvec (fun v ->
      Bitvec.is_zero (Bitvec.xor v v))

let prop_xor_comm =
  QCheck.Test.make ~name:"xor commutative" ~count:200 arb_bitvec_pair (fun (a, b) ->
      Bitvec.equal (Bitvec.xor a b) (Bitvec.xor b a))

let prop_popcount_xor_triangle =
  QCheck.Test.make ~name:"hamming_distance = popcount of xor" ~count:200 arb_bitvec_pair
    (fun (a, b) -> Bitvec.hamming_distance a b = Bitvec.popcount (Bitvec.xor a b))

let prop_string_roundtrip =
  QCheck.Test.make ~name:"of_string/to_string round trip" ~count:200 arb_bitvec (fun v ->
      Bitvec.equal v (Bitvec.of_string (Bitvec.to_string v)))

let prop_parity_matches_popcount =
  QCheck.Test.make ~name:"parity = popcount mod 2" ~count:200 arb_bitvec (fun v ->
      Bitvec.parity v = (Bitvec.popcount v land 1 = 1))

let prop_dot_bilinear =
  QCheck.Test.make ~name:"dot distributes over xor" ~count:200
    (QCheck.pair arb_bitvec_pair arb_bitvec_pair)
    (fun ((a, b), _) ->
      let n = Bitvec.length a in
      let c = Bitvec.init n (fun i -> i mod 3 = 0) in
      Bitvec.dot (Bitvec.xor a b) c = (Bitvec.dot a c <> Bitvec.dot b c))

let prop_to_list_of_list =
  QCheck.Test.make ~name:"of_list (to_list v) = v" ~count:200 arb_bitvec (fun v ->
      Bitvec.equal v (Bitvec.of_list (Bitvec.length v) (Bitvec.to_list v)))

(* ---------- unit tests: Matrix ---------- *)

let mat_of s = Matrix.of_string_rows s

let test_identity () =
  let i3 = Matrix.identity 3 in
  Alcotest.(check string) "identity" "100\n010\n001" (Matrix.to_string i3);
  Alcotest.(check bool) "prefix" true (Matrix.is_identity_prefix i3 3)

let test_matrix_parse_render () =
  let m = mat_of "10 1;0 11" in
  Alcotest.(check int) "rows" 2 (Matrix.rows m);
  Alcotest.(check int) "cols" 3 (Matrix.cols m);
  Alcotest.(check string) "render" "101\n011" (Matrix.to_string m)

let test_transpose () =
  let m = mat_of "101\n011" in
  Alcotest.(check string) "transpose" "10\n01\n11" (Matrix.to_string (Matrix.transpose m))

(* The paper's Fig. 2 example: (0 0 1 1) * G = (0 0 1 1 | 1 0 0). *)
let fig2_generator =
  mat_of "1000101\n0100110\n0010111\n0001011"

let fig2_check =
  mat_of "1110100\n0111010\n1011001"

let test_fig2_encode () =
  let d = Bitvec.of_string "0011" in
  let w = Matrix.vec_mul d fig2_generator in
  Alcotest.(check string) "fig2 codeword" "0011100" (Bitvec.to_string w)

let test_fig2_check () =
  let w = Bitvec.of_string "0011100" in
  let b = Matrix.mul_vec fig2_check w in
  Alcotest.(check bool) "valid codeword has zero syndrome" true (Bitvec.is_zero b)

let test_fig2_single_error_syndrome () =
  (* flipping bit j of a valid codeword gives syndrome = column j of H *)
  let w = Bitvec.of_string "0011100" in
  for j = 0 to 6 do
    let w' = Bitvec.copy w in
    Bitvec.flip w' j;
    let b = Matrix.mul_vec fig2_check w' in
    Alcotest.(check string)
      (Printf.sprintf "syndrome of error at %d" j)
      (Bitvec.to_string (Matrix.col fig2_check j))
      (Bitvec.to_string b)
  done

let test_mul_assoc_example () =
  let a = mat_of "11\n01" and b = mat_of "10\n11" in
  Alcotest.(check string) "product" "01\n11" (Matrix.to_string (Matrix.mul a b))

let test_rank () =
  Alcotest.(check int) "full rank identity" 4 (Matrix.rank (Matrix.identity 4));
  Alcotest.(check int) "rank deficient" 1 (Matrix.rank (mat_of "11\n11"));
  Alcotest.(check int) "zero matrix" 0 (Matrix.rank (Matrix.create ~rows:3 ~cols:3));
  Alcotest.(check int) "fig2 generator" 4 (Matrix.rank fig2_generator)

let test_row_reduce_idempotent () =
  let m = mat_of "110\n011\n101" in
  let r = Matrix.row_reduce m in
  Alcotest.(check bool) "idempotent" true (Matrix.equal r (Matrix.row_reduce r))

let test_concat_sub () =
  let i = Matrix.identity 2 and p = mat_of "11\n01" in
  let g = Matrix.concat_h i p in
  Alcotest.(check string) "concat" "1011\n0101" (Matrix.to_string g);
  Alcotest.(check bool) "split back" true
    (Matrix.equal p (Matrix.sub_cols g ~pos:2 ~len:2))

let test_popcount_matrix () =
  Alcotest.(check int) "popcount" 13 (Matrix.popcount fig2_generator)

(* ---------- property tests: Matrix ---------- *)

let arb_small_matrix =
  let gen =
    QCheck.Gen.(
      int_range 1 8 >>= fun rows ->
      int_range 1 8 >>= fun cols ->
      map
        (fun bits ->
          Matrix.init ~rows ~cols (fun r c -> List.nth bits ((r * cols) + c)))
        (list_repeat (rows * cols) bool))
  in
  QCheck.make ~print:Matrix.to_string gen

let prop_transpose_involution =
  QCheck.Test.make ~name:"transpose involutive" ~count:200 arb_small_matrix (fun m ->
      Matrix.equal m (Matrix.transpose (Matrix.transpose m)))

let prop_vec_mul_matches_mul_vec =
  QCheck.Test.make ~name:"v*M = (M^T * v)" ~count:200 arb_small_matrix (fun m ->
      let v = Bitvec.init (Matrix.rows m) (fun i -> i mod 2 = 0) in
      Bitvec.equal (Matrix.vec_mul v m) (Matrix.mul_vec (Matrix.transpose m) v))

let prop_rank_le_dims =
  QCheck.Test.make ~name:"rank bounded by dims" ~count:200 arb_small_matrix (fun m ->
      let r = Matrix.rank m in
      r <= Matrix.rows m && r <= Matrix.cols m)

let prop_rank_invariant_under_rref =
  QCheck.Test.make ~name:"rref preserves rank" ~count:200 arb_small_matrix (fun m ->
      Matrix.rank m = Matrix.rank (Matrix.row_reduce m))

let prop_mul_identity =
  QCheck.Test.make ~name:"M * I = M" ~count:200 arb_small_matrix (fun m ->
      Matrix.equal m (Matrix.mul m (Matrix.identity (Matrix.cols m))))

let () =
  Alcotest.run "gf2"
    [
      ( "bitvec-unit",
        [
          Alcotest.test_case "create zero" `Quick test_create_zero;
          Alcotest.test_case "set/get across words" `Quick test_set_get;
          Alcotest.test_case "flip" `Quick test_flip;
          Alcotest.test_case "bounds checking" `Quick test_bounds;
          Alcotest.test_case "of_string/to_string" `Quick test_of_to_string;
          Alcotest.test_case "of_int msb-first" `Quick test_of_int;
          Alcotest.test_case "int32 bits" `Quick test_int32_bits;
          Alcotest.test_case "append/sub" `Quick test_append_sub;
          Alcotest.test_case "xor/logand/dot" `Quick test_xor_logand_dot;
          Alcotest.test_case "iter_set indices" `Quick test_iter_set;
          Alcotest.test_case "of_list duplicates" `Quick test_of_list;
          Alcotest.test_case "hamming distance" `Quick test_hamming_distance;
        ] );
      ( "bitvec-props",
        [
          qtest prop_xor_self_zero;
          qtest prop_xor_comm;
          qtest prop_popcount_xor_triangle;
          qtest prop_string_roundtrip;
          qtest prop_parity_matches_popcount;
          qtest prop_dot_bilinear;
          qtest prop_to_list_of_list;
        ] );
      ( "matrix-unit",
        [
          Alcotest.test_case "identity" `Quick test_identity;
          Alcotest.test_case "parse/render" `Quick test_matrix_parse_render;
          Alcotest.test_case "transpose" `Quick test_transpose;
          Alcotest.test_case "paper fig2 encode" `Quick test_fig2_encode;
          Alcotest.test_case "paper fig2 check" `Quick test_fig2_check;
          Alcotest.test_case "paper fig2 error syndromes" `Quick test_fig2_single_error_syndrome;
          Alcotest.test_case "matrix product" `Quick test_mul_assoc_example;
          Alcotest.test_case "rank" `Quick test_rank;
          Alcotest.test_case "row_reduce idempotent" `Quick test_row_reduce_idempotent;
          Alcotest.test_case "concat/sub columns" `Quick test_concat_sub;
          Alcotest.test_case "popcount" `Quick test_popcount_matrix;
        ] );
      ( "matrix-props",
        [
          qtest prop_transpose_involution;
          qtest prop_vec_mul_matches_mul_vec;
          qtest prop_rank_le_dims;
          qtest prop_rank_invariant_under_rref;
          qtest prop_mul_identity;
        ] );
    ]
