  $ fecsynth distance -c matrix:1000101-0100110-0010111-0001011
  $ fecsynth distance -c parity:8
  $ fecsynth verify -c matrix:1000101-0100110-0010111-0001011 -p 'md(G[0]) = 3' | sed 's/(.*)/(time)/'
  $ fecsynth verify -c matrix:1000101-0100110-0010111-0001011 -p 'md(G[0]) = 4' | sed 's/(.*)/(time)/'
  $ fecsynth verify -c parity:8 -p 'md(G[0]) = 3' > /dev/null
  $ fecsynth synth -p 'len_G = 1 && len_d(G[0]) = 4 && len_c(G[0]) <= 4 && md(G[0]) = 3 && minimal(len_c(G[0]))' | head -1
  $ fecsynth emit -c parity:4 --lang c | grep -c 'fec_encode\|fec_syndrome'
  $ fecsynth distance -c nonsense:4
  $ fecsynth synth -p 'md(G[0]) = '
  $ fecsynth certify -c matrix:1000101-0100110-0010111-0001011 -m 3 | sed 's/(.*)/(time)/'
  $ fecsynth certify -c parity:8 -m 3
  $ cat > script.smt2 <<'SMT'
  > (set-logic QF_UF)
  > (declare-const p Bool)
  > (assert p)
  > (check-sat)
  > (push 1)
  > (assert (not p))
  > (check-sat)
  > (pop 1)
  > (check-sat)
  > SMT
  $ fecsynth smt script.smt2
