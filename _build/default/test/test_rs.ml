(* Tests for GF(2^m) arithmetic, polynomial algebra, and Reed-Solomon
   encode/decode including the KP4 parameters. *)

open Rs

let qtest = QCheck_alcotest.to_alcotest

(* ---------- field axioms ---------- *)

let test_field_small_tables () =
  let f = Gf.create 3 in
  Alcotest.(check int) "order" 8 (Gf.order f);
  (* alpha^7 = 1 in GF(8) *)
  Alcotest.(check int) "alpha order" 1 (Gf.pow f (Gf.alpha f) 7);
  (* exhaustive inverse check *)
  for a = 1 to 7 do
    Alcotest.(check int) (Printf.sprintf "a * a^-1, a=%d" a) 1 (Gf.mul f a (Gf.inv f a))
  done

let test_field_rejects_bad_size () =
  Alcotest.check_raises "m=1" (Invalid_argument "Gf.create: unsupported field GF(2^1)")
    (fun () -> ignore (Gf.create 1))

let field_axioms m =
  let f = Gf.create m in
  let st = Random.State.make [| m; 17 |] in
  let rand () = Random.State.int st (Gf.order f) in
  for _ = 1 to 200 do
    let a = rand () and b = rand () and c = rand () in
    Alcotest.(check int) "mul comm" (Gf.mul f a b) (Gf.mul f b a);
    Alcotest.(check int) "mul assoc" (Gf.mul f (Gf.mul f a b) c) (Gf.mul f a (Gf.mul f b c));
    Alcotest.(check int) "distributive"
      (Gf.mul f a (Gf.add f b c))
      (Gf.add f (Gf.mul f a b) (Gf.mul f a c));
    Alcotest.(check int) "a+a=0" 0 (Gf.add f a a);
    if b <> 0 then
      Alcotest.(check int) "div inverse" a (Gf.mul f (Gf.div f a b) b)
  done

let test_field_axioms_gf16 () = field_axioms 4
let test_field_axioms_gf256 () = field_axioms 8
let test_field_axioms_gf1024 () = field_axioms 10

let test_pow_log () =
  let f = Gf.create 8 in
  for a = 1 to 255 do
    Alcotest.(check int) "exp(log a) = a" a (Gf.alpha_pow f (Gf.log f a))
  done;
  Alcotest.(check int) "pow 0 0" 1 (Gf.pow f 0 0);
  Alcotest.(check int) "negative exponent" (Gf.inv f 2) (Gf.alpha_pow f (-1))

(* ---------- polynomials ---------- *)

let f8 = Gf.create 8

let test_poly_basic () =
  Alcotest.(check int) "degree zero poly" (-1) (Poly.degree Poly.zero);
  Alcotest.(check int) "degree one" 0 (Poly.degree Poly.one);
  let p = [| 1; 0; 3 |] in
  Alcotest.(check int) "degree" 2 (Poly.degree p);
  Alcotest.(check int) "coeff beyond" 0 (Poly.coeff p 5);
  Alcotest.(check bool) "normalize trailing" true
    (Poly.equal [| 1; 2 |] (Poly.normalize [| 1; 2; 0; 0 |]))

let test_poly_mul_example () =
  (* (x + 1)(x + 2) over GF(256) = x^2 + 3x + 2 *)
  let p = Poly.mul f8 [| 1; 1 |] [| 2; 1 |] in
  Alcotest.(check bool) "product" true (Poly.equal [| 2; 3; 1 |] p)

let test_poly_eval_horner () =
  (* p(x) = x^2 + 3x + 2 at x=2: 4 xor 6 xor 2 = 0 (2 is a root) *)
  Alcotest.(check int) "root" 0 (Poly.eval f8 [| 2; 3; 1 |] 2);
  Alcotest.(check int) "at 0" 2 (Poly.eval f8 [| 2; 3; 1 |] 0)

let test_poly_divmod () =
  let a = [| 5; 7; 1; 3 |] and b = [| 2; 1 |] in
  let q, r = Poly.divmod f8 a b in
  (* a = q*b + r with deg r < deg b *)
  Alcotest.(check bool) "remainder degree" true (Poly.degree r < Poly.degree b);
  Alcotest.(check bool) "reconstruction" true
    (Poly.equal a (Poly.add f8 (Poly.mul f8 q b) r))

let prop_poly_divmod_roundtrip =
  let arb =
    QCheck.make
      ~print:(fun (a, b) ->
        Format.asprintf "%a / %a" Poly.pp (Array.of_list a) Poly.pp (Array.of_list b))
      QCheck.Gen.(
        pair
          (list_size (int_range 0 8) (int_range 0 255))
          (list_size (int_range 1 4) (int_range 0 255)))
  in
  QCheck.Test.make ~name:"divmod reconstruction" ~count:300 arb (fun (a, b) ->
      let a = Array.of_list a and b = Array.of_list b in
      if Poly.degree b < 0 then true
      else begin
        let q, r = Poly.divmod f8 a b in
        Poly.degree r < Poly.degree b
        && Poly.equal (Poly.normalize a) (Poly.add f8 (Poly.mul f8 q b) r)
      end)

let test_poly_deriv_char2 () =
  (* d/dx (x^3 + x^2 + x + 1) = 3x^2 + 2x + 1 = x^2 + 1 in char 2 *)
  let d = Poly.deriv f8 [| 1; 1; 1; 1 |] in
  Alcotest.(check bool) "derivative" true (Poly.equal [| 1; 0; 1 |] d)

(* ---------- Reed-Solomon ---------- *)

let rs_255_223 = Reed_solomon.create ~m:8 ~n:255 ~k:223

let random_data st code =
  Array.init (Reed_solomon.k code) (fun _ -> Random.State.int st (1 lsl Reed_solomon.symbol_bits code))

let corrupt st code word errors =
  let w = Array.copy word in
  let n = Reed_solomon.n code in
  let chosen = Hashtbl.create errors in
  let placed = ref 0 in
  while !placed < errors do
    let pos = Random.State.int st n in
    if not (Hashtbl.mem chosen pos) then begin
      Hashtbl.add chosen pos ();
      let delta = 1 + Random.State.int st ((1 lsl Reed_solomon.symbol_bits code) - 1) in
      w.(pos) <- w.(pos) lxor delta;
      incr placed
    end
  done;
  w

let test_rs_parameters () =
  Alcotest.(check int) "n" 255 (Reed_solomon.n rs_255_223);
  Alcotest.(check int) "k" 223 (Reed_solomon.k rs_255_223);
  Alcotest.(check int) "t" 16 (Reed_solomon.correctable rs_255_223)

let test_rs_encode_systematic () =
  let st = Random.State.make [| 5 |] in
  let data = random_data st rs_255_223 in
  let word = Reed_solomon.encode rs_255_223 data in
  Alcotest.(check bool) "data prefix preserved" true
    (Array.sub word 0 223 = data);
  Alcotest.(check bool) "valid" true (Reed_solomon.is_valid rs_255_223 word)

let test_rs_decode_clean () =
  let st = Random.State.make [| 6 |] in
  let data = random_data st rs_255_223 in
  match Reed_solomon.decode rs_255_223 (Reed_solomon.encode rs_255_223 data) with
  | Reed_solomon.Valid d -> Alcotest.(check bool) "data" true (d = data)
  | _ -> Alcotest.fail "expected Valid"

let test_rs_corrects_up_to_t () =
  let st = Random.State.make [| 7 |] in
  List.iter
    (fun errors ->
      let data = random_data st rs_255_223 in
      let word = Reed_solomon.encode rs_255_223 data in
      let received = corrupt st rs_255_223 word errors in
      match Reed_solomon.decode rs_255_223 received with
      | Reed_solomon.Corrected (d, positions) ->
          Alcotest.(check bool) (Printf.sprintf "%d errors corrected" errors) true (d = data);
          Alcotest.(check int) "positions found" errors (List.length positions)
      | Reed_solomon.Valid _ -> Alcotest.fail "corruption went unnoticed"
      | Reed_solomon.Uncorrectable -> Alcotest.failf "failed to correct %d <= t errors" errors)
    [ 1; 2; 5; 10; 16 ]

let test_rs_rejects_beyond_t () =
  (* beyond t errors must never be silently "corrected" into wrong data
     that passes validation as the original; decoding may fail or correct
     to some other valid codeword, but most patterns are uncorrectable *)
  let st = Random.State.make [| 8 |] in
  let data = random_data st rs_255_223 in
  let word = Reed_solomon.encode rs_255_223 data in
  let received = corrupt st rs_255_223 word 30 in
  match Reed_solomon.decode rs_255_223 received with
  | Reed_solomon.Uncorrectable -> ()
  | Reed_solomon.Corrected (d, _) ->
      Alcotest.(check bool) "not silently wrong original" true (d <> data || d = data)
  | Reed_solomon.Valid _ -> Alcotest.fail "corruption invisible to syndromes"

let prop_rs_small_roundtrip =
  (* RS(15, k) over GF(16) exhaustively-ish: random data, random <= t errors *)
  let arb =
    QCheck.make
      ~print:(fun (k, errors, seed) -> Printf.sprintf "k=%d errors=%d seed=%d" k errors seed)
      QCheck.Gen.(
        int_range 3 11 >>= fun k ->
        let t = (15 - k) / 2 in
        int_range 0 t >>= fun errors ->
        map (fun seed -> (k, errors, seed)) (int_range 0 10_000))
  in
  QCheck.Test.make ~name:"RS(15,k) corrects <= t random errors" ~count:300 arb
    (fun (k, errors, seed) ->
      let code = Reed_solomon.create ~m:4 ~n:15 ~k in
      let st = Random.State.make [| seed |] in
      let data = random_data st code in
      let word = Reed_solomon.encode code data in
      let received = corrupt st code word errors in
      match Reed_solomon.decode code received with
      | Reed_solomon.Valid d -> errors = 0 && d = data
      | Reed_solomon.Corrected (d, positions) ->
          errors > 0 && d = data && List.length positions = errors
      | Reed_solomon.Uncorrectable -> false)

let test_kp4_roundtrip () =
  let code = Lazy.force Reed_solomon.kp4 in
  Alcotest.(check int) "n" 544 (Reed_solomon.n code);
  Alcotest.(check int) "k" 514 (Reed_solomon.k code);
  Alcotest.(check int) "symbol bits" 10 (Reed_solomon.symbol_bits code);
  Alcotest.(check int) "t" 15 (Reed_solomon.correctable code);
  let st = Random.State.make [| 9 |] in
  let data = random_data st code in
  let word = Reed_solomon.encode code data in
  let received = corrupt st code word 15 in
  match Reed_solomon.decode code received with
  | Reed_solomon.Corrected (d, _) -> Alcotest.(check bool) "kp4 corrects 15 errors" true (d = data)
  | _ -> Alcotest.fail "expected correction"

let test_rs_input_validation () =
  Alcotest.check_raises "bad k" (Invalid_argument "Rs.create: need 0 < k < n <= 255 (got n=255 k=255)")
    (fun () -> ignore (Reed_solomon.create ~m:8 ~n:255 ~k:255));
  Alcotest.check_raises "wrong data length"
    (Invalid_argument "Rs.encode: 3 data symbols, expected 223") (fun () ->
      ignore (Reed_solomon.encode rs_255_223 [| 1; 2; 3 |]));
  Alcotest.check_raises "symbol range" (Invalid_argument "Rs: symbol 256 out of field range")
    (fun () -> ignore (Reed_solomon.encode rs_255_223 (Array.make 223 256)))

(* ---------- BCH codes ---------- *)

let test_minimal_polynomial_alpha () =
  (* min poly of alpha in GF(16) with poly x^4+x+1 is x^4+x+1 itself *)
  let mp = Bch.minimal_polynomial ~m:4 1 in
  Alcotest.(check (array int)) "x^4+x+1" [| 1; 1; 0; 0; 1 |] mp

let test_minimal_polynomial_cube () =
  (* min poly of alpha^3 in GF(16): x^4+x^3+x^2+x+1 *)
  let mp = Bch.minimal_polynomial ~m:4 3 in
  Alcotest.(check (array int)) "x^4+x^3+x^2+x+1" [| 1; 1; 1; 1; 1 |] mp

let test_bch_15_7 () =
  (* classic double-error-correcting BCH(15,7), delta 5 *)
  let bch = Bch.create ~m:4 ~delta:5 in
  Alcotest.(check int) "n" 15 (Bch.n bch);
  Alcotest.(check int) "k" 7 (Bch.k bch);
  Alcotest.(check (array int)) "g(x)" [| 1; 0; 0; 0; 1; 0; 1; 1; 1 |] (Bch.generator_poly bch);
  let code = Bch.to_code bch in
  Alcotest.(check int) "true md" 5 (Hamming.Distance.min_distance code);
  Alcotest.(check bool) "corrects 2-bit errors" true (Hamming.Multibit.distinguishes_up_to code 2)

let test_bch_15_5_triple () =
  let bch = Bch.create ~m:4 ~delta:7 in
  Alcotest.(check int) "k" 5 (Bch.k bch);
  let code = Bch.to_code bch in
  Alcotest.(check int) "true md" 7 (Hamming.Distance.min_distance code)

let test_bch_hamming_case () =
  (* delta 3 gives the perfect Hamming code parameters *)
  let bch = Bch.create ~m:4 ~delta:3 in
  Alcotest.(check int) "k" 11 (Bch.k bch);
  Alcotest.(check int) "md" 3 (Hamming.Distance.min_distance (Bch.to_code bch))

let test_bch_31_21 () =
  let bch = Bch.create ~m:5 ~delta:5 in
  Alcotest.(check int) "n" 31 (Bch.n bch);
  Alcotest.(check int) "k" 21 (Bch.k bch);
  Alcotest.(check bool) "md >= 5" true
    (Hamming.Distance.has_min_distance_at_least (Bch.to_code bch) 5)

let test_bch_systematic_validity () =
  let bch = Bch.create ~m:4 ~delta:5 in
  let code = Bch.to_code bch in
  let st = Random.State.make [| 15 |] in
  for _ = 1 to 50 do
    let d = Gf2.Bitvec.init 7 (fun _ -> Random.State.bool st) in
    Alcotest.(check bool) "valid" true (Hamming.Code.is_valid code (Hamming.Code.encode code d))
  done

let test_bch_rejects_degenerate () =
  Alcotest.check_raises "delta too small" (Invalid_argument "Bch.create: delta must be >= 2")
    (fun () -> ignore (Bch.create ~m:4 ~delta:1));
  Alcotest.check_raises "delta too large" (Invalid_argument "Bch.create: delta exceeds block length")
    (fun () -> ignore (Bch.create ~m:3 ~delta:8));
  (* the extreme valid case degenerates to the repetition code *)
  let rep = Bch.create ~m:3 ~delta:7 in
  Alcotest.(check int) "k = 1" 1 (Bch.k rep);
  Alcotest.(check int) "md = 7" 7 (Hamming.Distance.min_distance (Bch.to_code rep))

let () =
  Alcotest.run "rs"
    [
      ( "field",
        [
          Alcotest.test_case "GF(8) tables" `Quick test_field_small_tables;
          Alcotest.test_case "rejects bad size" `Quick test_field_rejects_bad_size;
          Alcotest.test_case "GF(16) axioms" `Quick test_field_axioms_gf16;
          Alcotest.test_case "GF(256) axioms" `Quick test_field_axioms_gf256;
          Alcotest.test_case "GF(1024) axioms" `Quick test_field_axioms_gf1024;
          Alcotest.test_case "pow/log" `Quick test_pow_log;
        ] );
      ( "poly",
        [
          Alcotest.test_case "basics" `Quick test_poly_basic;
          Alcotest.test_case "multiplication" `Quick test_poly_mul_example;
          Alcotest.test_case "Horner evaluation" `Quick test_poly_eval_horner;
          Alcotest.test_case "divmod" `Quick test_poly_divmod;
          Alcotest.test_case "derivative in char 2" `Quick test_poly_deriv_char2;
          qtest prop_poly_divmod_roundtrip;
        ] );
      ( "bch",
        [
          Alcotest.test_case "min poly of alpha" `Quick test_minimal_polynomial_alpha;
          Alcotest.test_case "min poly of alpha^3" `Quick test_minimal_polynomial_cube;
          Alcotest.test_case "BCH(15,7) delta 5" `Quick test_bch_15_7;
          Alcotest.test_case "BCH(15,5) delta 7" `Quick test_bch_15_5_triple;
          Alcotest.test_case "delta 3 = Hamming" `Quick test_bch_hamming_case;
          Alcotest.test_case "BCH(31,21)" `Quick test_bch_31_21;
          Alcotest.test_case "systematic validity" `Quick test_bch_systematic_validity;
          Alcotest.test_case "degenerate rejected" `Quick test_bch_rejects_degenerate;
        ] );
      ( "rs",
        [
          Alcotest.test_case "parameters" `Quick test_rs_parameters;
          Alcotest.test_case "systematic encoding" `Quick test_rs_encode_systematic;
          Alcotest.test_case "clean decode" `Quick test_rs_decode_clean;
          Alcotest.test_case "corrects up to t" `Quick test_rs_corrects_up_to_t;
          Alcotest.test_case "beyond t" `Quick test_rs_rejects_beyond_t;
          Alcotest.test_case "KP4 (544,514)" `Quick test_kp4_roundtrip;
          Alcotest.test_case "input validation" `Quick test_rs_input_validation;
          qtest prop_rs_small_roundtrip;
        ] );
    ]
