(* Tests for the finite-domain SMT layer: expression algebra, Tseitin
   translation, cardinality and pseudo-Boolean encodings, bit-vector
   circuits, and the assertion stack. *)

open Smtlite

let qtest = QCheck_alcotest.to_alcotest

let check_sat ctx = Alcotest.(check bool) "sat" true (Ctx.check ctx = Ctx.Sat)
let check_unsat ctx = Alcotest.(check bool) "unsat" true (Ctx.check ctx = Ctx.Unsat)

(* ---------- Expr smart constructors ---------- *)

let test_expr_constants () =
  Alcotest.(check bool) "not true = false" true (Expr.equal (Expr.not_ Expr.true_) Expr.false_);
  Alcotest.(check bool) "double negation" true
    (Expr.equal (Expr.not_ (Expr.not_ (Expr.var 3))) (Expr.var 3));
  Alcotest.(check bool) "and []" true (Expr.is_true (Expr.and_ []));
  Alcotest.(check bool) "or []" true (Expr.is_false (Expr.or_ []))

let test_expr_simplification () =
  let x = Expr.var 0 and y = Expr.var 1 in
  Alcotest.(check bool) "x and not x" true (Expr.is_false (Expr.and_ [ x; Expr.not_ x ]));
  Alcotest.(check bool) "x or not x" true (Expr.is_true (Expr.or_ [ x; Expr.not_ x ]));
  Alcotest.(check bool) "xor x x" true (Expr.is_false (Expr.xor x x));
  Alcotest.(check bool) "xor canonical order" true
    (Expr.equal (Expr.xor x y) (Expr.xor y x));
  Alcotest.(check bool) "hash consing" true
    (Expr.equal (Expr.and_ [ x; y ]) (Expr.and_ [ y; x ]))

let test_expr_eval () =
  let x = Expr.var 0 and y = Expr.var 1 in
  let e = Expr.ite (Expr.xor x y) (Expr.and_ [ x; y ]) (Expr.or_ [ x; y ]) in
  let ev vx vy = Expr.eval (fun i -> if i = 0 then vx else vy) e in
  Alcotest.(check bool) "00" false (ev false false);
  Alcotest.(check bool) "01" false (ev false true);
  Alcotest.(check bool) "10" false (ev true false);
  Alcotest.(check bool) "11" true (ev true true)

let test_expr_vars_size () =
  let e = Expr.and_ [ Expr.var 5; Expr.xor (Expr.var 2) (Expr.var 5) ] in
  Alcotest.(check (list int)) "vars" [ 2; 5 ] (Expr.vars e);
  Alcotest.(check bool) "size positive" true (Expr.size e > 0)

(* ---------- Tseitin translation soundness ---------- *)

(* random expressions over few vars; solver must agree with brute-force *)
let arb_expr =
  let open QCheck.Gen in
  let nvars = 4 in
  let rec gen depth =
    if depth = 0 then map Expr.var (int_range 0 (nvars - 1))
    else
      frequency
        [
          (2, map Expr.var (int_range 0 (nvars - 1)));
          (1, return Expr.true_);
          (2, map Expr.not_ (gen (depth - 1)));
          (3, map Expr.and_ (list_size (int_range 1 3) (gen (depth - 1))));
          (3, map Expr.or_ (list_size (int_range 1 3) (gen (depth - 1))));
          (2, map2 Expr.xor (gen (depth - 1)) (gen (depth - 1)));
          (2, map3 Expr.ite (gen (depth - 1)) (gen (depth - 1)) (gen (depth - 1)));
        ]
  in
  QCheck.make
    ~print:(fun e -> Format.asprintf "%a" Expr.pp e)
    (int_range 1 4 >>= gen)

let brute_force_sat e =
  let vars = Expr.vars e in
  let n = List.length vars in
  let rec go assignment = function
    | [] -> Expr.eval (fun i -> List.assoc i assignment) e
    | v :: rest ->
        go ((v, false) :: assignment) rest || go ((v, true) :: assignment) rest
  in
  if n = 0 then Expr.eval (fun _ -> false) e else go [] vars

let prop_tseitin_agrees_with_bruteforce =
  QCheck.Test.make ~name:"Tseitin sat agrees with brute force" ~count:500 arb_expr
    (fun e ->
      let ctx = Ctx.create () in
      Ctx.assert_ ctx e;
      (Ctx.check ctx = Ctx.Sat) = brute_force_sat e)

let prop_tseitin_model_evaluates_true =
  QCheck.Test.make ~name:"Tseitin model satisfies the expression" ~count:500 arb_expr
    (fun e ->
      let ctx = Ctx.create () in
      Ctx.assert_ ctx e;
      match Ctx.check ctx with
      | Ctx.Unsat -> true
      | Ctx.Sat -> Ctx.model_bool ctx e)

(* ---------- push / pop ---------- *)

let test_push_pop_basic () =
  let ctx = Ctx.create () in
  let x = Expr.var 0 in
  Ctx.assert_ ctx x;
  check_sat ctx;
  Ctx.push ctx;
  Ctx.assert_ ctx (Expr.not_ x);
  check_unsat ctx;
  Ctx.pop ctx;
  check_sat ctx;
  Alcotest.(check bool) "model respects base assertion" true (Ctx.model_bool ctx x)

let test_push_pop_nested () =
  let ctx = Ctx.create () in
  let x = Expr.var 0 and y = Expr.var 1 in
  Ctx.push ctx;
  Ctx.assert_ ctx (Expr.or_ [ x; y ]);
  Ctx.push ctx;
  Ctx.assert_ ctx (Expr.not_ x);
  Ctx.assert_ ctx (Expr.not_ y);
  check_unsat ctx;
  Ctx.pop ctx;
  check_sat ctx;
  Ctx.pop ctx;
  Alcotest.(check int) "level" 0 (Ctx.level ctx);
  check_sat ctx

let test_pop_empty_raises () =
  let ctx = Ctx.create () in
  Alcotest.check_raises "pop on empty" (Invalid_argument "Ctx.pop: empty assertion stack")
    (fun () -> Ctx.pop ctx)

let test_assumptions_via_check () =
  let ctx = Ctx.create () in
  let x = Expr.var 0 and y = Expr.var 1 in
  Ctx.assert_ ctx (Expr.imp x y);
  Alcotest.(check bool) "sat assuming x" true
    (Ctx.check ~assumptions:[ x ] ctx = Ctx.Sat);
  Alcotest.(check bool) "y forced" true (Ctx.model_bool ctx y);
  Alcotest.(check bool) "unsat assuming x & ~y" true
    (Ctx.check ~assumptions:[ x; Expr.not_ y ] ctx = Ctx.Unsat)

(* ---------- bit-vector circuits ---------- *)

let eval_const bv =
  match Bv.to_int_opt bv with Some x -> x | None -> Alcotest.fail "not constant"

let test_bv_constants () =
  Alcotest.(check int) "of/to int" 37 (eval_const (Bv.of_int ~width:8 37));
  Alcotest.(check int) "add" 100 (eval_const (Bv.add (Bv.of_int ~width:8 63) (Bv.of_int ~width:8 37)));
  Alcotest.(check int) "scale" 111 (eval_const (Bv.scale 37 (Bv.of_int ~width:2 3)));
  Alcotest.(check int) "sum" 10
    (eval_const (Bv.sum [ Bv.of_int ~width:4 1; Bv.of_int ~width:4 2; Bv.of_int ~width:4 3; Bv.of_int ~width:4 4 ]))

let test_bv_compare_constants () =
  let c x = Bv.of_int ~width:8 x in
  Alcotest.(check bool) "3 < 5" true (Expr.is_true (Bv.ult (c 3) (c 5)));
  Alcotest.(check bool) "5 < 3" true (Expr.is_false (Bv.ult (c 5) (c 3)));
  Alcotest.(check bool) "5 <= 5" true (Expr.is_true (Bv.ule (c 5) (c 5)));
  Alcotest.(check bool) "5 = 5" true (Expr.is_true (Bv.eq (c 5) (c 5)));
  Alcotest.(check bool) "4 = 5" true (Expr.is_false (Bv.eq (c 4) (c 5)))

let prop_bv_add_matches_int =
  QCheck.Test.make ~name:"bv add on solver vars matches integers" ~count:100
    (QCheck.pair (QCheck.int_bound 255) (QCheck.int_bound 255))
    (fun (x, y) ->
      (* build symbolic vectors, constrain them to x and y, solve, read sum *)
      let ctx = Ctx.create () in
      let a = Array.init 8 (fun i -> Expr.var i) in
      let b = Array.init 8 (fun i -> Expr.var (8 + i)) in
      Ctx.assert_ ctx (Bv.eq a (Bv.of_int ~width:8 x));
      Ctx.assert_ ctx (Bv.eq b (Bv.of_int ~width:8 y));
      let s = Bv.add a b in
      match Ctx.check ctx with
      | Ctx.Unsat -> false
      | Ctx.Sat -> Ctx.model_bv ctx s = x + y)

let prop_bv_popcount_matches =
  QCheck.Test.make ~name:"bv popcount matches" ~count:100
    (QCheck.list_of_size (QCheck.Gen.int_range 1 12) QCheck.bool)
    (fun bits ->
      let ctx = Ctx.create () in
      let es = List.mapi (fun i b -> ignore b; Expr.var i) bits in
      List.iteri
        (fun i b -> Ctx.assert_ ctx (if b then Expr.var i else Expr.not_ (Expr.var i)))
        bits;
      let pc = Bv.popcount es in
      match Ctx.check ctx with
      | Ctx.Unsat -> false
      | Ctx.Sat ->
          Ctx.model_bv ctx pc = List.length (List.filter Fun.id bits))

(* ---------- cardinality encodings ---------- *)

let count_true bits = List.length (List.filter Fun.id bits)

let card_case enc name =
  let prop =
    QCheck.Test.make ~name ~count:200
      (QCheck.pair (QCheck.list_of_size (QCheck.Gen.int_range 1 10) QCheck.bool)
         (QCheck.int_bound 11))
      (fun (bits, k) ->
        let es = List.mapi (fun i _ -> Expr.var i) bits in
        let assignment i = List.nth bits i in
        let am = Card.at_most enc es k in
        let al = Card.at_least enc es k in
        let ex = Card.exactly enc es k in
        let n = count_true bits in
        Expr.eval assignment am = (n <= k)
        && Expr.eval assignment al = (n >= k)
        && Expr.eval assignment ex = (n = k))
  in
  qtest prop

let prop_counts_semantics enc name =
  qtest
    (QCheck.Test.make ~name ~count:200
       (QCheck.list_of_size (QCheck.Gen.int_range 1 10) QCheck.bool)
       (fun bits ->
         let es = List.mapi (fun i _ -> Expr.var i) bits in
         let assignment i = List.nth bits i in
         let c = Card.counts enc es in
         let n = count_true bits in
         Array.to_list c
         |> List.mapi (fun i o -> Expr.eval assignment o = (n >= i + 1))
         |> List.for_all Fun.id))

let prop_card_solver_bound enc name =
  (* solver-side check: at_most k with forced k+1 trues must be UNSAT *)
  qtest
    (QCheck.Test.make ~name ~count:50
       (QCheck.pair (QCheck.int_range 1 8) (QCheck.int_range 0 7))
       (fun (n, k) ->
         let k = min k (n - 1) in
         let ctx = Ctx.create () in
         let es = List.init n Expr.var in
         Ctx.assert_ ctx (Card.at_most enc es k);
         Ctx.assert_ ctx (Card.at_least enc es (k + 1));
         Ctx.check ctx = Ctx.Unsat))

let prop_pb_le_matches =
  QCheck.Test.make ~name:"pb_le matches integer semantics" ~count:300
    (QCheck.triple
       (QCheck.list_of_size (QCheck.Gen.int_range 1 8) (QCheck.int_bound 20))
       (QCheck.list_of_size (QCheck.Gen.int_range 1 8) QCheck.bool)
       (QCheck.int_bound 100))
    (fun (coeffs, bits, k) ->
      let n = min (List.length coeffs) (List.length bits) in
      let coeffs = List.filteri (fun i _ -> i < n) coeffs in
      let bits = List.filteri (fun i _ -> i < n) bits in
      let es = List.mapi (fun i _ -> Expr.var i) bits in
      let assignment i = List.nth bits i in
      let total =
        List.fold_left2 (fun acc c b -> if b then acc + c else acc) 0 coeffs bits
      in
      Expr.eval assignment (Card.pb_le ~coeffs es k) = (total <= k)
      && Expr.eval assignment (Card.pb_ge ~coeffs es k) = (total >= k))

let test_pb_rejects_negative () =
  Alcotest.check_raises "negative coeff" (Invalid_argument "Card.pb_le: negative coefficient")
    (fun () -> ignore (Card.pb_le ~coeffs:[ -1 ] [ Expr.var 0 ] 3))

(* ---------- all-SAT enumeration ---------- *)

let test_enumerate_exactly_k () =
  (* choosing exactly 2 of 5 variables has C(5,2) = 10 solutions *)
  let ctx = Ctx.create () in
  let vars = List.init 5 Expr.var in
  Ctx.assert_ ctx (Card.exactly Card.Sequential vars 2);
  let seen = ref [] in
  let count = Ctx.enumerate ctx ~over:vars (fun v -> seen := v :: !seen) in
  Alcotest.(check int) "C(5,2)" 10 count;
  Alcotest.(check int) "all distinct" 10 (List.length (List.sort_uniq compare !seen));
  List.iter
    (fun v ->
      Alcotest.(check int) "weight 2" 2 (List.length (List.filter Fun.id v)))
    !seen;
  (* the context is unchanged: still satisfiable with all-true blocked etc. *)
  Alcotest.(check bool) "context restored" true (Ctx.check ctx = Ctx.Sat)

let test_enumerate_limit () =
  let ctx = Ctx.create () in
  let vars = List.init 6 Expr.var in
  Ctx.assert_ ctx Expr.true_;
  let count = Ctx.enumerate ~limit:5 ctx ~over:vars (fun _ -> ()) in
  Alcotest.(check int) "limit respected" 5 count

let test_enumerate_unsat () =
  let ctx = Ctx.create () in
  Ctx.assert_ ctx Expr.false_;
  Alcotest.(check int) "no models" 0 (Ctx.enumerate ctx ~over:[ Expr.var 0 ] (fun _ -> ()))

let prop_enumerate_counts_match_reference =
  QCheck.Test.make ~name:"enumeration count = brute-force model count" ~count:100 arb_expr
    (fun e ->
      let vars = Expr.vars e in
      if vars = [] then true
      else begin
        let ctx = Ctx.create () in
        Ctx.assert_ ctx e;
        let over = List.map Expr.var vars in
        let sat_count = Ctx.enumerate ctx ~over (fun _ -> ()) in
        (* brute force over the projected variables *)
        let n = List.length vars in
        let brute = ref 0 in
        for mask = 0 to (1 lsl n) - 1 do
          let assignment i =
            let rec index j = function
              | [] -> assert false
              | v :: rest -> if v = i then j else index (j + 1) rest
            in
            (mask lsr index 0 vars) land 1 = 1
          in
          if Expr.eval assignment e then incr brute
        done;
        sat_count = !brute
      end)

(* ---------- SMT-LIB front end ---------- *)

let test_smtlib_basic_sat () =
  let out =
    Smtlib.run_to_string
      "(set-logic QF_UF)\n(declare-const a Bool)\n(declare-const b Bool)\n\
       (assert (and a (not b)))\n(check-sat)\n(get-model)\n"
  in
  Alcotest.(check bool) "says sat" true (String.length out >= 3 && String.sub out 0 3 = "sat");
  Alcotest.(check bool) "model has a=true" true
    (String.length out > 0
    &&
    let re = "(define-fun a () Bool true)" in
    let rec contains i =
      i + String.length re <= String.length out
      && (String.sub out i (String.length re) = re || contains (i + 1))
    in
    contains 0)

let test_smtlib_unsat () =
  let events =
    Smtlib.run "(declare-const p Bool)\n(assert p)\n(assert (not p))\n(check-sat)\n"
  in
  Alcotest.(check bool) "unsat" true (events = [ Smtlib.Check_sat Ctx.Unsat ])

let test_smtlib_push_pop () =
  let events =
    Smtlib.run
      "(declare-const p Bool)\n(assert p)\n(check-sat)\n(push 1)\n(assert (not p))\n\
       (check-sat)\n(pop 1)\n(check-sat)\n"
  in
  Alcotest.(check bool) "sat/unsat/sat" true
    (events
    = [ Smtlib.Check_sat Ctx.Sat; Smtlib.Check_sat Ctx.Unsat; Smtlib.Check_sat Ctx.Sat ])

let test_smtlib_operators () =
  (* xor-chain equivalence: (= (xor a b c) d) with forced values *)
  let events =
    Smtlib.run
      "(declare-const a Bool)(declare-const b Bool)(declare-const c Bool)\n\
       (declare-const d Bool)\n\
       (assert a)(assert (not b))(assert (not c))\n\
       (assert (= d (xor a b c)))\n\
       (assert (ite d true false))\n\
       (assert (=> b false))\n\
       (assert (distinct a b))\n\
       (check-sat)\n"
  in
  Alcotest.(check bool) "sat with consistent ops" true (events = [ Smtlib.Check_sat Ctx.Sat ])

let test_smtlib_comments_and_echo () =
  let out =
    Smtlib.run_to_string "; header comment\n(echo \"hello world\")\n(exit)\n(check-sat)\n"
  in
  Alcotest.(check string) "echo, exit stops" "hello world" out

let test_smtlib_errors () =
  List.iter
    (fun src ->
      match Smtlib.run src with
      | exception Smtlib.Error _ -> ()
      | _ -> Alcotest.failf "%S should fail" src)
    [
      "(assert unknown)";
      "(declare-const x Int)";
      "(get-model)";
      "(frobnicate)";
      "(assert (and p";
      "(set-logic QF_LIA)";
      "(declare-const a Bool)(declare-const a Bool)";
    ]

(* differential: random expressions rendered to SMT-LIB agree with Ctx *)
let rec render_smtlib e =
  match Expr.node e with
  | Expr.True -> "true"
  | Expr.Var i -> Printf.sprintf "v%d" i
  | Expr.Not x -> Printf.sprintf "(not %s)" (render_smtlib x)
  | Expr.And es -> "(and " ^ String.concat " " (List.map render_smtlib es) ^ ")"
  | Expr.Or es -> "(or " ^ String.concat " " (List.map render_smtlib es) ^ ")"
  | Expr.Xor (a, b) -> Printf.sprintf "(xor %s %s)" (render_smtlib a) (render_smtlib b)
  | Expr.Ite (c, a, b) ->
      Printf.sprintf "(ite %s %s %s)" (render_smtlib c) (render_smtlib a) (render_smtlib b)

let prop_smtlib_agrees_with_ctx =
  QCheck.Test.make ~name:"SMT-LIB front end agrees with direct Ctx" ~count:200 arb_expr
    (fun e ->
      let decls =
        Expr.vars e
        |> List.map (fun i -> Printf.sprintf "(declare-const v%d Bool)" i)
        |> String.concat "\n"
      in
      let script = decls ^ "\n(assert " ^ render_smtlib e ^ ")\n(check-sat)\n" in
      let direct =
        let ctx = Ctx.create () in
        Ctx.assert_ ctx e;
        Ctx.check ctx
      in
      Smtlib.run script = [ Smtlib.Check_sat direct ])

(* ---------- fresh variables ---------- *)

let test_fresh_distinct () =
  let a = Fresh.make () and b = Fresh.make () in
  Alcotest.(check bool) "distinct" false (Expr.equal a b)

let test_deadline_timeout () =
  (* a hard pigeonhole instance with an immediate deadline must time out *)
  let ctx = Ctx.create () in
  let pigeons = 9 and holes = 8 in
  let var p h = Expr.var ((p * holes) + h) in
  for p = 0 to pigeons - 1 do
    Ctx.assert_ ctx (Expr.or_ (List.init holes (fun h -> var p h)))
  done;
  for h = 0 to holes - 1 do
    for p1 = 0 to pigeons - 1 do
      for p2 = p1 + 1 to pigeons - 1 do
        Ctx.assert_ ctx (Expr.or_ [ Expr.not_ (var p1 h); Expr.not_ (var p2 h) ])
      done
    done
  done;
  match Ctx.check ~deadline:(Unix.gettimeofday () -. 1.0) ctx with
  | exception Ctx.Timeout -> ()
  | _ -> Alcotest.fail "expected Timeout"

let () =
  Alcotest.run "smtlite"
    [
      ( "expr",
        [
          Alcotest.test_case "constants" `Quick test_expr_constants;
          Alcotest.test_case "simplification" `Quick test_expr_simplification;
          Alcotest.test_case "eval" `Quick test_expr_eval;
          Alcotest.test_case "vars/size" `Quick test_expr_vars_size;
        ] );
      ( "tseitin",
        [
          qtest prop_tseitin_agrees_with_bruteforce;
          qtest prop_tseitin_model_evaluates_true;
        ] );
      ( "stack",
        [
          Alcotest.test_case "push/pop basic" `Quick test_push_pop_basic;
          Alcotest.test_case "push/pop nested" `Quick test_push_pop_nested;
          Alcotest.test_case "pop empty raises" `Quick test_pop_empty_raises;
          Alcotest.test_case "assumptions" `Quick test_assumptions_via_check;
          Alcotest.test_case "deadline timeout" `Quick test_deadline_timeout;
        ] );
      ( "bv",
        [
          Alcotest.test_case "constants" `Quick test_bv_constants;
          Alcotest.test_case "comparisons" `Quick test_bv_compare_constants;
          qtest prop_bv_add_matches_int;
          qtest prop_bv_popcount_matches;
        ] );
      ( "card",
        [
          card_case Card.Naive "naive at_most/at_least/exactly";
          card_case Card.Sequential "sequential at_most/at_least/exactly";
          card_case Card.Totalizer "totalizer at_most/at_least/exactly";
          card_case Card.Adder "adder at_most/at_least/exactly";
          prop_counts_semantics Card.Naive "naive counts";
          prop_counts_semantics Card.Sequential "sequential counts";
          prop_counts_semantics Card.Totalizer "totalizer counts";
          prop_card_solver_bound Card.Sequential "sequential solver bound";
          prop_card_solver_bound Card.Totalizer "totalizer solver bound";
          prop_card_solver_bound Card.Adder "adder solver bound";
          qtest prop_pb_le_matches;
          Alcotest.test_case "pb rejects negative" `Quick test_pb_rejects_negative;
        ] );
      ( "enumerate",
        [
          Alcotest.test_case "exactly-k count" `Quick test_enumerate_exactly_k;
          Alcotest.test_case "limit" `Quick test_enumerate_limit;
          Alcotest.test_case "unsat" `Quick test_enumerate_unsat;
          qtest prop_enumerate_counts_match_reference;
        ] );
      ( "smtlib",
        [
          Alcotest.test_case "basic sat + model" `Quick test_smtlib_basic_sat;
          Alcotest.test_case "unsat" `Quick test_smtlib_unsat;
          Alcotest.test_case "push/pop" `Quick test_smtlib_push_pop;
          Alcotest.test_case "operators" `Quick test_smtlib_operators;
          Alcotest.test_case "comments/echo/exit" `Quick test_smtlib_comments_and_echo;
          Alcotest.test_case "errors" `Quick test_smtlib_errors;
          qtest prop_smtlib_agrees_with_ctx;
        ] );
      ("fresh", [ Alcotest.test_case "distinct" `Quick test_fresh_distinct ]);
    ]
