test/test_synth.ml: Alcotest Array Cegis Driver Gf2 Hamming Lazy List Multibit_synth Optimize Printf Spec Synth Verify Weighted
