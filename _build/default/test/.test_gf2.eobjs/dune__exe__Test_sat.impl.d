test/test_sat.ml: Alcotest Dimacs Drat Fun List Lit Printf QCheck QCheck_alcotest Random Reference Sat Solver String
