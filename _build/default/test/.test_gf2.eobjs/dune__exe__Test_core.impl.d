test/test_core.ml: Alcotest Array Bytes Char Composite Design Fec_core Framing Fun Gen Hamming Lazy List Printf QCheck QCheck_alcotest Random Registry String Zip
