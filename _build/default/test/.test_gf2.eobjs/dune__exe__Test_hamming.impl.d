test/test_hamming.ml: Alcotest Array Bitvec Catalog Channel Chase Code Distance Emit Fastcodec Gf2 Hamming Lazy List Matrix Multibit Printf QCheck QCheck_alcotest Random Robustness String Weightdist
