test/test_codes.mli:
