test/test_smtlite.ml: Alcotest Array Bv Card Ctx Expr Format Fresh Fun List Printf QCheck QCheck_alcotest Smtlib Smtlite String Unix
