test/test_spec.ml: Alcotest Array Ast Eval Gen Hamming Lazy List Parse QCheck QCheck_alcotest Spec
