test/test_zip.mli:
