test/test_hamming.mli:
