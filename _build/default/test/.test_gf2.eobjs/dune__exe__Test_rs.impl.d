test/test_rs.ml: Alcotest Array Bch Format Gf Gf2 Hamming Hashtbl Lazy List Poly Printf QCheck QCheck_alcotest Random Reed_solomon Rs
