test/test_codes.ml: Alcotest Array Bitvec Conv Gf2 Hamming Hashtbl Lazy Ldpc Matrix Printf QCheck QCheck_alcotest Random
