test/test_integration.ml: Alcotest Array Bytes Channel Char Fec_core Filename Float Fun Gf2 Hamming Lazy List Printf Random Rs Spec String Synth Sys Unix
