test/test_rs.mli:
