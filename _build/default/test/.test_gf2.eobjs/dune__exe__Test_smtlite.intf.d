test/test_smtlite.mli:
