test/test_gf2.ml: Alcotest Bitvec Gf2 List Matrix Printf QCheck QCheck_alcotest String
