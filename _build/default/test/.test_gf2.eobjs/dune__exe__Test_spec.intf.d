test/test_spec.mli:
