test/test_channel.ml: Alcotest Array Awgn Bitflip Bsc Burst Channel Float Gf2 Hamming Lazy Montecarlo Printf Prng QCheck QCheck_alcotest
