test/test_zip.ml: Alcotest Array Bitio Buffer Bytes Char Crc32 Deflate Filename Fun Gen Gzip Huffman List Lz77 Printf QCheck QCheck_alcotest String Sys Tar Unix Zip
