test/test_gf2.mli:
