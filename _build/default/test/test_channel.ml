(* Tests for the channel substrate: PRNG determinism and distribution, BSC
   statistics, bit-flip profiles (Fig. 1 shapes), and the Monte-Carlo
   harness against analytic expectations. *)

open Channel

let qtest = QCheck_alcotest.to_alcotest

(* ---------- PRNG ---------- *)

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create 1 and b = Prng.create 2 in
  Alcotest.(check bool) "different streams" false (Prng.next_int64 a = Prng.next_int64 b)

let test_prng_copy_independent () =
  let a = Prng.create 7 in
  ignore (Prng.next_int64 a);
  let b = Prng.copy a in
  Alcotest.(check int64) "copy continues identically" (Prng.next_int64 a) (Prng.next_int64 b)

let test_prng_float_range () =
  let g = Prng.create 3 in
  for _ = 1 to 10_000 do
    let f = Prng.float g in
    Alcotest.(check bool) "in [0,1)" true (f >= 0.0 && f < 1.0)
  done

let test_prng_bits_range () =
  let g = Prng.create 4 in
  for _ = 1 to 10_000 do
    let v = Prng.bits g ~n:7 in
    Alcotest.(check bool) "7 bits" true (v >= 0 && v < 128)
  done

let test_prng_uniformity () =
  (* chi-squared-ish sanity: 16 buckets, 64k draws, each within 3% *)
  let g = Prng.create 99 in
  let buckets = Array.make 16 0 in
  let n = 65536 in
  for _ = 1 to n do
    let b = Prng.int_below g 16 in
    buckets.(b) <- buckets.(b) + 1
  done;
  Array.iter
    (fun c ->
      let expected = n / 16 in
      Alcotest.(check bool) "within 10%" true
        (abs (c - expected) < expected / 10))
    buckets

(* ---------- BSC ---------- *)

let test_bsc_flip_rate () =
  let g = Prng.create 11 in
  let total_flips = ref 0 in
  let trials = 20_000 and width = 32 in
  for _ = 1 to trials do
    let _, flips = Bsc.flip_word g ~p:0.1 ~width 0 in
    total_flips := !total_flips + flips
  done;
  let rate = float_of_int !total_flips /. float_of_int (trials * width) in
  Alcotest.(check bool) "about 10%" true (Float.abs (rate -. 0.1) < 0.005)

let test_bsc_zero_p () =
  let g = Prng.create 12 in
  let w, flips = Bsc.flip_word g ~p:0.0 ~width:40 0x12345 in
  Alcotest.(check int) "untouched" 0x12345 w;
  Alcotest.(check int) "no flips" 0 flips

let test_bsc_bitvec_matches_count () =
  let g = Prng.create 13 in
  let v = Gf2.Bitvec.create 100 in
  let v', flips = Bsc.flip_bitvec g ~p:0.3 v in
  Alcotest.(check int) "count = distance" flips (Gf2.Bitvec.hamming_distance v v')

(* ---------- Figure 1 profiles ---------- *)

let test_int32_profile_closed_form () =
  let p = Bitflip.int32_profile () in
  Alcotest.(check (float 1e-3)) "msb" (2.0 ** 31.0) p.Bitflip.avg_magnitude.(0);
  Alcotest.(check (float 1e-12)) "lsb" 1.0 p.Bitflip.avg_magnitude.(31);
  (* strictly decreasing with bit index *)
  for i = 0 to 30 do
    Alcotest.(check bool) "monotone" true
      (p.Bitflip.avg_magnitude.(i) > p.Bitflip.avg_magnitude.(i + 1))
  done

let test_float32_profile_shape () =
  let p = Bitflip.float32_profile ~samples:20_000 ~seed:7 () in
  let norm = Bitflip.normalize p in
  (* paper Fig. 1: the damage is concentrated in the sign+exponent bits
     (all near the normalized maximum), with mantissa bits orders of
     magnitude below *)
  let max_index = ref 0 in
  Array.iteri (fun i v -> if v > norm.(!max_index) then max_index := i) norm;
  Alcotest.(check bool) "max among sign+upper exponent" true (!max_index <= 5);
  for i = 0 to 5 do
    Alcotest.(check bool) (Printf.sprintf "bit %d near max" i) true (norm.(i) > 0.7)
  done;
  Alcotest.(check bool) "upper bits dwarf mantissa" true (norm.(2) > 1000.0 *. norm.(20));
  Alcotest.(check bool) "mantissa negligible" true (norm.(31) < 1e-6);
  (* exponent-field flips can create infinities: non-numeric counts live
     only in sign+exponent bit positions *)
  Alcotest.(check bool) "non-numeric in exponent bits" true
    (Array.exists (fun c -> c > 0) (Array.sub p.Bitflip.non_numeric 1 8));
  Alcotest.(check int) "mantissa flips stay numeric" 0 p.Bitflip.non_numeric.(20)

let test_float32_profile_deterministic () =
  let a = Bitflip.float32_profile ~samples:5_000 ~seed:1 () in
  let b = Bitflip.float32_profile ~samples:5_000 ~seed:1 () in
  Alcotest.(check bool) "same result" true (a = b)

let test_weights_derivation () =
  let p = Bitflip.float32_profile ~samples:20_000 ~seed:7 () in
  let w = Bitflip.weights_for_upper_bits ~bits:16 p in
  Alcotest.(check int) "16 weights" 16 (Array.length w);
  Array.iter (fun x -> Alcotest.(check bool) "range" true (x >= 1 && x <= 100)) w;
  (* heavy head, light tail, like the paper's 100,...,1 vector *)
  for i = 0 to 5 do
    Alcotest.(check bool) (Printf.sprintf "head heavy w%d" i) true (w.(i) >= 75)
  done;
  Alcotest.(check bool) "tail light" true (w.(15) <= 5);
  Alcotest.(check bool) "mid transition like paper (w7 ~ 45)" true
    (w.(7) >= 25 && w.(7) <= 65)

(* ---------- Monte-Carlo harness ---------- *)

let test_montecarlo_matches_theory () =
  (* (7,4) at p=0.1: expected fraction with >= 3 flips is P_u = 0.0257 *)
  let code = Lazy.force Hamming.Catalog.fig2_7_4 in
  let codec = Montecarlo.codec_of_code code in
  let r =
    Montecarlo.run ~codec ~md:3 ~words:200_000 ~p:0.1 ~seed:5
      (Montecarlo.uniform_data codec)
  in
  let observed = float_of_int r.Montecarlo.flips_ge_md in
  Alcotest.(check bool) "within 5% of theory" true
    (Float.abs (observed -. r.Montecarlo.expected_flips_ge_md)
     /. r.Montecarlo.expected_flips_ge_md
    < 0.05);
  (* undetected errors are a subset of >= md flips *)
  Alcotest.(check bool) "undetected <= flips_ge_md" true
    (r.Montecarlo.undetected <= r.Montecarlo.flips_ge_md);
  Alcotest.(check bool) "some undetected at p=0.1" true (r.Montecarlo.undetected > 0)

let test_montecarlo_higher_md_fewer_undetected () =
  let weak = Montecarlo.codec_of_code (Lazy.force Hamming.Catalog.fig2_7_4) in
  let strong_code = Lazy.force Hamming.Catalog.paper_g5_4 in
  let strong = Montecarlo.codec_of_code strong_code in
  let run codec md =
    (Montecarlo.run ~codec ~md ~words:100_000 ~p:0.1 ~seed:6
       (Montecarlo.uniform_data codec))
      .Montecarlo.undetected
  in
  Alcotest.(check bool) "md 4 beats md 3" true (run strong 4 < run weak 3)

let test_montecarlo_deterministic () =
  let codec = Montecarlo.codec_of_code (Lazy.force Hamming.Catalog.fig2_7_4) in
  let r1 =
    Montecarlo.run ~codec ~md:3 ~words:10_000 ~p:0.1 ~seed:9 (Montecarlo.uniform_data codec)
  in
  let r2 =
    Montecarlo.run ~codec ~md:3 ~words:10_000 ~p:0.1 ~seed:9 (Montecarlo.uniform_data codec)
  in
  Alcotest.(check bool) "reproducible" true (r1 = r2)

let test_numeric_float_data_is_numeric () =
  let g = Prng.create 21 in
  for _ = 1 to 10_000 do
    let bits = Montecarlo.numeric_float32_data g in
    Alcotest.(check bool) "numeric" true ((bits lsr 23) land 0xFF <> 0xFF)
  done

let prop_flip_word_bounded =
  QCheck.Test.make ~name:"flip count bounded by width" ~count:200
    (QCheck.pair QCheck.small_int (QCheck.int_bound 40))
    (fun (seed, width) ->
      let width = max 1 width in
      let g = Prng.create seed in
      let w, flips = Bsc.flip_word g ~p:0.5 ~width 0 in
      flips <= width && w < 1 lsl width)

(* ---------- AWGN channel ---------- *)

let test_gaussian_moments () =
  let g = Prng.create 55 in
  let n = 100_000 in
  let sum = ref 0.0 and sumsq = ref 0.0 in
  for _ = 1 to n do
    let x = Awgn.gaussian g in
    sum := !sum +. x;
    sumsq := !sumsq +. (x *. x)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sumsq /. float_of_int n) -. (mean *. mean) in
  Alcotest.(check bool) "mean ~ 0" true (Float.abs mean < 0.02);
  Alcotest.(check bool) "variance ~ 1" true (Float.abs (var -. 1.0) < 0.03)

let test_awgn_high_snr_is_clean () =
  let g = Prng.create 56 in
  let bits = Gf2.Bitvec.of_string "1010011100101101" in
  let rx = Awgn.transmit g ~snr_db:20.0 bits in
  Alcotest.(check bool) "hard decision recovers" true
    (Gf2.Bitvec.equal bits (Awgn.hard_decision rx));
  (* LLR signs agree with the transmitted bits *)
  let l = Awgn.llrs ~snr_db:20.0 rx in
  Array.iteri
    (fun i v ->
      Alcotest.(check bool) "sign" true (v < 0.0 = Gf2.Bitvec.get bits i))
    l

let test_awgn_low_snr_flips_bits () =
  let g = Prng.create 57 in
  let bits = Gf2.Bitvec.create 4000 in
  let rx = Awgn.transmit g ~snr_db:(-3.0) bits in
  let wrong = Gf2.Bitvec.popcount (Awgn.hard_decision rx) in
  (* at -3 dB the raw bit error rate is substantial *)
  Alcotest.(check bool) "plenty of errors" true (wrong > 400 && wrong < 2000)

let test_noise_sigma_formula () =
  Alcotest.(check (float 1e-9)) "0 dB" (sqrt 0.5) (Awgn.noise_sigma ~snr_db:0.0);
  Alcotest.(check bool) "monotone" true
    (Awgn.noise_sigma ~snr_db:10.0 < Awgn.noise_sigma ~snr_db:0.0)

(* ---------- bursty channel and interleaving ---------- *)

let test_interleave_roundtrip () =
  let words = [| 0b1011; 0b0110; 0b1111; 0b0001 |] in
  let bits = Burst.interleave ~depth:4 ~width:4 words in
  Alcotest.(check int) "length" 16 (Gf2.Bitvec.length bits);
  let back = Burst.deinterleave ~depth:4 ~width:4 bits in
  Alcotest.(check bool) "round trip" true (back = words)

let prop_interleave_roundtrip =
  QCheck.Test.make ~name:"interleave/deinterleave round trip" ~count:200
    (QCheck.pair (QCheck.int_range 1 16) QCheck.small_int)
    (fun (depth, seed) ->
      let width = 13 in
      let g = Prng.create seed in
      let words = Array.init depth (fun _ -> Prng.bits g ~n:width) in
      Burst.deinterleave ~depth ~width (Burst.interleave ~depth ~width words) = words)

let test_interleave_spreads_bursts () =
  (* a burst of [depth] consecutive stream bits lands one bit per word *)
  let depth = 8 and width = 10 in
  let words = Array.make depth 0 in
  let stream = Burst.interleave ~depth ~width words in
  for i = 24 to 24 + depth - 1 do
    Gf2.Bitvec.flip stream i
  done;
  let received = Burst.deinterleave ~depth ~width stream in
  Array.iter
    (fun w ->
      let rec pop x = if x = 0 then 0 else (x land 1) + pop (x lsr 1) in
      Alcotest.(check int) "one error per word" 1 (pop w))
    received

let test_ge_channel_burstiness () =
  (* bad-state errors cluster: the Gilbert-Elliott stream must have far
     higher variance of per-block error counts than a BSC of equal rate *)
  let g = Prng.create 77 in
  let bits = Burst.ge_flip_bits g Burst.default_ge ~len:200_000 in
  let total = Gf2.Bitvec.popcount bits in
  Alcotest.(check bool) "some errors" true (total > 100);
  (* block error counts *)
  let block = 100 in
  let counts =
    Array.init (200_000 / block) (fun b ->
        let acc = ref 0 in
        for i = 0 to block - 1 do
          if Gf2.Bitvec.get bits ((b * block) + i) then incr acc
        done;
        !acc)
  in
  let mean = float_of_int total /. float_of_int (Array.length counts) in
  let var =
    Array.fold_left (fun acc c -> acc +. ((float_of_int c -. mean) ** 2.0)) 0.0 counts
    /. float_of_int (Array.length counts)
  in
  (* Poisson (BSC) would give var ~ mean; bursts inflate it hugely *)
  Alcotest.(check bool) "overdispersed" true (var > 3.0 *. mean)

let test_interleaving_helps_under_bursts () =
  (* the interleave depth must exceed the typical burst length so each
     codeword absorbs at most one burst bit *)
  let codec = Hamming.Fastcodec.compile (Hamming.Catalog.shortened ~data_len:16 ~check_len:6) in
  let ge = { Burst.p_good = 0.0005; p_bad = 0.3; p_g2b = 0.001; p_b2g = 0.05 } in
  let r = Burst.trial codec ~depth:128 ~blocks:100 ~ge ~seed:99 in
  Alcotest.(check bool) "plain suffers" true (r.Burst.word_errors_plain > 0);
  Alcotest.(check bool) "interleaving wins clearly" true
    (r.Burst.word_errors_interleaved * 2 < r.Burst.word_errors_plain)

let () =
  Alcotest.run "channel"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_prng_copy_independent;
          Alcotest.test_case "float range" `Quick test_prng_float_range;
          Alcotest.test_case "bits range" `Quick test_prng_bits_range;
          Alcotest.test_case "uniformity" `Quick test_prng_uniformity;
        ] );
      ( "bsc",
        [
          Alcotest.test_case "flip rate" `Quick test_bsc_flip_rate;
          Alcotest.test_case "p = 0" `Quick test_bsc_zero_p;
          Alcotest.test_case "bitvec flips" `Quick test_bsc_bitvec_matches_count;
          qtest prop_flip_word_bounded;
        ] );
      ( "bitflip",
        [
          Alcotest.test_case "int32 closed form" `Quick test_int32_profile_closed_form;
          Alcotest.test_case "float32 shape (Fig 1)" `Quick test_float32_profile_shape;
          Alcotest.test_case "float32 deterministic" `Quick test_float32_profile_deterministic;
          Alcotest.test_case "weight derivation" `Quick test_weights_derivation;
        ] );
      ( "awgn",
        [
          Alcotest.test_case "gaussian moments" `Quick test_gaussian_moments;
          Alcotest.test_case "high SNR clean" `Quick test_awgn_high_snr_is_clean;
          Alcotest.test_case "low SNR noisy" `Quick test_awgn_low_snr_flips_bits;
          Alcotest.test_case "sigma formula" `Quick test_noise_sigma_formula;
        ] );
      ( "burst",
        [
          Alcotest.test_case "interleave round trip" `Quick test_interleave_roundtrip;
          Alcotest.test_case "burst spreading" `Quick test_interleave_spreads_bursts;
          Alcotest.test_case "GE channel burstiness" `Quick test_ge_channel_burstiness;
          Alcotest.test_case "interleaving helps" `Quick test_interleaving_helps_under_bursts;
          qtest prop_interleave_roundtrip;
        ] );
      ( "montecarlo",
        [
          Alcotest.test_case "matches theory" `Quick test_montecarlo_matches_theory;
          Alcotest.test_case "md ordering" `Quick test_montecarlo_higher_md_fewer_undetected;
          Alcotest.test_case "deterministic" `Quick test_montecarlo_deterministic;
          Alcotest.test_case "numeric float data" `Quick test_numeric_float_data_is_numeric;
        ] );
    ]
