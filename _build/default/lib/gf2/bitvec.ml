(* Bits are packed little-endian within native int words: bit index [i] lives
   in word [i / word_bits] at bit offset [i mod word_bits].  The final word's
   unused high bits are kept at zero as an invariant, which lets [equal],
   [popcount], [is_zero] and [hash] work word-at-a-time. *)

let word_bits = Sys.int_size - 1 (* 62 on 64-bit: keeps all shifts well-defined *)

type t = { len : int; words : int array }

let nwords len = if len = 0 then 0 else ((len - 1) / word_bits) + 1

let create len =
  if len < 0 then invalid_arg "Bitvec.create: negative length";
  { len; words = Array.make (nwords len) 0 }

let length v = v.len

let check_index v i op =
  if i < 0 || i >= v.len then
    invalid_arg (Printf.sprintf "Bitvec.%s: index %d out of bounds [0,%d)" op i v.len)

let get v i =
  check_index v i "get";
  (v.words.(i / word_bits) lsr (i mod word_bits)) land 1 = 1

let set v i b =
  check_index v i "set";
  let w = i / word_bits and off = i mod word_bits in
  if b then v.words.(w) <- v.words.(w) lor (1 lsl off)
  else v.words.(w) <- v.words.(w) land lnot (1 lsl off)

let flip v i =
  check_index v i "flip";
  let w = i / word_bits and off = i mod word_bits in
  v.words.(w) <- v.words.(w) lxor (1 lsl off)

let init len f =
  let v = create len in
  for i = 0 to len - 1 do
    if f i then set v i true
  done;
  v

let copy v = { len = v.len; words = Array.copy v.words }

let equal a b = a.len = b.len && a.words = b.words

let compare a b =
  let c = Stdlib.compare a.len b.len in
  if c <> 0 then c else Stdlib.compare a.words b.words

let hash v = Hashtbl.hash (v.len, v.words)

let is_zero v = Array.for_all (fun w -> w = 0) v.words

(* SWAR popcount over a native int. *)
let popcount_word x =
  let rec go x acc = if x = 0 then acc else go (x land (x - 1)) (acc + 1) in
  go x 0

let popcount v = Array.fold_left (fun acc w -> acc + popcount_word w) 0 v.words

let check_same_length a b op =
  if a.len <> b.len then
    invalid_arg (Printf.sprintf "Bitvec.%s: length mismatch (%d vs %d)" op a.len b.len)

let xor a b =
  check_same_length a b "xor";
  { len = a.len; words = Array.init (Array.length a.words) (fun i -> a.words.(i) lxor b.words.(i)) }

let xor_in_place dst src =
  check_same_length dst src "xor_in_place";
  for i = 0 to Array.length dst.words - 1 do
    dst.words.(i) <- dst.words.(i) lxor src.words.(i)
  done

let logand a b =
  check_same_length a b "logand";
  { len = a.len; words = Array.init (Array.length a.words) (fun i -> a.words.(i) land b.words.(i)) }

let parity v =
  let p = Array.fold_left (fun acc w -> acc lxor w) 0 v.words in
  popcount_word p land 1 = 1

let dot a b =
  check_same_length a b "dot";
  let p = ref 0 in
  for i = 0 to Array.length a.words - 1 do
    p := !p lxor (a.words.(i) land b.words.(i))
  done;
  popcount_word !p land 1 = 1

let hamming_distance a b =
  check_same_length a b "hamming_distance";
  let acc = ref 0 in
  for i = 0 to Array.length a.words - 1 do
    acc := !acc + popcount_word (a.words.(i) lxor b.words.(i))
  done;
  !acc

let iteri f v =
  for i = 0 to v.len - 1 do
    f i (get v i)
  done

let iter_set f v =
  for w = 0 to Array.length v.words - 1 do
    let x = ref v.words.(w) in
    while !x <> 0 do
      let low = !x land (- !x) in
      let off = popcount_word (low - 1) in
      f ((w * word_bits) + off);
      x := !x land lnot low
    done
  done

let fold f init v =
  let acc = ref init in
  iteri (fun _ b -> acc := f !acc b) v;
  !acc

let to_list v =
  let acc = ref [] in
  iter_set (fun i -> acc := i :: !acc) v;
  List.rev !acc

let of_list len idxs =
  let v = create len in
  List.iter (fun i -> set v i true) idxs;
  v

let blit ~src ~src_pos ~dst ~dst_pos ~len =
  if len < 0 || src_pos < 0 || dst_pos < 0
     || src_pos + len > src.len || dst_pos + len > dst.len
  then invalid_arg "Bitvec.blit: range out of bounds";
  for i = 0 to len - 1 do
    set dst (dst_pos + i) (get src (src_pos + i))
  done

let append a b =
  let v = create (a.len + b.len) in
  blit ~src:a ~src_pos:0 ~dst:v ~dst_pos:0 ~len:a.len;
  blit ~src:b ~src_pos:0 ~dst:v ~dst_pos:a.len ~len:b.len;
  v

let sub v pos len =
  let out = create len in
  blit ~src:v ~src_pos:pos ~dst:out ~dst_pos:0 ~len;
  out

let of_string s =
  init (String.length s) (fun i ->
      match s.[i] with
      | '0' -> false
      | '1' -> true
      | c -> invalid_arg (Printf.sprintf "Bitvec.of_string: invalid character %C" c))

let to_string v = String.init v.len (fun i -> if get v i then '1' else '0')

let of_int ~width x =
  init width (fun i -> (x lsr (width - 1 - i)) land 1 = 1)

let to_int v =
  if v.len > Sys.int_size - 1 then
    invalid_arg "Bitvec.to_int: vector too long for native int";
  fold (fun acc b -> (acc lsl 1) lor if b then 1 else 0) 0 v

let of_int32_bits x =
  init 32 (fun i -> Int32.logand (Int32.shift_right_logical x (31 - i)) 1l = 1l)

let to_int32_bits v =
  if v.len <> 32 then invalid_arg "Bitvec.to_int32_bits: length must be 32";
  let acc = ref 0l in
  iteri (fun _ b -> acc := Int32.logor (Int32.shift_left !acc 1) (if b then 1l else 0l)) v;
  !acc

let pp fmt v = Format.pp_print_string fmt (to_string v)
