lib/gf2/matrix.mli: Bitvec Format
