lib/gf2/bitvec.mli: Format
