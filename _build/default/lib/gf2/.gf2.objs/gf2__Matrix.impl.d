lib/gf2/matrix.ml: Array Bitvec Format List Printf Seq String
