lib/gf2/bitvec.ml: Array Format Hashtbl Int32 List Printf Stdlib String Sys
