(** Packed bit vectors over GF(2).

    A [Bitvec.t] is a fixed-length vector of bits stored in native [int]
    words.  Indices run from [0] (leftmost / most significant in the textual
    representation) to [length v - 1].  All mutating operations are explicit
    ([set], [xor_in_place], ...); the remaining API is persistent-style and
    returns fresh vectors. *)

type t

(** [create n] is the all-zero vector of length [n].
    @raise Invalid_argument if [n < 0]. *)
val create : int -> t

(** [init n f] is the vector [v] of length [n] with [get v i = f i]. *)
val init : int -> (int -> bool) -> t

(** [length v] is the number of bits in [v]. *)
val length : t -> int

(** [get v i] is bit [i] of [v].
    @raise Invalid_argument if [i] is out of bounds. *)
val get : t -> int -> bool

(** [set v i b] destructively sets bit [i] of [v] to [b]. *)
val set : t -> int -> bool -> unit

(** [flip v i] destructively complements bit [i] of [v]. *)
val flip : t -> int -> unit

(** [copy v] is a fresh vector equal to [v]. *)
val copy : t -> t

(** [equal a b] is structural equality (same length, same bits). *)
val equal : t -> t -> bool

(** [compare a b] is a total order compatible with [equal]:
    shorter vectors first, then lexicographic on bits. *)
val compare : t -> t -> int

(** [hash v] is a hash compatible with [equal]. *)
val hash : t -> int

(** [is_zero v] is [true] iff every bit of [v] is clear. *)
val is_zero : t -> bool

(** [popcount v] is the number of set bits in [v]. *)
val popcount : t -> int

(** [xor a b] is the bitwise sum over GF(2) of [a] and [b].
    @raise Invalid_argument if lengths differ. *)
val xor : t -> t -> t

(** [xor_in_place dst src] destructively replaces [dst] with [xor dst src]. *)
val xor_in_place : t -> t -> unit

(** [logand a b] is the bitwise product over GF(2).
    @raise Invalid_argument if lengths differ. *)
val logand : t -> t -> t

(** [dot a b] is the GF(2) inner product: parity of [popcount (logand a b)]. *)
val dot : t -> t -> bool

(** [parity v] is [true] iff [popcount v] is odd. *)
val parity : t -> bool

(** [hamming_distance a b] is [popcount (xor a b)]. *)
val hamming_distance : t -> t -> int

(** [append a b] is the concatenation of [a] followed by [b]. *)
val append : t -> t -> t

(** [sub v pos len] is the slice of [len] bits of [v] starting at [pos]. *)
val sub : t -> int -> int -> t

(** [blit ~src ~src_pos ~dst ~dst_pos ~len] copies a bit range. *)
val blit : src:t -> src_pos:int -> dst:t -> dst_pos:int -> len:int -> unit

(** [iteri f v] applies [f i (get v i)] for each index [i] in order. *)
val iteri : (int -> bool -> unit) -> t -> unit

(** [iter_set f v] applies [f i] for each set bit index [i] in order. *)
val iter_set : (int -> unit) -> t -> unit

(** [fold f init v] folds [f] over all bits of [v] from index [0]. *)
val fold : ('a -> bool -> 'a) -> 'a -> t -> 'a

(** [to_list v] is the list of set-bit indices of [v], ascending. *)
val to_list : t -> int list

(** [of_list n idxs] is the length-[n] vector with exactly the bits in
    [idxs] set.  Duplicate indices are idempotent. *)
val of_list : int -> int list -> t

(** [of_string s] parses a string of ['0']/['1'] characters, index 0 first.
    @raise Invalid_argument on any other character. *)
val of_string : string -> t

(** [to_string v] renders [v] as a string of ['0']/['1'] characters. *)
val to_string : t -> string

(** [of_int ~width x] is the length-[width] vector holding the [width]
    low-order bits of [x], most significant bit first (index 0 is the MSB).
    This matches the conventional left-to-right reading of binary numerals. *)
val of_int : width:int -> int -> t

(** [to_int v] interprets [v] as a big-endian binary numeral.
    @raise Invalid_argument if [length v > Sys.int_size - 1]. *)
val to_int : t -> int

(** [of_int32_bits x] is the 32-bit vector of [x]'s bits, MSB first. *)
val of_int32_bits : int32 -> t

(** [to_int32_bits v] packs a 32-bit vector back into an [int32], MSB first.
    @raise Invalid_argument if [length v <> 32]. *)
val to_int32_bits : t -> int32

(** [pp] formats a vector as its ['0']/['1'] string. *)
val pp : Format.formatter -> t -> unit
