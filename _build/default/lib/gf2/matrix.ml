type t = { nrows : int; ncols : int; data : Bitvec.t array }

let create ~rows ~cols =
  if rows < 0 || cols < 0 then invalid_arg "Matrix.create: negative dimension";
  { nrows = rows; ncols = cols; data = Array.init rows (fun _ -> Bitvec.create cols) }

let rows m = m.nrows
let cols m = m.ncols

let init ~rows ~cols f =
  let m = create ~rows ~cols in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if f r c then Bitvec.set m.data.(r) c true
    done
  done;
  m

let identity n = init ~rows:n ~cols:n (fun r c -> r = c)

let check_row m r op =
  if r < 0 || r >= m.nrows then
    invalid_arg (Printf.sprintf "Matrix.%s: row %d out of bounds [0,%d)" op r m.nrows)

let get m r c =
  check_row m r "get";
  Bitvec.get m.data.(r) c

let set m r c b =
  check_row m r "set";
  Bitvec.set m.data.(r) c b

let row m r =
  check_row m r "row";
  m.data.(r)

let col m c = Bitvec.init m.nrows (fun r -> get m r c)

let of_rows rws =
  if Array.length rws = 0 then invalid_arg "Matrix.of_rows: empty";
  let ncols = Bitvec.length rws.(0) in
  Array.iter
    (fun r ->
      if Bitvec.length r <> ncols then invalid_arg "Matrix.of_rows: ragged rows")
    rws;
  { nrows = Array.length rws; ncols; data = Array.map Bitvec.copy rws }

let copy m = { m with data = Array.map Bitvec.copy m.data }

let equal a b =
  a.nrows = b.nrows && a.ncols = b.ncols
  && Array.for_all2 Bitvec.equal a.data b.data

let transpose m = init ~rows:m.ncols ~cols:m.nrows (fun r c -> get m c r)

(* Row-vector times matrix: result bit c is the parity of entries of v
   selecting rows of m, i.e. the XOR of the selected rows. *)
let vec_mul v m =
  if Bitvec.length v <> m.nrows then
    invalid_arg "Matrix.vec_mul: dimension mismatch";
  let acc = Bitvec.create m.ncols in
  Bitvec.iter_set (fun r -> Bitvec.xor_in_place acc m.data.(r)) v;
  acc

let mul_vec m v =
  if Bitvec.length v <> m.ncols then
    invalid_arg "Matrix.mul_vec: dimension mismatch";
  Bitvec.init m.nrows (fun r -> Bitvec.dot m.data.(r) v)

let mul a b =
  if a.ncols <> b.nrows then invalid_arg "Matrix.mul: dimension mismatch";
  { nrows = a.nrows;
    ncols = b.ncols;
    data = Array.map (fun r -> vec_mul r b) a.data }

let concat_h a b =
  if a.nrows <> b.nrows then invalid_arg "Matrix.concat_h: row count mismatch";
  { nrows = a.nrows;
    ncols = a.ncols + b.ncols;
    data = Array.init a.nrows (fun r -> Bitvec.append a.data.(r) b.data.(r)) }

let sub_cols m ~pos ~len =
  if pos < 0 || len < 0 || pos + len > m.ncols then
    invalid_arg "Matrix.sub_cols: range out of bounds";
  { nrows = m.nrows;
    ncols = len;
    data = Array.map (fun r -> Bitvec.sub r pos len) m.data }

let popcount m = Array.fold_left (fun acc r -> acc + Bitvec.popcount r) 0 m.data

(* Gaussian elimination to reduced row-echelon form; used by both
   [row_reduce] and [rank]. *)
let rref_in_place m =
  let pivot_row = ref 0 in
  let c = ref 0 in
  while !pivot_row < m.nrows && !c < m.ncols do
    (* find a row at or below pivot_row with a 1 in column c *)
    let found = ref (-1) in
    let r = ref !pivot_row in
    while !found < 0 && !r < m.nrows do
      if Bitvec.get m.data.(!r) !c then found := !r;
      incr r
    done;
    (match !found with
    | -1 -> ()
    | fr ->
        let tmp = m.data.(!pivot_row) in
        m.data.(!pivot_row) <- m.data.(fr);
        m.data.(fr) <- tmp;
        for r = 0 to m.nrows - 1 do
          if r <> !pivot_row && Bitvec.get m.data.(r) !c then
            Bitvec.xor_in_place m.data.(r) m.data.(!pivot_row)
        done;
        incr pivot_row);
    incr c
  done;
  !pivot_row

let row_reduce m =
  let m' = copy m in
  ignore (rref_in_place m');
  m'

let rank m =
  let m' = copy m in
  rref_in_place m'

let is_identity_prefix m n =
  n <= m.nrows && n <= m.ncols
  &&
  let ok = ref true in
  for r = 0 to n - 1 do
    for c = 0 to n - 1 do
      if get m r c <> (r = c) then ok := false
    done
  done;
  !ok

let of_string_rows s =
  let raw =
    String.split_on_char '\n' s
    |> List.concat_map (String.split_on_char ';')
    |> List.map (fun line ->
           String.to_seq line
           |> Seq.filter (fun ch -> ch <> ' ' && ch <> '\t' && ch <> '\r' && ch <> '|')
           |> String.of_seq)
    |> List.filter (fun line -> String.length line > 0)
  in
  match raw with
  | [] -> invalid_arg "Matrix.of_string_rows: empty input"
  | lines -> of_rows (Array.of_list (List.map Bitvec.of_string lines))

let to_string m =
  Array.to_list m.data |> List.map Bitvec.to_string |> String.concat "\n"

let pp fmt m =
  Format.pp_open_vbox fmt 0;
  Array.iteri
    (fun i r ->
      if i > 0 then Format.pp_print_cut fmt ();
      Bitvec.pp fmt r)
    m.data;
  Format.pp_close_box fmt ()
