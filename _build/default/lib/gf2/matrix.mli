(** Dense matrices over GF(2), stored as an array of {!Bitvec.t} rows.

    Row index is the first coordinate, column the second.  Multiplication
    follows the coding-theory conventions used throughout the library:
    data words are row vectors, so encoding is [vec_mul d g]. *)

type t

(** [create ~rows ~cols] is the all-zero matrix. *)
val create : rows:int -> cols:int -> t

(** [init ~rows ~cols f] has entry [(r, c)] equal to [f r c]. *)
val init : rows:int -> cols:int -> (int -> int -> bool) -> t

(** [identity n] is the n-by-n identity matrix. *)
val identity : int -> t

(** [rows m] / [cols m] are the dimensions of [m]. *)
val rows : t -> int

val cols : t -> int

(** [get m r c] is entry [(r, c)]. *)
val get : t -> int -> int -> bool

(** [set m r c b] destructively updates entry [(r, c)]. *)
val set : t -> int -> int -> bool -> unit

(** [row m r] is row [r] (shared, do not mutate). *)
val row : t -> int -> Bitvec.t

(** [col m c] is column [c] as a fresh vector. *)
val col : t -> int -> Bitvec.t

(** [of_rows rows] builds a matrix from equal-length row vectors.
    @raise Invalid_argument on empty input or ragged rows. *)
val of_rows : Bitvec.t array -> t

(** [copy m] is a deep copy. *)
val copy : t -> t

(** [equal a b] is structural equality. *)
val equal : t -> t -> bool

(** [transpose m] is the transpose of [m]. *)
val transpose : t -> t

(** [vec_mul v m] is the row vector [v * m].
    @raise Invalid_argument if [Bitvec.length v <> rows m]. *)
val vec_mul : Bitvec.t -> t -> Bitvec.t

(** [mul_vec m v] is the column vector [m * v^T] returned as a vector.
    @raise Invalid_argument if [Bitvec.length v <> cols m]. *)
val mul_vec : t -> Bitvec.t -> Bitvec.t

(** [mul a b] is the matrix product [a * b].
    @raise Invalid_argument if [cols a <> rows b]. *)
val mul : t -> t -> t

(** [concat_h a b] is the block matrix [(a | b)].
    @raise Invalid_argument if row counts differ. *)
val concat_h : t -> t -> t

(** [sub_cols m ~pos ~len] is the column slice [m[:, pos..pos+len-1]]. *)
val sub_cols : t -> pos:int -> len:int -> t

(** [popcount m] is the number of set entries of [m]. *)
val popcount : t -> int

(** [rank m] is the GF(2) rank of [m]. *)
val rank : t -> int

(** [row_reduce m] is the reduced row-echelon form of [m] (fresh matrix). *)
val row_reduce : t -> t

(** [is_identity_prefix m n] is [true] iff the leading n-by-n block of [m]
    is the identity. *)
val is_identity_prefix : t -> int -> bool

(** [of_string_rows s] parses rows of ['0']/['1'] separated by newlines or
    [';'].  Spaces are ignored.
    @raise Invalid_argument on ragged or empty input. *)
val of_string_rows : string -> t

(** [to_string m] renders rows of ['0']/['1'] separated by newlines. *)
val to_string : t -> string

(** [pp] multi-line formatter for matrices. *)
val pp : Format.formatter -> t -> unit
