(** A front end for the QF Boolean fragment of the SMT-LIB v2 command
    language, driving {!Ctx}.

    Supported commands: [set-logic], [set-option], [set-info] (accepted
    and ignored where harmless), [declare-const x Bool],
    [declare-fun x () Bool], [assert], [check-sat], [get-model], [push],
    [pop], [echo], [exit].  Terms: [true], [false], constants, [not],
    [and], [or], [xor], [=>], [=] (Boolean equivalence), [distinct],
    [ite].  Line comments start with [;]. *)

exception Error of string

(** One evaluated command's visible output. *)
type event =
  | Check_sat of Ctx.result
  | Model of (string * bool) list  (** declared constants with values *)
  | Echo of string

(** [run script] executes a script and returns the outputs in order.
    @raise Error on syntax errors, unknown commands, sort mismatches, or
    [get-model] without a preceding satisfiable [check-sat]. *)
val run : string -> event list

(** [run_to_string script] renders the outputs in SMT-LIB's textual
    conventions ([sat] / [unsat], a [(model ...)] block, echoed
    strings). *)
val run_to_string : string -> string
