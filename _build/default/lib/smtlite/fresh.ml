let first_fresh = 1 lsl 22
let counter = ref first_fresh

let make () =
  let v = Expr.var !counter in
  incr counter;
  v

let make_n n = List.init n (fun _ -> make ())
