(** Unsigned bit-vector circuits over {!Expr}.

    A bit-vector is an array of Boolean expressions, least-significant bit
    first.  All operations are pure circuit constructions; they introduce no
    solver state and can be shared between solver contexts. *)

type t = Expr.t array

(** [of_int ~width x] is the constant [x] in [width] bits.
    @raise Invalid_argument if [x] does not fit or is negative. *)
val of_int : width:int -> int -> t

(** [to_int_opt v] is [Some x] when every bit of [v] is constant. *)
val to_int_opt : t -> int option

(** [width v] is the number of bits. *)
val width : t -> int

(** [zero_extend v w] pads [v] with constant-false bits up to width [w]. *)
val zero_extend : t -> int -> t

(** [add a b] is the full-width sum (width [max (width a) (width b) + 1],
    never overflows). *)
val add : t -> t -> t

(** [sum vs] is the balanced-tree sum of the list ([sum [] = of_int 1 0]). *)
val sum : t list -> t

(** [popcount es] counts the true expressions among [es] as a bit-vector. *)
val popcount : Expr.t list -> t

(** [scale c v] multiplies [v] by the non-negative integer constant [c]
    (shift-and-add). *)
val scale : int -> t -> t

(** [ule a b], [ult a b], [eq a b] are the unsigned comparisons as a single
    Boolean expression. *)
val ule : t -> t -> Expr.t

val ult : t -> t -> Expr.t
val eq : t -> t -> Expr.t

(** [mux c a b] selects [a] when [c] holds, else [b] (widths equalized). *)
val mux : Expr.t -> t -> t -> t

(** [select ~onehot vs] is the sum of [v_i] gated by [onehot_i]; intended
    for table lookup where exactly one selector is true.
    @raise Invalid_argument if lengths differ. *)
val select : onehot:Expr.t list -> t list -> t

(** [eval assignment v] evaluates the bit-vector to an integer. *)
val eval : (int -> bool) -> t -> int
