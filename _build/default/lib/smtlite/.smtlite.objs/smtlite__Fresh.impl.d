lib/smtlite/fresh.ml: Expr List
