lib/smtlite/card.ml: Array Bv Expr List
