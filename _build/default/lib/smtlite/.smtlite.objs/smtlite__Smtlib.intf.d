lib/smtlite/smtlib.mli: Ctx
