lib/smtlite/bv.ml: Array Expr List Printf
