lib/smtlite/smtlib.ml: Buffer Ctx Expr Fresh Hashtbl List Printf String
