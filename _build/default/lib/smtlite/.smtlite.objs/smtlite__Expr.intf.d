lib/smtlite/expr.mli: Format
