lib/smtlite/ctx.ml: Array Expr Fun Hashtbl List Sat Unix
