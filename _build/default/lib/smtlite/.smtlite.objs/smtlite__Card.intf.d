lib/smtlite/card.mli: Expr
