lib/smtlite/ctx.mli: Bv Expr Sat
