lib/smtlite/bv.mli: Expr
