lib/smtlite/expr.ml: Format Hashtbl Int List
