lib/smtlite/fresh.mli: Expr
