exception Error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Error m)) fmt

type event =
  | Check_sat of Ctx.result
  | Model of (string * bool) list
  | Echo of string

(* ---------- s-expressions ---------- *)

type sexp = Atom of string | List of sexp list

let tokenize src =
  let tokens = ref [] in
  let n = String.length src in
  let i = ref 0 in
  while !i < n do
    match src.[!i] with
    | ' ' | '\t' | '\n' | '\r' -> incr i
    | ';' ->
        while !i < n && src.[!i] <> '\n' do
          incr i
        done
    | '(' ->
        tokens := "(" :: !tokens;
        incr i
    | ')' ->
        tokens := ")" :: !tokens;
        incr i
    | '"' ->
        (* string literal, SMT-LIB escapes "" *)
        let buf = Buffer.create 16 in
        incr i;
        let closed = ref false in
        while (not !closed) && !i < n do
          if src.[!i] = '"' then
            if !i + 1 < n && src.[!i + 1] = '"' then begin
              Buffer.add_char buf '"';
              i := !i + 2
            end
            else begin
              closed := true;
              incr i
            end
          else begin
            Buffer.add_char buf src.[!i];
            incr i
          end
        done;
        if not !closed then fail "unterminated string literal";
        tokens := ("\"" ^ Buffer.contents buf) :: !tokens
    | '|' ->
        (* quoted symbol *)
        let start = !i + 1 in
        let stop = try String.index_from src start '|' with Not_found -> fail "unterminated |symbol|" in
        tokens := String.sub src start (stop - start) :: !tokens;
        i := stop + 1
    | _ ->
        let start = !i in
        while
          !i < n
          && not
               (match src.[!i] with
               | ' ' | '\t' | '\n' | '\r' | '(' | ')' | ';' -> true
               | _ -> false)
        do
          incr i
        done;
        tokens := String.sub src start (!i - start) :: !tokens
  done;
  List.rev !tokens

let parse_sexps tokens =
  let rec parse_one = function
    | [] -> fail "unexpected end of input"
    | "(" :: rest ->
        let items, rest = parse_list rest [] in
        (List items, rest)
    | ")" :: _ -> fail "unexpected ')'"
    | atom :: rest -> (Atom atom, rest)
  and parse_list tokens acc =
    match tokens with
    | ")" :: rest -> (List.rev acc, rest)
    | [] -> fail "missing ')'"
    | _ ->
        let item, rest = parse_one tokens in
        parse_list rest (item :: acc)
  in
  let rec go tokens acc =
    match tokens with
    | [] -> List.rev acc
    | _ ->
        let item, rest = parse_one tokens in
        go rest (item :: acc)
  in
  go tokens []

(* ---------- interpreter ---------- *)

type state = {
  ctx : Ctx.t;
  consts : (string, Expr.t) Hashtbl.t;
  mutable declared_order : string list; (* newest first *)
  mutable last_sat : bool;
  mutable events : event list;
}

let rec term st = function
  | Atom "true" -> Expr.true_
  | Atom "false" -> Expr.false_
  | Atom name -> (
      match Hashtbl.find_opt st.consts name with
      | Some e -> e
      | None -> fail "unknown constant %s" name)
  | List (Atom "not" :: [ t ]) -> Expr.not_ (term st t)
  | List (Atom "and" :: ts) -> Expr.and_ (List.map (term st) ts)
  | List (Atom "or" :: ts) -> Expr.or_ (List.map (term st) ts)
  | List (Atom "xor" :: ts) -> (
      match List.map (term st) ts with
      | [] -> fail "xor needs arguments"
      | first :: rest -> List.fold_left Expr.xor first rest)
  | List (Atom "=>" :: ts) -> (
      (* right-associative implication chain *)
      match List.rev_map (term st) ts with
      | [] | [ _ ] -> fail "=> needs at least two arguments"
      | last :: before -> List.fold_left (fun acc t -> Expr.imp t acc) last before)
  | List (Atom "=" :: ts) -> (
      match List.map (term st) ts with
      | a :: (_ :: _ as rest) ->
          Expr.and_ (List.map (Expr.iff a) rest)
      | _ -> fail "= needs at least two arguments")
  | List (Atom "distinct" :: [ a; b ]) -> Expr.xor (term st a) (term st b)
  | List (Atom "ite" :: [ c; a; b ]) -> Expr.ite (term st c) (term st a) (term st b)
  | List (Atom op :: _) -> fail "unsupported operator %s" op
  | List [] -> fail "empty term"
  | List (List _ :: _) -> fail "higher-order application is not supported"

let declare st name =
  if Hashtbl.mem st.consts name then fail "constant %s redeclared" name;
  Hashtbl.add st.consts name (Fresh.make ());
  st.declared_order <- name :: st.declared_order

let command st = function
  | List [ Atom "set-logic"; Atom logic ] ->
      if logic <> "QF_UF" && logic <> "CORE" && logic <> "ALL" && logic <> "QF_BV" then
        fail "unsupported logic %s (only Boolean reasoning is available)" logic
  | List (Atom ("set-option" | "set-info") :: _) -> ()
  | List [ Atom "declare-const"; Atom name; Atom "Bool" ] -> declare st name
  | List [ Atom "declare-fun"; Atom name; List []; Atom "Bool" ] -> declare st name
  | List [ Atom ("declare-const" | "declare-fun"); Atom name; _ ]
  | List [ Atom ("declare-const" | "declare-fun"); Atom name; _; _ ] ->
      fail "constant %s: only sort Bool is supported" name
  | List [ Atom "assert"; t ] ->
      st.last_sat <- false;
      Ctx.assert_ st.ctx (term st t)
  | List [ Atom "check-sat" ] ->
      let r = Ctx.check st.ctx in
      st.last_sat <- r = Ctx.Sat;
      st.events <- Check_sat r :: st.events
  | List [ Atom "get-model" ] ->
      if not st.last_sat then fail "get-model requires a satisfiable check-sat";
      let model =
        List.rev_map
          (fun name -> (name, Ctx.model_bool st.ctx (Hashtbl.find st.consts name)))
          st.declared_order
      in
      st.events <- Model model :: st.events
  | List [ Atom "push" ] -> Ctx.push st.ctx
  | List [ Atom "push"; Atom n ] ->
      for _ = 1 to int_of_string n do
        Ctx.push st.ctx
      done
  | List [ Atom "pop" ] -> Ctx.pop st.ctx
  | List [ Atom "pop"; Atom n ] ->
      for _ = 1 to int_of_string n do
        Ctx.pop st.ctx
      done
  | List [ Atom "echo"; Atom s ] ->
      let s = if String.length s > 0 && s.[0] = '"' then String.sub s 1 (String.length s - 1) else s in
      st.events <- Echo s :: st.events
  | List [ Atom "exit" ] -> raise Exit
  | List (Atom cmd :: _) -> fail "unsupported command %s" cmd
  | _ -> fail "malformed command"

let run script =
  let st =
    {
      ctx = Ctx.create ();
      consts = Hashtbl.create 64;
      declared_order = [];
      last_sat = false;
      events = [];
    }
  in
  (try List.iter (command st) (parse_sexps (tokenize script)) with
  | Exit -> ()
  | Invalid_argument m | Failure m -> fail "%s" m);
  List.rev st.events

let run_to_string script =
  run script
  |> List.map (function
       | Check_sat Ctx.Sat -> "sat"
       | Check_sat Ctx.Unsat -> "unsat"
       | Echo s -> s
       | Model bindings ->
           let defs =
             List.map
               (fun (name, v) ->
                 Printf.sprintf "  (define-fun %s () Bool %b)" name v)
               bindings
           in
           "(\n" ^ String.concat "\n" defs ^ "\n)")
  |> String.concat "\n"
