(** Fresh propositional variable supply.

    Variable indices below {!first_fresh} are reserved for user-chosen
    variables; {!make} hands out indices from a global counter starting at
    {!first_fresh}, so encoder-internal variables never collide with them. *)

(** The first index handed out by [make]. *)
val first_fresh : int

(** [make ()] is a fresh variable expression. *)
val make : unit -> Expr.t

(** [make_n n] is a list of [n] fresh variable expressions. *)
val make_n : int -> Expr.t list
