(** Hash-consed Boolean expression DAGs.

    Expressions are maximally shared: structurally equal expressions are
    physically equal, so equality and hashing are O(1) and the Tseitin
    translation caches per node.  Smart constructors perform light
    simplification (constant folding, involution of negation, duplicate and
    complement detection in [and_]/[or_]). *)

type t

type node = private
  | True
  | Var of int
  | Not of t
  | And of t list
  | Or of t list
  | Xor of t * t
  | Ite of t * t * t

(** [id e] is a unique identifier for the node (stable within a process). *)
val id : t -> int

(** [node e] exposes the node structure for traversal. *)
val node : t -> node

(** The constant true / false. *)
val true_ : t

val false_ : t

(** [var i] is the propositional variable with index [i >= 0]. *)
val var : int -> t

(** [not_ e] is negation (simplifies [not_ (not_ e)] to [e]). *)
val not_ : t -> t

(** [and_ es] is the conjunction; [and_ [] = true_]. *)
val and_ : t list -> t

(** [or_ es] is the disjunction; [or_ [] = false_]. *)
val or_ : t list -> t

(** [xor a b] is exclusive or. *)
val xor : t -> t -> t

(** [xor_l es] is the parity of a list, folded as a balanced tree. *)
val xor_l : t list -> t

(** [imp a b] is implication [a => b]. *)
val imp : t -> t -> t

(** [iff a b] is equivalence. *)
val iff : t -> t -> t

(** [ite c a b] is if-then-else. *)
val ite : t -> t -> t -> t

(** [of_bool b] is [true_] or [false_]. *)
val of_bool : bool -> t

(** [is_true e] / [is_false e] recognize the constants. *)
val is_true : t -> bool

val is_false : t -> bool

(** [equal a b] is physical equality (valid thanks to hash-consing). *)
val equal : t -> t -> bool

val hash : t -> int
val compare : t -> t -> int

(** [eval assignment e] evaluates [e] under the variable assignment
    (a function from variable index to [bool]). *)
val eval : (int -> bool) -> t -> bool

(** [vars e] is the sorted list of variable indices occurring in [e]. *)
val vars : t -> int list

(** [size e] is the number of distinct DAG nodes reachable from [e]. *)
val size : t -> int

val pp : Format.formatter -> t -> unit
