type t = Expr.t array

let width v = Array.length v

let of_int ~width:w x =
  if x < 0 then invalid_arg "Bv.of_int: negative value";
  if w < 63 && x lsr w <> 0 then
    invalid_arg (Printf.sprintf "Bv.of_int: %d does not fit in %d bits" x w);
  Array.init w (fun i -> Expr.of_bool ((x lsr i) land 1 = 1))

let to_int_opt v =
  let exception Not_constant in
  try
    Some
      (Array.to_list v
      |> List.mapi (fun i b ->
             if Expr.is_true b then 1 lsl i
             else if Expr.is_false b then 0
             else raise Not_constant)
      |> List.fold_left ( + ) 0)
  with Not_constant -> None

let zero_extend v w =
  if w <= Array.length v then v
  else Array.init w (fun i -> if i < Array.length v then v.(i) else Expr.false_)

(* Full adder: sum and carry circuits. *)
let full_add a b c =
  let axb = Expr.xor a b in
  (Expr.xor axb c, Expr.or_ [ Expr.and_ [ a; b ]; Expr.and_ [ c; axb ] ])

let add a b =
  let w = max (width a) (width b) in
  let a = zero_extend a w and b = zero_extend b w in
  let out = Array.make (w + 1) Expr.false_ in
  let carry = ref Expr.false_ in
  for i = 0 to w - 1 do
    let s, c = full_add a.(i) b.(i) !carry in
    out.(i) <- s;
    carry := c
  done;
  out.(w) <- !carry;
  out

(* Drop constant-false high bits so widths stay tight through sum trees. *)
let compact v =
  let hi = ref (Array.length v) in
  while !hi > 1 && Expr.is_false v.(!hi - 1) do
    decr hi
  done;
  if !hi = Array.length v then v else Array.sub v 0 !hi

let rec sum = function
  | [] -> of_int ~width:1 0
  | [ v ] -> compact v
  | vs ->
      let rec pair = function
        | a :: b :: rest -> compact (add a b) :: pair rest
        | [ a ] -> [ compact a ]
        | [] -> []
      in
      sum (pair vs)

let popcount es = sum (List.map (fun e -> [| e |]) es)

let scale c v =
  if c < 0 then invalid_arg "Bv.scale: negative constant";
  let rec go c shift acc =
    if c = 0 then acc
    else
      let acc =
        if c land 1 = 1 then
          let shifted =
            Array.append (Array.make shift Expr.false_) v
          in
          add acc shifted
        else acc
      in
      go (c lsr 1) (shift + 1) acc
  in
  compact (go c 0 (of_int ~width:1 0))

let eq a b =
  let w = max (width a) (width b) in
  let a = zero_extend a w and b = zero_extend b w in
  Expr.and_ (List.init w (fun i -> Expr.iff a.(i) b.(i)))

(* a < b, computed MSB-down: at the highest differing bit, a has 0 and b 1. *)
let ult a b =
  let w = max (width a) (width b) in
  let a = zero_extend a w and b = zero_extend b w in
  let lt = ref Expr.false_ in
  for i = 0 to w - 1 do
    (* from LSB up: lt' = (a_i < b_i) or (a_i = b_i and lt) *)
    lt :=
      Expr.or_
        [ Expr.and_ [ Expr.not_ a.(i); b.(i) ];
          Expr.and_ [ Expr.iff a.(i) b.(i); !lt ] ]
  done;
  !lt

let ule a b = Expr.not_ (ult b a)

let mux c a b =
  let w = max (width a) (width b) in
  let a = zero_extend a w and b = zero_extend b w in
  Array.init w (fun i -> Expr.ite c a.(i) b.(i))

let select ~onehot vs =
  if List.length onehot <> List.length vs then
    invalid_arg "Bv.select: length mismatch";
  let gated =
    List.map2 (fun sel v -> Array.map (fun b -> Expr.and_ [ sel; b ]) v) onehot vs
  in
  (* with a valid one-hot selector at most one operand is non-zero, so OR
     is exact; but summing is equally correct and also robust *)
  match gated with
  | [] -> of_int ~width:1 0
  | first :: rest ->
      List.fold_left
        (fun acc v ->
          let w = max (width acc) (width v) in
          let acc = zero_extend acc w and v = zero_extend v w in
          Array.init w (fun i -> Expr.or_ [ acc.(i); v.(i) ]))
        first rest

let eval assignment v =
  let acc = ref 0 in
  Array.iteri (fun i b -> if Expr.eval assignment b then acc := !acc lor (1 lsl i)) v;
  !acc
