(** DRAT proof checking (RUP fragment).

    A DRAT proof is a sequence of clause additions and deletions; the
    proof is valid when every added clause is a {e reverse unit
    propagation} (RUP) consequence of the original formula plus the
    previously added clauses, and the empty clause is eventually added.
    This checker validates the proofs emitted by {!Solver.enable_proof},
    giving an independent, auditable certificate for every UNSAT answer —
    the "formal guarantees" the paper's verification use-case calls for.

    (The solver's learnt clauses are all RUP, so the stronger RAT check
    is not needed.) *)

type verdict =
  | Valid  (** the proof derives the empty clause and every step checks *)
  | Invalid of string  (** a step fails; the message says which and why *)

(** [check ~formula proof] validates [proof] (in textual DRAT format)
    against the clauses of [formula]. *)
val check : formula:Lit.t list list -> string -> verdict

(** [parse proof] is the list of steps for inspection: [(true, c)] is an
    addition, [(false, c)] a deletion.
    @raise Failure on malformed text. *)
val parse : string -> (bool * Lit.t list) list
