lib/sat/vec.ml: Array Printf
