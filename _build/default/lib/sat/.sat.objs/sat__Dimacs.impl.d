lib/sat/dimacs.ml: Buffer List Lit Printf Solver String
