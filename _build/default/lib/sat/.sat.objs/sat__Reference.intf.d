lib/sat/reference.mli: Lit
