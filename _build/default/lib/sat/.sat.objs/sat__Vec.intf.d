lib/sat/vec.mli:
