lib/sat/dimacs.mli: Lit Solver
