lib/sat/solver.ml: Array Buffer Float Int List Lit Option Printf Vec
