lib/sat/reference.ml: Array List Lit
