lib/sat/drat.mli: Lit
