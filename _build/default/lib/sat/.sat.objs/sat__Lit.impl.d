lib/sat/lit.ml: Format Int
