lib/sat/drat.ml: Array List Lit Printf String
