(** Propositional literals.

    A literal is a variable paired with a polarity, packed into a single
    non-negative integer: variable [v] with positive polarity is [2 * v],
    with negative polarity [2 * v + 1].  Variables are 0-based. *)

type t = private int

(** [make v] is the positive literal of variable [v].
    @raise Invalid_argument if [v < 0]. *)
val make : int -> t

(** [neg l] is the complement of [l]. *)
val neg : t -> t

(** [var l] is the variable of [l]. *)
val var : t -> int

(** [sign l] is [true] iff [l] is a positive literal. *)
val sign : t -> bool

(** [apply l b] is the truth value of [l] when its variable has value [b]. *)
val apply : t -> bool -> bool

(** [of_dimacs i] converts a non-zero DIMACS literal ([±(v+1)]).
    @raise Invalid_argument if [i = 0]. *)
val of_dimacs : int -> t

(** [to_dimacs l] is the DIMACS rendering of [l]. *)
val to_dimacs : t -> int

(** [code l] is the packed integer (for use as an array index). *)
val code : t -> int

(** [of_code c] rebuilds a literal from its packed code.
    @raise Invalid_argument if [c < 0]. *)
val of_code : int -> t

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
