type t = int

let make v =
  if v < 0 then invalid_arg "Lit.make: negative variable";
  v * 2

let neg l = l lxor 1
let var l = l lsr 1
let sign l = l land 1 = 0
let apply l b = if sign l then b else not b

let of_dimacs i =
  if i = 0 then invalid_arg "Lit.of_dimacs: zero literal";
  if i > 0 then (i - 1) * 2 else (((-i) - 1) * 2) lor 1

let to_dimacs l = if sign l then var l + 1 else -(var l + 1)
let code l = l

let of_code c =
  if c < 0 then invalid_arg "Lit.of_code: negative code";
  c

let equal = Int.equal
let compare = Int.compare
let pp fmt l = Format.fprintf fmt "%d" (to_dimacs l)
