type verdict = Valid | Invalid of string

let parse text =
  let steps = ref [] in
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         let line = String.trim line in
         if line <> "" then begin
           let is_delete = String.length line >= 2 && String.sub line 0 2 = "d " in
           let body = if is_delete then String.sub line 2 (String.length line - 2) else line in
           let lits =
             String.split_on_char ' ' body
             |> List.filter (fun t -> t <> "")
             |> List.map (fun t ->
                    match int_of_string_opt t with
                    | Some v -> v
                    | None -> failwith (Printf.sprintf "Drat.parse: bad token %S" t))
           in
           match List.rev lits with
           | 0 :: rest -> steps := (not is_delete, List.rev_map Lit.of_dimacs rest) :: !steps
           | _ -> failwith "Drat.parse: clause not zero-terminated"
         end);
  List.rev !steps

(* Unit propagation over a simple clause list; returns true when a
   conflict is reached.  Assignment: 0 unset / 1 true / -1 false. *)
let propagates_to_conflict clauses assigns =
  let exception Conflict in
  let value l =
    let v = assigns.(Lit.var l) in
    if v = 0 then 0 else if Lit.sign l then v else -v
  in
  let assign l = assigns.(Lit.var l) <- (if Lit.sign l then 1 else -1) in
  try
    let changed = ref true in
    while !changed do
      changed := false;
      List.iter
        (fun clause ->
          let unassigned = ref [] in
          let satisfied = ref false in
          List.iter
            (fun l ->
              match value l with
              | 1 -> satisfied := true
              | 0 -> unassigned := l :: !unassigned
              | _ -> ())
            clause;
          if not !satisfied then
            match !unassigned with
            | [] -> raise Conflict
            | [ l ] ->
                assign l;
                changed := true
            | _ -> ())
        clauses
    done;
    false
  with Conflict -> true

let max_var_of clauses =
  List.fold_left
    (fun acc c -> List.fold_left (fun acc l -> max acc (Lit.var l)) acc c)
    0 clauses

(* RUP check: assume the negation of every literal of [clause]; the
   database must propagate to a conflict. *)
let rup_holds clauses num_vars clause =
  let assigns = Array.make (num_vars + 1) 0 in
  let consistent =
    List.for_all
      (fun l ->
        let v = assigns.(Lit.var l) in
        let want = if Lit.sign l then -1 else 1 in
        if v = 0 then begin
          assigns.(Lit.var l) <- want;
          true
        end
        else v = want)
      clause
  in
  (* a tautological clause is trivially implied *)
  (not consistent) || propagates_to_conflict clauses assigns

let clause_equal a b = List.sort compare a = List.sort compare b

let check ~formula text =
  match parse text with
  | exception Failure msg -> Invalid msg
  | steps ->
      let num_vars =
        max (max_var_of formula) (max_var_of (List.map snd steps))
      in
      (* normalize duplicate literals so unit detection is exact *)
      let dedup c = List.sort_uniq Lit.compare c in
      let steps = List.map (fun (add, c) -> (add, dedup c)) steps in
      let db = ref (List.map dedup formula) in
      let derived_empty = ref false in
      let rec go i = function
        | [] ->
            if !derived_empty then Valid
            else Invalid "proof does not derive the empty clause"
        | (true, clause) :: rest ->
            if not (rup_holds !db num_vars clause) then
              Invalid (Printf.sprintf "step %d: clause is not RUP" i)
            else begin
              if clause = [] then derived_empty := true;
              db := clause :: !db;
              if !derived_empty then Valid else go (i + 1) rest
            end
        | (false, clause) :: rest ->
            (* deletions only speed checking; missing clauses are ignored *)
            let rec remove = function
              | [] -> []
              | c :: cs -> if clause_equal c clause then cs else c :: remove cs
            in
            db := remove !db;
            go (i + 1) rest
      in
      go 1 steps
