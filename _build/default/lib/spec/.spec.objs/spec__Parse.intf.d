lib/spec/parse.mli: Ast
