lib/spec/parse.ml: Ast List Printf String
