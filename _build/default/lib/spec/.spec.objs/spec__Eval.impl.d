lib/spec/eval.ml: Array Ast Float Gf2 Hamming Printf
