lib/spec/ast.mli: Format
