lib/spec/ast.ml: Float Format
