lib/spec/eval.mli: Ast Hamming
