type env = {
  generators : Hamming.Code.t array;
  weights : float array;
  mapping : int array;
  channel_p : float;
}

let env_of_code code =
  { generators = [| code |]; weights = [||]; mapping = [||]; channel_p = 0.1 }

type value = Vint of int | Vreal of float

let value_to_float = function Vint n -> float_of_int n | Vreal r -> r

exception Eval_error of string

let error fmt = Printf.ksprintf (fun msg -> raise (Eval_error msg)) fmt

let generator env i =
  if i < 0 || i >= Array.length env.generators then
    error "generator index %d out of range [0,%d)" i (Array.length env.generators)
  else env.generators.(i)

let lift2_num f_int f_real a b =
  match (a, b) with
  | Vint x, Vint y -> Vint (f_int x y)
  | _ -> Vreal (f_real (value_to_float a) (value_to_float b))

let sum_w env =
  if Array.length env.mapping <> Array.length env.weights then
    error "mapping length %d does not match weight count %d"
      (Array.length env.mapping) (Array.length env.weights);
  let acc = ref 0.0 in
  Array.iteri
    (fun j w ->
      let g = generator env env.mapping.(j) in
      let n = Hamming.Code.block_len g in
      let m = Hamming.Distance.min_distance g in
      acc := !acc +. (w *. Hamming.Robustness.choose_times_pow ~n ~m ~p:env.channel_p))
    env.weights;
  !acc

let rec eval_expr env : Ast.expr -> value = function
  | Ast.Int n -> Vint n
  | Ast.Real r -> Vreal r
  | Ast.Add (a, b) -> lift2_num ( + ) ( +. ) (eval_expr env a) (eval_expr env b)
  | Ast.Sub (a, b) -> lift2_num ( - ) ( -. ) (eval_expr env a) (eval_expr env b)
  | Ast.Mul (a, b) -> lift2_num ( * ) ( *. ) (eval_expr env a) (eval_expr env b)
  | Ast.Neg a -> (
      match eval_expr env a with Vint n -> Vint (-n) | Vreal r -> Vreal (-.r))
  | Ast.Len_g -> Vint (Array.length env.generators)
  | Ast.Len_w -> Vint (Array.length env.weights)
  | Ast.Sum_w -> Vreal (sum_w env)
  | Ast.Weight e -> (
      match eval_expr env e with
      | Vint j when j >= 0 && j < Array.length env.weights -> Vreal env.weights.(j)
      | Vint j -> error "weight index %d out of range" j
      | Vreal _ -> error "weight index must be an integer")
  | Ast.Gen_entry (g, r, c) -> (
      match (eval_expr env g, eval_expr env r, eval_expr env c) with
      | Vint gi, Vint ri, Vint ci ->
          let code = generator env gi in
          let gm = Hamming.Code.generator code in
          if ri < 0 || ri >= Gf2.Matrix.rows gm || ci < 0 || ci >= Gf2.Matrix.cols gm
          then error "generator entry (%d,%d) out of range" ri ci
          else Vint (if Gf2.Matrix.get gm ri ci then 1 else 0)
      | _ -> error "generator entry indices must be integers")
  | Ast.Func (f, g) -> (
      match eval_expr env g with
      | Vint gi ->
          let code = generator env gi in
          Vint
            (match f with
            | Ast.Len_d -> Hamming.Code.data_len code
            | Ast.Len_c -> Hamming.Code.check_len code
            | Ast.Len_1 -> Hamming.Code.set_bits code
            | Ast.Md -> Hamming.Distance.min_distance code)
      | Vreal _ -> error "generator index must be an integer")

let compare_values a b = Float.compare (value_to_float a) (value_to_float b)

let rec eval_prop env : Ast.prop -> bool = function
  | Ast.True -> true
  | Ast.False -> false
  | Ast.Cmp (op, a, b) -> (
      let c = compare_values (eval_expr env a) (eval_expr env b) in
      match op with
      | Ast.Eq -> c = 0
      | Ast.Neq -> c <> 0
      | Ast.Lt -> c < 0
      | Ast.Gt -> c > 0
      | Ast.Le -> c <= 0
      | Ast.Ge -> c >= 0)
  | Ast.Not p -> not (eval_prop env p)
  | Ast.And (a, b) -> eval_prop env a && eval_prop env b
  | Ast.Or (a, b) -> eval_prop env a || eval_prop env b
  | Ast.Imp (a, b) -> (not (eval_prop env a)) || eval_prop env b
  | Ast.Minimal _ | Ast.Maximal _ -> true
