(** Parser for the property language (concrete syntax in {!Ast}).

    Operator precedence, loosest first: [=>] (right-associative), [||],
    [&&], [!]; comparisons bind tighter than Boolean connectives; in
    numeric expressions [* ] binds tighter than [+]/[-], and unary minus
    tightest.  Line comments start with [#]. *)

exception Error of string
(** Raised on lexical or syntax errors, with a human-readable message
    including the offending position. *)

(** [prop s] parses a property. *)
val prop : string -> Ast.prop

(** [expr s] parses a numeric expression. *)
val expr : string -> Ast.expr

(** [prop_file contents] parses a property file: properties on one or more
    lines, joined by conjunction; blank lines and [#] comments ignored.
    A trailing [&&] on a line continues onto the next. *)
val prop_file : string -> Ast.prop
