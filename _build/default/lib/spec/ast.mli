(** Abstract syntax of the generator property language (paper Figure 3).

    Concrete syntax used by {!Parse} (one line per construct):
    {v
      e ::= <int> | <real> | e + e | e - e | e * e | - e | ( e )
          | G[e](e, e)            bit of a generator's matrix
          | len_G | len_w | w(e) | sum_w
          | len_d(G[e]) | len_c(G[e]) | len_1(G[e]) | md(G[e])
      c ::= e = e | e != e | e < e | e > e | e <= e | e >= e
      p ::= true | false | c | !p | p && p | p || p | p => p | ( p )
          | minimal(e) | maximal(e)
    v} *)

(** The generator-valued functions of Figure 3. *)
type func =
  | Len_d  (** data length of a generator *)
  | Len_c  (** check length of a generator *)
  | Len_1  (** number of set bits in the coefficient matrix *)
  | Md  (** minimum distance *)

type expr =
  | Int of int
  | Real of float
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Neg of expr
  | Gen_entry of expr * expr * expr
      (** [Gen_entry (g, row, col)]: the paper's [G_e(e, e)], 0 or 1 *)
  | Len_g  (** number of generators, the paper's [len_G] *)
  | Len_w  (** number of weights *)
  | Weight of expr  (** [w(e)] *)
  | Sum_w  (** weighted sum of undetected-error probabilities *)
  | Func of func * expr  (** [f(G_e)]; argument is the generator index *)

type cmp = Eq | Neq | Lt | Gt | Le | Ge

type prop =
  | True
  | False
  | Cmp of cmp * expr * expr
  | Not of prop
  | And of prop * prop
  | Or of prop * prop
  | Imp of prop * prop
  | Minimal of expr  (** pseudo-property: minimize during synthesis *)
  | Maximal of expr  (** pseudo-property: maximize during synthesis *)

(** [pp_expr] / [pp_prop] print in the concrete syntax accepted by
    {!Parse} (with full parenthesization of non-atomic subterms). *)
val pp_expr : Format.formatter -> expr -> unit

val pp_prop : Format.formatter -> prop -> unit

(** [expr_to_string] / [prop_to_string] are the string versions. *)
val expr_to_string : expr -> string

val prop_to_string : prop -> string

(** [conjuncts p] flattens nested [And]s into a list. *)
val conjuncts : prop -> prop list

(** [objectives p] extracts the [Minimal]/[Maximal] directives, in
    left-to-right order. *)
val objectives : prop -> [ `Minimize of expr | `Maximize of expr ] list

(** [mentions_min_distance p] holds iff [md(...)] occurs anywhere in [p] —
    such properties route to the CEGIS verifier (paper §3.4). *)
val mentions_min_distance : prop -> bool

(** [equal_expr] / [equal_prop] are structural equality. *)
val equal_expr : expr -> expr -> bool

val equal_prop : prop -> prop -> bool
