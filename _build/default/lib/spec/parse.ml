exception Error of string

type token =
  | TInt of int
  | TReal of float
  | TIdent of string
  | TPlus
  | TMinus
  | TStar
  | TLParen
  | TRParen
  | TLBracket
  | TRBracket
  | TComma
  | TEq
  | TNeq
  | TLt
  | TGt
  | TLe
  | TGe
  | TAnd
  | TOr
  | TImp
  | TBang
  | TEOF

let token_name = function
  | TInt n -> string_of_int n
  | TReal r -> string_of_float r
  | TIdent s -> s
  | TPlus -> "+"
  | TMinus -> "-"
  | TStar -> "*"
  | TLParen -> "("
  | TRParen -> ")"
  | TLBracket -> "["
  | TRBracket -> "]"
  | TComma -> ","
  | TEq -> "="
  | TNeq -> "!="
  | TLt -> "<"
  | TGt -> ">"
  | TLe -> "<="
  | TGe -> ">="
  | TAnd -> "&&"
  | TOr -> "||"
  | TImp -> "=>"
  | TBang -> "!"
  | TEOF -> "<end of input>"

(* ---------- lexer ---------- *)

let tokenize s =
  let n = String.length s in
  let tokens = ref [] in
  let pos = ref 0 in
  let fail msg = raise (Error (Printf.sprintf "at offset %d: %s" !pos msg)) in
  let is_digit ch = ch >= '0' && ch <= '9' in
  let is_ident_char ch =
    (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') || is_digit ch || ch = '_'
  in
  while !pos < n do
    let ch = s.[!pos] in
    if ch = ' ' || ch = '\t' || ch = '\n' || ch = '\r' then incr pos
    else if ch = '#' then begin
      (* comment to end of line *)
      while !pos < n && s.[!pos] <> '\n' do
        incr pos
      done
    end
    else if is_digit ch then begin
      let start = !pos in
      while !pos < n && is_digit s.[!pos] do
        incr pos
      done;
      let is_real =
        !pos < n && s.[!pos] = '.' && !pos + 1 < n && is_digit s.[!pos + 1]
      in
      if is_real then begin
        incr pos;
        while !pos < n && (is_digit s.[!pos] || s.[!pos] = 'e' || s.[!pos] = '-') do
          incr pos
        done;
        tokens := TReal (float_of_string (String.sub s start (!pos - start))) :: !tokens
      end
      else tokens := TInt (int_of_string (String.sub s start (!pos - start))) :: !tokens
    end
    else if is_ident_char ch then begin
      let start = !pos in
      while !pos < n && is_ident_char s.[!pos] do
        incr pos
      done;
      tokens := TIdent (String.sub s start (!pos - start)) :: !tokens
    end
    else begin
      let two = if !pos + 1 < n then String.sub s !pos 2 else "" in
      let tok, len =
        match two with
        | "!=" -> (TNeq, 2)
        | "<=" -> (TLe, 2)
        | ">=" -> (TGe, 2)
        | "&&" -> (TAnd, 2)
        | "||" -> (TOr, 2)
        | "=>" -> (TImp, 2)
        | _ -> (
            match ch with
            | '+' -> (TPlus, 1)
            | '-' -> (TMinus, 1)
            | '*' -> (TStar, 1)
            | '(' -> (TLParen, 1)
            | ')' -> (TRParen, 1)
            | '[' -> (TLBracket, 1)
            | ']' -> (TRBracket, 1)
            | ',' -> (TComma, 1)
            | '=' -> (TEq, 1)
            | '<' -> (TLt, 1)
            | '>' -> (TGt, 1)
            | '!' -> (TBang, 1)
            | c -> fail (Printf.sprintf "unexpected character %C" c))
      in
      tokens := tok :: !tokens;
      pos := !pos + len
    end
  done;
  List.rev (TEOF :: !tokens)

(* ---------- recursive-descent parser ---------- *)

type state = { mutable toks : token list }

let peek st = match st.toks with [] -> TEOF | t :: _ -> t

let advance st =
  match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let expect st tok =
  if peek st = tok then advance st
  else
    raise
      (Error
         (Printf.sprintf "expected %S but found %S" (token_name tok)
            (token_name (peek st))))

let gen_arg st parse_expr =
  (* G[e] — the generator-index argument of the Figure 3 functions *)
  (match peek st with
  | TIdent "G" -> advance st
  | t -> raise (Error (Printf.sprintf "expected generator G[...], found %S" (token_name t))));
  expect st TLBracket;
  let e = parse_expr st in
  expect st TRBracket;
  e

let rec parse_expr st = parse_additive st

and parse_additive st =
  let lhs = ref (parse_multiplicative st) in
  let continue_flag = ref true in
  while !continue_flag do
    match peek st with
    | TPlus ->
        advance st;
        lhs := Ast.Add (!lhs, parse_multiplicative st)
    | TMinus ->
        advance st;
        lhs := Ast.Sub (!lhs, parse_multiplicative st)
    | _ -> continue_flag := false
  done;
  !lhs

and parse_multiplicative st =
  let lhs = ref (parse_unary st) in
  let continue_flag = ref true in
  while !continue_flag do
    match peek st with
    | TStar ->
        advance st;
        lhs := Ast.Mul (!lhs, parse_unary st)
    | _ -> continue_flag := false
  done;
  !lhs

and parse_unary st =
  match peek st with
  | TMinus ->
      advance st;
      Ast.Neg (parse_unary st)
  | _ -> parse_primary st

and parse_primary st =
  match peek st with
  | TInt n ->
      advance st;
      Ast.Int n
  | TReal r ->
      advance st;
      Ast.Real r
  | TLParen ->
      advance st;
      let e = parse_expr st in
      expect st TRParen;
      e
  | TIdent "len_G" ->
      advance st;
      Ast.Len_g
  | TIdent "len_w" ->
      advance st;
      Ast.Len_w
  | TIdent "sum_w" ->
      advance st;
      Ast.Sum_w
  | TIdent "w" ->
      advance st;
      expect st TLParen;
      let e = parse_expr st in
      expect st TRParen;
      Ast.Weight e
  | TIdent ("len_d" | "len_c" | "len_1" | "md") ->
      let f =
        match peek st with
        | TIdent "len_d" -> Ast.Len_d
        | TIdent "len_c" -> Ast.Len_c
        | TIdent "len_1" -> Ast.Len_1
        | TIdent "md" -> Ast.Md
        | _ -> assert false
      in
      advance st;
      expect st TLParen;
      let g = gen_arg st parse_expr in
      expect st TRParen;
      Ast.Func (f, g)
  | TIdent "G" ->
      advance st;
      expect st TLBracket;
      let g = parse_expr st in
      expect st TRBracket;
      expect st TLParen;
      let r = parse_expr st in
      expect st TComma;
      let c = parse_expr st in
      expect st TRParen;
      Ast.Gen_entry (g, r, c)
  | t -> raise (Error (Printf.sprintf "expected expression, found %S" (token_name t)))

let parse_cmp st =
  let lhs = parse_expr st in
  let op =
    match peek st with
    | TEq -> Ast.Eq
    | TNeq -> Ast.Neq
    | TLt -> Ast.Lt
    | TGt -> Ast.Gt
    | TLe -> Ast.Le
    | TGe -> Ast.Ge
    | t -> raise (Error (Printf.sprintf "expected comparison operator, found %S" (token_name t)))
  in
  advance st;
  let rhs = parse_expr st in
  Ast.Cmp (op, lhs, rhs)

let rec parse_prop st = parse_imp st

and parse_imp st =
  let lhs = parse_or st in
  match peek st with
  | TImp ->
      advance st;
      Ast.Imp (lhs, parse_imp st)
  | _ -> lhs

and parse_or st =
  let lhs = ref (parse_and st) in
  while peek st = TOr do
    advance st;
    lhs := Ast.Or (!lhs, parse_and st)
  done;
  !lhs

and parse_and st =
  let lhs = ref (parse_not st) in
  while peek st = TAnd do
    advance st;
    lhs := Ast.And (!lhs, parse_not st)
  done;
  !lhs

and parse_not st =
  match peek st with
  | TBang ->
      advance st;
      Ast.Not (parse_not st)
  | _ -> parse_prop_atom st

and parse_prop_atom st =
  match peek st with
  | TIdent "true" ->
      advance st;
      Ast.True
  | TIdent "false" ->
      advance st;
      Ast.False
  | TIdent "minimal" ->
      advance st;
      expect st TLParen;
      let e = parse_expr st in
      expect st TRParen;
      Ast.Minimal e
  | TIdent "maximal" ->
      advance st;
      expect st TLParen;
      let e = parse_expr st in
      expect st TRParen;
      Ast.Maximal e
  | TLParen ->
      (* could be a parenthesized property or the start of a comparison's
         parenthesized expression: backtrack on failure *)
      let saved = st.toks in
      (try
         advance st;
         let p = parse_prop st in
         expect st TRParen;
         (* if a comparison operator follows, this was really an expr *)
         match peek st with
         | TEq | TNeq | TLt | TGt | TLe | TGe ->
             st.toks <- saved;
             parse_cmp st
         | _ -> p
       with Error _ ->
         st.toks <- saved;
         parse_cmp st)
  | _ -> parse_cmp st

let run parser_fn s =
  let st = { toks = tokenize s } in
  let result = parser_fn st in
  (match peek st with
  | TEOF -> ()
  | t -> raise (Error (Printf.sprintf "trailing input at %S" (token_name t))));
  result

let prop s = run parse_prop s
let expr s = run parse_expr s

let prop_file contents =
  let lines = String.split_on_char '\n' contents in
  let cleaned =
    List.map
      (fun line ->
        match String.index_opt line '#' with
        | Some i -> String.sub line 0 i
        | None -> line)
      lines
    |> List.map String.trim
    |> List.filter (fun l -> l <> "")
  in
  match cleaned with
  | [] -> Ast.True
  | lines ->
      (* a line ending in && explicitly continues; all lines are conjoined *)
      let strip_trailing_and l =
        let l = String.trim l in
        if String.length l >= 2 && String.sub l (String.length l - 2) 2 = "&&" then
          String.trim (String.sub l 0 (String.length l - 2))
        else l
      in
      prop (String.concat " && " (List.map strip_trailing_and lines))
