(** Concrete evaluation of properties against candidate generators.

    This is the semantics the synthesizer's answers are checked against in
    tests, and what the CLI's [analyze] command uses to report whether a
    given generator satisfies a specification. *)

type env = {
  generators : Hamming.Code.t array;  (** the paper's set [G] *)
  weights : float array;  (** per-bit criticality weights, possibly empty *)
  mapping : int array;
      (** [mapping.(j)] is the generator index bit [j] is assigned to;
          must have length [Array.length weights] *)
  channel_p : float;  (** channel bit-error probability for [sum_w] *)
}

(** [env_of_code code] wraps a single generator with no weights. *)
val env_of_code : Hamming.Code.t -> env

(** Numeric values: the language mixes integers and reals. *)
type value = Vint of int | Vreal of float

val value_to_float : value -> float

exception Eval_error of string
(** Raised on out-of-range generator indices, matrix positions, or weight
    indices. *)

(** [eval_expr env e] evaluates a numeric expression. *)
val eval_expr : env -> Ast.expr -> value

(** [eval_prop env p] evaluates a property.  [Minimal]/[Maximal]
    pseudo-properties evaluate to [true] (they constrain search, not
    models). *)
val eval_prop : env -> Ast.prop -> bool

(** [sum_w env] is the weighted sum of approximate undetected-error
    probabilities under the mapping, i.e. the paper's §4.3 objective
    [Σ_j w_j · C(n_{map(j)}, md_{map(j)}) · p^{md_{map(j)}}]. *)
val sum_w : env -> float
