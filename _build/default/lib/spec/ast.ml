type func = Len_d | Len_c | Len_1 | Md

type expr =
  | Int of int
  | Real of float
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Neg of expr
  | Gen_entry of expr * expr * expr
  | Len_g
  | Len_w
  | Weight of expr
  | Sum_w
  | Func of func * expr

type cmp = Eq | Neq | Lt | Gt | Le | Ge

type prop =
  | True
  | False
  | Cmp of cmp * expr * expr
  | Not of prop
  | And of prop * prop
  | Or of prop * prop
  | Imp of prop * prop
  | Minimal of expr
  | Maximal of expr

let func_name = function
  | Len_d -> "len_d"
  | Len_c -> "len_c"
  | Len_1 -> "len_1"
  | Md -> "md"

let cmp_name = function
  | Eq -> "="
  | Neq -> "!="
  | Lt -> "<"
  | Gt -> ">"
  | Le -> "<="
  | Ge -> ">="

let rec pp_expr fmt = function
  | Int n -> Format.fprintf fmt "%d" n
  | Real r ->
      if Float.is_integer r && Float.abs r < 1e15 then Format.fprintf fmt "%.1f" r
      else Format.fprintf fmt "%.12g" r
  | Add (a, b) -> Format.fprintf fmt "(%a + %a)" pp_expr a pp_expr b
  | Sub (a, b) -> Format.fprintf fmt "(%a - %a)" pp_expr a pp_expr b
  | Mul (a, b) -> Format.fprintf fmt "(%a * %a)" pp_expr a pp_expr b
  | Neg a -> Format.fprintf fmt "(- %a)" pp_expr a
  | Gen_entry (g, r, c) ->
      Format.fprintf fmt "G[%a](%a, %a)" pp_expr g pp_expr r pp_expr c
  | Len_g -> Format.pp_print_string fmt "len_G"
  | Len_w -> Format.pp_print_string fmt "len_w"
  | Weight e -> Format.fprintf fmt "w(%a)" pp_expr e
  | Sum_w -> Format.pp_print_string fmt "sum_w"
  | Func (f, g) -> Format.fprintf fmt "%s(G[%a])" (func_name f) pp_expr g

let rec pp_prop fmt = function
  | True -> Format.pp_print_string fmt "true"
  | False -> Format.pp_print_string fmt "false"
  | Cmp (c, a, b) -> Format.fprintf fmt "%a %s %a" pp_expr a (cmp_name c) pp_expr b
  | Not p -> Format.fprintf fmt "!(%a)" pp_prop p
  | And (a, b) -> Format.fprintf fmt "(%a && %a)" pp_prop a pp_prop b
  | Or (a, b) -> Format.fprintf fmt "(%a || %a)" pp_prop a pp_prop b
  | Imp (a, b) -> Format.fprintf fmt "(%a => %a)" pp_prop a pp_prop b
  | Minimal e -> Format.fprintf fmt "minimal(%a)" pp_expr e
  | Maximal e -> Format.fprintf fmt "maximal(%a)" pp_expr e

let expr_to_string e = Format.asprintf "%a" pp_expr e
let prop_to_string p = Format.asprintf "%a" pp_prop p

let rec conjuncts = function
  | And (a, b) -> conjuncts a @ conjuncts b
  | p -> [ p ]

let rec objectives = function
  | Minimal e -> [ `Minimize e ]
  | Maximal e -> [ `Maximize e ]
  | And (a, b) | Or (a, b) | Imp (a, b) -> objectives a @ objectives b
  | Not p -> objectives p
  | True | False | Cmp _ -> []

let rec expr_mentions_md = function
  | Func (Md, _) -> true
  | Int _ | Real _ | Len_g | Len_w | Sum_w -> false
  | Add (a, b) | Sub (a, b) | Mul (a, b) -> expr_mentions_md a || expr_mentions_md b
  | Neg a | Weight a | Func (_, a) -> expr_mentions_md a
  | Gen_entry (g, r, c) ->
      expr_mentions_md g || expr_mentions_md r || expr_mentions_md c

let rec mentions_min_distance = function
  | True | False -> false
  | Cmp (_, a, b) -> expr_mentions_md a || expr_mentions_md b
  | Not p -> mentions_min_distance p
  | And (a, b) | Or (a, b) | Imp (a, b) ->
      mentions_min_distance a || mentions_min_distance b
  | Minimal e | Maximal e -> expr_mentions_md e

let equal_expr (a : expr) (b : expr) = a = b
let equal_prop (a : prop) (b : prop) = a = b
