lib/channel/burst.mli: Gf2 Hamming Prng
