lib/channel/prng.mli:
