lib/channel/bitflip.ml: Array Float Int32 Int64 Prng
