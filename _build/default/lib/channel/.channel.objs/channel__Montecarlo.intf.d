lib/channel/montecarlo.mli: Hamming Prng
