lib/channel/bsc.mli: Gf2 Prng
