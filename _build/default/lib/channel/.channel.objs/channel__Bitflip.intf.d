lib/channel/bitflip.mli:
