lib/channel/montecarlo.ml: Bsc Hamming Prng
