lib/channel/burst.ml: Array Bitvec Gf2 Hamming Prng
