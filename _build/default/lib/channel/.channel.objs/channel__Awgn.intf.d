lib/channel/awgn.mli: Gf2 Prng
