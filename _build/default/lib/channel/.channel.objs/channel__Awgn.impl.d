lib/channel/awgn.ml: Array Float Gf2 Prng
