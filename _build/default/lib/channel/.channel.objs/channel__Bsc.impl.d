lib/channel/bsc.ml: Gf2 Prng
