lib/channel/prng.ml: Int64
