(** BPSK over an additive-white-Gaussian-noise channel, producing the
    soft reliabilities (log-likelihood ratios) that soft-decision decoders
    consume.

    The 802.3df proposal the paper verifies (Bliss et al.) pairs the
    (128,120) Hamming code with {e soft Chase decoding}; this module
    provides the channel model for {!Hamming.Chase}. *)

(** [gaussian g] is a standard normal draw (Box-Muller over SplitMix64). *)
val gaussian : Prng.t -> float

(** [transmit g ~snr_db bits] BPSK-modulates the codeword (0 → +1,
    1 → -1), adds noise for the given Eb/N0-style SNR (dB, per channel
    bit), and returns the received soft values. *)
val transmit : Prng.t -> snr_db:float -> Gf2.Bitvec.t -> float array

(** [llrs ~snr_db received] converts received values to LLRs
    ([> 0] favours bit 0).  For BPSK/AWGN this is [4·Es/N0·y]. *)
val llrs : snr_db:float -> float array -> float array

(** [hard_decision received] is the sign-based bit decision. *)
val hard_decision : float array -> Gf2.Bitvec.t

(** [noise_sigma ~snr_db] is the noise standard deviation used by
    [transmit] (exposed for tests). *)
val noise_sigma : snr_db:float -> float
