(** Monte-Carlo robustness harness (paper §4.2 Figure 4 and §4.3 Table 2).

    Encodes random data words, pushes the codewords through a binary
    symmetric channel, and counts: words whose channel flipped at least
    [min_distance] bits (the paper's upper curve, matching [P_u·N]
    theoretically), and words corrupted into {e different valid codewords}
    — undetected errors (the lower curve). *)

(** A word-level codec over packed integers, decoupled from any concrete
    code representation so composite codecs plug in too. *)
type codec = {
  data_len : int;  (** bits per data word *)
  block_len : int;  (** bits per codeword *)
  encode : int -> int;
  is_valid : int -> bool;
}

(** [codec_of_code code] wraps a single Hamming generator (via the
    mask-compiled {!Hamming.Fastcodec}). *)
val codec_of_code : Hamming.Code.t -> codec

type result = {
  words : int;
  flips_ge_md : int;  (** words with at least [md] channel flips *)
  undetected : int;  (** valid-looking but corrupted words *)
  expected_flips_ge_md : float;  (** theoretical [P_u · words] *)
}

(** [run ?on_undetected ~codec ~md ~words ~p ~seed gen_data] runs the
    trial.  [gen_data] draws a data word; [on_undetected] (if given) sees
    [~sent ~received] data words of every undetected error, letting
    callers accumulate numeric-error statistics (Table 2). *)
val run :
  ?on_undetected:(sent:int -> received:int -> unit) ->
  codec:codec ->
  md:int ->
  words:int ->
  p:float ->
  seed:int ->
  (Prng.t -> int) ->
  result

(** [uniform_data codec] draws uniform data words for [run]. *)
val uniform_data : codec -> Prng.t -> int

(** [numeric_float32_data] draws uniform 32-bit patterns that represent
    numeric IEEE floats (Table 2's workload); requires a 32-bit codec. *)
val numeric_float32_data : Prng.t -> int
