let gaussian g =
  (* Box-Muller; discards the second variate for simplicity *)
  let u1 = ref (Prng.float g) in
  while !u1 <= 1e-300 do
    u1 := Prng.float g
  done;
  let u2 = Prng.float g in
  sqrt (-2.0 *. log !u1) *. cos (2.0 *. Float.pi *. u2)

let noise_sigma ~snr_db =
  let snr_linear = 10.0 ** (snr_db /. 10.0) in
  (* unit symbol energy: sigma^2 = 1 / (2 * SNR) *)
  sqrt (1.0 /. (2.0 *. snr_linear))

let transmit g ~snr_db bits =
  let sigma = noise_sigma ~snr_db in
  Array.init (Gf2.Bitvec.length bits) (fun i ->
      let symbol = if Gf2.Bitvec.get bits i then -1.0 else 1.0 in
      symbol +. (sigma *. gaussian g))

let llrs ~snr_db received =
  let sigma = noise_sigma ~snr_db in
  let scale = 2.0 /. (sigma *. sigma) in
  Array.map (fun y -> scale *. y) received

let hard_decision received =
  Gf2.Bitvec.init (Array.length received) (fun i -> received.(i) < 0.0)
