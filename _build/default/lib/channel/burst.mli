(** Bursty channels and interleaving.

    Real links (the optical and cellular links that motivate FEC in the
    paper's introduction) produce {e correlated} bit errors.  The standard
    model is the Gilbert-Elliott two-state Markov channel: a Good state
    with low bit-error probability and a Bad state with a high one, with
    sticky transitions.  Block codes sized for random errors collapse
    under bursts; a block interleaver spreads each burst across many
    codewords, restoring the random-error regime — the classic FEC system
    component this module provides and the burst benchmark measures. *)

(** Gilbert-Elliott channel parameters. *)
type ge = {
  p_good : float;  (** bit-error probability in the Good state *)
  p_bad : float;  (** bit-error probability in the Bad state *)
  p_g2b : float;  (** per-bit probability of Good → Bad transition *)
  p_b2g : float;  (** per-bit probability of Bad → Good transition *)
}

(** A typical harsh-burst configuration: long quiet stretches, dense
    error bursts averaging ~50 bits. *)
val default_ge : ge

(** [ge_flip_bits g ge ~len] is an error bit-vector of length [len] drawn
    from the channel (state starts Good). *)
val ge_flip_bits : Prng.t -> ge -> len:int -> Gf2.Bitvec.t

(** [interleave ~depth ~width words] serializes [depth] codewords of
    [width] bits column-major: output bit [(c * depth) + r] is bit [c] of
    word [r].  @raise Invalid_argument if [Array.length words <> depth]. *)
val interleave : depth:int -> width:int -> int array -> Gf2.Bitvec.t

(** [deinterleave ~depth ~width bits] inverts {!interleave}. *)
val deinterleave : depth:int -> width:int -> Gf2.Bitvec.t -> int array

type trial_result = {
  codewords : int;
  word_errors_plain : int;  (** uncorrectable/miscorrected without interleaving *)
  word_errors_interleaved : int;  (** same with interleaving *)
}

(** [trial codec ~depth ~blocks ~ge ~seed] sends [blocks * depth] random
    codewords through the channel twice — consecutively, and interleaved
    with the given depth — decoding with single-error correction, and
    counts words whose recovered data is wrong. *)
val trial :
  Hamming.Fastcodec.t -> depth:int -> blocks:int -> ge:ge -> seed:int -> trial_result
