let error_mask g ~p ~width =
  let mask = ref 0 in
  for i = 0 to width - 1 do
    if Prng.bool_with g ~p then mask := !mask lor (1 lsl i)
  done;
  !mask

let popcount x =
  let rec go x acc = if x = 0 then acc else go (x land (x - 1)) (acc + 1) in
  go x 0

let flip_word g ~p ~width w =
  let mask = error_mask g ~p ~width in
  (w lxor mask, popcount mask)

let flip_bitvec g ~p v =
  let v' = Gf2.Bitvec.copy v in
  let flips = ref 0 in
  for i = 0 to Gf2.Bitvec.length v - 1 do
    if Prng.bool_with g ~p then begin
      Gf2.Bitvec.flip v' i;
      incr flips
    end
  done;
  (v', !flips)
