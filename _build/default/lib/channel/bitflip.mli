(** Per-bit numeric-error analysis of data formats (paper Figure 1).

    For each bit position of a 32-bit word, how large is the numeric error
    caused by flipping that bit, on average over the value space?  The
    integer profile has a closed form; the float profile is estimated by
    deterministic sampling stratified over exponents (flips that turn a
    numeric value into NaN/infinity are excluded from the magnitude
    average and counted separately, matching the paper's "non-numeric"
    accounting).  Bit index 0 is the most significant bit. *)

type profile = {
  avg_magnitude : float array;  (** length 32, mean |Δvalue| per position *)
  non_numeric : int array;  (** flips yielding NaN/infinity per position *)
  samples : int;
}

val int32_profile : unit -> profile
(** Exact closed form: flipping bit [i] of a two's-complement integer
    always changes the value by [2^(31-i)]. *)

val float32_profile : ?samples:int -> ?seed:int -> unit -> profile
(** Monte-Carlo over uniformly drawn numeric float bit patterns. *)

val normalize : profile -> float array
(** [normalize p] scales [avg_magnitude] to a maximum of 1.0 (the paper
    plots normalized magnitudes). *)

val weights_for_upper_bits : ?bits:int -> profile -> int array
(** [weights_for_upper_bits ~bits p] converts a profile into integer
    criticality weights on a 1..100 scale for the upper [bits] (default
    16) positions — the paper's §4.3 weight vector derivation. *)
