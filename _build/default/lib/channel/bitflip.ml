type profile = {
  avg_magnitude : float array;
  non_numeric : int array;
  samples : int;
}

let int32_profile () =
  {
    avg_magnitude = Array.init 32 (fun i -> Float.of_int 2 ** float_of_int (31 - i));
    non_numeric = Array.make 32 0;
    samples = 0;
  }

let is_numeric_bits bits =
  (* exponent field not all-ones (NaN / infinity) *)
  Int32.logand (Int32.shift_right_logical bits 23) 0xFFl <> 0xFFl

let float_of_bits = Int32.float_of_bits

(* Draw a uniformly random bit pattern that represents a numeric float. *)
let rec random_numeric_bits g =
  let bits = Int64.to_int32 (Prng.next_int64 g) in
  if is_numeric_bits bits then bits else random_numeric_bits g

let float32_profile ?(samples = 100_000) ?(seed = 0x5eed) () =
  let g = Prng.create seed in
  let sums = Array.make 32 0.0 in
  let counts = Array.make 32 0 in
  let non_numeric = Array.make 32 0 in
  for _ = 1 to samples do
    let bits = random_numeric_bits g in
    let x = float_of_bits bits in
    for i = 0 to 31 do
      let flipped = Int32.logxor bits (Int32.shift_left 1l (31 - i)) in
      if is_numeric_bits flipped then begin
        let y = float_of_bits flipped in
        sums.(i) <- sums.(i) +. Float.abs (y -. x);
        counts.(i) <- counts.(i) + 1
      end
      else non_numeric.(i) <- non_numeric.(i) + 1
    done
  done;
  {
    avg_magnitude =
      Array.init 32 (fun i -> if counts.(i) = 0 then 0.0 else sums.(i) /. float_of_int counts.(i));
    non_numeric;
    samples;
  }

let normalize p =
  let max_v = Array.fold_left Float.max 0.0 p.avg_magnitude in
  if max_v = 0.0 then Array.copy p.avg_magnitude
  else Array.map (fun v -> v /. max_v) p.avg_magnitude

let weights_for_upper_bits ?(bits = 16) p =
  let norm = normalize p in
  Array.init bits (fun i -> max 1 (int_of_float (Float.round (norm.(i) *. 100.0))))
