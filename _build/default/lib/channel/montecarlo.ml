type codec = {
  data_len : int;
  block_len : int;
  encode : int -> int;
  is_valid : int -> bool;
}

let codec_of_code code =
  let fc = Hamming.Fastcodec.compile code in
  {
    data_len = fc.Hamming.Fastcodec.data_len;
    block_len = fc.Hamming.Fastcodec.data_len + fc.Hamming.Fastcodec.check_len;
    encode = fc.Hamming.Fastcodec.encode;
    is_valid = (fun w -> fc.Hamming.Fastcodec.syndrome w = 0);
  }

type result = {
  words : int;
  flips_ge_md : int;
  undetected : int;
  expected_flips_ge_md : float;
}

let run ?on_undetected ~codec ~md ~words ~p ~seed gen_data =
  let g = Prng.create seed in
  let data_mask = (1 lsl codec.data_len) - 1 in
  let flips_ge_md = ref 0 in
  let undetected = ref 0 in
  for _ = 1 to words do
    let d = gen_data g in
    let w = codec.encode d in
    let w', flips = Bsc.flip_word g ~p ~width:codec.block_len w in
    if flips >= md then incr flips_ge_md;
    if w' <> w && codec.is_valid w' then begin
      incr undetected;
      match on_undetected with
      | Some f -> f ~sent:d ~received:(w' land data_mask)
      | None -> ()
    end
  done;
  {
    words;
    flips_ge_md = !flips_ge_md;
    undetected = !undetected;
    expected_flips_ge_md =
      float_of_int words
      *. Hamming.Robustness.prob_flips_ge ~n:codec.block_len ~m:md ~p;
  }

let uniform_data codec g = Prng.bits g ~n:codec.data_len

let numeric_float32_data g =
  let rec go () =
    let bits = Prng.bits g ~n:32 in
    (* exponent all-ones = NaN / infinity: redraw *)
    if (bits lsr 23) land 0xFF = 0xFF then go () else bits
  in
  go ()
