open Gf2

type ge = { p_good : float; p_bad : float; p_g2b : float; p_b2g : float }

let default_ge = { p_good = 0.0005; p_bad = 0.25; p_g2b = 0.002; p_b2g = 0.02 }

let ge_flip_bits g ge ~len =
  let bits = Bitvec.create len in
  let bad = ref false in
  for i = 0 to len - 1 do
    let p = if !bad then ge.p_bad else ge.p_good in
    if Prng.bool_with g ~p then Bitvec.set bits i true;
    let pt = if !bad then ge.p_b2g else ge.p_g2b in
    if Prng.bool_with g ~p:pt then bad := not !bad
  done;
  bits

let interleave ~depth ~width words =
  if Array.length words <> depth then
    invalid_arg "Burst.interleave: word count must equal depth";
  let out = Bitvec.create (depth * width) in
  for r = 0 to depth - 1 do
    for c = 0 to width - 1 do
      if (words.(r) lsr c) land 1 = 1 then Bitvec.set out ((c * depth) + r) true
    done
  done;
  out

let deinterleave ~depth ~width bits =
  if Bitvec.length bits <> depth * width then
    invalid_arg "Burst.deinterleave: length mismatch";
  Array.init depth (fun r ->
      let w = ref 0 in
      for c = 0 to width - 1 do
        if Bitvec.get bits ((c * depth) + r) then w := !w lor (1 lsl c)
      done;
      !w)

type trial_result = {
  codewords : int;
  word_errors_plain : int;
  word_errors_interleaved : int;
}

let trial (codec : Hamming.Fastcodec.t) ~depth ~blocks ~ge ~seed =
  let width = codec.Hamming.Fastcodec.data_len + codec.Hamming.Fastcodec.check_len in
  let data_mask = (1 lsl codec.Hamming.Fastcodec.data_len) - 1 in
  let g = Prng.create seed in
  let word_errors_plain = ref 0 in
  let word_errors_interleaved = ref 0 in
  for _ = 1 to blocks do
    let data =
      Array.init depth (fun _ -> Prng.bits g ~n:codec.Hamming.Fastcodec.data_len)
    in
    let words = Array.map codec.Hamming.Fastcodec.encode data in
    (* one channel realization shared by both transmission orders, so the
       comparison isolates the interleaving effect *)
    let errors = ge_flip_bits (Prng.copy g) ge ~len:(depth * width) in
    ignore (ge_flip_bits g ge ~len:(depth * width));
    let recover w expected =
      match codec.Hamming.Fastcodec.correct w with
      | Some fixed when fixed land data_mask = expected -> true
      | _ -> false
    in
    (* plain: codewords transmitted consecutively *)
    Array.iteri
      (fun r w ->
        let e = ref 0 in
        for c = 0 to width - 1 do
          if Bitvec.get errors ((r * width) + c) then e := !e lor (1 lsl c)
        done;
        if not (recover (w lxor !e) data.(r)) then incr word_errors_plain)
      words;
    (* interleaved: same error vector hits the column-major order *)
    let stream = interleave ~depth ~width words in
    Bitvec.xor_in_place stream errors;
    let received = deinterleave ~depth ~width stream in
    Array.iteri
      (fun r w -> if not (recover w data.(r)) then incr word_errors_interleaved)
      received
  done;
  {
    codewords = blocks * depth;
    word_errors_plain = !word_errors_plain;
    word_errors_interleaved = !word_errors_interleaved;
  }
