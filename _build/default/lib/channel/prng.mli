(** SplitMix64: a small, fast, deterministic PRNG.

    Every experiment in this repository seeds its own generator so that
    results are exactly reproducible run-to-run (the Monte-Carlo tables in
    EXPERIMENTS.md depend on this). *)

type t

(** [create seed] is a generator with the given 64-bit seed. *)
val create : int -> t

(** [copy g] is an independent generator with the same state. *)
val copy : t -> t

(** [next_int64 g] is the next raw 64-bit output. *)
val next_int64 : t -> int64

(** [bits g ~n] is the next [n <= 62] bits as a non-negative [int]. *)
val bits : t -> n:int -> int

(** [float g] is uniform in [0, 1). *)
val float : t -> float

(** [bool_with g ~p] is [true] with probability [p]. *)
val bool_with : t -> p:float -> bool

(** [int_below g bound] is uniform in [0, bound).
    @raise Invalid_argument if [bound <= 0]. *)
val int_below : t -> int -> int
