(** Binary symmetric channel: independent bit flips with probability [p]. *)

(** [flip_word g ~p ~width w] flips each of the low [width] bits of [w]
    independently with probability [p]; returns the corrupted word and the
    number of flips. *)
val flip_word : Prng.t -> p:float -> width:int -> int -> int * int

(** [flip_bitvec g ~p v] is a corrupted copy of [v] plus the flip count. *)
val flip_bitvec : Prng.t -> p:float -> Gf2.Bitvec.t -> Gf2.Bitvec.t * int

(** [error_mask g ~p ~width] is just the error pattern (for callers that
    XOR it in themselves). *)
val error_mask : Prng.t -> p:float -> width:int -> int
