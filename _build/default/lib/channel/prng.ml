(* SplitMix64 (Steele, Lea, Flood 2014): passes BigCrush, two multiplies
   and a few shifts per output. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }
let copy g = { state = g.state }

let next_int64 g =
  g.state <- Int64.add g.state 0x9E3779B97F4A7C15L;
  let z = g.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits g ~n =
  if n < 0 || n > 62 then invalid_arg "Prng.bits: need 0 <= n <= 62";
  if n = 0 then 0
  else Int64.to_int (Int64.shift_right_logical (next_int64 g) (64 - n)) land ((1 lsl n) - 1)

let float g =
  (* 53 top bits -> [0,1) *)
  let x = Int64.to_int (Int64.shift_right_logical (next_int64 g) 11) in
  float_of_int x /. 9007199254740992.0

let bool_with g ~p = float g < p

let int_below g bound =
  if bound <= 0 then invalid_arg "Prng.int_below: non-positive bound";
  (* rejection-free modulo is fine for our bounds << 2^62 *)
  bits g ~n:62 mod bound
