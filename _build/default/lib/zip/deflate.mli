(** DEFLATE (RFC 1951) compression and decompression.

    The compressor emits a single block per call in one of three modes;
    the decompressor handles arbitrary multi-block streams of all three
    block types. *)

type strategy =
  | Stored  (** no compression (BTYPE 00) *)
  | Fixed  (** fixed Huffman tables (BTYPE 01) *)
  | Dynamic  (** per-block Huffman tables (BTYPE 10), the default *)

(** [compress ?strategy ?max_chain s] deflates [s]. *)
val compress : ?strategy:strategy -> ?max_chain:int -> string -> string

(** [decompress s] inflates a complete DEFLATE stream.
    @raise Failure on malformed input. *)
val decompress : string -> string
