let le32 v =
  String.init 4 (fun i -> Char.chr (Int32.to_int (Int32.shift_right_logical v (8 * i)) land 0xFF))

let compress ?strategy ?(level = 6) s =
  let max_chain = max 1 (level * 32) in
  let body = Deflate.compress ?strategy ~max_chain s in
  let header =
    (* magic, CM=deflate, no flags, mtime 0, XFL 0, OS 255 (unknown) *)
    "\x1f\x8b\x08\x00\x00\x00\x00\x00\x00\xff"
  in
  let crc = Crc32.digest s in
  let isize = Int32.of_int (String.length s land 0xFFFFFFFF) in
  header ^ body ^ le32 crc ^ le32 isize

let read_le32 s pos =
  let b i = Int32.of_int (Char.code s.[pos + i]) in
  Int32.logor (b 0)
    (Int32.logor
       (Int32.shift_left (b 1) 8)
       (Int32.logor (Int32.shift_left (b 2) 16) (Int32.shift_left (b 3) 24)))

let decompress s =
  if String.length s < 18 then failwith "Gzip.decompress: truncated";
  if s.[0] <> '\x1f' || s.[1] <> '\x8b' then failwith "Gzip.decompress: bad magic";
  if s.[2] <> '\x08' then failwith "Gzip.decompress: unsupported compression method";
  let flags = Char.code s.[3] in
  let pos = ref 10 in
  (* FEXTRA *)
  if flags land 0x04 <> 0 then begin
    let xlen = Char.code s.[!pos] lor (Char.code s.[!pos + 1] lsl 8) in
    pos := !pos + 2 + xlen
  end;
  (* FNAME, FCOMMENT: zero-terminated strings *)
  let skip_zstring () =
    while s.[!pos] <> '\x00' do
      incr pos
    done;
    incr pos
  in
  if flags land 0x08 <> 0 then skip_zstring ();
  if flags land 0x10 <> 0 then skip_zstring ();
  (* FHCRC *)
  if flags land 0x02 <> 0 then pos := !pos + 2;
  let body = String.sub s !pos (String.length s - !pos - 8) in
  let out = Deflate.decompress body in
  let crc = read_le32 s (String.length s - 8) in
  let isize = read_le32 s (String.length s - 4) in
  if Crc32.digest out <> crc then failwith "Gzip.decompress: CRC mismatch";
  if Int32.of_int (String.length out land 0xFFFFFFFF) <> isize then
    failwith "Gzip.decompress: length mismatch";
  out
