(** GZIP (RFC 1952) container around DEFLATE, with CRC-32 and size
    trailer — the format the paper's Figure 6 compressibility experiment
    measures. *)

(** [compress ?strategy ?level s] is a complete gzip member.
    [level] maps to the LZ77 chain effort (1 fast .. 9 thorough). *)
val compress : ?strategy:Deflate.strategy -> ?level:int -> string -> string

(** [decompress s] extracts a single-member gzip file, verifying the CRC
    and length trailer.
    @raise Failure on bad magic, CRC mismatch, or truncation. *)
val decompress : string -> string
