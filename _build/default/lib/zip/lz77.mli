(** LZ77 tokenization with DEFLATE's parameters: 32 KiB window, match
    lengths 3..258. *)

type token =
  | Literal of char
  | Match of { length : int; distance : int }
      (** copy [length] bytes from [distance] bytes back *)

(** [tokenize ?max_chain s] greedily factors [s].  [max_chain] bounds the
    hash-chain walk per position (compression effort knob). *)
val tokenize : ?max_chain:int -> string -> token list

(** [reconstruct tokens] inverts [tokenize] (for tests). *)
val reconstruct : token list -> string
