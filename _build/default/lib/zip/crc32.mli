(** CRC-32 (IEEE 802.3 polynomial, reflected), as used by GZIP. *)

(** [digest s] is the CRC-32 of the whole string. *)
val digest : string -> int32

(** [update crc s] folds more data into a running CRC (start from
    [init]). *)
val update : int32 -> string -> int32

val init : int32
