(* Code lengths by plain Huffman tree construction; if the deepest leaf
   exceeds the limit, frequencies are halved (flattening the distribution)
   and the tree rebuilt — simple, always terminates, and near-optimal for
   DEFLATE-sized alphabets. *)

type node = Leaf of int | Internal of node * node

let build_tree freqs =
  (* a tiny mutable pairing of (weight, node) lists kept sorted *)
  let items =
    Array.to_list (Array.mapi (fun sym f -> (f, Leaf sym)) freqs)
    |> List.filter (fun (f, _) -> f > 0)
    |> List.sort compare
  in
  let rec merge = function
    | [] -> None
    | [ (_, node) ] -> Some node
    | (f1, n1) :: (f2, n2) :: rest ->
        let combined = (f1 + f2, Internal (n1, n2)) in
        let rec insert x = function
          | [] -> [ x ]
          | y :: ys when fst y < fst x -> y :: insert x ys
          | ys -> x :: ys
        in
        merge (insert combined rest)
  in
  merge items

let rec depths node depth acc =
  match node with
  | Leaf sym -> (sym, max 1 depth) :: acc
  | Internal (a, b) -> depths a (depth + 1) (depths b (depth + 1) acc)

let lengths ~max_len freqs =
  let n = Array.length freqs in
  let rec attempt freqs =
    let out = Array.make n 0 in
    (match build_tree freqs with
    | None -> ()
    | Some tree ->
        let ds = depths tree 0 [] in
        let too_deep = List.exists (fun (_, d) -> d > max_len) ds in
        if too_deep then begin
          let flattened = Array.map (fun f -> if f > 0 then (f + 1) / 2 else 0) freqs in
          Array.blit (attempt flattened) 0 out 0 n
        end
        else List.iter (fun (sym, d) -> out.(sym) <- d) ds);
    out
  in
  attempt freqs

let check_kraft lens =
  let acc = ref 0 in
  let max_len = Array.fold_left max 0 lens in
  if max_len > 0 then begin
    Array.iter (fun l -> if l > 0 then acc := !acc + (1 lsl (max_len - l))) lens;
    if !acc > 1 lsl max_len then
      invalid_arg "Huffman: code lengths oversubscribe the code space"
  end

let canonical_codes lens =
  check_kraft lens;
  let max_len = Array.fold_left max 0 lens in
  let bl_count = Array.make (max_len + 1) 0 in
  Array.iter (fun l -> if l > 0 then bl_count.(l) <- bl_count.(l) + 1) lens;
  let next_code = Array.make (max_len + 2) 0 in
  let code = ref 0 in
  for bits = 1 to max_len do
    code := (!code + bl_count.(bits - 1)) lsl 1;
    next_code.(bits) <- !code
  done;
  Array.map
    (fun l ->
      if l = 0 then 0
      else begin
        let c = next_code.(l) in
        next_code.(l) <- c + 1;
        c
      end)
    lens

(* Decoder: canonical codes are consecutive within a length, so track the
   first code and first symbol index per length while reading bits. *)
type decoder = {
  max_len : int;
  first_code : int array; (* per length *)
  first_symbol : int array; (* index into [symbols] per length *)
  counts : int array;
  symbols : int array; (* symbols sorted by (length, symbol) *)
}

let decoder lens =
  check_kraft lens;
  let max_len = Array.fold_left max 0 lens in
  let counts = Array.make (max_len + 1) 0 in
  Array.iter (fun l -> if l > 0 then counts.(l) <- counts.(l) + 1) lens;
  let symbols =
    Array.to_list (Array.mapi (fun sym l -> (l, sym)) lens)
    |> List.filter (fun (l, _) -> l > 0)
    |> List.sort compare
    |> List.map snd |> Array.of_list
  in
  let first_code = Array.make (max_len + 1) 0 in
  let first_symbol = Array.make (max_len + 1) 0 in
  let code = ref 0 in
  let sym_index = ref 0 in
  for l = 1 to max_len do
    code := !code lsl 1;
    first_code.(l) <- !code;
    first_symbol.(l) <- !sym_index;
    code := !code + counts.(l);
    sym_index := !sym_index + counts.(l)
  done;
  { max_len; first_code; first_symbol; counts; symbols }

let decode d reader =
  let code = ref 0 in
  let len = ref 0 in
  let result = ref (-1) in
  while !result < 0 do
    if !len >= d.max_len then failwith "Huffman.decode: invalid code";
    code := (!code lsl 1) lor Bitio.Reader.bit reader;
    incr len;
    let l = !len in
    if d.counts.(l) > 0 && !code - d.first_code.(l) < d.counts.(l) && !code >= d.first_code.(l)
    then result := d.symbols.(d.first_symbol.(l) + (!code - d.first_code.(l)))
  done;
  !result
