type strategy = Stored | Fixed | Dynamic

(* ---------- RFC 1951 constant tables ---------- *)

let length_base =
  [| 3; 4; 5; 6; 7; 8; 9; 10; 11; 13; 15; 17; 19; 23; 27; 31; 35; 43; 51; 59; 67; 83;
     99; 115; 131; 163; 195; 227; 258 |]

let length_extra =
  [| 0; 0; 0; 0; 0; 0; 0; 0; 1; 1; 1; 1; 2; 2; 2; 2; 3; 3; 3; 3; 4; 4; 4; 4; 5; 5; 5; 5; 0 |]

let dist_base =
  [| 1; 2; 3; 4; 5; 7; 9; 13; 17; 25; 33; 49; 65; 97; 129; 193; 257; 385; 513; 769;
     1025; 1537; 2049; 3073; 4097; 6145; 8193; 12289; 16385; 24577 |]

let dist_extra =
  [| 0; 0; 0; 0; 1; 1; 2; 2; 3; 3; 4; 4; 5; 5; 6; 6; 7; 7; 8; 8; 9; 9; 10; 10; 11; 11;
     12; 12; 13; 13 |]

let cl_order = [| 16; 17; 18; 0; 8; 7; 9; 6; 10; 5; 11; 4; 12; 3; 13; 2; 14; 1; 15 |]

let length_symbol len =
  let rec go i =
    if i = Array.length length_base - 1 then i
    else if len < length_base.(i + 1) then i
    else go (i + 1)
  in
  let i = go 0 in
  (257 + i, len - length_base.(i), length_extra.(i))

let dist_symbol dist =
  let rec go i =
    if i = Array.length dist_base - 1 then i
    else if dist < dist_base.(i + 1) then i
    else go (i + 1)
  in
  let i = go 0 in
  (i, dist - dist_base.(i), dist_extra.(i))

let fixed_litlen_lengths =
  Array.init 288 (fun i ->
      if i < 144 then 8 else if i < 256 then 9 else if i < 280 then 7 else 8)

let fixed_dist_lengths = Array.make 32 5

(* ---------- compression ---------- *)

let write_tokens w tokens ~litlen_codes ~litlen_lens ~dist_codes ~dist_lens =
  List.iter
    (fun tok ->
      match tok with
      | Lz77.Literal c ->
          let sym = Char.code c in
          Bitio.Writer.huffman_code w ~code:litlen_codes.(sym) ~len:litlen_lens.(sym)
      | Lz77.Match { length; distance } ->
          let sym, extra, ebits = length_symbol length in
          Bitio.Writer.huffman_code w ~code:litlen_codes.(sym) ~len:litlen_lens.(sym);
          if ebits > 0 then Bitio.Writer.bits w extra ebits;
          let dsym, dextra, debits = dist_symbol distance in
          Bitio.Writer.huffman_code w ~code:dist_codes.(dsym) ~len:dist_lens.(dsym);
          if debits > 0 then Bitio.Writer.bits w dextra debits)
    tokens;
  Bitio.Writer.huffman_code w ~code:litlen_codes.(256) ~len:litlen_lens.(256)

let compress_stored s =
  let w = Bitio.Writer.create () in
  let n = String.length s in
  let max_block = 65535 in
  let blocks = max 1 ((n + max_block - 1) / max_block) in
  for b = 0 to blocks - 1 do
    let start = b * max_block in
    let len = min max_block (n - start) in
    Bitio.Writer.bits w (if b = blocks - 1 then 1 else 0) 1;
    Bitio.Writer.bits w 0 2;
    Bitio.Writer.align_byte w;
    Bitio.Writer.bits w len 16;
    Bitio.Writer.bits w (lnot len land 0xFFFF) 16;
    Bitio.Writer.string w (String.sub s start len)
  done;
  Bitio.Writer.contents w

let compress_fixed tokens =
  let w = Bitio.Writer.create () in
  Bitio.Writer.bits w 1 1;
  Bitio.Writer.bits w 1 2;
  let litlen_codes = Huffman.canonical_codes fixed_litlen_lengths in
  let dist_codes = Huffman.canonical_codes fixed_dist_lengths in
  write_tokens w tokens ~litlen_codes ~litlen_lens:fixed_litlen_lengths ~dist_codes
    ~dist_lens:fixed_dist_lengths;
  Bitio.Writer.contents w

(* run-length encode the combined litlen+dist length array with the
   16/17/18 code-length alphabet *)
let rle_code_lengths lens =
  let out = ref [] in
  let n = Array.length lens in
  let i = ref 0 in
  while !i < n do
    let v = lens.(!i) in
    let run_len =
      let j = ref !i in
      while !j < n && lens.(!j) = v do
        incr j
      done;
      !j - !i
    in
    if v = 0 && run_len >= 3 then begin
      let take = min run_len 138 in
      if take >= 11 then out := `Sym (18, take - 11, 7) :: !out
      else out := `Sym (17, take - 3, 3) :: !out;
      i := !i + take
    end
    else if v <> 0 && run_len >= 4 then begin
      (* emit the value once, then repeats of 3..6 *)
      out := `Sym (v, 0, 0) :: !out;
      let remaining = ref (run_len - 1) in
      while !remaining >= 3 do
        let take = min !remaining 6 in
        out := `Sym (16, take - 3, 2) :: !out;
        remaining := !remaining - take
      done;
      for _ = 1 to !remaining do
        out := `Sym (v, 0, 0) :: !out
      done;
      i := !i + run_len
    end
    else begin
      out := `Sym (v, 0, 0) :: !out;
      incr i
    end
  done;
  List.rev !out

let compress_dynamic tokens =
  let litlen_freqs = Array.make 288 0 in
  let dist_freqs = Array.make 30 0 in
  litlen_freqs.(256) <- 1;
  List.iter
    (fun tok ->
      match tok with
      | Lz77.Literal c -> litlen_freqs.(Char.code c) <- litlen_freqs.(Char.code c) + 1
      | Lz77.Match { length; distance } ->
          let sym, _, _ = length_symbol length in
          litlen_freqs.(sym) <- litlen_freqs.(sym) + 1;
          let dsym, _, _ = dist_symbol distance in
          dist_freqs.(dsym) <- dist_freqs.(dsym) + 1)
    tokens;
  if Array.for_all (fun f -> f = 0) dist_freqs then dist_freqs.(0) <- 1;
  let litlen_lens = Huffman.lengths ~max_len:15 litlen_freqs in
  let dist_lens = Huffman.lengths ~max_len:15 dist_freqs in
  let litlen_codes = Huffman.canonical_codes litlen_lens in
  let dist_codes = Huffman.canonical_codes dist_lens in
  let hlit =
    let rec go i = if i > 257 && litlen_lens.(i - 1) = 0 then go (i - 1) else i in
    go 288
  in
  let hdist =
    let rec go i = if i > 1 && dist_lens.(i - 1) = 0 then go (i - 1) else i in
    go 30
  in
  let combined = Array.append (Array.sub litlen_lens 0 hlit) (Array.sub dist_lens 0 hdist) in
  let rle = rle_code_lengths combined in
  let cl_freqs = Array.make 19 0 in
  List.iter (fun (`Sym (s, _, _)) -> cl_freqs.(s) <- cl_freqs.(s) + 1) rle;
  let cl_lens = Huffman.lengths ~max_len:7 cl_freqs in
  let cl_codes = Huffman.canonical_codes cl_lens in
  let hclen =
    let rec go i = if i > 4 && cl_lens.(cl_order.(i - 1)) = 0 then go (i - 1) else i in
    go 19
  in
  let w = Bitio.Writer.create () in
  Bitio.Writer.bits w 1 1;
  Bitio.Writer.bits w 2 2;
  Bitio.Writer.bits w (hlit - 257) 5;
  Bitio.Writer.bits w (hdist - 1) 5;
  Bitio.Writer.bits w (hclen - 4) 4;
  for i = 0 to hclen - 1 do
    Bitio.Writer.bits w cl_lens.(cl_order.(i)) 3
  done;
  List.iter
    (fun (`Sym (s, extra, ebits)) ->
      Bitio.Writer.huffman_code w ~code:cl_codes.(s) ~len:cl_lens.(s);
      if ebits > 0 then Bitio.Writer.bits w extra ebits)
    rle;
  write_tokens w tokens ~litlen_codes ~litlen_lens ~dist_codes ~dist_lens;
  Bitio.Writer.contents w

let compress ?(strategy = Dynamic) ?max_chain s =
  match strategy with
  | Stored -> compress_stored s
  | Fixed -> compress_fixed (Lz77.tokenize ?max_chain s)
  | Dynamic -> compress_dynamic (Lz77.tokenize ?max_chain s)

(* ---------- decompression ---------- *)

let inflate_block r out litlen_dec dist_dec =
  let continue_block = ref true in
  while !continue_block do
    let sym = Huffman.decode litlen_dec r in
    if sym < 256 then Buffer.add_char out (Char.chr sym)
    else if sym = 256 then continue_block := false
    else begin
      let i = sym - 257 in
      if i >= Array.length length_base then failwith "Deflate.decompress: bad length code";
      let length = length_base.(i) + Bitio.Reader.bits r length_extra.(i) in
      let dsym = Huffman.decode dist_dec r in
      if dsym >= Array.length dist_base then failwith "Deflate.decompress: bad distance code";
      let distance = dist_base.(dsym) + Bitio.Reader.bits r dist_extra.(dsym) in
      let start = Buffer.length out - distance in
      if start < 0 then failwith "Deflate.decompress: distance too far back";
      for k = 0 to length - 1 do
        Buffer.add_char out (Buffer.nth out (start + k))
      done
    end
  done

let read_dynamic_tables r =
  let hlit = Bitio.Reader.bits r 5 + 257 in
  let hdist = Bitio.Reader.bits r 5 + 1 in
  let hclen = Bitio.Reader.bits r 4 + 4 in
  let cl_lens = Array.make 19 0 in
  for i = 0 to hclen - 1 do
    cl_lens.(cl_order.(i)) <- Bitio.Reader.bits r 3
  done;
  let cl_dec = Huffman.decoder cl_lens in
  let combined = Array.make (hlit + hdist) 0 in
  let i = ref 0 in
  while !i < hlit + hdist do
    let s = Huffman.decode cl_dec r in
    if s < 16 then begin
      combined.(!i) <- s;
      incr i
    end
    else if s = 16 then begin
      if !i = 0 then failwith "Deflate.decompress: repeat with no previous length";
      let rep = 3 + Bitio.Reader.bits r 2 in
      let v = combined.(!i - 1) in
      for _ = 1 to rep do
        combined.(!i) <- v;
        incr i
      done
    end
    else if s = 17 then begin
      let rep = 3 + Bitio.Reader.bits r 3 in
      i := !i + rep
    end
    else begin
      let rep = 11 + Bitio.Reader.bits r 7 in
      i := !i + rep
    end
  done;
  let litlen_lens = Array.sub combined 0 hlit in
  let dist_lens = Array.sub combined hlit hdist in
  (Huffman.decoder litlen_lens, Huffman.decoder dist_lens)

let rec decompress s =
  try decompress_exn s with
  | Invalid_argument msg | Failure msg -> failwith ("Deflate.decompress: " ^ msg)
  | Bitio.Reader.Truncated -> failwith "Deflate.decompress: truncated stream"

and decompress_exn s =
  let r = Bitio.Reader.create s in
  let out = Buffer.create (String.length s * 3) in
  let final = ref false in
  while not !final do
    final := Bitio.Reader.bit r = 1;
    match Bitio.Reader.bits r 2 with
    | 0 ->
        Bitio.Reader.align_byte r;
        let len = Bitio.Reader.bits r 16 in
        let nlen = Bitio.Reader.bits r 16 in
        if len lxor nlen <> 0xFFFF then failwith "Deflate.decompress: stored length mismatch";
        Buffer.add_string out (Bitio.Reader.string r len)
    | 1 ->
        inflate_block r out
          (Huffman.decoder fixed_litlen_lengths)
          (Huffman.decoder fixed_dist_lengths)
    | 2 ->
        let litlen_dec, dist_dec = read_dynamic_tables r in
        inflate_block r out litlen_dec dist_dec
    | _ -> failwith "Deflate.decompress: reserved block type"
  done;
  Buffer.contents out
