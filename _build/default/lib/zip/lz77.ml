type token = Literal of char | Match of { length : int; distance : int }

let window_size = 32768
let min_match = 3
let max_match = 258
let hash_bits = 15

let hash s i =
  (* three-byte rolling hash *)
  let a = Char.code s.[i] and b = Char.code s.[i + 1] and c = Char.code s.[i + 2] in
  ((a lsl 10) lxor (b lsl 5) lxor c) land ((1 lsl hash_bits) - 1)

let tokenize ?(max_chain = 128) s =
  let n = String.length s in
  let head = Array.make (1 lsl hash_bits) (-1) in
  let prev = Array.make (max n 1) (-1) in
  let tokens = ref [] in
  let match_len i j =
    (* longest common prefix of s[i..] and s[j..], capped *)
    let limit = min max_match (n - j) in
    let l = ref 0 in
    while !l < limit && s.[i + !l] = s.[j + !l] do
      incr l
    done;
    !l
  in
  let insert i =
    if i + min_match <= n then begin
      let h = hash s i in
      prev.(i) <- head.(h);
      head.(h) <- i
    end
  in
  let i = ref 0 in
  while !i < n do
    let best_len = ref 0 and best_dist = ref 0 in
    if !i + min_match <= n then begin
      let h = hash s !i in
      let candidate = ref head.(h) in
      let chain = ref 0 in
      while !candidate >= 0 && !chain < max_chain && !i - !candidate <= window_size do
        let l = match_len !candidate !i in
        if l > !best_len then begin
          best_len := l;
          best_dist := !i - !candidate
        end;
        candidate := prev.(!candidate);
        incr chain
      done
    end;
    if !best_len >= min_match then begin
      tokens := Match { length = !best_len; distance = !best_dist } :: !tokens;
      (* index every covered position so later matches can reach them *)
      for j = !i to min (n - 1) (!i + !best_len - 1) do
        insert j
      done;
      i := !i + !best_len
    end
    else begin
      tokens := Literal s.[!i] :: !tokens;
      insert !i;
      incr i
    end
  done;
  List.rev !tokens

let reconstruct tokens =
  let buf = Buffer.create 1024 in
  List.iter
    (function
      | Literal c -> Buffer.add_char buf c
      | Match { length; distance } ->
          let start = Buffer.length buf - distance in
          if start < 0 then invalid_arg "Lz77.reconstruct: distance before start";
          for k = 0 to length - 1 do
            Buffer.add_char buf (Buffer.nth buf (start + k))
          done)
    tokens;
  Buffer.contents buf
