(** Minimal POSIX ustar archive writer/reader (regular files only) — just
    enough to reproduce the paper's "GZIP-compressed TAR archive"
    measurement for Figure 6. *)

type entry = { name : string; contents : string }

(** [archive entries] is a complete tar stream (512-byte records, two
    zero-record trailer).
    @raise Invalid_argument if a name exceeds 100 bytes. *)
val archive : entry list -> string

(** [entries s] parses back the regular-file entries of an archive
    produced by [archive].
    @raise Failure on malformed headers. *)
val entries : string -> entry list
