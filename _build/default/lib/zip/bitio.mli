(** Bit-level I/O in DEFLATE's conventions: bits are packed into bytes
    starting from the least-significant bit. *)

module Writer : sig
  type t

  val create : unit -> t

  (** [bits w v n] writes the low [n] bits of [v], LSB first. *)
  val bits : t -> int -> int -> unit

  (** [huffman_code w ~code ~len] writes a Huffman code (canonical codes
      are emitted most-significant bit first, per the DEFLATE spec). *)
  val huffman_code : t -> code:int -> len:int -> unit

  (** [align_byte w] pads with zero bits to the next byte boundary. *)
  val align_byte : t -> unit

  (** [byte w b] writes one aligned byte (caller must be aligned). *)
  val byte : t -> int -> unit

  (** [string w s] writes an aligned string. *)
  val string : t -> string -> unit

  (** [contents w] finalizes (zero-padding the last byte) and returns the
      bytes written so far. *)
  val contents : t -> string
end

module Reader : sig
  type t

  exception Truncated

  val create : string -> t

  (** [bits r n] reads [n] bits, LSB first.  @raise Truncated at EOF. *)
  val bits : t -> int -> int

  (** [bit r] reads a single bit. *)
  val bit : t -> int

  (** [align_byte r] skips to the next byte boundary. *)
  val align_byte : t -> unit

  (** [byte r] reads one aligned byte. *)
  val byte : t -> int

  (** [string r n] reads [n] aligned bytes. *)
  val string : t -> int -> string

  (** [pos_bytes r] is the current byte offset (rounded up). *)
  val pos_bytes : t -> int

  (** [at_end r] is true when all input is consumed. *)
  val at_end : t -> bool
end
