type entry = { name : string; contents : string }

let block = 512

let octal ~width v = Printf.sprintf "%0*o\x00" (width - 1) v

let pad_to_block s =
  let r = String.length s mod block in
  if r = 0 then s else s ^ String.make (block - r) '\x00'

let header name size =
  if String.length name > 100 then invalid_arg "Tar.archive: name too long";
  let buf = Bytes.make block '\x00' in
  let put pos s = Bytes.blit_string s 0 buf pos (String.length s) in
  put 0 name;
  put 100 (octal ~width:8 0o644); (* mode *)
  put 108 (octal ~width:8 0); (* uid *)
  put 116 (octal ~width:8 0); (* gid *)
  put 124 (Printf.sprintf "%011o\x00" size);
  put 136 (Printf.sprintf "%011o\x00" 0); (* mtime *)
  put 148 "        "; (* checksum placeholder: spaces *)
  Bytes.set buf 156 '0'; (* regular file *)
  put 257 "ustar\x00";
  put 263 "00";
  let checksum = ref 0 in
  Bytes.iter (fun c -> checksum := !checksum + Char.code c) buf;
  put 148 (Printf.sprintf "%06o\x00 " !checksum);
  Bytes.to_string buf

let archive entries =
  let buf = Buffer.create 4096 in
  List.iter
    (fun { name; contents } ->
      Buffer.add_string buf (header name (String.length contents));
      Buffer.add_string buf (pad_to_block contents))
    entries;
  Buffer.add_string buf (String.make (2 * block) '\x00');
  Buffer.contents buf

let entries s =
  let out = ref [] in
  let pos = ref 0 in
  let len = String.length s in
  let is_zero_block p =
    let rec go i = i = block || (s.[p + i] = '\x00' && go (i + 1)) in
    go 0
  in
  let continue_scan = ref true in
  while !continue_scan do
    if !pos + block > len || is_zero_block !pos then continue_scan := false
    else begin
      let name =
        let raw = String.sub s !pos 100 in
        match String.index_opt raw '\x00' with
        | Some i -> String.sub raw 0 i
        | None -> raw
      in
      let size =
        let raw = String.trim (String.sub s (!pos + 124) 11) in
        try int_of_string ("0o" ^ raw) with _ -> failwith "Tar.entries: bad size field"
      in
      let data_start = !pos + block in
      if data_start + size > len then failwith "Tar.entries: truncated";
      out := { name; contents = String.sub s data_start size } :: !out;
      let data_blocks = (size + block - 1) / block in
      pos := data_start + (data_blocks * block)
    end
  done;
  List.rev !out
