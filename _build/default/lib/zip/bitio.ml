module Writer = struct
  type t = { buf : Buffer.t; mutable acc : int; mutable nbits : int }

  let create () = { buf = Buffer.create 1024; acc = 0; nbits = 0 }

  let flush_full_bytes w =
    while w.nbits >= 8 do
      Buffer.add_char w.buf (Char.chr (w.acc land 0xFF));
      w.acc <- w.acc lsr 8;
      w.nbits <- w.nbits - 8
    done

  let bits w v n =
    if n < 0 || n > 24 then invalid_arg "Bitio.Writer.bits: width out of range";
    w.acc <- w.acc lor ((v land ((1 lsl n) - 1)) lsl w.nbits);
    w.nbits <- w.nbits + n;
    flush_full_bytes w

  let huffman_code w ~code ~len =
    (* canonical codes are defined MSB-first; reverse into LSB-first *)
    let rev = ref 0 in
    for i = 0 to len - 1 do
      if (code lsr i) land 1 = 1 then rev := !rev lor (1 lsl (len - 1 - i))
    done;
    bits w !rev len

  (* flush_full_bytes keeps nbits < 8, so padding to the boundary is
     always fewer than 8 bits *)
  let align_byte w = if w.nbits > 0 then bits w 0 (8 - w.nbits)

  let byte w b =
    if w.nbits <> 0 then invalid_arg "Bitio.Writer.byte: not aligned";
    Buffer.add_char w.buf (Char.chr (b land 0xFF))

  let string w s =
    if w.nbits <> 0 then invalid_arg "Bitio.Writer.string: not aligned";
    Buffer.add_string w.buf s

  let contents w =
    if w.nbits > 0 then begin
      Buffer.add_char w.buf (Char.chr (w.acc land 0xFF));
      w.acc <- 0;
      w.nbits <- 0
    end;
    Buffer.contents w.buf
end

module Reader = struct
  type t = { src : string; mutable pos : int; mutable acc : int; mutable nbits : int }

  exception Truncated

  let create src = { src; pos = 0; acc = 0; nbits = 0 }

  let refill r =
    if r.pos >= String.length r.src then raise Truncated;
    r.acc <- r.acc lor (Char.code r.src.[r.pos] lsl r.nbits);
    r.pos <- r.pos + 1;
    r.nbits <- r.nbits + 8

  let bits r n =
    if n < 0 || n > 24 then invalid_arg "Bitio.Reader.bits: width out of range";
    while r.nbits < n do
      refill r
    done;
    let v = r.acc land ((1 lsl n) - 1) in
    r.acc <- r.acc lsr n;
    r.nbits <- r.nbits - n;
    v

  let bit r = bits r 1

  let align_byte r =
    let drop = r.nbits mod 8 in
    r.acc <- r.acc lsr drop;
    r.nbits <- r.nbits - drop

  let byte r =
    align_byte r;
    bits r 8

  let string r n =
    align_byte r;
    String.init n (fun _ -> Char.chr (byte r))

  let pos_bytes r = r.pos - (r.nbits / 8)
  let at_end r = r.nbits = 0 && r.pos >= String.length r.src
end
