lib/zip/lz77.ml: Array Buffer Char List String
