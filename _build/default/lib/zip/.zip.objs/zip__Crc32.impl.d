lib/zip/crc32.ml: Array Char Int32 Lazy String
