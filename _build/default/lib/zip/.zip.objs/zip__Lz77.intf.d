lib/zip/lz77.mli:
