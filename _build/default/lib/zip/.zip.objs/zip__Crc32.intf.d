lib/zip/crc32.mli:
