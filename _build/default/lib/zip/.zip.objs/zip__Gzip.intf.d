lib/zip/gzip.mli: Deflate
