lib/zip/gzip.ml: Char Crc32 Deflate Int32 String
