lib/zip/deflate.mli:
