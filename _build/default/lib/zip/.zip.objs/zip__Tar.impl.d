lib/zip/tar.ml: Buffer Bytes Char List Printf String
