lib/zip/bitio.mli:
