lib/zip/deflate.ml: Array Bitio Buffer Char Huffman List Lz77 String
