lib/zip/huffman.mli: Bitio
