lib/zip/tar.mli:
