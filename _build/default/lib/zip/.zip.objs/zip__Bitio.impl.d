lib/zip/bitio.ml: Buffer Char String
