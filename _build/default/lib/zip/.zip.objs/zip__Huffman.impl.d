lib/zip/huffman.ml: Array Bitio List
