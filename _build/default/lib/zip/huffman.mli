(** Canonical Huffman coding with a length limit, as DEFLATE requires. *)

(** [lengths ~max_len freqs] assigns a code length to every symbol with a
    non-zero frequency, none exceeding [max_len], satisfying Kraft's
    inequality.  If only one symbol is used it still gets length 1 (DEFLATE
    requires a decodable, non-degenerate code). *)
val lengths : max_len:int -> int array -> int array

(** [canonical_codes lengths] assigns the canonical code values (packed
    MSB-first, as in the DEFLATE specification).
    @raise Invalid_argument if the lengths oversubscribe the code space. *)
val canonical_codes : int array -> int array

(** A bit-serial decoder for a canonical code. *)
type decoder

(** [decoder lengths] prepares decoding tables.
    @raise Invalid_argument if the lengths oversubscribe the code space. *)
val decoder : int array -> decoder

(** [decode d reader] reads one symbol.
    @raise Failure on an invalid code. *)
val decode : decoder -> Bitio.Reader.t -> int
