open Gf2

type t = {
  h : Matrix.t;
  (* adjacency in both directions, precomputed from the sparse H *)
  check_neighbors : int array array; (* per check row: variable columns *)
  var_neighbors : int array array; (* per variable column: check rows *)
  systematic : (Hamming.Code.t * int array) Lazy.t;
}

(* Select a maximal independent subset of H's rows: dependent parity
   checks are redundant for the code definition (but still useful for
   iterative decoding, so the full H is kept for that). *)
let row_basis h =
  let basis : (int, Bitvec.t) Hashtbl.t = Hashtbl.create 64 in
  let kept = ref [] in
  for row = 0 to Matrix.rows h - 1 do
    let v = Bitvec.copy (Matrix.row h row) in
    (* reduce against the basis until the leading bit is fresh or v = 0 *)
    let rec reduce () =
      match Bitvec.to_list v with
      | [] -> None
      | pivot :: _ -> (
          match Hashtbl.find_opt basis pivot with
          | Some b ->
              Bitvec.xor_in_place v b;
              reduce ()
          | None -> Some pivot)
    in
    match reduce () with
    | None -> ()
    | Some pivot ->
        Hashtbl.add basis pivot v;
        kept := row :: !kept
  done;
  Matrix.of_rows (Array.of_list (List.rev_map (fun row -> Matrix.row h row) !kept))

let create h =
  let r = Matrix.rows h and n = Matrix.cols h in
  let check_neighbors =
    Array.init r (fun row -> Array.of_list (Bitvec.to_list (Matrix.row h row)))
  in
  let var_neighbors =
    let acc = Array.make n [] in
    for row = r - 1 downto 0 do
      Array.iter (fun c -> acc.(c) <- row :: acc.(c)) check_neighbors.(row)
    done;
    Array.map Array.of_list acc
  in
  let systematic = lazy (Hamming.Code.of_check_matrix (row_basis h)) in
  (* force early so degenerate H fails at create *)
  ignore (Lazy.force systematic);
  { h; check_neighbors; var_neighbors; systematic }

(* Gallager's regular ensemble: stack wc permuted copies of a band matrix
   with wr ones per row; repair duplicate edges by local resampling. *)
let gallager ~n ~wc ~wr ~seed =
  if n <= 0 || wc < 2 || wr < 2 then invalid_arg "Ldpc.gallager: bad parameters";
  if n mod wr <> 0 then invalid_arg "Ldpc.gallager: wr must divide n";
  let rows_per_band = n / wr in
  let r = wc * rows_per_band in
  let st = Random.State.make [| seed; n; wc; wr |] in
  let build () =
    let h = Matrix.create ~rows:r ~cols:n in
    for band = 0 to wc - 1 do
      (* random permutation of columns for this band *)
      let perm = Array.init n Fun.id in
      for i = n - 1 downto 1 do
        let j = Random.State.int st (i + 1) in
        let tmp = perm.(i) in
        perm.(i) <- perm.(j);
        perm.(j) <- tmp
      done;
      for row = 0 to rows_per_band - 1 do
        for slot = 0 to wr - 1 do
          Matrix.set h ((band * rows_per_band) + row) perm.((row * wr) + slot) true
        done
      done
    done;
    (* the ensemble is rank-deficient by construction (each band's rows
       sum to the all-ones vector); create keeps a row basis internally *)
    ignore r;
    create h
  in
  build ()

let n t = Matrix.cols t.h

let k t =
  let code, _ = Lazy.force t.systematic in
  Hamming.Code.data_len code
let check_matrix t = t.h
let systematic t = Lazy.force t.systematic

let encode t data =
  let code, perm = Lazy.force t.systematic in
  let sys_word = Hamming.Code.encode code data in
  (* scatter systematic positions back to H's column order *)
  let out = Bitvec.create (n t) in
  Array.iteri (fun i col -> if Bitvec.get sys_word i then Bitvec.set out col true) perm;
  out

let data_of t word =
  let code, perm = Lazy.force t.systematic in
  Bitvec.init (Hamming.Code.data_len code) (fun i -> Bitvec.get word perm.(i))

let is_valid t word = Bitvec.is_zero (Matrix.mul_vec t.h word)

(* ---------- Gallager bit flipping ---------- *)

let decode_bitflip ?(max_iters = 50) t word =
  let nn = n t in
  let w = Bitvec.copy word in
  let rec iterate iters =
    let syndrome = Matrix.mul_vec t.h w in
    if Bitvec.is_zero syndrome then Some w
    else if iters = 0 then None
    else begin
      (* flip the bits participating in the most unsatisfied checks (the
         stable "maximum votes" variant of Gallager's algorithm) *)
      let votes = Array.make nn 0 in
      Bitvec.iter_set
        (fun row -> Array.iter (fun v -> votes.(v) <- votes.(v) + 1) t.check_neighbors.(row))
        syndrome;
      let max_votes = Array.fold_left max 0 votes in
      if max_votes = 0 then None
      else begin
        for v = 0 to nn - 1 do
          if votes.(v) = max_votes then Bitvec.flip w v
        done;
        iterate (iters - 1)
      end
    end
  in
  iterate max_iters

(* ---------- min-sum belief propagation ---------- *)

let decode_minsum ?(max_iters = 50) ~p t word =
  if p <= 0.0 || p >= 0.5 then invalid_arg "Ldpc.decode_minsum: need 0 < p < 0.5";
  let nn = n t in
  let r = Matrix.rows t.h in
  let channel_llr = log ((1.0 -. p) /. p) in
  (* messages indexed by (check, position-within-check) *)
  let check_to_var = Array.map (fun nbrs -> Array.make (Array.length nbrs) 0.0) t.check_neighbors in
  let llr v = if Bitvec.get word v then -.channel_llr else channel_llr in
  let posterior = Array.init nn llr in
  let hard = Bitvec.create nn in
  let rec iterate iters =
    (* hard decision and convergence test *)
    for v = 0 to nn - 1 do
      Bitvec.set hard v (posterior.(v) < 0.0)
    done;
    if is_valid t hard then Some (Bitvec.copy hard)
    else if iters = 0 then None
    else begin
      (* check update (min-sum): outgoing = product of signs * min |.|
         over the other incoming variable messages *)
      for c = 0 to r - 1 do
        let nbrs = t.check_neighbors.(c) in
        let deg = Array.length nbrs in
        (* incoming var->check = posterior - previous check->var *)
        let incoming = Array.init deg (fun i -> posterior.(nbrs.(i)) -. check_to_var.(c).(i)) in
        for i = 0 to deg - 1 do
          let sign = ref 1.0 and magnitude = ref infinity in
          for j = 0 to deg - 1 do
            if j <> i then begin
              if incoming.(j) < 0.0 then sign := -. !sign;
              let a = Float.abs incoming.(j) in
              if a < !magnitude then magnitude := a
            end
          done;
          (* normalized min-sum damping factor 0.75 *)
          check_to_var.(c).(i) <- 0.75 *. !sign *. !magnitude
        done
      done;
      (* variable update: posterior = channel + sum of check messages *)
      Array.fill posterior 0 nn 0.0;
      for v = 0 to nn - 1 do
        posterior.(v) <- llr v
      done;
      for c = 0 to r - 1 do
        Array.iteri
          (fun i v -> posterior.(v) <- posterior.(v) +. check_to_var.(c).(i))
          t.check_neighbors.(c)
      done;
      iterate (iters - 1)
    end
  in
  iterate max_iters
