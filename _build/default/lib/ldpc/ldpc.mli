(** Low-density parity-check codes (Gallager 1962) — the third classical
    block-code family the paper's introduction cites alongside Hamming and
    Reed-Solomon.

    A code is defined by a sparse parity-check matrix [H]; encoding goes
    through the systematic form derived by {!Hamming.Code.of_check_matrix},
    and decoding is iterative: hard-decision bit flipping, or min-sum
    belief propagation over channel log-likelihood ratios. *)

type t

(** [create h] wraps a full-row-rank sparse parity-check matrix.
    @raise Invalid_argument if [h] lacks full row rank. *)
val create : Gf2.Matrix.t -> t

(** [gallager ~n ~wc ~wr ~seed] builds a regular pseudo-random Gallager
    ensemble matrix: [n] columns of weight [wc], rows of weight [wr]
    (requires [wr] divides [n]); the derived code has rate at least
    [1 - n·wc/(wr·n)].  Row degeneracies are repaired by resampling, and
    the construction retries seeds until [H] has full row rank.
    @raise Invalid_argument on inconsistent parameters. *)
val gallager : n:int -> wc:int -> wr:int -> seed:int -> t

(** [n t] is the block length; [k t] the data length (n - rank H). *)
val n : t -> int

val k : t -> int

(** [check_matrix t] is [H]. *)
val check_matrix : t -> Gf2.Matrix.t

(** [systematic t] is the equivalent systematic code and the position
    permutation (see {!Hamming.Code.of_check_matrix}). *)
val systematic : t -> Hamming.Code.t * int array

(** [encode t data] produces a codeword of [H] (in [H]'s own column
    order).  @raise Invalid_argument on wrong data length. *)
val encode : t -> Gf2.Bitvec.t -> Gf2.Bitvec.t

(** [data_of t codeword] extracts the data bits of a codeword. *)
val data_of : t -> Gf2.Bitvec.t -> Gf2.Bitvec.t

(** [is_valid t word] holds iff all parity checks are satisfied. *)
val is_valid : t -> Gf2.Bitvec.t -> bool

(** [decode_bitflip ?max_iters t word] runs Gallager's hard-decision
    bit-flipping algorithm; [Some codeword] on convergence. *)
val decode_bitflip : ?max_iters:int -> t -> Gf2.Bitvec.t -> Gf2.Bitvec.t option

(** [decode_minsum ?max_iters ~p t word] runs min-sum belief propagation
    with channel LLRs for a binary symmetric channel of error
    probability [p]; [Some codeword] on convergence. *)
val decode_minsum :
  ?max_iters:int -> p:float -> t -> Gf2.Bitvec.t -> Gf2.Bitvec.t option
