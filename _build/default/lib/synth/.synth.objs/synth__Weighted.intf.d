lib/synth/weighted.mli: Hamming
