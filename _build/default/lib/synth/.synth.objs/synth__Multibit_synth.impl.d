lib/synth/multibit_synth.ml: Cegis Hamming Optimize
