lib/synth/cegis.mli: Hamming Smtlite
