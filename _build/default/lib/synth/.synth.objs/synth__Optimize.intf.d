lib/synth/optimize.mli: Cegis Hamming Smtlite
