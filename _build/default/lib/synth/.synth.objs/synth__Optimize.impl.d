lib/synth/optimize.ml: Cegis Hamming List Smtlite
