lib/synth/verify.ml: Gf2 Hamming Option Spec Unix
