lib/synth/multibit_synth.mli: Cegis Hamming
