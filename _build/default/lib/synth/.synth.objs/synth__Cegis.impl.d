lib/synth/cegis.ml: Array Bitvec Card Ctx Expr Fresh Gf2 Hamming List Matrix Sat Smtlite Unix
