lib/synth/verify.mli: Gf2 Hamming Spec
