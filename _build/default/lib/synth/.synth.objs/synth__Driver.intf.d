lib/synth/driver.mli: Cegis Hamming Optimize Spec Stdlib Weighted
