lib/synth/weighted.ml: Array Bv Card Cegis Ctx Expr Float Fresh Hamming List Smtlite Unix
