lib/synth/driver.ml: Ast Cegis Float Hamming Hashtbl List Optimize Option Printf Smtlite Spec Weighted
