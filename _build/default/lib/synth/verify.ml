type method_ = Combinatorial | Sat

type report = { holds : bool; witness : Gf2.Bitvec.t option; elapsed : float }

let timed f =
  let start = Unix.gettimeofday () in
  let holds, witness = f () in
  { holds; witness; elapsed = Unix.gettimeofday () -. start }

let counterexample method_ ?deadline code m =
  match method_ with
  | Combinatorial -> Hamming.Distance.counterexample code m
  | Sat -> Hamming.Distance.sat_counterexample ?deadline code m

let min_distance_at_least ?(method_ = Sat) ?timeout code m =
  let deadline = Option.map (fun t -> Unix.gettimeofday () +. t) timeout in
  timed (fun () ->
      match counterexample method_ ?deadline code m with
      | None -> (true, None)
      | Some d -> (false, Some d))

let min_distance_exactly ?(method_ = Sat) ?timeout code m =
  let deadline = Option.map (fun t -> Unix.gettimeofday () +. t) timeout in
  timed (fun () ->
      match counterexample method_ ?deadline code m with
      | Some d -> (false, Some d)
      | None -> (
          (* bound holds at m; it must fail at m+1 for equality *)
          match counterexample method_ ?deadline code (m + 1) with
          | Some _ -> (true, None)
          | None -> (false, None)))

let property ?timeout env prop =
  ignore timeout;
  timed (fun () -> (Spec.Eval.eval_prop env prop, None))
