open Gf2
open Smtlite

type cex_mode = Data_word | Whole_candidate
type verifier_mode = Combinatorial | Sat

type stats = {
  iterations : int;
  verifier_calls : int;
  elapsed : float;
  syn_conflicts : int;
  ver_conflicts : int;
}

type outcome =
  | Synthesized of Hamming.Code.t * stats
  | Unsat_config of stats
  | Timed_out of stats

type problem = {
  data_len : int;
  check_len : int;
  min_distance : int;
  extra : (entry:(row:int -> col:int -> Smtlite.Expr.t) -> Smtlite.Expr.t) list;
}

(* Symbolic coefficient-matrix bits for one candidate generator.  Fresh
   variables per call so repeated syntheses don't interfere. *)
let make_matrix_vars ~data_len ~check_len =
  Array.init data_len (fun _ -> Array.of_list (Fresh.make_n check_len))

let candidate_of_model ctx vars ~data_len ~check_len =
  let p =
    Matrix.init ~rows:data_len ~cols:check_len (fun i j -> Ctx.model_bool ctx vars.(i).(j))
  in
  Hamming.Code.make ~p

(* The counterexample constraint: for the concrete data word [d], the
   symbolic codeword must have weight >= md.  The data part contributes
   [popcount d] ones; check bit j is the parity of column j restricted to
   the set bits of d. *)
let data_word_constraint ~encoding vars ~check_len ~min_distance d =
  let data_weight = Bitvec.popcount d in
  let deficit = min_distance - data_weight in
  if deficit <= 0 then Expr.true_
  else begin
    let checks =
      List.init check_len (fun j ->
          let selected = ref [] in
          Bitvec.iter_set (fun i -> selected := vars.(i).(j) :: !selected) d;
          Expr.xor_l !selected)
    in
    Card.at_least encoding checks deficit
  end

(* The paper's makeCex: forbid exactly this candidate matrix. *)
let block_candidate_constraint vars code =
  let p = Hamming.Code.coefficient_matrix code in
  let diffs = ref [] in
  Array.iteri
    (fun i row ->
      Array.iteri
        (fun j v ->
          let bit = Matrix.get p i j in
          diffs := (if bit then Expr.not_ v else v) :: !diffs)
        row)
    vars;
  Expr.or_ !diffs

let synthesize ?(timeout = 120.0) ?(cex_mode = Data_word) ?(verifier = Combinatorial)
    ?(encoding = Card.Sequential) problem =
  let { data_len; check_len; min_distance; extra } = problem in
  if data_len < 1 || check_len < 1 then
    invalid_arg "Cegis.synthesize: need at least one data and one check bit";
  let start = Unix.gettimeofday () in
  let deadline = start +. timeout in
  let syn = Ctx.create () in
  let vars = make_matrix_vars ~data_len ~check_len in
  let entry ~row ~col = vars.(row).(col) in
  List.iter (fun build -> Ctx.assert_ syn (build ~entry)) extra;
  let iterations = ref 0 in
  let verifier_calls = ref 0 in
  let mk_stats () =
    {
      iterations = !iterations;
      verifier_calls = !verifier_calls;
      elapsed = Unix.gettimeofday () -. start;
      syn_conflicts = (Ctx.stats syn).Sat.Solver.conflicts;
      ver_conflicts = 0;
    }
  in
  let verify code =
    incr verifier_calls;
    match verifier with
    | Combinatorial -> Hamming.Distance.counterexample code min_distance
    | Sat -> Hamming.Distance.sat_counterexample ~deadline code min_distance
  in
  let rec loop () =
    if Unix.gettimeofday () > deadline then Timed_out (mk_stats ())
    else begin
      incr iterations;
      match Ctx.check ~deadline syn with
      | Ctx.Unsat -> Unsat_config (mk_stats ())
      | Ctx.Sat -> (
          let code = candidate_of_model syn vars ~data_len ~check_len in
          match verify code with
          | None -> Synthesized (code, mk_stats ())
          | Some cex ->
              (match cex_mode with
              | Data_word ->
                  Ctx.assert_ syn
                    (data_word_constraint ~encoding vars ~check_len ~min_distance cex)
              | Whole_candidate ->
                  Ctx.assert_ syn (block_candidate_constraint vars code));
              loop ())
    end
  in
  try loop () with Ctx.Timeout -> Timed_out (mk_stats ())
