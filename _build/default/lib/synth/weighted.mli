(** Weighted bit-to-generator mapping synthesis (paper §4.3).

    Given per-bit criticality weights for an [L]-bit word and two generator
    shapes (check length and minimum distance each), assign every bit to
    one of the two generators so as to minimize the paper's objective

    [sum_w = Σ_j w_j · C(len_d(map j) + len_c(map j), md(map j)) · p^{md(map j)}]

    where [len_d(i)] is the number of bits mapped to generator [i].  The
    real-valued objective is scaled to integers and encoded exactly; the
    optimization walks the bound downward from [initial_bound] (the paper
    starts at 1000) until UNSAT proves optimality or the timeout hits. *)

type gen_shape = { check_len : int; min_distance : int }

type result = {
  mapping : int array;  (** [mapping.(j)] is 0 or 1 *)
  sum_w : float;  (** achieved objective value *)
  counts : int * int;  (** bits mapped to generator 0 / 1 *)
  codes : Hamming.Code.t * Hamming.Code.t;
      (** generators synthesized for the optimal shapes *)
  iterations : int;  (** solver queries, including the generator CEGIS *)
  elapsed : float;
  optimal : bool;  (** [true] if UNSAT proved no better mapping exists *)
}

(** [optimize ?timeout ?p ?initial_bound ~weights g0 g1] runs the search.
    [p] is the channel bit-error probability (default 0.1, as in the
    paper); weights are non-negative integers.
    @raise Invalid_argument on empty weights or non-positive shapes. *)
val optimize :
  ?timeout:float ->
  ?p:float ->
  ?initial_bound:float ->
  weights:int array ->
  gen_shape ->
  gen_shape ->
  result option

(** [sum_w_of ~p ~weights ~mapping g0 g1] evaluates the objective for a
    concrete mapping (exposed for tests and reporting). *)
val sum_w_of :
  p:float -> weights:int array -> mapping:int array -> gen_shape -> gen_shape -> float
