type check_result = {
  code : Hamming.Code.t;
  check_len : int;
  stats : Cegis.stats;
}

let add_stats (a : Cegis.stats) (b : Cegis.stats) : Cegis.stats =
  {
    iterations = a.iterations + b.iterations;
    verifier_calls = a.verifier_calls + b.verifier_calls;
    elapsed = a.elapsed +. b.elapsed;
    syn_conflicts = a.syn_conflicts + b.syn_conflicts;
    ver_conflicts = a.ver_conflicts + b.ver_conflicts;
  }

let zero_stats : Cegis.stats =
  { iterations = 0; verifier_calls = 0; elapsed = 0.0; syn_conflicts = 0; ver_conflicts = 0 }

let minimize_check_len ?timeout ?cex_mode ?verifier ?encoding ~data_len ~md ~check_lo
    ~check_hi () =
  let rec go c acc =
    if c > check_hi then None
    else
      let problem =
        { Cegis.data_len; check_len = c; min_distance = md; extra = [] }
      in
      match Cegis.synthesize ?timeout ?cex_mode ?verifier ?encoding problem with
      | Cegis.Synthesized (code, stats) ->
          Some { code; check_len = c; stats = add_stats acc stats }
      | Cegis.Unsat_config stats -> go (c + 1) (add_stats acc stats)
      | Cegis.Timed_out stats ->
          ignore (add_stats acc stats);
          None
  in
  go check_lo zero_stats

type setbits_step = {
  bound : int;
  achieved : int;
  generator : Hamming.Code.t;
  step_stats : Cegis.stats;
}

let minimize_set_bits ?timeout ?cex_mode ?verifier ?encoding ~data_len ~check_len ~md
    ~start_bound ~stop_bound () =
  let setbit_constraint bound ~entry =
    let bits = ref [] in
    for i = 0 to data_len - 1 do
      for j = 0 to check_len - 1 do
        bits := entry ~row:i ~col:j :: !bits
      done
    done;
    Smtlite.Card.at_most Smtlite.Card.Sequential !bits bound
  in
  let rec go bound acc =
    if bound < stop_bound then List.rev acc
    else
      let problem =
        {
          Cegis.data_len;
          check_len;
          min_distance = md;
          extra = [ setbit_constraint bound ];
        }
      in
      match Cegis.synthesize ?timeout ?cex_mode ?verifier ?encoding problem with
      | Cegis.Synthesized (code, stats) ->
          let achieved = Hamming.Code.set_bits code in
          let step = { bound; achieved; generator = code; step_stats = stats } in
          (* tighten strictly below what was achieved *)
          go (achieved - 1) (step :: acc)
      | Cegis.Unsat_config _ | Cegis.Timed_out _ -> List.rev acc
  in
  go start_bound []
