(** Optimization drivers implementing the paper's [minimal]/[maximal]
    pseudo-properties (the outer loop of Algorithm 1). *)

(** Result of minimizing the number of check bits for a target minimum
    distance (the §4.2 / Table 1 experiment). *)
type check_result = {
  code : Hamming.Code.t;
  check_len : int;
  stats : Cegis.stats;  (** totals across all configurations tried *)
}

(** [minimize_check_len ?timeout ?cex_mode ?verifier ~data_len ~md
    ~check_lo ~check_hi ()] walks check lengths upward from [check_lo] and
    returns the first (hence minimal) synthesizable configuration, or
    [None] if every configuration up to [check_hi] is unsatisfiable or the
    timeout is exhausted. *)
val minimize_check_len :
  ?timeout:float ->
  ?cex_mode:Cegis.cex_mode ->
  ?verifier:Cegis.verifier_mode ->
  ?encoding:Smtlite.Card.encoding ->
  data_len:int ->
  md:int ->
  check_lo:int ->
  check_hi:int ->
  unit ->
  check_result option

(** One step of the §4.4 set-bit minimization walk. *)
type setbits_step = {
  bound : int;  (** the bound that was in force ([len_1 <= bound]) *)
  achieved : int;  (** set bits of the synthesized generator *)
  generator : Hamming.Code.t;
  step_stats : Cegis.stats;
}

(** [minimize_set_bits ?timeout ... ~data_len ~check_len ~md ~start_bound
    ~stop_bound ()] repeatedly synthesizes generators with a tightening
    bound on the number of coefficient set bits ([minimal(len_1)]),
    exactly as §4.4: every intermediate generator is returned, newest
    (smallest sum) last.  Stops on UNSAT, on reaching [stop_bound], or on
    timeout. *)
val minimize_set_bits :
  ?timeout:float ->
  ?cex_mode:Cegis.cex_mode ->
  ?verifier:Cegis.verifier_mode ->
  ?encoding:Smtlite.Card.encoding ->
  data_len:int ->
  check_len:int ->
  md:int ->
  start_bound:int ->
  stop_bound:int ->
  unit ->
  setbits_step list
