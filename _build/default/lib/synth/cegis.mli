(** The CEGIS synthesize–verify loop of Algorithm 1 for a fixed
    configuration (data length, check length, target minimum distance).

    The synthesizer solver holds symbolic coefficient-matrix bits plus all
    non-distance constraints and the accumulated counterexamples; the
    verifier checks each candidate's minimum distance and returns a witness
    data word on failure.  Witnesses are turned into new synthesizer
    constraints ("this data word must encode to weight >= md"), which
    generalizes the paper's whole-candidate [makeCex] blocking; the
    original blocking mode is available for the ablation benchmark. *)

type cex_mode =
  | Data_word
      (** learn "codeword of this data word must have weight >= md"
          (small, general counterexamples — §6 "future work" optimization) *)
  | Whole_candidate
      (** block only the exact candidate matrix (the paper's [makeCex]) *)

type verifier_mode =
  | Combinatorial  (** exact enumeration by ascending data weight *)
  | Sat  (** SAT-based verifier, reproducing the paper's methodology *)

type stats = {
  iterations : int;  (** synthesizer checkSat calls *)
  verifier_calls : int;
  elapsed : float;  (** seconds *)
  syn_conflicts : int;
  ver_conflicts : int;
}

type outcome =
  | Synthesized of Hamming.Code.t * stats
  | Unsat_config of stats  (** no coefficient matrix satisfies the spec *)
  | Timed_out of stats

(** Extra synthesizer-side constraints over the symbolic coefficient
    matrix: [entry ~row ~col] is the P-matrix bit variable. *)
type problem = {
  data_len : int;
  check_len : int;
  min_distance : int;
  extra : (entry:(row:int -> col:int -> Smtlite.Expr.t) -> Smtlite.Expr.t) list;
      (** each callback builds one side constraint from the bit variables *)
}

(** [synthesize ?timeout ?cex_mode ?verifier ?encoding problem] runs the
    loop.  [timeout] (seconds, default 120 as in the paper) bounds the
    whole call. *)
val synthesize :
  ?timeout:float ->
  ?cex_mode:cex_mode ->
  ?verifier:verifier_mode ->
  ?encoding:Smtlite.Card.encoding ->
  problem ->
  outcome
