(** Stand-alone verification of concrete generators (paper §4.1).

    Properties that do not mention minimum distance are evaluated directly
    (they are arithmetic over a concrete generator); [md]-properties are
    discharged through the distance checker, either combinatorial or
    SAT-based (the paper's method). *)

type method_ = Combinatorial | Sat

type report = {
  holds : bool;
  witness : Gf2.Bitvec.t option;
      (** for a failed [md >= m] claim: a data word encoding below weight [m] *)
  elapsed : float;
}

(** [min_distance_at_least ?method_ ?timeout code m] verifies
    [md(code) >= m]. *)
val min_distance_at_least :
  ?method_:method_ -> ?timeout:float -> Hamming.Code.t -> int -> report

(** [min_distance_exactly ?method_ ?timeout code m] verifies
    [md(code) = m] (bound holds at [m] and fails at [m+1]). *)
val min_distance_exactly :
  ?method_:method_ -> ?timeout:float -> Hamming.Code.t -> int -> report

(** [property ?timeout env prop] verifies an arbitrary property of the
    language against concrete generators: evaluates it under the exact
    semantics of {!Spec.Eval} (minimum distances computed exactly).
    Timing is reported; [Minimal]/[Maximal] directives are ignored. *)
val property : ?timeout:float -> Spec.Eval.env -> Spec.Ast.prop -> report
