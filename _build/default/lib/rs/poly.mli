(** Polynomials over GF(2^m), represented as coefficient arrays with
    index = degree ([p.(i)] is the coefficient of x^i).  All values are
    normalized: no trailing zero coefficients (the zero polynomial is the
    empty array). *)

type t = int array

(** [normalize p] strips trailing zeros. *)
val normalize : t -> t

(** [zero] / [one]. *)
val zero : t

val one : t

(** [degree p] is the degree, or [-1] for the zero polynomial. *)
val degree : t -> int

(** [coeff p i] is the coefficient of x^i (0 beyond the degree). *)
val coeff : t -> int -> int

(** [add f a b] / [mul f a b] are ring operations. *)
val add : Gf.t -> t -> t -> t

val mul : Gf.t -> t -> t -> t

(** [scale f c p] multiplies every coefficient by [c]. *)
val scale : Gf.t -> int -> t -> t

(** [shift p n] multiplies by x^n. *)
val shift : t -> int -> t

(** [divmod f a b] is [(quotient, remainder)].
    @raise Division_by_zero on zero divisor. *)
val divmod : Gf.t -> t -> t -> t * t

(** [eval f p x] evaluates by Horner's rule. *)
val eval : Gf.t -> t -> int -> int

(** [deriv f p] is the formal derivative (in characteristic 2, even-degree
    terms vanish). *)
val deriv : Gf.t -> t -> t

(** [monomial ~degree ~coeff] is [coeff · x^degree]. *)
val monomial : degree:int -> coeff:int -> t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
