type t = {
  field : Gf.t;
  n : int;
  k : int;
  gen : Poly.t; (* generator polynomial, roots alpha^1 .. alpha^(n-k) *)
}

type decode_result =
  | Valid of int array
  | Corrected of int array * int list
  | Uncorrectable

(* first consecutive root exponent; 1 is the classical choice *)
let fcr = 1

let create ~m ~n ~k =
  let field = Gf.create m in
  if k <= 0 || n <= k || n > Gf.order field - 1 then
    invalid_arg
      (Printf.sprintf "Rs.create: need 0 < k < n <= %d (got n=%d k=%d)"
         (Gf.order field - 1) n k);
  if n - k < 2 then invalid_arg "Rs.create: need at least 2 parity symbols";
  let gen = ref Poly.one in
  for i = fcr to fcr + (n - k) - 1 do
    gen := Poly.mul field !gen [| Gf.alpha_pow field i; 1 |]
  done;
  { field; n; k; gen = !gen }

let kp4 = lazy (create ~m:10 ~n:544 ~k:514)

let n t = t.n
let k t = t.k
let parity_len t = t.n - t.k
let symbol_bits t = Gf.m t.field
let correctable t = (t.n - t.k) / 2

let check_symbols t a =
  Array.iter
    (fun s ->
      if s < 0 || s >= Gf.order t.field then
        invalid_arg (Printf.sprintf "Rs: symbol %d out of field range" s))
    a

(* Systematic encoding: parity = data·x^(n-k) mod gen.  The codeword is
   data symbols (ascending index) followed by parity symbols. *)
let encode t data =
  if Array.length data <> t.k then
    invalid_arg
      (Printf.sprintf "Rs.encode: %d data symbols, expected %d" (Array.length data) t.k);
  check_symbols t data;
  (* as a polynomial, data.(0) is the highest-degree coefficient so the
     codeword reads left-to-right like the block layout *)
  let p = parity_len t in
  let data_poly = Array.init t.k (fun i -> data.(t.k - 1 - i)) in
  let shifted = Poly.shift data_poly p in
  let _, rem = Poly.divmod t.field shifted t.gen in
  let parity = Array.init p (fun i -> Poly.coeff rem (p - 1 - i)) in
  Array.append data parity

(* The received word as a polynomial: position i (block order) has degree
   n-1-i. *)
let word_poly t word = Array.init t.n (fun i -> word.(t.n - 1 - i))

let syndromes t word =
  if Array.length word <> t.n then
    invalid_arg
      (Printf.sprintf "Rs.syndromes: %d symbols, expected %d" (Array.length word) t.n);
  check_symbols t word;
  let wp = word_poly t word in
  Array.init (parity_len t) (fun i ->
      Poly.eval t.field wp (Gf.alpha_pow t.field (fcr + i)))

let is_valid t word = Array.for_all (fun s -> s = 0) (syndromes t word)

(* Berlekamp-Massey: error-locator polynomial from the syndromes. *)
let berlekamp_massey field synd =
  let nsynd = Array.length synd in
  let sigma = ref Poly.one in
  let prev = ref Poly.one in
  let l = ref 0 in
  let shift_count = ref 1 in
  let b = ref 1 in
  for i = 0 to nsynd - 1 do
    (* discrepancy *)
    let delta = ref synd.(i) in
    for j = 1 to !l do
      delta := Gf.add field !delta (Gf.mul field (Poly.coeff !sigma j) synd.(i - j))
    done;
    if !delta = 0 then incr shift_count
    else if 2 * !l <= i then begin
      let tmp = !sigma in
      let factor = Gf.div field !delta !b in
      sigma := Poly.add field !sigma (Poly.scale field factor (Poly.shift !prev !shift_count));
      prev := tmp;
      l := i + 1 - !l;
      b := !delta;
      shift_count := 1
    end
    else begin
      let factor = Gf.div field !delta !b in
      sigma := Poly.add field !sigma (Poly.scale field factor (Poly.shift !prev !shift_count));
      incr shift_count
    end
  done;
  (!sigma, !l)

let decode t word =
  let synd = syndromes t word in
  if Array.for_all (fun s -> s = 0) synd then Valid (Array.sub word 0 t.k)
  else begin
    let field = t.field in
    let sigma, l = berlekamp_massey field synd in
    if l > correctable t || Poly.degree sigma <> l then Uncorrectable
    else begin
      (* Chien search: roots of sigma are alpha^{-position-degree} *)
      let positions = ref [] in
      for pos = 0 to t.n - 1 do
        let degree = t.n - 1 - pos in
        let x = Gf.alpha_pow field (-degree) in
        if Poly.eval field sigma x = 0 then positions := (pos, x) :: !positions
      done;
      let positions = List.rev !positions in
      if List.length positions <> l then Uncorrectable
      else begin
        (* Forney: error value at root x = X^(1-fcr) * omega(x) / sigma'(x)
           with omega = (synd_poly * sigma) mod x^(n-k) *)
        let synd_poly = Array.copy synd in
        let omega =
          let prod = Poly.mul field synd_poly sigma in
          Poly.normalize (Array.init (min (Array.length prod) (parity_len t)) (fun i -> Poly.coeff prod i))
        in
        let sigma' = Poly.deriv field sigma in
        let corrected = Array.copy word in
        let ok = ref true in
        List.iter
          (fun (pos, x) ->
            let denom = Poly.eval field sigma' x in
            if denom = 0 then ok := false
            else begin
              let num = Poly.eval field omega x in
              (* X = x^{-1} is the error locator; fcr=1 gives factor X^0 *)
              let x_inv = Gf.inv field x in
              let magnitude =
                Gf.mul field (Gf.pow field x_inv (1 - fcr)) (Gf.div field num denom)
              in
              corrected.(pos) <- Gf.add field corrected.(pos) magnitude
            end)
          positions;
        if (not !ok) || not (is_valid t corrected) then Uncorrectable
        else Corrected (Array.sub corrected 0 t.k, List.map fst positions)
      end
    end
  end
