(** Binary primitive BCH codes.

    A BCH code of length [n = 2^m - 1] and design distance [delta] has the
    generator polynomial [g(x) = lcm] of the minimal polynomials of
    [alpha^1 .. alpha^(delta-1)] over GF(2); its minimum distance is at
    least [delta].  These are the classical multi-error-correcting codes
    the synthesizer's md >= 5 generators compete against (a synthesized
    (11,4) md-5 code vs BCH(15,7) md-5, etc.), provided here in systematic
    form ready for the rest of the library. *)

type t

(** [create ~m ~delta] builds the BCH code of length [2^m - 1].
    @raise Invalid_argument unless [2 <= m <= 13] and
    [2 <= delta <= 2^m - 1], or if the code degenerates ([k <= 0]). *)
val create : m:int -> delta:int -> t

(** [n t] / [k t] are block and data lengths. *)
val n : t -> int

val k : t -> int

(** [design_distance t] is [delta]; the true minimum distance is >= it. *)
val design_distance : t -> int

(** [generator_poly t] is [g(x)] as GF(2) coefficients, index = degree. *)
val generator_poly : t -> int array

(** [to_code t] is the systematic [(I | P)] form as a {!Hamming.Code},
    usable with the whole library (distance checks, codecs, emitters). *)
val to_code : t -> Hamming.Code.t

(** [minimal_polynomial ~m j] is the minimal polynomial of [alpha^j] over
    GF(2), as 0/1 coefficients (exposed for tests). *)
val minimal_polynomial : m:int -> int -> int array
