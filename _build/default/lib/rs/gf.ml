type t = {
  m : int;
  order : int;
  exp : int array; (* alpha^i for i in [0, 2*(order-1)) to skip mod *)
  log : int array;
}

(* Standard primitive polynomials (low-order terms; the x^m term implied). *)
let primitive_poly = function
  | 2 -> 0x7 (* x^2+x+1 *)
  | 3 -> 0xb (* x^3+x+1 *)
  | 4 -> 0x13 (* x^4+x+1 *)
  | 5 -> 0x25 (* x^5+x^2+1 *)
  | 6 -> 0x43 (* x^6+x+1 *)
  | 7 -> 0x89 (* x^7+x^3+1 *)
  | 8 -> 0x11d (* x^8+x^4+x^3+x^2+1 *)
  | 9 -> 0x211 (* x^9+x^4+1 *)
  | 10 -> 0x409 (* x^10+x^3+1 *)
  | 11 -> 0x805 (* x^11+x^2+1 *)
  | 12 -> 0x1053 (* x^12+x^6+x^4+x+1 *)
  | 13 -> 0x201b (* x^13+x^4+x^3+x+1 *)
  | m -> invalid_arg (Printf.sprintf "Gf.create: unsupported field GF(2^%d)" m)

let cache : (int, t) Hashtbl.t = Hashtbl.create 8

let build m =
  let order = 1 lsl m in
  let poly = primitive_poly m in
  let exp = Array.make (2 * (order - 1)) 0 in
  let log = Array.make order 0 in
  let x = ref 1 in
  for i = 0 to order - 2 do
    exp.(i) <- !x;
    log.(!x) <- i;
    x := !x lsl 1;
    if !x land order <> 0 then x := !x lxor poly
  done;
  for i = order - 1 to (2 * (order - 1)) - 1 do
    exp.(i) <- exp.(i - (order - 1))
  done;
  { m; order; exp; log }

let create m =
  match Hashtbl.find_opt cache m with
  | Some f -> f
  | None ->
      let f = build m in
      Hashtbl.add cache m f;
      f

let order f = f.order
let m f = f.m
let add _ a b = a lxor b
let sub _ a b = a lxor b

let mul f a b =
  if a = 0 || b = 0 then 0 else f.exp.(f.log.(a) + f.log.(b))

let inv f a =
  if a = 0 then raise Division_by_zero
  else f.exp.(f.order - 1 - f.log.(a))

let div f a b =
  if b = 0 then raise Division_by_zero
  else if a = 0 then 0
  else f.exp.(f.log.(a) + (f.order - 1) - f.log.(b))

let pow f a e =
  if e = 0 then 1
  else if a = 0 then 0
  else begin
    let n = f.order - 1 in
    let e = ((e mod n) + n) mod n in
    f.exp.((f.log.(a) * e) mod n)
  end

let alpha _ = 2

let alpha_pow f e =
  let n = f.order - 1 in
  let e = ((e mod n) + n) mod n in
  f.exp.(e)

let log f a =
  if a = 0 then invalid_arg "Gf.log: zero has no discrete log" else f.log.(a)
