(** Finite fields GF(2^m) for 2 <= m <= 13, with table-driven arithmetic.

    Elements are integers in [0, 2^m).  Addition is XOR; multiplication,
    division and exponentiation go through discrete-log tables built from a
    fixed primitive polynomial per field size (the standard polynomials,
    including x^10 + x^3 + 1 for the GF(1024) field used by KP4). *)

type t

(** [create m] builds (or returns the cached) field GF(2^m).
    @raise Invalid_argument unless [2 <= m <= 13]. *)
val create : int -> t

(** [order f] is [2^m], the number of field elements. *)
val order : t -> int

(** [m f] is the field's bit width. *)
val m : t -> int

(** [add f a b] / [sub f a b]: both are XOR in characteristic 2. *)
val add : t -> int -> int -> int

val sub : t -> int -> int -> int

(** [mul f a b] is the field product. *)
val mul : t -> int -> int -> int

(** [div f a b] is [a / b].  @raise Division_by_zero if [b = 0]. *)
val div : t -> int -> int -> int

(** [inv f a] is the multiplicative inverse.
    @raise Division_by_zero if [a = 0]. *)
val inv : t -> int -> int

(** [pow f a e] is [a^e] (with [pow f 0 0 = 1]). *)
val pow : t -> int -> int -> int

(** [alpha f] is the primitive element (the root of the field polynomial,
    numerically 2). *)
val alpha : t -> int

(** [alpha_pow f e] is [alpha^e] for any integer [e] (negative allowed). *)
val alpha_pow : t -> int -> int

(** [log f a] is the discrete log base alpha.
    @raise Invalid_argument if [a = 0]. *)
val log : t -> int -> int
