type t = { m : int; delta : int; n : int; k : int; gen : int array }

(* Minimal polynomial of alpha^j: product of (x + alpha^(j·2^i)) over the
   cyclotomic coset of j modulo 2^m - 1. *)
let minimal_polynomial ~m j =
  let field = Gf.create m in
  let order = Gf.order field - 1 in
  let rec coset acc e =
    let e' = e * 2 mod order in
    if List.mem e' acc then acc else coset (e' :: acc) e'
  in
  let exponents = coset [ j mod order ] (j mod order) in
  let poly =
    List.fold_left
      (fun acc e -> Poly.mul field acc [| Gf.alpha_pow field e; 1 |])
      Poly.one exponents
  in
  Array.iter
    (fun c ->
      if c <> 0 && c <> 1 then
        invalid_arg "Bch.minimal_polynomial: coefficients not in GF(2)")
    poly;
  poly

(* GF(2) polynomial helpers on 0/1 coefficient arrays. *)
let gf2_mul a b =
  let out = Array.make (Array.length a + Array.length b - 1) 0 in
  Array.iteri
    (fun i ai -> if ai = 1 then Array.iteri (fun j bj -> out.(i + j) <- out.(i + j) lxor bj) b)
    a;
  out

let gf2_mod a b =
  let db = Array.length b - 1 in
  let a =
    if Array.length a >= db then Array.copy a
    else Array.append a (Array.make (db - Array.length a) 0)
  in
  for i = Array.length a - 1 downto db do
    if a.(i) = 1 then
      for j = 0 to db do
        a.(i - db + j) <- a.(i - db + j) lxor b.(j)
      done
  done;
  Array.sub a 0 db

let gf2_divides d p =
  (* does d divide p? *)
  Array.for_all (fun c -> c = 0) (gf2_mod p d)

let create ~m ~delta =
  if delta < 2 then invalid_arg "Bch.create: delta must be >= 2";
  let n = (1 lsl m) - 1 in
  if delta > n then invalid_arg "Bch.create: delta exceeds block length";
  (* g = lcm of minimal polynomials: multiply in each new factor only if
     it does not already divide the product *)
  let gen = ref [| 1 |] in
  for j = 1 to delta - 1 do
    let mp = minimal_polynomial ~m j in
    if not (gf2_divides mp !gen) then gen := gf2_mul !gen mp
  done;
  let k = n - (Array.length !gen - 1) in
  if k <= 0 then invalid_arg "Bch.create: degenerate code (k <= 0)";
  { m; delta; n; k; gen = !gen }

let n t = t.n
let k t = t.k
let design_distance t = t.delta
let generator_poly t = Array.copy t.gen

let to_code t =
  let c = t.n - t.k in
  (* systematic: parity row i = x^(c + i) mod g, giving P with row i the
     check bits of data bit i *)
  let p =
    Gf2.Matrix.init ~rows:t.k ~cols:c (fun i j ->
        let xpow = Array.make (c + i + 1) 0 in
        xpow.(c + i) <- 1;
        let rem = gf2_mod xpow t.gen in
        (if j < Array.length rem then rem.(j) else 0) = 1)
  in
  Hamming.Code.make ~p

