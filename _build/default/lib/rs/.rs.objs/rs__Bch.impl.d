lib/rs/bch.ml: Array Gf Gf2 Hamming List Poly
