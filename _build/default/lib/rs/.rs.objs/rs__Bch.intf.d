lib/rs/bch.mli: Hamming
