lib/rs/reed_solomon.ml: Array Gf List Poly Printf
