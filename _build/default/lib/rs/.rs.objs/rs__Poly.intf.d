lib/rs/poly.mli: Format Gf
