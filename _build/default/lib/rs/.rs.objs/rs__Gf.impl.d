lib/rs/gf.ml: Array Hashtbl Printf
