lib/rs/reed_solomon.mli: Lazy
