lib/rs/gf.mli:
