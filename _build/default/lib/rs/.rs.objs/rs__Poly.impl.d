lib/rs/poly.ml: Array Format Gf
