type t = int array

let normalize p =
  let d = ref (Array.length p - 1) in
  while !d >= 0 && p.(!d) = 0 do
    decr d
  done;
  if !d = Array.length p - 1 then p else Array.sub p 0 (!d + 1)

let zero = [||]
let one = [| 1 |]
let degree p = Array.length (normalize p) - 1
let coeff p i = if i >= 0 && i < Array.length p then p.(i) else 0

let add f a b =
  let n = max (Array.length a) (Array.length b) in
  normalize (Array.init n (fun i -> Gf.add f (coeff a i) (coeff b i)))

let mul f a b =
  let a = normalize a and b = normalize b in
  if Array.length a = 0 || Array.length b = 0 then zero
  else begin
    let out = Array.make (Array.length a + Array.length b - 1) 0 in
    Array.iteri
      (fun i ai ->
        if ai <> 0 then
          Array.iteri
            (fun j bj -> out.(i + j) <- Gf.add f out.(i + j) (Gf.mul f ai bj))
            b)
      a;
    normalize out
  end

let scale f c p = normalize (Array.map (fun x -> Gf.mul f c x) p)

let shift p n =
  let p = normalize p in
  if Array.length p = 0 then zero
  else Array.append (Array.make n 0) p

let divmod f a b =
  let b = normalize b in
  if Array.length b = 0 then raise Division_by_zero;
  let db = Array.length b - 1 in
  let lead = b.(db) in
  let rem = Array.copy (normalize a) in
  let da = Array.length rem - 1 in
  if da < db then (zero, normalize rem)
  else begin
    let q = Array.make (da - db + 1) 0 in
    for i = da downto db do
      let c = if i < Array.length rem then rem.(i) else 0 in
      if c <> 0 then begin
        let factor = Gf.div f c lead in
        q.(i - db) <- factor;
        for j = 0 to db do
          rem.(i - db + j) <- Gf.sub f rem.(i - db + j) (Gf.mul f factor b.(j))
        done
      end
    done;
    (normalize q, normalize rem)
  end

let eval f p x =
  let acc = ref 0 in
  for i = Array.length p - 1 downto 0 do
    acc := Gf.add f (Gf.mul f !acc x) p.(i)
  done;
  !acc

let deriv f p =
  ignore f;
  let p = normalize p in
  if Array.length p <= 1 then zero
  else
    normalize
      (Array.init (Array.length p - 1) (fun i ->
           (* d/dx of a_{i+1} x^{i+1} = (i+1) a_{i+1} x^i; in char 2 the
              multiplier is i+1 mod 2 *)
           if (i + 1) land 1 = 1 then p.(i + 1) else 0))

let monomial ~degree ~coeff =
  if coeff = 0 then zero
  else begin
    let p = Array.make (degree + 1) 0 in
    p.(degree) <- coeff;
    p
  end

let equal a b = normalize a = normalize b

let pp fmt p =
  let p = normalize p in
  if Array.length p = 0 then Format.pp_print_string fmt "0"
  else begin
    let first = ref true in
    for i = Array.length p - 1 downto 0 do
      if p.(i) <> 0 then begin
        if not !first then Format.pp_print_string fmt " + ";
        first := false;
        if i = 0 then Format.fprintf fmt "%d" p.(i)
        else if p.(i) = 1 then Format.fprintf fmt "x^%d" i
        else Format.fprintf fmt "%d·x^%d" p.(i) i
      end
    done
  end
