(** Systematic Reed-Solomon codes over GF(2^m).

    An RS(n, k) code carries [k] data symbols and [n - k] parity symbols
    of [m] bits each and corrects up to [t = (n - k) / 2] symbol errors.
    Decoding is the classical pipeline: syndromes, Berlekamp-Massey error
    locator, Chien search, Forney error values.

    The 802.3df standard pairs its inner Hamming FEC with the KP4 outer
    code RS(544, 514) over GF(2^10) — available as {!kp4}. *)

type t

type decode_result =
  | Valid of int array  (** zero syndromes; data returned as-is *)
  | Corrected of int array * int list
      (** data after correcting errors at the given codeword positions *)
  | Uncorrectable  (** more than [t] symbol errors *)

(** [create ~m ~n ~k] builds a code with symbols in GF(2^m).
    @raise Invalid_argument unless [0 < k < n <= 2^m - 1] and [n - k]
    is at least 2. *)
val create : m:int -> n:int -> k:int -> t

(** [kp4] is RS(544, 514) over GF(2^10): t = 15. *)
val kp4 : t Lazy.t

(** [n t] / [k t] / [parity_len t] / [symbol_bits t] are the parameters. *)
val n : t -> int

val k : t -> int
val parity_len : t -> int
val symbol_bits : t -> int

(** [correctable t] is [t = (n-k)/2], the symbol-error correction power. *)
val correctable : t -> int

(** [encode t data] appends [n - k] parity symbols to [k] data symbols.
    Codeword layout: data first, parity last.
    @raise Invalid_argument on wrong length or out-of-range symbols. *)
val encode : t -> int array -> int array

(** [syndromes t word] is the syndrome vector (all zero iff valid). *)
val syndromes : t -> int array -> int array

(** [is_valid t word] holds iff all syndromes vanish. *)
val is_valid : t -> int array -> bool

(** [decode t word] corrects up to [correctable t] symbol errors. *)
val decode : t -> int array -> decode_result
