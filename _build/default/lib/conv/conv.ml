open Gf2

type t = { k : int; polys : int array }

let parity x =
  let rec go x acc = if x = 0 then acc else go (x land (x - 1)) (acc + 1) in
  go x 0 land 1

let create ~constraint_len ~polys =
  if constraint_len < 3 || constraint_len > 16 then
    invalid_arg "Conv.create: constraint length out of range [3,16]";
  if Array.length polys < 2 then invalid_arg "Conv.create: need at least two polynomials";
  Array.iter
    (fun p ->
      if p <= 0 || p lsr constraint_len <> 0 then
        invalid_arg "Conv.create: polynomial does not fit the register")
    polys;
  { k = constraint_len; polys }

let standard_k7 = create ~constraint_len:7 ~polys:[| 0o171; 0o133 |]

let rate_den t = Array.length t.polys
let constraint_len t = t.k

(* The register holds the current bit in its low position and the previous
   K-1 bits above it; the state is the register without the current bit. *)
let step t state bit =
  let reg = (state lsl 1) lor bit in
  let out = Array.map (fun p -> parity (reg land p)) t.polys in
  let state' = reg land ((1 lsl (t.k - 1)) - 1) in
  (state', out)

let encode t data =
  let nden = rate_den t in
  let total = Bitvec.length data + t.k - 1 in
  let out = Bitvec.create (total * nden) in
  let state = ref 0 in
  for i = 0 to total - 1 do
    let bit = if i < Bitvec.length data && Bitvec.get data i then 1 else 0 in
    let state', symbols = step t !state bit in
    state := state';
    Array.iteri (fun j s -> if s = 1 then Bitvec.set out ((i * nden) + j) true) symbols
  done;
  out

let decode t ~data_len received =
  let nden = rate_den t in
  let steps = data_len + t.k - 1 in
  if Bitvec.length received <> steps * nden then
    invalid_arg
      (Printf.sprintf "Conv.decode: received length %d, expected %d"
         (Bitvec.length received) (steps * nden));
  let nstates = 1 lsl (t.k - 1) in
  let infinity_metric = max_int / 2 in
  let metric = Array.make nstates infinity_metric in
  metric.(0) <- 0;
  let next_metric = Array.make nstates infinity_metric in
  (* predecessor decisions: for each step and state, the input bit and
     previous state that achieved the best metric *)
  let decisions = Array.make_matrix steps nstates (-1) in
  (* precompute branch outputs: (state, bit) -> packed output symbol *)
  let branch =
    Array.init nstates (fun state ->
        Array.init 2 (fun bit ->
            let _, symbols = step t state bit in
            Array.fold_left (fun acc s -> (acc lsl 1) lor s) 0 symbols))
  in
  for i = 0 to steps - 1 do
    let rx = ref 0 in
    for j = 0 to nden - 1 do
      rx := (!rx lsl 1) lor (if Bitvec.get received ((i * nden) + j) then 1 else 0)
    done;
    Array.fill next_metric 0 nstates infinity_metric;
    (* after data_len steps only zero input bits occur (the tail) *)
    let max_bit = if i < data_len then 1 else 0 in
    for state = 0 to nstates - 1 do
      if metric.(state) < infinity_metric then
        for bit = 0 to max_bit do
          let reg = (state lsl 1) lor bit in
          let state' = reg land (nstates - 1) in
          let cost =
            let d = branch.(state).(bit) lxor !rx in
            let rec pop x acc = if x = 0 then acc else pop (x land (x - 1)) (acc + 1) in
            pop d 0
          in
          let cand = metric.(state) + cost in
          if cand < next_metric.(state') then begin
            next_metric.(state') <- cand;
            decisions.(i).(state') <- (state lsl 1) lor bit
          end
        done
    done;
    Array.blit next_metric 0 metric 0 nstates
  done;
  (* the zero tail forces the survivor to end in state 0 *)
  let out = Bitvec.create data_len in
  let state = ref 0 in
  for i = steps - 1 downto 0 do
    let d = decisions.(i).(!state) in
    if d < 0 then invalid_arg "Conv.decode: no surviving path (corrupted beyond repair)";
    let bit = d land 1 in
    if i < data_len && bit = 1 then Bitvec.set out i true;
    state := d lsr 1
  done;
  out
