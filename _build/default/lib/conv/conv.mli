(** Convolutional codes with hard-decision Viterbi decoding.

    The stream-oriented counterpart of the paper's block codes: rate-1/n
    feedforward encoders described by generator polynomials, decoded by
    maximum-likelihood sequence estimation over the trellis.  Provided as
    a baseline family for the benchmark comparisons (the classic K=7
    (171,133) code used from deep space to 802.11). *)

type t

(** [create ~constraint_len ~polys] builds a rate-1/[Array.length polys]
    encoder.  Polynomials are given as bit masks over the encoder register
    (bit 0 = newest input bit), e.g. [0o171] and [0o133] for the standard
    K = 7 code.
    @raise Invalid_argument if [constraint_len] is not in [3..16], fewer
    than two polynomials are given, or a polynomial does not fit the
    register. *)
val create : constraint_len:int -> polys:int array -> t

(** The industry-standard K = 7, rate 1/2 code (polynomials 171, 133
    octal); free distance 10. *)
val standard_k7 : t

(** [rate_den t] is [n] in rate 1/n; [constraint_len t] is K. *)
val rate_den : t -> int

val constraint_len : t -> int

(** [encode t data] encodes [data] followed by a [K-1]-zero tail, so the
    output has [(length data + K - 1) * n] bits. *)
val encode : t -> Gf2.Bitvec.t -> Gf2.Bitvec.t

(** [decode t ~data_len received] runs Viterbi over the full received
    stream and returns the most likely [data_len] data bits.
    @raise Invalid_argument if [received] has the wrong length. *)
val decode : t -> data_len:int -> Gf2.Bitvec.t -> Gf2.Bitvec.t
