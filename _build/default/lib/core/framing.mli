(** Stream framing: serialize runs of FEC-protected words, carrying the
    code descriptor in-band so a receiver can decode with a code it has
    never seen — the "dynamically exchange codes" deployment story the
    paper points at (RFC 5109). *)

type report = {
  valid : int;  (** codewords with zero syndrome *)
  corrected : int;  (** single-bit errors repaired *)
  uncorrectable : int;  (** detected but unrepairable codewords *)
}

(** [encode codec words] is a self-describing frame: magic, the
    {!Registry} descriptor, the word count, then bit-packed codewords. *)
val encode : Composite.t -> int array -> string

(** [decode frame] parses a frame, rebuilds the codec from the in-band
    descriptor, checks and (when possible) corrects each codeword, and
    returns the recovered data words.  Uncorrectable words are returned
    as-received (their data bits may be wrong) and counted in the report.
    @raise Registry.Parse_error / Failure on malformed frames. *)
val decode : string -> Composite.t * int array * report
