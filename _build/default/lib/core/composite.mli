(** Composite word codecs: protect one data word with several generators,
    each covering a subset of its bits.

    This is the paper's §4.3 construction — e.g. a 32-bit float word
    protected by [G_5^8] on its upper 8 bits, [G_1^8] on the next 8, and
    [G_1^16] on the mantissa half.  The codeword layout is the data word
    (all bits, original order) followed by each part's check bits in part
    order. *)

type t

(** [create ~word_len parts] builds a composite codec.  Each part pairs a
    generator with the (ordered) data-word bit positions it protects; bit
    position 0 is the most significant bit of the word.  The positions
    must partition [0 .. word_len).
    @raise Invalid_argument if they do not, or if a part's generator data
    length disagrees with its position count. *)
val create : word_len:int -> (Hamming.Code.t * int list) list -> t

(** [of_mapping ~codes ~mapping] builds a composite from a bit-to-generator
    mapping array ([mapping.(j)] = generator index of word bit [j]), as
    produced by {!Synth.Weighted}. *)
val of_mapping : codes:Hamming.Code.t array -> mapping:int array -> t

(** [word_len t] / [check_len t] / [block_len t] are the sizes in bits. *)
val word_len : t -> int

val check_len : t -> int
val block_len : t -> int

(** [parts t] exposes the generators with their protected positions. *)
val parts : t -> (Hamming.Code.t * int list) list

(** [encode t w] appends all parts' check bits to data word [w].  Words
    are packed so that word bit [j] (bit 0 = most significant, as in the
    paper's Figure 1) is integer bit [word_len - 1 - j]: a 32-bit float's
    bit pattern {e is} the integer.  Check bits of part [p], index [j],
    land at integer bit [word_len + offset_p + j]. *)
val encode : t -> int -> int

(** [is_valid t cw] holds iff every part's syndrome is zero. *)
val is_valid : t -> int -> bool

(** [data_of t cw] extracts the data word. *)
val data_of : t -> int -> int

(** [correct t cw] fixes at most one bit error per part; [None] if any
    part is uncorrectable. *)
val correct : t -> int -> int option

(** [min_distance t] is the weakest part's minimum distance — the number
    of bit errors needed to go undetected somewhere. *)
val min_distance : t -> int

(** [to_codec t] adapts the composite to the Monte-Carlo harness. *)
val to_codec : t -> Channel.Montecarlo.codec
