lib/core/composite.ml: Array Channel Fun Hamming List Printf Sys
