lib/core/design.ml: Array Channel Composite Fun Hamming List Synth Unix
