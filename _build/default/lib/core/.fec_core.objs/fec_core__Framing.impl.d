lib/core/framing.ml: Array Composite Registry String Zip
