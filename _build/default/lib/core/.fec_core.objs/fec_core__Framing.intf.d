lib/core/framing.mli: Composite
