lib/core/composite.mli: Channel Hamming
