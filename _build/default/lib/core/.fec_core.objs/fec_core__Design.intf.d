lib/core/design.mli: Composite Lazy
