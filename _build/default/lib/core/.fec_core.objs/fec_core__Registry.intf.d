lib/core/registry.mli: Composite Hamming
