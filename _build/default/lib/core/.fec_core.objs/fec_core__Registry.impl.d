lib/core/registry.ml: Composite Gf2 Hamming List Printf String
