type part = {
  code : Hamming.Code.t;
  positions : int list; (* paper bit indices (0 = MSB) in generator order *)
  codec : Hamming.Fastcodec.t;
  extract_masks : int array; (* integer-bit index per generator data bit *)
  check_offset : int; (* offset of this part's checks within the check tail *)
}

type t = { word_len : int; parts : part array; total_check : int }

let create ~word_len part_specs =
  if word_len < 1 || word_len > 48 then
    invalid_arg "Composite.create: word length out of range [1,48]";
  let seen = Array.make word_len false in
  let offset = ref 0 in
  let parts =
    List.map
      (fun (code, positions) ->
        let k = Hamming.Code.data_len code in
        if List.length positions <> k then
          invalid_arg
            (Printf.sprintf
               "Composite.create: generator expects %d bits but %d positions given" k
               (List.length positions));
        List.iter
          (fun pos ->
            if pos < 0 || pos >= word_len then
              invalid_arg (Printf.sprintf "Composite.create: position %d out of range" pos);
            if seen.(pos) then
              invalid_arg (Printf.sprintf "Composite.create: position %d covered twice" pos);
            seen.(pos) <- true)
          positions;
        let part =
          {
            code;
            positions;
            codec = Hamming.Fastcodec.compile code;
            extract_masks =
              Array.of_list (List.map (fun pos -> word_len - 1 - pos) positions);
            check_offset = !offset;
          }
        in
        offset := !offset + Hamming.Code.check_len code;
        part)
      part_specs
  in
  if not (Array.for_all Fun.id seen) then
    invalid_arg "Composite.create: some word bits are unprotected";
  if word_len + !offset > Sys.int_size - 1 then
    invalid_arg "Composite.create: codeword exceeds native word";
  { word_len; parts = Array.of_list parts; total_check = !offset }

let of_mapping ~codes ~mapping =
  let word_len = Array.length mapping in
  let specs =
    Array.to_list
      (Array.mapi
         (fun gi code ->
           let positions =
             Array.to_list mapping
             |> List.mapi (fun j g -> (j, g))
             |> List.filter (fun (_, g) -> g = gi)
             |> List.map fst
           in
           (code, positions))
         codes)
    |> List.filter (fun (_, positions) -> positions <> [])
  in
  create ~word_len specs

let word_len t = t.word_len
let check_len t = t.total_check
let block_len t = t.word_len + t.total_check
let parts t = Array.to_list (Array.map (fun p -> (p.code, p.positions)) t.parts)

(* Gather a part's generator-order data bits out of the packed word. *)
let extract t part w =
  ignore t;
  let sub = ref 0 in
  Array.iteri
    (fun i int_bit -> sub := !sub lor (((w lsr int_bit) land 1) lsl i))
    part.extract_masks;
  !sub

(* Scatter a generator-order data subword back into a packed word. *)
let scatter part sub w =
  let w = ref w in
  Array.iteri
    (fun i int_bit ->
      let bit = (sub lsr i) land 1 in
      w := (!w land lnot (1 lsl int_bit)) lor (bit lsl int_bit))
    part.extract_masks;
  !w

let encode t w =
  let out = ref (w land ((1 lsl t.word_len) - 1)) in
  Array.iter
    (fun part ->
      let sub = extract t part !out in
      let coded = part.codec.Hamming.Fastcodec.encode sub in
      let checks = coded lsr part.codec.Hamming.Fastcodec.data_len in
      out := !out lor (checks lsl (t.word_len + part.check_offset)))
    t.parts;
  !out

let part_word t part cw =
  let sub = extract t part cw in
  let checks =
    (cw lsr (t.word_len + part.check_offset))
    land ((1 lsl part.codec.Hamming.Fastcodec.check_len) - 1)
  in
  sub lor (checks lsl part.codec.Hamming.Fastcodec.data_len)

let is_valid t cw =
  Array.for_all
    (fun part -> part.codec.Hamming.Fastcodec.syndrome (part_word t part cw) = 0)
    t.parts

let data_of t cw = cw land ((1 lsl t.word_len) - 1)

let correct t cw =
  let out = ref (data_of t cw) in
  let ok = ref true in
  Array.iter
    (fun part ->
      match part.codec.Hamming.Fastcodec.correct (part_word t part cw) with
      | None -> ok := false
      | Some fixed ->
          let data_mask = (1 lsl part.codec.Hamming.Fastcodec.data_len) - 1 in
          out := scatter part (fixed land data_mask) !out)
    t.parts;
  if !ok then Some (encode t !out) else None

let min_distance t =
  Array.fold_left
    (fun acc part -> min acc (Hamming.Distance.min_distance part.code))
    max_int t.parts

let to_codec t =
  {
    Channel.Montecarlo.data_len = t.word_len;
    block_len = block_len t;
    encode = encode t;
    is_valid = is_valid t;
  }
