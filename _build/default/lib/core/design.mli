(** The end-to-end application-specific design workflow of the paper:
    measure how bit flips hurt a data format (Figure 1), derive per-bit
    criticality weights, synthesize a weighted generator split (§4.3), and
    assemble the resulting composite codec. *)

type float32_design = {
  weights : int array;  (** upper-16-bit criticality weights (1..100) *)
  mapping : int array;  (** bit to generator assignment for the upper half *)
  codec : Composite.t;  (** the full 32-bit codec, lower half on parity *)
  sum_w : float;  (** the achieved §4.3 objective value *)
  elapsed : float;
}

(** [float32 ?timeout ?p ?samples ()] reproduces the paper's pipeline for
    IEEE float32 words: profile → weights → weighted synthesis of a
    strong/weak generator pair for the upper 16 bits → parity for the
    lower 16.  Returns [None] if synthesis finds no mapping in time. *)
val float32 : ?timeout:float -> ?p:float -> ?samples:int -> unit -> float32_design option

(** [paper_weights] is the §4.3 weight vector
    (100,100,100,100,99,98,82,45,17,17,8,4,2,1,1,1). *)
val paper_weights : int array

(** [float32_with_weights ?timeout ?p weights] skips the profiling stage
    and designs from the given 16 weights directly. *)
val float32_with_weights :
  ?timeout:float -> ?p:float -> int array -> float32_design option

(** The three Table 2 reference codecs, for comparison:
    two 16-bit parity halves; two (22,16) md-3 halves; and the
    weighted [G_5^8 G_1^8 G_1^16] split with the paper's mapping. *)
val table2_parity : Composite.t Lazy.t

val table2_md3 : Composite.t Lazy.t
val table2_float_specific : Composite.t Lazy.t
