type report = { valid : int; corrected : int; uncorrectable : int }

let magic = "FEC1"

let encode codec words =
  let descriptor = Registry.describe codec in
  let w = Zip.Bitio.Writer.create () in
  Zip.Bitio.Writer.string w magic;
  Zip.Bitio.Writer.bits w (String.length descriptor) 16;
  Zip.Bitio.Writer.align_byte w;
  Zip.Bitio.Writer.string w descriptor;
  Zip.Bitio.Writer.bits w (Array.length words) 24;
  let block = Composite.block_len codec in
  Array.iter
    (fun word ->
      let cw = Composite.encode codec word in
      (* bit I/O caps single writes at 24 bits; split long codewords *)
      let remaining = ref block and shift = ref 0 in
      while !remaining > 0 do
        let chunk = min 16 !remaining in
        Zip.Bitio.Writer.bits w ((cw lsr !shift) land ((1 lsl chunk) - 1)) chunk;
        shift := !shift + chunk;
        remaining := !remaining - chunk
      done)
    words;
  Zip.Bitio.Writer.contents w

let decode frame =
  let r = Zip.Bitio.Reader.create frame in
  let seen_magic = Zip.Bitio.Reader.string r 4 in
  if seen_magic <> magic then failwith "Framing.decode: bad magic";
  let descriptor_len = Zip.Bitio.Reader.bits r 16 in
  let descriptor = Zip.Bitio.Reader.string r descriptor_len in
  let codec = Registry.composite_of_string descriptor in
  let count = Zip.Bitio.Reader.bits r 24 in
  let block = Composite.block_len codec in
  let valid = ref 0 and corrected = ref 0 and uncorrectable = ref 0 in
  let words =
    Array.init count (fun _ ->
        let cw = ref 0 and shift = ref 0 and remaining = ref block in
        while !remaining > 0 do
          let chunk = min 16 !remaining in
          cw := !cw lor (Zip.Bitio.Reader.bits r chunk lsl !shift);
          shift := !shift + chunk;
          remaining := !remaining - chunk
        done;
        if Composite.is_valid codec !cw then begin
          incr valid;
          Composite.data_of codec !cw
        end
        else
          match Composite.correct codec !cw with
          | Some fixed ->
              incr corrected;
              Composite.data_of codec fixed
          | None ->
              incr uncorrectable;
              Composite.data_of codec !cw)
  in
  (codec, words, { valid = !valid; corrected = !corrected; uncorrectable = !uncorrectable })
