exception Parse_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

let matrix_descriptor code =
  let g = Hamming.Code.generator code in
  let rows =
    List.init (Gf2.Matrix.rows g) (fun r -> Gf2.Bitvec.to_string (Gf2.Matrix.row g r))
  in
  "matrix:" ^ String.concat "-" rows

let describe_code code =
  let k = Hamming.Code.data_len code and c = Hamming.Code.check_len code in
  if Hamming.Code.equal code (Hamming.Catalog.parity k) then Printf.sprintf "parity:%d" k
  else if k = 1 then Printf.sprintf "repetition:%d" (c + 1)
  else if
    c >= 2
    && k <= (1 lsl c) - 1 - c
    && Hamming.Code.equal code (Hamming.Catalog.shortened ~data_len:k ~check_len:c)
  then
    if k = (1 lsl c) - 1 - c then Printf.sprintf "perfect:%d" c
    else Printf.sprintf "shortened:%d:%d" k c
  else matrix_descriptor code

let int_of s what =
  match int_of_string_opt s with
  | Some v -> v
  | None -> fail "bad %s %S" what s

let rec code_of_string s =
  match String.index_opt s ':' with
  | None -> fail "missing ':' in code descriptor %S" s
  | Some i -> (
      let kind = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      match kind with
      | "parity" -> Hamming.Catalog.parity (int_of rest "parity length")
      | "repetition" -> Hamming.Catalog.repetition (int_of rest "repetition length")
      | "perfect" -> Hamming.Catalog.perfect (int_of rest "perfect r")
      | "shortened" -> (
          match String.split_on_char ':' rest with
          | [ k; c ] ->
              Hamming.Catalog.shortened ~data_len:(int_of k "data length")
                ~check_len:(int_of c "check length")
          | _ -> fail "shortened wants <k>:<c>")
      | "extended" ->
          let n = String.length rest in
          if n < 2 || rest.[0] <> '(' || rest.[n - 1] <> ')' then
            fail "extended wants (<code>)"
          else Hamming.Catalog.extend (code_of_string (String.sub rest 1 (n - 2)))
      | "matrix" -> (
          let rows = String.split_on_char '-' rest in
          try Hamming.Code.of_string (String.concat "\n" rows)
          with Invalid_argument m -> fail "bad matrix: %s" m)
      | other -> fail "unknown code kind %S" other)

let describe composite =
  Composite.parts composite
  |> List.map (fun (code, positions) ->
         Printf.sprintf "%s@%s" (describe_code code)
           (String.concat "," (List.map string_of_int positions)))
  |> String.concat "+"

let composite_of_string s =
  let parts =
    String.split_on_char '+' s
    |> List.map (fun part ->
           match String.rindex_opt part '@' with
           | None -> fail "part %S lacks '@positions'" part
           | Some i ->
               let code = code_of_string (String.sub part 0 i) in
               let positions =
                 String.sub part (i + 1) (String.length part - i - 1)
                 |> String.split_on_char ','
                 |> List.map (fun p -> int_of p "position")
               in
               (code, positions))
  in
  let word_len =
    List.fold_left
      (fun acc (_, positions) -> List.fold_left max acc (List.map (( + ) 1) positions))
      0 parts
  in
  try Composite.create ~word_len parts
  with Invalid_argument m -> fail "inconsistent composite: %s" m
