type float32_design = {
  weights : int array;
  mapping : int array;
  codec : Composite.t;
  sum_w : float;
  elapsed : float;
}

let paper_weights = [| 100; 100; 100; 100; 99; 98; 82; 45; 17; 17; 8; 4; 2; 1; 1; 1 |]

(* Assemble the 32-bit codec: the weighted mapping covers word bits 0..15
   with the two synthesized generators; word bits 16..31 get even parity. *)
let assemble ~mapping ~codes =
  let code0, code1 = codes in
  let upper gi =
    Array.to_list mapping
    |> List.mapi (fun j g -> (j, g))
    |> List.filter (fun (_, g) -> g = gi)
    |> List.map fst
  in
  let parts =
    List.filter
      (fun (_, positions) -> positions <> [])
      [
        (code0, upper 0);
        (code1, upper 1);
        (Hamming.Catalog.parity 16, List.init 16 (fun i -> 16 + i));
      ]
  in
  Composite.create ~word_len:32 parts

let float32_with_weights ?(timeout = 360.0) ?(p = 0.1) weights =
  if Array.length weights <> 16 then
    invalid_arg "Design.float32_with_weights: need exactly 16 weights";
  let start = Unix.gettimeofday () in
  let g0 = { Synth.Weighted.check_len = 5; min_distance = 3 } in
  let g1 = { Synth.Weighted.check_len = 1; min_distance = 2 } in
  match Synth.Weighted.optimize ~timeout ~p ~weights g0 g1 with
  | None -> None
  | Some r ->
      let codec = assemble ~mapping:r.Synth.Weighted.mapping ~codes:r.Synth.Weighted.codes in
      Some
        {
          weights;
          mapping = r.Synth.Weighted.mapping;
          codec;
          sum_w = r.Synth.Weighted.sum_w;
          elapsed = Unix.gettimeofday () -. start;
        }

let float32 ?timeout ?p ?(samples = 50_000) () =
  let profile = Channel.Bitflip.float32_profile ~samples () in
  let weights = Channel.Bitflip.weights_for_upper_bits ~bits:16 profile in
  float32_with_weights ?timeout ?p weights

let halves code_maker =
  lazy
    (Composite.create ~word_len:32
       [
         (code_maker (), List.init 16 Fun.id);
         (code_maker (), List.init 16 (fun i -> 16 + i));
       ])

(* Table 2 row 1: G_1^16 G_1^16 — two even-parity halves. *)
let table2_parity = halves (fun () -> Hamming.Catalog.parity 16)

(* Table 2 row 2: G_6^16 G_6^16 — two (22,16) md-3 halves. *)
let table2_md3 = halves (fun () -> Hamming.Catalog.shortened ~data_len:16 ~check_len:6)

(* Table 2 row 3: G_5^8 G_1^8 G_1^16 with the paper's mapping: upper 8
   bits on the 5-check md-3 code, bits 8..15 on a parity bit, lower 16 on
   a parity bit. *)
let table2_float_specific =
  lazy
    (Composite.create ~word_len:32
       [
         (Hamming.Catalog.shortened ~data_len:8 ~check_len:5, List.init 8 Fun.id);
         (Hamming.Catalog.parity 8, List.init 8 (fun i -> 8 + i));
         (Hamming.Catalog.parity 16, List.init 16 (fun i -> 16 + i));
       ])
