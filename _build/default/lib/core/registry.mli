(** Code descriptors: compact, printable identifiers for generators and
    composite codecs, so endpoints can negotiate and exchange codes
    dynamically (in the spirit of RFC 5109's payload-format FEC
    identifiers, which the paper cites as the mechanism for deploying
    per-format codes). *)

(** Descriptor grammar:
    {v
      code  ::= parity:<k>
              | repetition:<n>
              | perfect:<r>
              | shortened:<k>:<c>
              | extended:(<code>)
              | matrix:<rows with - separators, e.g. 1001-0101>
      comp  ::= <code>@<pos,pos,...>  joined with +
    v} *)

exception Parse_error of string

(** [describe_code code] is a descriptor for a single generator; catalog
    constructions are recognized structurally, anything else becomes a
    [matrix:] literal. *)
val describe_code : Hamming.Code.t -> string

(** [code_of_string s] reconstructs a generator. *)
val code_of_string : string -> Hamming.Code.t

(** [describe composite] / [composite_of_string] round-trip a composite
    codec including its bit assignment. *)
val describe : Composite.t -> string

val composite_of_string : string -> Composite.t
