(** Specialized machine-word codecs compiled from a code's matrices.

    [compile] precomputes one bit mask per check bit so that encoding is a
    handful of AND/XOR/shift operations — the OCaml analog of the
    generator-specific C programs the paper emits in §4.4 and compiles at
    [-O3].  [compile_naive] is the deliberately scalar bit-by-bit variant
    standing in for the unoptimized ([-O0]) build.

    Words are packed into a native [int]: data bit [i] (paper position [i])
    is at integer bit [i]; check bit [j] at integer bit [k + j]. *)

type t = {
  data_len : int;
  check_len : int;
  encode : int -> int;  (** data word to codeword *)
  syndrome : int -> int;  (** codeword to syndrome (0 iff valid) *)
  correct : int -> int option;
      (** [Some w'] when the syndrome is zero (identity) or identifies a
          unique single-bit error (flipped back); [None] if uncorrectable *)
}

(** [compile code] builds the mask-based codec.
    @raise Invalid_argument if the block length exceeds the native word. *)
val compile : Code.t -> t

(** [compile_naive code] builds the scalar per-bit codec with identical
    behaviour. *)
val compile_naive : Code.t -> t

(** [compile_sparse code] builds the XOR-chain codec: each check bit is an
    explicit chain of one shift+XOR per set coefficient bit, so its cost is
    proportional to [Code.set_bits] — the style of the C programs the
    paper emits in §4.4, whose Figure 5 runtimes scale with the set-bit
    count. *)
val compile_sparse : Code.t -> t

(** [of_bitvec codec v] / [to_bitvec codec ~len x] convert between packed
    words and {!Gf2.Bitvec} (paper bit 0 = integer bit 0). *)
val int_of_bitvec : Gf2.Bitvec.t -> int

val bitvec_of_int : len:int -> int -> Gf2.Bitvec.t
