(** Soft-decision Chase-II decoding.

    The 802.3df inner Hamming code the paper verifies in §4.1 is decoded
    in hardware with soft Chase decoding (Bliss et al., the paper's [4]).
    Chase-II: take the hard decision, identify the [t] least-reliable
    positions, try all [2^t] flip patterns over them, decode each with the
    hard (syndrome) decoder, and keep the candidate codeword closest to
    the received soft values — recovering most multi-bit error patterns a
    hard decoder would miss. *)

type result = {
  codeword : Gf2.Bitvec.t;
  data : Gf2.Bitvec.t;
  soft_distance : float;  (** correlation distance of the winner *)
  candidates_tried : int;
}

(** [decode ?test_positions code llrs] runs Chase-II with [t]
    least-reliable test positions (default 4).  [llrs.(i) > 0] means bit
    [i] is more likely 0; magnitudes are reliabilities.  Returns [None]
    when no flip pattern yields a decodable word.
    @raise Invalid_argument if the LLR count differs from the block
    length. *)
val decode : ?test_positions:int -> Code.t -> float array -> result option

(** [decode_hard code llrs] is the baseline: hard decision + syndrome
    correction only (for comparing against Chase in benchmarks). *)
val decode_hard : Code.t -> float array -> Gf2.Bitvec.t option
