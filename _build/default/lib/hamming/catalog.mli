(** Constructors for classical Hamming-family codes, plus the generators
    used in the paper's experiments. *)

(** [parity k] is the single-check even-parity code (k, 1): minimum
    distance 2, detects all single-bit errors — the code the paper's
    synthesizer rediscovers as [G_1^16] in §4.3. *)
val parity : int -> Code.t

(** [repetition n] is the 1-data-bit, (n-1)-check repetition code with
    minimum distance [n]. *)
val repetition : int -> Code.t

(** [perfect r] is the perfect Hamming code with [r >= 2] check bits:
    data length [2^r - 1 - r], block length [2^r - 1], minimum distance 3. *)
val perfect : int -> Code.t

(** [shortened ~data_len ~check_len] is a shortened Hamming code: the
    check-matrix data columns are the lexicographically first
    [data_len] distinct non-zero, non-unit vectors of [check_len] bits
    (ordered by ascending weight).  Minimum distance 3 whenever
    [data_len >= 1].
    @raise Invalid_argument if [data_len > 2^check_len - 1 - check_len]. *)
val shortened : data_len:int -> check_len:int -> Code.t

(** [extend code] appends one overall-parity check bit, raising an
    odd minimum distance by one (e.g. 3 to 4). *)
val extend : Code.t -> Code.t

(** [ieee_128_120] is the (128,120) shortened Hamming generator standing in
    for the 802.3df inner-FEC code of Bliss et al. verified in the paper's
    §4.1: same family, same parameters, minimum distance 3 (and not 4). *)
val ieee_128_120 : Code.t Lazy.t

(** [fig2_7_4] is the paper's Figure 2 (7,4) generator [G_3^4]. *)
val fig2_7_4 : Code.t Lazy.t

(** [paper_g5_4] is the synthesized generator [G_5^4] printed in §4.2
    (minimum distance 4, 5 check bits). *)
val paper_g5_4 : Code.t Lazy.t

(** [paper_multibit_15_4] is the hand-crafted §6 generator extending the
    (7,4) code with 8 additional check bits so that check-matrix column
    pair sums are all distinct, detecting all 1- and 2-bit errors. *)
val paper_multibit_15_4 : Code.t Lazy.t
