open Gf2

type t = {
  k : int;
  c : int;
  p : Matrix.t; (* k×c coefficient matrix *)
  g : Matrix.t Lazy.t; (* (I_k | P) *)
  h : Matrix.t Lazy.t; (* (P^T | I_c) *)
  syndrome_index : (Bitvec.t, int) Hashtbl.t Lazy.t; (* column -> position *)
}

type decode_result =
  | Valid of Bitvec.t
  | Corrected of Bitvec.t * int
  | Uncorrectable of Bitvec.t

let make ~p =
  let k = Matrix.rows p and c = Matrix.cols p in
  let g = lazy (Matrix.concat_h (Matrix.identity k) p) in
  let h = lazy (Matrix.concat_h (Matrix.transpose p) (Matrix.identity c)) in
  let syndrome_index =
    lazy
      (let tbl = Hashtbl.create (k + c) in
       let hm = Lazy.force h in
       (* first column wins: ambiguous (repeated) columns decode to the
          earliest position, matching syndrome-table decoders *)
       for j = (k + c) - 1 downto 0 do
         Hashtbl.replace tbl (Matrix.col hm j) j
       done;
       tbl)
  in
  { k; c; p; g; h; syndrome_index }

let of_generator g =
  let k = Matrix.rows g in
  if Matrix.cols g < k then
    invalid_arg "Code.of_generator: more rows than columns";
  if not (Matrix.is_identity_prefix g k) then
    invalid_arg "Code.of_generator: generator is not in systematic (I|P) form";
  make ~p:(Matrix.sub_cols g ~pos:k ~len:(Matrix.cols g - k))

(* Reduce H to reveal a pivot basis, move the pivot columns to the check
   positions, and read the coefficient matrix off the reduced form: with
   columns ordered (non-pivots | pivots), RREF(H) = (A | I_r) and the
   systematic convention H = (P^T | I_r) gives P = A^T. *)
let of_check_matrix h =
  let r = Matrix.rows h and n = Matrix.cols h in
  let rref = Matrix.row_reduce h in
  (* pivot column of each row: the first set entry *)
  let pivots =
    Array.init r (fun row ->
        let rec find c =
          if c >= n then invalid_arg "Code.of_check_matrix: H is not full row rank"
          else if Matrix.get rref row c then c
          else find (c + 1)
        in
        find 0)
  in
  let is_pivot = Array.make n false in
  Array.iter (fun c -> is_pivot.(c) <- true) pivots;
  let non_pivots =
    List.filter (fun c -> not is_pivot.(c)) (List.init n Fun.id)
  in
  let perm = Array.of_list (non_pivots @ Array.to_list pivots) in
  let k = n - r in
  (* in RREF, row [row] has a 1 in data column c iff that column's
     coefficient against pivot [row] is set *)
  let p =
    Matrix.init ~rows:k ~cols:r (fun i j -> Matrix.get rref j perm.(i))
  in
  (make ~p, perm)

let data_len t = t.k
let check_len t = t.c
let block_len t = t.k + t.c
let coefficient_matrix t = t.p
let generator t = Lazy.force t.g
let check_matrix t = Lazy.force t.h
let set_bits t = Matrix.popcount t.p

let encode t d =
  if Bitvec.length d <> t.k then
    invalid_arg
      (Printf.sprintf "Code.encode: data length %d, expected %d" (Bitvec.length d) t.k);
  (* systematic: codeword = data ++ d·P, avoiding the full generator *)
  Bitvec.append d (Matrix.vec_mul d t.p)

let syndrome t w =
  if Bitvec.length w <> t.k + t.c then
    invalid_arg
      (Printf.sprintf "Code.syndrome: word length %d, expected %d" (Bitvec.length w)
         (t.k + t.c));
  (* H·w = P^T·data + check, computed blockwise *)
  let data = Bitvec.sub w 0 t.k in
  let check = Bitvec.sub w t.k t.c in
  Bitvec.xor (Matrix.vec_mul data t.p) check

let is_valid t w = Bitvec.is_zero (syndrome t w)
let data_of t w = Bitvec.sub w 0 t.k

let decode t w =
  let s = syndrome t w in
  if Bitvec.is_zero s then Valid (data_of t w)
  else
    match Hashtbl.find_opt (Lazy.force t.syndrome_index) s with
    | Some j ->
        let w' = Bitvec.copy w in
        Bitvec.flip w' j;
        Corrected (data_of t w', j)
    | None -> Uncorrectable s

let equal a b = Matrix.equal a.p b.p
let to_string t = Matrix.to_string (generator t)
let of_string s = of_generator (Matrix.of_string_rows s)
let pp fmt t = Matrix.pp fmt (generator t)
