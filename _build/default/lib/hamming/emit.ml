open Gf2

type style = Xor_chain | Mask

let check_masks code =
  let c = Code.check_len code in
  let p = Code.coefficient_matrix code in
  Array.init c (fun j -> Fastcodec.int_of_bitvec (Matrix.col p j))

let check_chains code =
  let k = Code.data_len code and c = Code.check_len code in
  let p = Code.coefficient_matrix code in
  Array.init c (fun j ->
      let acc = ref [] in
      for i = k - 1 downto 0 do
        if Matrix.get p i j then acc := i :: !acc
      done;
      !acc)

let validate code =
  if Code.block_len code > 64 then invalid_arg "Emit: block length exceeds 64 bits"

(* C expression computing the parity feeding check bit j, before `& 1` *)
let c_check_expr style masks chains var j =
  match style with
  | Mask -> Printf.sprintf "parity64(%s & UINT64_C(0x%Lx))" var (Int64.of_int masks.(j))
  | Xor_chain -> (
      match chains.(j) with
      | [] -> "0u"
      | chain ->
          "("
          ^ String.concat " ^ "
              (List.map (fun i -> Printf.sprintf "(%s >> %d)" var i) chain)
          ^ ") & 1u")

let c_source ?(style = Xor_chain) ?(name = "fec") code =
  validate code;
  let k = Code.data_len code and c = Code.check_len code in
  let masks = check_masks code in
  let chains = check_chains code in
  let buf = Buffer.create 2048 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "/* Generated encoder/checker for a (%d,%d) systematic code (%s style). */\n"
    (k + c) k
    (match style with Xor_chain -> "xor-chain" | Mask -> "mask");
  pf "#include <stdint.h>\n#include <stdio.h>\n#include <time.h>\n\n";
  (match style with
  | Mask ->
      pf "static inline uint64_t parity64(uint64_t x) {\n";
      pf "  x ^= x >> 32; x ^= x >> 16; x ^= x >> 8;\n";
      pf "  x ^= x >> 4;  x ^= x >> 2;  x ^= x >> 1;\n";
      pf "  return x & 1u;\n}\n\n"
  | Xor_chain -> ());
  let wrap expr = match style with Mask -> expr | Xor_chain -> expr in
  pf "uint64_t %s_encode(uint64_t data) {\n" name;
  pf "  uint64_t w = data;\n";
  for j = 0 to c - 1 do
    pf "  w |= (uint64_t)(%s) << %d;\n" (wrap (c_check_expr style masks chains "data" j)) (k + j)
  done;
  pf "  return w;\n}\n\n";
  pf "uint64_t %s_syndrome(uint64_t word) {\n" name;
  pf "  uint64_t data = word & UINT64_C(0x%Lx);\n" (Int64.of_int ((1 lsl k) - 1));
  pf "  uint64_t s = 0;\n";
  for j = 0 to c - 1 do
    pf "  s |= (uint64_t)(((%s) ^ ((word >> %d) & 1u)) & 1u) << %d;\n"
      (c_check_expr style masks chains "data" j)
      (k + j) j
  done;
  pf "  return s;\n}\n\n";
  pf "int main(void) {\n";
  pf "  uint64_t acc = 0;\n";
  pf "  clock_t start = clock();\n";
  pf "  for (uint64_t d = 0; d < UINT64_C(4294967296); d += 21) {\n";
  pf "    uint64_t w = %s_encode(d & UINT64_C(0x%Lx));\n" name
    (Int64.of_int ((1 lsl k) - 1));
  pf "    acc ^= w ^ %s_syndrome(w);\n" name;
  pf "  }\n";
  pf "  double secs = (double)(clock() - start) / CLOCKS_PER_SEC;\n";
  pf "  printf(\"checksum=%%llu time=%%f\\n\", (unsigned long long)acc, secs);\n";
  pf "  return 0;\n}\n";
  Buffer.contents buf

let ml_check_expr style masks chains var j =
  match style with
  | Mask -> Printf.sprintf "parity_word (%s land 0x%x)" var masks.(j)
  | Xor_chain -> (
      match chains.(j) with
      | [] -> "0"
      | chain ->
          "("
          ^ String.concat " lxor "
              (List.map (fun i -> Printf.sprintf "(%s lsr %d)" var i) chain)
          ^ ") land 1")

let ocaml_source ?(style = Xor_chain) ?(name = "fec") code =
  validate code;
  let k = Code.data_len code and c = Code.check_len code in
  let masks = check_masks code in
  let chains = check_chains code in
  let buf = Buffer.create 2048 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "(* Generated encoder/checker for a (%d,%d) systematic code (%s style). *)\n"
    (k + c) k
    (match style with Xor_chain -> "xor-chain" | Mask -> "mask");
  (match style with
  | Mask ->
      pf "let parity_word x =\n";
      pf "  let x = x lxor (x lsr 32) in let x = x lxor (x lsr 16) in\n";
      pf "  let x = x lxor (x lsr 8) in let x = x lxor (x lsr 4) in\n";
      pf "  let x = x lxor (x lsr 2) in let x = x lxor (x lsr 1) in\n";
      pf "  x land 1\n\n"
  | Xor_chain -> ());
  pf "let %s_encode data =\n" name;
  pf "  let w = ref data in\n";
  for j = 0 to c - 1 do
    pf "  w := !w lor ((%s) lsl %d);\n" (ml_check_expr style masks chains "data" j) (k + j)
  done;
  pf "  !w\n\n";
  pf "let %s_syndrome word =\n" name;
  pf "  let data = word land 0x%x in\n" ((1 lsl k) - 1);
  pf "  let s = ref 0 in\n";
  for j = 0 to c - 1 do
    pf "  s := !s lor ((((%s) lxor ((word lsr %d) land 1)) land 1) lsl %d);\n"
      (ml_check_expr style masks chains "data" j)
      (k + j) j
  done;
  pf "  !s\n";
  Buffer.contents buf
