lib/hamming/catalog.ml: Array Bitvec Code Gf2 Int List Matrix Printf
