lib/hamming/fastcodec.ml: Array Bitvec Code Gf2 Hashtbl Matrix Printf Sys
