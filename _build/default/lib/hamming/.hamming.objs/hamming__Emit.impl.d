lib/hamming/emit.ml: Array Buffer Code Fastcodec Gf2 Int64 List Matrix Printf String
