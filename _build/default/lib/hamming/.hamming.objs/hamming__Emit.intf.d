lib/hamming/emit.mli: Code
