lib/hamming/code.mli: Format Gf2
