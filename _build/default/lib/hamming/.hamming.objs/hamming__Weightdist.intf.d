lib/hamming/weightdist.mli: Code
