lib/hamming/fastcodec.mli: Code Gf2
