lib/hamming/distance.ml: Array Bitvec Card Code Ctx Expr Fun Gf2 List Matrix Sat Smtlite
