lib/hamming/code.ml: Array Bitvec Fun Gf2 Hashtbl Lazy List Matrix Printf
