lib/hamming/multibit.ml: Array Bitvec Code Gf2 Hashtbl List Matrix
