lib/hamming/chase.ml: Array Bitvec Code Float Fun Gf2 Printf
