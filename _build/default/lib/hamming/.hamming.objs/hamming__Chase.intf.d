lib/hamming/chase.mli: Code Gf2
