lib/hamming/robustness.mli: Code
