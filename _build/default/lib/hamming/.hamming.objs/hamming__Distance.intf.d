lib/hamming/distance.mli: Code Gf2
