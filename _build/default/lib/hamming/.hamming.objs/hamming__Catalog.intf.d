lib/hamming/catalog.mli: Code Lazy
