lib/hamming/multibit.mli: Code Gf2
