lib/hamming/robustness.ml: Code Distance
