lib/hamming/weightdist.ml: Array Bitvec Code Gf2 Matrix
