open Gf2

type t = {
  data_len : int;
  check_len : int;
  encode : int -> int;
  syndrome : int -> int;
  correct : int -> int option;
}

let parity_word x =
  let x = x lxor (x lsr 32) in
  let x = x lxor (x lsr 16) in
  let x = x lxor (x lsr 8) in
  let x = x lxor (x lsr 4) in
  let x = x lxor (x lsr 2) in
  let x = x lxor (x lsr 1) in
  x land 1

let int_of_bitvec v =
  if Bitvec.length v > Sys.int_size - 1 then
    invalid_arg "Fastcodec.int_of_bitvec: vector too long";
  let acc = ref 0 in
  Bitvec.iter_set (fun i -> acc := !acc lor (1 lsl i)) v;
  !acc

let bitvec_of_int ~len x = Bitvec.init len (fun i -> (x lsr i) land 1 = 1)

let check_dims code =
  if Code.block_len code > Sys.int_size - 1 then
    invalid_arg
      (Printf.sprintf "Fastcodec: block length %d exceeds native word"
         (Code.block_len code))

(* Syndrome of a single-bit error at codeword position j = column j of H. *)
let column_syndromes code =
  let k = Code.data_len code and c = Code.check_len code in
  let p = Code.coefficient_matrix code in
  Array.init (k + c) (fun j ->
      if j < k then int_of_bitvec (Matrix.row p j) else 1 lsl (j - k))

let make_correct code syndrome =
  let cols = column_syndromes code in
  let table = Hashtbl.create (Array.length cols) in
  Array.iteri
    (fun j s -> if not (Hashtbl.mem table s) then Hashtbl.add table s j)
    cols;
  fun w ->
    let s = syndrome w in
    if s = 0 then Some w
    else
      match Hashtbl.find_opt table s with
      | Some j -> Some (w lxor (1 lsl j))
      | None -> None

let compile code =
  check_dims code;
  let k = Code.data_len code and c = Code.check_len code in
  let p = Code.coefficient_matrix code in
  (* mask.(j) selects the data bits feeding check bit j *)
  let masks = Array.init c (fun j -> int_of_bitvec (Matrix.col p j)) in
  let encode d =
    let w = ref d in
    for j = 0 to c - 1 do
      w := !w lor (parity_word (d land masks.(j)) lsl (k + j))
    done;
    !w
  in
  let data_mask = (1 lsl k) - 1 in
  let syndrome w =
    let d = w land data_mask in
    let s = ref 0 in
    for j = 0 to c - 1 do
      s := !s lor ((parity_word (d land masks.(j)) lxor ((w lsr (k + j)) land 1)) lsl j)
    done;
    !s
  in
  { data_len = k; check_len = c; encode; syndrome; correct = make_correct code syndrome }

let compile_sparse code =
  check_dims code;
  let k = Code.data_len code and c = Code.check_len code in
  let p = Code.coefficient_matrix code in
  (* chains.(j) lists the data-bit positions feeding check bit j *)
  let chains =
    Array.init c (fun j ->
        let acc = ref [] in
        for i = k - 1 downto 0 do
          if Matrix.get p i j then acc := i :: !acc
        done;
        Array.of_list !acc)
  in
  let encode d =
    let w = ref d in
    for j = 0 to c - 1 do
      let chain = chains.(j) in
      let acc = ref 0 in
      for idx = 0 to Array.length chain - 1 do
        acc := !acc lxor (d lsr chain.(idx))
      done;
      w := !w lor ((!acc land 1) lsl (k + j))
    done;
    !w
  in
  let syndrome w =
    let s = ref 0 in
    for j = 0 to c - 1 do
      let chain = chains.(j) in
      let acc = ref (w lsr (k + j)) in
      for idx = 0 to Array.length chain - 1 do
        acc := !acc lxor (w lsr chain.(idx))
      done;
      s := !s lor ((!acc land 1) lsl j)
    done;
    !s
  in
  { data_len = k; check_len = c; encode; syndrome; correct = make_correct code syndrome }

let compile_naive code =
  check_dims code;
  let k = Code.data_len code and c = Code.check_len code in
  let p = Code.coefficient_matrix code in
  let bit m i j = if Matrix.get m i j then 1 else 0 in
  let encode d =
    let w = ref d in
    for j = 0 to c - 1 do
      let parity = ref 0 in
      for i = 0 to k - 1 do
        parity := !parity lxor (((d lsr i) land 1) land bit p i j)
      done;
      w := !w lor (!parity lsl (k + j))
    done;
    !w
  in
  let syndrome w =
    let s = ref 0 in
    for j = 0 to c - 1 do
      let parity = ref ((w lsr (k + j)) land 1) in
      for i = 0 to k - 1 do
        parity := !parity lxor (((w lsr i) land 1) land bit p i j)
      done;
      s := !s lor (!parity lsl j)
    done;
    !s
  in
  { data_len = k; check_len = c; encode; syndrome; correct = make_correct code syndrome }
