(** Analytic robustness of block codes under a binary symmetric channel
    with bit-error probability [p] (paper §2.2). *)

(** [choose n k] is the binomial coefficient as a float (exact for the
    ranges used here). *)
val choose : int -> int -> float

(** [prob_flips_ge ~n ~m ~p] is the probability that at least [m] of [n]
    independent bits flip: [Σ_{j=m}^{n} C(n,j) p^j (1-p)^{n-j}] — the
    paper's exact [P_u] formula. *)
val prob_flips_ge : n:int -> m:int -> p:float -> float

(** [undetected_error_probability code ~p] is [prob_flips_ge] instantiated
    with the code's block length and minimum distance — the paper's
    [P_u(G_c^k)] upper bound on undetected-error probability. *)
val undetected_error_probability : Code.t -> p:float -> float

(** [approx_undetected code ~p] is the paper's one-term approximation
    [C(n,m) · p^m] ([chooseTimesPow]). *)
val approx_undetected : Code.t -> p:float -> float

(** [choose_times_pow ~n ~m ~p] is [C(n,m) · p^m] for arbitrary
    parameters — the coefficient table the weighted-synthesis objective
    of §4.3 is built from. *)
val choose_times_pow : n:int -> m:int -> p:float -> float
