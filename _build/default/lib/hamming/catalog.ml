open Gf2

let parity k =
  if k < 1 then invalid_arg "Catalog.parity: need at least one data bit";
  Code.make ~p:(Matrix.init ~rows:k ~cols:1 (fun _ _ -> true))

let repetition n =
  if n < 2 then invalid_arg "Catalog.repetition: need block length >= 2";
  Code.make ~p:(Matrix.init ~rows:1 ~cols:(n - 1) (fun _ _ -> true))

(* Distinct non-zero non-unit syndrome columns, ascending weight then
   numeric value: a deterministic choice that keeps the coefficient matrix
   sparse. *)
let syndrome_columns ~check_len ~count =
  let all = List.init ((1 lsl check_len) - 1) (fun x -> x + 1) in
  let non_unit = List.filter (fun x -> x land (x - 1) <> 0) all in
  let weight x =
    let rec go x acc = if x = 0 then acc else go (x land (x - 1)) (acc + 1) in
    go x 0
  in
  let sorted =
    List.sort
      (fun a b ->
        match Int.compare (weight a) (weight b) with 0 -> Int.compare a b | c -> c)
      non_unit
  in
  if List.length sorted < count then
    invalid_arg
      (Printf.sprintf
         "Catalog.shortened: %d data columns requested but only %d available with %d check bits"
         count (List.length sorted) check_len);
  List.filteri (fun i _ -> i < count) sorted

let shortened ~data_len ~check_len =
  if check_len < 2 then invalid_arg "Catalog.shortened: need at least 2 check bits";
  let cols = Array.of_list (syndrome_columns ~check_len ~count:data_len) in
  (* row i of P is the syndrome assigned to data bit i, LSB at column 0 *)
  let p =
    Matrix.init ~rows:data_len ~cols:check_len (fun i j -> (cols.(i) lsr j) land 1 = 1)
  in
  Code.make ~p

let perfect r =
  if r < 2 then invalid_arg "Catalog.perfect: need r >= 2";
  shortened ~data_len:((1 lsl r) - 1 - r) ~check_len:r

let extend code =
  let k = Code.data_len code and c = Code.check_len code in
  let p = Code.coefficient_matrix code in
  (* the extra check bit makes every generator row have even weight, so all
     codewords gain even overall parity *)
  let p' =
    Matrix.init ~rows:k ~cols:(c + 1) (fun i j ->
        if j < c then Matrix.get p i j
        else (1 + Bitvec.popcount (Matrix.row p i)) land 1 = 1)
  in
  Code.make ~p:p'

let ieee_128_120 = lazy (shortened ~data_len:120 ~check_len:8)

let fig2_7_4 =
  lazy (Code.of_string "1000101\n0100110\n0010111\n0001011")

let paper_g5_4 =
  lazy
    (Code.of_string
       "100001111\n010010110\n001010101\n000111100")

(* §6: the (7,4) check matrix extended with two extra identity blocks over
   the data bits, making every pair of check-matrix columns sum uniquely. *)
let paper_multibit_15_4 =
  lazy
    (let base = [ 0b1110; 0b0111; 0b1011 ] in
     let units = [ 0b1000; 0b0100; 0b0010; 0b0001 ] in
     let pt_rows = base @ units @ units in
     let c = List.length pt_rows in
     let pt = Array.of_list pt_rows in
     (* pt.(j) holds the data-bit selections of check bit j, MSB = data 0 *)
     let p = Matrix.init ~rows:4 ~cols:c (fun i j -> (pt.(j) lsr (3 - i)) land 1 = 1) in
     Code.make ~p)
