open Gf2

(* Enumerate error patterns of weight 1..e over n positions with their
   syndromes (the XOR of the corresponding check-matrix columns). *)
let iter_patterns code e f =
  let n = Code.block_len code in
  let h = Code.check_matrix code in
  let cols = Array.init n (fun j -> Matrix.col h j) in
  let c = Code.check_len code in
  let rec go start pattern syn weight =
    if weight > 0 then f (List.rev pattern) syn;
    if weight < e then
      for j = start to n - 1 do
        go (j + 1) (j :: pattern) (Bitvec.xor syn cols.(j)) (weight + 1)
      done
  in
  go 0 [] (Bitvec.create c) 0

let syndrome_table code e =
  let tbl = Hashtbl.create 256 in
  let unique = ref true in
  iter_patterns code e (fun pattern syn ->
      if Bitvec.is_zero syn then unique := false
      else
        match Hashtbl.find_opt tbl syn with
        | Some _ -> unique := false
        | None -> Hashtbl.add tbl syn pattern);
  (tbl, !unique)

let distinguishes_up_to code e =
  let _, unique = syndrome_table code e in
  unique

let pair_sums_unique code = distinguishes_up_to code 2

let max_distinguishable code =
  let rec go e = if distinguishes_up_to code (e + 1) then go (e + 1) else e in
  go 0

let correct_up_to code e w =
  let tbl, unique = syndrome_table code e in
  if not unique then
    invalid_arg "Multibit.correct_up_to: code cannot distinguish these patterns";
  let s = Code.syndrome code w in
  if Bitvec.is_zero s then Some (Bitvec.copy w)
  else
    match Hashtbl.find_opt tbl s with
    | None -> None
    | Some pattern ->
        let w' = Bitvec.copy w in
        List.iter (fun j -> Bitvec.flip w' j) pattern;
        Some w'
