open Gf2

(* Gray-code walk over all data words: successive words differ in one bit,
   so each codeword is the previous XOR one generator row. *)
let distribution code =
  let k = Code.data_len code in
  if k > 28 then
    invalid_arg "Weightdist.distribution: data length too large for exact enumeration";
  let n = Code.block_len code in
  let g = Code.generator code in
  let rows = Array.init k (fun i -> Matrix.row g i) in
  let counts = Array.make (n + 1) 0 in
  let current = Bitvec.create n in
  counts.(0) <- 1;
  (* i-th Gray transition flips data bit = number of trailing ones of i *)
  let total = (1 lsl k) - 1 in
  for i = 1 to total do
    let bit =
      let rec go x acc = if x land 1 = 1 then go (x lsr 1) (acc + 1) else acc in
      go (i - 1) 0
    in
    Bitvec.xor_in_place current rows.(bit);
    let w = Bitvec.popcount current in
    counts.(w) <- counts.(w) + 1
  done;
  counts

let exact_undetected_probability code ~p =
  let dist = distribution code in
  let n = Code.block_len code in
  let acc = ref 0.0 in
  for w = 1 to n do
    if dist.(w) > 0 then
      acc :=
        !acc
        +. (float_of_int dist.(w)
           *. (p ** float_of_int w)
           *. ((1.0 -. p) ** float_of_int (n - w)))
  done;
  !acc

let min_distance_of_distribution dist =
  let rec go w =
    if w >= Array.length dist then Array.length dist
    else if dist.(w) > 0 then w
    else go (w + 1)
  in
  go 1
