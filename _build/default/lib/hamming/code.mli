(** Systematic Hamming-style block codes over GF(2).

    A code is represented by its coefficient matrix [P] (the paper's
    notation): the generator is the block matrix [G = (I_k | P)] and the
    check matrix is [H = (P^T | I_c)], where [k] is the data length and
    [c] the number of check bits.  Codewords carry the data systematically
    in their first [k] bits, followed by [c] check bits. *)

type t

(** Result of decoding a received word. *)
type decode_result =
  | Valid of Gf2.Bitvec.t  (** zero syndrome; data extracted as-is *)
  | Corrected of Gf2.Bitvec.t * int
      (** syndrome matched check-matrix column [j]: single-bit error at
          codeword position [j] was flipped back; corrected data returned *)
  | Uncorrectable of Gf2.Bitvec.t
      (** non-zero syndrome matching no column: error detected but not
          correctable; the syndrome is returned *)

(** [make ~p] builds a code from its [k]-by-[c] coefficient matrix. *)
val make : p:Gf2.Matrix.t -> t

(** [of_generator g] builds a code from a full systematic generator
    [(I_k | P)].
    @raise Invalid_argument if the left block is not the identity. *)
val of_generator : Gf2.Matrix.t -> t

(** [of_check_matrix h] builds a systematic code from an arbitrary
    full-row-rank parity-check matrix [h] (rows = checks, columns =
    codeword positions), as used by LDPC and other H-first constructions.
    Columns are permuted so that a pivot basis lands in the check
    positions; the returned array maps each position of the systematic
    code to the original column of [h] ([perm.(i)] = original column of
    systematic position [i]).
    @raise Invalid_argument if [h] does not have full row rank. *)
val of_check_matrix : Gf2.Matrix.t -> t * int array

(** [data_len t] is [k], the number of data bits per word. *)
val data_len : t -> int

(** [check_len t] is [c], the number of check bits per word. *)
val check_len : t -> int

(** [block_len t] is [n = k + c], the codeword length. *)
val block_len : t -> int

(** [coefficient_matrix t] is [P] ([k]-by-[c]). *)
val coefficient_matrix : t -> Gf2.Matrix.t

(** [generator t] is [G = (I_k | P)] ([k]-by-[n]). *)
val generator : t -> Gf2.Matrix.t

(** [check_matrix t] is [H = (P^T | I_c)] ([c]-by-[n]). *)
val check_matrix : t -> Gf2.Matrix.t

(** [set_bits t] is the number of ones in the coefficient matrix — the
    paper's [len_1], minimized in its §4.4 experiment. *)
val set_bits : t -> int

(** [encode t d] is the codeword [d · G].
    @raise Invalid_argument if [Bitvec.length d <> data_len t]. *)
val encode : t -> Gf2.Bitvec.t -> Gf2.Bitvec.t

(** [syndrome t w] is the check bits [H · w^T].
    @raise Invalid_argument if [Bitvec.length w <> block_len t]. *)
val syndrome : t -> Gf2.Bitvec.t -> Gf2.Bitvec.t

(** [is_valid t w] holds iff [w] is a codeword (zero syndrome). *)
val is_valid : t -> Gf2.Bitvec.t -> bool

(** [data_of t w] is the systematic data prefix of [w]. *)
val data_of : t -> Gf2.Bitvec.t -> Gf2.Bitvec.t

(** [decode t w] checks and, when the syndrome identifies a unique
    single-bit error position, corrects the received word. *)
val decode : t -> Gf2.Bitvec.t -> decode_result

(** [equal a b] holds iff the codes have identical coefficient matrices. *)
val equal : t -> t -> bool

(** [to_string t] renders the generator matrix rows ([I|P], ['0']/['1']).
    [of_string] parses it back (inverse of [to_string]). *)
val to_string : t -> string

val of_string : string -> t

(** [pp] formats the generator matrix. *)
val pp : Format.formatter -> t -> unit
