(** Multi-bit error detection and correction (paper §6).

    A code can pinpoint every error pattern of weight at most [e] iff all
    such patterns have distinct non-zero syndromes; the paper's §6
    construction achieves [e = 2] by making every pair of check-matrix
    columns sum uniquely. *)

(** [pair_sums_unique code] is the paper's stated property: all single
    columns and all pairwise column sums of the check matrix are non-zero
    and mutually distinct. *)
val pair_sums_unique : Code.t -> bool

(** [distinguishes_up_to code e] holds iff every error pattern of weight
    [1..e] has a distinct non-zero syndrome — the general form of the §6
    property ([e = 1] is ordinary single-error correction). *)
val distinguishes_up_to : Code.t -> int -> bool

(** [max_distinguishable code] is the largest [e] (possibly 0) such that
    [distinguishes_up_to code e]. *)
val max_distinguishable : Code.t -> int

(** [correct_up_to code e w] decodes received word [w] against the table
    of all error patterns of weight at most [e]: returns the corrected
    codeword, or [None] if the syndrome matches no such pattern.
    @raise Invalid_argument if [distinguishes_up_to code e] is false. *)
val correct_up_to : Code.t -> int -> Gf2.Bitvec.t -> Gf2.Bitvec.t option
