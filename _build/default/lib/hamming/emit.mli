(** Source-code emitters: generator-specific encode/check routines built
    only from AND/XOR/shift operators, as in the paper's §4.4 experiment
    which emitted one C program per synthesized generator. *)

(** Code-generation style for the specialized routines. *)
type style =
  | Xor_chain
      (** one shift+XOR per set coefficient bit — the paper's §4.4 style,
          whose cost scales with [Code.set_bits] (Figure 5) *)
  | Mask  (** one AND+parity per check bit, independent of set bits *)

(** [c_source ?style ?name code] is a complete, self-contained C
    translation unit defining [uint64_t <name>_encode(uint64_t data)] and
    [uint64_t <name>_syndrome(uint64_t word)], plus a [main] that sweeps
    data words with the paper's stride of 21 and prints a checksum and
    timing.  Default style is [Xor_chain], as in the paper.  Requires
    block length <= 64. *)
val c_source : ?style:style -> ?name:string -> Code.t -> string

(** [ocaml_source ?style ?name code] is the analogous OCaml module
    source. *)
val ocaml_source : ?style:style -> ?name:string -> Code.t -> string

(** [check_masks code] is the per-check-bit data-selection masks the
    emitters embed, exposed for tests ([masks.(j)] selects the data bits
    feeding check bit [j]). *)
val check_masks : Code.t -> int array
