let choose n k =
  if k < 0 || k > n then 0.0
  else begin
    let k = min k (n - k) in
    let acc = ref 1.0 in
    for i = 1 to k do
      acc := !acc *. float_of_int (n - k + i) /. float_of_int i
    done;
    !acc
  end

let prob_flips_ge ~n ~m ~p =
  if m <= 0 then 1.0
  else begin
    let acc = ref 0.0 in
    for j = m to n do
      acc :=
        !acc
        +. choose n j *. (p ** float_of_int j) *. ((1.0 -. p) ** float_of_int (n - j))
    done;
    !acc
  end

let choose_times_pow ~n ~m ~p = choose n m *. (p ** float_of_int m)

let undetected_error_probability code ~p =
  let n = Code.block_len code in
  let m = Distance.min_distance code in
  prob_flips_ge ~n ~m ~p

let approx_undetected code ~p =
  let n = Code.block_len code in
  let m = Distance.min_distance code in
  choose_times_pow ~n ~m ~p
