(** Exact weight distributions of linear codes.

    The paper's robustness formula [P_u] (§2.2) is the probability of at
    least [md] channel flips — an upper bound on undetected errors (the
    upper curve of its Figure 4).  The exact undetected-error probability
    follows from the code's weight enumerator instead: an error pattern
    goes undetected iff it is itself a non-zero codeword, so

    [P_undetected = Σ_{w >= 1} A_w · p^w · (1-p)^(n-w)]

    where [A_w] counts codewords of weight [w].  This module computes
    [A_w] exactly (Gray-code enumeration of all [2^k] codewords) and the
    resulting probability — the analytic counterpart of Figure 4's lower
    curve. *)

(** [distribution code] is the array [A] of length [n+1] with [A.(w)] the
    number of codewords of Hamming weight [w] ([A.(0) = 1]).
    @raise Invalid_argument if [data_len code > 28] (2^k enumeration). *)
val distribution : Code.t -> int array

(** [exact_undetected_probability code ~p] is the exact probability that a
    binary symmetric channel with bit-error probability [p] maps a
    codeword to a different valid codeword. *)
val exact_undetected_probability : Code.t -> p:float -> float

(** [min_distance_of_distribution dist] is the smallest non-zero weight —
    a cross-check for {!Distance.min_distance}. *)
val min_distance_of_distribution : int array -> int
