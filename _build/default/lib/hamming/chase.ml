open Gf2

type result = {
  codeword : Bitvec.t;
  data : Bitvec.t;
  soft_distance : float;
  candidates_tried : int;
}

let hard_decision llrs =
  Bitvec.init (Array.length llrs) (fun i -> llrs.(i) < 0.0)

(* Euclidean-style metric: sum of reliabilities of the positions where the
   candidate disagrees with the hard decision — minimizing it maximizes
   correlation with the received soft values. *)
let soft_distance llrs candidate =
  let acc = ref 0.0 in
  Bitvec.iteri
    (fun i bit ->
      let hard_bit = llrs.(i) < 0.0 in
      if bit <> hard_bit then acc := !acc +. Float.abs llrs.(i))
    candidate;
  !acc

let syndrome_decode code word =
  match Code.decode code word with
  | Code.Valid _ -> Some (Bitvec.copy word)
  | Code.Corrected (_, pos) ->
      let w = Bitvec.copy word in
      Bitvec.flip w pos;
      Some w
  | Code.Uncorrectable _ -> None

let decode ?(test_positions = 4) code llrs =
  let n = Code.block_len code in
  if Array.length llrs <> n then
    invalid_arg
      (Printf.sprintf "Chase.decode: %d LLRs for block length %d" (Array.length llrs) n);
  if test_positions < 0 || test_positions > 20 then
    invalid_arg "Chase.decode: test_positions out of range [0,20]";
  let hard = hard_decision llrs in
  (* indices of the t least-reliable positions *)
  let order = Array.init n Fun.id in
  Array.sort (fun a b -> Float.compare (Float.abs llrs.(a)) (Float.abs llrs.(b))) order;
  let t = min test_positions n in
  let best = ref None in
  let tried = ref 0 in
  for pattern = 0 to (1 lsl t) - 1 do
    let trial = Bitvec.copy hard in
    for j = 0 to t - 1 do
      if (pattern lsr j) land 1 = 1 then Bitvec.flip trial order.(j)
    done;
    match syndrome_decode code trial with
    | None -> ()
    | Some candidate ->
        incr tried;
        let d = soft_distance llrs candidate in
        (match !best with
        | Some (_, best_d) when best_d <= d -> ()
        | _ -> best := Some (candidate, d))
  done;
  match !best with
  | None -> None
  | Some (codeword, soft_distance) ->
      Some
        {
          codeword;
          data = Code.data_of code codeword;
          soft_distance;
          candidates_tried = !tried;
        }

let decode_hard code llrs =
  let n = Code.block_len code in
  if Array.length llrs <> n then invalid_arg "Chase.decode_hard: length mismatch";
  syndrome_decode code (hard_decision llrs)
