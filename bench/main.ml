(* Benchmark harness: regenerates every table and figure of the paper.

   Usage:
     dune exec bench/main.exe                 # run everything
     dune exec bench/main.exe -- fig4 table2  # run a subset
     FEC_BENCH_SCALE=100 dune exec bench/main.exe   # shrink Monte-Carlo sizes

   FEC_BENCH_SCALE divides the paper's workload sizes (default 20, so the
   10,000,000-word experiments run 500,000 words).  Set it to 1 to run at
   full paper scale.  FEC_BENCH_CC=1 additionally compiles the emitted C
   programs with gcc -O0/-O3 and times them (Figure 5's exact pipeline). *)

let scale =
  match Sys.getenv_opt "FEC_BENCH_SCALE" with
  | Some s -> (try max 1 (int_of_string s) with _ -> 20)
  | None -> 20

(* FEC_RUNTIME_LENS=1 runs the whole harness under the Runtime_events
   lens and appends gc.* metrics to the bench ledger record; off by
   default so the headline numbers never carry the (small) lens cost —
   EXPERIMENTS.md measures that cost on the md-7 knee. *)
let runtime_lens = Sys.getenv_opt "FEC_RUNTIME_LENS" = Some "1"
let mc_words = 10_000_000 / scale
let sweep_words = 204_522_253 / scale
let channel_p = 0.1

let section title =
  Printf.printf "\n==================================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "==================================================================\n%!"

let time_it f =
  let start = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. start)

(* ---------------------------------------------------------------- *)
(* machine-readable record of the synthesis-heavy rows               *)
(* ---------------------------------------------------------------- *)

(* Every synthesis instance the harness times is also appended here and
   dumped as one JSON object at exit, so CI and EXPERIMENTS.md can diff
   runs without scraping the human tables ([fecsynth trace diff] consumes
   these files; `make bench-gate` turns that diff into a regression gate).
   Default path BENCH_pr6.json; override with FEC_BENCH_OUT. *)
let bench_records :
    (string * string * float * int * int * (string * float) list) list ref =
  ref []

let record_instance ?(extra = []) ~experiment ~instance ~wall_s ~iterations
    ~conflicts () =
  bench_records :=
    (experiment, instance, wall_s, iterations, conflicts, extra)
    :: !bench_records

let write_bench_json () =
  let path =
    Option.value (Sys.getenv_opt "FEC_BENCH_OUT") ~default:"BENCH_pr6.json"
  in
  let module J = Telemetry.Json in
  let rows =
    List.rev_map
      (fun (experiment, instance, wall_s, iterations, conflicts, extra) ->
        J.Obj
          ([ ("experiment", J.Str experiment); ("instance", J.Str instance);
             ("wall_s", J.Float wall_s); ("iterations", J.Int iterations);
             ("conflicts", J.Int conflicts) ]
          @ List.map (fun (k, v) -> (k, J.Float v)) extra))
      !bench_records
  in
  let j =
    J.Obj
      [ ("pr", J.Str "pr6"); ("scale", J.Int scale); ("instances", J.List rows) ]
  in
  let oc = open_out path in
  output_string oc (J.to_string j);
  output_char oc '\n';
  close_out oc;
  Printf.printf "\nwrote %d benchmark record(s) to %s\n" (List.length rows) path

(* ---------------------------------------------------------------- *)
(* FIG1: average magnitude of numeric error vs bit position          *)
(* ---------------------------------------------------------------- *)

let fig1 () =
  section "FIG1  avg. magnitude of numeric error vs bit position (paper Fig. 1)";
  let int_profile = Channel.Bitflip.int32_profile () in
  let float_profile =
    Channel.Bitflip.float32_profile ~samples:(max 10_000 (2_000_000 / scale)) ()
  in
  let ni = Channel.Bitflip.normalize int_profile in
  let nf = Channel.Bitflip.normalize float_profile in
  Printf.printf "%-4s %-14s %-14s %-12s\n" "bit" "int32(norm)" "float32(norm)" "non-numeric";
  for i = 0 to 31 do
    Printf.printf "%-4d %-14.6g %-14.6g %-12d\n" i ni.(i) nf.(i)
      float_profile.Channel.Bitflip.non_numeric.(i)
  done;
  let w = Channel.Bitflip.weights_for_upper_bits ~bits:16 float_profile in
  Printf.printf "\nderived upper-16 weights: %s\n"
    (String.concat "," (Array.to_list (Array.map string_of_int w)));
  Printf.printf "paper's weights (4.3):    100,100,100,100,99,98,82,45,17,17,8,4,2,1,1,1\n"

(* ---------------------------------------------------------------- *)
(* T1: synthesize generators with min distance 8..2, minimal checks  *)
(* ---------------------------------------------------------------- *)

let table1_results : (int, Hamming.Code.t) Hashtbl.t = Hashtbl.create 8

let table1 () =
  section "T1  generators with given minimum distance (paper Table 1)";
  Printf.printf "%-9s %-10s %-11s %-9s %-18s\n" "min_dist" "check_len" "iterations"
    "time(s)" "paper(check,iter,time)";
  let paper =
    [ (8, (12, 11395, 151.80)); (7, (12, 9046, 121.65)); (6, (8, 15109, 183.86));
      (5, (7, 12334, 121.77)); (4, (5, 15662, 126.02)); (3, (3, 682, 5.16));
      (2, (2, 637, 4.72)) ]
  in
  List.iter
    (fun md ->
      let pc, pi, pt = List.assoc md paper in
      match
        Synth.Optimize.minimize_check_len ~timeout:120.0 ~data_len:4 ~md ~check_lo:2
          ~check_hi:14 ()
      with
      | Synth.Report.Synthesized (r, _) ->
          Hashtbl.replace table1_results md r.Synth.Optimize.code;
          let st = r.Synth.Optimize.stats in
          record_instance ~experiment:"table1"
            ~instance:(Printf.sprintf "md=%d" md)
            ~wall_s:st.Synth.Report.Stats.elapsed
            ~iterations:st.Synth.Report.Stats.iterations
            ~conflicts:st.Synth.Report.Stats.syn_conflicts ();
          Printf.printf "%-9d %-10d %-11d %-9.2f (%d, %d, %.2f)\n" md
            r.Synth.Optimize.check_len r.Synth.Optimize.stats.Synth.Report.Stats.iterations
            r.Synth.Optimize.stats.Synth.Report.Stats.elapsed pc pi pt
      | Synth.Report.Unsat_config _ | Synth.Report.Timed_out _
      | Synth.Report.Partial _ ->
          Printf.printf "%-9d TIMEOUT/UNSAT within c<=14\n" md)
    [ 8; 7; 6; 5; 4; 3; 2 ];
  print_newline ();
  print_endline "note: some rows come out strictly better than the paper's prototype";
  print_endline "(e.g. md=4 needs only 4 check bits: the extended Hamming (8,4) code);";
  print_endline "data-word counterexamples also need far fewer iterations than the";
  print_endline "paper's whole-candidate blocking (see ablation-cex)."

(* ---------------------------------------------------------------- *)
(* V41: verification of the (128,120) generator                      *)
(* ---------------------------------------------------------------- *)

let verify8023df () =
  section "V41  verifying the 802.3df-family (128,120) generator (paper 4.1)";
  let code = Lazy.force Hamming.Catalog.ieee_128_120 in
  let r3 = Synth.Verify.min_distance_at_least ~method_:Synth.Verify.Sat code 3 in
  Printf.printf "md >= 3: %-8s  %.2f s   (paper: verified, 14.40 s, 1.38 GB)\n"
    (if r3.Synth.Verify.holds then "VERIFIED" else "REFUTED")
    r3.Synth.Verify.elapsed;
  let r4 = Synth.Verify.min_distance_at_least ~method_:Synth.Verify.Sat code 4 in
  Printf.printf "md >= 4: %-8s  %.2f s   (paper: refuted,  122.58 s, 1.37 GB)\n"
    (if r4.Synth.Verify.holds then "VERIFIED" else "REFUTED")
    r4.Synth.Verify.elapsed;
  let exact, t = time_it (fun () -> Hamming.Distance.min_distance code) in
  Printf.printf "exact md (enumeration cross-check): %d  (%.3f s)\n" exact t

(* ---------------------------------------------------------------- *)
(* FIG4: generator robustness Monte Carlo                            *)
(* ---------------------------------------------------------------- *)

let fig4 () =
  section
    (Printf.sprintf
       "FIG4  generator robustness, %d words at p=%.1f (paper Fig. 4, 10M words)" mc_words
       channel_p);
  Printf.printf "%-4s %-7s %-12s %-14s %-12s %-14s\n" "md" "checks" ">=md flips"
    "theoretical" "undetected" "exact-theory";
  List.iter
    (fun md ->
      let code =
        match Hashtbl.find_opt table1_results md with
        | Some c -> Some c
        | None -> (
            match
              Synth.Optimize.minimize_check_len ~timeout:120.0 ~data_len:4 ~md ~check_lo:2
                ~check_hi:14 ()
            with
            | Synth.Report.Synthesized (r, _) -> Some r.Synth.Optimize.code
            | Synth.Report.Unsat_config _ | Synth.Report.Timed_out _
            | Synth.Report.Partial _ -> None)
      in
      match code with
      | None -> Printf.printf "%-4d (no generator)\n" md
      | Some code ->
          let codec = Channel.Montecarlo.codec_of_code code in
          let r =
            Channel.Montecarlo.run ~codec ~md ~words:mc_words ~p:channel_p
              ~seed:(0xF16 + md)
              (Channel.Montecarlo.uniform_data codec)
          in
          (* our extension: exact expected undetected count via the weight
             enumerator, the analytic counterpart of the lower curve *)
          let exact =
            Hamming.Weightdist.exact_undetected_probability code ~p:channel_p
            *. float_of_int mc_words
          in
          Printf.printf "%-4d %-7d %-12d %-14.0f %-12d %-14.1f\n" md
            (Hamming.Code.check_len code) r.Channel.Montecarlo.flips_ge_md
            r.Channel.Montecarlo.expected_flips_ge_md r.Channel.Montecarlo.undetected exact)
    [ 2; 3; 4; 5; 6; 7; 8 ];
  print_endline "\nshape check (paper): upper curve tracks P_u*N; undetected errors";
  print_endline "drop steeply with md and reach zero for the md-8 generator.";
  print_endline "the exact-theory column (weight-enumerator analysis, our extension)";
  print_endline "matches the measured undetected counts, explaining the gap between";
  print_endline "the paper's two curves analytically."

(* ---------------------------------------------------------------- *)
(* T2: float32-specific generator robustness                         *)
(* ---------------------------------------------------------------- *)

let table2 () =
  section
    (Printf.sprintf
       "T2  float32-specific robustness, %d numeric words (paper Table 2, 10M)" mc_words);
  let evaluate name codec paper =
    let mc = Fec_core.Composite.to_codec codec in
    let err_sum = ref 0.0 in
    let non_numeric = ref 0 in
    let numeric = ref 0 in
    let on_undetected ~sent ~received =
      let fs = Int32.float_of_bits (Int32.of_int sent) in
      let fr = Int32.float_of_bits (Int32.of_int received) in
      if Float.is_finite fr then begin
        incr numeric;
        err_sum := !err_sum +. Float.abs (fr -. fs)
      end
      else incr non_numeric
    in
    let r =
      Channel.Montecarlo.run ~on_undetected ~codec:mc
        ~md:(Fec_core.Composite.min_distance codec) ~words:mc_words ~p:channel_p
        ~seed:0x7AB2 Channel.Montecarlo.numeric_float32_data
    in
    let avg = if !numeric > 0 then !err_sum /. float_of_int !numeric else 0.0 in
    Printf.printf "%-22s %-6d %-11d %-11.2e %-9d %s\n" name
      (Fec_core.Composite.check_len codec) r.Channel.Montecarlo.undetected avg !non_numeric
      paper
  in
  Printf.printf "%-22s %-6s %-11s %-11s %-9s %s\n" "generators" "check" "undetect."
    "avg.err" "non-num." "paper(undet, avg, non-num @10M)";
  evaluate "G1^16 G1^16" (Lazy.force Fec_core.Design.table2_parity)
    "(2333996, 2.14e36, 5744)";
  evaluate "G6^16 G6^16" (Lazy.force Fec_core.Design.table2_md3) "(12383, 1.59e36, 21)";
  evaluate "G5^8 G1^8 G1^16" (Lazy.force Fec_core.Design.table2_float_specific)
    "(585979, 0.24e36, 248)";
  print_endline "\nshape check (paper): the float-specific combination has more";
  print_endline "undetected errors than md-3 but far fewer than parity, the LOWEST";
  print_endline "average numeric error magnitude, and 7 check bits (vs 2 and 12)."

(* ---------------------------------------------------------------- *)
(* FIG5/FIG6 shared generator family                                 *)
(* ---------------------------------------------------------------- *)

(* The 4.4 experiment walks set-bit sums 200 down to ~118.  Our CEGIS
   lands near-minimal immediately, so to reproduce the x-axis spread we
   synthesize one generator per target sum with len_1 pinned to it. *)
let setbit_family =
  lazy
    (let targets = List.init 16 (fun i -> 80 + (8 * i)) (* 80 .. 200 *) in
     List.filter_map
       (fun target ->
         let pin ~entry =
           let bits = ref [] in
           for i = 0 to 31 do
             for j = 0 to 16 do
               bits := entry ~row:i ~col:j :: !bits
             done
           done;
           (* adder-tree popcount: tiny encoding for a 544-bit count *)
           Smtlite.Bv.eq (Smtlite.Bv.popcount !bits) (Smtlite.Bv.of_int ~width:10 target)
         in
         let problem =
           { Synth.Cegis.data_len = 32; check_len = 17; min_distance = 3; extra = [ pin ] }
         in
         match Synth.Cegis.synthesize ~timeout:60.0 problem with
         | Synth.Report.Synthesized (code, _) -> Some (target, code)
         | Synth.Report.Unsat_config _ | Synth.Report.Timed_out _
         | Synth.Report.Partial _ -> None)
       targets)

let fig5 () =
  section
    (Printf.sprintf
       "FIG5  encode/check performance vs set bits, %d words stride 21 (paper: 204.5M)"
       sweep_words);
  let bench codec words =
    let start = Unix.gettimeofday () in
    let acc = ref 0 in
    let d = ref 0 in
    for _ = 1 to words do
      let w = codec.Hamming.Fastcodec.encode (!d land 0xFFFFFFFF) in
      acc := !acc lxor w lxor codec.Hamming.Fastcodec.syndrome w;
      d := !d + 21
    done;
    ignore !acc;
    (Unix.gettimeofday () -. start) /. float_of_int words *. 1e9
  in
  Printf.printf "%-9s %-17s %-16s %-16s\n" "set_bits" "xor-chain(ns/wd)" "mask(ns/word)"
    "naive(ns/word)";
  Printf.printf "%-9s %-17s %-16s %-16s\n" "" "(paper's emitted C)" "(bounded)" "(~ -O0)";
  List.iter
    (fun (_, code) ->
      let sparse = bench (Hamming.Fastcodec.compile_sparse code) sweep_words in
      let fast = bench (Hamming.Fastcodec.compile code) sweep_words in
      let naive = bench (Hamming.Fastcodec.compile_naive code) (max 1 (sweep_words / 16)) in
      Printf.printf "%-9d %-17.1f %-16.1f %-16.1f\n" (Hamming.Code.set_bits code) sparse
        fast naive)
    (Lazy.force setbit_family);
  (match Sys.getenv_opt "FEC_BENCH_CC" with
  | Some "1" ->
      print_endline "\nFEC_BENCH_CC=1: compiling emitted C with gcc -O0/-O3 ...";
      let dir = Filename.temp_file "fec5" "" in
      Sys.remove dir;
      Sys.mkdir dir 0o755;
      Printf.printf "%-9s %-12s %-12s\n" "set_bits" "gcc -O0(s)" "gcc -O3(s)";
      List.iter
        (fun (_, code) ->
          let src = Filename.concat dir "g.c" in
          let oc = open_out src in
          output_string oc (Hamming.Emit.c_source code);
          close_out oc;
          let run opt =
            let exe = Filename.concat dir "g.exe" in
            let cmd = Printf.sprintf "gcc %s %s -o %s 2>/dev/null" opt src exe in
            if Sys.command cmd <> 0 then nan
            else begin
              let t0 = Unix.gettimeofday () in
              ignore (Sys.command (exe ^ " > /dev/null"));
              Unix.gettimeofday () -. t0
            end
          in
          Printf.printf "%-9d %-12.2f %-12.2f\n" (Hamming.Code.set_bits code) (run "-O0")
            (run "-O3"))
        (Lazy.force setbit_family)
  | _ ->
      print_endline "\n(set FEC_BENCH_CC=1 to also compile+time the emitted C at -O0/-O3;";
      print_endline " note the C sweep always runs the full 204.5M words)");
  print_endline "\nshape check (paper): the xor-chain codec (the style of the paper's";
  print_endline "emitted C) grows roughly linearly with the set-bit count; the";
  print_endline "mask codec is flat and the naive interpreter sits far above both."

let fig6 () =
  section "FIG6  compressibility of generators vs set bits (paper Fig. 6)";
  Printf.printf "%-9s %-11s %-17s %-14s\n" "set_bits" "raw bytes" "tar.gz bytes"
    "deflate-only";
  List.iter
    (fun (_, code) ->
      (* serialize the coefficient matrix column-major, one bit per byte,
         exactly as a bit-dump file of the matrix *)
      let p = Hamming.Code.coefficient_matrix code in
      let buf = Buffer.create 1024 in
      for j = 0 to Gf2.Matrix.cols p - 1 do
        for i = 0 to Gf2.Matrix.rows p - 1 do
          Buffer.add_char buf (if Gf2.Matrix.get p i j then '\x01' else '\x00')
        done
      done;
      let raw = Buffer.contents buf in
      let tarball =
        Zip.Gzip.compress
          (Zip.Tar.archive [ { Zip.Tar.name = "generator.bits"; contents = raw } ])
      in
      let deflated = Zip.Deflate.compress raw in
      Printf.printf "%-9d %-11d %-17d %-14d\n" (Hamming.Code.set_bits code)
        (String.length raw) (String.length tarball) (String.length deflated))
    (Lazy.force setbit_family);
  print_endline "\nshape check (paper): archives grow with the set-bit count (higher";
  print_endline "coefficient entropy compresses worse)."

(* ---------------------------------------------------------------- *)
(* EX2: multi-bit error detection extension (paper section 6)        *)
(* ---------------------------------------------------------------- *)

let multibit () =
  section "EX2  multi-bit error detection (paper section 6 extension)";
  let show name code =
    Printf.printf "%-28s md=%d  distinguishes up to %d-bit errors  (pair sums unique: %b)\n"
      name
      (Hamming.Distance.min_distance code)
      (Hamming.Multibit.max_distinguishable code)
      (Hamming.Multibit.pair_sums_unique code)
  in
  show "Hamming (7,4) [Fig 2]" (Lazy.force Hamming.Catalog.fig2_7_4);
  show "sec. 6 extended (15,4)" (Lazy.force Hamming.Catalog.paper_multibit_15_4);
  show "extended Hamming (8,4)" (Hamming.Catalog.extend (Lazy.force Hamming.Catalog.fig2_7_4));
  show "repetition (5,1)" (Hamming.Catalog.repetition 5);
  let code = Lazy.force Hamming.Catalog.paper_multibit_15_4 in
  let w = Hamming.Code.encode code (Gf2.Bitvec.of_string "0011") in
  let n = Hamming.Code.block_len code in
  let total = ref 0 and fixed = ref 0 in
  for j1 = 0 to n - 1 do
    for j2 = j1 + 1 to n - 1 do
      incr total;
      let w' = Gf2.Bitvec.copy w in
      Gf2.Bitvec.flip w' j1;
      Gf2.Bitvec.flip w' j2;
      match Hamming.Multibit.correct_up_to code 2 w' with
      | Some r when Gf2.Bitvec.equal r w -> incr fixed
      | _ -> ()
    done
  done;
  Printf.printf "2-bit error correction on the sec.6 generator: %d/%d patterns repaired\n"
    !fixed !total;
  (* the paper's hoped-for result: synthesis finds 2-distinguishing codes
     with far fewer check bits than the manual construction *)
  print_endline "\nsynthesizing a minimal 2-distinguishing code for 4 data bits ...";
  match
    Synth.Multibit_synth.minimize_check_len ~timeout:120.0 ~data_len:4 ~distinguish:2
      ~check_lo:2 ~check_hi:14 ()
  with
  | Some (code, checks, stats) ->
      record_instance ~experiment:"multibit"
        ~instance:(Printf.sprintf "distinguish=2 k=4 c=%d" checks)
        ~wall_s:stats.Synth.Report.Stats.elapsed
        ~iterations:stats.Synth.Report.Stats.iterations
        ~conflicts:stats.Synth.Report.Stats.syn_conflicts ();
      Printf.printf
        "found: %d check bits (manual sec.6 matrix uses 11), md=%d, %d iterations, %.2f s\n"
        checks
        (Hamming.Distance.min_distance code)
        stats.Synth.Report.Stats.iterations stats.Synth.Report.Stats.elapsed
  | None -> print_endline "no 2-distinguishing code found (unexpected)"

(* ---------------------------------------------------------------- *)
(* AB1: cardinality-encoding ablation                                *)
(* ---------------------------------------------------------------- *)

let ablation_card () =
  section "AB1  ablation: cardinality encoding in the CEGIS loop (T1 md=5 instance)";
  Printf.printf "%-12s %-11s %-9s %-10s\n" "encoding" "iterations" "time(s)" "conflicts";
  List.iter
    (fun (name, enc) ->
      let problem =
        { Synth.Cegis.data_len = 4; check_len = 7; min_distance = 5; extra = [] }
      in
      match Synth.Cegis.synthesize ~timeout:120.0 ~encoding:enc problem with
      | Synth.Report.Synthesized (_, stats) ->
          record_instance ~experiment:"ablation-card" ~instance:name
            ~wall_s:stats.Synth.Report.Stats.elapsed
            ~iterations:stats.Synth.Report.Stats.iterations
            ~conflicts:stats.Synth.Report.Stats.syn_conflicts ();
          Printf.printf "%-12s %-11d %-9.2f %-10d\n" name stats.Synth.Report.Stats.iterations
            stats.Synth.Report.Stats.elapsed stats.Synth.Report.Stats.syn_conflicts
      | Synth.Report.Unsat_config _ -> Printf.printf "%-12s UNSAT?!\n" name
      | Synth.Report.Timed_out _ | Synth.Report.Partial _ ->
          Printf.printf "%-12s timeout\n" name)
    [ ("sequential", Smtlite.Card.Sequential); ("totalizer", Smtlite.Card.Totalizer);
      ("adder", Smtlite.Card.Adder) ]

(* ---------------------------------------------------------------- *)
(* AB2: counterexample-granularity ablation                          *)
(* ---------------------------------------------------------------- *)

let ablation_cex () =
  section "AB2  ablation: counterexample granularity (md=4, c=5, k=4)";
  Printf.printf "%-18s %-11s %-9s\n" "mode" "iterations" "time(s)";
  List.iter
    (fun (name, mode) ->
      let problem =
        { Synth.Cegis.data_len = 4; check_len = 5; min_distance = 4; extra = [] }
      in
      match Synth.Cegis.synthesize ~timeout:120.0 ~cex_mode:mode problem with
      | Synth.Report.Synthesized (_, stats) ->
          record_instance ~experiment:"ablation-cex" ~instance:name
            ~wall_s:stats.Synth.Report.Stats.elapsed
            ~iterations:stats.Synth.Report.Stats.iterations
            ~conflicts:stats.Synth.Report.Stats.syn_conflicts ();
          Printf.printf "%-18s %-11d %-9.2f\n" name stats.Synth.Report.Stats.iterations
            stats.Synth.Report.Stats.elapsed
      | Synth.Report.Unsat_config _ -> Printf.printf "%-18s UNSAT?!\n" name
      | Synth.Report.Timed_out _ | Synth.Report.Partial _ ->
          Printf.printf "%-18s timeout\n" name)
    [ ("data-word (ours)", Synth.Cegis.Data_word);
      ("whole-candidate", Synth.Cegis.Whole_candidate) ]

(* ---------------------------------------------------------------- *)
(* PORT: portfolio CEGIS vs sequential                               *)
(* ---------------------------------------------------------------- *)

let portfolio_bench () =
  section "PORT  portfolio CEGIS with counterexample sharing vs sequential";
  Printf.printf
    "host exposes %d core(s); on a single core the portfolio's gain comes\n\
     from configuration diversity plus counterexample sharing, not from\n\
     parallel hardware.\n\n"
    (Domain.recommended_domain_count ());
  let budget = 150.0 in
  (* instance ladder across the md-7 hardness knee: (11,15) is trivial —
     the portfolio pays a pure timesharing tax; (13,15) and (14,15) are
     knee instances where the shared counterexample pool multiplies
     iteration throughput and beats the sequential loop outright; the
     (12,14) cliff (full mode only) is too steep for any configuration at
     a quarter of one core and is reported honestly *)
  let instances =
    if scale <= 2 then [ (11, 15, 7); (13, 15, 7); (14, 15, 7); (12, 14, 7) ]
    else [ (11, 15, 7); (13, 15, 7); (14, 15, 7) ]
  in
  Printf.printf "%-16s %-14s %-14s %-9s %s\n" "instance" "sequential(s)"
    "portfolio-4(s)" "speedup" "winning config";
  List.iter
    (fun (k, c, m) ->
      let problem =
        { Synth.Cegis.data_len = k; check_len = c; min_distance = m; extra = [] }
      in
      let instance = Printf.sprintf "k=%d c=%d md=%d" k c m in
      let seq_time, seq_label, seq_finished =
        match Synth.Cegis.synthesize ~timeout:budget problem with
        | Synth.Report.Synthesized (_, st) ->
            record_instance ~experiment:"portfolio-seq" ~instance
              ~wall_s:st.Synth.Report.Stats.elapsed
              ~iterations:st.Synth.Report.Stats.iterations
              ~conflicts:st.Synth.Report.Stats.syn_conflicts ();
            (st.Synth.Report.Stats.elapsed, Printf.sprintf "%.2f" st.Synth.Report.Stats.elapsed, true)
        | Synth.Report.Timed_out st ->
            record_instance ~experiment:"portfolio-seq" ~instance ~wall_s:budget
              ~iterations:st.Synth.Report.Stats.iterations
              ~conflicts:st.Synth.Report.Stats.syn_conflicts ();
            (budget, Printf.sprintf ">%.0f" budget, false)
        | Synth.Report.Unsat_config st ->
            (st.Synth.Report.Stats.elapsed, "unsat", true)
        | Synth.Report.Partial (_, st) ->
            record_instance ~experiment:"portfolio-seq" ~instance ~wall_s:budget
              ~iterations:st.Synth.Report.Stats.iterations
              ~conflicts:st.Synth.Report.Stats.syn_conflicts ();
            (budget, Printf.sprintf ">%.0f" budget, false)
      in
      match Synth.Portfolio.synthesize ~timeout:budget ~jobs:4 problem with
      | Synth.Report.Synthesized (code, report) ->
          let wall = report.Synth.Portfolio.wall_clock in
          record_instance ~experiment:"portfolio" ~instance ~wall_s:wall
            ~iterations:
              report.Synth.Portfolio.totals.Synth.Report.Stats.iterations
            ~conflicts:
              report.Synth.Portfolio.totals.Synth.Report.Stats.syn_conflicts ();
          let speedup = seq_time /. wall in
          Printf.printf "%-16s %-14s %-14.2f %s%-8.2f %s [%d round%s]\n"
            (Printf.sprintf "k=%d c=%d md=%d" k c m)
            seq_label wall
            (if seq_finished then "" else ">")
            speedup
            (match report.Synth.Portfolio.winner with
            | Some w -> Synth.Portfolio.config_to_string w
            | None -> "-")
            report.Synth.Portfolio.rounds
            (if report.Synth.Portfolio.rounds = 1 then "" else "s");
          assert (Hamming.Distance.counterexample code m = None)
      | Synth.Report.Unsat_config _ ->
          Printf.printf "%-16s %-14s UNSAT?!\n"
            (Printf.sprintf "k=%d c=%d md=%d" k c m) seq_label
      | Synth.Report.Timed_out _ | Synth.Report.Partial _ ->
          Printf.printf "%-16s %-14s >%-13.0f -\n"
            (Printf.sprintf "k=%d c=%d md=%d" k c m) seq_label budget)
    instances;
  (* verification race on the paper's 4.1 artifact: heterogeneous
     strategies (combinatorial enumeration + SAT under several cardinality
     encodings) racing the same bound *)
  print_endline "\nverification race on the 802.3df-family (128,120) generator:";
  let code = Lazy.force Hamming.Catalog.ieee_128_120 in
  Printf.printf "%-10s %-17s %-17s %s\n" "bound" "sat-seq alone(s)" "race-4(s)"
    "race winner";
  List.iter
    (fun m ->
      let r_seq =
        Synth.Verify.min_distance_at_least ~method_:Synth.Verify.Sat code m
      in
      let answer, winner, wall =
        Synth.Portfolio.verify_min_distance ~timeout:budget ~jobs:4 code m
      in
      let answer_str =
        match answer with
        | Synth.Portfolio.Holds -> "holds"
        | Synth.Portfolio.Refuted _ -> "refuted"
        | Synth.Portfolio.Unknown -> "unknown"
      in
      Printf.printf "md >= %-4d %-17.2f %-17.2f %s (%s)\n" m
        r_seq.Synth.Verify.elapsed wall winner answer_str)
    [ 3; 4 ];
  print_endline "\nshape check: the portfolio beats sequential CEGIS wherever no";
  print_endline "single configuration dominates (>1.3x on the headline instance;";
  print_endline "pool-carrying restarts cut the heavy wall-clock tail); the";
  print_endline "verification race auto-selects the cheapest strategy per bound."

(* ---------------------------------------------------------------- *)
(* SAT: the CDCL core on the committed DIMACS corpus                 *)
(* ---------------------------------------------------------------- *)

(* Raw solver throughput, measured the way SAT competitions measure it:
   a fixed corpus, per-instance wall clock, propagations/sec and
   conflicts/sec.  The ledger gate trends ns_per_prop (lower is better,
   matching the trend direction convention) so solver regressions are
   caught exactly like synthesis regressions. *)

let sat_timeout =
  match Sys.getenv_opt "FEC_SAT_TIMEOUT" with
  | Some s -> (try max 0.1 (float_of_string s) with _ -> 20.0)
  | None -> 20.0

let sat_corpus_dir =
  Option.value (Sys.getenv_opt "FEC_SAT_CORPUS") ~default:"bench/dimacs"

let sat_bench () =
  section
    (Printf.sprintf "SAT  CDCL core on the DIMACS corpus (%s, timeout %.0fs)"
       sat_corpus_dir sat_timeout);
  let files =
    if Sys.file_exists sat_corpus_dir && Sys.is_directory sat_corpus_dir then
      Sys.readdir sat_corpus_dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".cnf")
      |> List.sort compare
    else []
  in
  if files = [] then
    Printf.printf
      "no corpus under %s (run `dune exec bench/gen_corpus.exe`)\n"
      sat_corpus_dir
  else begin
    Printf.printf "%-22s %-7s %-9s %-10s %-12s %-12s %-10s\n" "instance" "answer"
      "wall(s)" "conflicts" "props" "props/sec" "confl/sec";
    let total_props = ref 0 and total_wall = ref 0.0 in
    List.iter
      (fun file ->
        let name = Filename.chop_suffix file ".cnf" in
        let text =
          In_channel.with_open_text (Filename.concat sat_corpus_dir file)
            In_channel.input_all
        in
        let cnf = Sat.Dimacs.parse text in
        let s = Sat.Solver.create () in
        Sat.Dimacs.load_into s cnf;
        let t0 = Unix.gettimeofday () in
        Sat.Solver.set_interrupt s
          (Some (fun () -> Unix.gettimeofday () -. t0 > sat_timeout));
        let answer =
          match Sat.Solver.solve s with
          | Sat.Solver.Sat -> "sat"
          | Sat.Solver.Unsat -> "unsat"
          | exception Sat.Solver.Interrupted -> "timeout"
        in
        let wall = Unix.gettimeofday () -. t0 in
        let st = Sat.Solver.stats s in
        let props = st.Sat.Solver.propagations in
        let props_per_sec = float_of_int props /. wall in
        let confl_per_sec = float_of_int st.Sat.Solver.conflicts /. wall in
        let ns_per_prop =
          if props = 0 then 0.0 else wall *. 1e9 /. float_of_int props
        in
        total_props := !total_props + props;
        total_wall := !total_wall +. wall;
        record_instance ~experiment:"sat" ~instance:name ~wall_s:wall
          ~iterations:props ~conflicts:st.Sat.Solver.conflicts
          ~extra:
            [
              ("props_per_sec", props_per_sec);
              ("confl_per_sec", confl_per_sec);
              ("ns_per_prop", ns_per_prop);
            ]
          ();
        Printf.printf "%-22s %-7s %-9.3f %-10d %-12d %-12.0f %-10.0f\n" name
          answer wall st.Sat.Solver.conflicts props props_per_sec confl_per_sec)
      files;
    if !total_wall > 0.0 then
      Printf.printf "\ncorpus aggregate: %.0f propagations/sec over %.2f s\n"
        (float_of_int !total_props /. !total_wall)
        !total_wall
  end

(* ---------------------------------------------------------------- *)
(* micro: Bechamel benchmarks of the hot codec paths                 *)
(* ---------------------------------------------------------------- *)

let micro () =
  section "MICRO  Bechamel micro-benchmarks of hot paths";
  let open Bechamel in
  let code74 = Lazy.force Hamming.Catalog.fig2_7_4 in
  let fast74 = Hamming.Fastcodec.compile code74 in
  let code128 = Lazy.force Hamming.Catalog.ieee_128_120 in
  let data120 = Gf2.Bitvec.init 120 (fun i -> i mod 3 = 0) in
  let composite = Lazy.force Fec_core.Design.table2_float_specific in
  let rs = Rs.Reed_solomon.create ~m:8 ~n:255 ~k:223 in
  let rs_data = Array.init 223 (fun i -> i mod 251) in
  let payload = String.init 4096 (fun i -> Char.chr ((i * 31) land 0xFF)) in
  let tests =
    [
      Test.make ~name:"hamming74-mask-encode"
        (Staged.stage (fun () -> ignore (fast74.Hamming.Fastcodec.encode 0b1010)));
      Test.make ~name:"hamming74-matrix-encode"
        (Staged.stage (fun () ->
             ignore (Hamming.Code.encode code74 (Gf2.Bitvec.of_string "1010"))));
      Test.make ~name:"hamming128-encode"
        (Staged.stage (fun () -> ignore (Hamming.Code.encode code128 data120)));
      Test.make ~name:"composite-float32-encode"
        (Staged.stage (fun () -> ignore (Fec_core.Composite.encode composite 0x3F8CCCCD)));
      Test.make ~name:"rs255-encode"
        (Staged.stage (fun () -> ignore (Rs.Reed_solomon.encode rs rs_data)));
      Test.make ~name:"deflate-4KiB"
        (Staged.stage (fun () -> ignore (Zip.Deflate.compress payload)));
    ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) () in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"g" [ test ]) in
      let results =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| "run" |])
          instance raw
      in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "%-32s %12.1f ns/op\n" name est
          | _ -> Printf.printf "%-32s (no estimate)\n" name)
        results)
    tests

(* ---------------------------------------------------------------- *)
(* EX3: bursty channels and interleaving (extension)                 *)
(* ---------------------------------------------------------------- *)

let burst () =
  section "EX3  bursty (Gilbert-Elliott) channel and interleaving (extension)";
  let codec =
    Hamming.Fastcodec.compile (Hamming.Catalog.shortened ~data_len:16 ~check_len:6)
  in
  let ge = { Channel.Burst.p_good = 0.0005; p_bad = 0.3; p_g2b = 0.001; p_b2g = 0.05 } in
  Printf.printf "channel: GE p_good=%.4f p_bad=%.2f, mean burst ~%.0f bits\n"
    ge.Channel.Burst.p_good ge.Channel.Burst.p_bad (1.0 /. ge.Channel.Burst.p_b2g);
  Printf.printf "%-7s %-11s %-17s %-19s\n" "depth" "codewords" "plain word errs"
    "interleaved errs";
  List.iter
    (fun depth ->
      let r =
        Channel.Burst.trial codec ~depth ~blocks:(max 10 (4000 / scale)) ~ge ~seed:4242
      in
      Printf.printf "%-7d %-11d %-17d %-19d\n" depth r.Channel.Burst.codewords
        r.Channel.Burst.word_errors_plain r.Channel.Burst.word_errors_interleaved)
    [ 4; 16; 64; 256 ];
  print_endline "\nshape check: once the interleave depth exceeds the mean burst";
  print_endline "length, single-error correction absorbs the spread-out bursts and";
  print_endline "the interleaved error count collapses; shallow interleaving can";
  print_endline "even hurt (it splits one ruined word into many lightly-hit ones).";
  (* a BCH baseline with 2-bit correction tolerates shallower interleaving *)
  let bch = Rs.Bch.create ~m:5 ~delta:5 in
  let bch_codec = Hamming.Fastcodec.compile (Rs.Bch.to_code bch) in
  let r = Channel.Burst.trial bch_codec ~depth:64 ~blocks:(max 10 (4000 / scale)) ~ge ~seed:4242 in
  Printf.printf
    "\nBCH(31,21) t=2 baseline at depth 64 (single-error decode): plain %d, interleaved %d\n"
    r.Channel.Burst.word_errors_plain r.Channel.Burst.word_errors_interleaved

(* ---------------------------------------------------------------- *)
(* EX5: soft Chase decoding of the (128,120) code over AWGN          *)
(* ---------------------------------------------------------------- *)

let chase () =
  section "EX5  soft Chase decoding of (128,120) over AWGN (Bliss et al. setup)";
  let code = Lazy.force Hamming.Catalog.ieee_128_120 in
  let blocks = max 50 (4_000 / scale) in
  Printf.printf "%-9s %-14s %-14s %-16s\n" "SNR(dB)" "raw BER" "hard BLER" "chase-4 BLER";
  List.iter
    (fun snr_db ->
      let g = Channel.Prng.create (0xB115 + int_of_float (snr_db *. 10.0)) in
      let raw_errors = ref 0 in
      let hard_fail = ref 0 and chase_fail = ref 0 in
      for _ = 1 to blocks do
        let d = Gf2.Bitvec.init 120 (fun _ -> Channel.Prng.bool_with g ~p:0.5) in
        let w = Hamming.Code.encode code d in
        let rx = Channel.Awgn.transmit g ~snr_db w in
        let llrs = Channel.Awgn.llrs ~snr_db rx in
        raw_errors :=
          !raw_errors
          + Gf2.Bitvec.hamming_distance w (Channel.Awgn.hard_decision rx);
        (match Hamming.Chase.decode_hard code llrs with
        | Some fixed when Gf2.Bitvec.equal fixed w -> ()
        | _ -> incr hard_fail);
        match Hamming.Chase.decode ~test_positions:4 code llrs with
        | Some r when Gf2.Bitvec.equal r.Hamming.Chase.codeword w -> ()
        | _ -> incr chase_fail
      done;
      Printf.printf "%-9.1f %-14.5f %-14.4f %-16.4f\n" snr_db
        (float_of_int !raw_errors /. float_of_int (blocks * 128))
        (float_of_int !hard_fail /. float_of_int blocks)
        (float_of_int !chase_fail /. float_of_int blocks))
    [ 3.0; 4.0; 5.0; 6.0; 7.0 ];
  print_endline "\nshape check: Chase-II with 4 test positions sits well below the";
  print_endline "hard-decision block error rate across the waterfall region — the";
  print_endline "soft-decoding gain that made the (128,120) code attractive for";
  print_endline "802.3df in the first place."

(* ---------------------------------------------------------------- *)
(* EX4: code-family comparison on a BSC (extension)                  *)
(* ---------------------------------------------------------------- *)

let families () =
  section "EX4  code families on a binary symmetric channel (extension)";
  let words = max 50 (20_000 / scale) in
  let g0 = Channel.Prng.create 0xC0DE in
  print_endline "roughly rate-1/2 codes, word error rate after decoding:";
  Printf.printf "%-28s %-8s %-8s %-10s %-10s\n" "code" "n" "k" "p=0.01" "p=0.03";
  let report name n k trial =
    let rate p =
      let g = Channel.Prng.copy g0 in
      let failures = ref 0 in
      for _ = 1 to words do
        if not (trial g p) then incr failures
      done;
      float_of_int !failures /. float_of_int words
    in
    Printf.printf "%-28s %-8d %-8d %-10.4f %-10.4f\n" name n k (rate 0.01) (rate 0.03)
  in
  (* Hamming (12,8): single-error correction *)
  let hamming = Hamming.Fastcodec.compile (Hamming.Catalog.shortened ~data_len:8 ~check_len:4) in
  report "Hamming (12,8) t=1" 12 8 (fun g p ->
      let d = Channel.Prng.bits g ~n:8 in
      let w = hamming.Hamming.Fastcodec.encode d in
      let w', _ = Channel.Bsc.flip_word g ~p ~width:12 w in
      match hamming.Hamming.Fastcodec.correct w' with
      | Some fixed -> fixed land 0xFF = d
      | None -> false);
  (* BCH (15,7) via 2-error syndrome tables *)
  let bch_code = Rs.Bch.to_code (Rs.Bch.create ~m:4 ~delta:5) in
  report "BCH (15,7) t=2" 15 7 (fun g p ->
      let d = Gf2.Bitvec.init 7 (fun _ -> Channel.Prng.bool_with g ~p:0.5) in
      let w = Hamming.Code.encode bch_code d in
      let w', _ = Channel.Bsc.flip_bitvec g ~p w in
      match Hamming.Multibit.correct_up_to bch_code 2 w' with
      | Some fixed -> Gf2.Bitvec.equal fixed w
      | None -> false);
  (* LDPC (96, ~50) min-sum *)
  let ldpc = Ldpc.gallager ~n:96 ~wc:3 ~wr:6 ~seed:5 in
  report
    (Printf.sprintf "LDPC (96,%d) min-sum" (Ldpc.k ldpc))
    96 (Ldpc.k ldpc)
    (fun g p ->
      let d = Gf2.Bitvec.init (Ldpc.k ldpc) (fun _ -> Channel.Prng.bool_with g ~p:0.5) in
      let w = Ldpc.encode ldpc d in
      let w', _ = Channel.Bsc.flip_bitvec g ~p w in
      match Ldpc.decode_minsum ~p:(max p 0.001) ldpc w' with
      | Some fixed -> Gf2.Bitvec.equal fixed w
      | None -> false);
  (* convolutional K=7 rate 1/2, 48-bit frames *)
  let conv = Conv.standard_k7 in
  report "conv K=7 r=1/2 (48b frame)" 108 48 (fun g p ->
      let d = Gf2.Bitvec.init 48 (fun _ -> Channel.Prng.bool_with g ~p:0.5) in
      let coded = Conv.encode conv d in
      let coded', _ = Channel.Bsc.flip_bitvec g ~p coded in
      Gf2.Bitvec.equal d (Conv.decode conv ~data_len:48 coded'));
  print_endline "\nnote: word error rates are per *block*, and block lengths differ";
  print_endline "(the LDPC word carries 6x the payload of the Hamming one).  The";
  print_endline "shape to check: multi-error correction (BCH t=2, Viterbi) beats";
  print_endline "single-error Hamming as the channel degrades, with the Viterbi";
  print_endline "sequence decoder strongest per transmitted bit."

let all_experiments =
  [
    ("fig1", fig1);
    ("table1", table1);
    ("verify8023df", verify8023df);
    ("fig4", fig4);
    ("table2", table2);
    ("fig5", fig5);
    ("fig6", fig6);
    ("multibit", multibit);
    ("burst", burst);
    ("families", families);
    ("chase", chase);
    ("sat", sat_bench);
    ("ablation-card", ablation_card);
    ("ablation-cex", ablation_cex);
    ("portfolio", portfolio_bench);
    ("micro", micro);
  ]

let () =
  let args =
    match Array.to_list Sys.argv with _ :: rest -> rest | [] -> []
  in
  let no_ledger =
    List.mem "--no-ledger" args || Sys.getenv_opt "FEC_NO_LEDGER" = Some "1"
  in
  let requested =
    match List.filter (fun a -> a <> "--no-ledger") args with
    | _ :: _ as names -> names
    | [] -> List.map fst all_experiments
  in
  (* Record the whole bench run in the persistent ledger, like every
     fecsynth subcommand: `make bench-gate` trends these records. *)
  let pending =
    if no_ledger then None
    else
      Some
        (Telemetry.Ledger.start
           ~ts:(Telemetry.Ledger.utc_timestamp ())
           ~subcommand:"bench"
           ~problem:(String.concat " " requested)
           ~config:[ ("scale", string_of_int scale) ]
           ~build:(Telemetry.Buildinfo.detect ())
           ())
  in
  (match pending with
  | Some p ->
      (* idempotent: a normal finish below makes this crash hook a no-op *)
      at_exit (fun () ->
          Telemetry.Ledger.finish p ~outcome:"crash" ~exit_code:2)
  | None -> ());
  if runtime_lens then Telemetry.Runtime.start ();
  Printf.printf "FEC synthesis benchmark harness (scale divisor: %d%s)\n" scale
    (if runtime_lens then ", runtime lens on" else "");
  List.iter
    (fun name ->
      match List.assoc_opt name all_experiments with
      | Some f -> f ()
      | None ->
          Printf.printf "unknown experiment %S; available: %s\n" name
            (String.concat ", " (List.map fst all_experiments)))
    requested;
  write_bench_json ();
  (* gc.* ledger metrics from the lens (never into the BENCH json — the
     bench gate diffs those records pairwise and the lens is optional) *)
  let gc_metrics =
    if not runtime_lens then []
    else begin
      Telemetry.Runtime.poll ~force:true ();
      let m =
        match Telemetry.Runtime.snapshot () with
        | None -> []
        | Some s ->
            let q h p =
              match Telemetry.Metrics.Hist.quantile h p with
              | Some us -> float_of_int us /. 1e6
              | None -> 0.0
            in
            [
              ("gc.minor_pause_p99", q s.Telemetry.Runtime.minor_pauses_us 0.99);
              ("gc.major_pause_p99", q s.Telemetry.Runtime.major_pauses_us 0.99);
              ( "gc.pause_s_total",
                s.Telemetry.Runtime.minor_s +. s.Telemetry.Runtime.major_s );
              ( "gc.allocated_mwords",
                float_of_int s.Telemetry.Runtime.alloc_words /. 1e6 );
              ( "gc.major_collections",
                float_of_int s.Telemetry.Runtime.major_n );
            ]
      in
      Telemetry.Runtime.stop ();
      m
    end
  in
  match pending with
  | Some p ->
      let metrics =
        List.rev_map
          (fun (experiment, instance, wall_s, iterations, conflicts, extra) ->
            let key suffix =
              Printf.sprintf "%s/%s/%s" experiment instance suffix
            in
            [
              (key "wall_s", wall_s);
              (key "iterations", float_of_int iterations);
              (key "conflicts", float_of_int conflicts);
            ]
            @ List.map (fun (k, v) -> (key k, v)) extra)
          !bench_records
        |> List.concat
      in
      Telemetry.Ledger.finish ~metrics:(metrics @ gc_metrics) p ~outcome:"ok"
        ~exit_code:0
  | None -> ()
