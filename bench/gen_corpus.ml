(* Regenerate the committed DIMACS corpus from its generator definition.

   Usage: dune exec bench/gen_corpus.exe [-- DIR]   (default bench/dimacs)

   The corpus is deterministic (Sat.Gen seeds), so running this is
   idempotent; test_sat.ml pins the files to Gen.default_corpus. *)

let () =
  let dir =
    match Array.to_list Sys.argv with _ :: d :: _ -> d | _ -> "bench/dimacs"
  in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.iter
    (fun (name, cnf) ->
      let path = Filename.concat dir (name ^ ".cnf")
      and text = Sat.Dimacs.print cnf in
      let oc = open_out path in
      output_string oc text;
      close_out oc;
      Printf.printf "%-24s %6d vars %7d clauses -> %s\n" name
        cnf.Sat.Dimacs.num_vars
        (List.length cnf.Sat.Dimacs.clauses)
        path)
    (Sat.Gen.default_corpus ())
