(* fecsynth: command-line front end to the FEC synthesis framework.

   Subcommands: synth, verify, distance, analyze, emit, robustness.
   Codes are given as Registry descriptors (e.g. "shortened:120:8",
   "parity:16", "matrix:1000101-0100110-0010111-0001011") or as
   "@file" pointing at a generator-matrix text file. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let load_code spec =
  if String.length spec > 0 && spec.[0] = '@' then
    Hamming.Code.of_string (read_file (String.sub spec 1 (String.length spec - 1)))
  else Fec_core.Registry.code_of_string spec

let load_prop spec =
  if String.length spec > 0 && spec.[0] = '@' then
    Spec.Parse.prop_file (read_file (String.sub spec 1 (String.length spec - 1)))
  else Spec.Parse.prop spec

(* ---------- interrupt handling and exit codes ---------- *)

(* SIGINT handling (first Ctrl-C winds down cooperatively, the second
   aborts) lives in the session layer, shared with everything else the
   synth/optimize runs need. *)
module Session = Fec_session.Session

let exit_unsat = 3
let exit_timeout = 4
let exit_partial = 5
let exit_interrupted = 130

let synth_exits =
  Cmdliner.Cmd.Exit.defaults
  @ [
      Cmdliner.Cmd.Exit.info exit_unsat
        ~doc:"the specification is unsatisfiable.";
      Cmdliner.Cmd.Exit.info exit_timeout
        ~doc:"the time budget expired with nothing to report.";
      Cmdliner.Cmd.Exit.info exit_partial
        ~doc:
          "the budget expired before verification; the best unverified \
           candidate was reported.";
      Cmdliner.Cmd.Exit.info exit_interrupted
        ~doc:
          "interrupted by SIGINT after flushing traces, checkpoints and \
           partial results.";
    ]

(* ---------- common arguments ---------- *)

let code_arg =
  let doc = "Code descriptor (e.g. shortened:120:8) or @FILE with matrix rows." in
  Arg.(required & opt (some string) None & info [ "c"; "code" ] ~docv:"CODE" ~doc)

let prop_arg =
  let doc = "Property in the Figure-3 language, or @FILE." in
  Arg.(required & opt (some string) None & info [ "p"; "prop" ] ~docv:"PROP" ~doc)

let timeout_arg =
  let doc = "Solver timeout in seconds." in
  Arg.(value & opt float 120.0 & info [ "t"; "timeout" ] ~docv:"SECONDS" ~doc)

let checkpoint_arg =
  let doc =
    "Write a resumable checkpoint (counterexample pool, best candidate, \
     optimization bound) to $(docv), refreshed as the search progresses. \
     Writes are atomic: a reader or a resumed run never sees a torn file."
  in
  Arg.(value & opt (some string) None & info [ "checkpoint" ] ~docv:"FILE" ~doc)

let resume_arg =
  let doc =
    "Resume from a checkpoint written by $(b,--checkpoint). The pool of \
     counterexamples is replayed before the first candidate, so the search \
     restarts ahead of where it began. A corrupt, truncated or mismatched \
     checkpoint is rejected, never trusted."
  in
  Arg.(value & opt (some string) None & info [ "resume" ] ~docv:"FILE" ~doc)

module J = Telemetry.Json

let code_json code =
  J.Obj
    [
      ("descriptor", J.Str (Fec_core.Registry.describe_code code));
      ("block_len", J.Int (Hamming.Code.block_len code));
      ("data_len", J.Int (Hamming.Code.data_len code));
      ("min_distance", J.Int (Hamming.Distance.min_distance code));
      ("set_bits", J.Int (Hamming.Code.set_bits code));
      ("matrix", J.Str (Hamming.Code.to_string code));
    ]

(* ---------- synth ---------- *)

let weights_conv =
  let parse s =
    try Ok (Array.of_list (List.map int_of_string (String.split_on_char ',' s)))
    with _ -> Error (`Msg "weights must be comma-separated integers")
  in
  Arg.conv (parse, fun fmt w ->
      Format.pp_print_string fmt
        (String.concat "," (Array.to_list (Array.map string_of_int w))))

let cache_arg =
  let doc =
    "Consult and populate the content-addressed result cache: a \
     semantically identical specification synthesized before is answered \
     instantly with the same proven generator, and counterexample pools \
     from compatible cached runs warm-start fresh searches."
  in
  Arg.(value & flag & info [ "cache" ] ~doc)

let cache_dir_arg =
  let doc =
    "Result cache directory (default: .fecsynth/cache, or FEC_CACHE_DIR)."
  in
  Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR" ~doc)

let portfolio_json report =
  match report with
  | None -> []
  | Some r -> [ ("portfolio", Synth.Portfolio.report_to_json r) ]

let synth_cmd =
  let weights =
    let doc = "Per-bit criticality weights for weighted (sum_w) synthesis." in
    Arg.(value & opt (some weights_conv) None & info [ "w"; "weights" ] ~docv:"W,W,..." ~doc)
  in
  let portfolio =
    let doc = "Race a portfolio of differently-configured CEGIS workers." in
    Arg.(value & flag & info [ "portfolio" ] ~doc)
  in
  let jobs =
    let doc = "Number of portfolio workers (implies --portfolio for K > 1)." in
    Arg.(value & opt int 4 & info [ "j"; "jobs" ] ~docv:"K" ~doc)
  in
  let run prop_spec timeout weights portfolio jobs checkpoint resume cache
      cache_dir trace metrics progress runtime_lens no_ledger fmt =
    if jobs < 1 then `Error (false, "--jobs must be >= 1")
    else begin
    Session.install_sigint ();
    let on_report report =
      if fmt = Output.Text then
        Format.printf "%a" Synth.Portfolio.pp_report report
    in
    let request =
      {
        (Session.default_request
           (Session.Synth { prop = prop_spec; weights; portfolio; jobs }))
        with
        Session.timeout;
        checkpoint;
        resume;
        cache;
        cache_dir;
        no_ledger;
        trace;
        metrics;
        progress;
        runtime_lens;
      }
    in
    match Session.run_sync ~on_report request with
    | exception Session.Invalid_request msg -> `Error (false, msg)
    | result ->
    (match (result.Session.resumed, fmt) with
    | Some r, Output.Text ->
        Printf.printf
          "resumed from checkpoint: %d counterexamples, %d prior iterations\n"
          r.Session.cex_count r.Session.prior_iterations
    | _ -> ());
    let intr = result.Session.interrupted in
    match result.Session.outcome with
    | Session.Codes (codes, stats) ->
        Output.result fmt
          ~text:(fun () ->
            List.iter
              (fun code ->
                Printf.printf "synthesized (%d,%d) generator, md %d, %d set bits:\n%s\n"
                  (Hamming.Code.block_len code) (Hamming.Code.data_len code)
                  (Hamming.Distance.min_distance code) (Hamming.Code.set_bits code)
                  (Hamming.Code.to_string code);
                Printf.printf "descriptor: %s\n" (Fec_core.Registry.describe_code code))
              codes;
            Printf.printf "iterations: %d, time: %.2f s\n"
              stats.Synth.Report.Stats.iterations stats.Synth.Report.Stats.elapsed)
          ~json:(fun () ->
            [
              ("command", J.Str "synth");
              ("outcome", J.Str "synthesized");
              ("cache_hit", J.Bool result.Session.cache_hit);
              ("codes", J.List (List.map code_json codes));
              ("stats", Synth.Report.Stats.to_json stats);
            ]
            @ portfolio_json result.Session.report);
        `Ok ()
    | Session.Setbits steps ->
        Output.result fmt
          ~text:(fun () ->
            List.iter
              (fun s ->
                Printf.printf "bound %d -> achieved %d (%d iterations, %.2f s)\n"
                  s.Synth.Optimize.bound s.Synth.Optimize.achieved
                  s.Synth.Optimize.step_stats.Synth.Report.Stats.iterations
                  s.Synth.Optimize.step_stats.Synth.Report.Stats.elapsed)
              steps;
            match List.rev steps with
            | best :: _ ->
                Printf.printf "\nbest generator (%d set bits):\n%s\n"
                  best.Synth.Optimize.achieved
                  (Hamming.Code.to_string best.Synth.Optimize.generator)
            | [] -> ())
          ~json:(fun () ->
            [
              ("command", J.Str "synth");
              ("outcome", J.Str "setbits_walk");
              ( "steps",
                J.List
                  (List.map
                     (fun s ->
                       J.Obj
                         [
                           ("bound", J.Int s.Synth.Optimize.bound);
                           ("achieved", J.Int s.Synth.Optimize.achieved);
                           ( "generator",
                             J.Str
                               (Hamming.Code.to_string s.Synth.Optimize.generator)
                           );
                           ( "stats",
                             Synth.Report.Stats.to_json
                               s.Synth.Optimize.step_stats );
                         ])
                     steps) );
              ( "stats",
                Synth.Report.Stats.to_json
                  (Synth.Report.Stats.sum
                     (List.map (fun s -> s.Synth.Optimize.step_stats) steps)) );
            ]
            @ portfolio_json result.Session.report);
        `Ok ()
    | Session.Weighted r ->
        Output.result fmt
          ~text:(fun () ->
            let t0, t1 = r.Synth.Weighted.counts in
            Printf.printf
              "mapping: %s (split %d/%d), sum_w = %.4f%s, %d iterations, %.2f s\n"
              (String.concat ""
                 (Array.to_list (Array.map string_of_int r.Synth.Weighted.mapping)))
              t0 t1 r.Synth.Weighted.sum_w
              (if r.Synth.Weighted.optimal then " (proved optimal)" else "")
              r.Synth.Weighted.iterations r.Synth.Weighted.elapsed;
            let c0, c1 = r.Synth.Weighted.codes in
            Printf.printf "generator 0:\n%s\ngenerator 1:\n%s\n"
              (Hamming.Code.to_string c0) (Hamming.Code.to_string c1))
          ~json:(fun () ->
            let t0, t1 = r.Synth.Weighted.counts in
            let c0, c1 = r.Synth.Weighted.codes in
            [
              ("command", J.Str "synth");
              ("outcome", J.Str "weighted");
              ( "mapping",
                J.Str
                  (String.concat ""
                     (Array.to_list
                        (Array.map string_of_int r.Synth.Weighted.mapping))) );
              ("split", J.List [ J.Int t0; J.Int t1 ]);
              ("sum_w", J.Float r.Synth.Weighted.sum_w);
              ("optimal", J.Bool r.Synth.Weighted.optimal);
              ("iterations", J.Int r.Synth.Weighted.iterations);
              ("elapsed_s", J.Float r.Synth.Weighted.elapsed);
              ("codes", J.List [ code_json c0; code_json c1 ]);
            ]);
        `Ok ()
    | Session.Partial { code; achieved; check_len = _; stats } ->
        Output.result fmt
          ~text:(fun () ->
            Printf.printf "partial: %s before verification finished\n"
              (if intr then "interrupted" else "budget expired");
            Printf.printf
              "best candidate so far: (%d,%d) generator, achieved md %d:\n%s\n"
              (Hamming.Code.block_len code) (Hamming.Code.data_len code)
              achieved (Hamming.Code.to_string code);
            Printf.printf "iterations: %d, time: %.2f s\n"
              stats.Synth.Report.Stats.iterations stats.Synth.Report.Stats.elapsed)
          ~json:(fun () ->
            [
              ("command", J.Str "synth");
              ("outcome", J.Str "partial");
              ("interrupted", J.Bool intr);
              ("achieved_md", J.Int achieved);
              ("codes", J.List [ code_json code ]);
              ("stats", Synth.Report.Stats.to_json stats);
            ]
            @ portfolio_json result.Session.report);
        exit result.Session.exit_code
    | Session.Unsat { reason; stats = _ } ->
        Output.result fmt
          ~text:(fun () -> Printf.printf "unsatisfiable: %s\n" reason)
          ~json:(fun () ->
            [
              ("command", J.Str "synth");
              ("outcome", J.Str "unsat");
              ("reason", J.Str reason);
            ]
            @ portfolio_json result.Session.report);
        exit result.Session.exit_code
    | Session.Timeout { reason; stats = _ } ->
        Output.result fmt
          ~text:(fun () ->
            Printf.printf "%s: %s\n"
              (if intr then "interrupted" else "timeout")
              reason)
          ~json:(fun () ->
            [
              ("command", J.Str "synth");
              ( "outcome",
                J.Str (if intr then "interrupted" else "timeout") );
              ("reason", J.Str reason);
            ]
            @ portfolio_json result.Session.report);
        exit result.Session.exit_code
    | Session.Optimized _ ->
        (* a synth job never yields an optimize outcome *)
        assert false
    end
  in
  let doc = "Synthesize generators from a property specification (CEGIS)." in
  Cmd.v (Cmd.info "synth" ~doc ~exits:synth_exits)
    Term.(
      ret
        (const run $ prop_arg $ timeout_arg $ weights $ portfolio $ jobs
       $ checkpoint_arg $ resume_arg $ cache_arg $ cache_dir_arg
       $ Output.trace_arg $ Output.metrics_arg $ Output.progress_arg
       $ Output.runtime_lens_arg $ Output.no_ledger_arg $ Output.stats_arg))

(* ---------- optimize ---------- *)

let optimize_cmd =
  let data_len_arg =
    let doc = "Number of data bits." in
    Arg.(required & opt (some int) None & info [ "k"; "data-len" ] ~docv:"K" ~doc)
  in
  let md_arg =
    let doc = "Target minimum distance." in
    Arg.(
      required & opt (some int) None & info [ "m"; "min-distance" ] ~docv:"MD" ~doc)
  in
  let lo_arg =
    let doc = "Smallest check length to try." in
    Arg.(value & opt int 1 & info [ "check-lo" ] ~docv:"C" ~doc)
  in
  let hi_arg =
    let doc = "Largest check length to try." in
    Arg.(value & opt int 16 & info [ "check-hi" ] ~docv:"C" ~doc)
  in
  let run data_len md check_lo check_hi timeout checkpoint resume cache
      cache_dir trace metrics progress runtime_lens no_ledger fmt =
    if data_len < 1 || md < 1 || check_lo < 1 || check_hi < check_lo then
      `Error
        (false, "need data-len >= 1, min-distance >= 1, 1 <= check-lo <= check-hi")
    else begin
      Session.install_sigint ();
      let request =
        {
          (Session.default_request
             (Session.Optimize { data_len; md; check_lo; check_hi }))
          with
          Session.timeout;
          checkpoint;
          resume;
          cache;
          cache_dir;
          no_ledger;
          trace;
          metrics;
          progress;
          runtime_lens;
        }
      in
      match Session.run_sync request with
      | exception Session.Invalid_request msg -> `Error (false, msg)
      | result ->
      (match (result.Session.resumed, fmt) with
      | Some r, Output.Text ->
          Printf.printf
            "resumed from checkpoint: %d counterexamples, %d prior iterations, \
             starting at check length %d\n"
            r.Session.cex_count r.Session.prior_iterations r.Session.start_check
      | _ -> ());
      let intr = result.Session.interrupted in
      let stats_json totals =
        [ ("stats", Synth.Report.Stats.to_json totals) ]
      in
      match result.Session.outcome with
      | Session.Optimized (r, totals) ->
          Output.result fmt
            ~text:(fun () ->
              let code = r.Synth.Optimize.code in
              Printf.printf
                "minimal check length %d: (%d,%d) generator, md %d:\n%s\n"
                r.Synth.Optimize.check_len (Hamming.Code.block_len code)
                (Hamming.Code.data_len code)
                (Hamming.Distance.min_distance code)
                (Hamming.Code.to_string code);
              Printf.printf "iterations: %d, time: %.2f s\n" totals.Synth.Report.Stats.iterations
                totals.Synth.Report.Stats.elapsed)
            ~json:(fun () ->
              [
                ("command", J.Str "optimize");
                ("outcome", J.Str "synthesized");
                ("cache_hit", J.Bool result.Session.cache_hit);
                ("check_len", J.Int r.Synth.Optimize.check_len);
                ("codes", J.List [ code_json r.Synth.Optimize.code ]);
              ]
              @ stats_json totals);
          `Ok ()
      | Session.Unsat { reason; stats } ->
          Output.result fmt
            ~text:(fun () -> Printf.printf "unsatisfiable: %s\n" reason)
            ~json:(fun () ->
              [ ("command", J.Str "optimize"); ("outcome", J.Str "unsat") ]
              @ match stats with Some s -> stats_json s | None -> []);
          exit result.Session.exit_code
      | Session.Timeout { reason = _; stats } ->
          Output.result fmt
            ~text:(fun () ->
              Printf.printf "%s with no candidate to report\n"
                (if intr then "interrupted" else "timeout"))
            ~json:(fun () ->
              [
                ("command", J.Str "optimize");
                ( "outcome",
                  J.Str (if intr then "interrupted" else "timeout") );
              ]
              @ match stats with Some s -> stats_json s | None -> []);
          exit result.Session.exit_code
      | Session.Partial { code; achieved; check_len; stats } ->
          Output.result fmt
            ~text:(fun () ->
              Printf.printf "partial: %s at check length %d\n"
                (if intr then "interrupted" else "budget expired")
                (Option.value check_len ~default:0);
              Printf.printf
                "best candidate so far: (%d,%d) generator, achieved md %d:\n%s\n"
                (Hamming.Code.block_len code) (Hamming.Code.data_len code)
                achieved (Hamming.Code.to_string code))
            ~json:(fun () ->
              [
                ("command", J.Str "optimize");
                ("outcome", J.Str "partial");
                ("interrupted", J.Bool intr);
                ("check_len", J.Int (Option.value check_len ~default:0));
                ("achieved_md", J.Int achieved);
                ("codes", J.List [ code_json code ]);
              ]
              @ stats_json stats);
          exit result.Session.exit_code
      | Session.Codes _ | Session.Setbits _ | Session.Weighted _ ->
          (* an optimize job never yields a synth outcome *)
          assert false
    end
  in
  let doc =
    "Minimize the check length for a target minimum distance (the Table 1 \
     walk), with checkpoint/resume support."
  in
  Cmd.v (Cmd.info "optimize" ~doc ~exits:synth_exits)
    Term.(
      ret
        (const run $ data_len_arg $ md_arg $ lo_arg $ hi_arg $ timeout_arg
       $ checkpoint_arg $ resume_arg $ cache_arg $ cache_dir_arg
       $ Output.trace_arg $ Output.metrics_arg $ Output.progress_arg
       $ Output.runtime_lens_arg $ Output.no_ledger_arg $ Output.stats_arg))

(* ---------- serve / submit / call ---------- *)

let socket_arg =
  let doc = "Unix-domain socket path of the synthesis daemon." in
  Arg.(
    value
    & opt string (Filename.concat ".fecsynth" "serve.sock")
    & info [ "socket" ] ~docv:"PATH" ~doc)

let serve_cmd =
  let workers_arg =
    let doc = "Worker domains executing sessions concurrently." in
    Arg.(value & opt int 2 & info [ "workers" ] ~docv:"N" ~doc)
  in
  let max_queue_arg =
    let doc =
      "Bounded admission queue: submits beyond $(docv) queued sessions are \
       refused with a backpressure error."
    in
    Arg.(value & opt int 16 & info [ "max-queue" ] ~docv:"N" ~doc)
  in
  let no_cache_arg =
    let doc =
      "Disable the content-addressed result cache (served requests may \
       still opt in individually with the wire cache flag)."
    in
    Arg.(value & flag & info [ "no-cache" ] ~doc)
  in
  let grace_arg =
    let doc =
      "Post-deadline wind-down slack in seconds: a session past its \
       deadline is first cancelled cooperatively, and past the grace its \
       worker is reaped and replaced."
    in
    Arg.(value & opt float 1.0 & info [ "grace" ] ~docv:"SECS" ~doc)
  in
  let idle_timeout_arg =
    let doc =
      "Reap connections idle for more than $(docv) seconds (0 disables; \
       clients awaiting a session are exempt)."
    in
    Arg.(value & opt float 300.0 & info [ "idle-timeout" ] ~docv:"SECS" ~doc)
  in
  let metrics_port_arg =
    let doc =
      "Serve live observability over HTTP on 127.0.0.1:$(docv), from the \
       daemon's own event loop: GET /metrics returns the Prometheus text \
       exposition (with per-worker labeled gauges), GET /healthz a JSON \
       health summary that flips to \"draining\" during shutdown."
    in
    Arg.(value & opt (some int) None & info [ "metrics-port" ] ~docv:"PORT" ~doc)
  in
  let serve_trace_arg =
    let doc =
      "Write an NDJSON telemetry trace of the daemon's whole lifetime to \
       $(docv); every served run's events are stamped with its request id \
       (slice with $(b,fecsynth trace report --request))."
    in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  let flight_dir_arg =
    let doc =
      "Directory for flight-recorder postmortems (default: the socket's \
       directory).  When a stuck worker is reaped or the daemon crashes, \
       the most recent telemetry events are dumped there as \
       postmortem-<pid>-<seq>.ndjson."
    in
    Arg.(value & opt (some string) None & info [ "flight-dir" ] ~docv:"DIR" ~doc)
  in
  let flight_capacity_arg =
    let doc = "Flight-recorder ring capacity per worker domain, in events." in
    Arg.(value & opt int 512 & info [ "flight-capacity" ] ~docv:"N" ~doc)
  in
  let no_runtime_lens_arg =
    let doc =
      "Disable the Runtime_events lens (on by default in serve mode): \
       without it /metrics loses the gc_* and domain_util series and the \
       trace its runtime.* events."
    in
    Arg.(value & flag & info [ "no-runtime-lens" ] ~doc)
  in
  let run socket workers max_queue grace idle_timeout no_cache cache_dir
      metrics no_ledger metrics_port trace flight_dir flight_capacity
      no_runtime_lens =
    if workers < 1 || max_queue < 1 then
      `Error (false, "need --workers >= 1 and --max-queue >= 1")
    else if grace < 0.0 || idle_timeout < 0.0 then
      `Error (false, "need --grace >= 0 and --idle-timeout >= 0")
    else if
      match metrics_port with Some p -> p < 1 || p > 65535 | None -> false
    then `Error (false, "need 1 <= --metrics-port <= 65535")
    else if flight_capacity < 1 then
      `Error (false, "need --flight-capacity >= 1")
    else begin
      let config =
        {
          (Fec_session.Server.default_config ~socket) with
          Fec_session.Server.workers;
          max_queue;
          grace;
          idle_timeout;
          cache = not no_cache;
          cache_dir;
          no_ledger;
          metrics;
          metrics_port;
          trace;
          flight_dir;
          flight_capacity;
          runtime_lens = not no_runtime_lens;
        }
      in
      Fec_session.Server.run config;
      `Ok ()
    end
  in
  let doc =
    "Run a long-lived synthesis daemon: newline-delimited JSON requests \
     over a Unix socket, multiplexed across worker domains, answered from \
     the result cache when possible, every request recorded in the run \
     ledger.  Startup is crash-safe (stale-socket takeover, orphaned \
     cache/ledger recovery); request deadlines are enforced by reaping \
     stuck workers.  SIGTERM drains: in-flight sessions finish, then the \
     daemon exits."
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      ret
        (const run $ socket_arg $ workers_arg $ max_queue_arg $ grace_arg
       $ idle_timeout_arg $ no_cache_arg $ cache_dir_arg $ Output.metrics_arg
       $ Output.no_ledger_arg $ metrics_port_arg $ serve_trace_arg
       $ flight_dir_arg $ flight_capacity_arg $ no_runtime_lens_arg))

let retries_arg =
  let doc =
    "Retry the whole exchange up to $(docv) more times after a connection \
     failure, with jittered exponential backoff.  Sound because \
     resubmission is content-addressed: a retry after a lost reply lands \
     on the result cache."
  in
  Arg.(value & opt int 0 & info [ "retries" ] ~docv:"N" ~doc)

let connect_timeout_arg =
  let doc = "Bound each connection attempt to $(docv) seconds." in
  Arg.(
    value
    & opt (some float) None
    & info [ "connect-timeout" ] ~docv:"SECS" ~doc)

let submit_cmd =
  let no_wait_arg =
    let doc = "Return the session id immediately instead of awaiting the result." in
    Arg.(value & flag & info [ "no-wait" ] ~doc)
  in
  let deadline_arg =
    let doc =
      "Server-side deadline in milliseconds: past it the daemon answers \
       state \"timeout\" and reaps the worker if it will not wind down."
    in
    Arg.(value & opt (some int) None & info [ "deadline" ] ~docv:"MS" ~doc)
  in
  let no_cache_arg =
    let doc = "Ask the daemon to bypass the result cache for this request." in
    Arg.(value & flag & info [ "no-cache" ] ~doc)
  in
  let portfolio_arg =
    let doc = "Race a portfolio of differently-configured CEGIS workers." in
    Arg.(value & flag & info [ "portfolio" ] ~doc)
  in
  let jobs_arg =
    let doc = "Number of portfolio workers." in
    Arg.(value & opt int 4 & info [ "j"; "jobs" ] ~docv:"K" ~doc)
  in
  let run socket prop_spec timeout portfolio jobs no_cache no_wait deadline
      retries connect_timeout =
    let request =
      J.Obj
        ([
           ("op", J.Str "submit");
           ("spec", J.Str prop_spec);
           ("timeout", J.Float timeout);
           ("portfolio", J.Bool portfolio);
           ("jobs", J.Int jobs);
           ("cache", J.Bool (not no_cache));
           ("await", J.Bool (not no_wait));
         ]
        @
        match deadline with
        | Some ms -> [ ("deadline_ms", J.Int ms) ]
        | None -> [])
    in
    let response =
      Fec_session.Client.with_retries ~retries ?connect_timeout ~socket
        (fun t -> Fec_session.Client.rpc t request)
    in
    print_endline (J.to_string response);
    match J.member "ok" response with
    | Some (J.Bool true) -> `Ok ()
    | _ -> exit 1
  in
  let doc =
    "Submit one specification to a running $(b,fecsynth serve) daemon and \
     print the JSON response (by default, awaiting the result).  An @FILE \
     spec is resolved by the daemon against its working directory."
  in
  Cmd.v (Cmd.info "submit" ~doc)
    Term.(
      ret
        (const run $ socket_arg $ prop_arg $ timeout_arg $ portfolio_arg
       $ jobs_arg $ no_cache_arg $ no_wait_arg $ deadline_arg $ retries_arg
       $ connect_timeout_arg))

let call_cmd =
  let request_arg =
    let doc = "One JSON request object (e.g. '{\"op\":\"ping\"}')." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"JSON" ~doc)
  in
  let run socket request retries connect_timeout =
    match J.of_string request with
    | exception J.Parse_error msg -> `Error (false, "bad request: " ^ msg)
    | j ->
        let response =
          Fec_session.Client.with_retries ~retries ?connect_timeout ~socket
            (fun t -> Fec_session.Client.rpc t j)
        in
        print_endline (J.to_string response);
        (match J.member "ok" response with
        | Some (J.Bool true) -> `Ok ()
        | _ -> exit 1)
  in
  let doc =
    "Send one raw wire-protocol request to a running $(b,fecsynth serve) \
     daemon and print the JSON response (ping, status, await, cancel, \
     stats, shutdown)."
  in
  Cmd.v (Cmd.info "call" ~doc)
    Term.(
      ret
        (const run $ socket_arg $ request_arg $ retries_arg
       $ connect_timeout_arg))

(* ---------- top: live daemon view ---------- *)

let top_cmd =
  let interval_arg =
    let doc = "Seconds between polls." in
    Arg.(value & opt float 1.0 & info [ "interval" ] ~docv:"SECS" ~doc)
  in
  let once_arg =
    let doc = "Poll once, print one snapshot, exit." in
    Arg.(value & flag & info [ "once" ] ~doc)
  in
  let json_arg =
    let doc = "Emit one JSON object per poll instead of the TTY view." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let get_int k j =
    match Option.bind (J.member k j) J.to_int with Some v -> v | None -> 0
  in
  let get_float k j =
    match Option.bind (J.member k j) J.to_float with Some v -> v | None -> 0.0
  in
  let get_bool k j =
    match J.member k j with Some (J.Bool b) -> b | _ -> false
  in
  let get_str k j = Option.bind (J.member k j) J.to_string_opt in
  let counters j =
    match Option.bind (J.member "exposition" j) J.to_string_opt with
    | None -> []
    | Some text -> (
        match Telemetry.Metrics.parse_exposition text with
        | Ok kvs -> kvs
        | Error _ -> [])
  in
  let counter_of kvs name =
    match List.assoc_opt name kvs with
    | Some (Telemetry.Metrics.Counter n) -> n
    | _ -> 0
  in
  let gauge_of kvs name =
    match List.assoc_opt name kvs with
    | Some (Telemetry.Metrics.Gauge v) -> v
    | _ -> 0.0
  in
  let rate now prev dt = if dt <= 0.0 then 0.0 else float_of_int (now - prev) /. dt in
  let si v =
    if v >= 1e6 then Printf.sprintf "%.1fM" (v /. 1e6)
    else if v >= 1e3 then Printf.sprintf "%.1fk" (v /. 1e3)
    else Printf.sprintf "%.0f" v
  in
  (* one poll rendered as text lines; rates come from the previous poll *)
  let render ~socket j kvs ~props_s ~iters_s ~gc =
    let hits = counter_of kvs "session_cache_hit" in
    let misses = counter_of kvs "session_cache_miss" in
    let hit_rate =
      if hits + misses = 0 then "-"
      else
        Printf.sprintf "%.0f%% (%d/%d)"
          (100.0 *. float_of_int hits /. float_of_int (hits + misses))
          hits (hits + misses)
    in
    let head =
      [
        Printf.sprintf "fecsynth top — %s" socket;
        Printf.sprintf "queue %-4d sessions %-5d reaped %-3d draining %s"
          (get_int "queue_depth" j) (get_int "sessions" j)
          (get_int "reaped" j)
          (if get_bool "draining" j then "yes" else "no");
        Printf.sprintf "cache hits %-14s props/s %-8s iters/s %s" hit_rate
          (si props_s) (si iters_s);
        (* runtime-lens GC line: dashes when the daemon runs --no-runtime-lens *)
        (match gc with
        | None -> "gc alloc/s -          %gc -      last major -"
        | Some (alloc_s, gc_pct, last_major_s) ->
            Printf.sprintf "gc alloc/s %-10s %%gc %-6s last major %.2fms"
              (si alloc_s)
              (Printf.sprintf "%.1f%%" gc_pct)
              (last_major_s *. 1e3));
        "";
        Printf.sprintf "%-7s %-10s %9s  %s" "worker" "state" "age_s" "request";
      ]
    in
    let workers =
      match J.member "workers" j with
      | Some (J.List ws) ->
          List.map
            (fun w ->
              Printf.sprintf "%-7d %-10s %9.1f  %s" (get_int "worker" w)
                (Option.value (get_str "state" w) ~default:"?")
                (get_float "since_s" w)
                (Option.value (get_str "request" w) ~default:"-"))
            ws
      | _ -> []
    in
    head @ workers
  in
  let run socket interval once json retries connect_timeout =
    if interval <= 0.0 then `Error (false, "need --interval > 0")
    else begin
      let poll () =
        Fec_session.Client.with_retries ~retries ?connect_timeout ~socket
          (fun t ->
            Fec_session.Client.rpc t (J.Obj [ ("op", J.Str "metrics") ]))
      in
      let tty =
        (not json) && (Unix.isatty Unix.stdout || Sys.getenv_opt "FEC_FORCE_TTY" = Some "1")
      in
      let prev = ref None in
      (* (time, props, iters, alloc_words, gc_pause_us) of the last poll *)
      let last_height = ref 0 in
      let frame () =
        let j = poll () in
        match J.member "ok" j with
        | Some (J.Bool true) ->
            let kvs = counters j in
            let now = Unix.gettimeofday () in
            let props = counter_of kvs "sat_propagations" in
            let iters = counter_of kvs "cegis_iterations" in
            let have_gc = List.mem_assoc "gc_allocated_words_total" kvs in
            let alloc = counter_of kvs "gc_allocated_words_total" in
            let pause_us = counter_of kvs "gc_pause_us_total" in
            let last_major = gauge_of kvs "gc_last_major_pause_s" in
            let props_s, iters_s, alloc_s, gc_pct =
              match !prev with
              | None -> (0.0, 0.0, 0.0, 0.0)
              | Some (t0, p0, i0, a0, pu0) ->
                  let dt = now -. t0 in
                  ( rate props p0 dt,
                    rate iters i0 dt,
                    rate alloc a0 dt,
                    if dt <= 0.0 then 0.0
                    else float_of_int (pause_us - pu0) /. 1e4 /. dt )
            in
            prev := Some (now, props, iters, alloc, pause_us);
            let gc =
              if have_gc then Some (alloc_s, gc_pct, last_major) else None
            in
            if json then begin
              let jout =
                match j with
                | J.Obj fields ->
                    J.Obj
                      (fields
                      @ [
                          ( "gc",
                            J.Obj
                              [
                                ("present", J.Bool have_gc);
                                ("alloc_words_total", J.Int alloc);
                                ("pause_us_total", J.Int pause_us);
                                ("last_major_pause_s", J.Float last_major);
                                ("alloc_words_per_s", J.Float alloc_s);
                                ("gc_pct", J.Float gc_pct);
                              ] );
                        ])
                | other -> other
              in
              print_endline (J.to_string jout)
            end
            else begin
              let lines = render ~socket j kvs ~props_s ~iters_s ~gc in
              if tty && !last_height > 0 then
                Printf.printf "\027[%dA\027[J" !last_height;
              List.iter print_endline lines;
              last_height := List.length lines;
              flush stdout
            end;
            true
        | _ ->
            Printf.eprintf "fecsynth top: %s\n%!"
              (match get_str "error" j with
              | Some e -> e
              | None -> "daemon answered without ok");
            false
      in
      let ok = frame () in
      if once then if ok then `Ok () else `Error (false, "poll failed")
      else begin
        let rec go () =
          Unix.sleepf interval;
          if frame () then go () else `Error (false, "daemon went away")
        in
        if ok then go () else `Error (false, "poll failed")
      end
    end
  in
  let doc =
    "Live view of a running $(b,fecsynth serve) daemon, polled over the \
     wire $(b,metrics) op: queue depth, per-worker state/age/request, \
     cache hit rate, propagations and iterations per second, plus a GC \
     line from the runtime lens (allocation rate, %gc of wall, last \
     major pause; dashes under $(b,--no-runtime-lens)).  On a TTY the \
     view redraws in place; $(b,--once) prints a single snapshot, \
     $(b,--json) machine-readable polls (with a parsed $(b,gc) object)."
  in
  Cmd.v (Cmd.info "top" ~doc)
    Term.(
      ret
        (const run $ socket_arg $ interval_arg $ once_arg $ json_arg
       $ retries_arg $ connect_timeout_arg))

(* ---------- cache maintenance ---------- *)

let cache_cmd =
  let dir_of cache_dir =
    match cache_dir with
    | Some d -> d
    | None -> Fec_session.Cache.default_dir ()
  in
  let cache_verify_cmd =
    let run cache_dir =
      let dir = dir_of cache_dir in
      let v = Fec_session.Cache.verify ~dir in
      List.iter
        (fun name -> Printf.printf "corrupt:  %s\n" name)
        v.Fec_session.Cache.corrupt;
      List.iter
        (fun name -> Printf.printf "orphan:   %s\n" name)
        v.Fec_session.Cache.orphan_tmp;
      Printf.printf "verified: %d entries ok, %d corrupt, %d orphaned tmp\n"
        v.Fec_session.Cache.ok_entries
        (List.length v.Fec_session.Cache.corrupt)
        (List.length v.Fec_session.Cache.orphan_tmp);
      if v.Fec_session.Cache.corrupt = [] then `Ok () else exit 1
    in
    let doc =
      "Audit every cache entry (structure + CRC) and list orphaned temp \
       files; exits 1 when any entry is corrupt."
    in
    Cmd.v (Cmd.info "verify" ~doc) Term.(ret (const run $ cache_dir_arg))
  in
  let cache_scavenge_cmd =
    let run cache_dir =
      let dir = dir_of cache_dir in
      let n = Fec_session.Cache.scavenge ~dir in
      Printf.printf "scavenged: %d orphaned file(s)\n" n;
      `Ok ()
    in
    let doc =
      "Sweep orphaned temp files left by crashed writers (files whose \
       writing pid is dead); live writes are left alone."
    in
    Cmd.v (Cmd.info "scavenge" ~doc) Term.(ret (const run $ cache_dir_arg))
  in
  let doc = "inspect and repair the content-addressed result cache" in
  Cmd.group (Cmd.info "cache" ~doc) [ cache_verify_cmd; cache_scavenge_cmd ]

(* ---------- verify ---------- *)

let verify_cmd =
  let method_arg =
    let doc = "Distance-checking method: sat (the paper's) or enum." in
    Arg.(value & opt (enum [ ("sat", `Sat); ("enum", `Enum) ]) `Sat & info [ "method" ] ~doc)
  in
  let run code_spec prop_spec method_ timeout trace no_ledger fmt =
    ignore timeout;
    Output.ledger_start ~no_ledger ~subcommand:"verify"
      ~problem:(code_spec ^ " |= " ^ prop_spec)
      ~config:
        [ ("method", match method_ with `Sat -> "sat" | `Enum -> "enum") ]
      ();
    let code = load_code code_spec in
    let prop = load_prop prop_spec in
    (* md claims go through the dedicated checker so the SAT path is used *)
    let env = Spec.Eval.env_of_code code in
    let start = Unix.gettimeofday () in
    let holds =
      Output.with_trace trace (fun () ->
          match (prop, method_) with
          | Spec.Ast.Cmp (Spec.Ast.Eq, Spec.Ast.Func (Spec.Ast.Md, _), Spec.Ast.Int m), `Sat ->
              (Synth.Verify.min_distance_exactly ~method_:Synth.Verify.Sat code m).Synth.Verify.holds
          | Spec.Ast.Cmp (Spec.Ast.Ge, Spec.Ast.Func (Spec.Ast.Md, _), Spec.Ast.Int m), `Sat ->
              (Synth.Verify.min_distance_at_least ~method_:Synth.Verify.Sat code m).Synth.Verify.holds
          | _ -> (Synth.Verify.property env prop).Synth.Verify.holds)
    in
    let elapsed = Unix.gettimeofday () -. start in
    Output.ledger_finish
      ~metrics:[ ("stats.elapsed_s", elapsed) ]
      ~outcome:(if holds then "verified" else "refuted")
      ~exit_code:(if holds then 0 else 1)
      ();
    Output.result fmt
      ~text:(fun () ->
        Printf.printf "%s (%.2f s)\n" (if holds then "VERIFIED" else "REFUTED") elapsed)
      ~json:(fun () ->
        [
          ("command", J.Str "verify");
          ("holds", J.Bool holds);
          ("elapsed_s", J.Float elapsed);
        ]);
    if holds then `Ok () else exit 1
  in
  let doc = "Verify a property of a concrete generator." in
  Cmd.v (Cmd.info "verify" ~doc)
    Term.(
      ret
        (const run $ code_arg $ prop_arg $ method_arg $ timeout_arg
       $ Output.trace_arg $ Output.no_ledger_arg $ Output.stats_arg))

(* ---------- distance ---------- *)

let distance_cmd =
  let run code_spec trace no_ledger fmt =
    Output.ledger_start ~no_ledger ~subcommand:"distance" ~problem:code_spec
      ~config:[] ();
    let code = load_code code_spec in
    let md, pu =
      Output.with_trace trace (fun () ->
          ( Hamming.Distance.min_distance code,
            Hamming.Robustness.undetected_error_probability code ~p:0.1 ))
    in
    Output.result fmt
      ~text:(fun () ->
        Printf.printf
          "(%d,%d) generator: minimum distance %d, %d set bits, P_u(p=0.1) = %.3e\n"
          (Hamming.Code.block_len code) (Hamming.Code.data_len code)
          md (Hamming.Code.set_bits code) pu)
      ~json:(fun () ->
        [
          ("command", J.Str "distance");
          ("block_len", J.Int (Hamming.Code.block_len code));
          ("data_len", J.Int (Hamming.Code.data_len code));
          ("min_distance", J.Int md);
          ("set_bits", J.Int (Hamming.Code.set_bits code));
          ("p_undetected_at_0.1", J.Float pu);
        ]);
    Output.ledger_finish
      ~metrics:[ ("min_distance", float_of_int md) ]
      ~outcome:"ok" ~exit_code:0 ();
    `Ok ()
  in
  let doc = "Compute the exact minimum distance of a generator." in
  Cmd.v (Cmd.info "distance" ~doc)
    Term.(
      ret
        (const run $ code_arg $ Output.trace_arg $ Output.no_ledger_arg
       $ Output.stats_arg))

(* ---------- analyze ---------- *)

let analyze_cmd =
  let format_arg =
    let doc = "Data format to profile: float32 or int32." in
    Arg.(value & opt (enum [ ("float32", `F32); ("int32", `I32) ]) `F32 & info [ "format" ] ~doc)
  in
  let samples_arg =
    let doc = "Monte-Carlo samples for the float profile." in
    Arg.(value & opt int 100_000 & info [ "samples" ] ~doc)
  in
  let run format samples trace no_ledger fmt =
    Output.ledger_start ~no_ledger ~subcommand:"analyze"
      ~problem:(match format with `F32 -> "float32" | `I32 -> "int32")
      ~config:[ ("samples", string_of_int samples) ]
      ();
    let profile =
      Output.with_trace trace (fun () ->
          match format with
          | `F32 -> Channel.Bitflip.float32_profile ~samples ()
          | `I32 -> Channel.Bitflip.int32_profile ())
    in
    let norm = Channel.Bitflip.normalize profile in
    let weights =
      match format with
      | `F32 -> Some (Channel.Bitflip.weights_for_upper_bits ~bits:16 profile)
      | `I32 -> None
    in
    Output.result fmt
      ~text:(fun () ->
        print_endline "bit  normalized-avg-error  non-numeric";
        Array.iteri
          (fun i v ->
            Printf.printf "%2d   %-20.6g %d\n" i v
              profile.Channel.Bitflip.non_numeric.(i))
          norm;
        match weights with
        | Some w ->
            Printf.printf "\nsuggested upper-16 weights: %s\n"
              (String.concat "," (Array.to_list (Array.map string_of_int w)))
        | None -> ())
      ~json:(fun () ->
        [
          ("command", J.Str "analyze");
          ("format", J.Str (match format with `F32 -> "float32" | `I32 -> "int32"));
          ( "normalized_avg_error",
            J.List (Array.to_list (Array.map (fun v -> J.Float v) norm)) );
          ( "non_numeric",
            J.List
              (Array.to_list
                 (Array.map
                    (fun n -> J.Int n)
                    profile.Channel.Bitflip.non_numeric)) );
        ]
        @
        match weights with
        | Some w ->
            [
              ( "suggested_upper16_weights",
                J.List (Array.to_list (Array.map (fun v -> J.Int v) w)) );
            ]
        | None -> []);
    Output.ledger_finish ~outcome:"ok" ~exit_code:0 ();
    `Ok ()
  in
  let doc = "Per-bit numeric-error profile of a data format (paper Figure 1)." in
  Cmd.v (Cmd.info "analyze" ~doc)
    Term.(
      ret
        (const run $ format_arg $ samples_arg $ Output.trace_arg
       $ Output.no_ledger_arg $ Output.stats_arg))

(* ---------- emit ---------- *)

let emit_cmd =
  let lang_arg =
    let doc = "Output language: c or ocaml." in
    Arg.(value & opt (enum [ ("c", `C); ("ocaml", `OCaml) ]) `C & info [ "lang" ] ~doc)
  in
  let out_arg =
    let doc = "Output file (stdout if omitted)." in
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  let run code_spec lang out trace no_ledger fmt =
    Output.ledger_start ~no_ledger ~subcommand:"emit" ~problem:code_spec
      ~config:[ ("lang", match lang with `C -> "c" | `OCaml -> "ocaml") ]
      ();
    let code = load_code code_spec in
    let source =
      Output.with_trace trace (fun () ->
          match lang with
          | `C -> Hamming.Emit.c_source code
          | `OCaml -> Hamming.Emit.ocaml_source code)
    in
    (match out with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        output_string oc source;
        close_out oc);
    Output.result fmt
      ~text:(fun () ->
        match out with
        | None -> print_string source
        | Some path ->
            Printf.printf "wrote %s (%d bytes)\n" path (String.length source))
      ~json:(fun () ->
        [
          ("command", J.Str "emit");
          ("lang", J.Str (match lang with `C -> "c" | `OCaml -> "ocaml"));
          ("bytes", J.Int (String.length source));
        ]
        @ (match out with
          | Some path -> [ ("output", J.Str path) ]
          | None -> [ ("source", J.Str source) ]));
    Output.ledger_finish ~outcome:"ok" ~exit_code:0 ();
    `Ok ()
  in
  let doc = "Emit a specialized encode/check implementation for a generator." in
  Cmd.v (Cmd.info "emit" ~doc)
    Term.(
      ret
        (const run $ code_arg $ lang_arg $ out_arg $ Output.trace_arg
       $ Output.no_ledger_arg $ Output.stats_arg))

(* ---------- smt ---------- *)

let smt_cmd =
  let file_arg =
    let doc = "SMT-LIB v2 script (Boolean fragment); '-' reads stdin." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)
  in
  let run file trace no_ledger fmt =
    Output.ledger_start ~no_ledger ~subcommand:"smt" ~problem:file ~config:[]
      ();
    let script =
      if file = "-" then In_channel.input_all stdin else read_file file
    in
    match Output.with_trace trace (fun () -> Smtlite.Smtlib.run_to_string script) with
    | out ->
        Output.result fmt
          ~text:(fun () -> if out <> "" then print_endline out)
          ~json:(fun () ->
            [
              ("command", J.Str "smt");
              ( "answers",
                J.List
                  (List.filter_map
                     (fun l -> if l = "" then None else Some (J.Str l))
                     (String.split_on_char '\n' out)) );
            ]);
        Output.ledger_finish ~outcome:"ok" ~exit_code:0 ();
        `Ok ()
    | exception Smtlite.Smtlib.Error msg ->
        Output.ledger_finish ~outcome:"error" ~exit_code:124 ();
        `Error (false, msg)
  in
  let doc = "Run an SMT-LIB v2 script on the built-in Boolean solver." in
  Cmd.v (Cmd.info "smt" ~doc)
    Term.(
      ret
        (const run $ file_arg $ Output.trace_arg $ Output.no_ledger_arg
       $ Output.stats_arg))

(* ---------- certify ---------- *)

let certify_cmd =
  let md_arg =
    let doc = "Minimum-distance bound to certify." in
    Arg.(required & opt (some int) None & info [ "m"; "min-distance" ] ~docv:"MD" ~doc)
  in
  let out_arg =
    let doc = "Write the DRAT certificate to FILE." in
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  let run code_spec md out trace no_ledger fmt =
    Output.ledger_start ~no_ledger ~subcommand:"certify"
      ~problem:(Printf.sprintf "%s md>=%d" code_spec md)
      ~config:[] ();
    let code = load_code code_spec in
    let start = Unix.gettimeofday () in
    match
      Output.with_trace trace (fun () ->
          Hamming.Distance.certified_min_distance_at_least code md)
    with
    | `Certified proof ->
        let elapsed = Unix.gettimeofday () -. start in
        let steps = List.length (Sat.Drat.parse proof) in
        Output.ledger_finish
          ~metrics:
            [ ("stats.elapsed_s", elapsed); ("proof_steps", float_of_int steps) ]
          ~outcome:"certified" ~exit_code:0 ();
        (match out with
        | None -> ()
        | Some path ->
            let oc = open_out path in
            output_string oc proof;
            close_out oc);
        Output.result fmt
          ~text:(fun () ->
            Printf.printf
              "CERTIFIED md >= %d (%.2f s); DRAT proof: %d steps, validated by the \
               independent checker\n"
              md elapsed steps;
            match out with
            | None -> ()
            | Some path -> Printf.printf "certificate written to %s\n" path)
          ~json:(fun () ->
            [
              ("command", J.Str "certify");
              ("certified", J.Bool true);
              ("min_distance", J.Int md);
              ("elapsed_s", J.Float elapsed);
              ("proof_steps", J.Int steps);
            ]
            @ match out with Some p -> [ ("output", J.Str p) ] | None -> []);
        `Ok ()
    | `Refuted witness ->
        Output.ledger_finish ~outcome:"refuted" ~exit_code:1 ();
        Output.result fmt
          ~text:(fun () ->
            Printf.printf
              "REFUTED: data word %s encodes to codeword weight %d < %d\n"
              (Gf2.Bitvec.to_string witness)
              (Gf2.Bitvec.popcount (Hamming.Code.encode code witness))
              md)
          ~json:(fun () ->
            [
              ("command", J.Str "certify");
              ("certified", J.Bool false);
              ("min_distance", J.Int md);
              ("witness", J.Str (Gf2.Bitvec.to_string witness));
              ( "witness_weight",
                J.Int (Gf2.Bitvec.popcount (Hamming.Code.encode code witness)) );
            ]);
        exit 1
  in
  let doc = "Certify a minimum-distance bound with a validated DRAT proof." in
  Cmd.v (Cmd.info "certify" ~doc)
    Term.(
      ret
        (const run $ code_arg $ md_arg $ out_arg $ Output.trace_arg
       $ Output.no_ledger_arg $ Output.stats_arg))

(* ---------- robustness ---------- *)

let robustness_cmd =
  let words_arg =
    let doc = "Number of random data words." in
    Arg.(value & opt int 1_000_000 & info [ "words" ] ~doc)
  in
  let p_arg =
    let doc = "Channel bit-error probability." in
    Arg.(value & opt float 0.1 & info [ "error-prob" ] ~doc)
  in
  let seed_arg =
    let doc = "PRNG seed." in
    Arg.(value & opt int 0xFEC & info [ "seed" ] ~doc)
  in
  let run code_spec words p seed trace no_ledger fmt =
    Output.ledger_start ~no_ledger ~subcommand:"robustness" ~problem:code_spec
      ~config:
        [
          ("words", string_of_int words);
          ("error_prob", string_of_float p);
          ("seed", string_of_int seed);
        ]
      ();
    let code = load_code code_spec in
    let md, r =
      Output.with_trace trace (fun () ->
          let md = Hamming.Distance.min_distance code in
          let codec = Channel.Montecarlo.codec_of_code code in
          ( md,
            Channel.Montecarlo.run ~codec ~md ~words ~p ~seed
              (Channel.Montecarlo.uniform_data codec) ))
    in
    Output.result fmt
      ~text:(fun () ->
        Printf.printf
          "words %d  p %.3f  md %d\n>=md flips: %d (theory %.0f)\nundetected: %d\n"
          words p md r.Channel.Montecarlo.flips_ge_md
          r.Channel.Montecarlo.expected_flips_ge_md
          r.Channel.Montecarlo.undetected)
      ~json:(fun () ->
        [
          ("command", J.Str "robustness");
          ("words", J.Int words);
          ("error_prob", J.Float p);
          ("min_distance", J.Int md);
          ("flips_ge_md", J.Int r.Channel.Montecarlo.flips_ge_md);
          ( "expected_flips_ge_md",
            J.Float r.Channel.Montecarlo.expected_flips_ge_md );
          ("undetected", J.Int r.Channel.Montecarlo.undetected);
        ]);
    Output.ledger_finish
      ~metrics:
        [
          ("undetected", float_of_int r.Channel.Montecarlo.undetected);
          ("flips_ge_md", float_of_int r.Channel.Montecarlo.flips_ge_md);
        ]
      ~outcome:"ok" ~exit_code:0 ();
    `Ok ()
  in
  let doc = "Monte-Carlo robustness of a generator on a binary symmetric channel." in
  Cmd.v (Cmd.info "robustness" ~doc)
    Term.(
      ret
        (const run $ code_arg $ words_arg $ p_arg $ seed_arg $ Output.trace_arg
       $ Output.no_ledger_arg $ Output.stats_arg))

(* ---------- trace family: check / report / flame / diff ---------- *)

module An = Telemetry.Analyze

let load_parsed file =
  match An.of_string (read_file file) with
  | Ok p -> Ok p
  | Error msg -> Error ("invalid trace: " ^ msg)

let trace_file_arg =
  let doc = "NDJSON telemetry trace (as written by --trace)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)

(* One implementation behind both [fecsynth trace check] and the
   original [fecsynth trace-check] spelling, byte-identical output. *)
let trace_check_run file fmt =
  match load_parsed file with
  | Error msg -> `Error (false, msg)
  | Ok p ->
      let c = An.check p in
      if c.An.check_truncated then
        Printf.eprintf
          "fecsynth: warning: final trace line is truncated (interrupted \
           write); ignored after %d complete events\n%!"
          c.An.total;
      if c.An.unbalanced_spans > 0 then
        Printf.eprintf
          "fecsynth: warning: %d unbalanced span(s) (begin without end, or \
           end without begin)\n%!"
          c.An.unbalanced_spans;
      if c.An.out_of_order > 0 then
        Printf.eprintf
          "fecsynth: warning: %d event(s) go back in time within their \
           worker stream\n%!"
          c.An.out_of_order;
      (* unknown fields are a vocabulary mismatch (a trace from a newer
         fecsynth), not corruption: warn, keep the payload, never fail *)
      if c.An.unknown_fields > 0 then
        Printf.eprintf
          "fecsynth: warning: %d event(s) carry field(s) unknown to this \
           build (%s); tolerated\n%!"
          c.An.unknown_fields
          (String.concat ", " c.An.unknown_field_names);
      Output.result fmt
        ~text:(fun () ->
          Printf.printf "ok: %d events\n" c.An.total;
          List.iter
            (fun ((kind, name), n) ->
              Printf.printf "%-10s %-24s %d\n" kind name n)
            c.An.counts)
        ~json:(fun () ->
          [
            ("command", J.Str "trace-check");
            ("events", J.Int c.An.total);
            ("truncated_tail", J.Bool c.An.check_truncated);
            ("unbalanced_spans", J.Int c.An.unbalanced_spans);
            ("out_of_order", J.Int c.An.out_of_order);
            ("unknown_fields", J.Int c.An.unknown_fields);
            ( "unknown_field_names",
              J.List (List.map (fun s -> J.Str s) c.An.unknown_field_names) );
            ( "counts",
              J.List
                (List.map
                   (fun ((kind, name), n) ->
                     J.Obj
                       [
                         ("kind", J.Str kind);
                         ("name", J.Str name);
                         ("count", J.Int n);
                       ])
                   c.An.counts) );
          ]);
      `Ok ()

let trace_check_doc =
  "Validate an NDJSON telemetry trace: every line must parse and carry \
   ts/kind/name; prints per-(kind, name) event counts.  Warns about a \
   truncated final line (interrupted write), unbalanced spans and \
   out-of-order timestamps."

let trace_check_term = Term.(ret (const trace_check_run $ trace_file_arg $ Output.stats_arg))

(* legacy spelling, kept as a hidden-in-docs-but-working alias *)
let trace_check_cmd = Cmd.v (Cmd.info "trace-check" ~doc:trace_check_doc) trace_check_term

let trace_check_sub = Cmd.v (Cmd.info "check" ~doc:trace_check_doc) trace_check_term

let trace_report_cmd =
  let top_arg =
    let doc = "Detail the $(docv) slowest CEGIS iterations." in
    Arg.(value & opt int 3 & info [ "top" ] ~docv:"N" ~doc)
  in
  let request_arg =
    let doc =
      "Slice a serve-daemon trace down to the one request stamped with \
       id $(docv) and attribute its wall time end to end: queue wait, \
       then per-phase span self-times.  Spans still open at the end of \
       the slice (a reaped stall) are attributed to the phase they were \
       stuck in."
    in
    Arg.(value & opt (some string) None & info [ "request" ] ~docv:"ID" ~doc)
  in
  (* the "runtime" section (mutator vs GC split from the runtime lens),
     shared by the whole-trace and per-request reports; absent when the
     trace carries no lens data *)
  let runtime_text rt =
    Printf.printf "\nruntime:     %.1f%% of wall observed by the GC lens\n"
      rt.An.rt_covered_pct;
    Printf.printf "  mutator:   %.3fs\n" rt.An.rt_total_mutator_s;
    Printf.printf "  gc:        %.3fs (%d pause event%s, max %.2fms)\n"
      rt.An.rt_gc_s rt.An.rt_pauses
      (if rt.An.rt_pauses = 1 then "" else "s")
      (rt.An.rt_max_pause_s *. 1e3);
    Printf.printf "  wait:      %.3fs\n" rt.An.rt_total_wait_s;
    Printf.printf "\n%-8s %10s %10s %10s %10s %10s %8s %8s %12s\n" "domain"
      "covered_s" "mutator_s" "minor_s" "major_s" "wait_s" "minors" "majors"
      "alloc_words";
    List.iter
      (fun d ->
        Printf.printf "%-8d %10.3f %10.3f %10.3f %10.3f %10.3f %8d %8d %12d\n"
          d.An.rt_domain d.An.rt_covered_s d.An.rt_mutator_s d.An.rt_minor_s
          d.An.rt_major_s d.An.rt_wait_s d.An.rt_minor_n d.An.rt_major_n
          d.An.rt_alloc_words)
      rt.An.rt_domains
  in
  let runtime_json rt =
    ( "runtime",
      J.Obj
        [
          ("covered_pct", J.Float rt.An.rt_covered_pct);
          ("mutator_s", J.Float rt.An.rt_total_mutator_s);
          ("gc_s", J.Float rt.An.rt_gc_s);
          ("wait_s", J.Float rt.An.rt_total_wait_s);
          ("pauses", J.Int rt.An.rt_pauses);
          ("max_pause_s", J.Float rt.An.rt_max_pause_s);
          ( "domains",
            J.List
              (List.map
                 (fun d ->
                   J.Obj
                     [
                       ("domain", J.Int d.An.rt_domain);
                       ("covered_s", J.Float d.An.rt_covered_s);
                       ("mutator_s", J.Float d.An.rt_mutator_s);
                       ("minor_s", J.Float d.An.rt_minor_s);
                       ("major_s", J.Float d.An.rt_major_s);
                       ("wait_s", J.Float d.An.rt_wait_s);
                       ("minor_n", J.Int d.An.rt_minor_n);
                       ("major_n", J.Int d.An.rt_major_n);
                       ("alloc_words", J.Int d.An.rt_alloc_words);
                     ])
                 rt.An.rt_domains) );
        ] )
  in
  let run_request p rid fmt =
    match An.request_report ~request:rid p with
    | None ->
        let known = An.request_ids p in
        `Error
          ( false,
            Printf.sprintf "request %S not in trace%s" rid
              (match known with
              | [] -> " (no request-stamped events at all)"
              | ids ->
                  Printf.sprintf " (has: %s)"
                    (String.concat ", "
                       (List.map fst
                          (List.filteri (fun i _ -> i < 8) ids)))) )
    | Some r ->
        let rt = An.runtime ~request:rid p in
        Output.result fmt
          ~text:(fun () ->
            Printf.printf "request:     %s\n" r.An.rq_id;
            Printf.printf "events:      %d\n" r.An.rq_events;
            Printf.printf "wall:        %.3fs\n" r.An.rq_wall_s;
            Printf.printf "queue wait:  %.3fs\n" r.An.rq_queue_wait_s;
            Printf.printf "attributed:  %.1f%% (%.3fs)\n" r.An.rq_attributed_pct
              r.An.rq_attributed_s;
            if r.An.rq_open_spans > 0 then
              Printf.printf "open spans:  %d (still running or reaped)\n"
                r.An.rq_open_spans;
            if r.An.rq_phases <> [] then begin
              Printf.printf "\n%-24s %12s %8s\n" "phase" "total_s" "calls";
              List.iter
                (fun ph ->
                  Printf.printf "%-24s %12.4f %8d\n" ph.An.rq_phase
                    ph.An.rq_total_s ph.An.rq_calls)
                r.An.rq_phases
            end;
            Option.iter runtime_text rt)
          ~json:(fun () ->
            (match rt with Some s -> [ runtime_json s ] | None -> [])
            @ [
              ("command", J.Str "trace-report");
              ("request", J.Str r.An.rq_id);
              ("events", J.Int r.An.rq_events);
              ("wall_s", J.Float r.An.rq_wall_s);
              ("queue_wait_s", J.Float r.An.rq_queue_wait_s);
              ("open_spans", J.Int r.An.rq_open_spans);
              ("attributed_s", J.Float r.An.rq_attributed_s);
              ("attributed_pct", J.Float r.An.rq_attributed_pct);
              ( "phases",
                J.List
                  (List.map
                     (fun ph ->
                       J.Obj
                         [
                           ("phase", J.Str ph.An.rq_phase);
                           ("total_s", J.Float ph.An.rq_total_s);
                           ("calls", J.Int ph.An.rq_calls);
                         ])
                     r.An.rq_phases) );
            ]);
        `Ok ()
  in
  let run file top request fmt =
    match load_parsed file with
    | Error msg -> `Error (false, msg)
    | Ok p -> (
        match request with
        | Some rid -> run_request p rid fmt
        | None ->
        let r = An.report ~top p in
        let rt = An.runtime p in
        Output.result fmt
          ~text:(fun () ->
            Printf.printf "events:      %d\n" r.An.events;
            Printf.printf "wall:        %.3fs\n" r.An.wall_s;
            Printf.printf "busy:        %.3fs\n" r.An.busy_s;
            Printf.printf "attributed:  %.1f%% (%.3fs unattributed)\n"
              r.An.attributed_pct r.An.unattributed_s;
            Printf.printf "iterations:  %d\n" r.An.iterations;
            if r.An.phases <> [] then begin
              Printf.printf "\n%-24s %12s %8s\n" "phase" "total_s" "calls";
              List.iter
                (fun ph ->
                  Printf.printf "%-24s %12.4f %8d\n" ph.An.phase ph.An.total_s
                    ph.An.calls)
                r.An.phases
            end;
            Option.iter runtime_text rt;
            (match r.An.sat_totals with
            | [] -> ()
            | totals ->
                Printf.printf "\nsat:";
                List.iter (fun (k, v) -> Printf.printf " %s=%d" k v) totals;
                print_newline ());
            match r.An.slowest with
            | [] -> ()
            | slow ->
                Printf.printf "\nslowest iterations:\n";
                List.iter
                  (fun (it, dur, kids) ->
                    Printf.printf "  #%-6d %8.4fs" it dur;
                    List.iter
                      (fun (name, d) -> Printf.printf "  %s=%.4fs" name d)
                      kids;
                    print_newline ())
                  slow)
          ~json:(fun () ->
            (match rt with Some s -> [ runtime_json s ] | None -> [])
            @ [
              ("command", J.Str "trace-report");
              ("events", J.Int r.An.events);
              ("wall_s", J.Float r.An.wall_s);
              ("busy_s", J.Float r.An.busy_s);
              ("unattributed_s", J.Float r.An.unattributed_s);
              ("attributed_pct", J.Float r.An.attributed_pct);
              ("iterations", J.Int r.An.iterations);
              ( "phases",
                J.List
                  (List.map
                     (fun ph ->
                       J.Obj
                         [
                           ("phase", J.Str ph.An.phase);
                           ("total_s", J.Float ph.An.total_s);
                           ("calls", J.Int ph.An.calls);
                         ])
                     r.An.phases) );
              ( "sat",
                J.Obj (List.map (fun (k, v) -> (k, J.Int v)) r.An.sat_totals)
              );
              ( "slowest",
                J.List
                  (List.map
                     (fun (it, dur, kids) ->
                       J.Obj
                         [
                           ("iter", J.Int it);
                           ("dur_s", J.Float dur);
                           ( "children",
                             J.Obj
                               (List.map (fun (n, d) -> (n, J.Float d)) kids)
                           );
                         ])
                     r.An.slowest) );
            ]);
        `Ok ())
  in
  let doc =
    "Per-phase wall-time attribution of a synthesis trace: where the run \
     spent its time (SAT propagate/analyze/restart, Smtlite encoding, CEGIS \
     verification, portfolio idle), per iteration and in total.  With \
     $(b,--request), slice a serve-daemon trace down to one request."
  in
  Cmd.v (Cmd.info "report" ~doc)
    Term.(
      ret (const run $ trace_file_arg $ top_arg $ request_arg $ Output.stats_arg))

let trace_flame_cmd =
  let run file =
    match load_parsed file with
    | Error msg -> `Error (false, msg)
    | Ok p ->
        print_string (An.flame_to_string p);
        `Ok ()
  in
  let doc =
    "Render the span tree as folded stacks (one \"a;b;c microseconds\" line \
     per stack), the input format of flamegraph.pl and speedscope."
  in
  Cmd.v (Cmd.info "flame" ~doc) Term.(ret (const run $ trace_file_arg))

let contains_sub ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let pct_str pct =
  if Float.is_finite pct then Printf.sprintf "%+.1f%%" pct
  else if pct > 0.0 then "+inf%"
  else "-inf%"

(* Shared result rendering for [trace diff] and [runs compare]: the two
   commands judge different inputs but report identically.  Metrics
   present on only one side are listed by name (added/removed), never
   silently dropped — a metric that disappears can hide a regression.
   Exits 1 on any regression (the CI gate contract). *)
let print_metric_diff fmt ~threshold ~command ~label_a ~label_b ~extra_json
    (d : An.diff) =
  let delta_json (dl : An.delta) =
    J.Obj
      [
        ("key", J.Str dl.An.key);
        ("a", J.Float dl.An.va);
        ("b", J.Float dl.An.vb);
        ( "pct",
          if Float.is_finite dl.An.pct then J.Float dl.An.pct
          else J.Str (pct_str dl.An.pct) );
      ]
  in
  Output.result fmt
    ~text:(fun () ->
      Printf.printf
        "%s vs %s: %d shared metrics (%d only in baseline, %d only in \
         candidate)\n"
        label_a label_b d.An.shared d.An.only_a d.An.only_b;
      List.iter
        (fun k -> Printf.printf "removed      %s\n" k)
        d.An.removed;
      List.iter (fun k -> Printf.printf "added        %s\n" k) d.An.added;
      List.iter
        (fun (dl : An.delta) ->
          Printf.printf "regression   %-40s %12g -> %-12g %s\n" dl.An.key
            dl.An.va dl.An.vb (pct_str dl.An.pct))
        d.An.regressions;
      List.iter
        (fun (dl : An.delta) ->
          Printf.printf "improvement  %-40s %12g -> %-12g %s\n" dl.An.key
            dl.An.va dl.An.vb (pct_str dl.An.pct))
        d.An.improvements;
      if d.An.regressions = [] then
        Printf.printf "ok: no metric regressed beyond %.1f%%\n" threshold
      else
        Printf.printf "FAIL: %d metric(s) regressed beyond %.1f%%\n"
          (List.length d.An.regressions)
          threshold)
    ~json:(fun () ->
      [ ("command", J.Str command) ]
      @ extra_json
      @ [
          ("threshold_pct", J.Float threshold);
          ("shared", J.Int d.An.shared);
          ("only_a", J.Int d.An.only_a);
          ("only_b", J.Int d.An.only_b);
          ("added", J.List (List.map (fun k -> J.Str k) d.An.added));
          ("removed", J.List (List.map (fun k -> J.Str k) d.An.removed));
          ("regressions", J.List (List.map delta_json d.An.regressions));
          ("improvements", J.List (List.map delta_json d.An.improvements));
        ]);
  if d.An.regressions <> [] then exit 1;
  `Ok ()

let trace_diff_cmd =
  let a_arg =
    let doc = "Baseline: an NDJSON trace or a BENCH_*.json file." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"A" ~doc)
  in
  let b_arg =
    let doc = "Candidate to compare against the baseline." in
    Arg.(required & pos 1 (some string) None & info [] ~docv:"B" ~doc)
  in
  let threshold_arg =
    let doc =
      "Flag shared metrics that changed by more than $(docv) percent."
    in
    Arg.(value & opt float 10.0 & info [ "threshold" ] ~docv:"PCT" ~doc)
  in
  let ignore_arg =
    let doc =
      "Drop metrics whose key contains $(docv) before comparing \
       (repeatable).  Lets a CI gate skip noisy wall-clock metrics while \
       still judging deterministic counters."
    in
    Arg.(value & opt_all string [] & info [ "ignore" ] ~docv:"SUBSTR" ~doc)
  in
  let run a b threshold ignored fmt =
    match
      (An.metrics_of_string (read_file a), An.metrics_of_string (read_file b))
    with
    | Error msg, _ -> `Error (false, Printf.sprintf "%s: %s" a msg)
    | _, Error msg -> `Error (false, Printf.sprintf "%s: %s" b msg)
    | Ok (ma, sa), Ok (mb, sb) ->
        let keep (key, _) =
          not (List.exists (fun sub -> contains_sub ~sub key) ignored)
        in
        let ma = List.filter keep ma and mb = List.filter keep mb in
        let d = An.diff ~threshold ma mb in
        print_metric_diff fmt ~threshold ~command:"trace-diff"
          ~label_a:(An.source_name sa ^ " " ^ a)
          ~label_b:(An.source_name sb ^ " " ^ b)
          ~extra_json:
            [
              ("a", J.Str a);
              ("b", J.Str b);
              ("source_a", J.Str (An.source_name sa));
              ("source_b", J.Str (An.source_name sb));
            ]
          d
  in
  let doc =
    "Compare two traces or two bench baselines metric by metric; exits 1 \
     when any shared metric regresses beyond the threshold (the bench \
     regression gate)."
  in
  let exits =
    Cmd.Exit.info 1 ~doc:"a shared metric regressed beyond the threshold."
    :: Cmd.Exit.defaults
  in
  Cmd.v (Cmd.info "diff" ~doc ~exits)
    Term.(
      ret
        (const run $ a_arg $ b_arg $ threshold_arg $ ignore_arg
       $ Output.stats_arg))

let trace_cmd =
  let doc = "validate, profile and compare NDJSON telemetry traces" in
  Cmd.group (Cmd.info "trace" ~doc)
    [ trace_check_sub; trace_report_cmd; trace_flame_cmd; trace_diff_cmd ]

(* ---------- version ---------- *)

let version_cmd =
  let json_arg =
    let doc = "Print the build identity as one JSON object." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let run json =
    let b = Telemetry.Buildinfo.detect () in
    if json then Output.print_json (Telemetry.Buildinfo.to_json b)
    else begin
      Printf.printf "fecsynth %s\n" b.Telemetry.Buildinfo.code_version;
      (match b.Telemetry.Buildinfo.git with
      | Some g -> Printf.printf "git: %s\n" g
      | None -> ());
      Printf.printf "ocaml: %s\n" b.Telemetry.Buildinfo.ocaml;
      Printf.printf "features: %s\n"
        (String.concat " " b.Telemetry.Buildinfo.features)
    end
  in
  let doc =
    "Print the build identity: code version, git describe (when available), \
     OCaml version and enabled features — the same record every run-ledger \
     entry embeds."
  in
  Cmd.v (Cmd.info "version" ~doc) Term.(const run $ json_arg)

(* ---------- runs: the persistent cross-run ledger ---------- *)

module L = Telemetry.Ledger

let ledger_dir_arg =
  let doc =
    "Ledger directory to read (default: $(b,FEC_LEDGER_DIR) when set, else \
     .fecsynth/ledger)."
  in
  Arg.(value & opt (some string) None & info [ "ledger-dir" ] ~docv:"DIR" ~doc)

let resolve_dir = function Some d -> d | None -> L.default_dir ()

(* Reading mirrors [trace check]: a truncated tail and newer-format
   records are tolerated with a warning, real corruption is an error. *)
let load_entries dir =
  match L.load ~dir with
  | Error msg -> Error (Printf.sprintf "%s: %s" (L.file ~dir) msg)
  | Ok l ->
      if l.L.truncated then
        Printf.eprintf
          "fecsynth: warning: final ledger line is truncated (interrupted \
           append); ignored\n%!";
      if l.L.skipped_future > 0 then
        Printf.eprintf
          "fecsynth: warning: skipped %d record(s) written by a newer ledger \
           format (this build reads v%d and older)\n%!"
          l.L.skipped_future L.format_version;
      Ok l.L.entries

(* Ids are positional — 1-based from the oldest record, computed at read
   time (never stored, so concurrent appenders can't race on them);
   negative ids count back from the newest (-1 = latest). *)
let resolve_id entries id =
  let n = List.length entries in
  let idx = if id < 0 then n + id else id - 1 in
  if idx < 0 || idx >= n then
    Error
      (Printf.sprintf "run id %d out of range (the ledger holds %d run%s)" id
         n
         (if n = 1 then "" else "s"))
  else Ok (idx + 1, List.nth entries idx)

let entry_json ~id e =
  match L.to_json e with
  | J.Obj kvs -> J.Obj (("id", J.Int id) :: kvs)
  | j -> j

let runs_list_cmd =
  let sub_arg =
    let doc = "Only runs of this subcommand (synth, optimize, bench, ...)." in
    Arg.(
      value & opt (some string) None & info [ "subcommand" ] ~docv:"CMD" ~doc)
  in
  let problem_arg =
    let doc = "Only runs whose problem contains $(docv)." in
    Arg.(
      value & opt (some string) None & info [ "problem" ] ~docv:"SUBSTR" ~doc)
  in
  let outcome_arg =
    let doc = "Only runs with this outcome (synthesized, timeout, crash, ...)." in
    Arg.(
      value & opt (some string) None & info [ "outcome" ] ~docv:"OUTCOME" ~doc)
  in
  let since_arg =
    let doc =
      "Only runs at or after this UTC timestamp (ISO-8601; prefixes work, \
       e.g. 2026-08)."
    in
    Arg.(value & opt (some string) None & info [ "since" ] ~docv:"TS" ~doc)
  in
  let cache_hits_arg =
    let doc = "Only runs answered from the result cache." in
    Arg.(value & flag & info [ "cache-hits" ] ~doc)
  in
  let run dir sub problem outcome since cache_hits fmt =
    match load_entries (resolve_dir dir) with
    | Error msg -> `Error (false, msg)
    | Ok entries ->
        let hits =
          List.filteri
            (fun _ ((_, e) : int * L.entry) ->
              (match sub with Some c -> e.L.subcommand = c | None -> true)
              && (match problem with
                 | Some p -> contains_sub ~sub:p e.L.problem
                 | None -> true)
              && (match outcome with
                 | Some o -> e.L.outcome = o
                 | None -> true)
              && ((not cache_hits) || e.L.cache_hit)
              && match since with Some ts -> e.L.ts >= ts | None -> true)
            (List.mapi (fun i e -> (i + 1, e)) entries)
        in
        Output.result fmt
          ~text:(fun () ->
            if hits = [] then print_endline "no recorded runs match"
            else begin
              Printf.printf "%-4s %-20s %-10s %-12s %4s %9s  %s\n" "id" "ts"
                "cmd" "outcome" "exit" "wall_s" "problem";
              List.iter
                (fun ((id, e) : int * L.entry) ->
                  Printf.printf "%-4d %-20s %-10s %-12s %4d %9.3f  %s\n" id
                    e.L.ts e.L.subcommand e.L.outcome e.L.exit_code e.L.wall_s
                    e.L.problem)
                hits
            end)
          ~json:(fun () ->
            [
              ("command", J.Str "runs-list");
              ( "runs",
                J.List (List.map (fun (id, e) -> entry_json ~id e) hits) );
            ]);
        `Ok ()
  in
  let doc = "List recorded runs, optionally filtered." in
  Cmd.v (Cmd.info "list" ~doc)
    Term.(
      ret
        (const run $ ledger_dir_arg $ sub_arg $ problem_arg $ outcome_arg
       $ since_arg $ cache_hits_arg $ Output.stats_arg))

let run_id_arg ~at ~docv =
  let doc =
    "Run id from $(b,runs list); negative ids count back from the newest \
     (-1 = latest)."
  in
  Arg.(required & pos at (some int) None & info [] ~docv ~doc)

let runs_show_cmd =
  let run dir id fmt =
    match load_entries (resolve_dir dir) with
    | Error msg -> `Error (false, msg)
    | Ok entries -> (
        match resolve_id entries id with
        | Error msg -> `Error (false, msg)
        | Ok (id, e) ->
            Output.result fmt
              ~text:(fun () ->
                Printf.printf "run %d: %s at %s\n" id e.L.subcommand e.L.ts;
                Printf.printf "outcome:  %s (exit %d)\n" e.L.outcome
                  e.L.exit_code;
                if e.L.cache_hit then print_endline "cache:    hit";
                Printf.printf "wall:     %.3f s\n" e.L.wall_s;
                Printf.printf "problem:  %s\n" e.L.problem;
                Printf.printf "build:    fecsynth %s, ocaml %s%s\n"
                  e.L.build.Telemetry.Buildinfo.code_version
                  e.L.build.Telemetry.Buildinfo.ocaml
                  (match e.L.build.Telemetry.Buildinfo.git with
                  | Some g -> ", git " ^ g
                  | None -> "");
                if e.L.config <> [] then begin
                  print_endline "config:";
                  List.iter
                    (fun (k, v) -> Printf.printf "  %s = %s\n" k v)
                    e.L.config
                end;
                if e.L.metrics <> [] then begin
                  print_endline "metrics:";
                  List.iter
                    (fun (k, v) -> Printf.printf "  %-28s %g\n" k v)
                    e.L.metrics
                end;
                match e.L.stats with
                | Some s ->
                    Printf.printf "stats:    %s\n" (J.to_string s)
                | None -> ())
              ~json:(fun () ->
                match entry_json ~id e with
                | J.Obj kvs -> ("command", J.Str "runs-show") :: kvs
                | j -> [ ("command", J.Str "runs-show"); ("run", j) ]);
            `Ok ())
  in
  let doc = "Show one recorded run in full." in
  Cmd.v (Cmd.info "show" ~doc)
    Term.(
      ret
        (const run $ ledger_dir_arg
        $ run_id_arg ~at:0 ~docv:"ID"
        $ Output.stats_arg))

let runs_compare_cmd =
  let threshold_arg =
    let doc =
      "Flag shared metrics that changed by more than $(docv) percent."
    in
    Arg.(value & opt float 10.0 & info [ "threshold" ] ~docv:"PCT" ~doc)
  in
  let ignore_arg =
    let doc =
      "Drop metrics whose key contains $(docv) before comparing (repeatable; \
       e.g. --ignore wall_s to skip wall-clock noise)."
    in
    Arg.(value & opt_all string [] & info [ "ignore" ] ~docv:"SUBSTR" ~doc)
  in
  let run dir a b threshold ignored fmt =
    match load_entries (resolve_dir dir) with
    | Error msg -> `Error (false, msg)
    | Ok entries -> (
        match (resolve_id entries a, resolve_id entries b) with
        | Error msg, _ | _, Error msg -> `Error (false, msg)
        | Ok (ida, ea), Ok (idb, eb) ->
            let keep (key, _) =
              not (List.exists (fun sub -> contains_sub ~sub key) ignored)
            in
            let ma = List.filter keep ea.L.metrics
            and mb = List.filter keep eb.L.metrics in
            let d = An.diff ~threshold ma mb in
            print_metric_diff fmt ~threshold ~command:"runs-compare"
              ~label_a:
                (Printf.sprintf "run %d (%s %s)" ida ea.L.subcommand ea.L.ts)
              ~label_b:
                (Printf.sprintf "run %d (%s %s)" idb eb.L.subcommand eb.L.ts)
              ~extra_json:[ ("a", J.Int ida); ("b", J.Int idb) ]
              d)
  in
  let doc =
    "Compare two recorded runs metric by metric (the $(b,trace diff) \
     machinery over ledger records); exits 1 when any shared metric \
     regressed beyond the threshold."
  in
  let exits =
    Cmd.Exit.info 1 ~doc:"a shared metric regressed beyond the threshold."
    :: Cmd.Exit.defaults
  in
  Cmd.v (Cmd.info "compare" ~doc ~exits)
    Term.(
      ret
        (const run $ ledger_dir_arg
        $ run_id_arg ~at:0 ~docv:"A"
        $ run_id_arg ~at:1 ~docv:"B"
        $ threshold_arg $ ignore_arg $ Output.stats_arg))

let runs_trend_cmd =
  let metric_arg =
    let doc =
      "Metric to trend (substring match on ledger metric keys, e.g. wall_s, \
       stats.iterations, conflicts)."
    in
    Arg.(
      required & opt (some string) None & info [ "metric" ] ~docv:"METRIC" ~doc)
  in
  let sub_arg =
    let doc = "Only runs of this subcommand." in
    Arg.(
      value & opt (some string) None & info [ "subcommand" ] ~docv:"CMD" ~doc)
  in
  let problem_arg =
    let doc = "Only runs whose problem contains $(docv)." in
    Arg.(
      value & opt (some string) None & info [ "problem" ] ~docv:"SUBSTR" ~doc)
  in
  let threshold_arg =
    let doc =
      "Flag a series whose latest point exceeds the median of its prior \
       points by more than $(docv) percent (the $(b,trace diff) regression \
       convention)."
    in
    Arg.(value & opt float 10.0 & info [ "threshold" ] ~docv:"PCT" ~doc)
  in
  let run dir sub problem metric threshold fmt =
    match load_entries (resolve_dir dir) with
    | Error msg -> `Error (false, msg)
    | Ok entries ->
        let ss = L.series ?subcommand:sub ?problem ~metric entries in
        let trends = List.map (L.trend ~threshold) ss in
        let regressed = List.filter (fun t -> t.L.regression) trends in
        Output.result fmt
          ~text:(fun () ->
            if trends = [] then
              Printf.printf "no recorded series match metric %s\n" metric
            else begin
              List.iter
                (fun (t : L.trend) ->
                  let s = t.L.t_series in
                  Printf.printf
                    "%-9s %-28s %-26s n=%-3d last=%-10g p50=%-10g p95=%-10g %s\n"
                    s.L.s_cmd s.L.s_problem s.L.s_metric t.L.n t.L.last t.L.p50
                    t.L.p95
                    (match t.L.pct_vs_baseline with
                    | None -> "baseline"
                    | Some p ->
                        if t.L.regression then
                          Printf.sprintf "REGRESSION %s vs baseline"
                            (pct_str p)
                        else Printf.sprintf "%s vs baseline" (pct_str p)))
                trends;
              if regressed = [] then
                Printf.printf "ok: no series regressed beyond %.1f%%\n"
                  threshold
              else
                Printf.printf "FAIL: %d series regressed beyond %.1f%%\n"
                  (List.length regressed) threshold
            end)
          ~json:(fun () ->
            [
              ("command", J.Str "runs-trend");
              ("metric", J.Str metric);
              ("threshold_pct", J.Float threshold);
              ( "series",
                J.List
                  (List.map
                     (fun (t : L.trend) ->
                       let s = t.L.t_series in
                       J.Obj
                         [
                           ("cmd", J.Str s.L.s_cmd);
                           ("problem", J.Str s.L.s_problem);
                           ("metric", J.Str s.L.s_metric);
                           ("n", J.Int t.L.n);
                           ("last", J.Float t.L.last);
                           ("p50", J.Float t.L.p50);
                           ("p95", J.Float t.L.p95);
                           ("min", J.Float t.L.lo);
                           ("max", J.Float t.L.hi);
                           ( "pct_vs_baseline",
                             match t.L.pct_vs_baseline with
                             | None -> J.Null
                             | Some p ->
                                 if Float.is_finite p then J.Float p
                                 else J.Str (pct_str p) );
                           ("regression", J.Bool t.L.regression);
                           ( "points",
                             J.List
                               (List.map
                                  (fun (ts, v) ->
                                    J.Obj
                                      [
                                        ("ts", J.Str ts); ("value", J.Float v);
                                      ])
                                  s.L.points) );
                         ])
                     trends) );
            ]);
        if regressed <> [] then exit 1;
        `Ok ()
  in
  let doc =
    "Per-problem series of a metric across recorded runs, with nearest-rank \
     quantiles and a latest-vs-median regression verdict; exits 1 on \
     regression (the longitudinal bench gate)."
  in
  let exits =
    Cmd.Exit.info 1 ~doc:"a series regressed beyond the threshold."
    :: Cmd.Exit.defaults
  in
  Cmd.v (Cmd.info "trend" ~doc ~exits)
    Term.(
      ret
        (const run $ ledger_dir_arg $ sub_arg $ problem_arg $ metric_arg
       $ threshold_arg $ Output.stats_arg))

let runs_html_cmd =
  let out_arg =
    let doc = "Output file for the dashboard." in
    Arg.(
      value & opt string "fecsynth-runs.html"
      & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  let check_arg =
    let doc =
      "Render and validate the dashboard (balanced tags, zero external \
       references) without writing anything — the CI mode."
    in
    Arg.(value & flag & info [ "check" ] ~doc)
  in
  let run dir out check fmt =
    match load_entries (resolve_dir dir) with
    | Error msg -> `Error (false, msg)
    | Ok entries -> (
        let html = Telemetry.Html.render entries in
        match Telemetry.Html.well_formed html with
        | Error msg ->
            `Error (false, "generated dashboard failed validation: " ^ msg)
        | Ok () ->
            let n = List.length entries in
            if check then
              Output.result fmt
                ~text:(fun () ->
                  Printf.printf "ok: dashboard well-formed (%d runs, %d bytes)\n"
                    n (String.length html))
                ~json:(fun () ->
                  [
                    ("command", J.Str "runs-html");
                    ("checked", J.Bool true);
                    ("runs", J.Int n);
                    ("bytes", J.Int (String.length html));
                  ])
            else begin
              (* a whole-file artifact: tmp+rename so a reader never sees
                 a torn dashboard *)
              let tmp = out ^ ".tmp" in
              let oc = open_out tmp in
              output_string oc html;
              close_out oc;
              Sys.rename tmp out;
              Output.result fmt
                ~text:(fun () ->
                  Printf.printf "wrote %s (%d runs, %d bytes)\n" out n
                    (String.length html))
                ~json:(fun () ->
                  [
                    ("command", J.Str "runs-html");
                    ("output", J.Str out);
                    ("runs", J.Int n);
                    ("bytes", J.Int (String.length html));
                  ])
            end;
            `Ok ())
  in
  let doc =
    "Render the run history as one self-contained HTML dashboard (inline \
     SVG sparklines and bar charts, zero external assets): outcome mix, \
     per-problem wall-time trends, solver-phase attribution."
  in
  Cmd.v (Cmd.info "html" ~doc)
    Term.(
      ret (const run $ ledger_dir_arg $ out_arg $ check_arg $ Output.stats_arg))

let runs_cmd =
  let doc =
    "inspect the persistent run ledger: history, trends, HTML dashboard"
  in
  Cmd.group (Cmd.info "runs" ~doc)
    [
      runs_list_cmd; runs_show_cmd; runs_compare_cmd; runs_trend_cmd;
      runs_html_cmd;
    ]

let () =
  let doc = "synthesis and verification of application-specific FEC codes" in
  let info =
    Cmd.info "fecsynth" ~version:Telemetry.Buildinfo.code_version ~doc
  in
  let group =
    Cmd.group info
      [
        synth_cmd; optimize_cmd; serve_cmd; submit_cmd; call_cmd; top_cmd;
        cache_cmd;
        verify_cmd; certify_cmd; distance_cmd; analyze_cmd; emit_cmd;
        robustness_cmd; smt_cmd; trace_cmd; trace_check_cmd; version_cmd;
        runs_cmd;
      ]
  in
  match Cmd.eval ~catch:false group with
  | code -> exit code
  | exception Fec_core.Registry.Parse_error msg ->
      Output.ledger_finish ~outcome:"error" ~exit_code:2 ();
      Printf.eprintf "fecsynth: bad code descriptor: %s\n" msg;
      exit 2
  | exception Spec.Parse.Error msg ->
      Output.ledger_finish ~outcome:"error" ~exit_code:2 ();
      Printf.eprintf "fecsynth: bad property: %s\n" msg;
      exit 2
  | exception (Invalid_argument msg | Failure msg | Sys_error msg) ->
      Output.ledger_finish ~outcome:"error" ~exit_code:2 ();
      Printf.eprintf "fecsynth: error: %s\n" msg;
      exit 2
