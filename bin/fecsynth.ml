(* fecsynth: command-line front end to the FEC synthesis framework.

   Subcommands: synth, verify, distance, analyze, emit, robustness.
   Codes are given as Registry descriptors (e.g. "shortened:120:8",
   "parity:16", "matrix:1000101-0100110-0010111-0001011") or as
   "@file" pointing at a generator-matrix text file. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let load_code spec =
  if String.length spec > 0 && spec.[0] = '@' then
    Hamming.Code.of_string (read_file (String.sub spec 1 (String.length spec - 1)))
  else Fec_core.Registry.code_of_string spec

let load_prop spec =
  if String.length spec > 0 && spec.[0] = '@' then
    Spec.Parse.prop_file (read_file (String.sub spec 1 (String.length spec - 1)))
  else Spec.Parse.prop spec

(* ---------- common arguments ---------- *)

let code_arg =
  let doc = "Code descriptor (e.g. shortened:120:8) or @FILE with matrix rows." in
  Arg.(required & opt (some string) None & info [ "c"; "code" ] ~docv:"CODE" ~doc)

let prop_arg =
  let doc = "Property in the Figure-3 language, or @FILE." in
  Arg.(required & opt (some string) None & info [ "p"; "prop" ] ~docv:"PROP" ~doc)

let timeout_arg =
  let doc = "Solver timeout in seconds." in
  Arg.(value & opt float 120.0 & info [ "t"; "timeout" ] ~docv:"SECONDS" ~doc)

(* ---------- synth ---------- *)

let weights_conv =
  let parse s =
    try Ok (Array.of_list (List.map int_of_string (String.split_on_char ',' s)))
    with _ -> Error (`Msg "weights must be comma-separated integers")
  in
  Arg.conv (parse, fun fmt w ->
      Format.pp_print_string fmt
        (String.concat "," (Array.to_list (Array.map string_of_int w))))

let synth_cmd =
  let weights =
    let doc = "Per-bit criticality weights for weighted (sum_w) synthesis." in
    Arg.(value & opt (some weights_conv) None & info [ "w"; "weights" ] ~docv:"W,W,..." ~doc)
  in
  let portfolio =
    let doc = "Race a portfolio of differently-configured CEGIS workers." in
    Arg.(value & flag & info [ "portfolio" ] ~doc)
  in
  let jobs =
    let doc = "Number of portfolio workers (implies --portfolio for K > 1)." in
    Arg.(value & opt int 4 & info [ "j"; "jobs" ] ~docv:"K" ~doc)
  in
  let run prop_spec timeout weights portfolio jobs =
    if jobs < 1 then `Error (false, "--jobs must be >= 1")
    else
    let prop = load_prop prop_spec in
    let jobs_opt = if portfolio then Some jobs else None in
    let on_report report =
      Format.printf "%a" Synth.Portfolio.pp_report report
    in
    match Synth.Driver.run ~timeout ?weights ?jobs:jobs_opt ~on_report prop with
    | Synth.Driver.Codes (codes, stats) ->
        List.iter
          (fun code ->
            Printf.printf "synthesized (%d,%d) generator, md %d, %d set bits:\n%s\n"
              (Hamming.Code.block_len code) (Hamming.Code.data_len code)
              (Hamming.Distance.min_distance code) (Hamming.Code.set_bits code)
              (Hamming.Code.to_string code);
            Printf.printf "descriptor: %s\n" (Fec_core.Registry.describe_code code))
          codes;
        Printf.printf "iterations: %d, time: %.2f s\n" stats.Synth.Cegis.iterations
          stats.Synth.Cegis.elapsed;
        `Ok ()
    | Synth.Driver.Setbits_walk steps ->
        List.iter
          (fun s ->
            Printf.printf "bound %d -> achieved %d (%d iterations, %.2f s)\n"
              s.Synth.Optimize.bound s.Synth.Optimize.achieved
              s.Synth.Optimize.step_stats.Synth.Cegis.iterations
              s.Synth.Optimize.step_stats.Synth.Cegis.elapsed)
          steps;
        (match List.rev steps with
        | best :: _ ->
            Printf.printf "\nbest generator (%d set bits):\n%s\n" best.Synth.Optimize.achieved
              (Hamming.Code.to_string best.Synth.Optimize.generator)
        | [] -> ());
        `Ok ()
    | Synth.Driver.Weighted_result r ->
        let t0, t1 = r.Synth.Weighted.counts in
        Printf.printf "mapping: %s (split %d/%d), sum_w = %.4f%s, %d iterations, %.2f s\n"
          (String.concat ""
             (Array.to_list (Array.map string_of_int r.Synth.Weighted.mapping)))
          t0 t1 r.Synth.Weighted.sum_w
          (if r.Synth.Weighted.optimal then " (proved optimal)" else "")
          r.Synth.Weighted.iterations r.Synth.Weighted.elapsed;
        let c0, c1 = r.Synth.Weighted.codes in
        Printf.printf "generator 0:\n%s\ngenerator 1:\n%s\n" (Hamming.Code.to_string c0)
          (Hamming.Code.to_string c1);
        `Ok ()
    | Synth.Driver.No_solution msg -> `Error (false, "no solution: " ^ msg)
  in
  let doc = "Synthesize generators from a property specification (CEGIS)." in
  Cmd.v (Cmd.info "synth" ~doc)
    Term.(ret (const run $ prop_arg $ timeout_arg $ weights $ portfolio $ jobs))

(* ---------- verify ---------- *)

let verify_cmd =
  let method_arg =
    let doc = "Distance-checking method: sat (the paper's) or enum." in
    Arg.(value & opt (enum [ ("sat", `Sat); ("enum", `Enum) ]) `Sat & info [ "method" ] ~doc)
  in
  let run code_spec prop_spec method_ timeout =
    ignore timeout;
    let code = load_code code_spec in
    let prop = load_prop prop_spec in
    (* md claims go through the dedicated checker so the SAT path is used *)
    let env = Spec.Eval.env_of_code code in
    let start = Unix.gettimeofday () in
    let holds =
      match (prop, method_) with
      | Spec.Ast.Cmp (Spec.Ast.Eq, Spec.Ast.Func (Spec.Ast.Md, _), Spec.Ast.Int m), `Sat ->
          (Synth.Verify.min_distance_exactly ~method_:Synth.Verify.Sat code m).Synth.Verify.holds
      | Spec.Ast.Cmp (Spec.Ast.Ge, Spec.Ast.Func (Spec.Ast.Md, _), Spec.Ast.Int m), `Sat ->
          (Synth.Verify.min_distance_at_least ~method_:Synth.Verify.Sat code m).Synth.Verify.holds
      | _ -> (Synth.Verify.property env prop).Synth.Verify.holds
    in
    Printf.printf "%s (%.2f s)\n" (if holds then "VERIFIED" else "REFUTED")
      (Unix.gettimeofday () -. start);
    if holds then `Ok () else exit 1
  in
  let doc = "Verify a property of a concrete generator." in
  Cmd.v (Cmd.info "verify" ~doc)
    Term.(ret (const run $ code_arg $ prop_arg $ method_arg $ timeout_arg))

(* ---------- distance ---------- *)

let distance_cmd =
  let run code_spec =
    let code = load_code code_spec in
    Printf.printf "(%d,%d) generator: minimum distance %d, %d set bits, P_u(p=0.1) = %.3e\n"
      (Hamming.Code.block_len code) (Hamming.Code.data_len code)
      (Hamming.Distance.min_distance code) (Hamming.Code.set_bits code)
      (Hamming.Robustness.undetected_error_probability code ~p:0.1);
    `Ok ()
  in
  let doc = "Compute the exact minimum distance of a generator." in
  Cmd.v (Cmd.info "distance" ~doc) Term.(ret (const run $ code_arg))

(* ---------- analyze ---------- *)

let analyze_cmd =
  let format_arg =
    let doc = "Data format to profile: float32 or int32." in
    Arg.(value & opt (enum [ ("float32", `F32); ("int32", `I32) ]) `F32 & info [ "format" ] ~doc)
  in
  let samples_arg =
    let doc = "Monte-Carlo samples for the float profile." in
    Arg.(value & opt int 100_000 & info [ "samples" ] ~doc)
  in
  let run format samples =
    let profile =
      match format with
      | `F32 -> Channel.Bitflip.float32_profile ~samples ()
      | `I32 -> Channel.Bitflip.int32_profile ()
    in
    let norm = Channel.Bitflip.normalize profile in
    print_endline "bit  normalized-avg-error  non-numeric";
    Array.iteri
      (fun i v -> Printf.printf "%2d   %-20.6g %d\n" i v profile.Channel.Bitflip.non_numeric.(i))
      norm;
    (match format with
    | `F32 ->
        let w = Channel.Bitflip.weights_for_upper_bits ~bits:16 profile in
        Printf.printf "\nsuggested upper-16 weights: %s\n"
          (String.concat "," (Array.to_list (Array.map string_of_int w)))
    | `I32 -> ());
    `Ok ()
  in
  let doc = "Per-bit numeric-error profile of a data format (paper Figure 1)." in
  Cmd.v (Cmd.info "analyze" ~doc) Term.(ret (const run $ format_arg $ samples_arg))

(* ---------- emit ---------- *)

let emit_cmd =
  let lang_arg =
    let doc = "Output language: c or ocaml." in
    Arg.(value & opt (enum [ ("c", `C); ("ocaml", `OCaml) ]) `C & info [ "lang" ] ~doc)
  in
  let out_arg =
    let doc = "Output file (stdout if omitted)." in
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  let run code_spec lang out =
    let code = load_code code_spec in
    let source =
      match lang with
      | `C -> Hamming.Emit.c_source code
      | `OCaml -> Hamming.Emit.ocaml_source code
    in
    (match out with
    | None -> print_string source
    | Some path ->
        let oc = open_out path in
        output_string oc source;
        close_out oc;
        Printf.printf "wrote %s (%d bytes)\n" path (String.length source));
    `Ok ()
  in
  let doc = "Emit a specialized encode/check implementation for a generator." in
  Cmd.v (Cmd.info "emit" ~doc) Term.(ret (const run $ code_arg $ lang_arg $ out_arg))

(* ---------- smt ---------- *)

let smt_cmd =
  let file_arg =
    let doc = "SMT-LIB v2 script (Boolean fragment); '-' reads stdin." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)
  in
  let run file =
    let script =
      if file = "-" then In_channel.input_all stdin else read_file file
    in
    match Smtlite.Smtlib.run_to_string script with
    | out ->
        if out <> "" then print_endline out;
        `Ok ()
    | exception Smtlite.Smtlib.Error msg -> `Error (false, msg)
  in
  let doc = "Run an SMT-LIB v2 script on the built-in Boolean solver." in
  Cmd.v (Cmd.info "smt" ~doc) Term.(ret (const run $ file_arg))

(* ---------- certify ---------- *)

let certify_cmd =
  let md_arg =
    let doc = "Minimum-distance bound to certify." in
    Arg.(required & opt (some int) None & info [ "m"; "min-distance" ] ~docv:"MD" ~doc)
  in
  let out_arg =
    let doc = "Write the DRAT certificate to FILE." in
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  let run code_spec md out =
    let code = load_code code_spec in
    let start = Unix.gettimeofday () in
    match Hamming.Distance.certified_min_distance_at_least code md with
    | `Certified proof ->
        Printf.printf
          "CERTIFIED md >= %d (%.2f s); DRAT proof: %d steps, validated by the \
           independent checker\n"
          md
          (Unix.gettimeofday () -. start)
          (List.length (Sat.Drat.parse proof));
        (match out with
        | None -> ()
        | Some path ->
            let oc = open_out path in
            output_string oc proof;
            close_out oc;
            Printf.printf "certificate written to %s\n" path);
        `Ok ()
    | `Refuted witness ->
        Printf.printf "REFUTED: data word %s encodes to codeword weight %d < %d\n"
          (Gf2.Bitvec.to_string witness)
          (Gf2.Bitvec.popcount (Hamming.Code.encode code witness))
          md;
        exit 1
  in
  let doc = "Certify a minimum-distance bound with a validated DRAT proof." in
  Cmd.v (Cmd.info "certify" ~doc) Term.(ret (const run $ code_arg $ md_arg $ out_arg))

(* ---------- robustness ---------- *)

let robustness_cmd =
  let words_arg =
    let doc = "Number of random data words." in
    Arg.(value & opt int 1_000_000 & info [ "words" ] ~doc)
  in
  let p_arg =
    let doc = "Channel bit-error probability." in
    Arg.(value & opt float 0.1 & info [ "error-prob" ] ~doc)
  in
  let seed_arg =
    let doc = "PRNG seed." in
    Arg.(value & opt int 0xFEC & info [ "seed" ] ~doc)
  in
  let run code_spec words p seed =
    let code = load_code code_spec in
    let md = Hamming.Distance.min_distance code in
    let codec = Channel.Montecarlo.codec_of_code code in
    let r =
      Channel.Montecarlo.run ~codec ~md ~words ~p ~seed
        (Channel.Montecarlo.uniform_data codec)
    in
    Printf.printf
      "words %d  p %.3f  md %d\n>=md flips: %d (theory %.0f)\nundetected: %d\n" words p md
      r.Channel.Montecarlo.flips_ge_md r.Channel.Montecarlo.expected_flips_ge_md
      r.Channel.Montecarlo.undetected;
    `Ok ()
  in
  let doc = "Monte-Carlo robustness of a generator on a binary symmetric channel." in
  Cmd.v (Cmd.info "robustness" ~doc)
    Term.(ret (const run $ code_arg $ words_arg $ p_arg $ seed_arg))

let () =
  let doc = "synthesis and verification of application-specific FEC codes" in
  let info = Cmd.info "fecsynth" ~version:"1.0.0" ~doc in
  let group =
    Cmd.group info
      [
        synth_cmd; verify_cmd; certify_cmd; distance_cmd; analyze_cmd; emit_cmd;
        robustness_cmd; smt_cmd;
      ]
  in
  match Cmd.eval ~catch:false group with
  | code -> exit code
  | exception Fec_core.Registry.Parse_error msg ->
      Printf.eprintf "fecsynth: bad code descriptor: %s\n" msg;
      exit 2
  | exception Spec.Parse.Error msg ->
      Printf.eprintf "fecsynth: bad property: %s\n" msg;
      exit 2
  | exception (Invalid_argument msg | Failure msg | Sys_error msg) ->
      Printf.eprintf "fecsynth: error: %s\n" msg;
      exit 2
