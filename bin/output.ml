(* Shared result/trace plumbing for every fecsynth subcommand: one place
   defines --trace/--metrics/--progress and --stats, installs the
   composed telemetry sink, and renders the machine-readable result
   objects so the subcommands agree on shape. *)

open Cmdliner

type format = Text | Json

let stats_arg =
  let doc = "Result format: human-readable text or one JSON object." in
  Arg.(
    value
    & opt (enum [ ("text", Text); ("json", Json) ]) Text
    & info [ "stats" ] ~docv:"text|json" ~doc)

let trace_arg =
  let doc =
    "Write an NDJSON telemetry trace (one event per line: solver calls, \
     encodings, CEGIS iterations, portfolio workers) to $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc =
    "Write the metrics registry (counters, gauges, histograms with \
     quantiles) in Prometheus text format to $(docv), refreshed \
     periodically while the run progresses and once more on exit."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

let progress_arg =
  let doc =
    "Render a live one-line progress display on stderr: iteration rate, \
     counterexample pool size, best candidate bound, portfolio worker \
     states, restart counts.  Silently disabled when stderr is not a TTY."
  in
  Arg.(value & flag & info [ "progress" ] ~doc)

(* Run [f] with telemetry routed to the requested observers; no sink at
   all when none is requested, preserving the disabled fast path.  The
   trace file is created eagerly so even an aborted run leaves a
   parseable (possibly empty) trace; the metrics file is rewritten whole
   on each periodic flush so readers always see a complete exposition. *)
let with_observability ?(trace = None) ?(metrics = None) ?(progress = false) f =
  let cleanups = ref [] in
  let sinks = ref [] in
  (match trace with
  | Some path ->
      let oc = open_out path in
      cleanups := (fun () -> close_out oc) :: !cleanups;
      sinks := Telemetry.Sink.ndjson oc :: !sinks
  | None -> ());
  (match metrics with
  | Some path ->
      let write text =
        let oc = open_out path in
        output_string oc text;
        close_out oc
      in
      sinks := Telemetry.Metrics.flush_sink write :: !sinks
  | None -> ());
  if progress && Unix.isatty Unix.stderr then begin
    let write s =
      output_string stderr s;
      flush stderr
    in
    sinks := Telemetry.Progress.sink write :: !sinks
  end;
  match List.rev !sinks with
  | [] -> f ()
  | sinks ->
      Fun.protect
        ~finally:(fun () -> List.iter (fun c -> c ()) !cleanups)
        (fun () -> Telemetry.with_sink (Telemetry.Sink.tee sinks) f)

let with_trace path f = with_observability ~trace:path f

let print_json j = print_endline (Telemetry.Json.to_string j)

(* [result fmt ~text ~json] prints the subcommand result exactly once:
   the human rendering in Text mode, a single JSON object in Json mode. *)
let result fmt ~text ~json =
  match fmt with
  | Text -> text ()
  | Json -> print_json (Telemetry.Json.Obj (json ()))
