(* Shared result/trace plumbing for every fecsynth subcommand: one place
   defines --trace and --stats, installs the NDJSON sink, and renders the
   machine-readable result objects so the subcommands agree on shape. *)

open Cmdliner

type format = Text | Json

let stats_arg =
  let doc = "Result format: human-readable text or one JSON object." in
  Arg.(
    value
    & opt (enum [ ("text", Text); ("json", Json) ]) Text
    & info [ "stats" ] ~docv:"text|json" ~doc)

let trace_arg =
  let doc =
    "Write an NDJSON telemetry trace (one event per line: solver calls, \
     encodings, CEGIS iterations, portfolio workers) to $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

(* Run [f] with telemetry routed to [path] (no sink when [path] is None).
   The file is created eagerly so even an aborted run leaves a parseable
   (possibly empty) trace. *)
let with_trace path f =
  match path with
  | None -> f ()
  | Some path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> Telemetry.with_sink (Telemetry.Sink.ndjson oc) f)

let print_json j = print_endline (Telemetry.Json.to_string j)

(* [result fmt ~text ~json] prints the subcommand result exactly once:
   the human rendering in Text mode, a single JSON object in Json mode. *)
let result fmt ~text ~json =
  match fmt with
  | Text -> text ()
  | Json -> print_json (Telemetry.Json.Obj (json ()))
