(* Shared result/trace plumbing for every fecsynth subcommand: one place
   defines --trace/--metrics/--progress and --stats, installs the
   composed telemetry sink, and renders the machine-readable result
   objects so the subcommands agree on shape. *)

open Cmdliner

type format = Text | Json

let stats_arg =
  let doc = "Result format: human-readable text or one JSON object." in
  Arg.(
    value
    & opt (enum [ ("text", Text); ("json", Json) ]) Text
    & info [ "stats" ] ~docv:"text|json" ~doc)

let trace_arg =
  let doc =
    "Write an NDJSON telemetry trace (one event per line: solver calls, \
     encodings, CEGIS iterations, portfolio workers) to $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc =
    "Write the metrics registry (counters, gauges, histograms with \
     quantiles) in Prometheus text format to $(docv), refreshed \
     periodically while the run progresses and once more on exit."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

let progress_arg =
  let doc =
    "Render a live one-line progress display on stderr: iteration rate, \
     counterexample pool size, best candidate bound, portfolio worker \
     states, restart counts.  Silently disabled when stderr is not a TTY \
     (set FEC_FORCE_TTY=1 to force rendering, e.g. under a test harness)."
  in
  Arg.(value & flag & info [ "progress" ] ~doc)

let no_ledger_arg =
  let doc =
    "Do not record this run in the persistent run ledger (see $(b,fecsynth \
     runs)).  FEC_NO_LEDGER=1 has the same effect."
  in
  Arg.(value & flag & info [ "no-ledger" ] ~doc)

(* FEC_FORCE_TTY=1 makes --progress render without a real TTY so cram
   tests can assert the line's shape; the sink then draws its final state
   followed by a newline instead of erasing itself. *)
let force_tty () = Sys.getenv_opt "FEC_FORCE_TTY" = Some "1"

(* Run [f] with telemetry routed to the requested observers; no sink at
   all when none is requested, preserving the disabled fast path.  The
   trace file is created eagerly so even an aborted run leaves a
   parseable (possibly empty) trace; the metrics file is rewritten whole
   on each periodic flush so readers always see a complete exposition. *)
let with_observability ?(trace = None) ?(metrics = None) ?(progress = false) f =
  let cleanups = ref [] in
  let sinks = ref [] in
  (match trace with
  | Some path ->
      let oc = open_out path in
      cleanups := (fun () -> close_out oc) :: !cleanups;
      sinks := Telemetry.Sink.ndjson oc :: !sinks
  | None -> ());
  (match metrics with
  | Some path ->
      let write text =
        let oc = open_out path in
        output_string oc text;
        close_out oc
      in
      sinks := Telemetry.Metrics.flush_sink write :: !sinks
  | None -> ());
  if progress && (Unix.isatty Unix.stderr || force_tty ()) then begin
    let write s =
      output_string stderr s;
      flush stderr
    in
    let final = force_tty () && not (Unix.isatty Unix.stderr) in
    sinks := Telemetry.Progress.sink ~final write :: !sinks
  end;
  match List.rev !sinks with
  | [] -> f ()
  | sinks ->
      Fun.protect
        ~finally:(fun () -> List.iter (fun c -> c ()) !cleanups)
        (fun () -> Telemetry.with_sink (Telemetry.Sink.tee sinks) f)

let with_trace path f = with_observability ~trace:path f

(* ---------- run-ledger hooks ---------- *)

(* One pending ledger record per process.  [ledger_start] is called once
   by recording subcommands after argument parsing; [ledger_finish]
   appends the record with the real outcome right before the command
   returns or exits.  The [at_exit] hook (installed once) catches every
   other way out — an uncaught exception, a library [exit] — and records
   the run as a ["crash"], so failures are first-class ledger data. *)
let ledger_pending : Telemetry.Ledger.pending option ref = ref None
let ledger_hook_installed = ref false

let ledger_start ?(no_ledger = false) ~subcommand ~problem ~config () =
  let disabled =
    no_ledger || Sys.getenv_opt "FEC_NO_LEDGER" = Some "1"
  in
  if not disabled then begin
    let p =
      Telemetry.Ledger.start
        ~ts:(Telemetry.Ledger.utc_timestamp ())
        ~subcommand ~problem ~config
        ~build:(Telemetry.Buildinfo.detect ())
        ()
    in
    ledger_pending := Some p;
    if not !ledger_hook_installed then begin
      ledger_hook_installed := true;
      (* at_exit also runs after an uncaught exception; Ledger.finish is
         idempotent, so a normally-finished run makes this a no-op.  The
         true exit status is unknowable here — 2 matches the CLI's
         uncaught-exception handlers. *)
      at_exit (fun () ->
          match !ledger_pending with
          | Some p ->
              Telemetry.Ledger.finish p ~outcome:"crash" ~exit_code:2
          | None -> ())
    end
  end

let ledger_finish ?stats ?metrics ~outcome ~exit_code () =
  match !ledger_pending with
  | Some p ->
      ledger_pending := None;
      Telemetry.Ledger.finish ?stats ?metrics p ~outcome ~exit_code
  | None -> ()

let print_json j = print_endline (Telemetry.Json.to_string j)

(* [result fmt ~text ~json] prints the subcommand result exactly once:
   the human rendering in Text mode, a single JSON object in Json mode. *)
let result fmt ~text ~json =
  match fmt with
  | Text -> text ()
  | Json -> print_json (Telemetry.Json.Obj (json ()))
