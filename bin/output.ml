(* Shared result/trace plumbing for every fecsynth subcommand: one place
   defines --trace/--metrics/--progress and --stats, installs the
   composed telemetry sink, and renders the machine-readable result
   objects so the subcommands agree on shape. *)

open Cmdliner

type format = Text | Json

let stats_arg =
  let doc = "Result format: human-readable text or one JSON object." in
  Arg.(
    value
    & opt (enum [ ("text", Text); ("json", Json) ]) Text
    & info [ "stats" ] ~docv:"text|json" ~doc)

let trace_arg =
  let doc =
    "Write an NDJSON telemetry trace (one event per line: solver calls, \
     encodings, CEGIS iterations, portfolio workers) to $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc =
    "Write the metrics registry (counters, gauges, histograms with \
     quantiles) in Prometheus text format to $(docv), refreshed \
     periodically while the run progresses and once more on exit."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

let progress_arg =
  let doc =
    "Render a live one-line progress display on stderr: iteration rate, \
     counterexample pool size, best candidate bound, portfolio worker \
     states, restart counts.  Silently disabled when stderr is not a TTY \
     (set FEC_FORCE_TTY=1 to force rendering, e.g. under a test harness)."
  in
  Arg.(value & flag & info [ "progress" ] ~doc)

let runtime_lens_arg =
  let doc =
    "Start the OCaml Runtime_events lens for this run: GC pause \
     histograms, allocation counters and per-domain utilization land in \
     $(b,--metrics), runtime.* interval and pause events in \
     $(b,--trace) (surfaced by $(b,fecsynth trace report)'s runtime \
     section), and gc.* trend metrics in the run ledger (see \
     $(b,fecsynth runs trend))."
  in
  Arg.(value & flag & info [ "runtime-lens" ] ~doc)

let no_ledger_arg =
  let doc =
    "Do not record this run in the persistent run ledger (see $(b,fecsynth \
     runs)).  FEC_NO_LEDGER=1 has the same effect."
  in
  Arg.(value & flag & info [ "no-ledger" ] ~doc)

let force_tty = Fec_session.Observe.force_tty
let with_observability = Fec_session.Observe.with_observability
let with_trace path f = with_observability ~trace:path f

(* ---------- run-ledger hooks ---------- *)

(* One pending ledger record per CLI invocation, owned by the session
   layer's recorder: opted-out runs (--no-ledger / FEC_NO_LEDGER=1) get
   an inert token and can never touch the ledger directory, and the
   recorder's at_exit hook records any still-pending run as a ["crash"].
   The synth/optimize subcommands do not use these — Session.run_sync
   records its own runs — but every other recording subcommand does. *)
let ledger_token : Fec_session.Recorder.token option ref = ref None

let ledger_start ?no_ledger ~subcommand ~problem ~config () =
  ledger_token :=
    Some (Fec_session.Recorder.start ?no_ledger ~subcommand ~problem ~config ())

let ledger_finish ?stats ?metrics ~outcome ~exit_code () =
  match !ledger_token with
  | Some token ->
      ledger_token := None;
      Fec_session.Recorder.finish ?stats ?metrics token ~outcome ~exit_code ()
  | None -> ()

let print_json j = print_endline (Telemetry.Json.to_string j)

(* [result fmt ~text ~json] prints the subcommand result exactly once:
   the human rendering in Text mode, a single JSON object in Json mode. *)
let result fmt ~text ~json =
  match fmt with
  | Text -> text ()
  | Json -> print_json (Telemetry.Json.Obj (json ()))
