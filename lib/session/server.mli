(** The [fecsynth serve] daemon: a long-lived process multiplexing
    concurrent synthesis sessions over a Unix-domain socket.

    One single-threaded event loop owns the socket (accept, per-client
    line buffering, response writing); the actual synthesis runs on
    {!Session.Manager} worker domains with a bounded admission queue.
    Every request is recorded in the run ledger (subcommand ["serve"])
    and answered from the content-addressed result cache when possible.

    Shutdown is a drain: SIGTERM, SIGINT or a [shutdown] request stop
    admission, let in-flight sessions finish (answering their waiters),
    then exit cleanly. *)

type config = {
  socket : string;
  workers : int;  (** session worker domains *)
  max_queue : int;  (** admission bound; beyond it, submits are refused *)
  cache : bool;  (** default cache policy for requests (they can opt out) *)
  cache_dir : string option;
  no_ledger : bool;
  ledger_dir : string option;
  metrics : string option;
      (** Prometheus exposition file, refreshed for the daemon's whole
          lifetime (covers [session.cache_*] and [serve.queue_depth]) *)
}

val default_config : socket:string -> config

(** [run config] serves until drained.  Raises [Failure] when the socket
    cannot be bound. *)
val run : config -> unit
