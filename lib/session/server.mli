(** The [fecsynth serve] daemon: a long-lived process multiplexing
    concurrent synthesis sessions over a Unix-domain socket.

    One single-threaded event loop owns the socket (accept, per-client
    frame buffering, buffered non-blocking response writing); the actual
    synthesis runs on {!Session.Manager} worker domains with a bounded
    admission queue.  Every request is recorded in the run ledger
    (subcommand ["serve"], stamped with the admission-time queue depth)
    and answered from the content-addressed result cache when possible.

    Fault tolerance:
    - the loop never blocks on a peer — slow readers overflow a bounded
      output buffer and are dropped, idle and half-open connections are
      reaped, malformed/oversized/torn frames get one typed error and
      the connection is closed;
    - per-request deadlines are enforced from the tick via
      {!Session.Manager.tend}: cooperative cancel at the deadline, and
      past [grace] the stuck worker is reaped and replaced, so the wire
      answers [timeout] instead of hanging;
    - startup is crash-safe: a stale socket left by a killed daemon is
      probed with a ping and taken over iff dead, orphaned cache temp
      files are swept, the ledger's torn tail is repaired and its
      in-flight journal becomes ["crash"] records; a [<socket>.pid]
      pidfile is maintained for operators.

    Shutdown is a drain: SIGTERM, SIGINT or a [shutdown] request stop
    admission, let in-flight sessions finish (answering their waiters),
    then exit cleanly.  The [FEC_FAULT_SPEC] probe sites ["wire.read"],
    ["wire.write"], ["cache.read"], ["cache.write"] and
    ["manager.worker"] are honoured for resilience testing; injected
    wire faults cost the affected connection, never the daemon. *)

type config = {
  socket : string;
  workers : int;  (** session worker domains *)
  max_queue : int;  (** admission bound; beyond it, submits are refused *)
  grace : float;
      (** post-deadline wind-down slack before a worker is reaped
          (default 1 s) *)
  idle_timeout : float;
      (** idle-connection reap threshold in seconds; [0] disables
          (default 300 s; clients awaiting a session are exempt) *)
  max_frame : int;  (** request frame byte limit (default 1 MiB) *)
  max_out : int;
      (** per-connection output buffer bound (default 4 MiB) *)
  cache : bool;  (** default cache policy for requests (they can opt out) *)
  cache_dir : string option;
  no_ledger : bool;
  ledger_dir : string option;
  metrics : string option;
      (** Prometheus exposition file, refreshed for the daemon's whole
          lifetime (covers [session.cache_*], [serve.queue_depth] and
          [serve.worker_reaped]) *)
  metrics_port : int option;
      (** when set, an HTTP listener on [127.0.0.1:port] served from the
          same select loop: [GET /metrics] returns the live Prometheus
          exposition (with per-worker labeled gauges refreshed at scrape
          time), [GET /healthz] a JSON health summary whose [status]
          flips to ["draining"] during shutdown.  The listener stays
          open through the drain. *)
  trace : string option;
      (** NDJSON telemetry trace of the daemon's entire lifetime; every
          event of a served run is stamped with its [request] id, so
          [fecsynth trace report --request] can slice one submit back
          out *)
  flight_dir : string option;
      (** where reap/crash postmortems land (default: the socket's
          directory) *)
  flight_capacity : int;
      (** per-domain flight-recorder ring size (default 512 events) *)
  runtime_lens : bool;
      (** start the {!Telemetry.Runtime} lens for the daemon's lifetime
          (default on): [gc_*] and [domain_util] series on [/metrics],
          [runtime.*] points — request-correlated via worker ring
          beacons — in the trace and the flight ring *)
}

val default_config : socket:string -> config

(** [run config] serves until drained.  Raises [Failure] when the socket
    cannot be bound or a live daemon already owns it. *)
val run : config -> unit
