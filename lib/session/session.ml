(* The session layer: everything one synthesis run needs, behind a typed
   request/response API.  The CLI and the serve daemon are both thin
   clients of [run_sync]; the behavioral contract (ledger outcome
   strings, exit codes, checkpoint discipline, resume validation
   messages) lives here and nowhere else. *)

module Report = Synth.Report

type job =
  | Synth of {
      prop : string;
      weights : int array option;
      portfolio : bool;
      jobs : int;
    }
  | Optimize of { data_len : int; md : int; check_lo : int; check_hi : int }

type request = {
  job : job;
  timeout : float;
  checkpoint : string option;
  resume : string option;
  cache : bool;
  cache_dir : string option;
  no_ledger : bool;
  ledger_dir : string option;
  subcommand : string;
  trace : string option;
  metrics : string option;
  progress : bool;
  runtime_lens : bool;  (* start the Runtime_events lens for this run *)
  extra_metrics : (string * float) list;
  request_id : string option;  (* wire correlation id, minted at admission *)
}

let default_request job =
  {
    job;
    timeout = 120.0;
    checkpoint = None;
    resume = None;
    cache = false;
    cache_dir = None;
    no_ledger = false;
    ledger_dir = None;
    subcommand = (match job with Synth _ -> "synth" | Optimize _ -> "optimize");
    trace = None;
    metrics = None;
    progress = false;
    runtime_lens = false;
    extra_metrics = [];
    request_id = None;
  }

type resumed = { cex_count : int; prior_iterations : int; start_check : int }

type outcome =
  | Codes of Hamming.Code.t list * Report.Stats.t
  | Optimized of Synth.Optimize.check_result * Report.Stats.t
  | Setbits of Synth.Optimize.setbits_step list
  | Weighted of Synth.Weighted.result
  | Partial of {
      code : Hamming.Code.t;
      achieved : int;
      check_len : int option;
      stats : Report.Stats.t;
    }
  | Unsat of { reason : string; stats : Report.Stats.t option }
  | Timeout of { reason : string; stats : Report.Stats.t option }

type result = {
  outcome : outcome;
  cache_hit : bool;
  interrupted : bool;
  resumed : resumed option;
  report : Synth.Portfolio.report option;
  wall_s : float;
  exit_code : int;
}

exception Invalid_request of string

(* ---------- exit-code contract ---------- *)

let exit_unsat = 3
let exit_timeout = 4
let exit_partial = 5
let exit_interrupted = 130

(* ---------- interrupts ---------- *)

(* The first Ctrl-C requests a cooperative wind-down: the solvers poll
   the flag, the run returns its partial outcome, traces and checkpoints
   are flushed, and the process exits 130.  A second Ctrl-C aborts at
   once. *)
let sigint_requested = Atomic.make false

let install_sigint () =
  Sys.set_signal Sys.sigint
    (Sys.Signal_handle
       (fun _ ->
         if Atomic.get sigint_requested then exit 130
         else Atomic.set sigint_requested true))

let interrupted () = Atomic.get sigint_requested

(* ---------- helpers ---------- *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let load_prop spec =
  if String.length spec > 0 && spec.[0] = '@' then
    Spec.Parse.prop_file (read_file (String.sub spec 1 (String.length spec - 1)))
  else Spec.Parse.prop spec

(* Expected failures (parse errors, missing files, corrupt checkpoints)
   settle the ledger record as error/2 — matching the CLI's top-level
   handlers, which render the message — then re-raise.  Anything
   unexpected propagates with the record pending, and the at_exit hook
   records it as a crash. *)
let guarded token f =
  try f ()
  with (Failure _ | Sys_error _ | Spec.Parse.Error _ | Invalid_argument _) as e
  ->
    Recorder.finish token ~outcome:"error" ~exit_code:2 ();
    raise e

let invalid token msg =
  Recorder.finish token ~outcome:"error" ~exit_code:124 ();
  raise (Invalid_request msg)

let hit_stats (e : Cache.entry) =
  { Report.Stats.zero with iterations = e.iterations; elapsed = e.elapsed }

(* A checkpoint writer carrying resumed state forward, feeding every
   newly learned counterexample and the running iteration count. *)
let make_writer ~checkpoint ~data_len ~check_len ~md ~initial ~resumed_iters =
  match checkpoint with
  | None -> None
  | Some path ->
      let w =
        Synth.Checkpoint.Writer.create ~path ~data_len ~check_len
          ~min_distance:md ()
      in
      List.iter (Synth.Checkpoint.Writer.record_cex w) initial;
      Synth.Checkpoint.Writer.record_iterations w resumed_iters;
      Some w

let writer_on_cex writer iters =
  match writer with
  | None -> fun _ -> ()
  | Some w ->
      fun cex ->
        Synth.Checkpoint.Writer.record_cex w cex;
        Synth.Checkpoint.Writer.record_iterations w
          (1 + Atomic.fetch_and_add iters 1)

let flush_writer = function
  | Some w -> Synth.Checkpoint.Writer.flush w
  | None -> ()

(* ---------- cache plumbing ---------- *)

(* Cache participation is limited to what an entry can faithfully
   answer: a fresh (non-resumed) run of a task with exactly one proven
   generator.  Everything else runs cold but may still donate its
   counterexample pool for warm starts. *)
type cache_ctx = {
  c_dir : string;
  c_key : string;
  c_digest : string;
}

let cache_ctx request task ~weights =
  match (request.cache, request.resume) with
  | false, _ | _, Some _ -> None
  | true, None -> (
      match task with
      | Synth.Driver.Fixed _ | Synth.Driver.Min_check_len _ ->
          let key, digest = Key.of_task ?weights task in
          let c_dir =
            match request.cache_dir with
            | Some d -> d
            | None -> Cache.default_dir ()
          in
          ignore (Cache.scavenge_once ~dir:c_dir);
          Some { c_dir; c_key = key; c_digest = digest }
      | _ -> None)

let cache_lookup ctx =
  match ctx with
  | None -> None
  | Some c -> Cache.lookup ~dir:c.c_dir ~digest:c.c_digest ~key:c.c_key

let cache_store ctx ~code ~md ~iterations ~elapsed =
  match ctx with
  | None -> ()
  | Some c ->
      Cache.store ~dir:c.c_dir ~digest:c.c_digest
        {
          Cache.key = c.c_key;
          created = Telemetry.Ledger.utc_timestamp ();
          code;
          check_len = Hamming.Code.block_len code - Hamming.Code.data_len code;
          md;
          verified_md = Hamming.Distance.min_distance code;
          iterations;
          elapsed;
        }

let cache_save_pool ctx ~data_len ~check_len ~md cexes =
  match ctx with
  | None -> ()
  | Some c ->
      Cache.save_pool ~dir:c.c_dir ~digest:c.c_digest ~data_len ~check_len ~md
        cexes

(* When this run asked for the runtime lens (--runtime-lens), its GC
   story lands in the ledger as trend metrics — [runs trend --metric
   gc.major_pause_p99] works across runs.  Only the lens-owning one-shot
   path reports: in the daemon the lens is process-wide and accumulates
   across requests, so per-request GC attribution belongs to the
   request-stamped trace points, not the ledger. *)
let runtime_ledger_metrics request =
  if not request.runtime_lens then []
  else begin
    Telemetry.Runtime.poll ~force:true ();
    match Telemetry.Runtime.snapshot () with
    | None -> []
    | Some s ->
        let q h p =
          match Telemetry.Metrics.Hist.quantile h p with
          | Some us -> float_of_int us /. 1e6
          | None -> 0.0
        in
        [
          ("gc.minor_pause_p99", q s.Telemetry.Runtime.minor_pauses_us 0.99);
          ("gc.major_pause_p99", q s.Telemetry.Runtime.major_pauses_us 0.99);
          ( "gc.pause_s_total",
            s.Telemetry.Runtime.minor_s +. s.Telemetry.Runtime.major_s );
          ( "gc.allocated_mwords",
            float_of_int s.Telemetry.Runtime.alloc_words /. 1e6 );
          ("gc.major_collections", float_of_int s.Telemetry.Runtime.major_n);
        ]
  end

(* when the cache is in play, hit/miss becomes a ledger trend metric;
   caller-stamped facts (the serve daemon's admission-time queue depth)
   ride along on every finish path, cache hits included *)
let cache_metric request ctx hit metrics =
  request.extra_metrics
  @ runtime_ledger_metrics request
  @
  match ctx with
  | None -> metrics
  | Some _ -> metrics @ [ ("cache_hit", if hit then 1.0 else 0.0) ]

(* ---------- the synth job ---------- *)

let run_synth ?on_report ~intr ~t0 request ~prop_spec ~weights ~portfolio ~jobs
    =
  let token =
    Recorder.start ~no_ledger:request.no_ledger ?dir:request.ledger_dir
      ~subcommand:request.subcommand ~problem:prop_spec
      ~config:
        ([
           ("timeout", string_of_float request.timeout);
           ("portfolio", string_of_bool portfolio);
           ("jobs", string_of_int jobs);
         ]
        @ (match weights with Some _ -> [ ("weights", "yes") ] | None -> [])
        @ (match request.checkpoint with
          | Some p -> [ ("checkpoint", p) ]
          | None -> [])
        @ (match request.resume with Some p -> [ ("resume", p) ] | None -> [])
        @
        match request.request_id with
        | Some r -> [ ("request", r) ]
        | None -> [])
      ()
  in
  guarded token @@ fun () ->
  let prop = load_prop prop_spec in
  let jobs_opt = if portfolio then Some jobs else None in
  (* checkpointing and caching need a single-generator task so the
     problem shape the pool belongs to is known up front *)
  let task = Synth.Driver.analyze prop in
  let single =
    match task with
    | Ok (Synth.Driver.Fixed s) | Ok (Synth.Driver.Min_check_len s) -> Some s
    | Ok _ | Error _ -> None
  in
  if (request.checkpoint <> None || request.resume <> None) && single = None
  then invalid token "--checkpoint/--resume support single-generator tasks only";
  let ctx =
    match task with
    | Ok t when single <> None -> cache_ctx request t ~weights
    | _ -> None
  in
  match cache_lookup ctx with
  | Some entry ->
      let stats = hit_stats entry in
      Recorder.finish token
        ~stats:(Report.Stats.to_json stats)
        ~metrics:(cache_metric request ctx true [])
        ~cache_hit:true ~outcome:"synthesized" ~exit_code:0 ();
      {
        outcome = Codes ([ entry.Cache.code ], stats);
        cache_hit = true;
        interrupted = false;
        resumed = None;
        report = None;
        wall_s = Unix.gettimeofday () -. t0;
        exit_code = 0;
      }
  | None ->
      let initial, resumed_iters =
        match request.resume with
        | None -> ([], 0)
        | Some path -> (
            match Synth.Checkpoint.load ~path with
            | Error e ->
                failwith
                  ("cannot resume: " ^ Synth.Checkpoint.error_to_string e)
            | Ok t ->
                let s = Option.get single in
                if
                  t.Synth.Checkpoint.data_len <> s.Synth.Driver.data_len
                  || t.Synth.Checkpoint.min_distance <> s.Synth.Driver.md
                then
                  failwith
                    (Printf.sprintf
                       "cannot resume: checkpoint is for data_len %d md %d \
                        but the specification wants data_len %d md %d"
                       t.Synth.Checkpoint.data_len
                       t.Synth.Checkpoint.min_distance s.Synth.Driver.data_len
                       s.Synth.Driver.md);
                (t.Synth.Checkpoint.cexes, t.Synth.Checkpoint.iterations))
      in
      let resumed =
        match request.resume with
        | None -> None
        | Some _ ->
            Some
              {
                cex_count = List.length initial;
                prior_iterations = resumed_iters;
                start_check =
                  (match single with
                  | Some s -> s.Synth.Driver.check_lo
                  | None -> 0);
              }
      in
      (* warm-start counterexamples from compatible cached pools ride
         along with the resumed ones but are invisible to the resume
         banner and the checkpoint being written *)
      let warm =
        match (ctx, single) with
        | Some c, Some s ->
            Cache.warm_start ~dir:c.c_dir ~data_len:s.Synth.Driver.data_len
              ~md:s.Synth.Driver.md
        | _ -> []
      in
      let writer =
        match single with
        | Some s ->
            make_writer ~checkpoint:request.checkpoint
              ~data_len:s.Synth.Driver.data_len
              ~check_len:s.Synth.Driver.check_lo ~md:s.Synth.Driver.md
              ~initial ~resumed_iters
        | None -> None
      in
      let iters = Atomic.make resumed_iters in
      let learned = ref [] in
      let record_cex = writer_on_cex writer iters in
      let on_cex cex =
        learned := cex :: !learned;
        record_cex cex
      in
      let last_report = ref None in
      let on_report r =
        last_report := Some r;
        match on_report with Some f -> f r | None -> ()
      in
      let outcome =
        Observe.with_observability ~trace:request.trace
          ~metrics:request.metrics ~progress:request.progress (fun () ->
            Synth.Driver.run ~timeout:request.timeout ?weights ?jobs:jobs_opt
              ~on_report ~interrupt:intr ~initial:(initial @ warm) ~on_cex prop)
      in
      flush_writer writer;
      (match single with
      | Some s ->
          cache_save_pool ctx ~data_len:s.Synth.Driver.data_len
            ~check_len:s.Synth.Driver.check_lo ~md:s.Synth.Driver.md
            (initial @ List.rev !learned)
      | None -> ());
      let finish ?stats ?(metrics = []) ~outcome:o ~exit_code () =
        Recorder.finish token ?stats
          ~metrics:(cache_metric request ctx false metrics)
          ~outcome:o ~exit_code ()
      in
      let mk outcome ~exit_code =
        {
          outcome;
          cache_hit = false;
          interrupted = intr ();
          resumed;
          report = !last_report;
          wall_s = Unix.gettimeofday () -. t0;
          exit_code;
        }
      in
      (match outcome with
      | Synth.Driver.Codes (codes, stats) ->
          finish
            ~stats:(Report.Stats.to_json stats)
            ~metrics:(Report.Stats.to_metrics stats)
            ~outcome:"synthesized" ~exit_code:0 ();
          (match (codes, single) with
          | [ code ], Some s ->
              cache_store ctx ~code ~md:s.Synth.Driver.md
                ~iterations:stats.Report.Stats.iterations
                ~elapsed:stats.Report.Stats.elapsed
          | _ -> ());
          mk (Codes (codes, stats)) ~exit_code:0
      | Synth.Driver.Setbits_walk steps ->
          let walk_totals =
            Report.Stats.sum
              (List.map (fun s -> s.Synth.Optimize.step_stats) steps)
          in
          finish
            ~stats:(Report.Stats.to_json walk_totals)
            ~metrics:(Report.Stats.to_metrics walk_totals)
            ~outcome:"synthesized" ~exit_code:0 ();
          mk (Setbits steps) ~exit_code:0
      | Synth.Driver.Weighted_result r ->
          finish
            ~metrics:
              [
                ("stats.iterations", float_of_int r.Synth.Weighted.iterations);
                ("stats.elapsed_s", r.Synth.Weighted.elapsed);
              ]
            ~outcome:"synthesized" ~exit_code:0 ();
          mk (Weighted r) ~exit_code:0
      | Synth.Driver.Partial_code (code, stats) ->
          (* anytime result: the candidate is real but its distance
             target was never verified — recompute the achieved bound
             before reporting *)
          let achieved = Hamming.Distance.min_distance code in
          let exit_code = if intr () then exit_interrupted else exit_partial in
          finish
            ~stats:(Report.Stats.to_json stats)
            ~metrics:(Report.Stats.to_metrics stats)
            ~outcome:(if intr () then "interrupted" else "partial")
            ~exit_code ();
          (match writer with
          | Some w ->
              Synth.Checkpoint.Writer.record_best w code achieved;
              Synth.Checkpoint.Writer.flush w
          | None -> ());
          mk (Partial { code; achieved; check_len = None; stats }) ~exit_code
      | Synth.Driver.Unsat msg ->
          finish ~outcome:"unsat" ~exit_code:exit_unsat ();
          mk (Unsat { reason = msg; stats = None }) ~exit_code:exit_unsat
      | Synth.Driver.Timeout msg ->
          let exit_code = if intr () then exit_interrupted else exit_timeout in
          finish
            ~outcome:(if intr () then "interrupted" else "timeout")
            ~exit_code ();
          mk (Timeout { reason = msg; stats = None }) ~exit_code
      | Synth.Driver.No_solution msg ->
          invalid token ("no solution: " ^ msg))

(* ---------- the optimize job ---------- *)

let run_optimize ~intr ~t0 request ~data_len ~md ~check_lo ~check_hi =
  let token =
    Recorder.start ~no_ledger:request.no_ledger ?dir:request.ledger_dir
      ~subcommand:request.subcommand
      ~problem:
        (Printf.sprintf "data_len=%d md=%d check=%d..%d" data_len md check_lo
           check_hi)
      ~config:
        ([ ("timeout", string_of_float request.timeout) ]
        @ (match request.checkpoint with
          | Some p -> [ ("checkpoint", p) ]
          | None -> [])
        @ (match request.resume with Some p -> [ ("resume", p) ] | None -> [])
        @
        match request.request_id with
        | Some r -> [ ("request", r) ]
        | None -> [])
      ()
  in
  guarded token @@ fun () ->
  let task =
    Synth.Driver.Min_check_len
      {
        Synth.Driver.data_len;
        check_lo;
        check_hi;
        md;
        len1_max = None;
        fixed_bits = [];
      }
  in
  let ctx = cache_ctx request task ~weights:None in
  match cache_lookup ctx with
  | Some entry ->
      let stats = hit_stats entry in
      Recorder.finish token
        ~stats:(Report.Stats.to_json stats)
        ~metrics:(cache_metric request ctx true [])
        ~cache_hit:true ~outcome:"synthesized" ~exit_code:0 ();
      {
        outcome =
          Optimized
            ( {
                Synth.Optimize.code = entry.Cache.code;
                check_len = entry.Cache.check_len;
                stats;
              },
              stats );
        cache_hit = true;
        interrupted = false;
        resumed = None;
        report = None;
        wall_s = Unix.gettimeofday () -. t0;
        exit_code = 0;
      }
  | None ->
      let initial, start_lo, resumed_iters =
        match request.resume with
        | None -> ([], check_lo, 0)
        | Some path -> (
            match Synth.Checkpoint.load ~path with
            | Error e ->
                failwith
                  ("cannot resume: " ^ Synth.Checkpoint.error_to_string e)
            | Ok t ->
                if
                  t.Synth.Checkpoint.data_len <> data_len
                  || t.Synth.Checkpoint.min_distance <> md
                then
                  failwith
                    (Printf.sprintf
                       "cannot resume: checkpoint is for data_len %d md %d \
                        but the command line wants data_len %d md %d"
                       t.Synth.Checkpoint.data_len
                       t.Synth.Checkpoint.min_distance data_len md);
                let lo =
                  match t.Synth.Checkpoint.opt_bound with
                  | Some b -> max check_lo b
                  | None -> check_lo
                in
                (t.Synth.Checkpoint.cexes, lo, t.Synth.Checkpoint.iterations))
      in
      let resumed =
        match request.resume with
        | None -> None
        | Some _ ->
            Some
              {
                cex_count = List.length initial;
                prior_iterations = resumed_iters;
                start_check = start_lo;
              }
      in
      let warm =
        match ctx with
        | Some c -> Cache.warm_start ~dir:c.c_dir ~data_len ~md
        | None -> []
      in
      let writer =
        make_writer ~checkpoint:request.checkpoint ~data_len
          ~check_len:check_lo ~md ~initial ~resumed_iters
      in
      (match writer with
      | Some w -> Synth.Checkpoint.Writer.record_bound w start_lo
      | None -> ());
      let iters = Atomic.make resumed_iters in
      let learned = ref [] in
      let record_cex = writer_on_cex writer iters in
      let on_cex cex =
        learned := cex :: !learned;
        record_cex cex
      in
      let on_round c =
        match writer with
        | None -> ()
        | Some w -> Synth.Checkpoint.Writer.record_bound w c
      in
      let outcome =
        Observe.with_observability ~trace:request.trace
          ~metrics:request.metrics ~progress:request.progress (fun () ->
            Synth.Optimize.minimize_check_len ~timeout:request.timeout
              ~interrupt:intr ~initial:(initial @ warm) ~on_round ~on_cex
              ~data_len ~md ~check_lo:start_lo ~check_hi ())
      in
      flush_writer writer;
      cache_save_pool ctx ~data_len ~check_len:check_lo ~md
        (initial @ List.rev !learned);
      let finish ?stats ?(metrics = []) ~outcome:o ~exit_code () =
        Recorder.finish token ?stats
          ~metrics:(cache_metric request ctx false metrics)
          ~outcome:o ~exit_code ()
      in
      let mk outcome ~exit_code =
        {
          outcome;
          cache_hit = false;
          interrupted = intr ();
          resumed;
          report = None;
          wall_s = Unix.gettimeofday () -. t0;
          exit_code;
        }
      in
      (match outcome with
      | Report.Synthesized (r, totals) ->
          finish
            ~stats:(Report.Stats.to_json totals)
            ~metrics:(Report.Stats.to_metrics totals)
            ~outcome:"synthesized" ~exit_code:0 ();
          cache_store ctx ~code:r.Synth.Optimize.code ~md
            ~iterations:totals.Report.Stats.iterations
            ~elapsed:totals.Report.Stats.elapsed;
          mk (Optimized (r, totals)) ~exit_code:0
      | Report.Unsat_config totals ->
          finish
            ~stats:(Report.Stats.to_json totals)
            ~metrics:(Report.Stats.to_metrics totals)
            ~outcome:"unsat" ~exit_code:exit_unsat ();
          mk
            (Unsat
               {
                 reason =
                   Printf.sprintf "no check length in %d..%d reaches md %d"
                     start_lo check_hi md;
                 stats = Some totals;
               })
            ~exit_code:exit_unsat
      | Report.Timed_out totals ->
          let exit_code = if intr () then exit_interrupted else exit_timeout in
          finish
            ~stats:(Report.Stats.to_json totals)
            ~metrics:(Report.Stats.to_metrics totals)
            ~outcome:(if intr () then "interrupted" else "timeout")
            ~exit_code ();
          mk (Timeout { reason = ""; stats = Some totals }) ~exit_code
      | Report.Partial (r, totals) ->
          let code = r.Synth.Optimize.code in
          let achieved = Hamming.Distance.min_distance code in
          let exit_code = if intr () then exit_interrupted else exit_partial in
          finish
            ~stats:(Report.Stats.to_json totals)
            ~metrics:(Report.Stats.to_metrics totals)
            ~outcome:(if intr () then "interrupted" else "partial")
            ~exit_code ();
          (match writer with
          | Some w ->
              Synth.Checkpoint.Writer.record_best w code achieved;
              Synth.Checkpoint.Writer.flush w
          | None -> ());
          mk
            (Partial
               {
                 code;
                 achieved;
                 check_len = Some r.Synth.Optimize.check_len;
                 stats = totals;
               })
            ~exit_code)

(* ---------- the public entry point ---------- *)

let run_sync ?on_report ?cancel request =
  let t0 = Unix.gettimeofday () in
  let intr () =
    Atomic.get sigint_requested
    || match cancel with Some c -> Atomic.get c | None -> false
  in
  (* a one-shot run that asked for the lens owns it: started before the
     job so [Observe] composes the poller into the tee, stopped after
     the ledger record (which snapshots it) has settled.  Under a daemon
     the lens is already live process-wide and is left alone. *)
  let owned_lens =
    request.runtime_lens
    && (not (Telemetry.Runtime.active ()))
    &&
    (Telemetry.Runtime.start ();
     Telemetry.Runtime.active ())
  in
  Fun.protect
    ~finally:(fun () -> if owned_lens then Telemetry.Runtime.stop ())
    (fun () ->
      match request.job with
      | Synth { prop; weights; portfolio; jobs } ->
          run_synth ?on_report ~intr ~t0 request ~prop_spec:prop ~weights
            ~portfolio ~jobs
      | Optimize { data_len; md; check_lo; check_hi } ->
          run_optimize ~intr ~t0 request ~data_len ~md ~check_lo ~check_hi)

(* ---------- the concurrent session manager ---------- *)

module Manager = struct
  type id = int

  type status =
    | Queued
    | Running
    | Done of result
    | Failed of string
    | Cancelled
    | Timed_out

  type jobrec = {
    jr_id : id;
    jr_request : request;
    jr_cancel : bool Atomic.t;
    jr_deadline : float option;  (* absolute, Unix.gettimeofday clock *)
    jr_submitted : float;  (* admission time, for queue-wait attribution *)
    mutable jr_status : status;
    mutable jr_worker : int;  (* worker id running it; -1 when none *)
  }

  type worker_info = {
    wi_worker : int;
    wi_state : [ `Idle | `Running | `Condemned ];
    wi_since_s : float;  (* seconds spent in the current state *)
    wi_request : string option;  (* request id being served, if any *)
    wi_session : id option;
  }

  (* mutable mirror of [worker_info], updated under [t.lock] *)
  type wstate = {
    mutable ws_state : [ `Idle | `Running | `Condemned ];
    mutable ws_since : float;
    mutable ws_request : string option;
    mutable ws_session : id option;
  }

  type t = {
    lock : Mutex.t;
    work : Condition.t;  (* queue gained an item, or stopping *)
    settled : Condition.t;  (* some session reached a final status *)
    queue : id Queue.t;
    sessions : (id, jobrec) Hashtbl.t;
    mutable next : id;
    mutable stopping : bool;
    max_queue : int;
    grace : float;  (* post-deadline slack before a worker is reaped *)
    policy : Synth.Supervisor.policy;  (* crash restarts + reap backoff *)
    mutable domains : (int * unit Domain.t) list;  (* worker id, domain *)
    condemned : (int, unit) Hashtbl.t;  (* reaped workers, never joined *)
    workers_tbl : (int, wstate) Hashtbl.t;
    mutable next_worker : int;
    mutable reap_count : int;
    on_reap : (worker:int -> request_id:string option -> unit) option;
        (* fired outside [lock] after a worker is condemned — the serve
           daemon dumps the flight recorder here *)
  }

  let g_depth = Telemetry.Metrics.gauge "serve.queue_depth"
  let m_reaped = Telemetry.Metrics.counter "serve.worker_reaped"

  let h_queue_wait =
    Telemetry.Metrics.histogram "serve.queue_wait_ms"
      ~help:"milliseconds a request spent queued before a worker picked it up"

  let locked t f =
    Mutex.lock t.lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

  let set_depth t = Telemetry.Metrics.set g_depth (float_of_int (Queue.length t.queue))

  (* must be called with [t.lock] held *)
  let mark_worker t w state ~request ~session =
    let now = Unix.gettimeofday () in
    match Hashtbl.find_opt t.workers_tbl w with
    | Some ws ->
        ws.ws_state <- state;
        ws.ws_since <- now;
        ws.ws_request <- request;
        ws.ws_session <- session
    | None ->
        Hashtbl.replace t.workers_tbl w
          { ws_state = state; ws_since = now; ws_request = request;
            ws_session = session }

  (* A failed run renders the same message the CLI's top-level handlers
     would print, so the wire client sees familiar errors. *)
  let failure_message = function
    | Invalid_request msg -> msg
    | Spec.Parse.Error msg -> "bad property: " ^ msg
    | Invalid_argument msg | Failure msg | Sys_error msg -> msg
    | e -> Printexc.to_string e

  let deadline_passed jr now =
    match jr.jr_deadline with None -> false | Some dl -> now >= dl

  let worker_loop t w =
    let rec next_job () =
      Mutex.lock t.lock;
      let rec wait () =
        if
          Queue.is_empty t.queue && (not t.stopping)
          && not (Hashtbl.mem t.condemned w)
        then begin
          Condition.wait t.work t.lock;
          wait ()
        end
      in
      wait ();
      if Queue.is_empty t.queue || Hashtbl.mem t.condemned w then begin
        Mutex.unlock t.lock;
        None
      end
      else begin
        let id = Queue.pop t.queue in
        set_depth t;
        match Hashtbl.find_opt t.sessions id with
        | Some jr when jr.jr_status = Queued ->
            if deadline_passed jr (Unix.gettimeofday ()) then begin
              (* expired while waiting in the queue: answer timeout
                 without burning a worker on it *)
              jr.jr_status <- Timed_out;
              Condition.broadcast t.settled;
              Mutex.unlock t.lock;
              next_job ()
            end
            else begin
              jr.jr_status <- Running;
              jr.jr_worker <- w;
              mark_worker t w `Running ~request:jr.jr_request.request_id
                ~session:(Some id);
              Mutex.unlock t.lock;
              Some jr
            end
        | _ ->
            (* cancelled while queued; skip it *)
            Mutex.unlock t.lock;
            next_job ()
      end
    in
    let rec loop () =
      Synth.Fault.probe "manager.worker";
      match next_job () with
      | None -> ()
      | Some jr ->
          let wait_s = Unix.gettimeofday () -. jr.jr_submitted in
          Telemetry.Metrics.observe h_queue_wait
            (int_of_float (wait_s *. 1000.));
          (* the queue-wait lands in the ledger's extra metrics so
             [runs html] can split serve latency into wait vs run *)
          let request =
            { jr.jr_request with
              extra_metrics =
                ("serve.queue_wait_s", wait_s) :: jr.jr_request.extra_metrics;
            }
          in
          let run () =
            match run_sync ~cancel:jr.jr_cancel request with
            | r -> Done r
            | exception e -> Failed (failure_message e)
          in
          let status =
            match request.request_id with
            | None -> run ()
            | Some rid ->
                (* every event the run emits — including from portfolio
                   worker domains, which re-install the context — carries
                   the request id, so [trace report --request] can slice
                   this run back out of the daemon's interleaved trace.
                   The runtime lens gets the same id via a ring beacon,
                   so GC intervals on this domain are attributed too. *)
                Telemetry.Runtime.set_request (Some rid);
                Fun.protect
                  ~finally:(fun () -> Telemetry.Runtime.set_request None)
                  (fun () ->
                    Telemetry.with_context
                      [ ("request", Telemetry.str rid) ]
                      (fun () ->
                        Telemetry.span "serve.request"
                          ~fields:
                            [
                              ("worker", Telemetry.str (string_of_int w));
                              ( "queue_wait_s",
                                Telemetry.str (Printf.sprintf "%.3f" wait_s) );
                            ]
                          run))
          in
          locked t (fun () ->
              (match jr.jr_status with
              | Running ->
                  jr.jr_status <- status;
                  jr.jr_worker <- -1;
                  Condition.broadcast t.settled
              | _ ->
                  (* reaped meanwhile; the Timed_out verdict stands and
                     this condemned worker exits below *)
                  ());
              if not (Hashtbl.mem t.condemned w) then
                mark_worker t w `Idle ~request:None ~session:None);
          if not (Hashtbl.mem t.condemned w) then loop ()
    in
    loop ()

  (* A worker crash — an injected ["manager.worker"] fault or a logic
     bug escaping [run_sync]'s per-job handler — restarts the loop under
     supervision instead of silently shrinking the pool. *)
  let worker t w () =
    ignore
      (Synth.Supervisor.run ~policy:t.policy ~label:"manager.worker"
         ~is_cancellation:(fun _ -> false)
         (fun ~attempt:_ -> worker_loop t w))

  (* must be called with [t.lock] held *)
  let spawn t ~backoff_attempt =
    let w = t.next_worker in
    t.next_worker <- w + 1;
    mark_worker t w `Idle ~request:None ~session:None;
    let d =
      Domain.spawn (fun () ->
          if backoff_attempt > 0 then
            Unix.sleepf
              (Synth.Supervisor.backoff_delay t.policy ~label:"manager.worker"
                 ~attempt:backoff_attempt);
          worker t w ())
    in
    t.domains <- (w, d) :: t.domains

  let create ~workers ~max_queue ?(grace = 1.0) ?policy ?on_reap () =
    let policy =
      match policy with
      | Some p -> p
      | None -> { Synth.Supervisor.default_policy with max_restarts = 100 }
    in
    let t =
      {
        lock = Mutex.create ();
        work = Condition.create ();
        settled = Condition.create ();
        queue = Queue.create ();
        sessions = Hashtbl.create 16;
        next = 1;
        stopping = false;
        max_queue;
        grace;
        policy;
        domains = [];
        condemned = Hashtbl.create 4;
        workers_tbl = Hashtbl.create 8;
        next_worker = 0;
        reap_count = 0;
        on_reap;
      }
    in
    locked t (fun () ->
        for _ = 1 to max 1 workers do
          spawn t ~backoff_attempt:0
        done);
    t

  let submit ?deadline_s t request =
    locked t (fun () ->
        if t.stopping || Queue.length t.queue >= t.max_queue then
          Error `Backpressure
        else begin
          let id = t.next in
          t.next <- id + 1;
          let now = Unix.gettimeofday () in
          Hashtbl.replace t.sessions id
            {
              jr_id = id;
              jr_request = request;
              jr_cancel = Atomic.make false;
              jr_deadline = Option.map (fun s -> now +. s) deadline_s;
              jr_submitted = now;
              jr_status = Queued;
              jr_worker = -1;
            };
          Queue.push id t.queue;
          set_depth t;
          Condition.signal t.work;
          Ok id
        end)

  (* Deadline enforcement, driven from the serve event loop's tick.  A
     queued session past its deadline settles immediately.  A running
     one first gets a cooperative cancel (the solvers poll it); past
     deadline + grace its worker is condemned — OCaml domains cannot be
     killed, so the stuck domain is abandoned (never joined; it exits
     on its own if the run ever returns) and a supervised replacement
     is spawned with jittered backoff.  The session answers Timed_out
     either way: the wire never hangs on a stuck job. *)
  let tend t =
    let now = Unix.gettimeofday () in
    let reaps =
      locked t (fun () ->
          let reaps = ref [] in
          Hashtbl.iter
            (fun _id jr ->
              if deadline_passed jr now then
                match jr.jr_status with
                | Queued ->
                    jr.jr_status <- Timed_out;
                    Condition.broadcast t.settled
                | Running ->
                    Atomic.set jr.jr_cancel true;
                    if
                      now >= Option.get jr.jr_deadline +. t.grace
                      && jr.jr_worker >= 0
                      && not (Hashtbl.mem t.condemned jr.jr_worker)
                    then begin
                      let w = jr.jr_worker in
                      let rid = jr.jr_request.request_id in
                      Hashtbl.replace t.condemned w ();
                      t.reap_count <- t.reap_count + 1;
                      Telemetry.Metrics.incr m_reaped 1;
                      if Telemetry.enabled () then
                        Telemetry.point "manager.reap"
                          ~fields:
                            (("worker", Telemetry.str (string_of_int w))
                            ::
                            (match rid with
                            | None -> []
                            | Some r -> [ ("request", Telemetry.str r) ]));
                      mark_worker t w `Condemned ~request:rid
                        ~session:(Some jr.jr_id);
                      jr.jr_status <- Timed_out;
                      jr.jr_worker <- -1;
                      Condition.broadcast t.settled;
                      reaps := (w, rid) :: !reaps;
                      if not t.stopping then
                        spawn t ~backoff_attempt:t.reap_count
                    end
                | _ -> ())
            t.sessions;
          !reaps)
    in
    (* outside the lock: the hook dumps the flight recorder, which takes
       its own mutex and touches the filesystem *)
    match t.on_reap with
    | None -> ()
    | Some f ->
        List.iter (fun (w, rid) -> f ~worker:w ~request_id:rid) reaps

  let status t id =
    locked t (fun () ->
        Option.map (fun jr -> jr.jr_status) (Hashtbl.find_opt t.sessions id))

  let await t id =
    Mutex.lock t.lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.lock)
      (fun () ->
        let rec wait () =
          match Hashtbl.find_opt t.sessions id with
          | None -> None
          | Some jr -> (
              match jr.jr_status with
              | Done _ | Failed _ | Cancelled | Timed_out -> Some jr.jr_status
              | Queued | Running ->
                  Condition.wait t.settled t.lock;
                  wait ())
        in
        wait ())

  let cancel t id =
    locked t (fun () ->
        match Hashtbl.find_opt t.sessions id with
        | None -> false
        | Some jr -> (
            Atomic.set jr.jr_cancel true;
            match jr.jr_status with
            | Queued ->
                jr.jr_status <- Cancelled;
                Condition.broadcast t.settled;
                true
            | Running -> true
            | Done _ | Failed _ | Cancelled | Timed_out -> false))

  let queue_depth t = locked t (fun () -> Queue.length t.queue)
  let reaped t = locked t (fun () -> t.reap_count)

  let workers t =
    let now = Unix.gettimeofday () in
    locked t (fun () ->
        Hashtbl.fold
          (fun w ws acc ->
            {
              wi_worker = w;
              wi_state = ws.ws_state;
              wi_since_s = now -. ws.ws_since;
              wi_request = ws.ws_request;
              wi_session = ws.ws_session;
            }
            :: acc)
          t.workers_tbl []
        |> List.sort (fun a b -> compare a.wi_worker b.wi_worker))

  let drain t =
    locked t (fun () ->
        t.stopping <- true;
        Condition.broadcast t.work);
    let rec wait_idle () =
      let busy =
        locked t (fun () ->
            Queue.length t.queue > 0
            || Hashtbl.fold
                 (fun _ jr acc ->
                   acc || jr.jr_status = Running || jr.jr_status = Queued)
                 t.sessions false)
      in
      if busy then begin
        tend t;
        Unix.sleepf 0.02;
        wait_idle ()
      end
    in
    wait_idle ();
    locked t (fun () -> Condition.broadcast t.work);
    (* condemned workers may be stuck in a stalled run forever; they are
       zombies by design and must not block shutdown *)
    List.iter
      (fun (w, d) -> if not (Hashtbl.mem t.condemned w) then Domain.join d)
      t.domains;
    t.domains <- []
end
