(** Minimal blocking client for the serve wire protocol. *)

type t

(** [connect path] opens the Unix-domain socket at [path].
    @raise Failure when the daemon is not reachable. *)
val connect : string -> t

(** [rpc t request] sends one request line and blocks for one response
    line.  @raise Failure on a closed connection or malformed reply. *)
val rpc : t -> Telemetry.Json.t -> Telemetry.Json.t

val close : t -> unit
