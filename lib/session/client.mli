(** Blocking client for the serve wire protocol, with deadlines and
    supervised retries — callers never hang on a stalled or half-dead
    daemon. *)

type t

(** [connect ?timeout path] opens the Unix-domain socket at [path];
    [timeout] bounds the connection attempt in seconds.
    @raise Failure when the daemon is not reachable (or not in time). *)
val connect : ?timeout:float -> string -> t

(** [rpc ?timeout t request] sends one request line and blocks for one
    response line; [timeout] bounds the wait for the reply.
    @raise Failure on a closed connection, malformed reply, or expired
    deadline. *)
val rpc : ?timeout:float -> t -> Telemetry.Json.t -> Telemetry.Json.t

val close : t -> unit

(** [with_retries ?retries ?connect_timeout ?seed ~socket f] runs
    [f client] over a fresh connection, retrying the whole exchange up
    to [retries] more times (default 0) after a [Failure], with the
    {!Synth.Supervisor} jittered-exponential backoff (label ["client"],
    deterministic in [seed]).  Retrying is sound for the protocol's
    idempotent operations: reads are pure, and resubmission is
    content-addressed through [Session.Key], so a retry after a lost
    reply lands on the cache rather than computing a divergent
    duplicate. *)
val with_retries :
  ?retries:int ->
  ?connect_timeout:float ->
  ?seed:int ->
  socket:string ->
  (t -> 'a) ->
  'a
