(** Run-ledger recording for sessions.

    Each session run obtains a {!token} from {!start} and settles it with
    {!finish}; a process-wide [at_exit] hook (installed lazily, on the
    first recording start) settles any token still pending when the
    process dies — an uncaught exception, a library [exit] — as a
    ["crash"], so failures are first-class ledger data.

    Opting out is absolute: when the run is started with [~no_ledger:true]
    or [FEC_NO_LEDGER=1] is set, {!start} returns an inert token, no
    [at_exit] hook is installed on its behalf, and the hook — if some
    earlier recording run installed it — re-checks the environment at
    fire time, so an opted-out process can never create the ledger
    directory, not even on the crash path.

    Tokens are independent, so a long-lived server can record many
    concurrent sessions; the registry is mutex-protected. *)

type token

(** [enabled ?no_ledger ()] is [false] iff recording is opted out via the
    flag or [FEC_NO_LEDGER=1]. *)
val enabled : ?no_ledger:bool -> unit -> bool

(** [start ?no_ledger ?dir ~subcommand ~problem ~config ()] begins a
    pending ledger record (or returns an inert token when opted out). *)
val start :
  ?no_ledger:bool ->
  ?dir:string ->
  subcommand:string ->
  problem:string ->
  config:(string * string) list ->
  unit ->
  token

(** [finish ?stats ?metrics ?cache_hit token ~outcome ~exit_code ()]
    appends the record.  Idempotent; inert tokens are a no-op. *)
val finish :
  ?stats:Telemetry.Json.t ->
  ?metrics:(string * float) list ->
  ?cache_hit:bool ->
  token ->
  outcome:string ->
  exit_code:int ->
  unit ->
  unit
