(** Content-addressed cache keys for synthesis requests.

    A key is a canonical, human-readable rendering of the {e normalized}
    synthesis task — data length, check-length interval, distance target,
    set-bit bound, pinned coefficient bits, optional weights and channel
    probability — such that semantically identical specifications render
    to the same string (and therefore the same digest) no matter how they
    were spelled:

    - the property analyzer ({!Synth.Driver.analyze}) already folds
      arithmetic, merges interval constraints and normalizes [md >= k]
      against [md = k], so two spellings of one task arrive here as equal
      records;
    - [fixed_bits] are sorted and deduplicated, so permuted conjunct
      order cannot change the key;
    - a [minimal(len_c)] walk over a single-point interval is the same
      task as a fixed synthesis at that check length, and keys as such.

    The digest is an MD5 of the canonical string.  The canonical string
    itself is stored alongside every cache entry and compared on lookup,
    so even a digest collision can never serve a wrong result. *)

(** [canonical ?weights ?p task] renders the normalized task as a stable
    one-line string. *)
val canonical : ?weights:int array -> ?p:float -> Synth.Driver.task -> string

(** [digest canonical] is the lowercase-hex MD5 of the canonical string —
    the cache's file-name key. *)
val digest : string -> string

(** [of_task ?weights ?p task] is [(canonical, digest canonical)]. *)
val of_task :
  ?weights:int array -> ?p:float -> Synth.Driver.task -> string * string
