(* The wire client.  Descriptor-based rather than channel-based so every
   blocking point — connect, reply — can carry a deadline: a daemon that
   accepts and then stalls must not hang the caller forever. *)

type t = { fd : Unix.file_descr; mutable rbuf : string }

let conn_fail path e =
  failwith
    (Printf.sprintf "cannot connect to %s: %s" path (Unix.error_message e))

let connect ?timeout path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let cleanup_fail e =
    (try Unix.close fd with Unix.Unix_error _ -> ());
    conn_fail path e
  in
  (match timeout with
  | None -> (
      try Unix.connect fd (Unix.ADDR_UNIX path)
      with Unix.Unix_error (e, _, _) -> cleanup_fail e)
  | Some s -> (
      Unix.set_nonblock fd;
      (match Unix.connect fd (Unix.ADDR_UNIX path) with
      | () -> ()
      | exception
          Unix.Unix_error ((Unix.EINPROGRESS | Unix.EWOULDBLOCK | Unix.EAGAIN), _, _)
        -> (
          match Unix.select [] [ fd ] [] s with
          | [], [], [] -> cleanup_fail Unix.ETIMEDOUT
          | _ -> (
              match Unix.getsockopt_error fd with
              | Some e -> cleanup_fail e
              | None -> ()))
      | exception Unix.Unix_error (e, _, _) -> cleanup_fail e);
      Unix.clear_nonblock fd));
  { fd; rbuf = "" }

let rpc ?timeout t request =
  let line = Telemetry.Json.to_string request ^ "\n" in
  (try
     let len = String.length line in
     let n = Unix.write_substring t.fd line 0 len in
     if n <> len then failwith "connection closed by server"
   with Unix.Unix_error _ -> failwith "connection closed by server");
  let deadline = Option.map (fun s -> Unix.gettimeofday () +. s) timeout in
  let buf = Bytes.create 4096 in
  let rec read_line () =
    match String.index_opt t.rbuf '\n' with
    | Some i ->
        let reply = String.sub t.rbuf 0 i in
        t.rbuf <-
          String.sub t.rbuf (i + 1) (String.length t.rbuf - i - 1);
        reply
    | None ->
        (match deadline with
        | None -> ()
        | Some dl -> (
            let left = dl -. Unix.gettimeofday () in
            if left <= 0.0 then failwith "timed out waiting for server reply"
            else
              match Unix.select [ t.fd ] [] [] left with
              | [], _, _ -> failwith "timed out waiting for server reply"
              | _ -> ()));
        (match Unix.read t.fd buf 0 4096 with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | exception Unix.Unix_error _ ->
            failwith "connection closed by server"
        | 0 -> failwith "connection closed by server"
        | n -> t.rbuf <- t.rbuf ^ Bytes.sub_string buf 0 n);
        read_line ()
  in
  let reply = read_line () in
  match Telemetry.Json.of_string reply with
  | exception Telemetry.Json.Parse_error msg ->
      failwith ("malformed server reply: " ^ msg)
  | j -> j

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

(* Jittered-exponential retry around a whole connect-and-talk exchange.
   Safe for the protocol's idempotent operations: ping/stats/status are
   pure reads, and a resubmitted job is content-addressed through
   Session.Key, so the worst case of a reply lost in flight is a cheap
   cache hit on the retry, never a divergent duplicate result. *)
let with_retries ?(retries = 0) ?connect_timeout ?(seed = 0) ~socket f =
  let policy =
    {
      Synth.Supervisor.default_policy with
      seed;
      backoff_base = 0.05;
      backoff_max = 1.0;
    }
  in
  let rec go attempt =
    match
      let t = connect ?timeout:connect_timeout socket in
      Fun.protect ~finally:(fun () -> close t) (fun () -> f t)
    with
    | v -> v
    | exception Failure msg ->
        if attempt >= retries then failwith msg
        else begin
          Unix.sleepf
            (Synth.Supervisor.backoff_delay policy ~label:"client"
               ~attempt:(attempt + 1));
          go (attempt + 1)
        end
  in
  go 0
