type t = { ic : in_channel; oc : out_channel }

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with Unix.Unix_error (e, _, _) ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     failwith
       (Printf.sprintf "cannot connect to %s: %s" path (Unix.error_message e)));
  { ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }

let rpc t request =
  output_string t.oc (Telemetry.Json.to_string request);
  output_char t.oc '\n';
  flush t.oc;
  match input_line t.ic with
  | exception End_of_file -> failwith "connection closed by server"
  | line -> (
      match Telemetry.Json.of_string line with
      | exception Telemetry.Json.Parse_error msg ->
          failwith ("malformed server reply: " ^ msg)
      | j -> j)

let close t = try close_in t.ic with Sys_error _ -> ()
