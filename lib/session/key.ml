(* Canonical cache keys: the task record is already the analyzer's
   normal form, so the remaining work is making the rendering itself
   deterministic (sorted fixed bits, stable field order) and collapsing
   the one remaining semantic alias — a minimization walk over a
   single-point interval is just a fixed synthesis. *)

let render_single buf tag (s : Synth.Driver.single) =
  let fb = List.sort_uniq compare s.Synth.Driver.fixed_bits in
  Printf.bprintf buf "%s k=%d c=%d..%d md=%d len1=%s fb=%s" tag
    s.Synth.Driver.data_len s.Synth.Driver.check_lo s.Synth.Driver.check_hi
    s.Synth.Driver.md
    (match s.Synth.Driver.len1_max with
    | None -> "-"
    | Some n -> string_of_int n)
    (String.concat ";"
       (List.map
          (fun (r, c, v) -> Printf.sprintf "%d,%d,%d" r c (Bool.to_int v))
          fb))

let canonical ?weights ?p task =
  let b = Buffer.create 128 in
  (match task with
  | Synth.Driver.Fixed s -> render_single b "fixed" s
  | Synth.Driver.Min_check_len s
    when s.Synth.Driver.check_lo = s.Synth.Driver.check_hi ->
      (* minimal(len_c) over a one-point interval is a fixed synthesis *)
      render_single b "fixed" s
  | Synth.Driver.Min_check_len s -> render_single b "min_c" s
  | Synth.Driver.Min_set_bits (s, bound) ->
      render_single b "min_1" s;
      Printf.bprintf b " bound=%d" bound
  | Synth.Driver.Max_distance s -> render_single b "max_md" s
  | Synth.Driver.Weighted_mapping (g0, g1) ->
      Printf.bprintf b "weighted g0=%d,%d g1=%d,%d"
        g0.Synth.Weighted.check_len g0.Synth.Weighted.min_distance
        g1.Synth.Weighted.check_len g1.Synth.Weighted.min_distance);
  (match weights with
  | None -> ()
  | Some w ->
      Printf.bprintf b " w=%s"
        (String.concat "," (List.map string_of_int (Array.to_list w))));
  (match p with None -> () | Some p -> Printf.bprintf b " p=%h" p);
  Buffer.contents b

let digest canonical = Digest.to_hex (Digest.string canonical)
let of_task ?weights ?p task =
  let c = canonical ?weights ?p task in
  (c, digest c)
