(* FEC_FORCE_TTY=1 makes --progress render without a real TTY so cram
   tests can assert the line's shape; the sink then draws its final state
   followed by a newline instead of erasing itself. *)
let force_tty () = Sys.getenv_opt "FEC_FORCE_TTY" = Some "1"

let with_observability ?(trace = None) ?(metrics = None) ?(progress = false) f =
  let cleanups = ref [] in
  let sinks = ref [] in
  (match trace with
  | Some path ->
      let oc = open_out path in
      cleanups := (fun () -> close_out oc) :: !cleanups;
      sinks := Telemetry.Sink.ndjson oc :: !sinks
  | None -> ());
  (match metrics with
  | Some path ->
      let write text =
        let oc = open_out path in
        output_string oc text;
        close_out oc
      in
      sinks := Telemetry.Metrics.flush_sink write :: !sinks
  | None -> ());
  if progress && (Unix.isatty Unix.stderr || force_tty ()) then begin
    let write s =
      output_string stderr s;
      flush stderr
    in
    let final = force_tty () && not (Unix.isatty Unix.stderr) in
    sinks := Telemetry.Progress.sink ~final write :: !sinks
  end;
  match List.rev !sinks with
  | [] -> f ()
  | sinks ->
      Fun.protect
        ~finally:(fun () -> List.iter (fun c -> c ()) !cleanups)
        (fun () -> Telemetry.with_sink (Telemetry.Sink.tee sinks) f)
