(* FEC_FORCE_TTY=1 makes --progress render without a real TTY so cram
   tests can assert the line's shape; the sink then draws its final state
   followed by a newline instead of erasing itself. *)
let force_tty () = Sys.getenv_opt "FEC_FORCE_TTY" = Some "1"

let with_observability ?(trace = None) ?(metrics = None) ?(progress = false) f =
  let cleanups = ref [] in
  let sinks = ref [] in
  (match trace with
  | Some path ->
      let oc = open_out path in
      cleanups := (fun () -> close_out oc) :: !cleanups;
      sinks := Telemetry.Sink.ndjson oc :: !sinks
  | None -> ());
  (match metrics with
  | Some path ->
      let write text =
        let oc = open_out path in
        output_string oc text;
        close_out oc
      in
      sinks := Telemetry.Metrics.flush_sink write :: !sinks
  | None -> ());
  if progress && (Unix.isatty Unix.stderr || force_tty ()) then begin
    let write s =
      output_string stderr s;
      flush stderr
    in
    let final = force_tty () && not (Unix.isatty Unix.stderr) in
    sinks := Telemetry.Progress.sink ~final write :: !sinks
  end;
  (* When the runtime lens is live, let its poller ride on this run's
     event traffic, and force a final drain while the tee is still
     installed so the closing [runtime.gc] intervals land in the trace.
     The tick-driver sink is only added when this run installs sinks of
     its own: with none, the ambient sink (a daemon's trace tee, whose
     select loop already ticks the lens) must stay installed — teeing
     over it here would replace it and swallow the run's events. *)
  let f =
    if Telemetry.Runtime.active () then begin
      if !sinks <> [] then sinks := Telemetry.Runtime.sink () :: !sinks;
      fun () ->
        Fun.protect
          ~finally:(fun () -> Telemetry.Runtime.poll ~force:true ())
          f
    end
    else f
  in
  match List.rev !sinks with
  | [] -> f ()
  | sinks ->
      Fun.protect
        ~finally:(fun () -> List.iter (fun c -> c ()) !cleanups)
        (fun () -> Telemetry.with_sink (Telemetry.Sink.tee sinks) f)
