(** The synthesis session layer: one typed request/response API over
    everything a run needs — spec analysis, portfolio setup, checkpoint
    writing, result caching, warm starts, ledger recording, telemetry
    routing, interrupt handling.

    {!run_sync} executes one request in the calling thread; {!Manager}
    multiplexes many concurrent requests over worker domains with a
    bounded admission queue (the [fecsynth serve] engine).  The CLI
    [synth]/[optimize] subcommands are thin clients of {!run_sync}:
    argument parsing and rendering stay in the binary, everything
    behavioral lives here. *)

(** {1 Requests} *)

type job =
  | Synth of {
      prop : string;  (** property text, or [@file] *)
      weights : int array option;
      portfolio : bool;
      jobs : int;
    }
  | Optimize of { data_len : int; md : int; check_lo : int; check_hi : int }

type request = {
  job : job;
  timeout : float;
  checkpoint : string option;  (** write a resumable checkpoint here *)
  resume : string option;  (** resume from this checkpoint *)
  cache : bool;  (** consult/populate the content-addressed result cache *)
  cache_dir : string option;  (** default: {!Cache.default_dir} *)
  no_ledger : bool;
  ledger_dir : string option;  (** default: [Ledger.default_dir] *)
  subcommand : string;  (** ledger [cmd] field: ["synth"], ["serve"], … *)
  trace : string option;
  metrics : string option;
  progress : bool;
  runtime_lens : bool;
      (** start the {!Telemetry.Runtime} lens for this run (one-shot CLI
          [--runtime-lens]): {!run_sync} owns start/stop when no lens is
          already live, the ledger record gains [gc.*] trend metrics
          (pause p99s, total pause seconds, allocated megawords), and
          the trace carries [runtime.*] points.  Under a daemon the
          process-wide lens is left alone. *)
  extra_metrics : (string * float) list;
      (** caller-stamped facts appended to the run's ledger metrics on
          every finish path (cache hits included) — the serve daemon
          records its admission-time [serve.queue_depth] here *)
  request_id : string option;
      (** wire correlation id minted at admission by the serve daemon.
          When present, the worker installs it as ambient span context
          ({!Telemetry.with_context}) so every telemetry event of the
          run carries a [request] field, and the ledger record keeps it
          in its config block. *)
}

(** A request with everything but the job defaulted: 120 s timeout, no
    checkpointing, cache off, ledger on, no observers; [subcommand] is
    ["synth"] or ["optimize"] per the job. *)
val default_request : job -> request

(** {1 Results} *)

(** What a resumed run started from (for the CLI's resume banner). *)
type resumed = { cex_count : int; prior_iterations : int; start_check : int }

type outcome =
  | Codes of Hamming.Code.t list * Synth.Report.Stats.t
      (** verified generators (synth); a cache hit carries the original
          run's stats *)
  | Optimized of Synth.Optimize.check_result * Synth.Report.Stats.t
      (** minimal check length found (optimize) *)
  | Setbits of Synth.Optimize.setbits_step list
  | Weighted of Synth.Weighted.result
  | Partial of {
      code : Hamming.Code.t;
      achieved : int;  (** recomputed true minimum distance *)
      check_len : int option;  (** the length the optimize walk died at *)
      stats : Synth.Report.Stats.t;
    }
  | Unsat of { reason : string; stats : Synth.Report.Stats.t option }
  | Timeout of { reason : string; stats : Synth.Report.Stats.t option }

type result = {
  outcome : outcome;
  cache_hit : bool;
  interrupted : bool;  (** SIGINT or {!run_sync}'s [cancel] fired *)
  resumed : resumed option;
  report : Synth.Portfolio.report option;  (** last portfolio report *)
  wall_s : float;
  exit_code : int;  (** the CLI exit-code contract: 0/3/4/5/130 *)
}

(** The request is structurally invalid (checkpointing a multi-generator
    task, a spec outside the supported fragment, …).  The run's ledger
    record is finished as [error]/124 before this is raised. *)
exception Invalid_request of string

(** {1 Interrupts} *)

(** Install the CLI SIGINT protocol: first Ctrl-C requests a cooperative
    wind-down, the second aborts at once (exit 130).  Servers do {e not}
    install this — they get their own drain handling. *)
val install_sigint : unit -> unit

(** The process-wide wind-down flag set by the first SIGINT. *)
val interrupted : unit -> bool

(** {1 Running} *)

(** [run_sync ?on_report ?cancel request] executes the request to
    completion in the calling thread, owning the ledger record, the
    checkpoint writer, cache lookup/population and telemetry routing.
    [cancel] is a per-request cooperative stop composed with the global
    SIGINT flag.  Parse and I/O failures finish the ledger record as
    [error]/2 and re-raise for the caller's error rendering. *)
val run_sync :
  ?on_report:(Synth.Portfolio.report -> unit) ->
  ?cancel:bool Atomic.t ->
  request ->
  result

(** {1 Concurrent sessions} *)

module Manager : sig
  (** A bounded pool of worker domains executing sessions concurrently —
      the multiplexing core of [fecsynth serve]. *)

  type t
  type id = int

  type status =
    | Queued
    | Running
    | Done of result
    | Failed of string  (** the run raised; message is the rendering *)
    | Cancelled  (** cancelled while still queued *)
    | Timed_out  (** its deadline passed; see {!tend} *)

  (** Live per-worker detail for the [stats]/[metrics] wire ops and
      [fecsynth top]. *)
  type worker_info = {
    wi_worker : int;
    wi_state : [ `Idle | `Running | `Condemned ];
    wi_since_s : float;  (** seconds spent in the current state *)
    wi_request : string option;  (** request id being served, if any *)
    wi_session : id option;
  }

  (** [create ~workers ~max_queue ?grace ?policy ?on_reap ()] starts
      [workers] domains.  At most [max_queue] requests may be queued
      (excluding running ones); admission beyond that is refused.
      [grace] (default 1 s) is the post-deadline slack a running session
      gets to wind down cooperatively before its worker is reaped.
      [policy] governs both worker crash supervision and reap/
      replacement backoff (default: {!Synth.Supervisor.default_policy}
      with generous restarts, suited to a long-running daemon).
      [on_reap] fires outside the manager lock after each worker is
      condemned — the serve daemon dumps the flight recorder there. *)
  val create :
    workers:int ->
    max_queue:int ->
    ?grace:float ->
    ?policy:Synth.Supervisor.policy ->
    ?on_reap:(worker:int -> request_id:string option -> unit) ->
    unit ->
    t

  (** [submit ?deadline_s t request] enqueues and returns the session
      id, or [Error `Backpressure] when the admission queue is full.
      [deadline_s] is a relative deadline; {!tend} enforces it.  Updates
      the [serve.queue_depth] gauge. *)
  val submit :
    ?deadline_s:float -> t -> request -> (id, [ `Backpressure ]) Stdlib.result

  (** [tend t] enforces deadlines; the serve loop calls it every tick.
      A queued session past its deadline settles as [Timed_out].  A
      running one is cancelled cooperatively at the deadline; past
      deadline + grace its worker domain is {e reaped} — condemned,
      abandoned (domains cannot be killed; a stuck one becomes a
      zombie that never blocks shutdown) and replaced by a fresh
      supervised worker after a jittered backoff — and the session
      settles as [Timed_out].  Bumps [serve.worker_reaped]. *)
  val tend : t -> unit

  val status : t -> id -> status option

  (** [await t id] blocks until the session settles ([Done]/[Failed]/
      [Cancelled]/[Timed_out]). *)
  val await : t -> id -> status option

  (** [cancel t id] requests a cooperative stop: a queued session is
      dropped, a running one winds down as interrupted. *)
  val cancel : t -> id -> bool

  (** Number of sessions queued but not yet running. *)
  val queue_depth : t -> int

  (** Workers reaped (condemned and replaced) since creation. *)
  val reaped : t -> int

  (** Snapshot of every worker ever spawned (condemned ones included),
      sorted by worker id. *)
  val workers : t -> worker_info list

  (** [drain t] stops admission, waits for every queued and running
      session to settle, and joins the workers. *)
  val drain : t -> unit
end
