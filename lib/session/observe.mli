(** Per-run observability: compose the NDJSON trace sink, the periodic
    Prometheus metrics exposition and the live progress display around a
    session run.  With nothing requested, [f] runs with no sink at all,
    preserving the telemetry disabled fast path. *)

(** [FEC_FORCE_TTY=1] — render progress without a real TTY (cram). *)
val force_tty : unit -> bool

(** [with_observability ?trace ?metrics ?progress f] runs [f] with
    telemetry routed to the requested observers.  The trace file is
    created eagerly so even an aborted run leaves a parseable (possibly
    empty) trace; the metrics file is rewritten whole on each periodic
    flush so readers always see a complete exposition; progress renders
    on stderr only when it is a TTY (or forced).  If the
    {!Telemetry.Runtime} lens is active, its poller is composed into the
    tee and force-drained when [f] returns, so runtime GC intervals
    cover the run end to end. *)
val with_observability :
  ?trace:string option ->
  ?metrics:string option ->
  ?progress:bool ->
  (unit -> 'a) ->
  'a
