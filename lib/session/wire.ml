module J = Telemetry.Json

type command =
  | Ping
  | Submit of {
      request : Session.request;
      await : bool;
      deadline_s : float option;
    }
  | Status of int
  | Await of int
  | Cancel of int
  | Stats
  | Metrics
  | Shutdown

(* ---------- responses ---------- *)

let ok fields = J.to_string (J.Obj (("ok", J.Bool true) :: fields)) ^ "\n"

let error ?kind msg =
  J.to_string
    (J.Obj
       (("ok", J.Bool false)
       :: ((match kind with Some k -> [ ("kind", J.Str k) ] | None -> [])
          @ [ ("error", J.Str msg) ])))
  ^ "\n"

let code_json code =
  J.Obj
    [
      ("block_len", J.Int (Hamming.Code.block_len code));
      ("data_len", J.Int (Hamming.Code.data_len code));
      ("matrix", J.Str (Hamming.Code.to_string code));
    ]

let stats_field stats = [ ("stats", Synth.Report.Stats.to_json stats) ]

let outcome_fields = function
  | Session.Codes (codes, stats) ->
      [
        ("outcome", J.Str "synthesized");
        ("codes", J.List (List.map code_json codes));
      ]
      @ stats_field stats
  | Session.Optimized (r, stats) ->
      [
        ("outcome", J.Str "synthesized");
        ("check_len", J.Int r.Synth.Optimize.check_len);
        ("codes", J.List [ code_json r.Synth.Optimize.code ]);
      ]
      @ stats_field stats
  | Session.Setbits steps ->
      [
        ("outcome", J.Str "setbits_walk");
        ( "steps",
          J.List
            (List.map
               (fun s ->
                 J.Obj
                   [
                     ("bound", J.Int s.Synth.Optimize.bound);
                     ("achieved", J.Int s.Synth.Optimize.achieved);
                     ("code", code_json s.Synth.Optimize.generator);
                   ])
               steps) );
      ]
  | Session.Weighted r ->
      [
        ("outcome", J.Str "weighted");
        ( "mapping",
          J.Str
            (String.concat ""
               (Array.to_list
                  (Array.map string_of_int r.Synth.Weighted.mapping))) );
        ("sum_w", J.Float r.Synth.Weighted.sum_w);
        ("optimal", J.Bool r.Synth.Weighted.optimal);
      ]
  | Session.Partial { code; achieved; check_len; stats } ->
      [
        ("outcome", J.Str "partial");
        ("achieved_md", J.Int achieved);
        ("codes", J.List [ code_json code ]);
      ]
      @ (match check_len with
        | Some c -> [ ("check_len", J.Int c) ]
        | None -> [])
      @ stats_field stats
  | Session.Unsat { reason; stats } ->
      [ ("outcome", J.Str "unsat"); ("reason", J.Str reason) ]
      @ (match stats with Some s -> stats_field s | None -> [])
  | Session.Timeout { reason; stats } ->
      [ ("outcome", J.Str "timeout"); ("reason", J.Str reason) ]
      @ (match stats with Some s -> stats_field s | None -> [])

let result_to_json (r : Session.result) =
  J.Obj
    (outcome_fields r.Session.outcome
    @ [
        ("cache_hit", J.Bool r.Session.cache_hit);
        ("interrupted", J.Bool r.Session.interrupted);
        ("exit_code", J.Int r.Session.exit_code);
        ("wall_s", J.Float r.Session.wall_s);
      ])

let status_to_json = function
  | Session.Manager.Queued -> J.Obj [ ("state", J.Str "queued") ]
  | Session.Manager.Running -> J.Obj [ ("state", J.Str "running") ]
  | Session.Manager.Cancelled -> J.Obj [ ("state", J.Str "cancelled") ]
  | Session.Manager.Failed msg ->
      J.Obj [ ("state", J.Str "failed"); ("error", J.Str msg) ]
  | Session.Manager.Done r ->
      J.Obj [ ("state", J.Str "done"); ("result", result_to_json r) ]
  | Session.Manager.Timed_out -> J.Obj [ ("state", J.Str "timeout") ]

(* ---------- requests ---------- *)

let member_int k j = Option.bind (J.member k j) J.to_int
let member_str k j = Option.bind (J.member k j) J.to_string_opt

let member_bool k j =
  match J.member k j with Some (J.Bool b) -> Some b | _ -> None

let member_float k j = Option.bind (J.member k j) J.to_float

let id_of j =
  match member_int "id" j with
  | Some id -> Ok id
  | None -> Error "missing id"

let job_of j =
  match (member_str "spec" j, J.member "optimize" j) with
  | Some _, Some _ -> Error "give either spec or optimize, not both"
  | Some prop, None ->
      let weights =
        match J.member "weights" j with
        | Some (J.List ws) ->
            let ints = List.filter_map J.to_int ws in
            if List.length ints = List.length ws then
              Some (Array.of_list ints)
            else None
        | _ -> None
      in
      let jobs = Option.value (member_int "jobs" j) ~default:4 in
      let portfolio =
        Option.value (member_bool "portfolio" j) ~default:false
      in
      if jobs < 1 then Error "jobs must be >= 1"
      else Ok (Session.Synth { prop; weights; portfolio; jobs })
  | None, Some o -> (
      match
        ( member_int "data_len" o,
          member_int "md" o,
          member_int "check_lo" o,
          member_int "check_hi" o )
      with
      | Some data_len, Some md, lo, hi ->
          let check_lo = Option.value lo ~default:1 in
          let check_hi = Option.value hi ~default:16 in
          if data_len < 1 || md < 1 || check_lo < 1 || check_hi < check_lo
          then
            Error
              "need data_len >= 1, md >= 1, 1 <= check_lo <= check_hi"
          else Ok (Session.Optimize { data_len; md; check_lo; check_hi })
      | _ -> Error "optimize needs data_len and md")
  | None, None -> Error "submit needs spec or optimize"

let submit_of ~(defaults : Session.request) j =
  match job_of j with
  | Error _ as e -> e
  | Ok job -> (
      let deadline =
        match member_int "deadline_ms" j with
        | Some ms when ms > 0 -> Ok (Some (float_of_int ms /. 1000.0))
        | Some _ -> Error "deadline_ms must be a positive integer"
        | None -> Ok None
      in
      match deadline with
      | Error _ as e -> e
      | Ok deadline_s ->
          Ok
            (Submit
               {
                 request =
                   {
                     defaults with
                     Session.job;
                     timeout =
                       Option.value (member_float "timeout" j)
                         ~default:defaults.Session.timeout;
                     cache =
                       Option.value (member_bool "cache" j)
                         ~default:defaults.Session.cache;
                   };
                 await = Option.value (member_bool "await" j) ~default:false;
                 deadline_s;
               }))

let command_of_json ~defaults j =
  match member_str "op" j with
  | None -> Error "missing op"
  | Some "ping" -> Ok Ping
  | Some "submit" -> submit_of ~defaults j
  | Some "status" -> Stdlib.Result.map (fun id -> Status id) (id_of j)
  | Some "await" -> Stdlib.Result.map (fun id -> Await id) (id_of j)
  | Some "cancel" -> Stdlib.Result.map (fun id -> Cancel id) (id_of j)
  | Some "stats" -> Ok Stats
  | Some "metrics" -> Ok Metrics
  | Some "shutdown" -> Ok Shutdown
  | Some op -> Error (Printf.sprintf "unknown op %S" op)
