(* Ledger recording with crash coverage and an absolute opt-out.

   The registry holds every pending record not yet finished; the at_exit
   hook drains it as "crash"/2.  The hook re-checks FEC_NO_LEDGER when it
   fires: opting out must hold on every exit path, including the crash
   one, so an opted-out process never creates .fecsynth/ledger/. *)

type token =
  | Inert
  | Live of { id : int; pending : Telemetry.Ledger.pending }

let env_disabled () = Sys.getenv_opt "FEC_NO_LEDGER" = Some "1"
let enabled ?(no_ledger = false) () = not (no_ledger || env_disabled ())

(* The build identity cannot change within one process, and detecting it
   forks a `git describe` — milliseconds that would dominate a served
   cache hit if paid per request. *)
let build = lazy (Telemetry.Buildinfo.detect ())

let lock = Mutex.create ()
let registry : (int, Telemetry.Ledger.pending) Hashtbl.t = Hashtbl.create 8
let next_id = ref 0
let hook_installed = ref false

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let install_hook () =
  if not !hook_installed then begin
    hook_installed := true;
    at_exit (fun () ->
        (* Ledger.finish is idempotent, so normally-finished runs make
           this a no-op; the true exit status is unknowable here — 2
           matches the CLI's uncaught-exception handlers. *)
        if not (env_disabled ()) then
          let remaining =
            with_lock (fun () ->
                let ps = Hashtbl.fold (fun _ p acc -> p :: acc) registry [] in
                Hashtbl.reset registry;
                ps)
          in
          match remaining with
          | [] -> ()
          | remaining ->
              List.iter
                (fun p ->
                  Telemetry.Ledger.finish p ~outcome:"crash" ~exit_code:2)
                remaining;
              (* runs died mid-flight: preserve the last telemetry events
                 alongside the crash records (no-op when the flight
                 recorder is disabled) *)
              ignore (Telemetry.Flight.dump ~reason:"crash" ()))
  end

let start ?no_ledger ?dir ~subcommand ~problem ~config () =
  if not (enabled ?no_ledger ()) then Inert
  else begin
    let pending =
      Telemetry.Ledger.start ?dir
        ~ts:(Telemetry.Ledger.utc_timestamp ())
        ~subcommand ~problem ~config
        ~build:(Lazy.force build)
        ()
    in
    with_lock (fun () ->
        install_hook ();
        let id = !next_id in
        incr next_id;
        Hashtbl.replace registry id pending;
        Live { id; pending })
  end

let finish ?stats ?metrics ?cache_hit token ~outcome ~exit_code () =
  match token with
  | Inert -> ()
  | Live { id; pending } ->
      with_lock (fun () -> Hashtbl.remove registry id);
      Telemetry.Ledger.finish ?stats ?metrics ?cache_hit pending ~outcome
        ~exit_code
