(* The serve event loop.  One thread owns all socket I/O: a select with a
   short tick multiplexes the listener and every client line buffer, and
   [await] waiters are answered from the tick by polling the manager —
   the loop never blocks on a session.  Synthesis itself runs on the
   manager's worker domains. *)

module J = Telemetry.Json

type config = {
  socket : string;
  workers : int;
  max_queue : int;
  cache : bool;
  cache_dir : string option;
  no_ledger : bool;
  ledger_dir : string option;
  metrics : string option;
}

let default_config ~socket =
  {
    socket;
    workers = 2;
    max_queue = 16;
    cache = true;
    cache_dir = None;
    no_ledger = false;
    ledger_dir = None;
    metrics = None;
  }

let tick = 0.05

type client = { fd : Unix.file_descr; buf : Buffer.t }

type state = {
  config : config;
  manager : Session.Manager.t;
  defaults : Session.request;
  mutable listen_fd : Unix.file_descr option;
  mutable clients : client list;
  mutable waiters : (Unix.file_descr * Session.Manager.id) list;
  mutable submitted : Session.Manager.id list;
  mutable draining : bool;
}

let log fmt = Printf.eprintf ("fecsynth serve: " ^^ fmt ^^ "\n%!")

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* A dead client is dropped silently — its sessions keep running and
   their results stay queryable by id from any other connection. *)
let drop_client st c =
  (try Unix.close c.fd with Unix.Unix_error _ -> ());
  st.clients <- List.filter (fun c' -> c'.fd != c.fd) st.clients;
  st.waiters <- List.filter (fun (fd, _) -> fd <> c.fd) st.waiters

let send st c line =
  try
    let b = Bytes.of_string line in
    let n = Unix.write c.fd b 0 (Bytes.length b) in
    if n <> Bytes.length b then drop_client st c
  with Unix.Unix_error _ -> drop_client st c

let settled = function
  | Session.Manager.Done _ | Session.Manager.Failed _
  | Session.Manager.Cancelled ->
      true
  | Session.Manager.Queued | Session.Manager.Running -> false

let status_response id status =
  Wire.ok [ ("id", J.Int id); ("session", Wire.status_to_json status) ]

let handle_command st c = function
  | Wire.Ping -> send st c (Wire.ok [ ("pong", J.Bool true) ])
  | Wire.Stats ->
      send st c
        (Wire.ok
           [
             ("queue_depth", J.Int (Session.Manager.queue_depth st.manager));
             ("sessions", J.Int (List.length st.submitted));
             ("draining", J.Bool st.draining);
           ])
  | Wire.Shutdown ->
      send st c (Wire.ok [ ("draining", J.Bool true) ]);
      st.draining <- true
  | Wire.Submit { request; await } -> (
      if st.draining then send st c (Wire.error "draining")
      else
        match Session.Manager.submit st.manager request with
        | Error `Backpressure -> send st c (Wire.error "queue full")
        | Ok id ->
            st.submitted <- id :: st.submitted;
            if await then st.waiters <- (c.fd, id) :: st.waiters
            else send st c (Wire.ok [ ("id", J.Int id) ]))
  | Wire.Status id -> (
      match Session.Manager.status st.manager id with
      | None -> send st c (Wire.error "unknown id")
      | Some status -> send st c (status_response id status))
  | Wire.Cancel id ->
      send st c
        (Wire.ok [ ("cancelled", J.Bool (Session.Manager.cancel st.manager id)) ])
  | Wire.Await id -> (
      match Session.Manager.status st.manager id with
      | None -> send st c (Wire.error "unknown id")
      | Some status ->
          if settled status then send st c (status_response id status)
          else st.waiters <- (c.fd, id) :: st.waiters)

let handle_line st c line =
  if String.trim line <> "" then
    match J.of_string line with
    | exception J.Parse_error msg -> send st c (Wire.error ("bad json: " ^ msg))
    | j -> (
        match Wire.command_of_json ~defaults:st.defaults j with
        | Error msg -> send st c (Wire.error msg)
        | Ok cmd -> handle_command st c cmd)

(* drain complete lines from the client's buffer *)
let rec process_buffer st c =
  let s = Buffer.contents c.buf in
  match String.index_opt s '\n' with
  | None -> ()
  | Some i ->
      let line = String.sub s 0 i in
      Buffer.clear c.buf;
      Buffer.add_substring c.buf s (i + 1) (String.length s - i - 1);
      handle_line st c line;
      if List.exists (fun c' -> c'.fd == c.fd) st.clients then
        process_buffer st c

let read_client st c =
  let bytes = Bytes.create 4096 in
  match Unix.read c.fd bytes 0 4096 with
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
      drop_client st c
  | 0 -> drop_client st c
  | n ->
      Buffer.add_subbytes c.buf bytes 0 n;
      process_buffer st c

let answer_waiters st =
  let ready, waiting =
    List.partition
      (fun (_, id) ->
        match Session.Manager.status st.manager id with
        | Some status -> settled status
        | None -> true)
      st.waiters
  in
  st.waiters <- waiting;
  List.iter
    (fun (fd, id) ->
      match List.find_opt (fun c -> c.fd == fd) st.clients with
      | None -> ()
      | Some c -> (
          match Session.Manager.status st.manager id with
          | None -> send st c (Wire.error "unknown id")
          | Some status -> send st c (status_response id status)))
    ready

let busy st =
  List.exists
    (fun id ->
      match Session.Manager.status st.manager id with
      | Some status -> not (settled status)
      | None -> false)
    st.submitted

let accept_clients st =
  match st.listen_fd with
  | None -> ()
  | Some lfd -> (
      match Unix.accept lfd with
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          ()
      | fd, _ ->
          Unix.set_nonblock fd;
          st.clients <- { fd; buf = Buffer.create 256 } :: st.clients)

let stop_accepting st =
  match st.listen_fd with
  | None -> ()
  | Some lfd ->
      (try Unix.close lfd with Unix.Unix_error _ -> ());
      st.listen_fd <- None

let loop st =
  let stop = Atomic.make false in
  let on_signal _ = Atomic.set stop true in
  let prev_term = Sys.signal Sys.sigterm (Sys.Signal_handle on_signal) in
  let prev_int = Sys.signal Sys.sigint (Sys.Signal_handle on_signal) in
  Fun.protect
    ~finally:(fun () ->
      Sys.set_signal Sys.sigterm prev_term;
      Sys.set_signal Sys.sigint prev_int)
    (fun () ->
      let rec go () =
        if Atomic.get stop then st.draining <- true;
        if st.draining then stop_accepting st;
        let fds =
          (match st.listen_fd with Some fd -> [ fd ] | None -> [])
          @ List.map (fun c -> c.fd) st.clients
        in
        let readable =
          match Unix.select fds [] [] tick with
          | r, _, _ -> r
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
        in
        List.iter
          (fun fd ->
            if Some fd = st.listen_fd then accept_clients st
            else
              match List.find_opt (fun c -> c.fd == fd) st.clients with
              | Some c -> read_client st c
              | None -> ())
          readable;
        answer_waiters st;
        if st.draining && (not (busy st)) && st.waiters = [] then ()
        else go ()
      in
      go ())

let run config =
  mkdir_p (Filename.dirname config.socket);
  if Sys.file_exists config.socket then Unix.unlink config.socket;
  let lfd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.bind lfd (Unix.ADDR_UNIX config.socket)
   with Unix.Unix_error (e, _, _) ->
     (try Unix.close lfd with Unix.Unix_error _ -> ());
     failwith
       (Printf.sprintf "cannot bind %s: %s" config.socket
          (Unix.error_message e)));
  Unix.listen lfd 16;
  Unix.set_nonblock lfd;
  let defaults =
    {
      (Session.default_request
         (Session.Synth
            { prop = ""; weights = None; portfolio = false; jobs = 4 }))
      with
      Session.cache = config.cache;
      cache_dir = config.cache_dir;
      no_ledger = config.no_ledger;
      ledger_dir = config.ledger_dir;
      subcommand = "serve";
    }
  in
  let manager =
    Session.Manager.create ~workers:config.workers ~max_queue:config.max_queue
      ()
  in
  let st =
    {
      config;
      manager;
      defaults;
      listen_fd = Some lfd;
      clients = [];
      waiters = [];
      submitted = [];
      draining = false;
    }
  in
  let serve () =
    log "listening on %s (%d workers, queue %d)" config.socket config.workers
      config.max_queue;
    Fun.protect
      ~finally:(fun () ->
        stop_accepting st;
        List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
          st.clients;
        st.clients <- [];
        Session.Manager.drain manager;
        if Sys.file_exists config.socket then Unix.unlink config.socket;
        log "drained")
      (fun () -> loop st)
  in
  match config.metrics with
  | None -> serve ()
  | Some path ->
      (* one exposition file for the daemon's lifetime; per-request
         observability is off for serve requests, so the global sink is
         never displaced *)
      let write text =
        let oc = open_out path in
        output_string oc text;
        close_out oc
      in
      Telemetry.with_sink (Telemetry.Metrics.flush_sink write) serve
