(* The serve event loop.  One thread owns all socket I/O: a select with a
   short tick multiplexes the listener and every client, and [await]
   waiters are answered from the tick by polling the manager — the loop
   never blocks on a session, and never blocks on a peer either: reads
   are non-blocking, responses go through bounded per-connection output
   buffers flushed when select reports the socket writable.  Synthesis
   itself runs on the manager's worker domains; the tick also drives
   {!Session.Manager.tend} for deadline enforcement. *)

module J = Telemetry.Json

type config = {
  socket : string;
  workers : int;
  max_queue : int;
  grace : float;
  idle_timeout : float;
  max_frame : int;
  max_out : int;
  cache : bool;
  cache_dir : string option;
  no_ledger : bool;
  ledger_dir : string option;
  metrics : string option;
}

let default_config ~socket =
  {
    socket;
    workers = 2;
    max_queue = 16;
    grace = 1.0;
    idle_timeout = 300.0;
    max_frame = 1 lsl 20;
    max_out = 4 lsl 20;
    cache = true;
    cache_dir = None;
    no_ledger = false;
    ledger_dir = None;
    metrics = None;
  }

let tick = 0.05

type client = {
  fd : Unix.file_descr;
  buf : Buffer.t;  (* unconsumed request bytes *)
  out : Buffer.t;  (* unflushed response bytes *)
  mutable close_after_flush : bool;
  mutable last_active : float;
}

type state = {
  config : config;
  manager : Session.Manager.t;
  defaults : Session.request;
  mutable listen_fd : Unix.file_descr option;
  mutable clients : client list;
  mutable waiters : (Unix.file_descr * Session.Manager.id) list;
  mutable submitted : Session.Manager.id list;
  mutable draining : bool;
}

let log fmt = Printf.eprintf ("fecsynth serve: " ^^ fmt ^^ "\n%!")

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* A dead client is dropped silently — its sessions keep running and
   their results stay queryable by id from any other connection. *)
let drop_client st c =
  (try Unix.close c.fd with Unix.Unix_error _ -> ());
  st.clients <- List.filter (fun c' -> c'.fd != c.fd) st.clients;
  st.waiters <- List.filter (fun (fd, _) -> fd <> c.fd) st.waiters

(* Queue the response; a peer that stops reading while we keep producing
   overflows its bound and is dropped — one slow consumer must not pin
   the daemon's memory. *)
let send st c line =
  if Buffer.length c.out + String.length line > st.config.max_out then
    drop_client st c
  else Buffer.add_string c.out line

(* Flush as much pending output as the socket accepts right now.  An
   injected wire.write crash models a peer falling over mid-response; a
   torn variant flushes half a frame then kills the connection — the
   retrying client sees an unparseable tail exactly as it would after a
   real mid-write crash. *)
let flush_client st c =
  let pending = Buffer.contents c.out in
  let len = String.length pending in
  if len > 0 then
    match Synth.Fault.probe_write "wire.write" with
    | exception Synth.Fault.Injected _ -> drop_client st c
    | `Torn ->
        (try ignore (Unix.write_substring c.fd pending 0 (len / 2))
         with Unix.Unix_error _ -> ());
        drop_client st c
    | `Full -> (
        match Unix.write_substring c.fd pending 0 len with
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
            ()
        | exception Unix.Unix_error _ -> drop_client st c
        | n ->
            Buffer.clear c.out;
            if n < len then
              Buffer.add_substring c.out pending n (len - n)
            else if c.close_after_flush then drop_client st c;
            c.last_active <- Unix.gettimeofday ())

(* Typed protocol error, then hang up once it is flushed: a peer that
   sends garbage, oversized or torn frames gets one diagnostic and no
   further service. *)
let reject st c ~kind msg =
  send st c (Wire.error ~kind msg);
  if List.exists (fun c' -> c'.fd == c.fd) st.clients then
    c.close_after_flush <- true

let settled = function
  | Session.Manager.Done _ | Session.Manager.Failed _
  | Session.Manager.Cancelled | Session.Manager.Timed_out ->
      true
  | Session.Manager.Queued | Session.Manager.Running -> false

let status_response id status =
  Wire.ok [ ("id", J.Int id); ("session", Wire.status_to_json status) ]

let handle_command st c = function
  | Wire.Ping -> send st c (Wire.ok [ ("pong", J.Bool true) ])
  | Wire.Stats ->
      send st c
        (Wire.ok
           [
             ("queue_depth", J.Int (Session.Manager.queue_depth st.manager));
             ("sessions", J.Int (List.length st.submitted));
             ("reaped", J.Int (Session.Manager.reaped st.manager));
             ("draining", J.Bool st.draining);
           ])
  | Wire.Shutdown ->
      send st c (Wire.ok [ ("draining", J.Bool true) ]);
      st.draining <- true
  | Wire.Submit { request; await; deadline_s } -> (
      if st.draining then send st c (Wire.error ~kind:"draining" "draining")
      else
        (* the admission-time queue depth rides into the run's ledger
           record, so the dashboard can plot load against outcomes *)
        let request =
          {
            request with
            Session.extra_metrics =
              [
                ( "serve.queue_depth",
                  float_of_int (Session.Manager.queue_depth st.manager) );
              ];
          }
        in
        match Session.Manager.submit ?deadline_s st.manager request with
        | Error `Backpressure ->
            send st c (Wire.error ~kind:"backpressure" "queue full")
        | Ok id ->
            st.submitted <- id :: st.submitted;
            if await then st.waiters <- (c.fd, id) :: st.waiters
            else send st c (Wire.ok [ ("id", J.Int id) ]))
  | Wire.Status id -> (
      match Session.Manager.status st.manager id with
      | None -> send st c (Wire.error ~kind:"unknown_id" "unknown id")
      | Some status -> send st c (status_response id status))
  | Wire.Cancel id ->
      send st c
        (Wire.ok [ ("cancelled", J.Bool (Session.Manager.cancel st.manager id)) ])
  | Wire.Await id -> (
      match Session.Manager.status st.manager id with
      | None -> send st c (Wire.error ~kind:"unknown_id" "unknown id")
      | Some status ->
          if settled status then send st c (status_response id status)
          else st.waiters <- (c.fd, id) :: st.waiters)

let handle_line st c line =
  if String.trim line <> "" then
    match J.of_string line with
    | exception J.Parse_error msg ->
        reject st c ~kind:"bad_frame" ("bad json: " ^ msg)
    | j -> (
        match Wire.command_of_json ~defaults:st.defaults j with
        | Error msg -> send st c (Wire.error msg)
        | Ok cmd -> handle_command st c cmd)

(* drain complete lines from the client's buffer *)
let rec process_buffer st c =
  let s = Buffer.contents c.buf in
  match String.index_opt s '\n' with
  | None -> ()
  | Some i ->
      let line = String.sub s 0 i in
      Buffer.clear c.buf;
      Buffer.add_substring c.buf s (i + 1) (String.length s - i - 1);
      if String.length line > st.config.max_frame then
        reject st c ~kind:"oversized"
          (Printf.sprintf "frame exceeds %d bytes" st.config.max_frame)
      else handle_line st c line;
      if
        List.exists (fun c' -> c'.fd == c.fd) st.clients
        && not c.close_after_flush
      then process_buffer st c

let read_client st c =
  let bytes = Bytes.create 4096 in
  match
    Synth.Fault.probe "wire.read";
    Unix.read c.fd bytes 0 4096
  with
  | exception Synth.Fault.Injected _ -> drop_client st c
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      (* spurious wakeup on a non-blocking fd; not a reason to hang up *)
      ()
  | exception Unix.Unix_error _ -> drop_client st c
  | 0 ->
      (* EOF: half-open with a partial frame buffered means the peer
         died mid-request — diagnose it on the still-open write side *)
      if Buffer.length c.buf > 0 then begin
        Buffer.clear c.buf;
        reject st c ~kind:"torn_frame" "eof inside a frame"
      end
      else drop_client st c
  | n ->
      c.last_active <- Unix.gettimeofday ();
      Buffer.add_subbytes c.buf bytes 0 n;
      if
        Buffer.length c.buf > st.config.max_frame
        && not (String.contains (Buffer.contents c.buf) '\n')
      then begin
        Buffer.clear c.buf;
        reject st c ~kind:"oversized"
          (Printf.sprintf "frame exceeds %d bytes" st.config.max_frame)
      end
      else process_buffer st c

let answer_waiters st =
  let ready, waiting =
    List.partition
      (fun (_, id) ->
        match Session.Manager.status st.manager id with
        | Some status -> settled status
        | None -> true)
      st.waiters
  in
  st.waiters <- waiting;
  List.iter
    (fun (fd, id) ->
      match List.find_opt (fun c -> c.fd == fd) st.clients with
      | None -> ()
      | Some c -> (
          match Session.Manager.status st.manager id with
          | None -> send st c (Wire.error ~kind:"unknown_id" "unknown id")
          | Some status -> send st c (status_response id status)))
    ready

(* Idle and half-open connections are reaped so abandoned peers cannot
   accumulate; a client with a registered waiter is legitimately silent
   (its session is still running) and exempt. *)
let reap_idle st =
  if st.config.idle_timeout > 0.0 then begin
    let now = Unix.gettimeofday () in
    let stale =
      List.filter
        (fun c ->
          now -. c.last_active > st.config.idle_timeout
          && not (List.exists (fun (fd, _) -> fd == c.fd) st.waiters))
        st.clients
    in
    List.iter (drop_client st) stale
  end

let busy st =
  List.exists
    (fun id ->
      match Session.Manager.status st.manager id with
      | Some status -> not (settled status)
      | None -> false)
    st.submitted

let accept_clients st =
  match st.listen_fd with
  | None -> ()
  | Some lfd -> (
      match Unix.accept lfd with
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          ()
      | fd, _ ->
          Unix.set_nonblock fd;
          st.clients <-
            {
              fd;
              buf = Buffer.create 256;
              out = Buffer.create 256;
              close_after_flush = false;
              last_active = Unix.gettimeofday ();
            }
            :: st.clients)

let stop_accepting st =
  match st.listen_fd with
  | None -> ()
  | Some lfd ->
      (try Unix.close lfd with Unix.Unix_error _ -> ());
      st.listen_fd <- None

let loop st =
  let stop = Atomic.make false in
  let on_signal _ = Atomic.set stop true in
  let prev_term = Sys.signal Sys.sigterm (Sys.Signal_handle on_signal) in
  let prev_int = Sys.signal Sys.sigint (Sys.Signal_handle on_signal) in
  Fun.protect
    ~finally:(fun () ->
      Sys.set_signal Sys.sigterm prev_term;
      Sys.set_signal Sys.sigint prev_int)
    (fun () ->
      let rec go () =
        if Atomic.get stop then st.draining <- true;
        if st.draining then stop_accepting st;
        let rfds =
          (match st.listen_fd with Some fd -> [ fd ] | None -> [])
          @ List.map (fun c -> c.fd) st.clients
        in
        let wfds =
          List.filter_map
            (fun c -> if Buffer.length c.out > 0 then Some c.fd else None)
            st.clients
        in
        let readable, writable =
          match Unix.select rfds wfds [] tick with
          | r, w, _ -> (r, w)
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [])
        in
        List.iter
          (fun fd ->
            if Some fd = st.listen_fd then accept_clients st
            else
              match List.find_opt (fun c -> c.fd == fd) st.clients with
              | Some c -> read_client st c
              | None -> ())
          readable;
        Session.Manager.tend st.manager;
        answer_waiters st;
        List.iter
          (fun fd ->
            match List.find_opt (fun c -> c.fd == fd) st.clients with
            | Some c -> flush_client st c
            | None -> ())
          writable;
        (* answers produced this tick flush opportunistically, without
           waiting for the next select round *)
        List.iter
          (fun c -> if Buffer.length c.out > 0 then flush_client st c)
          st.clients;
        reap_idle st;
        if
          st.draining
          && (not (busy st))
          && st.waiters = []
          && List.for_all (fun c -> Buffer.length c.out = 0) st.clients
        then ()
        else go ()
      in
      go ())

(* ---------- crash-safe startup ---------- *)

let pidfile config = config.socket ^ ".pid"

(* Probe an existing socket with a short-deadline ping.  Answering means
   a live daemon owns it — refuse to start.  Connection refused or a
   silent peer means the socket is a leftover from a killed process and
   is safe to take over. *)
let socket_alive path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      match Unix.connect fd (Unix.ADDR_UNIX path) with
      | exception Unix.Unix_error _ -> false
      | () -> (
          match
            ignore (Unix.write_substring fd "{\"op\":\"ping\"}\n" 0 14);
            Unix.select [ fd ] [] [] 1.0
          with
          | exception Unix.Unix_error _ -> false
          | [], _, _ -> false
          | _ -> (
              let b = Bytes.create 256 in
              match Unix.read fd b 0 256 with
              | exception Unix.Unix_error _ -> false
              | 0 -> false
              | _ -> true)))

let take_over_socket config =
  if Sys.file_exists config.socket then
    if socket_alive config.socket then
      failwith
        (Printf.sprintf "%s: a serve daemon is already listening"
           config.socket)
    else begin
      log "removing stale socket %s" config.socket;
      (try Unix.unlink config.socket with Unix.Unix_error _ -> ())
    end;
  if Sys.file_exists (pidfile config) then
    try Unix.unlink (pidfile config) with Unix.Unix_error _ -> ()

(* Recover what a killed predecessor left behind: orphaned cache temp
   files, a torn ledger tail, and in-flight journal entries that become
   first-class "crash" records.  Quiet when there is nothing to do. *)
let scavenge_state config =
  if config.cache then begin
    let dir =
      match config.cache_dir with Some d -> d | None -> Cache.default_dir ()
    in
    let swept = Cache.scavenge_once ~dir in
    if swept > 0 then log "scavenged %d orphaned cache file(s)" swept
  end;
  if not config.no_ledger then begin
    let dir =
      match config.ledger_dir with
      | Some d -> d
      | None -> Telemetry.Ledger.default_dir ()
    in
    match Telemetry.Ledger.scavenge ~dir with
    | recovered, repaired ->
        if repaired then log "repaired torn ledger tail";
        if recovered > 0 then
          log "recorded %d in-flight run(s) from a crashed daemon" recovered
    | exception (Sys_error _ | Unix.Unix_error _) -> ()
  end

let write_pidfile config =
  try
    let oc = open_out (pidfile config) in
    output_string oc (string_of_int (Unix.getpid ()));
    close_out oc
  with Sys_error _ -> ()

let run config =
  Synth.Fault.init_from_env ();
  mkdir_p (Filename.dirname config.socket);
  take_over_socket config;
  scavenge_state config;
  let lfd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.bind lfd (Unix.ADDR_UNIX config.socket)
   with Unix.Unix_error (e, _, _) ->
     (try Unix.close lfd with Unix.Unix_error _ -> ());
     failwith
       (Printf.sprintf "cannot bind %s: %s" config.socket
          (Unix.error_message e)));
  Unix.listen lfd 16;
  Unix.set_nonblock lfd;
  write_pidfile config;
  let defaults =
    {
      (Session.default_request
         (Session.Synth
            { prop = ""; weights = None; portfolio = false; jobs = 4 }))
      with
      Session.cache = config.cache;
      cache_dir = config.cache_dir;
      no_ledger = config.no_ledger;
      ledger_dir = config.ledger_dir;
      subcommand = "serve";
    }
  in
  let manager =
    Session.Manager.create ~workers:config.workers ~max_queue:config.max_queue
      ~grace:config.grace ()
  in
  let st =
    {
      config;
      manager;
      defaults;
      listen_fd = Some lfd;
      clients = [];
      waiters = [];
      submitted = [];
      draining = false;
    }
  in
  let serve () =
    log "listening on %s (%d workers, queue %d)" config.socket config.workers
      config.max_queue;
    Fun.protect
      ~finally:(fun () ->
        stop_accepting st;
        List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
          st.clients;
        st.clients <- [];
        Session.Manager.drain manager;
        if Sys.file_exists config.socket then Unix.unlink config.socket;
        (try Unix.unlink (pidfile config) with Unix.Unix_error _ | Sys_error _ -> ());
        log "drained")
      (fun () -> loop st)
  in
  match config.metrics with
  | None -> serve ()
  | Some path ->
      (* one exposition file for the daemon's lifetime; per-request
         observability is off for serve requests, so the global sink is
         never displaced *)
      let write text =
        let oc = open_out path in
        output_string oc text;
        close_out oc
      in
      Telemetry.with_sink (Telemetry.Metrics.flush_sink write) serve
