(* The serve event loop.  One thread owns all socket I/O: a select with a
   short tick multiplexes the listener and every client, and [await]
   waiters are answered from the tick by polling the manager — the loop
   never blocks on a session, and never blocks on a peer either: reads
   are non-blocking, responses go through bounded per-connection output
   buffers flushed when select reports the socket writable.  Synthesis
   itself runs on the manager's worker domains; the tick also drives
   {!Session.Manager.tend} for deadline enforcement. *)

module J = Telemetry.Json

type config = {
  socket : string;
  workers : int;
  max_queue : int;
  grace : float;
  idle_timeout : float;
  max_frame : int;
  max_out : int;
  cache : bool;
  cache_dir : string option;
  no_ledger : bool;
  ledger_dir : string option;
  metrics : string option;
  metrics_port : int option;
  trace : string option;
  flight_dir : string option;
  flight_capacity : int;
  runtime_lens : bool;
      (* process-wide Runtime_events lens: GC/domain telemetry on
         /metrics, runtime.* points in the daemon trace *)
}

let default_config ~socket =
  {
    socket;
    workers = 2;
    max_queue = 16;
    grace = 1.0;
    idle_timeout = 300.0;
    max_frame = 1 lsl 20;
    max_out = 4 lsl 20;
    cache = true;
    cache_dir = None;
    no_ledger = false;
    ledger_dir = None;
    metrics = None;
    metrics_port = None;
    trace = None;
    flight_dir = None;
    flight_capacity = 512;
    runtime_lens = true;
  }

let tick = 0.05

type proto = Jsonl | Http

type client = {
  fd : Unix.file_descr;
  proto : proto;  (* NDJSON control socket, or the HTTP scrape port *)
  buf : Buffer.t;  (* unconsumed request bytes *)
  out : Buffer.t;  (* unflushed response bytes *)
  mutable close_after_flush : bool;
  mutable last_active : float;
}

type state = {
  config : config;
  manager : Session.Manager.t;
  defaults : Session.request;
  mutable listen_fd : Unix.file_descr option;
  mutable http_fd : Unix.file_descr option;
      (* optional TCP scrape listener; stays open during drain so
         /healthz can report the drain in progress *)
  mutable clients : client list;
  mutable waiters : (Unix.file_descr * Session.Manager.id) list;
  mutable submitted : Session.Manager.id list;
  rids : (Session.Manager.id, string) Hashtbl.t;
      (* session id -> wire request id, for status/await responses *)
  mutable rid_seq : int;
  mutable draining : bool;
}

let log fmt = Printf.eprintf ("fecsynth serve: " ^^ fmt ^^ "\n%!")

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* A dead client is dropped silently — its sessions keep running and
   their results stay queryable by id from any other connection. *)
let drop_client st c =
  (try Unix.close c.fd with Unix.Unix_error _ -> ());
  st.clients <- List.filter (fun c' -> c'.fd != c.fd) st.clients;
  st.waiters <- List.filter (fun (fd, _) -> fd <> c.fd) st.waiters

(* Queue the response; a peer that stops reading while we keep producing
   overflows its bound and is dropped — one slow consumer must not pin
   the daemon's memory. *)
let send st c line =
  if Buffer.length c.out + String.length line > st.config.max_out then
    drop_client st c
  else Buffer.add_string c.out line

(* Flush as much pending output as the socket accepts right now.  An
   injected wire.write crash models a peer falling over mid-response; a
   torn variant flushes half a frame then kills the connection — the
   retrying client sees an unparseable tail exactly as it would after a
   real mid-write crash. *)
let flush_client st c =
  let pending = Buffer.contents c.out in
  let len = String.length pending in
  if len > 0 then
    match Synth.Fault.probe_write "wire.write" with
    | exception Synth.Fault.Injected _ -> drop_client st c
    | `Torn ->
        (try ignore (Unix.write_substring c.fd pending 0 (len / 2))
         with Unix.Unix_error _ -> ());
        drop_client st c
    | `Full -> (
        match Unix.write_substring c.fd pending 0 len with
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
            ()
        | exception Unix.Unix_error _ -> drop_client st c
        | n ->
            Buffer.clear c.out;
            if n < len then
              Buffer.add_substring c.out pending n (len - n)
            else if c.close_after_flush then drop_client st c;
            c.last_active <- Unix.gettimeofday ())

(* Typed protocol error, then hang up once it is flushed: a peer that
   sends garbage, oversized or torn frames gets one diagnostic and no
   further service. *)
let reject st c ~kind msg =
  send st c (Wire.error ~kind msg);
  if List.exists (fun c' -> c'.fd == c.fd) st.clients then
    c.close_after_flush <- true

let settled = function
  | Session.Manager.Done _ | Session.Manager.Failed _
  | Session.Manager.Cancelled | Session.Manager.Timed_out ->
      true
  | Session.Manager.Queued | Session.Manager.Running -> false

let status_response st id status =
  Wire.ok
    (("id", J.Int id)
    :: (match Hashtbl.find_opt st.rids id with
       | Some rid -> [ ("request", J.Str rid) ]
       | None -> [])
    @ [ ("session", Wire.status_to_json status) ])

let worker_json (w : Session.Manager.worker_info) =
  J.Obj
    ([
       ("worker", J.Int w.Session.Manager.wi_worker);
       ( "state",
         J.Str
           (match w.Session.Manager.wi_state with
           | `Idle -> "idle"
           | `Running -> "running"
           | `Condemned -> "condemned") );
       ("since_s", J.Float w.Session.Manager.wi_since_s);
     ]
    @ (match w.Session.Manager.wi_request with
      | Some r -> [ ("request", J.Str r) ]
      | None -> [])
    @
    match w.Session.Manager.wi_session with
    | Some s -> [ ("session", J.Int s) ]
    | None -> [])

let m_admitted = Telemetry.Metrics.counter "serve.admitted"
let m_scrapes = Telemetry.Metrics.counter "serve.metrics_scrapes"
let g_draining = Telemetry.Metrics.gauge "serve.draining"

(* Refresh the per-worker labeled gauge series just before a scrape, so
   the exposition carries live worker detail without per-tick updates.
   Build identity rides along as the conventional constant-1 info gauge
   ([fec_build_info{version=...,git=...,ocaml=...} 1]), and a forced
   lens poll makes the gc_* series current as of this scrape. *)
let update_worker_metrics st =
  Telemetry.Metrics.incr m_scrapes 1;
  Telemetry.Metrics.set g_draining (if st.draining then 1.0 else 0.0);
  Telemetry.Runtime.poll ~force:false ();
  (let b = Telemetry.Buildinfo.current () in
   Telemetry.Metrics.set
     (Telemetry.Metrics.gauge
        ~help:"Build identity of the serving binary (constant 1)"
        ~labels:
          [
            ("version", b.Telemetry.Buildinfo.code_version);
            ( "git",
              match b.Telemetry.Buildinfo.git with Some g -> g | None -> "-" );
            ("ocaml", b.Telemetry.Buildinfo.ocaml);
          ]
        "fec.build_info")
     1.0);
  List.iter
    (fun (w : Session.Manager.worker_info) ->
      let labels =
        [ ("worker", string_of_int w.Session.Manager.wi_worker) ]
      in
      Telemetry.Metrics.set
        (Telemetry.Metrics.gauge ~labels "serve.worker_busy")
        (match w.Session.Manager.wi_state with
        | `Running -> 1.0
        | `Idle | `Condemned -> 0.0);
      Telemetry.Metrics.set
        (Telemetry.Metrics.gauge ~labels "serve.worker_state_age_s")
        w.Session.Manager.wi_since_s)
    (Session.Manager.workers st.manager)

let stats_fields st =
  [
    ("queue_depth", J.Int (Session.Manager.queue_depth st.manager));
    ("sessions", J.Int (List.length st.submitted));
    ("reaped", J.Int (Session.Manager.reaped st.manager));
    ("draining", J.Bool st.draining);
    ( "workers",
      J.List (List.map worker_json (Session.Manager.workers st.manager)) );
  ]

let handle_command st c = function
  | Wire.Ping -> send st c (Wire.ok [ ("pong", J.Bool true) ])
  | Wire.Stats -> send st c (Wire.ok (stats_fields st))
  | Wire.Metrics ->
      update_worker_metrics st;
      send st c
        (Wire.ok
           (stats_fields st
           @ [ ("exposition", J.Str (Telemetry.Metrics.expose ())) ]))
  | Wire.Shutdown ->
      send st c (Wire.ok [ ("draining", J.Bool true) ]);
      st.draining <- true
  | Wire.Submit { request; await; deadline_s } -> (
      if st.draining then send st c (Wire.error ~kind:"draining" "draining")
      else
        let depth = Session.Manager.queue_depth st.manager in
        (* request id minted at admission: every telemetry event, ledger
           record and wire response of this run carries it *)
        let rid = Printf.sprintf "r%d-%d" (Unix.getpid ()) st.rid_seq in
        st.rid_seq <- st.rid_seq + 1;
        (* the admission-time queue depth rides into the run's ledger
           record, so the dashboard can plot load against outcomes *)
        let request =
          {
            request with
            Session.request_id = Some rid;
            extra_metrics = [ ("serve.queue_depth", float_of_int depth) ];
          }
        in
        match Session.Manager.submit ?deadline_s st.manager request with
        | Error `Backpressure ->
            send st c (Wire.error ~kind:"backpressure" "queue full")
        | Ok id ->
            st.submitted <- id :: st.submitted;
            Hashtbl.replace st.rids id rid;
            Telemetry.Metrics.incr m_admitted 1;
            (* the admission point anchors the request's queue-wait
               interval in the daemon trace *)
            if Telemetry.enabled () then
              Telemetry.point "serve.admit"
                ~fields:
                  [
                    ("request", Telemetry.str rid);
                    ("session", Telemetry.str (string_of_int id));
                    ("queue_depth", Telemetry.str (string_of_int depth));
                  ];
            if await then st.waiters <- (c.fd, id) :: st.waiters
            else
              send st c
                (Wire.ok [ ("id", J.Int id); ("request", J.Str rid) ]))
  | Wire.Status id -> (
      match Session.Manager.status st.manager id with
      | None -> send st c (Wire.error ~kind:"unknown_id" "unknown id")
      | Some status -> send st c (status_response st id status))
  | Wire.Cancel id ->
      send st c
        (Wire.ok [ ("cancelled", J.Bool (Session.Manager.cancel st.manager id)) ])
  | Wire.Await id -> (
      match Session.Manager.status st.manager id with
      | None -> send st c (Wire.error ~kind:"unknown_id" "unknown id")
      | Some status ->
          if settled status then send st c (status_response st id status)
          else st.waiters <- (c.fd, id) :: st.waiters)

let handle_line st c line =
  if String.trim line <> "" then
    match J.of_string line with
    | exception J.Parse_error msg ->
        reject st c ~kind:"bad_frame" ("bad json: " ^ msg)
    | j -> (
        match Wire.command_of_json ~defaults:st.defaults j with
        | Error msg -> send st c (Wire.error msg)
        | Ok cmd -> handle_command st c cmd)

(* ---------- the HTTP scrape endpoint ---------- *)

let http_response ~status ~content_type body =
  Printf.sprintf
    "HTTP/1.1 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: \
     close\r\n\r\n%s"
    status content_type (String.length body) body

let healthz_json st =
  let b = Telemetry.Buildinfo.current () in
  J.Obj
    [
      ("status", J.Str (if st.draining then "draining" else "ok"));
      ("queue_depth", J.Int (Session.Manager.queue_depth st.manager));
      ("reaped", J.Int (Session.Manager.reaped st.manager));
      ( "build",
        J.Obj
          [
            ("version", J.Str b.Telemetry.Buildinfo.code_version);
            ( "git",
              match b.Telemetry.Buildinfo.git with
              | Some g -> J.Str g
              | None -> J.Null );
            ("ocaml", J.Str b.Telemetry.Buildinfo.ocaml);
            ("runtime_lens", J.Bool (Telemetry.Runtime.active ()));
          ] );
      ( "workers",
        J.List (List.map worker_json (Session.Manager.workers st.manager)) );
    ]

(* One request per connection: answer the request line, flush, hang up.
   Headers after the first line are irrelevant to a scrape and ignored. *)
let handle_http st c line =
  let resp =
    match String.split_on_char ' ' (String.trim line) with
    | "GET" :: path :: _ -> (
        match path with
        | "/metrics" ->
            update_worker_metrics st;
            http_response ~status:"200 OK"
              ~content_type:"text/plain; version=0.0.4"
              (Telemetry.Metrics.expose ())
        | "/healthz" ->
            http_response ~status:"200 OK" ~content_type:"application/json"
              (J.to_string (healthz_json st) ^ "\n")
        | _ ->
            http_response ~status:"404 Not Found" ~content_type:"text/plain"
              "not found\n")
    | _ ->
        http_response ~status:"400 Bad Request" ~content_type:"text/plain"
          "bad request\n"
  in
  send st c resp;
  if List.exists (fun c' -> c'.fd == c.fd) st.clients then
    c.close_after_flush <- true

(* drain complete lines from the client's buffer *)
let rec process_buffer st c =
  let s = Buffer.contents c.buf in
  match String.index_opt s '\n' with
  | None -> ()
  | Some i ->
      let line = String.sub s 0 i in
      Buffer.clear c.buf;
      Buffer.add_substring c.buf s (i + 1) (String.length s - i - 1);
      (match c.proto with
      | Http ->
          (* the request line is all a scrape needs; the response marks
             the connection close-after-flush, ending processing here *)
          if not c.close_after_flush then handle_http st c line
      | Jsonl ->
          if String.length line > st.config.max_frame then
            reject st c ~kind:"oversized"
              (Printf.sprintf "frame exceeds %d bytes" st.config.max_frame)
          else handle_line st c line);
      if
        List.exists (fun c' -> c'.fd == c.fd) st.clients
        && not c.close_after_flush
      then process_buffer st c

let read_client st c =
  let bytes = Bytes.create 4096 in
  match
    Synth.Fault.probe "wire.read";
    Unix.read c.fd bytes 0 4096
  with
  | exception Synth.Fault.Injected _ -> drop_client st c
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      (* spurious wakeup on a non-blocking fd; not a reason to hang up *)
      ()
  | exception Unix.Unix_error _ -> drop_client st c
  | 0 ->
      (* EOF: half-open with a partial frame buffered means the peer
         died mid-request — diagnose it on the still-open write side *)
      if Buffer.length c.buf > 0 then begin
        Buffer.clear c.buf;
        reject st c ~kind:"torn_frame" "eof inside a frame"
      end
      else drop_client st c
  | n ->
      c.last_active <- Unix.gettimeofday ();
      Buffer.add_subbytes c.buf bytes 0 n;
      if
        Buffer.length c.buf > st.config.max_frame
        && not (String.contains (Buffer.contents c.buf) '\n')
      then begin
        Buffer.clear c.buf;
        reject st c ~kind:"oversized"
          (Printf.sprintf "frame exceeds %d bytes" st.config.max_frame)
      end
      else process_buffer st c

let answer_waiters st =
  let ready, waiting =
    List.partition
      (fun (_, id) ->
        match Session.Manager.status st.manager id with
        | Some status -> settled status
        | None -> true)
      st.waiters
  in
  st.waiters <- waiting;
  List.iter
    (fun (fd, id) ->
      match List.find_opt (fun c -> c.fd == fd) st.clients with
      | None -> ()
      | Some c -> (
          match Session.Manager.status st.manager id with
          | None -> send st c (Wire.error ~kind:"unknown_id" "unknown id")
          | Some status -> send st c (status_response st id status)))
    ready

(* Idle and half-open connections are reaped so abandoned peers cannot
   accumulate; a client with a registered waiter is legitimately silent
   (its session is still running) and exempt. *)
let reap_idle st =
  if st.config.idle_timeout > 0.0 then begin
    let now = Unix.gettimeofday () in
    let stale =
      List.filter
        (fun c ->
          now -. c.last_active > st.config.idle_timeout
          && not (List.exists (fun (fd, _) -> fd == c.fd) st.waiters))
        st.clients
    in
    List.iter (drop_client st) stale
  end

let busy st =
  List.exists
    (fun id ->
      match Session.Manager.status st.manager id with
      | Some status -> not (settled status)
      | None -> false)
    st.submitted

let accept_clients st ~proto lfd =
  match Unix.accept lfd with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | fd, _ ->
      Unix.set_nonblock fd;
      st.clients <-
        {
          fd;
          proto;
          buf = Buffer.create 256;
          out = Buffer.create 256;
          close_after_flush = false;
          last_active = Unix.gettimeofday ();
        }
        :: st.clients

(* Stops control-socket admission only; the HTTP scrape listener keeps
   answering during the drain so operators can watch it finish. *)
let stop_accepting st =
  match st.listen_fd with
  | None -> ()
  | Some lfd ->
      (try Unix.close lfd with Unix.Unix_error _ -> ());
      st.listen_fd <- None

let stop_http st =
  match st.http_fd with
  | None -> ()
  | Some hfd ->
      (try Unix.close hfd with Unix.Unix_error _ -> ());
      st.http_fd <- None

let loop st =
  let stop = Atomic.make false in
  let on_signal _ = Atomic.set stop true in
  let prev_term = Sys.signal Sys.sigterm (Sys.Signal_handle on_signal) in
  let prev_int = Sys.signal Sys.sigint (Sys.Signal_handle on_signal) in
  Fun.protect
    ~finally:(fun () ->
      Sys.set_signal Sys.sigterm prev_term;
      Sys.set_signal Sys.sigint prev_int)
    (fun () ->
      let rec go () =
        if Atomic.get stop then st.draining <- true;
        if st.draining then stop_accepting st;
        let rfds =
          (match st.listen_fd with Some fd -> [ fd ] | None -> [])
          @ (match st.http_fd with Some fd -> [ fd ] | None -> [])
          @ List.map (fun c -> c.fd) st.clients
        in
        let wfds =
          List.filter_map
            (fun c -> if Buffer.length c.out > 0 then Some c.fd else None)
            st.clients
        in
        let readable, writable =
          match Unix.select rfds wfds [] tick with
          | r, w, _ -> (r, w)
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [])
        in
        List.iter
          (fun fd ->
            if Some fd = st.listen_fd then accept_clients st ~proto:Jsonl fd
            else if Some fd = st.http_fd then accept_clients st ~proto:Http fd
            else
              match List.find_opt (fun c -> c.fd == fd) st.clients with
              | Some c -> read_client st c
              | None -> ())
          readable;
        Session.Manager.tend st.manager;
        (* throttled runtime-lens poll: keeps GC/domain telemetry flowing
           even when no request traffic is driving the tee *)
        Telemetry.Runtime.tick ();
        answer_waiters st;
        List.iter
          (fun fd ->
            match List.find_opt (fun c -> c.fd == fd) st.clients with
            | Some c -> flush_client st c
            | None -> ())
          writable;
        (* answers produced this tick flush opportunistically, without
           waiting for the next select round *)
        List.iter
          (fun c -> if Buffer.length c.out > 0 then flush_client st c)
          st.clients;
        reap_idle st;
        if
          st.draining
          && (not (busy st))
          && st.waiters = []
          && List.for_all (fun c -> Buffer.length c.out = 0) st.clients
        then ()
        else go ()
      in
      go ())

(* ---------- crash-safe startup ---------- *)

let pidfile config = config.socket ^ ".pid"

(* Probe an existing socket with a short-deadline ping.  Answering means
   a live daemon owns it — refuse to start.  Connection refused or a
   silent peer means the socket is a leftover from a killed process and
   is safe to take over. *)
let socket_alive path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      match Unix.connect fd (Unix.ADDR_UNIX path) with
      | exception Unix.Unix_error _ -> false
      | () -> (
          match
            ignore (Unix.write_substring fd "{\"op\":\"ping\"}\n" 0 14);
            Unix.select [ fd ] [] [] 1.0
          with
          | exception Unix.Unix_error _ -> false
          | [], _, _ -> false
          | _ -> (
              let b = Bytes.create 256 in
              match Unix.read fd b 0 256 with
              | exception Unix.Unix_error _ -> false
              | 0 -> false
              | _ -> true)))

let take_over_socket config =
  if Sys.file_exists config.socket then
    if socket_alive config.socket then
      failwith
        (Printf.sprintf "%s: a serve daemon is already listening"
           config.socket)
    else begin
      log "removing stale socket %s" config.socket;
      (try Unix.unlink config.socket with Unix.Unix_error _ -> ())
    end;
  if Sys.file_exists (pidfile config) then
    try Unix.unlink (pidfile config) with Unix.Unix_error _ -> ()

(* Recover what a killed predecessor left behind: orphaned cache temp
   files, a torn ledger tail, and in-flight journal entries that become
   first-class "crash" records.  Quiet when there is nothing to do. *)
let scavenge_state config =
  if config.cache then begin
    let dir =
      match config.cache_dir with Some d -> d | None -> Cache.default_dir ()
    in
    let swept = Cache.scavenge_once ~dir in
    if swept > 0 then log "scavenged %d orphaned cache file(s)" swept
  end;
  if not config.no_ledger then begin
    let dir =
      match config.ledger_dir with
      | Some d -> d
      | None -> Telemetry.Ledger.default_dir ()
    in
    match Telemetry.Ledger.scavenge ~dir with
    | recovered, repaired ->
        if repaired then log "repaired torn ledger tail";
        if recovered > 0 then
          log "recorded %d in-flight run(s) from a crashed daemon" recovered
    | exception (Sys_error _ | Unix.Unix_error _) -> ()
  end

let write_pidfile config =
  try
    let oc = open_out (pidfile config) in
    output_string oc (string_of_int (Unix.getpid ()));
    close_out oc
  with Sys_error _ -> ()

let run config =
  Synth.Fault.init_from_env ();
  mkdir_p (Filename.dirname config.socket);
  take_over_socket config;
  scavenge_state config;
  let lfd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.bind lfd (Unix.ADDR_UNIX config.socket)
   with Unix.Unix_error (e, _, _) ->
     (try Unix.close lfd with Unix.Unix_error _ -> ());
     failwith
       (Printf.sprintf "cannot bind %s: %s" config.socket
          (Unix.error_message e)));
  Unix.listen lfd 16;
  Unix.set_nonblock lfd;
  write_pidfile config;
  let defaults =
    {
      (Session.default_request
         (Session.Synth
            { prop = ""; weights = None; portfolio = false; jobs = 4 }))
      with
      Session.cache = config.cache;
      cache_dir = config.cache_dir;
      no_ledger = config.no_ledger;
      ledger_dir = config.ledger_dir;
      subcommand = "serve";
    }
  in
  (* the flight recorder is always armed in serve mode: rings are cheap,
     and a reaped worker's postmortem is only useful if the events were
     being kept before the stall *)
  let flight_dir =
    match config.flight_dir with
    | Some d -> d
    | None ->
        let d = Filename.dirname config.socket in
        if d = "" then "." else d
  in
  Telemetry.Flight.enable ~capacity:config.flight_capacity ~dir:flight_dir ();
  (* the runtime lens is process-wide for the daemon's lifetime: gc_* and
     domain_util series on /metrics, runtime.* points in the trace and
     the flight ring, request-correlated via worker ring beacons *)
  if config.runtime_lens then Telemetry.Runtime.start ();
  let manager =
    Session.Manager.create ~workers:config.workers ~max_queue:config.max_queue
      ~grace:config.grace
      ~on_reap:(fun ~worker ~request_id ->
        let fields =
          ("worker", Telemetry.str (string_of_int worker))
          ::
          (match request_id with
          | Some r -> [ ("request", Telemetry.str r) ]
          | None -> [])
        in
        (* drain the runtime ring first so the postmortem tail carries
           the GC story leading up to the stall, not just app events *)
        Telemetry.Runtime.poll ~force:true ();
        match Telemetry.Flight.dump ~fields ~reason:"reap" () with
        | Some path -> log "worker %d reaped; postmortem %s" worker path
        | None -> ())
      ()
  in
  let http_lfd =
    match config.metrics_port with
    | None -> None
    | Some port ->
        let hfd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt hfd Unix.SO_REUSEADDR true;
        (try
           Unix.bind hfd
             (Unix.ADDR_INET (Unix.inet_addr_loopback, port))
         with Unix.Unix_error (e, _, _) ->
           (try Unix.close hfd with Unix.Unix_error _ -> ());
           (try Unix.unlink config.socket with Unix.Unix_error _ -> ());
           failwith
             (Printf.sprintf "cannot bind 127.0.0.1:%d: %s" port
                (Unix.error_message e)));
        Unix.listen hfd 16;
        Unix.set_nonblock hfd;
        Some hfd
  in
  let st =
    {
      config;
      manager;
      defaults;
      listen_fd = Some lfd;
      http_fd = http_lfd;
      clients = [];
      waiters = [];
      submitted = [];
      rids = Hashtbl.create 16;
      rid_seq = 0;
      draining = false;
    }
  in
  let serve () =
    log "listening on %s (%d workers, queue %d)" config.socket config.workers
      config.max_queue;
    (match config.metrics_port with
    | Some port -> log "metrics on http://127.0.0.1:%d/metrics" port
    | None -> ());
    Fun.protect
      ~finally:(fun () ->
        stop_accepting st;
        stop_http st;
        List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
          st.clients;
        st.clients <- [];
        Session.Manager.drain manager;
        (* final lens drain runs while the daemon tee is still installed,
           then the lens is released with the listener *)
        Telemetry.Runtime.poll ~force:true ();
        Telemetry.Runtime.stop ();
        Telemetry.Flight.disable ();
        if Sys.file_exists config.socket then Unix.unlink config.socket;
        (try Unix.unlink (pidfile config) with Unix.Unix_error _ | Sys_error _ -> ());
        log "drained")
      (fun () -> loop st)
  in
  (* The daemon's telemetry sink is a tee assembled once for its
     lifetime: the flight recorder ring, an optional NDJSON trace of
     everything (requests stamped with their ids), and the optional
     periodic metrics exposition file.  Per-request observability is off
     for serve requests, so the global sink is never displaced. *)
  let trace_oc =
    match config.trace with
    | None -> None
    | Some path -> Some (open_out path)
  in
  let sinks =
    [ Telemetry.Flight.sink () ]
    @ (match trace_oc with
      | Some oc -> [ Telemetry.Sink.ndjson oc ]
      | None -> [])
    @
    match config.metrics with
    | None -> []
    | Some path ->
        let write text =
          let oc = open_out path in
          output_string oc text;
          close_out oc
        in
        [ Telemetry.Metrics.flush_sink write ]
  in
  Fun.protect
    ~finally:(fun () ->
      match trace_oc with Some oc -> close_out oc | None -> ())
    (fun () -> Telemetry.with_sink (Telemetry.Sink.tee sinks) serve)
