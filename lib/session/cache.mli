(** Persistent content-addressed result cache.

    Proven synthesis results are stored one file per canonical key digest
    ([<dir>/<md5>.entry]), each a small versioned text envelope guarded by
    a CRC-32 trailer and written with the tmp+rename discipline — a reader
    never sees a torn entry, and a bit-flipped one fails the CRC and is
    treated as a miss (then recomputed and overwritten), never trusted.

    Every entry embeds the full canonical key string; {!lookup} compares
    it against the requested key, so a digest collision degrades to a
    miss rather than serving a wrong generator.  On top of the CRC, a
    hit's generator is cheaply re-verified (exact minimum-distance
    enumeration for small data lengths) before it is returned: the cache
    can hand out {e only} results that still prove their own certificate.

    Near-miss warm starts: alongside result entries the cache keeps
    counterexample pools ([<md5>.pool]) in the {!Synth.Checkpoint} format.
    A miss collects every pool whose problem dimensions (data length,
    distance target) match the request and replays it into the fresh
    search — refutations are implied by the specification, so importing
    them from any prior run of a compatible spec is sound. *)

(** Current on-disk entry format version. *)
val version : int

type entry = {
  key : string;  (** canonical spec string, the collision guard *)
  created : string;  (** UTC timestamp of the original run *)
  code : Hamming.Code.t;  (** the proven generator *)
  check_len : int;
  md : int;  (** the distance bound the original run proved *)
  verified_md : int;  (** exact minimum distance at store time *)
  iterations : int;  (** of the original (cold) run *)
  elapsed : float;  (** seconds of the original (cold) run *)
}

(** [$FEC_CACHE_DIR] when set and non-empty, else [.fecsynth/cache]. *)
val default_dir : unit -> string

(** [store ~dir ~digest entry] atomically writes the entry, creating
    [dir] as needed.  I/O failures are reported as a warning on stderr,
    never raised — caching must not break the run it records. *)
val store : dir:string -> digest:string -> entry -> unit

(** [lookup ~dir ~digest ~key] returns the entry iff the file exists,
    passes its CRC, stores exactly [key], and its generator re-verifies.
    Any failure is a miss.  Bumps the [session.cache_hit] /
    [session.cache_miss] metrics.  Probes the ["cache.read"] fault site. *)
val lookup : dir:string -> digest:string -> key:string -> entry option

(** {1 Crash recovery}

    A crash (or an injected ["cache.write"] torn write) between temp-file
    write and rename leaves an orphaned [*.tmp.<pid>] file; the
    destination entry is never affected.  [scavenge] sweeps orphans whose
    writing pid is dead — live pids mark writes in flight and are left
    alone — and bumps the [session.cache_scavenged] metric.  Returns the
    number removed; a missing directory sweeps nothing. *)

val scavenge : dir:string -> int

(** [scavenge_once ~dir] runs {!scavenge} the first time each directory
    is seen in this process and is a no-op afterwards — the open-time
    hook used by the session layer and the serve daemon. *)
val scavenge_once : dir:string -> int

type verdict = {
  ok_entries : int;  (** entries that parse and pass their CRC *)
  corrupt : string list;  (** entry files failing CRC/structure *)
  orphan_tmp : string list;  (** dead-writer temp files awaiting sweep *)
}

(** [verify ~dir] audits every [.entry] file (full CRC + structural
    parse, no re-verification of the generator) and lists scavengeable
    temp files; the chaos harness asserts both lists empty after a
    kill/restart cycle. *)
val verify : dir:string -> verdict

(** [save_pool ~dir ~digest ~data_len ~check_len ~md cexes] persists a
    counterexample pool for warm starts (atomic, best-effort). *)
val save_pool :
  dir:string ->
  digest:string ->
  data_len:int ->
  check_len:int ->
  md:int ->
  Synth.Cegis.cex list ->
  unit

(** [warm_start ~dir ~data_len ~md] is the concatenation of every stored
    pool matching the problem dimensions (capped, oldest entries first);
    corrupt pools are skipped. *)
val warm_start : dir:string -> data_len:int -> md:int -> Synth.Cegis.cex list
