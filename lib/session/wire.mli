(** The serve wire protocol: newline-delimited JSON over a Unix socket.

    Each client line is one request object selected by its ["op"] field;
    each response is one object with ["ok"] first.  Local file paths
    (checkpoints, traces) are deliberately not exposed over the wire —
    the daemon's own configuration decides where cache, ledger and
    metrics live.

    Requests:
    - [{"op":"ping"}]
    - [{"op":"submit","spec":PROP,...}] or
      [{"op":"submit","optimize":{"data_len":K,"md":D,"check_lo":A,"check_hi":B},...}]
      with optional [timeout], [weights], [portfolio], [jobs], [cache]
      and [await] (submit-and-wait in one round trip)
    - [{"op":"status","id":N}] / [{"op":"await","id":N}] /
      [{"op":"cancel","id":N}]
    - [{"op":"stats"}]
    - [{"op":"shutdown"}] — drain and exit *)

type command =
  | Ping
  | Submit of { request : Session.request; await : bool }
  | Status of int
  | Await of int
  | Cancel of int
  | Stats
  | Shutdown

(** [command_of_json ~defaults j] decodes one request line; [defaults]
    is the server's request template (cache policy, ledger/cache
    directories, subcommand) that submit fields override. *)
val command_of_json :
  defaults:Session.request ->
  Telemetry.Json.t ->
  (command, string) Stdlib.result

(** The result object shared by [submit --await], [status] and [await]
    responses. *)
val result_to_json : Session.result -> Telemetry.Json.t

val status_to_json : Session.Manager.status -> Telemetry.Json.t

(** One response line (with trailing newline): [ok fields] has
    ["ok":true] first, [error msg] is [{"ok":false,"error":msg}]. *)
val ok : (string * Telemetry.Json.t) list -> string

val error : string -> string
