(** The serve wire protocol: newline-delimited JSON over a Unix socket.

    Each client line is one request object selected by its ["op"] field;
    each response is one object with ["ok"] first.  Local file paths
    (checkpoints, traces) are deliberately not exposed over the wire —
    the daemon's own configuration decides where cache, ledger and
    metrics live.

    Requests:
    - [{"op":"ping"}]
    - [{"op":"submit","spec":PROP,...}] or
      [{"op":"submit","optimize":{"data_len":K,"md":D,"check_lo":A,"check_hi":B},...}]
      with optional [timeout], [weights], [portfolio], [jobs], [cache],
      [await] (submit-and-wait in one round trip) and [deadline_ms] (the
      manager answers [{"state":"timeout"}] once it passes)
    - [{"op":"status","id":N}] / [{"op":"await","id":N}] /
      [{"op":"cancel","id":N}]
    - [{"op":"stats"}] — queue depth, drain status and per-worker
      detail (state, seconds in state, request id being served)
    - [{"op":"metrics"}] — the same live snapshot plus the full
      Prometheus text exposition under ["exposition"] (what the HTTP
      [/metrics] endpoint serves); [fecsynth top] polls this
    - [{"op":"shutdown"}] — drain and exit

    Error responses may carry a machine-readable ["kind"] alongside the
    human ["error"] text: [bad_frame] (unparseable JSON; the server
    closes the connection), [oversized] (frame longer than the server
    limit; closed), [torn_frame] (EOF splitting a frame; closed),
    [backpressure] (admission queue full), [draining] (shutdown in
    progress), [unknown_id].  A well-formed frame carrying a bad request
    object (e.g. a submit with neither spec nor optimize) is answered
    without a kind and the connection stays open. *)

type command =
  | Ping
  | Submit of {
      request : Session.request;
      await : bool;
      deadline_s : float option;
    }
  | Status of int
  | Await of int
  | Cancel of int
  | Stats
  | Metrics
  | Shutdown

(** [command_of_json ~defaults j] decodes one request line; [defaults]
    is the server's request template (cache policy, ledger/cache
    directories, subcommand) that submit fields override. *)
val command_of_json :
  defaults:Session.request ->
  Telemetry.Json.t ->
  (command, string) Stdlib.result

(** The result object shared by [submit --await], [status] and [await]
    responses. *)
val result_to_json : Session.result -> Telemetry.Json.t

val status_to_json : Session.Manager.status -> Telemetry.Json.t

(** One response line (with trailing newline): [ok fields] has
    ["ok":true] first, [error msg] is [{"ok":false,"error":msg}], with
    ["kind"] included when given. *)
val ok : (string * Telemetry.Json.t) list -> string

val error : ?kind:string -> string -> string
