(* The content-addressed result store.  Envelope format:

     fecsynth-cache 1
     <one JSON object>
     crc <8 hex digits>

   where the CRC-32 covers every byte up to and including the payload
   line's newline.  The durability discipline matches Checkpoint: temp
   file in the destination directory, then an atomic rename. *)

module J = Telemetry.Json

let version = 1

type entry = {
  key : string;
  created : string;
  code : Hamming.Code.t;
  check_len : int;
  md : int;
  verified_md : int;
  iterations : int;
  elapsed : float;
}

let default_dir () =
  match Sys.getenv_opt "FEC_CACHE_DIR" with
  | Some d when d <> "" -> d
  | _ -> Filename.concat ".fecsynth" "cache"

let m_hit = Telemetry.Metrics.counter "session.cache_hit"
let m_miss = Telemetry.Metrics.counter "session.cache_miss"
let m_scavenged = Telemetry.Metrics.counter "session.cache_scavenged"

(* one-line code rendering, same convention as Checkpoint *)
let code_to_line code =
  String.map
    (fun c -> if c = '\n' then ';' else c)
    (Hamming.Code.to_string code)

let code_of_line line =
  Hamming.Code.of_string
    (String.map (fun c -> if c = ';' then '\n' else c) line)

let entry_to_json e =
  J.Obj
    [
      ("key", J.Str e.key);
      ("created", J.Str e.created);
      ("code", J.Str (code_to_line e.code));
      ("check_len", J.Int e.check_len);
      ("md", J.Int e.md);
      ("verified_md", J.Int e.verified_md);
      ("iterations", J.Int e.iterations);
      ("elapsed", J.Float e.elapsed);
    ]

let entry_of_json j =
  let str k = Option.bind (J.member k j) J.to_string_opt in
  let int k = Option.bind (J.member k j) J.to_int in
  match (str "key", str "created", str "code") with
  | Some key, Some created, Some code_line -> (
      match
        (int "check_len", int "md", int "verified_md", int "iterations")
      with
      | Some check_len, Some md, Some verified_md, Some iterations ->
          Some
            {
              key;
              created;
              code = code_of_line code_line;
              check_len;
              md;
              verified_md;
              iterations;
              elapsed =
                Option.value
                  (Option.bind (J.member "elapsed" j) J.to_float)
                  ~default:0.0;
            }
      | _ -> None)
  | _ -> None

let render e =
  let body =
    Printf.sprintf "fecsynth-cache %d\n%s\n" version
      (J.to_string (entry_to_json e))
  in
  body ^ Printf.sprintf "crc %08lX\n" (Zip.Crc32.digest body)

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let entry_file ~dir ~digest = Filename.concat dir (digest ^ ".entry")
let pool_file ~dir ~digest = Filename.concat dir (digest ^ ".pool")

(* A torn-write injection models a crash between writing the temp file
   and renaming it into place: half the payload lands in the tmp file,
   the rename never happens, and the orphan is left for {!scavenge}.
   The destination entry is untouched either way — that is the whole
   point of the tmp+rename discipline. *)
let atomic_write path text =
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  match Synth.Fault.probe_write "cache.write" with
  | `Torn ->
      let oc = open_out_bin tmp in
      output_string oc (String.sub text 0 (String.length text / 2));
      close_out oc
  | `Full ->
      let oc = open_out_bin tmp in
      output_string oc text;
      close_out oc;
      Sys.rename tmp path

let store ~dir ~digest e =
  try
    mkdir_p dir;
    atomic_write (entry_file ~dir ~digest) (render e)
  with Sys_error msg | Failure msg ->
    Printf.eprintf "fecsynth: warning: cannot write cache entry: %s\n%!" msg

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Structural + CRC validation; any deviation is a miss, never an error. *)
let parse content =
  match String.split_on_char '\n' content with
  | [ header; payload; trailer; "" ] -> (
      let body = header ^ "\n" ^ payload ^ "\n" in
      match String.split_on_char ' ' trailer with
      | [ "crc"; hex ]
        when (try Int32.of_string ("0x" ^ hex) = Zip.Crc32.digest body
              with _ -> false) -> (
          match String.split_on_char ' ' header with
          | [ "fecsynth-cache"; v ] when int_of_string_opt v = Some version
            -> (
              match J.of_string payload with
              | exception J.Parse_error _ -> None
              | j -> entry_of_json j)
          | _ -> None)
      | _ -> None)
  | _ -> None

(* Small data lengths admit exact re-verification by enumeration — the
   entry's certificate is re-proved on every hit.  Past that the CRC and
   stored canonical key are the integrity story. *)
let reverify_limit = 14

let lookup ~dir ~digest ~key =
  Synth.Fault.probe "cache.read";
  let path = entry_file ~dir ~digest in
  let found =
    if not (Sys.file_exists path) then None
    else
      match parse (read_file path) with
      | exception Sys_error _ -> None
      | Some e
        when e.key = key
             && (Hamming.Code.data_len e.code > reverify_limit
                || Hamming.Distance.min_distance e.code >= e.md) ->
          Some e
      | Some _ | None -> None
  in
  (match found with
  | Some _ -> Telemetry.Metrics.incr m_hit 1
  | None -> Telemetry.Metrics.incr m_miss 1);
  found

(* ---------- crash recovery ---------- *)

let pid_alive pid =
  match Unix.kill pid 0 with
  | () -> true
  | exception Unix.Unix_error (Unix.ESRCH, _, _) -> false
  | exception Unix.Unix_error _ -> true

(* [name] is an orphaned temp file iff it carries a ".tmp.<pid>" suffix
   whose writer is dead — a live pid means the write is in flight right
   now, so leave it alone. *)
let orphan_tmp name =
  let infix = ".tmp." in
  let nl = String.length name and il = String.length infix in
  let rec find i =
    if i + il > nl then None
    else if String.sub name i il = infix then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> false
  | Some i -> (
      match int_of_string_opt (String.sub name (i + il) (nl - i - il)) with
      | Some pid -> not (pid_alive pid)
      | None -> false)

let scavenge ~dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> 0
  | names ->
      let removed = ref 0 in
      Array.iter
        (fun name ->
          if orphan_tmp name then begin
            (try Sys.remove (Filename.concat dir name) with Sys_error _ -> ());
            incr removed
          end)
        names;
      if !removed > 0 then Telemetry.Metrics.incr m_scavenged !removed;
      !removed

let scavenged_dirs : (string, unit) Hashtbl.t = Hashtbl.create 4
let scavenge_lock = Mutex.create ()

let scavenge_once ~dir =
  let fresh =
    Mutex.lock scavenge_lock;
    let f = not (Hashtbl.mem scavenged_dirs dir) in
    if f then Hashtbl.replace scavenged_dirs dir ();
    Mutex.unlock scavenge_lock;
    f
  in
  if fresh then scavenge ~dir else 0

type verdict = {
  ok_entries : int;
  corrupt : string list;  (** .entry files failing CRC/structure *)
  orphan_tmp : string list;  (** dead-writer temp files awaiting sweep *)
}

let verify ~dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> { ok_entries = 0; corrupt = []; orphan_tmp = [] }
  | names ->
      Array.sort compare names;
      let ok = ref 0 and bad = ref [] and tmp = ref [] in
      Array.iter
        (fun name ->
          if orphan_tmp name then tmp := name :: !tmp
          else if Filename.check_suffix name ".entry" then
            match parse (read_file (Filename.concat dir name)) with
            | exception Sys_error _ -> bad := name :: !bad
            | Some _ -> incr ok
            | None -> bad := name :: !bad)
        names;
      { ok_entries = !ok; corrupt = List.rev !bad; orphan_tmp = List.rev !tmp }

(* ---------- warm-start pools (Checkpoint format) ---------- *)

let save_pool ~dir ~digest ~data_len ~check_len ~md cexes =
  if cexes <> [] then
    try
      mkdir_p dir;
      Synth.Checkpoint.save
        ~path:(pool_file ~dir ~digest)
        {
          Synth.Checkpoint.data_len;
          check_len;
          min_distance = md;
          iterations = 0;
          opt_bound = None;
          best = None;
          cexes;
        }
    with Sys_error msg | Failure msg ->
      Printf.eprintf "fecsynth: warning: cannot write cache pool: %s\n%!" msg

let warm_cap = 512

let warm_start ~dir ~data_len ~md =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
      Array.sort compare names;
      let acc = ref [] and n = ref 0 in
      Array.iter
        (fun name ->
          if !n < warm_cap && Filename.check_suffix name ".pool" then
            match Synth.Checkpoint.load ~path:(Filename.concat dir name) with
            | Ok t
              when t.Synth.Checkpoint.data_len = data_len
                   && t.Synth.Checkpoint.min_distance = md ->
                List.iter
                  (fun cex ->
                    if !n < warm_cap then begin
                      acc := cex :: !acc;
                      incr n
                    end)
                  t.Synth.Checkpoint.cexes
            | Ok _ | Error _ -> ())
        names;
      List.rev !acc
