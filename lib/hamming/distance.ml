open Gf2

(* Enumerate data words of a given weight, calling [f] on each.  Stops and
   returns [Some x] as soon as [f] does. *)
let iter_weight k w f =
  let idx = Array.init w Fun.id in
  let exception Stop in
  let result = ref None in
  let d = Bitvec.create k in
  (try
     if w > k then ()
     else begin
       let continue = ref true in
       while !continue do
         Array.iter (fun i -> Bitvec.set d i true) idx;
         (match f d with
         | Some _ as r ->
             result := r;
             raise Stop
         | None -> ());
         Array.iter (fun i -> Bitvec.set d i false) idx;
         (* advance the combination idx to the next k-subset *)
         let rec bump pos =
           if pos < 0 then continue := false
           else if idx.(pos) < k - (w - pos) then begin
             idx.(pos) <- idx.(pos) + 1;
             for q = pos + 1 to w - 1 do
               idx.(q) <- idx.(q - 1) + 1
             done
           end
           else bump (pos - 1)
         in
         bump (w - 1)
       done
     end
   with Stop -> ());
  !result

(* Minimum codeword weight restricted to data words of weight [w]. *)
let best_at_weight code w bound =
  let best = ref bound in
  ignore
    (iter_weight (Code.data_len code) w (fun d ->
         let cw = Bitvec.popcount (Code.encode code d) in
         if cw < !best then best := cw;
         None));
  !best

let min_distance code =
  let k = Code.data_len code in
  if k = 0 then invalid_arg "Distance.min_distance: code has no data bits";
  let best = ref (Code.block_len code + 1) in
  let w = ref 1 in
  (* codeword weight >= data weight: once w exceeds the best weight found,
     heavier data words cannot improve it *)
  while !w <= !best && !w <= k do
    best := best_at_weight code !w !best;
    incr w
  done;
  !best

let counterexample ?interrupt code m =
  let k = Code.data_len code in
  (* cooperative cancellation: poll every 8192 enumerated words *)
  let poll =
    match interrupt with
    | None -> fun () -> ()
    | Some f ->
        let n = ref 0 in
        fun () ->
          incr n;
          if !n land 8191 = 0 && f () then raise Smtlite.Ctx.Interrupted
  in
  let rec go w =
    if w >= m || w > k then None
    else
      match
        iter_weight k w (fun d ->
            poll ();
            if Bitvec.popcount (Code.encode code d) < m then Some (Bitvec.copy d)
            else None)
      with
      | Some d -> Some d
      | None -> go (w + 1)
  in
  go 1

let has_min_distance_at_least code m = counterexample code m = None

let has_min_distance code m =
  has_min_distance_at_least code m && not (has_min_distance_at_least code (m + 1))

(* ---------- SAT-based checking (paper §3.2 verifier methodology) ---------- *)

open Smtlite

(* Build the symbolic encoding of "there is a non-zero data word whose
   codeword has weight < m" and return it together with the data
   variables. *)
let encode_violation ?(encoding = Card.Sequential) code m =
  let k = Code.data_len code and c = Code.check_len code in
  let p = Code.coefficient_matrix code in
  let data = List.init k (fun i -> Expr.var i) in
  let data_arr = Array.of_list data in
  (* check bit j is the parity of data bits selected by column j of P *)
  let checks =
    List.init c (fun j ->
        let selected = ref [] in
        for i = 0 to k - 1 do
          if Matrix.get p i j then selected := data_arr.(i) :: !selected
        done;
        Expr.xor_l !selected)
  in
  let word = data @ checks in
  let nonzero = Expr.or_ data in
  let light = Card.at_most encoding word (m - 1) in
  (Expr.and_ [ nonzero; light ], data)

let sat_counterexample ?deadline ?interrupt ?encoding ?seed ?conflicts code m =
  if m <= 1 then None
  else begin
    let violation, data = encode_violation ?encoding code m in
    let ctx = Ctx.create () in
    (match seed with Some s -> Ctx.set_seed ctx s | None -> ());
    (match interrupt with Some _ -> Ctx.set_interrupt ctx interrupt | None -> ());
    Ctx.assert_ ctx violation;
    (* account the verifier's conflicts even when the check is cut short *)
    let record () =
      match conflicts with
      | Some r -> r := !r + (Ctx.stats ctx).Sat.Solver.conflicts
      | None -> ()
    in
    Fun.protect ~finally:record (fun () ->
        match Ctx.check ?deadline ctx with
        | Ctx.Unsat -> None
        | Ctx.Sat ->
            let k = Code.data_len code in
            Some (Bitvec.init k (fun i -> Ctx.model_bool ctx (List.nth data i))))
  end

let sat_has_min_distance_at_least ?deadline code m =
  sat_counterexample ?deadline code m = None

let certified_min_distance_at_least ?deadline code m =
  if m <= 1 then `Certified "" (* vacuous: any non-trivial code has md >= 1 *)
  else begin
    let violation, data = encode_violation code m in
    let ctx = Ctx.create ~proof:true () in
    Ctx.assert_ ctx violation;
    match Ctx.check ?deadline ctx with
    | Ctx.Sat ->
        let k = Code.data_len code in
        `Refuted (Bitvec.init k (fun i -> Ctx.model_bool ctx (List.nth data i)))
    | Ctx.Unsat -> (
        match Ctx.certificate ctx with
        | None -> failwith "Distance.certified: proof recording was not enabled"
        | Some (formula, proof) -> (
            match Sat.Drat.check ~formula proof with
            | Sat.Drat.Valid -> `Certified proof
            | Sat.Drat.Invalid msg ->
                failwith ("Distance.certified: solver emitted an invalid proof: " ^ msg)))
  end
