(** Minimum-distance computation and checking.

    For a linear code the minimum distance equals the minimum Hamming
    weight over non-zero codewords.  For systematic codes the codeword
    weight is at least the data weight, so the exact search enumerates data
    words by ascending weight and stops as soon as the weight being
    enumerated exceeds the best codeword weight found — making exact
    computation cheap whenever the distance is small, even for long codes
    such as (128,120).

    A SAT-based checker is also provided: it reproduces the paper's
    methodology (the verifier side of §3.2) and cross-checks the
    combinatorial search in tests. *)

(** [min_distance code] is the exact minimum distance.
    @raise Invalid_argument if the code has no data bits. *)
val min_distance : Code.t -> int

(** [has_min_distance_at_least code m] decides [min_distance code >= m]
    without necessarily computing the exact distance (enumerates data words
    of weight < m only). *)
val has_min_distance_at_least : Code.t -> int -> bool

(** [has_min_distance code m] decides [min_distance code = m]. *)
val has_min_distance : Code.t -> int -> bool

(** [counterexample ?interrupt code m] is a non-zero data word whose
    codeword has weight < [m], if one exists — the witness the CEGIS
    verifier feeds back to the synthesizer.  [interrupt] is polled
    periodically during enumeration; {!Smtlite.Ctx.Interrupted} escapes
    when it returns [true] (used by the portfolio to cancel losers). *)
val counterexample :
  ?interrupt:(unit -> bool) -> Code.t -> int -> Gf2.Bitvec.t option

(** [sat_has_min_distance_at_least ?deadline code m] decides the same
    property by SAT: it asserts the existence of a non-zero data word whose
    codeword weight is below [m] and reports [true] iff the solver answers
    UNSAT.  @raise Smtlite.Ctx.Timeout if the deadline is exceeded. *)
val sat_has_min_distance_at_least : ?deadline:float -> Code.t -> int -> bool

(** [sat_counterexample ?deadline ?interrupt ?encoding ?seed ?conflicts code m]
    is the SAT-side witness search: [Some d] for a data word encoding to
    weight < [m], [None] if the bound holds.

    [encoding] selects the cardinality encoding of the weight bound
    (default {!Smtlite.Card.Sequential}); [seed] diversifies the solver's
    search deterministically; [interrupt] installs a cooperative
    cancellation callback ({!Smtlite.Ctx.Interrupted} escapes when it
    fires); [conflicts] is incremented by the solver conflicts this call
    spent, even when it is cut short by timeout or interruption — the
    portfolio's per-worker verifier accounting relies on this. *)
val sat_counterexample :
  ?deadline:float ->
  ?interrupt:(unit -> bool) ->
  ?encoding:Smtlite.Card.encoding ->
  ?seed:int ->
  ?conflicts:int ref ->
  Code.t ->
  int ->
  Gf2.Bitvec.t option

(** [certified_min_distance_at_least ?deadline code m] decides the bound
    with an auditable outcome: [`Certified proof] carries a DRAT
    refutation of "some non-zero data word encodes below weight [m]",
    already validated by the independent {!Sat.Drat} checker; [`Refuted d]
    carries a concrete witness data word, checkable by re-encoding.
    @raise Failure if the solver emits a proof the checker rejects
    (indicating a solver bug — never observed, and property-tested). *)
val certified_min_distance_at_least :
  ?deadline:float ->
  Code.t ->
  int ->
  [ `Certified of string | `Refuted of Gf2.Bitvec.t ]
