(** Fresh propositional variable supply.

    Variable indices below {!first_fresh} are reserved for user-chosen
    variables; {!make} hands out indices from a global counter starting at
    {!first_fresh}, so encoder-internal variables never collide with them.

    The counter is atomic and {!make_n} reserves one contiguous block, so
    allocation is safe from concurrent domains and the layout of a block is
    deterministic given its base index.  This is the shared naming scheme
    the portfolio synthesizer relies on: the driver allocates the symbolic
    coefficient-matrix block once, every racing worker maps the {e same}
    variable expressions into its own solver, and learned counterexample
    constraints therefore transfer between workers unchanged. *)

(** The first index handed out by [make]. *)
val first_fresh : int

(** [make ()] is a fresh variable expression. *)
val make : unit -> Expr.t

(** [make_n n] is a list of [n] fresh variable expressions with contiguous
    indices (one atomic block reservation). *)
val make_n : int -> Expr.t list

(** [reserve n] atomically reserves a block of [n] indices and returns the
    first; [Expr.var base .. Expr.var (base+n-1)] are then owned by the
    caller.  @raise Invalid_argument on negative [n]. *)
val reserve : int -> int
