type result = Sat | Unsat

exception Timeout
exception Interrupted = Sat.Solver.Interrupted

type t = {
  solver : Sat.Solver.t;
  lit_cache : (int, Sat.Lit.t) Hashtbl.t; (* Expr uid -> defining literal *)
  var_map : (int, int) Hashtbl.t; (* Expr variable index -> solver var *)
  mutable true_lit : Sat.Lit.t option;
  mutable selectors : Sat.Lit.t list; (* innermost first *)
  mutable last_sat : bool;
}

let create ?(proof = false) () =
  let solver = Sat.Solver.create () in
  if proof then Sat.Solver.enable_proof solver;
  {
    solver;
    lit_cache = Hashtbl.create 4096;
    var_map = Hashtbl.create 256;
    true_lit = None;
    selectors = [];
    last_sat = false;
  }

let solver ctx = ctx.solver

let certificate ctx =
  match Sat.Solver.proof ctx.solver with
  | None -> None
  | Some proof -> Some (Sat.Solver.original_clauses ctx.solver, proof)
let stats ctx = Sat.Solver.stats ctx.solver
let learnt_histogram ctx = Sat.Solver.learnt_size_histogram ctx.solver
let level ctx = List.length ctx.selectors
let set_seed ctx seed = Sat.Solver.set_seed ctx.solver seed
let set_interrupt ctx f = Sat.Solver.set_interrupt ctx.solver f

let fresh_lit ctx = Sat.Lit.make (Sat.Solver.new_var ctx.solver)

let true_lit ctx =
  match ctx.true_lit with
  | Some l -> l
  | None ->
      let l = fresh_lit ctx in
      Sat.Solver.add_clause ctx.solver [ l ];
      ctx.true_lit <- Some l;
      l

let solver_var ctx i =
  match Hashtbl.find_opt ctx.var_map i with
  | Some v -> v
  | None ->
      let v = Sat.Solver.new_var ctx.solver in
      Hashtbl.add ctx.var_map i v;
      v

(* Definitional clauses carry no selector: they define fresh variables and
   remain valid across pop. *)
let define ctx lits = Sat.Solver.add_clause ctx.solver lits

(* Tseitin translation with per-context memoization.  Negation reuses the
   child's literal; all other connectives get a defining variable with a
   full (both-polarity) encoding. *)
let rec lit_of ctx e =
  match Hashtbl.find_opt ctx.lit_cache (Expr.id e) with
  | Some l -> l
  | None ->
      let l =
        match Expr.node e with
        | Expr.True -> true_lit ctx
        | Expr.Var i -> Sat.Lit.make (solver_var ctx i)
        | Expr.Not x -> Sat.Lit.neg (lit_of ctx x)
        | Expr.And es ->
            let ls = List.map (lit_of ctx) es in
            let y = fresh_lit ctx in
            List.iter (fun l -> define ctx [ Sat.Lit.neg y; l ]) ls;
            define ctx (y :: List.map Sat.Lit.neg ls);
            y
        | Expr.Or es ->
            let ls = List.map (lit_of ctx) es in
            let y = fresh_lit ctx in
            List.iter (fun l -> define ctx [ y; Sat.Lit.neg l ]) ls;
            define ctx (Sat.Lit.neg y :: ls);
            y
        | Expr.Xor (a, b) ->
            let la = lit_of ctx a and lb = lit_of ctx b in
            let y = fresh_lit ctx in
            let n = Sat.Lit.neg in
            define ctx [ n y; la; lb ];
            define ctx [ n y; n la; n lb ];
            define ctx [ y; la; n lb ];
            define ctx [ y; n la; lb ];
            y
        | Expr.Ite (c, a, b) ->
            let lc = lit_of ctx c and la = lit_of ctx a and lb = lit_of ctx b in
            let y = fresh_lit ctx in
            let n = Sat.Lit.neg in
            define ctx [ n y; n lc; la ];
            define ctx [ n y; lc; lb ];
            define ctx [ y; n lc; n la ];
            define ctx [ y; lc; n lb ];
            y
      in
      Hashtbl.add ctx.lit_cache (Expr.id e) l;
      l

let push ctx =
  let s = fresh_lit ctx in
  ctx.selectors <- s :: ctx.selectors

let pop ctx =
  match ctx.selectors with
  | [] -> invalid_arg "Ctx.pop: empty assertion stack"
  | s :: rest ->
      (* permanently disable every clause guarded by this selector *)
      Sat.Solver.add_clause ctx.solver [ Sat.Lit.neg s ];
      ctx.selectors <- rest

(* Assert an expression at the current level.  Top-level conjunctions are
   split; a top-level disjunction of simple literals becomes one clause. *)
let rec assert_ ctx e =
  ctx.last_sat <- false;
  match Expr.node e with
  | Expr.And es -> List.iter (assert_ ctx) es
  | _ ->
      let l = lit_of ctx e in
      let clause =
        match ctx.selectors with [] -> [ l ] | s :: _ -> [ Sat.Lit.neg s; l ]
      in
      Sat.Solver.add_clause ctx.solver clause

(* Run the solver in conflict-bounded slices so a wall-clock deadline can
   interrupt long searches; learnt clauses persist across slices. *)
let check_body ?deadline ?(assumptions = []) ctx =
  Sat.Solver.probe "ctx.check";
  ctx.last_sat <- false;
  let assumption_lits =
    ctx.selectors @ List.map (lit_of ctx) assumptions
  in
  let slice = 20_000 in
  let rec attempt () =
    (match deadline with
    | Some d when Unix.gettimeofday () > d -> raise Timeout
    | _ -> ());
    (match deadline with
    | Some _ ->
        let used = (Sat.Solver.stats ctx.solver).Sat.Solver.conflicts in
        Sat.Solver.set_conflict_budget ctx.solver (Some (used + slice))
    | None -> Sat.Solver.set_conflict_budget ctx.solver None);
    match Sat.Solver.solve ~assumptions:assumption_lits ctx.solver with
    | Sat.Solver.Sat ->
        ctx.last_sat <- true;
        Sat
    | Sat.Solver.Unsat -> Unsat
    | exception Sat.Solver.Budget_exhausted -> attempt ()
  in
  Fun.protect
    ~finally:(fun () -> Sat.Solver.set_conflict_budget ctx.solver None)
    attempt

(* Each check becomes a [ctx.check] span; the Tseitin translation of the
   assumption expressions happens inside it, so the reported new_vars /
   new_clauses deltas are the encoding cost of this query (the enclosed
   [sat.solve] spans carry the per-slice search statistics). *)
let m_checks = Telemetry.Metrics.counter "smtlite.checks"
let m_aux_vars = Telemetry.Metrics.counter "smtlite.aux_vars"
let m_aux_clauses = Telemetry.Metrics.counter "smtlite.aux_clauses"

let check ?deadline ?assumptions ctx =
  if not (Telemetry.enabled ()) then check_body ?deadline ?assumptions ctx
  else begin
    let vars0 = Sat.Solver.nvars ctx.solver in
    let clauses0 = Sat.Solver.nclauses ctx.solver in
    let sp =
      Telemetry.begin_span "ctx.check"
        ~fields:[ ("level", Telemetry.int (List.length ctx.selectors)) ]
    in
    let finish result =
      Telemetry.Metrics.incr m_checks 1;
      Telemetry.Metrics.incr m_aux_vars (Sat.Solver.nvars ctx.solver - vars0);
      Telemetry.Metrics.incr m_aux_clauses
        (Sat.Solver.nclauses ctx.solver - clauses0);
      Telemetry.end_span sp
        ~fields:
          [
            ("result", Telemetry.str result);
            ( "new_vars",
              Telemetry.int (Sat.Solver.nvars ctx.solver - vars0) );
            ( "new_clauses",
              Telemetry.int (Sat.Solver.nclauses ctx.solver - clauses0) );
          ]
    in
    match check_body ?deadline ?assumptions ctx with
    | Sat ->
        finish "sat";
        Sat
    | Unsat ->
        finish "unsat";
        Unsat
    | exception Timeout ->
        finish "timeout";
        raise Timeout
    | exception Interrupted ->
        finish "interrupted";
        raise Interrupted
  end

let enumerate ?limit ctx ~over f =
  push ctx;
  (* force Tseitin definitions up front so models cover these literals *)
  let lits = List.map (lit_of ctx) over in
  let count = ref 0 in
  let continue_enum = ref true in
  while
    !continue_enum
    && (match limit with Some l -> !count < l | None -> true)
  do
    match check ctx with
    | Unsat -> continue_enum := false
    | Sat ->
        let values = List.map (Sat.Solver.value ctx.solver) lits in
        f values;
        incr count;
        (* block this projection *)
        let blocking =
          Expr.or_
            (List.map2
               (fun e v -> if v then Expr.not_ e else e)
               over values)
        in
        if Expr.is_false blocking then continue_enum := false
        else assert_ ctx blocking
  done;
  pop ctx;
  !count

let model_bool ctx e =
  if not ctx.last_sat then invalid_arg "Ctx.model_bool: no model available";
  let value_of_var i =
    match Hashtbl.find_opt ctx.var_map i with
    | Some v -> Sat.Solver.value_var ctx.solver v
    | None -> false
  in
  (* Prefer the cached Tseitin literal (exact), fall back to structural
     evaluation for expressions the solver never saw. *)
  match Hashtbl.find_opt ctx.lit_cache (Expr.id e) with
  | Some l -> Sat.Solver.value ctx.solver l
  | None -> Expr.eval value_of_var e

let model_bv ctx v =
  if not ctx.last_sat then invalid_arg "Ctx.model_bv: no model available";
  let acc = ref 0 in
  Array.iteri (fun i b -> if model_bool ctx b then acc := !acc lor (1 lsl i)) v;
  !acc
