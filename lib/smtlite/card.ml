type encoding = Naive | Pairwise | Sequential | Totalizer | Adder

let encoding_name = function
  | Naive -> "naive"
  | Pairwise -> "pairwise"
  | Sequential -> "sequential"
  | Totalizer -> "totalizer"
  | Adder -> "adder"

(* Telemetry for constraint construction.  Aux vars/clauses are introduced
   later by the Tseitin pass in [Ctx.check], whose [ctx.check] span reports
   the deltas; here we record which encodings are exercised at what sizes. *)
let m_encodes = Telemetry.Metrics.counter "card.encodes"
let m_encode_n = Telemetry.Metrics.histogram "card.encode_n"

let encode_point enc ~op ~n ~k =
  if Telemetry.enabled () then begin
    Telemetry.Metrics.incr m_encodes 1;
    Telemetry.Metrics.observe m_encode_n n;
    Telemetry.point "card.encode"
      ~fields:
        [
          ("encoding", Telemetry.str (encoding_name enc));
          ("op", Telemetry.str op);
          ("n", Telemetry.int n);
          ("k", Telemetry.int k);
        ]
  end

(* ---------- naive: explicit subsets, exponential, test oracle ---------- *)

let rec combinations k = function
  | _ when k = 0 -> [ [] ]
  | [] -> []
  | x :: rest ->
      List.map (fun c -> x :: c) (combinations (k - 1) rest) @ combinations k rest

let naive_at_least es k =
  if k <= 0 then Expr.true_
  else if k > List.length es then Expr.false_
  else Expr.or_ (List.map Expr.and_ (combinations k es))

(* ---------- pairwise (binomial): every (k+1)-subset has a false member ----- *)

let pairwise_at_most es k =
  Expr.and_
    (List.map (fun c -> Expr.or_ (List.map Expr.not_ c)) (combinations (k + 1) es))

(* ---------- sequential counter ---------- *)

(* s.(j) after processing x_1..x_i holds iff at least j+1 of them are true *)
let sequential_counts ?cap es =
  let n = List.length es in
  let cap = match cap with Some c -> min c n | None -> n in
  let s = Array.make cap Expr.false_ in
  List.iter
    (fun x ->
      for j = cap - 1 downto 1 do
        s.(j) <- Expr.or_ [ s.(j); Expr.and_ [ x; s.(j - 1) ] ]
      done;
      if cap > 0 then s.(0) <- Expr.or_ [ s.(0); x ])
    es;
  s

(* ---------- totalizer ---------- *)

(* Merge two unary count vectors: out.(k) iff at least k+1 inputs are true
   across both sides.  A virtual "at least 0" output is constant true. *)
let tot_merge ?cap a b =
  let la = Array.length a and lb = Array.length b in
  let n = match cap with Some c -> min c (la + lb) | None -> la + lb in
  let at_least v i = if i = 0 then Expr.true_ else v.(i - 1) in
  Array.init n (fun k ->
      (* at least k+1 overall: exists i+j = k+1 with ≥i from a and ≥j from b *)
      let terms = ref [] in
      for i = 0 to min la (k + 1) do
        let j = k + 1 - i in
        if j >= 0 && j <= lb then
          terms := Expr.and_ [ at_least a i; at_least b j ] :: !terms
      done;
      Expr.or_ !terms)

let totalizer_counts ?cap es =
  let rec go = function
    | [] -> [||]
    | [ x ] -> [| x |]
    | xs ->
        let n = List.length xs in
        let rec split i acc = function
          | rest when i = n / 2 -> (List.rev acc, rest)
          | x :: rest -> split (i + 1) (x :: acc) rest
          | [] -> (List.rev acc, [])
        in
        let l, r = split 0 [] xs in
        tot_merge ?cap (go l) (go r)
  in
  let out = go es in
  match cap with
  | Some c when Array.length out > c -> Array.sub out 0 c
  | _ -> out

(* ---------- public interface ---------- *)

let width_for k =
  if k <= 0 then 1
  else
    let rec go w = if k lsr w = 0 then w else go (w + 1) in
    go 1

let counts ?cap enc es =
  match enc with
  | Sequential -> sequential_counts ?cap es
  | Totalizer -> totalizer_counts ?cap es
  | Naive ->
      let n = List.length es in
      let cap = match cap with Some c -> min c n | None -> n in
      Array.init cap (fun i -> naive_at_least es (i + 1))
  | Pairwise -> invalid_arg "Card.counts: no unary view for Pairwise encoding"
  | Adder -> invalid_arg "Card.counts: no unary view for Adder encoding"

let at_most enc es k =
  let n = List.length es in
  if k >= n then Expr.true_
  else if k < 0 then Expr.false_
  else begin
    encode_point enc ~op:"at_most" ~n ~k;
    match enc with
    | Adder -> Bv.ule (Bv.popcount es) (Bv.of_int ~width:(width_for k) k)
    | Pairwise -> pairwise_at_most es k
    | enc ->
        let c = counts ~cap:(k + 1) enc es in
        Expr.not_ c.(k)
  end

let at_least enc es k =
  let n = List.length es in
  if k <= 0 then Expr.true_
  else if k > n then Expr.false_
  else begin
    encode_point enc ~op:"at_least" ~n ~k;
    match enc with
    | Adder -> Bv.ule (Bv.of_int ~width:(width_for k) k) (Bv.popcount es)
    | Pairwise ->
        (* at least k of es  ⟺  at most n-k of their negations *)
        pairwise_at_most (List.map Expr.not_ es) (n - k)
    | enc ->
        let c = counts ~cap:k enc es in
        c.(k - 1)
  end

let exactly enc es k = Expr.and_ [ at_most enc es k; at_least enc es k ]

let pb_le ~coeffs es k =
  if List.length coeffs <> List.length es then
    invalid_arg "Card.pb_le: length mismatch";
  if List.exists (fun c -> c < 0) coeffs then
    invalid_arg "Card.pb_le: negative coefficient";
  if k < 0 then Expr.false_
  else
    let total = List.fold_left ( + ) 0 coeffs in
    if total <= k then Expr.true_
    else
      let terms = List.map2 (fun c x -> Bv.scale c [| x |]) coeffs es in
      Bv.ule (Bv.sum terms) (Bv.of_int ~width:(width_for k) k)

let pb_ge ~coeffs es k =
  if List.length coeffs <> List.length es then
    invalid_arg "Card.pb_ge: length mismatch";
  if List.exists (fun c -> c < 0) coeffs then
    invalid_arg "Card.pb_ge: negative coefficient";
  if k <= 0 then Expr.true_
  else
    let total = List.fold_left ( + ) 0 coeffs in
    if total < k then Expr.false_
    else
      let terms = List.map2 (fun c x -> Bv.scale c [| x |]) coeffs es in
      Bv.ule (Bv.of_int ~width:(width_for k) k) (Bv.sum terms)
