(** Cardinality constraints over lists of Boolean expressions.

    All encodings are pure circuits (see {!Bv}); the Tseitin translation in
    {!Ctx} introduces the auxiliary variables.  The unary [counts] view is
    also exposed so callers can reuse partial-sum outputs across several
    bounds (as the optimization loop of the synthesizer does). *)

type encoding =
  | Naive  (** explicit combinations; only for small inputs, used in tests *)
  | Pairwise
      (** binomial clause set: every (k+1)-subset contains a false member.
          No auxiliary structure, strongest propagation, exponential in
          [k]; only for small bounds *)
  | Sequential  (** sequential counter, O(n·k) gates *)
  | Totalizer  (** totalizer merge tree, good propagation *)
  | Adder  (** binary adder tree + comparator, smallest encoding *)

(** Stable lowercase wire name ("naive", "pairwise", "sequential",
    "totalizer", "adder") used in CLI flags, [--stats json] output and
    telemetry events. *)
val encoding_name : encoding -> string

(** [counts ?cap enc es] is the unary count vector [o] with
    [o.(i)] true iff at least [i+1] of [es] are true.  With [~cap:c] only
    the first [c] outputs are produced (sufficient to express bounds up to
    [c]).  Not available for [Adder] or [Pairwise] (raises
    [Invalid_argument]). *)
val counts : ?cap:int -> encoding -> Expr.t list -> Expr.t array

(** [at_most enc es k] holds iff at most [k] of [es] are true. *)
val at_most : encoding -> Expr.t list -> int -> Expr.t

(** [at_least enc es k] holds iff at least [k] of [es] are true. *)
val at_least : encoding -> Expr.t list -> int -> Expr.t

(** [exactly enc es k] holds iff exactly [k] of [es] are true. *)
val exactly : encoding -> Expr.t list -> int -> Expr.t

(** [pb_le ~coeffs es k] holds iff [Σ coeffs_i · es_i <= k], for
    non-negative integer coefficients (binary adder encoding).
    @raise Invalid_argument on negative coefficients or length mismatch. *)
val pb_le : coeffs:int list -> Expr.t list -> int -> Expr.t

(** [pb_ge ~coeffs es k] holds iff [Σ coeffs_i · es_i >= k]. *)
val pb_ge : coeffs:int list -> Expr.t list -> int -> Expr.t
