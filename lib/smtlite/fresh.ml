let first_fresh = 1 lsl 22

(* Atomic so concurrent portfolio workers can allocate without racing; a
   fetch-and-add hands out contiguous, deterministic blocks. *)
let counter = Atomic.make first_fresh

let reserve n =
  if n < 0 then invalid_arg "Fresh.reserve: negative count";
  Atomic.fetch_and_add counter n

let make () = Expr.var (reserve 1)

let make_n n =
  let base = reserve n in
  List.init n (fun i -> Expr.var (base + i))
