(** A solver context: SAT solver plus Tseitin translation and an
    assertion stack.

    Expressions are shared globally (see {!Expr}); each context lazily maps
    the expression DAG onto its own solver variables.  Definitional clauses
    are added unconditionally (they are equivalences, valid in any state);
    {e assertions} made after a {!push} are guarded by a fresh selector
    literal, so {!pop} retracts them permanently. *)

type t

type result = Sat | Unsat

exception Timeout

(** Raised out of {!check} when an installed {!set_interrupt} callback
    fires (same exception as {!Sat.Solver.Interrupted}).  The context stays
    usable.  (The implementation rebinds {!Sat.Solver.Interrupted}, so the
    two names denote the same exception.) *)
exception Interrupted

(** [create ?proof ()] is a fresh context; with [~proof:true] the
    underlying solver records a DRAT proof (see {!certificate}). *)
val create : ?proof:bool -> unit -> t

(** [assert_ ctx e] asserts expression [e] at the current stack level. *)
val assert_ : t -> Expr.t -> unit

(** [push ctx] opens a new assertion level. *)
val push : t -> unit

(** [pop ctx] discards all assertions made since the matching [push].
    @raise Invalid_argument if the stack is empty. *)
val pop : t -> unit

(** [level ctx] is the current stack depth. *)
val level : t -> int

(** [check ?deadline ?assumptions ctx] decides satisfiability of all active
    assertions, optionally under extra assumption expressions.
    [deadline] is an absolute {!Unix.gettimeofday} instant; when the solver
    exceeds it, @raise Timeout. *)
val check : ?deadline:float -> ?assumptions:Expr.t list -> t -> result

(** [model_bool ctx e] evaluates [e] in the model of the last [Sat] answer.
    Expression variables that the solver never saw evaluate to [false].
    @raise Invalid_argument if the last [check] was not [Sat]. *)
val model_bool : t -> Expr.t -> bool

(** [model_bv ctx v] evaluates a bit-vector in the last model. *)
val model_bv : t -> Bv.t -> int

(** [enumerate ?limit ctx ~over f] enumerates satisfying assignments
    projected onto the expressions [over]: each distinct valuation of
    [over] is reported once to [f] and then blocked.  Enumeration runs
    inside a [push]/[pop] frame, so the context is unchanged afterwards.
    Returns the number of valuations found (stopping at [limit],
    default unlimited). *)
val enumerate : ?limit:int -> t -> over:Expr.t list -> (bool list -> unit) -> int

(** [solver ctx] exposes the underlying SAT solver (for statistics). *)
val solver : t -> Sat.Solver.t

(** [set_seed ctx seed] diversifies the underlying solver's search
    deterministically (see {!Sat.Solver.set_seed}). *)
val set_seed : t -> int -> unit

(** [set_interrupt ctx f] installs a cooperative cancellation callback on
    the underlying solver; a pending {!check} raises {!Interrupted} soon
    after [f] starts returning [true] (see {!Sat.Solver.set_interrupt}). *)
val set_interrupt : t -> (unit -> bool) option -> unit

(** [certificate ctx] is the asserted CNF together with the recorded DRAT
    proof, when the context was created with [~proof:true].  After an
    assumption-free [Unsat] answer, [Sat.Drat.check] on the pair validates
    the refutation independently of the solver. *)
val certificate : t -> (Sat.Lit.t list list * string) option

(** [stats ctx] is the underlying solver's statistics. *)
val stats : t -> Sat.Solver.stats

(** [learnt_histogram ctx] is the underlying solver's learnt-clause-size
    histogram snapshot (see {!Sat.Solver.learnt_size_histogram}). *)
val learnt_histogram : t -> Telemetry.Metrics.Hist.t
