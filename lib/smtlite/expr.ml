type t = { uid : int; n : node }

and node =
  | True
  | Var of int
  | Not of t
  | And of t list
  | Or of t list
  | Xor of t * t
  | Ite of t * t * t

let id e = e.uid
let node e = e.n
let equal a b = a == b
let hash e = e.uid
let compare a b = Int.compare a.uid b.uid

(* Structural key used for hash-consing: children identified by uid. *)
module Key = struct
  type k =
    | KTrue
    | KVar of int
    | KNot of int
    | KAnd of int list
    | KOr of int list
    | KXor of int * int
    | KIte of int * int * int

  let of_node = function
    | True -> KTrue
    | Var i -> KVar i
    | Not e -> KNot e.uid
    | And es -> KAnd (List.map (fun e -> e.uid) es)
    | Or es -> KOr (List.map (fun e -> e.uid) es)
    | Xor (a, b) -> KXor (a.uid, b.uid)
    | Ite (c, a, b) -> KIte (c.uid, a.uid, b.uid)
end

let table : (Key.k, t) Hashtbl.t = Hashtbl.create 4096
let counter = ref 0

(* The hash-consing table is global process state; portfolio workers build
   expressions concurrently from several domains, so every lookup+insert is
   one critical section.  Uncontended locking costs nanoseconds and solver
   search (which never allocates expressions) dominates wall-clock. *)
let table_lock = Mutex.create ()

let mk n =
  let key = Key.of_node n in
  Mutex.protect table_lock (fun () ->
      match Hashtbl.find_opt table key with
      | Some e -> e
      | None ->
          let e = { uid = !counter; n } in
          incr counter;
          Hashtbl.add table key e;
          e)

let true_ = mk True
let false_ = mk (Not true_)

let var i =
  if i < 0 then invalid_arg "Expr.var: negative index";
  mk (Var i)

let not_ e = match e.n with Not x -> x | _ -> mk (Not e)
let is_true e = equal e true_
let is_false e = equal e false_
let of_bool b = if b then true_ else false_

let and_ es =
  let es = List.sort_uniq compare es in
  let es = List.filter (fun e -> not (is_true e)) es in
  if List.exists is_false es then false_
  else if List.exists (fun e -> List.memq (not_ e) es) es then false_
  else
    match es with [] -> true_ | [ e ] -> e | _ -> mk (And es)

let or_ es =
  let es = List.sort_uniq compare es in
  let es = List.filter (fun e -> not (is_false e)) es in
  if List.exists is_true es then true_
  else if List.exists (fun e -> List.memq (not_ e) es) es then true_
  else
    match es with [] -> false_ | [ e ] -> e | _ -> mk (Or es)

let xor a b =
  if is_false a then b
  else if is_false b then a
  else if is_true a then not_ b
  else if is_true b then not_ a
  else if equal a b then false_
  else if equal a (not_ b) then true_
  else
    (* canonical operand order *)
    let a, b = if a.uid <= b.uid then (a, b) else (b, a) in
    mk (Xor (a, b))

let rec xor_l = function
  | [] -> false_
  | [ e ] -> e
  | es ->
      (* balanced tree keeps the DAG shallow for long parity chains *)
      let n = List.length es in
      let rec split i acc = function
        | rest when i = n / 2 -> (List.rev acc, rest)
        | x :: rest -> split (i + 1) (x :: acc) rest
        | [] -> (List.rev acc, [])
      in
      let left, right = split 0 [] es in
      xor (xor_l left) (xor_l right)

let imp a b = or_ [ not_ a; b ]
let iff a b = not_ (xor a b)

let ite c a b =
  if is_true c then a
  else if is_false c then b
  else if equal a b then a
  else if is_true a then or_ [ c; b ]
  else if is_false a then and_ [ not_ c; b ]
  else if is_true b then or_ [ not_ c; a ]
  else if is_false b then and_ [ c; a ]
  else mk (Ite (c, a, b))

let eval assignment e =
  let cache = Hashtbl.create 64 in
  let rec go e =
    match Hashtbl.find_opt cache e.uid with
    | Some v -> v
    | None ->
        let v =
          match e.n with
          | True -> true
          | Var i -> assignment i
          | Not x -> not (go x)
          | And es -> List.for_all go es
          | Or es -> List.exists go es
          | Xor (a, b) -> go a <> go b
          | Ite (c, a, b) -> if go c then go a else go b
        in
        Hashtbl.add cache e.uid v;
        v
  in
  go e

let fold_nodes f init e =
  let seen = Hashtbl.create 64 in
  let acc = ref init in
  let rec go e =
    if not (Hashtbl.mem seen e.uid) then begin
      Hashtbl.add seen e.uid ();
      acc := f !acc e;
      match e.n with
      | True | Var _ -> ()
      | Not x -> go x
      | And es | Or es -> List.iter go es
      | Xor (a, b) ->
          go a;
          go b
      | Ite (c, a, b) ->
          go c;
          go a;
          go b
    end
  in
  go e;
  !acc

let vars e =
  fold_nodes (fun acc x -> match x.n with Var i -> i :: acc | _ -> acc) [] e
  |> List.sort_uniq Int.compare

let size e = fold_nodes (fun acc _ -> acc + 1) 0 e

let rec pp fmt e =
  match e.n with
  | True -> Format.pp_print_string fmt "true"
  | Var i -> Format.fprintf fmt "v%d" i
  | Not x when is_true x -> Format.pp_print_string fmt "false"
  | Not x -> Format.fprintf fmt "!%a" pp x
  | And es -> Format.fprintf fmt "(and %a)" pp_list es
  | Or es -> Format.fprintf fmt "(or %a)" pp_list es
  | Xor (a, b) -> Format.fprintf fmt "(xor %a %a)" pp a pp b
  | Ite (c, a, b) -> Format.fprintf fmt "(ite %a %a %a)" pp c pp a pp b

and pp_list fmt es =
  Format.pp_print_list ~pp_sep:Format.pp_print_space pp fmt es
