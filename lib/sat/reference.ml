let eval model clause =
  List.exists (fun l -> Lit.apply l model.(Lit.var l)) clause

let eval_all model clauses = List.for_all (eval model) clauses

(* Out-of-range variables must raise, exactly like Solver.add_clause:
   the differential fuzz harness relies on both engines rejecting the
   same inputs.  Without this check a variable equal to [num_vars] would
   silently evaluate as a constant (never enumerated, pinned false by the
   scratch model) and the cross-check would diverge. *)
let check_vars ~num_vars clauses =
  List.iter
    (fun clause ->
      List.iter
        (fun l ->
          if Lit.var l >= num_vars then
            invalid_arg
              (Printf.sprintf
                 "Reference: variable %d not allocated (num_vars = %d)"
                 (Lit.var l) num_vars))
        clause)
    clauses

let solve ~num_vars clauses =
  check_vars ~num_vars clauses;
  let model = Array.make (max num_vars 1) false in
  let rec go v =
    if v = num_vars then if eval_all model clauses then Some (Array.copy model) else None
    else begin
      model.(v) <- false;
      match go (v + 1) with
      | Some m -> Some m
      | None ->
          model.(v) <- true;
          go (v + 1)
    end
  in
  go 0

let count_models ~num_vars clauses =
  check_vars ~num_vars clauses;
  let model = Array.make (max num_vars 1) false in
  let rec go v acc =
    if v = num_vars then acc + if eval_all model clauses then 1 else 0
    else begin
      model.(v) <- false;
      let acc = go (v + 1) acc in
      model.(v) <- true;
      go (v + 1) acc
    end
  in
  go 0 0
