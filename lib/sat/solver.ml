(* A MiniSat-style CDCL solver.

   Conventions:
   - literals are stored as their integer codes (see Lit);
   - [assigns.(v)] is 0 when variable [v] is unassigned, 1 when true,
     -1 when false;
   - a clause's first two literals are its watched literals; the clause is
     registered in the watch lists of their negations, so [propagate]
     visits exactly the clauses that may have become unit or conflicting;
   - [reason.(v)] is the clause that propagated [v] (if any), which must
     never be deleted while it is a reason ("locked"). *)

exception Budget_exhausted
exception Interrupted

type clause = {
  mutable lits : int array;
  learnt : bool;
  mutable act : float;
  mutable deleted : bool;
}

type result = Sat | Unsat

type stats = {
  decisions : int;
  propagations : int;
  conflicts : int;
  restarts : int;
  learnt_literals : int;
  max_learnt_size : int;
}

type t = {
  mutable nvars : int;
  mutable clauses : clause Vec.t; (* problem clauses *)
  mutable learnts : clause Vec.t;
  mutable watches : clause Vec.t array; (* indexed by literal code *)
  mutable assigns : int array; (* per var: 0 / 1 / -1 *)
  mutable level : int array; (* per var *)
  mutable reason : clause option array; (* per var *)
  mutable polarity : bool array; (* saved phases *)
  mutable activity : float array; (* VSIDS *)
  mutable heap : int array; (* binary max-heap of vars by activity *)
  mutable heap_pos : int array; (* var -> heap index, or -1 *)
  mutable heap_size : int;
  trail : int Vec.t; (* literal codes, assignment order *)
  trail_lim : int Vec.t; (* trail size at each decision level *)
  mutable qhead : int;
  mutable okay : bool;
  mutable var_inc : float;
  mutable cla_inc : float;
  mutable max_learnts : float;
  mutable seen : bool array; (* scratch for analyze *)
  mutable model_ : bool array;
  mutable model_valid : bool;
  mutable conflict_budget : int option;
  mutable interrupt : (unit -> bool) option;
  mutable rng : int64 option; (* None = deterministic default search *)
  mutable proof_log : Buffer.t option;
  mutable originals : Lit.t list list; (* asserted clauses, for proof checking *)
  (* statistics *)
  mutable n_decisions : int;
  mutable n_propagations : int;
  mutable n_conflicts : int;
  mutable n_restarts : int;
  mutable n_learnt_literals : int;
  mutable max_learnt_size_ : int;
  learnt_hist : Telemetry.Metrics.Histogram.t; (* learnt clause sizes *)
  (* inner-loop phase timing, accumulated only while a trace is live
     ([timing]); shipped as per-solve deltas on the sat.solve span *)
  mutable timing : bool;
  mutable t_propagate : float;
  mutable t_analyze : float;
  mutable t_restart : float;
}

let var_decay = 1.0 /. 0.95
let clause_decay = 1.0 /. 0.999

let create () =
  {
    nvars = 0;
    clauses = Vec.create ();
    learnts = Vec.create ();
    watches = [||];
    assigns = [||];
    level = [||];
    reason = [||];
    polarity = [||];
    activity = [||];
    heap = [||];
    heap_pos = [||];
    heap_size = 0;
    trail = Vec.create ();
    trail_lim = Vec.create ();
    qhead = 0;
    okay = true;
    var_inc = 1.0;
    cla_inc = 1.0;
    max_learnts = 0.0;
    seen = [||];
    model_ = [||];
    model_valid = false;
    conflict_budget = None;
    interrupt = None;
    rng = None;
    proof_log = None;
    originals = [];
    n_decisions = 0;
    n_propagations = 0;
    n_conflicts = 0;
    n_restarts = 0;
    n_learnt_literals = 0;
    max_learnt_size_ = 0;
    learnt_hist = Telemetry.Metrics.Histogram.create ();
    timing = false;
    t_propagate = 0.0;
    t_analyze = 0.0;
    t_restart = 0.0;
  }

let nvars s = s.nvars
let nclauses s = Vec.size s.clauses
let ok s = s.okay

(* ---------- seeded randomization (SplitMix64, as in Channel.Prng) ---------- *)

(* Returns 0L when no seed is installed so all call sites stay deterministic
   by default. *)
let rng_next s =
  match s.rng with
  | None -> 0L
  | Some st ->
      let st = Int64.add st 0x9E3779B97F4A7C15L in
      s.rng <- Some st;
      let z =
        Int64.mul (Int64.logxor st (Int64.shift_right_logical st 30)) 0xBF58476D1CE4E5B9L
      in
      let z =
        Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL
      in
      Int64.logxor z (Int64.shift_right_logical z 31)

let rng_bool s = Int64.logand (rng_next s) 1L = 1L

(* uniform in [0, bound); bound << 2^62 here *)
let rng_below s bound =
  Int64.to_int (Int64.rem (Int64.logand (rng_next s) Int64.max_int) (Int64.of_int bound))

let check_interrupt s =
  match s.interrupt with Some f when f () -> raise Interrupted | _ -> ()

(* ---------- variable order heap (max-heap on activity) ---------- *)

let heap_less s a b = s.activity.(a) > s.activity.(b)

let heap_swap s i j =
  let vi = s.heap.(i) and vj = s.heap.(j) in
  s.heap.(i) <- vj;
  s.heap.(j) <- vi;
  s.heap_pos.(vj) <- i;
  s.heap_pos.(vi) <- j

let rec heap_up s i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if heap_less s s.heap.(i) s.heap.(p) then begin
      heap_swap s i p;
      heap_up s p
    end
  end

let rec heap_down s i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < s.heap_size && heap_less s s.heap.(l) s.heap.(!best) then best := l;
  if r < s.heap_size && heap_less s s.heap.(r) s.heap.(!best) then best := r;
  if !best <> i then begin
    heap_swap s i !best;
    heap_down s !best
  end

let heap_insert s v =
  if s.heap_pos.(v) < 0 then begin
    s.heap.(s.heap_size) <- v;
    s.heap_pos.(v) <- s.heap_size;
    s.heap_size <- s.heap_size + 1;
    heap_up s s.heap_pos.(v)
  end

let heap_remove_min s =
  let v = s.heap.(0) in
  s.heap_size <- s.heap_size - 1;
  if s.heap_size > 0 then begin
    s.heap.(0) <- s.heap.(s.heap_size);
    s.heap_pos.(s.heap.(0)) <- 0;
    heap_down s 0
  end;
  s.heap_pos.(v) <- -1;
  v

let heap_decrease s v = if s.heap_pos.(v) >= 0 then heap_up s s.heap_pos.(v)

(* ---------- growing per-variable state ---------- *)

let grow_array a n default =
  let old = Array.length a in
  if n <= old then a
  else begin
    let cap = max n (max 16 (old * 2)) in
    let b = Array.make cap default in
    Array.blit a 0 b 0 old;
    b
  end

let new_var s =
  let v = s.nvars in
  s.nvars <- v + 1;
  s.assigns <- grow_array s.assigns s.nvars 0;
  s.level <- grow_array s.level s.nvars 0;
  s.reason <- grow_array s.reason s.nvars None;
  s.polarity <- grow_array s.polarity s.nvars false;
  s.activity <- grow_array s.activity s.nvars 0.0;
  s.heap <- grow_array s.heap s.nvars 0;
  s.heap_pos <- grow_array s.heap_pos s.nvars (-1);
  s.seen <- grow_array s.seen s.nvars false;
  (if Array.length s.watches < 2 * s.nvars then begin
     let old = Array.length s.watches in
     let cap = max (2 * s.nvars) (max 32 (old * 2)) in
     let w = Array.init cap (fun i -> if i < old then s.watches.(i) else Vec.create ()) in
     s.watches <- w
   end);
  s.heap_pos.(v) <- -1;
  (* a seeded solver explores a random initial polarity per variable, so
     differently-seeded portfolio workers search different orthants *)
  if s.rng <> None then s.polarity.(v) <- rng_bool s;
  heap_insert s v;
  v

let new_vars s n =
  if n <= 0 then invalid_arg "Solver.new_vars: non-positive count";
  let first = new_var s in
  for _ = 2 to n do
    ignore (new_var s)
  done;
  first

(* ---------- assignment primitives ---------- *)

let lit_value s l =
  let v = s.assigns.(l lsr 1) in
  if v = 0 then 0 else if l land 1 = 0 then v else -v

let decision_level s = Vec.size s.trail_lim

(* Assign literal [l] to true with optional reason clause. *)
let enqueue s l reason =
  let v = l lsr 1 in
  s.assigns.(v) <- (if l land 1 = 0 then 1 else -1);
  s.level.(v) <- decision_level s;
  s.reason.(v) <- reason;
  Vec.push s.trail l

let cancel_until s lvl =
  if decision_level s > lvl then begin
    let bound = Vec.get s.trail_lim lvl in
    for i = Vec.size s.trail - 1 downto bound do
      let l = Vec.get s.trail i in
      let v = l lsr 1 in
      s.polarity.(v) <- l land 1 = 0;
      s.assigns.(v) <- 0;
      s.reason.(v) <- None;
      heap_insert s v
    done;
    Vec.shrink s.trail bound;
    Vec.shrink s.trail_lim lvl;
    s.qhead <- Vec.size s.trail
  end

(* ---------- activities ---------- *)

let var_bump s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then begin
    for i = 0 to s.nvars - 1 do
      s.activity.(i) <- s.activity.(i) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end;
  heap_decrease s v

let var_decay_activity s = s.var_inc <- s.var_inc *. var_decay

let clause_bump s c =
  c.act <- c.act +. s.cla_inc;
  if c.act > 1e20 then begin
    Vec.iter (fun c -> c.act <- c.act *. 1e-20) s.learnts;
    s.cla_inc <- s.cla_inc *. 1e-20
  end

let clause_decay_activity s = s.cla_inc <- s.cla_inc *. clause_decay

(* ---------- clause attachment ---------- *)

let attach s c =
  Vec.push s.watches.(Lit.code (Lit.neg (Lit.of_code c.lits.(0)))) c;
  Vec.push s.watches.(Lit.code (Lit.neg (Lit.of_code c.lits.(1)))) c

(* Deleted clauses are removed from watch lists lazily during propagation. *)
let mark_deleted c = c.deleted <- true

(* ---------- DRAT proof logging ---------- *)

let proof_line s prefix lits =
  match s.proof_log with
  | None -> ()
  | Some buf ->
      Buffer.add_string buf prefix;
      Array.iter
        (fun l ->
          Buffer.add_string buf (string_of_int (Lit.to_dimacs (Lit.of_code l)));
          Buffer.add_char buf ' ')
        lits;
      Buffer.add_string buf "0\n"

let proof_add s lits = proof_line s "" lits
let proof_delete s lits = proof_line s "d " lits
let proof_empty s = proof_add s [||]

(* ---------- propagation ---------- *)

exception Conflict of clause

let propagate s =
  try
    while s.qhead < Vec.size s.trail do
      let p = Vec.get s.trail s.qhead in
      s.qhead <- s.qhead + 1;
      s.n_propagations <- s.n_propagations + 1;
      let ws = s.watches.(p) in
      let i = ref 0 in
      let j = ref 0 in
      let n = Vec.size ws in
      (try
         while !i < n do
           let c = Vec.get ws !i in
           incr i;
           if c.deleted then () (* drop from watch list *)
           else begin
             let lits = c.lits in
             (* ensure the false literal (neg p) is at position 1 *)
             let np = p lxor 1 in
             if lits.(0) = np then begin
               lits.(0) <- lits.(1);
               lits.(1) <- np
             end;
             if lit_value s lits.(0) = 1 then begin
               (* clause already satisfied; keep watching *)
               Vec.set ws !j c;
               incr j
             end
             else begin
               (* look for a new literal to watch *)
               let len = Array.length lits in
               let k = ref 2 in
               let found = ref false in
               while (not !found) && !k < len do
                 if lit_value s lits.(!k) <> -1 then found := true else incr k
               done;
               if !found then begin
                 lits.(1) <- lits.(!k);
                 lits.(!k) <- np;
                 Vec.push s.watches.(lits.(1) lxor 1) c
                 (* not kept in this watch list *)
               end
               else begin
                 (* clause is unit or conflicting *)
                 Vec.set ws !j c;
                 incr j;
                 if lit_value s lits.(0) = -1 then begin
                   (* conflict: copy remaining watchers and bail out *)
                   while !i < n do
                     Vec.set ws !j (Vec.get ws !i);
                     incr i;
                     incr j
                   done;
                   Vec.shrink ws !j;
                   raise (Conflict c)
                 end
                 else enqueue s lits.(0) (Some c)
               end
             end
           end
         done;
         Vec.shrink ws !j
       with Conflict _ as e -> raise e)
    done;
    None
  with Conflict c -> Some c

(* ---------- conflict analysis (first UIP) ---------- *)

let litredundant s l =
  (* cheap clause minimization: l is redundant if its reason's other
     literals are all already seen or assigned at level 0 *)
  match s.reason.(l lsr 1) with
  | None -> false
  | Some c ->
      Array.for_all
        (fun q -> q = (l lxor 1) || s.seen.(q lsr 1) || s.level.(q lsr 1) = 0)
        c.lits

let analyze s conflict =
  let out = Vec.create () in
  Vec.push out 0;
  (* slot for the asserting literal *)
  let path = ref 0 in
  let p = ref (-1) in
  let index = ref (Vec.size s.trail - 1) in
  let c = ref conflict in
  let continue_loop = ref true in
  while !continue_loop do
    if !c.learnt then clause_bump s !c;
    let lits = !c.lits in
    (* a reason clause has its propagated literal at position 0: skip it *)
    let start = if !p = -1 then 0 else 1 in
    for k = start to Array.length lits - 1 do
      let q = lits.(k) in
      let v = q lsr 1 in
      if (not s.seen.(v)) && s.level.(v) > 0 then begin
        s.seen.(v) <- true;
        var_bump s v;
        if s.level.(v) >= decision_level s then incr path
        else Vec.push out q
      end
    done;
    (* find next literal on the trail to expand *)
    while not s.seen.((Vec.get s.trail !index) lsr 1) do
      decr index
    done;
    p := Vec.get s.trail !index;
    decr index;
    s.seen.(!p lsr 1) <- false;
    decr path;
    if !path <= 0 then continue_loop := false
    else
      c :=
        (match s.reason.(!p lsr 1) with
        | Some r -> r
        | None -> assert false)
  done;
  Vec.set out 0 (!p lxor 1);
  (* minimize: drop redundant non-asserting literals *)
  let kept = Vec.create () in
  Vec.push kept (Vec.get out 0);
  for i = 1 to Vec.size out - 1 do
    let l = Vec.get out i in
    if not (litredundant s l) then Vec.push kept l
  done;
  (* clear seen flags *)
  Vec.iter (fun l -> s.seen.(l lsr 1) <- false) out;
  (* compute backtrack level; move its literal to position 1 *)
  let nlits = Vec.size kept in
  let back_level = ref 0 in
  if nlits > 1 then begin
    let max_i = ref 1 in
    for i = 2 to nlits - 1 do
      if s.level.((Vec.get kept i) lsr 1) > s.level.((Vec.get kept !max_i) lsr 1)
      then max_i := i
    done;
    let tmp = Vec.get kept 1 in
    Vec.set kept 1 (Vec.get kept !max_i);
    Vec.set kept !max_i tmp;
    back_level := s.level.((Vec.get kept 1) lsr 1)
  end;
  (Array.of_list (Vec.to_list kept), !back_level)

(* ---------- learnt clause DB reduction ---------- *)

let locked s c =
  Array.length c.lits > 0
  &&
  match s.reason.(c.lits.(0) lsr 1) with Some r -> r == c | None -> false

let reduce_db s =
  Vec.sort (fun a b -> Float.compare a.act b.act) s.learnts;
  let n = Vec.size s.learnts in
  let keep = Vec.create () in
  let removed = ref 0 in
  for i = 0 to n - 1 do
    let c = Vec.get s.learnts i in
    if i < n / 2 && Array.length c.lits > 2 && not (locked s c) then begin
      proof_delete s c.lits;
      mark_deleted c;
      incr removed
    end
    else Vec.push keep c
  done;
  s.learnts <- keep

(* ---------- clause addition ---------- *)

let add_clause s lits =
  List.iter
    (fun l ->
      if Lit.var l >= s.nvars then
        invalid_arg
          (Printf.sprintf "Solver.add_clause: variable %d not allocated" (Lit.var l)))
    lits;
  if s.okay then begin
    if s.proof_log <> None then s.originals <- lits :: s.originals;
    cancel_until s 0;
    s.model_valid <- false;
    (* simplify: remove duplicates and false literals, detect tautology *)
    let lits = List.sort_uniq Int.compare (List.map Lit.code lits) in
    let tautology =
      List.exists (fun l -> List.mem (l lxor 1) lits || lit_value s l = 1) lits
    in
    if not tautology then begin
      let lits = List.filter (fun l -> lit_value s l <> -1) lits in
      match lits with
      | [] ->
          proof_empty s;
          s.okay <- false
      | [ l ] ->
          enqueue s l None;
          if propagate s <> None then begin
            proof_empty s;
            s.okay <- false
          end
      | l0 :: l1 :: _ ->
          ignore l0;
          ignore l1;
          let c =
            { lits = Array.of_list lits; learnt = false; act = 0.0; deleted = false }
          in
          Vec.push s.clauses c;
          attach s c
    end
  end

(* ---------- search ---------- *)

let luby y i =
  (* size of the smallest complete subsequence containing index i *)
  let size = ref 1 and seq = ref 0 in
  while !size < i + 1 do
    incr seq;
    size := (2 * !size) + 1
  done;
  let i = ref i in
  while !size - 1 <> !i do
    size := (!size - 1) / 2;
    decr seq;
    i := !i mod !size
  done;
  y ** float_of_int !seq

let pick_branch_var s =
  (* seeded solvers occasionally branch on a uniformly random unassigned
     variable (a VSIDS tiebreak-style diversification, ~2% of decisions).
     The variable is left in the heap: popping it later as an assigned
     entry is harmless, exactly like stale entries after backtracking. *)
  let random_pick =
    if s.rng <> None && s.heap_size > 0 && rng_below s 50 = 0 then begin
      let v = s.heap.(rng_below s s.heap_size) in
      if s.assigns.(v) = 0 then Some v else None
    end
    else None
  in
  match random_pick with
  | Some v -> v
  | None ->
      let rec go () =
        if s.heap_size = 0 then -1
        else
          let v = heap_remove_min s in
          if s.assigns.(v) = 0 then v else go ()
      in
      go ()

type search_outcome = Out_sat | Out_unsat | Out_restart

(* process-wide registry metrics, fed alongside each solver's own
   counters; updates are no-ops (one atomic load) without a live sink *)
let m_learnt_size = Telemetry.Metrics.histogram "sat.learnt_size"
let m_decisions = Telemetry.Metrics.counter "sat.decisions"
let m_propagations = Telemetry.Metrics.counter "sat.propagations"
let m_conflicts = Telemetry.Metrics.counter "sat.conflicts"
let m_restarts = Telemetry.Metrics.counter "sat.restarts"
let m_solve_calls = Telemetry.Metrics.counter "sat.solve_calls"

let record_learnt s lits back_level =
  proof_add s lits;
  s.n_learnt_literals <- s.n_learnt_literals + Array.length lits;
  if Array.length lits > s.max_learnt_size_ then
    s.max_learnt_size_ <- Array.length lits;
  Telemetry.Metrics.Histogram.observe s.learnt_hist (Array.length lits);
  Telemetry.Metrics.observe m_learnt_size (Array.length lits);
  cancel_until s back_level;
  if Array.length lits = 1 then enqueue s lits.(0) None
  else begin
    let c = { lits; learnt = true; act = 0.0; deleted = false } in
    Vec.push s.learnts c;
    attach s c;
    clause_bump s c;
    enqueue s lits.(0) (Some c)
  end

let search s ~assumptions ~conflict_limit =
  let conflicts = ref 0 in
  let outcome = ref None in
  while !outcome = None do
    match
      (* [timing] is only set while a trace is live, so the two clock
         reads per propagation stay off the default path *)
      if not s.timing then propagate s
      else begin
        let t0 = Telemetry.now () in
        let r = propagate s in
        s.t_propagate <- s.t_propagate +. (Telemetry.now () -. t0);
        r
      end
    with
    | Some confl ->
        s.n_conflicts <- s.n_conflicts + 1;
        incr conflicts;
        if s.n_conflicts land 63 = 0 then check_interrupt s;
        (match s.conflict_budget with
        | Some b when s.n_conflicts > b -> raise Budget_exhausted
        | _ -> ());
        if decision_level s = 0 then begin
          proof_empty s;
          s.okay <- false;
          outcome := Some Out_unsat
        end
        else begin
          let lits, back_level =
            if not s.timing then analyze s confl
            else begin
              let t0 = Telemetry.now () in
              let r = analyze s confl in
              s.t_analyze <- s.t_analyze +. (Telemetry.now () -. t0);
              r
            end
          in
          record_learnt s lits back_level;
          var_decay_activity s;
          clause_decay_activity s
        end
    | None ->
        if float_of_int (Vec.size s.learnts) >= s.max_learnts then begin
          let t0 = if s.timing then Telemetry.now () else 0.0 in
          reduce_db s;
          s.max_learnts <- s.max_learnts *. 1.1;
          if s.timing then s.t_restart <- s.t_restart +. (Telemetry.now () -. t0)
        end;
        if conflict_limit >= 0 && !conflicts >= conflict_limit then begin
          let t0 = if s.timing then Telemetry.now () else 0.0 in
          cancel_until s 0;
          s.n_restarts <- s.n_restarts + 1;
          if s.timing then s.t_restart <- s.t_restart +. (Telemetry.now () -. t0);
          outcome := Some Out_restart
        end
        else begin
          (* take assumptions first, as pseudo-decisions *)
          let dl = decision_level s in
          let next_lit =
            if dl < List.length assumptions then begin
              let a = Lit.code (List.nth assumptions dl) in
              match lit_value s a with
              | 1 -> `Dummy (* already satisfied: open an empty level *)
              | -1 -> `Conflict_assumption
              | _ -> `Decide a
            end
            else
              match pick_branch_var s with
              | -1 -> `All_assigned
              | v ->
                  let phase = s.polarity.(v) in
                  (* seeded solvers flip the saved phase on ~2% of decisions *)
                  let phase =
                    if s.rng <> None && rng_below s 50 = 0 then not phase else phase
                  in
                  `Decide ((v * 2) lor if phase then 0 else 1)
          in
          match next_lit with
          | `All_assigned -> outcome := Some Out_sat
          | `Conflict_assumption ->
              outcome := Some Out_unsat
          | `Dummy -> Vec.push s.trail_lim (Vec.size s.trail)
          | `Decide l ->
              s.n_decisions <- s.n_decisions + 1;
              if s.n_decisions land 1023 = 0 then check_interrupt s;
              Vec.push s.trail_lim (Vec.size s.trail);
              enqueue s l None
        end
  done;
  match !outcome with Some o -> o | None -> assert false

(* Fault-injection probe: a process-global hook invoked at instrumented
   points (here and in higher layers via [probe]).  [None] (the default)
   costs one load and a branch; installers (Synth.Fault) must set it before
   spawning worker domains.  The hook may raise — that is the point: an
   injected exception propagates out of the probe site exactly as a real
   failure would. *)
let probe_hook : (string -> unit) option ref = ref None
let set_probe f = probe_hook := f
let probe site = match !probe_hook with None -> () | Some f -> f site

let solve_body ?(assumptions = []) s =
  probe "sat.solve";
  s.model_valid <- false;
  if not s.okay then Unsat
  else begin
    cancel_until s 0;
    s.max_learnts <- max 1000.0 (float_of_int (Vec.size s.clauses) *. 0.5);
    let result = ref None in
    let restart_i = ref 0 in
    (try
       while !result = None do
         let limit = int_of_float (luby 2.0 !restart_i *. 100.0) in
         incr restart_i;
         match search s ~assumptions ~conflict_limit:limit with
         | Out_sat ->
             s.model_ <- Array.init s.nvars (fun v -> s.assigns.(v) = 1);
             s.model_valid <- true;
             result := Some Sat
         | Out_unsat -> result := Some Unsat
         | Out_restart -> ()
       done
     with
    | Budget_exhausted ->
        cancel_until s 0;
        raise Budget_exhausted
    | Interrupted ->
        cancel_until s 0;
        raise Interrupted);
    cancel_until s 0;
    match !result with Some r -> r | None -> assert false
  end

let stats s =
  {
    decisions = s.n_decisions;
    propagations = s.n_propagations;
    conflicts = s.n_conflicts;
    restarts = s.n_restarts;
    learnt_literals = s.n_learnt_literals;
    max_learnt_size = s.max_learnt_size_;
  }

let learnt_size_histogram s = Telemetry.Metrics.Histogram.snapshot s.learnt_hist

(* Each solve call becomes a [sat.solve] span whose end event carries the
   per-call statistics deltas (the counters themselves are cumulative),
   including the inner-loop phase split (propagate/analyze/restart
   seconds) that [trace report] attributes wall time with. *)
let solve ?assumptions s =
  if not (Telemetry.enabled ()) then solve_body ?assumptions s
  else begin
    let before = stats s in
    let hist0 = learnt_size_histogram s in
    let t_prop0 = s.t_propagate
    and t_ana0 = s.t_analyze
    and t_rst0 = s.t_restart in
    let timing0 = s.timing in
    s.timing <- true;
    let sp =
      Telemetry.begin_span "sat.solve"
        ~fields:
          [
            ("vars", Telemetry.int s.nvars);
            ("clauses", Telemetry.int (Vec.size s.clauses));
          ]
    in
    let finish result =
      s.timing <- timing0;
      let a = stats s in
      let delta =
        Telemetry.Metrics.Hist.sub (learnt_size_histogram s) hist0
      in
      Telemetry.Metrics.incr m_solve_calls 1;
      Telemetry.Metrics.incr m_decisions (a.decisions - before.decisions);
      Telemetry.Metrics.incr m_propagations
        (a.propagations - before.propagations);
      Telemetry.Metrics.incr m_conflicts (a.conflicts - before.conflicts);
      Telemetry.Metrics.incr m_restarts (a.restarts - before.restarts);
      Telemetry.end_span sp
        ~fields:
          [
            ("result", Telemetry.str result);
            ("decisions", Telemetry.int (a.decisions - before.decisions));
            ( "propagations",
              Telemetry.int (a.propagations - before.propagations) );
            ("conflicts", Telemetry.int (a.conflicts - before.conflicts));
            ("restarts", Telemetry.int (a.restarts - before.restarts));
            ( "learnt_size_hist",
              Telemetry.str (Telemetry.Metrics.Hist.to_csv delta) );
            ("propagate_s", Telemetry.float (s.t_propagate -. t_prop0));
            ("analyze_s", Telemetry.float (s.t_analyze -. t_ana0));
            ("restart_s", Telemetry.float (s.t_restart -. t_rst0));
          ]
    in
    match solve_body ?assumptions s with
    | Sat ->
        finish "sat";
        Sat
    | Unsat ->
        finish "unsat";
        Unsat
    | exception Budget_exhausted ->
        finish "budget";
        raise Budget_exhausted
    | exception Interrupted ->
        finish "interrupted";
        raise Interrupted
  end

let value s l =
  if not s.model_valid then invalid_arg "Solver.value: no model available";
  let b = s.model_.(Lit.var l) in
  if Lit.sign l then b else not b

let value_var s v =
  if not s.model_valid then invalid_arg "Solver.value_var: no model available";
  s.model_.(v)

let model s =
  if not s.model_valid then invalid_arg "Solver.model: no model available";
  Array.copy s.model_

let set_conflict_budget s b = s.conflict_budget <- b
let set_interrupt s f = s.interrupt <- f

let set_seed s seed =
  s.rng <- Some (Int64.of_int seed);
  (* scramble the saved phases of already-allocated variables so the first
     descent differs from the unseeded solver's all-false default *)
  for v = 0 to s.nvars - 1 do
    if s.assigns.(v) = 0 then s.polarity.(v) <- rng_bool s
  done

let enable_proof s =
  if Vec.size s.clauses > 0 || Vec.size s.trail > 0 then
    invalid_arg "Solver.enable_proof: must be called before adding clauses";
  s.proof_log <- Some (Buffer.create 4096)

let proof s = Option.map Buffer.contents s.proof_log
let original_clauses s = List.rev s.originals
