(* A CDCL solver engineered for raw propagation speed.

   The layout is MiniSat/Glucose-shaped but flattened:

   - Clauses of size >= 3 live in one flat int arena (a Bigarray, so
     loads are unboxed and bounds-unchecked on the hot path), addressed
     by word offsets ("crefs").  Layout at cref:
       [0] header = size lsl 2 | learnt lsl 1 | deleted
       [1] LBD (learnt clauses; 0 for originals), doubles as the
           forwarding slot during arena compaction
       [2..2+size-1] literal codes
   - Binary clauses never touch the arena: a dedicated implication
     store maps each literal p to the array of literals directly
     implied when p is assigned true.  Propagating a binary costs one
     array read and one value lookup — no clause dereference at all.
   - Watch lists are flat int arrays of (cref, blocker) pairs.  A
     watcher whose blocking literal is already true is skipped without
     touching the arena.
   - [vals] is indexed by literal code (1 true / -1 false / 0 unset),
     set pairwise on assignment, so literal valuation is one load.
   - reasons are tagged ints: -1 none, even = cref lsl 1, odd =
     (other_literal lsl 1) | 1 for binary propagation.
   - cref 0 is a reserved 2-literal scratch clause used to materialize
     binary conflicts for conflict analysis; real clauses start at 4.

   Learnt clauses carry their LBD (number of distinct decision levels,
   computed at learn time); database reduction is glue-aware: glue
   clauses (LBD <= 2), locked clauses and binaries are never removed,
   the worst half by (LBD, size) goes first.  Inprocessing (on-the-fly
   backward subsumption + self-subsuming resolution) runs at restart
   boundaries every [inprocess_interval] conflicts; every rewrite is
   DRAT-logged (strengthened clause added before the fat one is
   deleted, so the proof stays a valid RUP sequence).  The arena is
   compacted when enough of it is dead. *)

exception Budget_exhausted
exception Interrupted

type result = Sat | Unsat

type stats = {
  decisions : int;
  propagations : int;
  conflicts : int;
  restarts : int;
  learnt_literals : int;
  max_learnt_size : int;
  reduces : int;
  subsumed : int;
  strengthened : int;
  compactions : int;
}

type arena = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

let ba_get : arena -> int -> int = Bigarray.Array1.unsafe_get
let ba_set : arena -> int -> int -> unit = Bigarray.Array1.unsafe_set

type t = {
  mutable nvars : int;
  (* clause arena *)
  mutable arena : arena;
  mutable arena_size : int; (* first free word *)
  mutable arena_wasted : int; (* words owned by deleted clauses *)
  clauses : int Vec.t; (* crefs of original size>=3 clauses *)
  mutable learnts : int Vec.t; (* crefs of learnt size>=3 clauses *)
  mutable n_live_orig : int; (* live stored originals, incl. binaries *)
  (* watchers: per literal, flat (cref, blocker) pairs *)
  mutable w_data : int array array;
  mutable w_size : int array;
  (* binary implication store: per literal, implied literals *)
  mutable bin_data : int array array;
  mutable bin_size : int array;
  (* assignment *)
  mutable vals : int array; (* per literal code: 0 / 1 / -1 *)
  mutable level : int array; (* per var *)
  mutable reason : int array; (* per var: tagged, -1 = none *)
  mutable polarity : bool array; (* saved phases *)
  mutable activity : float array; (* VSIDS *)
  mutable heap : int array; (* binary max-heap of vars by activity *)
  mutable heap_pos : int array; (* var -> heap index, or -1 *)
  mutable heap_size : int;
  mutable trail : int array; (* literal codes, assignment order *)
  mutable trail_size : int;
  trail_lim : int Vec.t; (* trail size at each decision level *)
  mutable qhead : int;
  mutable okay : bool;
  mutable var_inc : float;
  mutable max_learnts : float;
  mutable reduce_limit : int option; (* test knob: pin max_learnts *)
  mutable inprocess_interval : int option; (* None = inprocessing off *)
  mutable conflicts_at_inprocess : int;
  mutable seen : bool array; (* scratch for analyze *)
  mutable level_stamp : int array; (* scratch for LBD *)
  mutable stamp_ctr : int;
  mutable model_ : bool array;
  mutable model_valid : bool;
  mutable conflict_budget : int option;
  mutable interrupt : (unit -> bool) option;
  mutable rng : int64 option; (* None = deterministic default search *)
  mutable proof_log : Buffer.t option;
  mutable originals : Lit.t list list; (* asserted clauses, for proof checking *)
  (* statistics *)
  mutable n_decisions : int;
  mutable n_propagations : int;
  mutable n_conflicts : int;
  mutable n_restarts : int;
  mutable n_learnt_literals : int;
  mutable max_learnt_size_ : int;
  mutable n_reduces : int;
  mutable n_subsumed : int;
  mutable n_strengthened : int;
  mutable n_compactions : int;
  learnt_hist : Telemetry.Metrics.Histogram.t; (* learnt clause sizes *)
  (* inner-loop phase timing, accumulated only while a trace is live
     ([timing]); shipped as per-solve deltas on the sat.solve span *)
  mutable timing : bool;
  mutable t_propagate : float;
  mutable t_analyze : float;
  mutable t_restart : float;
}

let var_decay = 1.0 /. 0.95

(* ---------- arena primitives ---------- *)

let cref_scratch = 0
let arena_start = 4

let header_make ~size ~learnt = (size lsl 2) lor (if learnt then 2 else 0)
let header_size h = h lsr 2
let header_learnt h = h land 2 <> 0
let header_deleted h = h land 1 <> 0

let make_arena cap : arena = Bigarray.Array1.create Bigarray.int Bigarray.c_layout cap

let create () =
  let arena = make_arena 1024 in
  (* reserved scratch clause for materializing binary conflicts *)
  ba_set arena cref_scratch (header_make ~size:2 ~learnt:false);
  ba_set arena 1 0;
  ba_set arena 2 0;
  ba_set arena 3 0;
  {
    nvars = 0;
    arena;
    arena_size = arena_start;
    arena_wasted = 0;
    clauses = Vec.create ();
    learnts = Vec.create ();
    n_live_orig = 0;
    w_data = [||];
    w_size = [||];
    bin_data = [||];
    bin_size = [||];
    vals = [||];
    level = [||];
    reason = [||];
    polarity = [||];
    activity = [||];
    heap = [||];
    heap_pos = [||];
    heap_size = 0;
    trail = [||];
    trail_size = 0;
    trail_lim = Vec.create ();
    qhead = 0;
    okay = true;
    var_inc = 1.0;
    max_learnts = 0.0;
    reduce_limit = None;
    inprocess_interval = Some 8000;
    conflicts_at_inprocess = 0;
    seen = [||];
    level_stamp = [||];
    stamp_ctr = 0;
    model_ = [||];
    model_valid = false;
    conflict_budget = None;
    interrupt = None;
    rng = None;
    proof_log = None;
    originals = [];
    n_decisions = 0;
    n_propagations = 0;
    n_conflicts = 0;
    n_restarts = 0;
    n_learnt_literals = 0;
    max_learnt_size_ = 0;
    n_reduces = 0;
    n_subsumed = 0;
    n_strengthened = 0;
    n_compactions = 0;
    learnt_hist = Telemetry.Metrics.Histogram.create ();
    timing = false;
    t_propagate = 0.0;
    t_analyze = 0.0;
    t_restart = 0.0;
  }

let nvars s = s.nvars
let nclauses s = s.n_live_orig
let ok s = s.okay

let arena_alloc s words =
  let cap = Bigarray.Array1.dim s.arena in
  if s.arena_size + words > cap then begin
    let ncap = max (s.arena_size + words) (cap * 2) in
    let na = make_arena ncap in
    Bigarray.Array1.blit
      (Bigarray.Array1.sub s.arena 0 s.arena_size)
      (Bigarray.Array1.sub na 0 s.arena_size);
    s.arena <- na
  end;
  let cr = s.arena_size in
  s.arena_size <- s.arena_size + words;
  cr

(* Store a size>=3 clause in the arena; returns its cref. *)
let alloc_clause s lits ~learnt ~lbd =
  let size = Array.length lits in
  let cr = arena_alloc s (2 + size) in
  let a = s.arena in
  ba_set a cr (header_make ~size ~learnt);
  ba_set a (cr + 1) lbd;
  for i = 0 to size - 1 do
    ba_set a (cr + 2 + i) lits.(i)
  done;
  cr

let mark_deleted s cr =
  let a = s.arena in
  let h = ba_get a cr in
  if not (header_deleted h) then begin
    ba_set a cr (h lor 1);
    s.arena_wasted <- s.arena_wasted + 2 + header_size h
  end

(* ---------- seeded randomization (SplitMix64, as in Channel.Prng) ---------- *)

(* Returns 0L when no seed is installed so all call sites stay deterministic
   by default. *)
let rng_next s =
  match s.rng with
  | None -> 0L
  | Some st ->
      let st = Int64.add st 0x9E3779B97F4A7C15L in
      s.rng <- Some st;
      let z =
        Int64.mul (Int64.logxor st (Int64.shift_right_logical st 30)) 0xBF58476D1CE4E5B9L
      in
      let z =
        Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL
      in
      Int64.logxor z (Int64.shift_right_logical z 31)

let rng_bool s = Int64.logand (rng_next s) 1L = 1L

(* uniform in [0, bound); bound << 2^62 here *)
let rng_below s bound =
  Int64.to_int (Int64.rem (Int64.logand (rng_next s) Int64.max_int) (Int64.of_int bound))

let check_interrupt s =
  match s.interrupt with Some f when f () -> raise Interrupted | _ -> ()

(* ---------- variable order heap (max-heap on activity) ---------- *)

let heap_less s a b = s.activity.(a) > s.activity.(b)

let heap_swap s i j =
  let vi = s.heap.(i) and vj = s.heap.(j) in
  s.heap.(i) <- vj;
  s.heap.(j) <- vi;
  s.heap_pos.(vj) <- i;
  s.heap_pos.(vi) <- j

let rec heap_up s i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if heap_less s s.heap.(i) s.heap.(p) then begin
      heap_swap s i p;
      heap_up s p
    end
  end

let rec heap_down s i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < s.heap_size && heap_less s s.heap.(l) s.heap.(!best) then best := l;
  if r < s.heap_size && heap_less s s.heap.(r) s.heap.(!best) then best := r;
  if !best <> i then begin
    heap_swap s i !best;
    heap_down s !best
  end

let heap_insert s v =
  if s.heap_pos.(v) < 0 then begin
    s.heap.(s.heap_size) <- v;
    s.heap_pos.(v) <- s.heap_size;
    s.heap_size <- s.heap_size + 1;
    heap_up s s.heap_pos.(v)
  end

let heap_remove_min s =
  let v = s.heap.(0) in
  s.heap_size <- s.heap_size - 1;
  if s.heap_size > 0 then begin
    s.heap.(0) <- s.heap.(s.heap_size);
    s.heap_pos.(s.heap.(0)) <- 0;
    heap_down s 0
  end;
  s.heap_pos.(v) <- -1;
  v

let heap_decrease s v = if s.heap_pos.(v) >= 0 then heap_up s s.heap_pos.(v)

(* ---------- growing per-variable state ---------- *)

let grow_array a n default =
  let old = Array.length a in
  if n <= old then a
  else begin
    let cap = max n (max 16 (old * 2)) in
    let b = Array.make cap default in
    Array.blit a 0 b 0 old;
    b
  end

let new_var s =
  let v = s.nvars in
  s.nvars <- v + 1;
  s.vals <- grow_array s.vals (2 * s.nvars) 0;
  s.level <- grow_array s.level s.nvars 0;
  s.reason <- grow_array s.reason s.nvars (-1);
  s.polarity <- grow_array s.polarity s.nvars false;
  s.activity <- grow_array s.activity s.nvars 0.0;
  s.heap <- grow_array s.heap s.nvars 0;
  s.heap_pos <- grow_array s.heap_pos s.nvars (-1);
  s.seen <- grow_array s.seen s.nvars false;
  s.level_stamp <- grow_array s.level_stamp (s.nvars + 1) 0;
  s.trail <- grow_array s.trail s.nvars 0;
  s.w_data <- grow_array s.w_data (2 * s.nvars) [||];
  s.w_size <- grow_array s.w_size (2 * s.nvars) 0;
  s.bin_data <- grow_array s.bin_data (2 * s.nvars) [||];
  s.bin_size <- grow_array s.bin_size (2 * s.nvars) 0;
  s.reason.(v) <- -1;
  s.heap_pos.(v) <- -1;
  (* a seeded solver explores a random initial polarity per variable, so
     differently-seeded portfolio workers search different orthants *)
  if s.rng <> None then s.polarity.(v) <- rng_bool s;
  heap_insert s v;
  v

let new_vars s n =
  if n <= 0 then invalid_arg "Solver.new_vars: non-positive count";
  let first = new_var s in
  for _ = 2 to n do
    ignore (new_var s)
  done;
  first

(* ---------- watcher / binary-store primitives ---------- *)

let push2 data size_arr idx a b =
  let d = data.(idx) in
  let n = size_arr.(idx) in
  let d =
    if n + 2 > Array.length d then begin
      let nd = Array.make (max 8 (2 * Array.length d)) 0 in
      Array.blit d 0 nd 0 n;
      data.(idx) <- nd;
      nd
    end
    else d
  in
  Array.unsafe_set d n a;
  Array.unsafe_set d (n + 1) b;
  size_arr.(idx) <- n + 2

let push1 data size_arr idx a =
  let d = data.(idx) in
  let n = size_arr.(idx) in
  let d =
    if n + 1 > Array.length d then begin
      let nd = Array.make (max 4 (2 * Array.length d)) 0 in
      Array.blit d 0 nd 0 n;
      data.(idx) <- nd;
      nd
    end
    else d
  in
  Array.unsafe_set d n a;
  size_arr.(idx) <- n + 1

(* Watch a stored clause via its first two literals (with each other as
   blocking literal). *)
let attach s cr =
  let a = s.arena in
  let l0 = ba_get a (cr + 2) and l1 = ba_get a (cr + 3) in
  push2 s.w_data s.w_size (l0 lxor 1) cr l1;
  push2 s.w_data s.w_size (l1 lxor 1) cr l0

let attach_binary s a b =
  push1 s.bin_data s.bin_size (Lit.code a lxor 1) (Lit.code b);
  push1 s.bin_data s.bin_size (Lit.code b lxor 1) (Lit.code a)

(* ---------- assignment primitives ---------- *)

let lit_value s l = Array.unsafe_get s.vals l
let decision_level s = Vec.size s.trail_lim

(* Assign literal [l] true with a tagged reason (-1 = none). *)
let enqueue s l reason =
  let v = l lsr 1 in
  Array.unsafe_set s.vals l 1;
  Array.unsafe_set s.vals (l lxor 1) (-1);
  s.level.(v) <- decision_level s;
  s.reason.(v) <- reason;
  s.trail.(s.trail_size) <- l;
  s.trail_size <- s.trail_size + 1

let cancel_until s lvl =
  if decision_level s > lvl then begin
    let bound = Vec.get s.trail_lim lvl in
    for i = s.trail_size - 1 downto bound do
      let l = s.trail.(i) in
      let v = l lsr 1 in
      s.polarity.(v) <- l land 1 = 0;
      s.vals.(l) <- 0;
      s.vals.(l lxor 1) <- 0;
      s.reason.(v) <- -1;
      heap_insert s v
    done;
    s.trail_size <- bound;
    Vec.shrink s.trail_lim lvl;
    s.qhead <- s.trail_size
  end

(* ---------- activities ---------- *)

let var_bump s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then begin
    for i = 0 to s.nvars - 1 do
      s.activity.(i) <- s.activity.(i) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end;
  heap_decrease s v

let var_decay_activity s = s.var_inc <- s.var_inc *. var_decay

(* ---------- DRAT proof logging ---------- *)

let proof_line s prefix lits =
  match s.proof_log with
  | None -> ()
  | Some buf ->
      Buffer.add_string buf prefix;
      Array.iter
        (fun l ->
          Buffer.add_string buf (string_of_int (Lit.to_dimacs (Lit.of_code l)));
          Buffer.add_char buf ' ')
        lits;
      Buffer.add_string buf "0\n"

let proof_add s lits = proof_line s "" lits
let proof_delete s lits = proof_line s "d " lits
let proof_empty s = proof_add s [||]

let clause_lits s cr =
  let a = s.arena in
  let size = header_size (ba_get a cr) in
  Array.init size (fun i -> ba_get a (cr + 2 + i))

let proof_delete_clause s cr = proof_delete s (clause_lits s cr)

(* ---------- propagation ---------- *)

(* Returns the cref of a conflicting clause, or -1.  Binary conflicts
   are materialized in the reserved scratch clause at cref 0. *)
let propagate s =
  let confl = ref (-1) in
  let vals = s.vals in
  while !confl < 0 && s.qhead < s.trail_size do
    let p = Array.unsafe_get s.trail s.qhead in
    s.qhead <- s.qhead + 1;
    s.n_propagations <- s.n_propagations + 1;
    (* binary implications first: cheapest, and finding conflicts early
       keeps the expensive watcher scan short *)
    let bd = Array.unsafe_get s.bin_data p in
    let bn = Array.unsafe_get s.bin_size p in
    let i = ref 0 in
    while !confl < 0 && !i < bn do
      let q = Array.unsafe_get bd !i in
      let v = Array.unsafe_get vals q in
      if v < 0 then begin
        (* conflict: scratch clause {q, ~p} *)
        let a = s.arena in
        ba_set a (cref_scratch + 2) q;
        ba_set a (cref_scratch + 3) (p lxor 1);
        confl := cref_scratch
      end
      else if v = 0 then enqueue s q (((p lxor 1) lsl 1) lor 1);
      incr i
    done;
    if !confl < 0 then begin
      let wd = Array.unsafe_get s.w_data p in
      let wn = Array.unsafe_get s.w_size p in
      let a = s.arena in
      let i = ref 0 and j = ref 0 in
      while !i < wn do
        let cr = Array.unsafe_get wd !i in
        let blocker = Array.unsafe_get wd (!i + 1) in
        if Array.unsafe_get vals blocker > 0 then begin
          (* blocking literal satisfied: keep, no clause access *)
          Array.unsafe_set wd !j cr;
          Array.unsafe_set wd (!j + 1) blocker;
          j := !j + 2;
          i := !i + 2
        end
        else begin
          let h = ba_get a cr in
          if header_deleted h then i := !i + 2 (* drop lazily *)
          else begin
            (* ensure the false literal (neg p) is at position 1 *)
            let np = p lxor 1 in
            let l0 = ba_get a (cr + 2) in
            let l1 = ba_get a (cr + 3) in
            let first =
              if l0 = np then begin
                ba_set a (cr + 2) l1;
                ba_set a (cr + 3) np;
                l1
              end
              else l0
            in
            if first <> blocker && Array.unsafe_get vals first > 0 then begin
              (* satisfied by the other watch: keep, better blocker *)
              Array.unsafe_set wd !j cr;
              Array.unsafe_set wd (!j + 1) first;
              j := !j + 2;
              i := !i + 2
            end
            else begin
              (* look for a new literal to watch *)
              let size = header_size h in
              let k = ref 2 in
              let found = ref (-1) in
              while !found < 0 && !k < size do
                let lk = ba_get a (cr + 2 + !k) in
                if Array.unsafe_get vals lk >= 0 then found := !k else incr k
              done;
              if !found >= 0 then begin
                let lk = ba_get a (cr + 2 + !found) in
                ba_set a (cr + 3) lk;
                ba_set a (cr + 2 + !found) np;
                push2 s.w_data s.w_size (lk lxor 1) cr first;
                i := !i + 2 (* moved to another list *)
              end
              else begin
                (* clause is unit or conflicting: keep the watcher *)
                Array.unsafe_set wd !j cr;
                Array.unsafe_set wd (!j + 1) first;
                j := !j + 2;
                i := !i + 2;
                if Array.unsafe_get vals first < 0 then begin
                  (* conflict: copy remaining watchers and bail out *)
                  while !i < wn do
                    Array.unsafe_set wd !j (Array.unsafe_get wd !i);
                    Array.unsafe_set wd (!j + 1) (Array.unsafe_get wd (!i + 1));
                    i := !i + 2;
                    j := !j + 2
                  done;
                  confl := cr
                end
                else enqueue s first (cr lsl 1)
              end
            end
          end
        end
      done;
      Array.unsafe_set s.w_size p !j
    end
  done;
  !confl

(* ---------- conflict analysis (first UIP) ---------- *)

(* Iterate the literals of a tagged reason, skipping the propagated
   literal itself (an arena reason clause has it at position 0). *)
let reason_iter s r ~f =
  if r land 1 = 1 then f (r lsr 1)
  else begin
    let cr = r lsr 1 in
    let a = s.arena in
    let size = header_size (ba_get a cr) in
    for k = 1 to size - 1 do
      f (ba_get a (cr + 2 + k))
    done
  end

let litredundant s l =
  (* cheap clause minimization: l is redundant if its reason's other
     literals are all already seen or assigned at level 0 *)
  let r = s.reason.(l lsr 1) in
  if r < 0 then false
  else if r land 1 = 1 then begin
    let q = r lsr 1 in
    q = l lxor 1 || s.seen.(q lsr 1) || s.level.(q lsr 1) = 0
  end
  else begin
    let cr = r lsr 1 in
    let a = s.arena in
    let size = header_size (ba_get a cr) in
    let ok = ref true in
    let k = ref 0 in
    while !ok && !k < size do
      let q = ba_get a (cr + 2 + !k) in
      if not (q = l lxor 1 || s.seen.(q lsr 1) || s.level.(q lsr 1) = 0) then
        ok := false;
      incr k
    done;
    !ok
  end

(* LBD: number of distinct decision levels among [lits]. *)
let compute_lbd s lits =
  s.stamp_ctr <- s.stamp_ctr + 1;
  let stamp = s.stamp_ctr in
  let lbd = ref 0 in
  Array.iter
    (fun l ->
      let lv = s.level.(l lsr 1) in
      if s.level_stamp.(lv) <> stamp then begin
        s.level_stamp.(lv) <- stamp;
        incr lbd
      end)
    lits;
  !lbd

let analyze s conflict =
  let out = Vec.create () in
  Vec.push out 0;
  (* slot for the asserting literal *)
  let path = ref 0 in
  let p = ref (-1) in
  let index = ref (s.trail_size - 1) in
  let continue_loop = ref true in
  let expand q =
    let v = q lsr 1 in
    if (not s.seen.(v)) && s.level.(v) > 0 then begin
      s.seen.(v) <- true;
      var_bump s v;
      if s.level.(v) >= decision_level s then incr path else Vec.push out q
    end
  in
  (* the conflict clause contributes all its literals *)
  let a = s.arena in
  let csize = header_size (ba_get a conflict) in
  for k = 0 to csize - 1 do
    expand (ba_get a (conflict + 2 + k))
  done;
  while !continue_loop do
    (* find next literal on the trail to expand *)
    while not s.seen.(s.trail.(!index) lsr 1) do
      decr index
    done;
    p := s.trail.(!index);
    decr index;
    s.seen.(!p lsr 1) <- false;
    decr path;
    if !path <= 0 then continue_loop := false
    else begin
      let r = s.reason.(!p lsr 1) in
      reason_iter s r ~f:expand
    end
  done;
  Vec.set out 0 (!p lxor 1);
  (* minimize: drop redundant non-asserting literals *)
  let kept = Vec.create () in
  Vec.push kept (Vec.get out 0);
  for i = 1 to Vec.size out - 1 do
    let l = Vec.unsafe_get out i in
    if not (litredundant s l) then Vec.push kept l
  done;
  (* clear seen flags *)
  Vec.iter (fun l -> s.seen.(l lsr 1) <- false) out;
  (* compute backtrack level; move its literal to position 1 *)
  let nlits = Vec.size kept in
  let back_level = ref 0 in
  if nlits > 1 then begin
    let max_i = ref 1 in
    for i = 2 to nlits - 1 do
      if
        s.level.(Vec.unsafe_get kept i lsr 1)
        > s.level.(Vec.unsafe_get kept !max_i lsr 1)
      then max_i := i
    done;
    let tmp = Vec.get kept 1 in
    Vec.unsafe_set kept 1 (Vec.unsafe_get kept !max_i);
    Vec.unsafe_set kept !max_i tmp;
    back_level := s.level.(Vec.get kept 1 lsr 1)
  end;
  (Array.of_list (Vec.to_list kept), !back_level)

(* ---------- learnt clause DB reduction ---------- *)

let locked s cr =
  let l0 = ba_get s.arena (cr + 2) in
  lit_value s l0 = 1 && s.reason.(l0 lsr 1) = cr lsl 1

(* Glue-aware reduction: sort learnts by (LBD, size) and delete the worst
   half, sparing glue clauses (LBD <= 2), locked clauses and anything
   still propagating.  Binaries live in the implication store and are
   never deleted. *)
let reduce_db s =
  s.n_reduces <- s.n_reduces + 1;
  let a = s.arena in
  let n = Vec.size s.learnts in
  let crs = Array.init n (fun i -> Vec.get s.learnts i) in
  let key cr =
    let h = ba_get a cr in
    (ba_get a (cr + 1) lsl 32) lor header_size h
  in
  Array.sort (fun c1 c2 -> compare (key c1) (key c2)) crs;
  let keep = Vec.create () in
  let limit = n / 2 in
  let removed = ref 0 in
  Array.iteri
    (fun i cr ->
      let h = ba_get a cr in
      if header_deleted h then () (* already gone; drop from the list *)
      else if
        i >= n - limit && ba_get a (cr + 1) > 2 && not (locked s cr)
      then begin
        proof_delete_clause s cr;
        mark_deleted s cr;
        incr removed
      end
      else Vec.push keep cr)
    crs;
  s.learnts <- keep

(* ---------- arena compaction ---------- *)

(* Copy live clauses into a fresh arena and remap every cref holder
   (clause lists, watch lists, trail reasons).  Watcher order, blockers
   and watched positions are preserved, so this is safe at any decision
   level.  Old headers are overwritten with forwarding markers
   (-2 - newref). *)
let compact s =
  let live = s.arena_size - s.arena_wasted in
  let na = make_arena (max 1024 (live * 2)) in
  (* recreate the scratch slot *)
  Bigarray.Array1.blit
    (Bigarray.Array1.sub s.arena 0 arena_start)
    (Bigarray.Array1.sub na 0 arena_start);
  let next = ref arena_start in
  let a = s.arena in
  let relocate cr =
    let h = ba_get a cr in
    if h < 0 then -2 - h (* already moved *)
    else begin
      let words = 2 + header_size h in
      let ncr = !next in
      for k = 0 to words - 1 do
        ba_set na (ncr + k) (ba_get a (cr + k))
      done;
      next := !next + words;
      ba_set a cr (-2 - ncr);
      ncr
    end
  in
  let remap_vec v =
    let keep = Vec.create () in
    Vec.iter
      (fun cr ->
        let h = ba_get a cr in
        if h >= 0 && header_deleted h then () (* dead: drop *)
        else Vec.push keep (relocate cr))
      v;
    keep
  in
  let clauses' = remap_vec s.clauses in
  Vec.clear s.clauses;
  Vec.iter (fun cr -> Vec.push s.clauses cr) clauses';
  s.learnts <- remap_vec s.learnts;
  (* watch lists: drop dead entries, remap live ones in place *)
  for p = 0 to (2 * s.nvars) - 1 do
    let wd = s.w_data.(p) in
    let wn = s.w_size.(p) in
    let j = ref 0 in
    let i = ref 0 in
    while !i < wn do
      let cr = wd.(!i) in
      let h = ba_get a cr in
      if h >= 0 && header_deleted h then ()
      else begin
        wd.(!j) <- (if h < 0 then -2 - h else relocate cr);
        wd.(!j + 1) <- wd.(!i + 1);
        j := !j + 2
      end;
      i := !i + 2
    done;
    s.w_size.(p) <- !j
  done;
  (* reasons on the trail *)
  for i = 0 to s.trail_size - 1 do
    let v = s.trail.(i) lsr 1 in
    let r = s.reason.(v) in
    if r >= 0 && r land 1 = 0 then begin
      let cr = r lsr 1 in
      let h = ba_get a cr in
      (* locked clauses are never deleted, so they have been moved *)
      let ncr = if h < 0 then -2 - h else relocate cr in
      s.reason.(v) <- ncr lsl 1
    end
  done;
  s.arena <- na;
  s.arena_size <- !next;
  s.arena_wasted <- 0;
  s.n_compactions <- s.n_compactions + 1

let maybe_compact s =
  if s.arena_size > 4096 && s.arena_wasted * 3 > s.arena_size then compact s

(* ---------- clause addition ---------- *)

let store_clause s lits ~learnt ~lbd =
  match Array.length lits with
  | 2 ->
      attach_binary s (Lit.of_code lits.(0)) (Lit.of_code lits.(1));
      if not learnt then s.n_live_orig <- s.n_live_orig + 1;
      -1
  | n when n >= 3 ->
      let cr = alloc_clause s lits ~learnt ~lbd in
      attach s cr;
      if learnt then Vec.push s.learnts cr
      else begin
        Vec.push s.clauses cr;
        s.n_live_orig <- s.n_live_orig + 1
      end;
      cr
  | _ -> invalid_arg "Solver.store_clause: clause too short"

let add_clause s lits =
  List.iter
    (fun l ->
      if Lit.var l >= s.nvars then
        invalid_arg
          (Printf.sprintf "Solver.add_clause: variable %d not allocated" (Lit.var l)))
    lits;
  if s.okay then begin
    if s.proof_log <> None then s.originals <- lits :: s.originals;
    cancel_until s 0;
    s.model_valid <- false;
    (* simplify: remove duplicates and false literals, detect tautology *)
    let lits = List.sort_uniq Int.compare (List.map Lit.code lits) in
    let tautology =
      List.exists (fun l -> List.mem (l lxor 1) lits || lit_value s l = 1) lits
    in
    if not tautology then begin
      let lits = List.filter (fun l -> lit_value s l <> -1) lits in
      match lits with
      | [] ->
          proof_empty s;
          s.okay <- false
      | [ l ] ->
          enqueue s l (-1);
          if propagate s >= 0 then begin
            proof_empty s;
            s.okay <- false
          end
      | _ ->
          ignore (store_clause s (Array.of_list lits) ~learnt:false ~lbd:0)
    end
  end

(* ---------- inprocessing: subsumption + self-subsuming resolution ---------- *)

(* 64-bit clause signature: bit (var mod 64) per literal.  sig(D) not
   subset of sig(C) proves D cannot subsume C. *)
let clause_sig s cr =
  let a = s.arena in
  let size = header_size (ba_get a cr) in
  let g = ref 0 in
  for k = 0 to size - 1 do
    g := !g lor (1 lsl (ba_get a (cr + 2 + k) lsr 1 land 63))
  done;
  !g

(* Does the arena clause at [cr] contain literal [l]?  Linear scan;
   clauses here are short. *)
let clause_mem s cr l =
  let a = s.arena in
  let size = header_size (ba_get a cr) in
  let k = ref 0 in
  let found = ref false in
  while (not !found) && !k < size do
    if ba_get a (cr + 2 + !k) = l then found := true;
    incr k
  done;
  !found

(* Check [d_lits] against arena clause [cr]: [`Subsumes] when every
   literal appears in [cr]; [`Strengthen l] when exactly one appears
   negated (so [cr] can drop [l lxor 1]... i.e. drop the negation);
   [`No] otherwise. *)
let subsume_check s d_lits cr =
  let misses = ref 0 in
  let flipped = ref (-1) in
  let n = Array.length d_lits in
  let k = ref 0 in
  while !misses <= 1 && !k < n do
    let d = d_lits.(!k) in
    if clause_mem s cr d then ()
    else if !flipped < 0 && clause_mem s cr (d lxor 1) then begin
      flipped := d lxor 1;
      incr misses
    end
    else misses := 2;
    incr k
  done;
  if !misses = 0 then `Subsumes
  else if !misses = 1 then `Strengthen !flipped
  else `No

(* Remove literal [l] from the clause at [cr] in place (level 0 only).
   Returns the new size. *)
let shrink_clause s cr l =
  let a = s.arena in
  let h = ba_get a cr in
  let size = header_size h in
  let j = ref 0 in
  for k = 0 to size - 1 do
    let q = ba_get a (cr + 2 + k) in
    if q <> l then begin
      ba_set a (cr + 2 + !j) q;
      incr j
    end
  done;
  ba_set a cr (header_make ~size:!j ~learnt:(header_learnt h));
  s.arena_wasted <- s.arena_wasted + (size - !j);
  !j

(* Rebuild every watch list from the live arena clauses.  Run at
   decision level 0, after inprocessing has rewritten clauses in place
   (which invalidates watched positions).  The two best literals of each
   clause (true > unassigned > false) are moved to the watch positions;
   clauses reduced to a single non-false literal are reported as units,
   fully falsified clauses as a conflict.  Returns [Error ()] on
   conflict, else [Ok units]. *)
let rebuild_watches s =
  let a = s.arena in
  for p = 0 to (2 * s.nvars) - 1 do
    s.w_size.(p) <- 0
  done;
  let units = Vec.create () in
  let conflict = ref false in
  let rank l = match lit_value s l with 1 -> 2 | 0 -> 1 | _ -> 0 in
  let order_clause cr size =
    (* move the best literal to 0, second best to 1 *)
    let best = ref 0 in
    for k = 1 to size - 1 do
      if rank (ba_get a (cr + 2 + k)) > rank (ba_get a (cr + 2 + !best)) then
        best := k
    done;
    let t = ba_get a (cr + 2) in
    ba_set a (cr + 2) (ba_get a (cr + 2 + !best));
    ba_set a (cr + 2 + !best) t;
    let best2 = ref 1 in
    for k = 2 to size - 1 do
      if rank (ba_get a (cr + 2 + k)) > rank (ba_get a (cr + 2 + !best2)) then
        best2 := k
    done;
    let t = ba_get a (cr + 3) in
    ba_set a (cr + 3) (ba_get a (cr + 2 + !best2));
    ba_set a (cr + 2 + !best2) t
  in
  let visit cr =
    let h = ba_get a cr in
    if not (header_deleted h) then begin
      order_clause cr (header_size h);
      let v0 = lit_value s (ba_get a (cr + 2)) in
      let v1 = lit_value s (ba_get a (cr + 3)) in
      if v0 = -1 then conflict := true
      else begin
        if v0 = 0 && v1 = -1 then Vec.push units (ba_get a (cr + 2));
        attach s cr
      end
    end
  in
  Vec.iter visit s.clauses;
  Vec.iter visit s.learnts;
  if !conflict then Error () else Ok units

(* One backward-subsumption pass over the stored clauses, binaries
   included as subsumers.  Runs at decision level 0 with propagation at
   fixpoint.  Every deletion/strengthening is DRAT-logged (strengthened
   clause added before its fat version is deleted, so the proof stays a
   valid RUP sequence).  Watch lists are rebuilt wholesale afterwards —
   in-place strengthening invalidates watched positions — and derived
   units are then propagated.  Returns false if the pass derived
   unsatisfiability. *)
let subsumption_pass s =
  let a = s.arena in
  (* Level-0 reasons are never dereferenced (conflict analysis skips
     level-0 variables), so dropping them unlocks every clause for
     strengthening and keeps compaction's reason remap trivial. *)
  for i = 0 to s.trail_size - 1 do
    s.reason.(s.trail.(i) lsr 1) <- -1
  done;
  (* occurrence lists over live arena clauses *)
  let occ_data = Array.make (2 * s.nvars) [||] in
  let occ_size = Array.make (2 * s.nvars) 0 in
  let live = Vec.create () in
  let scan v =
    Vec.iter
      (fun cr ->
        let h = ba_get a cr in
        if not (header_deleted h) then begin
          Vec.push live cr;
          let size = header_size h in
          for k = 0 to size - 1 do
            push1 occ_data occ_size (ba_get a (cr + 2 + k)) cr
          done
        end)
      v
  in
  scan s.clauses;
  scan s.learnts;
  let sigs = Hashtbl.create 256 in
  Vec.iter (fun cr -> Hashtbl.replace sigs cr (clause_sig s cr)) live;
  let unsat = ref false in
  let unit_queue = Vec.create () in
  (* try to subsume/strengthen with subsumer literals [d_lits]; [self]
     is the cref of the subsumer when it lives in the arena (-1 for
     binaries) so it is not matched against itself *)
  let apply_subsumer d_lits ~self ~dsig =
    if not !unsat then begin
      (* scan the occurrence list of the rarest literal *)
      let best = ref d_lits.(0) in
      Array.iter (fun l -> if occ_size.(l) < occ_size.(!best) then best := l) d_lits;
      let cand = occ_data.(!best) and cn = occ_size.(!best) in
      for ci = 0 to cn - 1 do
        let cr = cand.(ci) in
        if not !unsat then begin
          let h = ba_get a cr in
          if
            cr <> self
            && (not (header_deleted h))
            && header_size h >= Array.length d_lits
            && dsig land lnot (Hashtbl.find sigs cr) = 0
          then
            match subsume_check s d_lits cr with
            | `No -> ()
            | `Subsumes ->
                proof_delete_clause s cr;
                mark_deleted s cr;
                if not (header_learnt h) then
                  s.n_live_orig <- s.n_live_orig - 1;
                s.n_subsumed <- s.n_subsumed + 1
            | `Strengthen l -> (
                (* resolvent (cr \ {l}) is implied: log it, then drop
                   the fat clause *)
                let old = clause_lits s cr in
                let kept =
                  Array.of_list (List.filter (fun q -> q <> l) (Array.to_list old))
                in
                proof_add s kept;
                proof_delete s old;
                s.n_strengthened <- s.n_strengthened + 1;
                match Array.length kept with
                | 0 ->
                    proof_empty s;
                    unsat := true
                | 1 ->
                    mark_deleted s cr;
                    if not (header_learnt h) then
                      s.n_live_orig <- s.n_live_orig - 1;
                    Vec.push unit_queue kept.(0)
                | 2 ->
                    (* moves to the binary store; an original stays an
                       original there, so the live count is unchanged *)
                    mark_deleted s cr;
                    attach_binary s (Lit.of_code kept.(0)) (Lit.of_code kept.(1))
                | _ ->
                    ignore (shrink_clause s cr l);
                    Hashtbl.replace sigs cr (clause_sig s cr))
        end
      done
    end
  in
  (* binaries as subsumers *)
  for p = 0 to (2 * s.nvars) - 1 do
    let bd = s.bin_data.(p) and bn = s.bin_size.(p) in
    for i = 0 to bn - 1 do
      let q = bd.(i) in
      let l = p lxor 1 in
      (* clause {l, q}; visit each once *)
      if l < q then begin
        let d_lits = [| l; q |] in
        let dsig = (1 lsl (l lsr 1 land 63)) lor (1 lsl (q lsr 1 land 63)) in
        apply_subsumer d_lits ~self:(-1) ~dsig
      end
    done
  done;
  (* arena clauses as subsumers, smallest first *)
  let by_size = Array.init (Vec.size live) (fun i -> Vec.get live i) in
  Array.sort
    (fun c1 c2 ->
      compare (header_size (ba_get a c1)) (header_size (ba_get a c2)))
    by_size;
  Array.iter
    (fun cr ->
      let h = ba_get a cr in
      if not (header_deleted h) then
        apply_subsumer (clause_lits s cr) ~self:cr ~dsig:(Hashtbl.find sigs cr))
    by_size;
  (* drop dead crefs from the clause lists *)
  let prune v =
    let keep = Vec.create () in
    Vec.iter
      (fun cr -> if not (header_deleted (ba_get a cr)) then Vec.push keep cr)
      v;
    keep
  in
  let clauses' = prune s.clauses in
  Vec.clear s.clauses;
  Vec.iter (fun cr -> Vec.push s.clauses cr) clauses';
  s.learnts <- prune s.learnts;
  (* restore watch consistency, then flush derived units *)
  if not !unsat then begin
    match rebuild_watches s with
    | Error () ->
        proof_empty s;
        unsat := true
    | Ok more_units ->
        Vec.iter (fun l -> Vec.push unit_queue l) more_units;
        Vec.iter
          (fun l ->
            if not !unsat then
              match lit_value s l with
              | 1 -> ()
              | -1 ->
                  proof_empty s;
                  unsat := true
              | _ ->
                  enqueue s l (-1);
                  if propagate s >= 0 then begin
                    proof_empty s;
                    unsat := true
                  end)
          unit_queue
  end;
  if !unsat then begin
    s.okay <- false;
    false
  end
  else begin
    maybe_compact s;
    true
  end

let maybe_inprocess s =
  match s.inprocess_interval with
  | None -> true
  | Some interval ->
      if s.n_conflicts - s.conflicts_at_inprocess >= interval then begin
        s.conflicts_at_inprocess <- s.n_conflicts;
        subsumption_pass s
      end
      else true

(* ---------- search ---------- *)

let luby y i =
  (* size of the smallest complete subsequence containing index i *)
  let size = ref 1 and seq = ref 0 in
  while !size < i + 1 do
    incr seq;
    size := (2 * !size) + 1
  done;
  let i = ref i in
  while !size - 1 <> !i do
    size := (!size - 1) / 2;
    decr seq;
    i := !i mod !size
  done;
  y ** float_of_int !seq

let pick_branch_var s =
  (* seeded solvers occasionally branch on a uniformly random unassigned
     variable (a VSIDS tiebreak-style diversification, ~2% of decisions).
     The variable is left in the heap: popping it later as an assigned
     entry is harmless, exactly like stale entries after backtracking. *)
  let random_pick =
    if s.rng <> None && s.heap_size > 0 && rng_below s 50 = 0 then begin
      let v = s.heap.(rng_below s s.heap_size) in
      if s.vals.(2 * v) = 0 then Some v else None
    end
    else None
  in
  match random_pick with
  | Some v -> v
  | None ->
      let rec go () =
        if s.heap_size = 0 then -1
        else
          let v = heap_remove_min s in
          if s.vals.(2 * v) = 0 then v else go ()
      in
      go ()

type search_outcome = Out_sat | Out_unsat | Out_restart

(* process-wide registry metrics, fed alongside each solver's own
   counters; updates are no-ops (one atomic load) without a live sink *)
let m_learnt_size = Telemetry.Metrics.histogram "sat.learnt_size"
let m_decisions = Telemetry.Metrics.counter "sat.decisions"
let m_propagations = Telemetry.Metrics.counter "sat.propagations"
let m_conflicts = Telemetry.Metrics.counter "sat.conflicts"
let m_restarts = Telemetry.Metrics.counter "sat.restarts"
let m_solve_calls = Telemetry.Metrics.counter "sat.solve_calls"

let record_learnt s lits back_level =
  proof_add s lits;
  s.n_learnt_literals <- s.n_learnt_literals + Array.length lits;
  if Array.length lits > s.max_learnt_size_ then
    s.max_learnt_size_ <- Array.length lits;
  Telemetry.Metrics.Histogram.observe s.learnt_hist (Array.length lits);
  Telemetry.Metrics.observe m_learnt_size (Array.length lits);
  (* LBD must be read off the pre-backtrack levels *)
  let lbd = if Array.length lits >= 3 then compute_lbd s lits else 0 in
  cancel_until s back_level;
  match Array.length lits with
  | 1 -> enqueue s lits.(0) (-1)
  | 2 ->
      attach_binary s (Lit.of_code lits.(0)) (Lit.of_code lits.(1));
      enqueue s lits.(0) ((lits.(1) lsl 1) lor 1)
  | _ ->
      let cr = store_clause s lits ~learnt:true ~lbd in
      enqueue s lits.(0) (cr lsl 1)

let search s ~assumptions ~conflict_limit =
  let conflicts = ref 0 in
  let outcome = ref None in
  while !outcome = None do
    match
      (* [timing] is only set while a trace is live, so the two clock
         reads per propagation stay off the default path *)
      (if not s.timing then propagate s
       else begin
         let t0 = Telemetry.now () in
         let r = propagate s in
         s.t_propagate <- s.t_propagate +. (Telemetry.now () -. t0);
         r
       end)
    with
    | confl when confl >= 0 ->
        s.n_conflicts <- s.n_conflicts + 1;
        incr conflicts;
        if s.n_conflicts land 63 = 0 then check_interrupt s;
        (match s.conflict_budget with
        | Some b when s.n_conflicts > b -> raise Budget_exhausted
        | _ -> ());
        if decision_level s = 0 then begin
          proof_empty s;
          s.okay <- false;
          outcome := Some Out_unsat
        end
        else begin
          let lits, back_level =
            if not s.timing then analyze s confl
            else begin
              let t0 = Telemetry.now () in
              let r = analyze s confl in
              s.t_analyze <- s.t_analyze +. (Telemetry.now () -. t0);
              r
            end
          in
          record_learnt s lits back_level;
          var_decay_activity s
        end
    | _ ->
        if float_of_int (Vec.size s.learnts) >= s.max_learnts then begin
          let t0 = if s.timing then Telemetry.now () else 0.0 in
          reduce_db s;
          maybe_compact s;
          (match s.reduce_limit with
          | Some _ -> () (* pinned by the test knob *)
          | None -> s.max_learnts <- s.max_learnts *. 1.1);
          if s.timing then s.t_restart <- s.t_restart +. (Telemetry.now () -. t0)
        end;
        if conflict_limit >= 0 && !conflicts >= conflict_limit then begin
          let t0 = if s.timing then Telemetry.now () else 0.0 in
          cancel_until s 0;
          s.n_restarts <- s.n_restarts + 1;
          if s.timing then s.t_restart <- s.t_restart +. (Telemetry.now () -. t0);
          outcome := Some Out_restart
        end
        else begin
          (* take assumptions first, as pseudo-decisions *)
          let dl = decision_level s in
          let next_lit =
            if dl < List.length assumptions then begin
              let a = Lit.code (List.nth assumptions dl) in
              match lit_value s a with
              | 1 -> `Dummy (* already satisfied: open an empty level *)
              | -1 -> `Conflict_assumption
              | _ -> `Decide a
            end
            else
              match pick_branch_var s with
              | -1 -> `All_assigned
              | v ->
                  let phase = s.polarity.(v) in
                  (* seeded solvers flip the saved phase on ~2% of decisions *)
                  let phase =
                    if s.rng <> None && rng_below s 50 = 0 then not phase else phase
                  in
                  `Decide ((v * 2) lor if phase then 0 else 1)
          in
          match next_lit with
          | `All_assigned -> outcome := Some Out_sat
          | `Conflict_assumption -> outcome := Some Out_unsat
          | `Dummy -> Vec.push s.trail_lim s.trail_size
          | `Decide l ->
              s.n_decisions <- s.n_decisions + 1;
              if s.n_decisions land 1023 = 0 then check_interrupt s;
              Vec.push s.trail_lim s.trail_size;
              enqueue s l (-1)
        end
  done;
  match !outcome with Some o -> o | None -> assert false

(* Fault-injection probe: a process-global hook invoked at instrumented
   points (here and in higher layers via [probe]).  [None] (the default)
   costs one load and a branch; installers (Synth.Fault) must set it before
   spawning worker domains.  The hook may raise — that is the point: an
   injected exception propagates out of the probe site exactly as a real
   failure would. *)
let probe_hook : (string -> unit) option ref = ref None
let set_probe f = probe_hook := f
let probe site = match !probe_hook with None -> () | Some f -> f site

let solve_body ?(assumptions = []) s =
  probe "sat.solve";
  s.model_valid <- false;
  if not s.okay then Unsat
  else begin
    cancel_until s 0;
    (match s.reduce_limit with
    | Some n -> s.max_learnts <- float_of_int n
    | None ->
        s.max_learnts <-
          max 1000.0 (float_of_int (Vec.size s.clauses) *. 0.5));
    let result = ref None in
    let restart_i = ref 0 in
    (try
       while !result = None do
         if not (maybe_inprocess s) then result := Some Unsat
         else begin
           let limit = int_of_float (luby 2.0 !restart_i *. 100.0) in
           incr restart_i;
           match search s ~assumptions ~conflict_limit:limit with
           | Out_sat ->
               s.model_ <- Array.init s.nvars (fun v -> s.vals.(2 * v) = 1);
               s.model_valid <- true;
               result := Some Sat
           | Out_unsat -> result := Some Unsat
           | Out_restart -> ()
         end
       done
     with
    | Budget_exhausted ->
        cancel_until s 0;
        raise Budget_exhausted
    | Interrupted ->
        cancel_until s 0;
        raise Interrupted);
    cancel_until s 0;
    match !result with Some r -> r | None -> assert false
  end

let stats s =
  {
    decisions = s.n_decisions;
    propagations = s.n_propagations;
    conflicts = s.n_conflicts;
    restarts = s.n_restarts;
    learnt_literals = s.n_learnt_literals;
    max_learnt_size = s.max_learnt_size_;
    reduces = s.n_reduces;
    subsumed = s.n_subsumed;
    strengthened = s.n_strengthened;
    compactions = s.n_compactions;
  }

let learnt_size_histogram s = Telemetry.Metrics.Histogram.snapshot s.learnt_hist

(* Each solve call becomes a [sat.solve] span whose end event carries the
   per-call statistics deltas (the counters themselves are cumulative),
   including the inner-loop phase split (propagate/analyze/restart
   seconds) that [trace report] attributes wall time with. *)
let solve ?assumptions s =
  if not (Telemetry.enabled ()) then solve_body ?assumptions s
  else begin
    let before = stats s in
    let hist0 = learnt_size_histogram s in
    let t_prop0 = s.t_propagate
    and t_ana0 = s.t_analyze
    and t_rst0 = s.t_restart in
    let timing0 = s.timing in
    s.timing <- true;
    let sp =
      Telemetry.begin_span "sat.solve"
        ~fields:
          [
            ("vars", Telemetry.int s.nvars);
            ("clauses", Telemetry.int (nclauses s));
          ]
    in
    let finish result =
      s.timing <- timing0;
      let a = stats s in
      let delta =
        Telemetry.Metrics.Hist.sub (learnt_size_histogram s) hist0
      in
      Telemetry.Metrics.incr m_solve_calls 1;
      Telemetry.Metrics.incr m_decisions (a.decisions - before.decisions);
      Telemetry.Metrics.incr m_propagations
        (a.propagations - before.propagations);
      Telemetry.Metrics.incr m_conflicts (a.conflicts - before.conflicts);
      Telemetry.Metrics.incr m_restarts (a.restarts - before.restarts);
      Telemetry.end_span sp
        ~fields:
          [
            ("result", Telemetry.str result);
            ("decisions", Telemetry.int (a.decisions - before.decisions));
            ( "propagations",
              Telemetry.int (a.propagations - before.propagations) );
            ("conflicts", Telemetry.int (a.conflicts - before.conflicts));
            ("restarts", Telemetry.int (a.restarts - before.restarts));
            ( "learnt_size_hist",
              Telemetry.str (Telemetry.Metrics.Hist.to_csv delta) );
            ("propagate_s", Telemetry.float (s.t_propagate -. t_prop0));
            ("analyze_s", Telemetry.float (s.t_analyze -. t_ana0));
            ("restart_s", Telemetry.float (s.t_restart -. t_rst0));
          ]
    in
    match solve_body ?assumptions s with
    | Sat ->
        finish "sat";
        Sat
    | Unsat ->
        finish "unsat";
        Unsat
    | exception Budget_exhausted ->
        finish "budget";
        raise Budget_exhausted
    | exception Interrupted ->
        finish "interrupted";
        raise Interrupted
  end

let value s l =
  if not s.model_valid then invalid_arg "Solver.value: no model available";
  let b = s.model_.(Lit.var l) in
  if Lit.sign l then b else not b

let value_var s v =
  if not s.model_valid then invalid_arg "Solver.value_var: no model available";
  s.model_.(v)

let model s =
  if not s.model_valid then invalid_arg "Solver.model: no model available";
  Array.copy s.model_

let set_conflict_budget s b = s.conflict_budget <- b
let set_interrupt s f = s.interrupt <- f
let set_reduce_limit s n = s.reduce_limit <- n
let set_inprocess_interval s i = s.inprocess_interval <- i

let set_seed s seed =
  s.rng <- Some (Int64.of_int seed);
  (* scramble the saved phases of already-allocated variables so the first
     descent differs from the unseeded solver's all-false default *)
  for v = 0 to s.nvars - 1 do
    if s.vals.(2 * v) = 0 then s.polarity.(v) <- rng_bool s
  done

let enable_proof s =
  if Vec.size s.clauses > 0 || s.n_live_orig > 0 || s.trail_size > 0 then
    invalid_arg "Solver.enable_proof: must be called before adding clauses";
  s.proof_log <- Some (Buffer.create 4096)

let proof s = Option.map Buffer.contents s.proof_log
let original_clauses s = List.rev s.originals

(* ---------- introspection (tests) ---------- *)

let iter_clauses s f =
  (* binaries: each stored twice; emit once *)
  for p = 0 to (2 * s.nvars) - 1 do
    let bd = s.bin_data.(p) and bn = s.bin_size.(p) in
    for i = 0 to bn - 1 do
      let q = bd.(i) in
      let l = p lxor 1 in
      if l < q then f [ Lit.of_code l; Lit.of_code q ]
    done
  done;
  let emit v =
    Vec.iter
      (fun cr ->
        if not (header_deleted (ba_get s.arena cr)) then
          f (Array.to_list (Array.map Lit.of_code (clause_lits s cr))))
      v
  in
  emit s.clauses;
  emit s.learnts

let self_check s =
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let a = s.arena in
  (* structural: every live arena clause is watched exactly once in each
     of the watch lists of the negations of its first two literals, and
     watch lists reference only live clauses from those positions *)
  let watch_count = Hashtbl.create 256 in
  let bad = ref None in
  for p = 0 to (2 * s.nvars) - 1 do
    let wd = s.w_data.(p) and wn = s.w_size.(p) in
    let i = ref 0 in
    while !i < wn do
      let cr = wd.(!i) in
      let h = ba_get a cr in
      if not (header_deleted h) then begin
        let l0 = ba_get a (cr + 2) and l1 = ba_get a (cr + 3) in
        if p <> l0 lxor 1 && p <> l1 lxor 1 then
          bad :=
            Some
              (Printf.sprintf
                 "clause %d watched under literal %d but watches are %d/%d" cr p
                 l0 l1);
        Hashtbl.replace watch_count (cr, p)
          (1 + Option.value (Hashtbl.find_opt watch_count (cr, p)) ~default:0)
      end;
      i := !i + 2
    done
  done;
  match !bad with
  | Some m -> Error m
  | None -> (
      let check_clause cr =
        let h = ba_get a cr in
        if header_deleted h then Ok ()
        else begin
          let l0 = ba_get a (cr + 2) and l1 = ba_get a (cr + 3) in
          let c0 =
            Option.value (Hashtbl.find_opt watch_count (cr, l0 lxor 1)) ~default:0
          in
          let c1 =
            Option.value (Hashtbl.find_opt watch_count (cr, l1 lxor 1)) ~default:0
          in
          if c0 <> 1 || c1 <> 1 then
            fail "clause %d watch counts %d/%d (want 1/1)" cr c0 c1
          else if not (s.okay && s.qhead = s.trail_size) then Ok ()
          else begin
            (* semantic: at a propagation fixpoint a false watch forces
               the other watch true (otherwise a unit/conflict was
               missed).  Only meaningful while the solver is still
               consistent — a level-0 conflict legitimately abandons
               propagation mid-queue. *)
            let v0 = lit_value s l0 and v1 = lit_value s l1 in
            if v0 = -1 && v1 <> 1 then
              fail "clause %d: watch %d false but %d not true" cr l0 l1
            else if v1 = -1 && v0 <> 1 then
              fail "clause %d: watch %d false but %d not true" cr l1 l0
            else Ok ()
          end
        end
      in
      let check_vec v =
        let r = ref (Ok ()) in
        Vec.iter
          (fun cr -> match !r with Error _ -> () | Ok () -> r := check_clause cr)
          v;
        !r
      in
      match check_vec s.clauses with
      | Error m -> Error m
      | Ok () -> (
          match check_vec s.learnts with
          | Error m -> Error m
          | Ok () -> (
              (* binary store symmetry: {l, q} present both ways *)
              let sym = ref (Ok ()) in
              for p = 0 to (2 * s.nvars) - 1 do
                let bd = s.bin_data.(p) and bn = s.bin_size.(p) in
                for i = 0 to bn - 1 do
                  match !sym with
                  | Error _ -> ()
                  | Ok () ->
                      let q = bd.(i) in
                      let l = p lxor 1 in
                      (* expect l in bin_data.(q lxor 1) *)
                      let od = s.bin_data.(q lxor 1)
                      and on = s.bin_size.(q lxor 1) in
                      let found = ref false in
                      for k = 0 to on - 1 do
                        if od.(k) = l then found := true
                      done;
                      if not !found then
                        sym :=
                          fail "binary {%d,%d} missing its mirror entry" l q
                done
              done;
              match !sym with
              | Error m -> Error m
              | Ok () ->
                  (* value array consistency *)
                  let rec vals_ok v =
                    if v >= s.nvars then Ok ()
                    else if s.vals.(2 * v) <> -s.vals.((2 * v) + 1) then
                      fail "var %d: inconsistent literal values" v
                    else vals_ok (v + 1)
                  in
                  vals_ok 0)))
