type cnf = { num_vars : int; clauses : Lit.t list list }

let parse s =
  let lines = String.split_on_char '\n' s in
  let num_vars = ref (-1) in
  let clauses = ref [] in
  let current = ref [] in
  let handle_token tok =
    match int_of_string_opt tok with
    | None -> failwith (Printf.sprintf "Dimacs.parse: bad token %S" tok)
    | Some 0 ->
        clauses := List.rev !current :: !clauses;
        current := []
    | Some i ->
        if !num_vars < 0 then
          failwith "Dimacs.parse: clause before problem line";
        if abs i > !num_vars then
          failwith
            (Printf.sprintf
               "Dimacs.parse: literal %d out of range (header declares %d vars)"
               i !num_vars);
        current := Lit.of_dimacs i :: !current
  in
  List.iter
    (fun line ->
      let line = String.trim line in
      if String.length line = 0 then ()
      else if line.[0] = 'c' then ()
      else if line.[0] = 'p' then begin
        if !num_vars >= 0 then failwith "Dimacs.parse: duplicate problem line";
        match String.split_on_char ' ' line |> List.filter (fun t -> t <> "") with
        | [ "p"; "cnf"; v; c ] -> (
            match (int_of_string_opt v, int_of_string_opt c) with
            | Some nv, Some nc when nv >= 0 && nc >= 0 -> num_vars := nv
            | _ -> failwith "Dimacs.parse: malformed problem line")
        | _ -> failwith "Dimacs.parse: malformed problem line"
      end
      else
        String.split_on_char ' ' line
        |> List.filter (fun t -> t <> "")
        |> List.iter handle_token)
    lines;
  if !num_vars < 0 then failwith "Dimacs.parse: missing problem line";
  if !current <> [] then failwith "Dimacs.parse: unterminated clause";
  { num_vars = !num_vars; clauses = List.rev !clauses }

let print { num_vars; clauses } =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "p cnf %d %d\n" num_vars (List.length clauses));
  List.iter
    (fun clause ->
      List.iter (fun l -> Buffer.add_string buf (Printf.sprintf "%d " (Lit.to_dimacs l))) clause;
      Buffer.add_string buf "0\n")
    clauses;
  Buffer.contents buf

let load_into solver { num_vars; clauses } =
  if Solver.nvars solver <> 0 then
    invalid_arg "Dimacs.load_into: solver must be fresh";
  if num_vars > 0 then ignore (Solver.new_vars solver num_vars);
  List.iter (Solver.add_clause solver) clauses
