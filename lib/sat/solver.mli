(** A CDCL (conflict-driven clause learning) SAT solver.

    Features: a flat int-arena clause store, two-watched-literal
    propagation with blocking literals, a dedicated binary-clause
    implication store, first-UIP conflict analysis with clause
    minimization, VSIDS variable activity with phase saving, Luby
    restarts, LBD (glue)-aware learnt-clause database reduction, arena
    compaction, inprocessing (backward subsumption and self-subsuming
    resolution, DRAT-logged), and incremental solving under assumptions.
    See DESIGN.md "Solver internals" for the data layout.

    Typical use: create a solver, allocate variables with {!new_var}, add
    clauses with {!add_clause}, then call {!solve} (possibly many times,
    with different assumptions, adding clauses between calls). *)

type t

type result = Sat | Unsat

(** Cumulative search statistics.  [reduces] counts learnt-database
    reductions, [subsumed]/[strengthened] count clauses removed/shrunk
    by inprocessing, [compactions] counts arena garbage collections. *)
type stats = {
  decisions : int;
  propagations : int;
  conflicts : int;
  restarts : int;
  learnt_literals : int;
  max_learnt_size : int;
  reduces : int;
  subsumed : int;
  strengthened : int;
  compactions : int;
}

(** [create ()] is a fresh solver with no variables or clauses. *)
val create : unit -> t

(** [new_var s] allocates a fresh variable and returns its index. *)
val new_var : t -> int

(** [new_vars s n] allocates [n] fresh variables, returning the first index. *)
val new_vars : t -> int -> int

(** [nvars s] is the number of allocated variables. *)
val nvars : t -> int

(** [nclauses s] is the number of live problem (non-learnt) clauses. *)
val nclauses : t -> int

(** [add_clause s lits] asserts the disjunction of [lits].  Adding the empty
    clause (or a clause that simplifies to it) makes the solver permanently
    unsatisfiable.  May be called between [solve] calls.
    @raise Invalid_argument if a literal mentions an unallocated variable. *)
val add_clause : t -> Lit.t list -> unit

(** [ok s] is [false] iff unsatisfiability has already been established at
    decision level zero (in which case [solve] returns [Unsat] immediately). *)
val ok : t -> bool

(** [solve ?assumptions s] decides satisfiability of the asserted clauses
    under the given assumption literals (default none).  Returns [Sat] with
    a model queryable via {!value} / {!model}, or [Unsat]. *)
val solve : ?assumptions:Lit.t list -> t -> result

(** [value s l] is the truth value of [l] in the last model.
    @raise Invalid_argument if the last [solve] did not return [Sat]. *)
val value : t -> Lit.t -> bool

(** [value_var s v] is the truth value of variable [v] in the last model. *)
val value_var : t -> int -> bool

(** [model s] is the last model as an array indexed by variable. *)
val model : t -> bool array

(** [stats s] is the solver's cumulative statistics. *)
val stats : t -> stats

(** [learnt_size_histogram s] is a snapshot of the learnt-clause-size
    histogram (log-bucketed {!Telemetry.Metrics.Hist.t} with exact
    quantiles for sizes below 64).  Cumulative over the solver's
    lifetime; the per-call delta is emitted on every [sat.solve]
    telemetry span, and snapshots merge with
    {!Telemetry.Metrics.Hist.add} (e.g. across portfolio workers). *)
val learnt_size_histogram : t -> Telemetry.Metrics.Hist.t

(** [set_conflict_budget s n] limits the next [solve] calls to [n] conflicts
    each; the solver raises {!Budget_exhausted} when exceeded.  [None]
    removes the limit. *)
val set_conflict_budget : t -> int option -> unit

exception Budget_exhausted

(** [set_seed s seed] installs a deterministic PRNG that diversifies the
    search: saved phases of existing and future variables are scrambled, and
    ~2% of decisions branch on a random unassigned variable or flip the
    saved phase.  Two solvers with the same seed and the same clause stream
    behave identically; solvers with different seeds explore different parts
    of the search space — the per-worker knob of the portfolio racer.
    Unseeded solvers are bit-for-bit unaffected. *)
val set_seed : t -> int -> unit

(** [set_interrupt s (Some f)] installs a cooperative cancellation check:
    [f] is polled every 64 conflicts and every 1024 decisions, and when it
    returns [true] the solver backtracks to level zero and raises
    {!Interrupted}.  The solver remains usable afterwards (state is intact,
    like a restart).  Used by losing portfolio workers to stop promptly
    once a sibling has won.  [None] removes the check. *)
val set_interrupt : t -> (unit -> bool) option -> unit

exception Interrupted

(** [set_probe (Some f)] installs a process-global fault-injection probe:
    [f] is invoked with a site name at instrumented points (["sat.solve"]
    at every {!solve} entry; higher layers funnel their own sites — e.g.
    ["ctx.check"] — through {!probe}).  The hook may raise, stall, or
    return normally; exceptions it raises propagate out of the probed
    operation exactly as a real failure would.  Install before spawning
    worker domains; [None] (the default) makes probes free apart from one
    load and branch.  Used by [Synth.Fault] for deterministic resilience
    testing — production code never installs a hook. *)
val set_probe : (string -> unit) option -> unit

(** [probe site] invokes the installed probe hook, if any.  Exposed so
    layers above the solver can add their own probe sites without a second
    registration mechanism. *)
val probe : string -> unit

(** [enable_proof s] starts recording a DRAT proof: every learnt clause is
    logged as an addition, every database reduction as deletions, and a
    level-zero conflict as the empty clause.  Must be called before any
    clause is added.  For an (assumption-free) [Unsat] answer the recorded
    proof certifies unsatisfiability and can be validated with
    {!Drat.check}. *)
val enable_proof : t -> unit

(** [proof s] is the DRAT proof text recorded so far ([None] if
    {!enable_proof} was never called). *)
val proof : t -> string option

(** [original_clauses s] is every clause asserted since {!enable_proof},
    in order — the formula a recorded proof refutes. *)
val original_clauses : t -> Lit.t list list

(** {2 Tuning and introspection}

    Test and benchmark knobs.  Production callers never need these: the
    defaults (geometric learnt-limit growth, inprocessing every 8000
    conflicts) are the tuned configuration. *)

(** [set_reduce_limit s (Some n)] pins the learnt-clause limit to [n]: a
    database reduction runs whenever more than [n] learnt clauses are
    live, and the limit does not grow.  Lets tests force reduction (and
    hence arena churn) aggressively.  [None] restores the default
    adaptive limit. *)
val set_reduce_limit : t -> int option -> unit

(** [set_inprocess_interval s (Some n)] runs the inprocessing pass
    (backward subsumption + self-subsuming resolution, at level 0) every
    [n] conflicts; [None] disables inprocessing entirely. *)
val set_inprocess_interval : t -> int option -> unit

(** [compact s] forces an arena compaction: live clauses are copied into
    a fresh arena and every watcher and reason is remapped.  Safe at any
    decision level; a no-op semantically.  Compaction also runs
    automatically when enough of the arena is garbage. *)
val compact : t -> unit

(** [iter_clauses s f] applies [f] to every live stored clause (problem
    and learnt, binaries included), in no particular order.  For tests
    comparing solver state before/after {!compact}. *)
val iter_clauses : t -> (Lit.t list -> unit) -> unit

(** [self_check s] verifies internal invariants: every live clause is
    watched exactly once under each of its first two literals, a
    falsified watch implies the other watch true (valid at propagation
    fixpoints, e.g. after [solve] returns), binary-store symmetry, and
    literal-value consistency.  [Error msg] describes the first
    violation found. *)
val self_check : t -> (unit, string) Stdlib.result
