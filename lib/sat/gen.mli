(** Seeded CNF problem generators.

    Deterministic in their seeds (SplitMix64), so generated instances —
    including the committed corpus under [bench/dimacs/] — are
    reproducible bit-for-bit.  Used by the [bench sat] suite and the
    fuzz harness. *)

(** [random_ksat ~seed ~nvars ~ratio ()] is a uniform random k-CNF
    ([k] defaults to 3) with [round (ratio *. nvars)] clauses, each over
    [k] distinct variables with independent random signs.  Ratios near
    4.26 (for k=3) sit at the satisfiability phase transition where
    instances are hardest.
    @raise Invalid_argument if [nvars < k]. *)
val random_ksat :
  seed:int -> nvars:int -> ratio:float -> ?k:int -> unit -> Dimacs.cnf

(** [pigeonhole ~pigeons ~holes] is the PHP(p,h) principle: each pigeon
    in some hole, no two pigeons sharing one.  Unsatisfiable iff
    [pigeons > holes], with exponential resolution complexity — the
    conflict-analysis stress test. *)
val pigeonhole : pigeons:int -> holes:int -> Dimacs.cnf

(** [parity_chain ~seed ~nvars ~sat] builds two Tseitin XOR chains over
    the same [nvars] inputs (the second over a seeded shuffle) and
    constrains their parities: equal when [sat], opposite (hence
    unsatisfiable) otherwise.  Long implication runs through the chain
    clauses make the family propagation-bound. *)
val parity_chain : seed:int -> nvars:int -> sat:bool -> Dimacs.cnf

(** [default_corpus ()] is the named instance list committed under
    [bench/dimacs/]; the sat test suite pins the files to this
    generator output. *)
val default_corpus : unit -> (string * Dimacs.cnf) list
