(** DIMACS CNF reading and writing, for interoperability and test corpora. *)

type cnf = { num_vars : int; clauses : Lit.t list list }

(** [parse s] parses DIMACS CNF text ([c] comment lines, a [p cnf V C]
    header, then zero-terminated clauses).
    @raise Failure on malformed input: bad tokens, a missing, duplicate
    or malformed header, clauses appearing before the header, literals
    outside the declared variable range, or an unterminated final
    clause. *)
val parse : string -> cnf

(** [print cnf] renders a problem back to DIMACS text. *)
val print : cnf -> string

(** [load_into solver cnf] allocates [cnf.num_vars] variables in [solver]
    (which must be fresh) and asserts every clause. *)
val load_into : Solver.t -> cnf -> unit
