type 'a t = { mutable data : 'a array; mutable size : int }

let create () = { data = [||]; size = 0 }
let make n x = { data = Array.make n x; size = n }
let size v = v.size

let check v i op =
  if i < 0 || i >= v.size then
    invalid_arg (Printf.sprintf "Vec.%s: index %d out of bounds [0,%d)" op i v.size)

let get v i =
  check v i "get";
  v.data.(i)

let set v i x =
  check v i "set";
  v.data.(i) <- x

let unsafe_get v i = Array.unsafe_get v.data i
let unsafe_set v i x = Array.unsafe_set v.data i x

let grow v x =
  let cap = Array.length v.data in
  let ncap = if cap = 0 then 16 else cap * 2 in
  let ndata = Array.make ncap x in
  Array.blit v.data 0 ndata 0 v.size;
  v.data <- ndata

let push v x =
  if v.size = Array.length v.data then grow v x;
  v.data.(v.size) <- x;
  v.size <- v.size + 1

let pop v =
  if v.size = 0 then invalid_arg "Vec.pop: empty";
  v.size <- v.size - 1;
  v.data.(v.size)

let last v =
  if v.size = 0 then invalid_arg "Vec.last: empty";
  v.data.(v.size - 1)

let shrink v n =
  if n < 0 || n > v.size then invalid_arg "Vec.shrink: bad size";
  v.size <- n

let clear v = v.size <- 0

let iter f v =
  for i = 0 to v.size - 1 do
    f v.data.(i)
  done

let exists p v =
  let rec go i = i < v.size && (p v.data.(i) || go (i + 1)) in
  go 0

let to_list v =
  let rec go i acc = if i < 0 then acc else go (i - 1) (v.data.(i) :: acc) in
  go (v.size - 1) []

let filter_in_place p v =
  let j = ref 0 in
  for i = 0 to v.size - 1 do
    if p v.data.(i) then begin
      v.data.(!j) <- v.data.(i);
      incr j
    end
  done;
  v.size <- !j

let sort cmp v =
  let a = Array.sub v.data 0 v.size in
  Array.sort cmp a;
  Array.blit a 0 v.data 0 v.size

let swap_remove v i =
  check v i "swap_remove";
  v.data.(i) <- v.data.(v.size - 1);
  v.size <- v.size - 1
