(** Growable arrays, the workhorse container of the solver's hot paths. *)

type 'a t

(** [create ()] is an empty vector. *)
val create : unit -> 'a t

(** [make n x] is a vector of [n] copies of [x]. *)
val make : int -> 'a -> 'a t

(** [size v] is the number of elements. *)
val size : 'a t -> int

(** [get v i] / [set v i x] access element [i]; bounds-checked. *)
val get : 'a t -> int -> 'a

val set : 'a t -> int -> 'a -> unit

(** [unsafe_get v i] / [unsafe_set v i x] skip the bounds check — solver
    inner loops only, where the index is already known to be in
    [\[0, size)].  Out-of-range access is undefined behaviour. *)
val unsafe_get : 'a t -> int -> 'a

val unsafe_set : 'a t -> int -> 'a -> unit

(** [push v x] appends [x]. *)
val push : 'a t -> 'a -> unit

(** [pop v] removes and returns the last element.
    @raise Invalid_argument if empty. *)
val pop : 'a t -> 'a

(** [last v] is the last element without removing it. *)
val last : 'a t -> 'a

(** [shrink v n] truncates [v] to its first [n] elements. *)
val shrink : 'a t -> int -> unit

(** [clear v] empties [v]. *)
val clear : 'a t -> unit

(** [iter f v] applies [f] to each element in order. *)
val iter : ('a -> unit) -> 'a t -> unit

(** [exists p v] tests whether some element satisfies [p]. *)
val exists : ('a -> bool) -> 'a t -> bool

(** [to_list v] is the elements in order. *)
val to_list : 'a t -> 'a list

(** [filter_in_place p v] keeps only elements satisfying [p], preserving
    order. *)
val filter_in_place : ('a -> bool) -> 'a t -> unit

(** [sort cmp v] sorts in place. *)
val sort : ('a -> 'a -> int) -> 'a t -> unit

(** [swap_remove v i] removes element [i] by swapping the last element into
    its place (O(1), order not preserved). *)
val swap_remove : 'a t -> int -> unit
