(** A deliberately simple reference SAT procedure used to cross-check the
    CDCL solver in tests.  Exhaustive with unit-propagation pruning; only
    suitable for small variable counts. *)

(** [solve ~num_vars clauses] is [Some model] for a satisfying assignment
    (indexed by variable), or [None] if unsatisfiable.
    @raise Invalid_argument if a clause mentions a variable [>= num_vars]
    (mirroring [Solver.add_clause], so the differential harness can't
    diverge on out-of-range inputs). *)
val solve : num_vars:int -> Lit.t list list -> bool array option

(** [count_models ~num_vars clauses] is the exact number of satisfying
    assignments over the [num_vars] variables.
    @raise Invalid_argument if a clause mentions a variable [>= num_vars]. *)
val count_models : num_vars:int -> Lit.t list list -> int

(** [eval model clause] is the truth value of a clause under a model. *)
val eval : bool array -> Lit.t list -> bool
