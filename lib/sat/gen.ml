(* Seeded CNF problem generators for the DIMACS benchmark corpus and the
   fuzz harness.

   Everything here is deterministic in the given seed (SplitMix64, the
   same stream used by Solver.set_seed and Channel.Prng), so the
   committed corpus under bench/dimacs/ can be regenerated bit-for-bit
   and a test can pin the files to their generator provenance. *)

(* ---------- SplitMix64 ---------- *)

type rng = { mutable state : int64 }

let rng_create seed = { state = Int64.of_int seed }

let rng_next r =
  let st = Int64.add r.state 0x9E3779B97F4A7C15L in
  r.state <- st;
  let z =
    Int64.mul (Int64.logxor st (Int64.shift_right_logical st 30)) 0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let rng_below r bound =
  if bound <= 0 then invalid_arg "Gen.rng_below: non-positive bound";
  Int64.to_int (Int64.rem (Int64.logand (rng_next r) Int64.max_int) (Int64.of_int bound))

let rng_bool r = Int64.logand (rng_next r) 1L = 1L

(* ---------- random k-CNF ---------- *)

let random_ksat ~seed ~nvars ~ratio ?(k = 3) () =
  if nvars < k then invalid_arg "Gen.random_ksat: nvars < k";
  let r = rng_create seed in
  let nclauses = int_of_float (Float.round (ratio *. float_of_int nvars)) in
  let clause () =
    (* k distinct variables, independent random signs *)
    let vars = Array.make k (-1) in
    for i = 0 to k - 1 do
      let v = ref (rng_below r nvars) in
      let fresh v = not (Array.exists (Int.equal v) (Array.sub vars 0 i)) in
      while not (fresh !v) do
        v := rng_below r nvars
      done;
      vars.(i) <- !v
    done;
    Array.to_list
      (Array.map
         (fun v ->
           let l = Lit.make v in
           if rng_bool r then Lit.neg l else l)
         vars)
  in
  { Dimacs.num_vars = nvars; clauses = List.init nclauses (fun _ -> clause ()) }

(* ---------- pigeonhole ---------- *)

(* PHP(p, h): p pigeons into h holes; unsatisfiable iff p > h.  The
   classic resolution-hard family: propagation-light, conflict-heavy. *)
let pigeonhole ~pigeons ~holes =
  if pigeons <= 0 || holes <= 0 then
    invalid_arg "Gen.pigeonhole: non-positive size";
  let var p h = (p * holes) + h in
  let each_pigeon_somewhere =
    List.init pigeons (fun p -> List.init holes (fun h -> Lit.make (var p h)))
  in
  let no_shared_hole =
    List.concat_map
      (fun h ->
        List.concat_map
          (fun p1 ->
            List.filter_map
              (fun p2 ->
                if p1 < p2 then
                  Some
                    [ Lit.neg (Lit.make (var p1 h)); Lit.neg (Lit.make (var p2 h)) ]
                else None)
              (List.init pigeons Fun.id))
          (List.init pigeons Fun.id))
      (List.init holes Fun.id)
  in
  {
    Dimacs.num_vars = pigeons * holes;
    clauses = each_pigeon_somewhere @ no_shared_hole;
  }

(* ---------- parity / XOR chains ---------- *)

(* Tseitin-encode t = a xor b: four ternary clauses. *)
let xor_clauses t a b =
  [
    [ Lit.neg t; a; b ];
    [ Lit.neg t; Lit.neg a; Lit.neg b ];
    [ t; Lit.neg a; b ];
    [ t; a; Lit.neg b ];
  ]

(* One chain of fresh accumulators over inputs [xs], starting at [base]:
   t_1 = x_0 xor x_1, t_i = t_{i-1} xor x_i; returns (clauses, t_last,
   next_free_var). *)
let chain ~base xs =
  match xs with
  | [] | [ _ ] -> invalid_arg "Gen.chain: need at least two inputs"
  | x0 :: x1 :: rest ->
      let next = ref base in
      let fresh () =
        let v = Lit.make !next in
        incr next;
        v
      in
      let t1 = fresh () in
      let acc = ref (xor_clauses t1 x0 x1) in
      let last =
        List.fold_left
          (fun prev x ->
            let t = fresh () in
            acc := xor_clauses t prev x @ !acc;
            t)
          t1 rest
      in
      (List.rev !acc, last, !next)

(* Parity chain over [nvars] inputs.  Two accumulator chains run over a
   random shuffle of the same inputs; asserting equal chain parities is
   satisfiable, opposite parities unsatisfiable — and provably so only by
   reasoning through both chains, which makes the family propagation-
   bound (every decision triggers long implication runs through the
   Tseitin clauses). *)
let parity_chain ~seed ~nvars ~sat =
  if nvars < 2 then invalid_arg "Gen.parity_chain: nvars < 2";
  let r = rng_create seed in
  let xs = List.init nvars Lit.make in
  let shuffled =
    let a = Array.of_list xs in
    for i = Array.length a - 1 downto 1 do
      let j = rng_below r (i + 1) in
      let t = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- t
    done;
    Array.to_list a
  in
  let c1, t_last, next = chain ~base:nvars xs in
  let c2, u_last, next = chain ~base:next shuffled in
  let units =
    if sat then [ [ t_last ]; [ u_last ] ]
    else [ [ t_last ]; [ Lit.neg u_last ] ]
  in
  { Dimacs.num_vars = next; clauses = c1 @ c2 @ units }

(* ---------- the committed benchmark corpus ---------- *)

(* Kept at md-7 scale: instances sized so the whole suite solves in a few
   seconds, the same propagation-per-conflict regime the CEGIS loop
   lives in.  bench/dimacs/ holds exactly these files; the sat test
   suite pins them to this list. *)
let default_corpus () =
  [
    ("ksat_v150_r4.2_s1", random_ksat ~seed:101 ~nvars:150 ~ratio:4.2 ());
    ("ksat_v170_r4.2_s2", random_ksat ~seed:202 ~nvars:170 ~ratio:4.2 ());
    ("ksat_v200_r4.1_s3", random_ksat ~seed:303 ~nvars:200 ~ratio:4.1 ());
    ("ksat_v120_r5.0_s4", random_ksat ~seed:404 ~nvars:120 ~ratio:5.0 ());
    ("ksat_v140_r4.5_s5", random_ksat ~seed:505 ~nvars:140 ~ratio:4.5 ());
    ("php_7_6", pigeonhole ~pigeons:7 ~holes:6);
    ("php_8_7", pigeonhole ~pigeons:8 ~holes:7);
    ("parity_24_unsat", parity_chain ~seed:606 ~nvars:24 ~sat:false);
    ("parity_32_unsat", parity_chain ~seed:707 ~nvars:32 ~sat:false);
    ("parity_40_sat", parity_chain ~seed:808 ~nvars:40 ~sat:true);
  ]
