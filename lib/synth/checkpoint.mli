(** On-disk checkpoints of a synthesis session.

    A checkpoint captures the reusable state of an interrupted run: the
    counterexample pool (raw witnesses, so any configuration or encoding
    can re-learn them), the best generator found so far with its verified
    distance bound, the optimization bound in force, and the iteration
    count reached.

    The format is versioned line-oriented text with a CRC-32 trailer.
    {!save} writes to a temp file in the destination directory and then
    atomically renames, so readers only ever see complete checkpoints; a
    truncated or bit-flipped file fails the CRC and is reported as
    {!Corrupt} — a damaged checkpoint is never silently trusted. *)

(** Current on-disk format version. *)
val version : int

type t = {
  data_len : int;  (** [k] of the problem the state belongs to *)
  check_len : int;  (** [c] of the problem *)
  min_distance : int;  (** target [md] of the problem *)
  iterations : int;  (** CEGIS iterations completed when saved *)
  opt_bound : int option;
      (** for [optimize]: best (smallest feasible) check length so far *)
  best : (Hamming.Code.t * int) option;
      (** best candidate so far and its verified distance lower bound *)
  cexes : Cegis.cex list;  (** counterexample pool, oldest first *)
}

type error =
  | Io of string  (** the file cannot be read (missing, permissions…) *)
  | Corrupt of string  (** CRC or structural validation failed *)
  | Version_mismatch of int  (** written by an incompatible version *)

val error_to_string : error -> string

(** [save ~path t] atomically writes [t] to [path] (temp file + rename). *)
val save : path:string -> t -> unit

(** [load ~path] reads and validates a checkpoint.  Validation covers the
    CRC, the format version, record structure, and that every stored
    witness fits the declared problem dimensions. *)
val load : path:string -> (t, error) result

(** [matches_problem t p] is [true] iff [t] was saved for problem [p]
    (same [data_len], [check_len], [min_distance]).  Resuming against a
    different problem must be refused by the caller. *)
val matches_problem : t -> Cegis.problem -> bool

(** Incremental, thread-safe checkpoint writer.

    A [Writer.w] accumulates state via [record_*] calls (safe from any
    domain) and rewrites the checkpoint file at most once per
    [min_interval] seconds, plus on {!Writer.flush}.  Each write is the
    same atomic save as {!save}. *)
module Writer : sig
  type w

  (** [create ~path ~data_len ~check_len ~min_distance ()] makes a writer
      targeting [path].  [min_interval] (seconds, default 0.25) throttles
      rewrites. *)
  val create :
    ?min_interval:float ->
    path:string ->
    data_len:int ->
    check_len:int ->
    min_distance:int ->
    unit ->
    w

  (** Append a counterexample to the pool. *)
  val record_cex : w -> Cegis.cex -> unit

  (** Record a candidate with verified distance bound [bound]; kept only
      if it beats the current best. *)
  val record_best : w -> Hamming.Code.t -> int -> unit

  (** Record the optimization bound (best feasible check length). *)
  val record_bound : w -> int -> unit

  (** Record the CEGIS iteration count reached. *)
  val record_iterations : w -> int -> unit

  (** Write pending state to disk now (used on exit/interrupt). *)
  val flush : w -> unit

  (** The writer's current accumulated state. *)
  val snapshot : w -> t
end
