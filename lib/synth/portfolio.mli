(** Multicore portfolio CEGIS: race [K] differently-configured workers on
    one synthesis problem, sharing counterexamples.

    Each worker drives its own {!Cegis.session} in a separate domain,
    varying the cardinality encoding, counterexample mode, verifier and a
    per-solver random seed (see {!Sat.Solver.set_seed}).  Every learned
    counterexample is published to a mutex-protected shared pool in raw
    witness form; between iterations each worker drains the entries it has
    not yet seen and re-encodes them with its {e own} encoding.  This is
    sound across heterogeneous configurations because a counterexample
    constraint is implied by the specification itself, so importing it can
    only prune candidates that were going to fail verification anyway — and
    for the same reason a single worker reaching [Exhausted] refutes the
    whole configuration.

    The first worker to decide wins; the rest are cancelled cooperatively
    through the solvers' interrupt hooks.  All workers allocate their
    symbolic matrix variables through {!Smtlite.Fresh}'s atomic counter, so
    expression identities are stable no matter how the domains interleave.

    Because CEGIS wall time is heavy-tailed in the solver's random
    trajectory, the race additionally restarts: if no worker decides
    within a (doubling) restart interval, the round is cancelled, every
    worker is reseeded, and a fresh round begins.  The counterexample pool
    survives restarts, so a new round replays {e all} accumulated
    refutations into its fresh sessions before its first candidate —
    restarts trade already-amortized learning for an escape from unlucky
    search trajectories. *)

(** One worker's configuration. *)
type config = {
  label : string;
  cex_mode : Cegis.cex_mode;
  verifier : Cegis.verifier_mode;
  encoding : Smtlite.Card.encoding;
  seed : int option;  (** solver diversification seed; [None] = default *)
}

type worker_stats = {
  config : config;
  stats : Report.Stats.t;
  shared_out : int;  (** distinct counterexamples this worker contributed *)
  shared_in : int;  (** foreign counterexamples it imported *)
  finished : bool;  (** this worker decided the race *)
}

type report = {
  workers : worker_stats list;
      (** one entry per worker per restart round, in round order; restarted
          workers are labelled [w<i>r<round>] *)
  winner : config option;  (** [None] iff the portfolio timed out *)
  wall_clock : float;  (** seconds, whole race *)
  rounds : int;  (** restart rounds run (1 = no restart triggered) *)
  totals : Report.Stats.t;
      (** {!Report.Stats.sum} over workers and rounds; its [elapsed] is
          summed per-worker solver time, not wall clock *)
}

(** [default_configs jobs] is the built-in portfolio: worker 0 is exactly
    the sequential default (so [jobs = 1] reproduces {!Cegis.synthesize}
    bit for bit), later workers vary encoding, verifier, counterexample
    mode and seed. *)
val default_configs : int -> config list

val config_to_string : config -> string

(** [synthesize ?timeout ?jobs ?restart_interval ?scheduler ?configs
    problem] races the portfolio.  With [jobs = 1] the single worker runs
    inline in the calling domain and never restarts (it is the
    deterministic sequential replay).  Otherwise the scheduler decides how
    workers share the machine: [`Domains] spawns one domain per worker,
    [`Interleaved] steps all sessions round-robin (one CEGIS iteration per
    turn) in the calling domain, and [`Auto] (default) picks domains when
    {!Domain.recommended_domain_count} sees spare cores and the
    deterministic interleave otherwise — on a single-core host domains buy
    no parallelism and their scheduling noise makes wall time heavy-tailed.
    Round [r] runs for [restart_interval * 2^r] seconds (default interval
    20 s; [<= 0.] disables restarts) before the race is reseeded — the
    shared counterexample pool carries over, so later rounds start warm.
    [configs], when given, must have exactly [jobs] entries and seeds its
    round 0; restart rounds derive reseeded copies.

    {b Supervision.} Worker bodies run under {!Supervisor.run}: an
    exception that is not cooperative cancellation — a crash, including
    injected {!Fault.Injected} faults — is answered by restarting that
    worker with a fresh seed and solver state (jittered backoff on the
    domains path; immediate and deterministic on the interleaved path).
    A solver interrupt that no one requested (an injected fault) is
    detected by re-checking the genuine interrupt condition and answered
    by retrying the step.  Crash/restart totals surface in
    {!Report.Stats.worker_crashes} / [worker_restarts].  The active
    {!Fault} spec (from [FEC_FAULT_SPEC]) is installed on entry.

    {b Anytime results.} When the race ends without a decision, the
    candidate whose refuting witness had the highest codeword weight — the
    closest miss seen by any worker, round or incarnation — is returned as
    [Partial (code, report)] instead of [Timed_out].  The witness weight
    upper-bounds that candidate's true minimum distance; callers wanting
    the exact distance recompute it.

    [interrupt], polled cooperatively by every worker, ends the whole race
    early (partial results still apply) — this is how Ctrl-C is wired.
    [initial] seeds the shared pool with counterexamples from a previous
    run (see {!Checkpoint}); every worker imports them before its first
    candidate.  [on_cex] fires once per {e distinct} counterexample
    published to the pool, from whichever domain discovered it — it must
    be thread-safe (used for incremental checkpointing).
    @raise Invalid_argument on [jobs < 1] or a length mismatch. *)
val synthesize :
  ?timeout:float ->
  ?jobs:int ->
  ?restart_interval:float ->
  ?scheduler:[ `Auto | `Domains | `Interleaved ] ->
  ?configs:config list ->
  ?interrupt:(unit -> bool) ->
  ?initial:Cegis.cex list ->
  ?on_cex:(Cegis.cex -> unit) ->
  Cegis.problem ->
  (Hamming.Code.t, report) Report.outcome

(** Outcome of a verification race. *)
type verify_outcome =
  | Holds  (** minimum distance is at least the bound *)
  | Refuted of Gf2.Bitvec.t  (** witness data word below the bound *)
  | Unknown  (** every strategy timed out *)

(** [verify_min_distance ?timeout ?jobs code m] races up to [jobs]
    verification strategies (combinatorial enumeration and SAT with
    several cardinality encodings) on "min distance of [code] >= [m]";
    returns the answer, the winning strategy's name and the wall-clock
    seconds. *)
val verify_min_distance :
  ?timeout:float ->
  ?jobs:int ->
  Hamming.Code.t ->
  int ->
  verify_outcome * string * float

(** [pp_report] renders a portfolio report, one line per worker. *)
val pp_report : Format.formatter -> report -> unit

(** [report_to_json] is the machine-readable rendering used by
    [--stats json]. *)
val report_to_json : report -> Telemetry.Json.t
