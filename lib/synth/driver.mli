(** Front end: normalize a property-language specification into one of the
    supported synthesis tasks and run it.

    Supported specification shapes (all the paper's experiments):
    - single generator with fixed [len_d], a [len_c] value or interval,
      an [md] target, optional [len_1] bounds and fixed-entry constraints,
      optionally [minimal(len_c(G[0]))] — §4.2 / Table 1;
    - the same with [minimal(len_1(G[0]))] — §4.4 / Figures 5-6;
    - two generators with fixed shapes plus [minimal(sum_w)] and weights
      supplied out-of-band — §4.3 / Table 2. *)

type task =
  | Fixed of single  (** synthesize one generator, no objective *)
  | Min_check_len of single  (** minimize [len_c] within its interval *)
  | Min_set_bits of single * int
      (** minimize [len_1] starting from the given bound *)
  | Max_distance of single
      (** grow the minimum distance as far as the configuration allows
          ([maximal(md(G[0]))] with fixed [len_c]) *)
  | Weighted_mapping of Weighted.gen_shape * Weighted.gen_shape
      (** minimize [sum_w] over bit-to-generator mappings *)

and single = {
  data_len : int;
  check_lo : int;
  check_hi : int;
  md : int;
  len1_max : int option;
  fixed_bits : (int * int * bool) list;
      (** coefficient-matrix entries pinned by [G[0](r,c) = 0/1] (column
          index relative to the whole generator, as in the language) *)
}

(** [analyze prop] classifies a specification, or explains why it is
    outside the supported fragment. *)
val analyze : Spec.Ast.prop -> (task, string) Stdlib.result

type outcome =
  | Codes of Hamming.Code.t list * Report.Stats.t
      (** fully verified generators meeting the specification *)
  | Weighted_result of Weighted.result
  | Setbits_walk of Optimize.setbits_step list
  | Partial_code of Hamming.Code.t * Report.Stats.t
      (** anytime result: the budget (deadline, interrupt) expired before a
          verified generator was found, but at least one candidate had been
          synthesized — this is the best of them by refuting-witness
          weight.  Its true minimum distance is below the target and must
          be recomputed by the consumer before any use. *)
  | Unsat of string  (** the specification is proved unsatisfiable *)
  | Timeout of string
      (** the budget expired with no candidate to report *)
  | No_solution of string
      (** the specification is outside the supported fragment, or a
          required out-of-band input (weights) is missing *)

(** [run ?timeout ?weights ?p ?jobs ?on_report ?interrupt ?initial ?on_cex
    prop] analyzes and executes a specification.  [weights] are required
    for weighted tasks.  [jobs] switches single-generator synthesis to the
    {!Portfolio} racing [jobs] worker configurations; [on_report] receives
    the portfolio report of each synthesis call (other task shapes run
    sequentially regardless).

    [interrupt] is polled cooperatively inside solver search; when it
    returns [true] the run winds down and reports [Partial_code] if any
    candidate was refuted, [Timeout] otherwise.  [initial] replays
    checkpointed counterexamples before the first candidate (witnesses
    that do not fit a configuration being attempted are skipped for that
    configuration); [on_cex] observes every newly learned counterexample —
    checkpoint writers hook in here.  Both are honoured by the
    single-generator task shapes; objective walks accept [interrupt]
    only. *)
val run :
  ?timeout:float ->
  ?weights:int array ->
  ?p:float ->
  ?jobs:int ->
  ?on_report:(Portfolio.report -> unit) ->
  ?interrupt:(unit -> bool) ->
  ?initial:Cegis.cex list ->
  ?on_cex:(Cegis.cex -> unit) ->
  Spec.Ast.prop ->
  outcome
