(** Front end: normalize a property-language specification into one of the
    supported synthesis tasks and run it.

    Supported specification shapes (all the paper's experiments):
    - single generator with fixed [len_d], a [len_c] value or interval,
      an [md] target, optional [len_1] bounds and fixed-entry constraints,
      optionally [minimal(len_c(G[0]))] — §4.2 / Table 1;
    - the same with [minimal(len_1(G[0]))] — §4.4 / Figures 5-6;
    - two generators with fixed shapes plus [minimal(sum_w)] and weights
      supplied out-of-band — §4.3 / Table 2. *)

type task =
  | Fixed of single  (** synthesize one generator, no objective *)
  | Min_check_len of single  (** minimize [len_c] within its interval *)
  | Min_set_bits of single * int
      (** minimize [len_1] starting from the given bound *)
  | Max_distance of single
      (** grow the minimum distance as far as the configuration allows
          ([maximal(md(G[0]))] with fixed [len_c]) *)
  | Weighted_mapping of Weighted.gen_shape * Weighted.gen_shape
      (** minimize [sum_w] over bit-to-generator mappings *)

and single = {
  data_len : int;
  check_lo : int;
  check_hi : int;
  md : int;
  len1_max : int option;
  fixed_bits : (int * int * bool) list;
      (** coefficient-matrix entries pinned by [G[0](r,c) = 0/1] (column
          index relative to the whole generator, as in the language) *)
}

(** [analyze prop] classifies a specification, or explains why it is
    outside the supported fragment. *)
val analyze : Spec.Ast.prop -> (task, string) Stdlib.result

type outcome =
  | Codes of Hamming.Code.t list * Cegis.stats
  | Weighted_result of Weighted.result
  | Setbits_walk of Optimize.setbits_step list
  | No_solution of string

(** [run ?timeout ?weights ?p ?jobs ?on_report prop] analyzes and executes
    a specification.  [weights] are required for weighted tasks.  [jobs]
    switches single-generator synthesis to the {!Portfolio} racing [jobs]
    worker configurations; [on_report] receives the portfolio report of
    each synthesis call (other task shapes run sequentially regardless). *)
val run :
  ?timeout:float ->
  ?weights:int array ->
  ?p:float ->
  ?jobs:int ->
  ?on_report:(Portfolio.report -> unit) ->
  Spec.Ast.prop ->
  outcome
