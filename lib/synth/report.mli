(** The single shared stats/outcome surface of the synthesis stack.

    Before this module existed the same shapes were triplicated:
    [Cegis.outcome], [Multibit_synth.outcome] and the optimize drivers each
    re-declared [Synthesized]/[Unsat_config]/[Timed_out] around a private
    copy of the stats record, and portfolio/optimize aggregation each
    hand-rolled field-by-field summing.  Everything now goes through
    {!Stats} (a commutative merge monoid under {!Stats.add} with identity
    {!Stats.zero}) and the polymorphic {!outcome}; the old per-module type
    names survive only as deprecated alias re-exports. *)

module Stats : sig
  (** Cumulative counters of one synthesis run (or a merge of several:
      the optimizers sum across configurations, the portfolio across
      workers and restart rounds). *)
  type t = {
    iterations : int;  (** synthesizer checkSat calls *)
    verifier_calls : int;
    elapsed : float;  (** seconds; under merge this is {e summed} solver
                          time, not wall clock *)
    syn_conflicts : int;
    ver_conflicts : int;
    worker_crashes : int;
        (** unexpected worker exceptions captured by {!Supervisor} (zero
            for sequential runs without fault injection) *)
    worker_restarts : int;
        (** supervised worker restarts performed after crashes *)
    learnt_hist : Telemetry.Metrics.Hist.t;
        (** learnt-clause-size histogram of the synthesizer's solver;
            merges bucket-wise under {!add} (itself a monoid), so the
            portfolio totals aggregate worker histograms exactly *)
  }

  (** The identity of {!add}. *)
  val zero : t

  (** Field-wise sum — associative and commutative, so merge order across
      workers or configurations does not matter. *)
  val add : t -> t -> t

  (** [sum ts] folds {!add} over [ts] starting from {!zero}. *)
  val sum : t list -> t

  val pp : Format.formatter -> t -> unit
  val to_json : t -> Telemetry.Json.t

  (** Flat numeric facts under stable [stats.*] keys (plus learnt-size
      histogram quantiles when populated), the shape the run ledger
      stores for [fecsynth runs trend]. *)
  val to_metrics : t -> (string * float) list
end

(** The one outcome shape: ['res] is the synthesized artifact (a generator
    for the core loop), ['info] the attached diagnostics ({!Stats.t} for
    sequential runs, [Portfolio.report] for races). *)
type ('res, 'info) outcome =
  | Synthesized of 'res * 'info
  | Unsat_config of 'info  (** no artifact satisfies the specification *)
  | Timed_out of 'info
  | Partial of 'res * 'info
      (** anytime result: the budget (deadline, conflict budget or an
          external interrupt) expired before full success, but the search
          had already produced a best-so-far artifact worth returning —
          for the CEGIS loop, the refuted candidate whose verified
          distance bound came closest to the target *)

(** ["synthesized" | "unsat" | "timeout" | "partial"] — the stable wire
    names used in [--stats json] output and telemetry events. *)
val outcome_kind : ('res, 'info) outcome -> string

(** The diagnostics carried by any outcome. *)
val outcome_info : ('res, 'info) outcome -> 'info

(** [map_outcome f g o] transforms artifact and diagnostics. *)
val map_outcome :
  ('a -> 'b) -> ('i -> 'j) -> ('a, 'i) outcome -> ('b, 'j) outcome
