module Stats = struct
  type t = {
    iterations : int;
    verifier_calls : int;
    elapsed : float;
    syn_conflicts : int;
    ver_conflicts : int;
    worker_crashes : int;
    worker_restarts : int;
    learnt_hist : Telemetry.Metrics.Hist.t;
  }

  let zero =
    {
      iterations = 0;
      verifier_calls = 0;
      elapsed = 0.0;
      syn_conflicts = 0;
      ver_conflicts = 0;
      worker_crashes = 0;
      worker_restarts = 0;
      learnt_hist = Telemetry.Metrics.Hist.zero;
    }

  let add a b =
    {
      iterations = a.iterations + b.iterations;
      verifier_calls = a.verifier_calls + b.verifier_calls;
      elapsed = a.elapsed +. b.elapsed;
      syn_conflicts = a.syn_conflicts + b.syn_conflicts;
      ver_conflicts = a.ver_conflicts + b.ver_conflicts;
      worker_crashes = a.worker_crashes + b.worker_crashes;
      worker_restarts = a.worker_restarts + b.worker_restarts;
      learnt_hist = Telemetry.Metrics.Hist.add a.learnt_hist b.learnt_hist;
    }

  let sum = List.fold_left add zero

  let pp fmt t =
    Format.fprintf fmt
      "%d iterations, %d verifier calls, %.2f s, %d syn conflicts, %d ver conflicts"
      t.iterations t.verifier_calls t.elapsed t.syn_conflicts t.ver_conflicts;
    if t.worker_crashes > 0 || t.worker_restarts > 0 then
      Format.fprintf fmt ", %d worker crashes, %d restarts" t.worker_crashes
        t.worker_restarts

  let to_json t =
    Telemetry.Json.Obj
      [
        ("iterations", Telemetry.Json.Int t.iterations);
        ("verifier_calls", Telemetry.Json.Int t.verifier_calls);
        ("elapsed_s", Telemetry.Json.Float t.elapsed);
        ("syn_conflicts", Telemetry.Json.Int t.syn_conflicts);
        ("ver_conflicts", Telemetry.Json.Int t.ver_conflicts);
        ("worker_crashes", Telemetry.Json.Int t.worker_crashes);
        ("worker_restarts", Telemetry.Json.Int t.worker_restarts);
        ("learnt_size_hist", Telemetry.Metrics.Hist.to_json t.learnt_hist);
      ]

  (* Flat numeric view for the run ledger: stable [stats.*] keys so
     [fecsynth runs trend --metric stats.iterations] works across
     releases.  Histogram quantiles appear only when populated. *)
  let to_metrics t =
    [
      ("stats.iterations", float_of_int t.iterations);
      ("stats.verifier_calls", float_of_int t.verifier_calls);
      ("stats.elapsed_s", t.elapsed);
      ("stats.syn_conflicts", float_of_int t.syn_conflicts);
      ("stats.ver_conflicts", float_of_int t.ver_conflicts);
      ("stats.worker_crashes", float_of_int t.worker_crashes);
      ("stats.worker_restarts", float_of_int t.worker_restarts);
    ]
    @ List.filter_map
        (fun (name, q) ->
          Option.map
            (fun v -> (name, float_of_int v))
            (Telemetry.Metrics.Hist.quantile t.learnt_hist q))
        [
          ("stats.learnt_size_p50", 0.5);
          ("stats.learnt_size_p95", 0.95);
          ("stats.learnt_size_p99", 0.99);
        ]
end

type ('res, 'info) outcome =
  | Synthesized of 'res * 'info
  | Unsat_config of 'info
  | Timed_out of 'info
  | Partial of 'res * 'info

let outcome_kind = function
  | Synthesized _ -> "synthesized"
  | Unsat_config _ -> "unsat"
  | Timed_out _ -> "timeout"
  | Partial _ -> "partial"

let outcome_info = function
  | Synthesized (_, i) | Unsat_config i | Timed_out i | Partial (_, i) -> i

let map_outcome f g = function
  | Synthesized (r, i) -> Synthesized (f r, g i)
  | Unsat_config i -> Unsat_config (g i)
  | Timed_out i -> Timed_out (g i)
  | Partial (r, i) -> Partial (f r, g i)
