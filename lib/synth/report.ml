module Stats = struct
  type t = {
    iterations : int;
    verifier_calls : int;
    elapsed : float;
    syn_conflicts : int;
    ver_conflicts : int;
  }

  let zero =
    {
      iterations = 0;
      verifier_calls = 0;
      elapsed = 0.0;
      syn_conflicts = 0;
      ver_conflicts = 0;
    }

  let add a b =
    {
      iterations = a.iterations + b.iterations;
      verifier_calls = a.verifier_calls + b.verifier_calls;
      elapsed = a.elapsed +. b.elapsed;
      syn_conflicts = a.syn_conflicts + b.syn_conflicts;
      ver_conflicts = a.ver_conflicts + b.ver_conflicts;
    }

  let sum = List.fold_left add zero

  let pp fmt t =
    Format.fprintf fmt
      "%d iterations, %d verifier calls, %.2f s, %d syn conflicts, %d ver conflicts"
      t.iterations t.verifier_calls t.elapsed t.syn_conflicts t.ver_conflicts

  let to_json t =
    Telemetry.Json.Obj
      [
        ("iterations", Telemetry.Json.Int t.iterations);
        ("verifier_calls", Telemetry.Json.Int t.verifier_calls);
        ("elapsed_s", Telemetry.Json.Float t.elapsed);
        ("syn_conflicts", Telemetry.Json.Int t.syn_conflicts);
        ("ver_conflicts", Telemetry.Json.Int t.ver_conflicts);
      ]
end

type ('res, 'info) outcome =
  | Synthesized of 'res * 'info
  | Unsat_config of 'info
  | Timed_out of 'info

let outcome_kind = function
  | Synthesized _ -> "synthesized"
  | Unsat_config _ -> "unsat"
  | Timed_out _ -> "timeout"

let outcome_info = function
  | Synthesized (_, i) | Unsat_config i | Timed_out i -> i

let map_outcome f g = function
  | Synthesized (r, i) -> Synthesized (f r, g i)
  | Unsat_config i -> Unsat_config (g i)
  | Timed_out i -> Timed_out (g i)
