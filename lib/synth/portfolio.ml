open Gf2
open Smtlite

type config = {
  label : string;
  cex_mode : Cegis.cex_mode;
  verifier : Cegis.verifier_mode;
  encoding : Card.encoding;
  seed : int option;
}

type worker_stats = {
  config : config;
  stats : Report.Stats.t;
  shared_out : int;
  shared_in : int;
  finished : bool;
}

type report = {
  workers : worker_stats list;
  winner : config option;
  wall_clock : float;
  rounds : int;
  totals : Report.Stats.t;
}

(* Spawned worker domains re-install the ambient span context (the serve
   request id); the runtime lens needs the same id as a ring beacon so
   GC intervals on the new domain's ring are attributed to the request.
   No-op when the lens is not live. *)
let with_runtime_request ctx f =
  match List.assoc_opt "request" ctx with
  | Some (Telemetry.Sink.Str rid) when Telemetry.Runtime.active () ->
      Telemetry.Runtime.set_request (Some rid);
      Fun.protect ~finally:(fun () -> Telemetry.Runtime.set_request None) f
  | _ -> f ()

let config_to_string c =
  let seed = match c.seed with None -> "-" | Some s -> string_of_int s in
  Printf.sprintf "%s(cex=%s ver=%s enc=%s seed=%s)" c.label
    (Cegis.cex_mode_name c.cex_mode)
    (Cegis.verifier_name c.verifier)
    (Card.encoding_name c.encoding)
    seed

(* Worker 0 is exactly the sequential default configuration so that
   [--jobs 1] reproduces [Cegis.synthesize] bit for bit; the rest vary the
   cardinality encoding, counterexample mode, verifier and random seed.
   Past the base set, additional workers recycle encodings with fresh
   seeds. *)
let default_configs jobs =
  let base =
    [|
      { label = "w0"; cex_mode = Cegis.Data_word; verifier = Cegis.Combinatorial;
        encoding = Card.Sequential; seed = None };
      { label = "w1"; cex_mode = Cegis.Data_word; verifier = Cegis.Combinatorial;
        encoding = Card.Totalizer; seed = Some 1 };
      { label = "w2"; cex_mode = Cegis.Data_word; verifier = Cegis.Combinatorial;
        encoding = Card.Adder; seed = Some 2 };
      { label = "w3"; cex_mode = Cegis.Data_word; verifier = Cegis.Combinatorial;
        encoding = Card.Sequential; seed = Some 3 };
      { label = "w4"; cex_mode = Cegis.Data_word; verifier = Cegis.Sat;
        encoding = Card.Totalizer; seed = Some 4 };
      { label = "w5"; cex_mode = Cegis.Data_word; verifier = Cegis.Combinatorial;
        encoding = Card.Pairwise; seed = Some 5 };
      { label = "w6"; cex_mode = Cegis.Whole_candidate; verifier = Cegis.Combinatorial;
        encoding = Card.Sequential; seed = Some 6 };
    |]
  in
  List.init jobs (fun i ->
      if i < Array.length base then base.(i)
      else
        let b = base.(i mod Array.length base) in
        { b with label = Printf.sprintf "w%d" i; seed = Some (i * 7919 + 17) })

(* ---------- shared counterexample pool ---------- *)

(* A grow-only vector of (origin worker, cex) under a mutex.  Workers keep
   a private cursor and drain only entries they have not seen; entries are
   deduplicated on insertion so each distinct witness is transported once. *)
type pool = {
  mutex : Mutex.t;
  mutable items : (int * Cegis.cex) array;
  mutable len : int;
  seen_keys : (string, unit) Hashtbl.t;
}

let pool_create () =
  {
    mutex = Mutex.create ();
    items = Array.make 64 (-1, Cegis.Cex_data (Bitvec.create 0));
    len = 0;
    seen_keys = Hashtbl.create 64;
  }

let cex_key = function
  | Cegis.Cex_data d -> "d:" ^ Bitvec.to_string d
  | Cegis.Cex_candidate c -> "c:" ^ Hamming.Code.to_string c

(* Returns [true] when the cex was fresh (not already pooled). *)
let m_pool_size = Telemetry.Metrics.gauge "portfolio.pool_size"

let pool_publish pool origin cex =
  let published =
    Mutex.protect pool.mutex (fun () ->
        let key = cex_key cex in
        if Hashtbl.mem pool.seen_keys key then false
        else begin
          Hashtbl.add pool.seen_keys key ();
          if pool.len = Array.length pool.items then begin
            let bigger = Array.make (2 * pool.len) pool.items.(0) in
            Array.blit pool.items 0 bigger 0 pool.len;
            pool.items <- bigger
          end;
          pool.items.(pool.len) <- (origin, cex);
          pool.len <- pool.len + 1;
          true
        end)
  in
  if published && Telemetry.enabled () then begin
    let len = Mutex.protect pool.mutex (fun () -> pool.len) in
    Telemetry.Metrics.set m_pool_size (float_of_int len);
    Telemetry.gauge "portfolio.pool_size" (float_of_int len)
  end;
  published

(* Entries after the cursor that some other worker contributed. *)
let pool_drain pool ~cursor ~self =
  Mutex.protect pool.mutex (fun () ->
      let fresh = ref [] in
      for i = pool.len - 1 downto cursor do
        let origin, cex = pool.items.(i) in
        if origin <> self then fresh := cex :: !fresh
      done;
      (!fresh, pool.len))

(* ---------- shared best-so-far candidate ---------- *)

(* Anytime result: the candidate whose refuting witness had the highest
   codeword weight.  Witness weight upper-bounds the candidate's true
   minimum distance, so maximizing it is the natural ranking for "closest
   miss"; the exact distance of the reported candidate is recomputed by the
   caller.  Shared across workers, rounds and restarts under a mutex. *)
type best = {
  b_mutex : Mutex.t;
  mutable b_val : (Hamming.Code.t * int) option;
}

let best_create () = { b_mutex = Mutex.create (); b_val = None }

let best_offer best candidate =
  match candidate with
  | None -> ()
  | Some (_, weight) ->
      Mutex.protect best.b_mutex (fun () ->
          match best.b_val with
          | Some (_, w) when w >= weight -> ()
          | _ -> best.b_val <- candidate)

let best_get best = Mutex.protect best.b_mutex (fun () -> best.b_val)

(* ---------- the race ---------- *)

type decision =
  | Winner of int * Hamming.Code.t
  | Proved_unsat of int

type worker_outcome = {
  w_stats : Report.Stats.t;
  w_out : int;
  w_in : int;
  w_finished : bool;
}

(* Incarnation [attempt] of a supervised worker diversifies its solver
   seed so a crashed search does not replay the trajectory that crashed
   (or stalled) it. *)
let reseed_for_attempt config ~attempt =
  if attempt = 0 then config
  else
    {
      config with
      seed =
        Some
          ((match config.seed with None -> 0 | Some s -> s)
          + (104729 * attempt));
    }

let supervisor_policy config =
  {
    Supervisor.default_policy with
    Supervisor.seed = (match config.seed with None -> 0 | Some s -> s);
  }

(* [index] is the worker's slot within its round (who to credit in the
   decision); each incarnation takes a fresh [origin] from the shared
   counter, unique across rounds and restarts, so a restarted worker
   re-imports everything the pool holds — including what its previous
   incarnation published.  [stop_at] records when the stop flag was
   raised, so losing workers can report how long cooperative cancellation
   took.  The body runs under {!Supervisor.run}: any exception that is not
   cooperative cancellation (and not a genuine interrupt) is a crash,
   answered by a backoff restart with a fresh seed. *)
let run_worker ~problem ~vars ~deadline ~stop ~stop_at ~decision ~pool ~best
    ~origin_counter ~ext_interrupt ~on_cex index config =
  let interrupt () =
    Atomic.get stop || ext_interrupt () || Unix.gettimeofday () > deadline
  in
  let shared_out = ref 0 and shared_in = ref 0 in
  let finished = ref false in
  let acc = ref Report.Stats.zero in
  let sp =
    Telemetry.begin_span "portfolio.worker"
      ~fields:
        [
          ("worker", Telemetry.str config.label);
          ("config", Telemetry.str (config_to_string config));
        ]
  in
  let decide d =
    if Atomic.compare_and_set decision None (Some d) then begin
      finished := true;
      Atomic.set stop_at (Unix.gettimeofday ());
      Atomic.set stop true
    end
  in
  let body ~attempt =
    Fault.probe "worker.start";
    let config = reseed_for_attempt config ~attempt in
    let origin = Atomic.fetch_and_add origin_counter 1 in
    let cursor = ref 0 in
    let session =
      Cegis.create_session ~cex_mode:config.cex_mode ~verifier:config.verifier
        ~encoding:config.encoding ?seed:config.seed ~interrupt ~vars problem
    in
    (* fold this incarnation's learning into the worker totals exactly
       once, on every exit path — cancellation, crash, or victory *)
    let merge () =
      best_offer best (Cegis.session_best session);
      acc := Report.Stats.add !acc (Cegis.session_stats session)
    in
    let rec loop () =
      if interrupt () then ()
      else begin
        (* absorb counterexamples other workers discovered since last step *)
        let fresh, len = pool_drain pool ~cursor:!cursor ~self:origin in
        cursor := len;
        if fresh <> [] then
          Telemetry.counter "portfolio.consume"
            ~fields:[ ("worker", Telemetry.str config.label) ]
            (List.length fresh);
        List.iter
          (fun cex ->
            incr shared_in;
            Cegis.learn session cex)
          fresh;
        match Cegis.step ~deadline session with
        | Cegis.Done code -> decide (Winner (index, code))
        | Cegis.Exhausted ->
            (* sound globally: every imported constraint is implied by the
               specification, so an unsat synthesizer context refutes the
               whole configuration, not just this worker's search *)
            decide (Proved_unsat index)
        | Cegis.Progress cex ->
            if pool_publish pool origin cex then begin
              incr shared_out;
              on_cex cex;
              Telemetry.counter "portfolio.publish"
                ~fields:[ ("worker", Telemetry.str config.label) ]
                1
            end;
            loop ()
        | exception Ctx.Interrupted when not (interrupt ()) ->
            (* the solver reported an interrupt no one requested (an
               injected fault): the session is intact, so retry the step *)
            loop ()
      end
    in
    match loop () with
    | () -> merge ()
    | exception (Ctx.Timeout | Ctx.Interrupted) -> merge ()
    | exception e ->
        merge ();
        raise e
  in
  let sup =
    Supervisor.run ~policy:(supervisor_policy config) ~label:config.label body
  in
  (match sup.Supervisor.result with
  | Ok () -> ()
  | Error _ ->
      (* gave up after repeated crashes: this worker drops out of the
         race; its learning is already merged and the crash totals are
         reported below *)
      ());
  if Telemetry.enabled () && (not !finished) && Atomic.get stop then begin
    let t0 = Atomic.get stop_at in
    if t0 > 0.0 then
      Telemetry.gauge "portfolio.cancel_latency"
        ~fields:[ ("worker", Telemetry.str config.label) ]
        (Unix.gettimeofday () -. t0)
  end;
  let w_stats =
    {
      !acc with
      Report.Stats.worker_crashes = sup.Supervisor.crashes;
      worker_restarts = sup.Supervisor.restarts;
    }
  in
  Telemetry.end_span sp
    ~fields:
      [
        ("iterations", Telemetry.int w_stats.Report.Stats.iterations);
        ("published", Telemetry.int !shared_out);
        ("consumed", Telemetry.int !shared_in);
        ("finished", Telemetry.bool !finished);
        ("crashes", Telemetry.int sup.Supervisor.crashes);
      ];
  { w_stats; w_out = !shared_out; w_in = !shared_in; w_finished = !finished }

(* One domain, K workers: step the sessions round-robin, one CEGIS
   iteration per turn.  On a host without spare cores this has the same
   semantics and sharing behaviour as spawned domains but none of the
   scheduler noise: pool-arrival order is fixed by the rotation, so the
   whole race is deterministic for seeded configurations.  Crash
   supervision follows the same policy as the domains path, minus the
   backoff sleep — a sleeping rotation would stall every worker, and
   skipping it keeps the interleave deterministic. *)
type iworker = {
  iw_index : int;
  iw_config : config;
  mutable iw_session : Cegis.session option;  (** [None] = start-up crashed *)
  mutable iw_origin : int;
  mutable iw_cursor : int;
  mutable iw_out : int;
  mutable iw_in : int;
  mutable iw_dead : bool;
  mutable iw_won : bool;
  mutable iw_crashes : int;
  mutable iw_restarts : int;
  mutable iw_attempt : int;
  mutable iw_acc : Report.Stats.t;  (** stats of finished incarnations *)
}

let run_interleaved ~problem ~vars ~deadline ~decision ~pool ~best
    ~origin_counter ~ext_interrupt ~on_cex configs =
  let cancelled () = ext_interrupt () || Unix.gettimeofday () > deadline in
  let max_restarts = Supervisor.default_policy.Supervisor.max_restarts in
  let new_session w =
    Fault.probe "worker.start";
    let config = reseed_for_attempt w.iw_config ~attempt:w.iw_attempt in
    w.iw_origin <- Atomic.fetch_and_add origin_counter 1;
    w.iw_cursor <- 0;
    Cegis.create_session ~cex_mode:config.cex_mode ~verifier:config.verifier
      ~encoding:config.encoding ?seed:config.seed ~interrupt:cancelled ~vars
      problem
  in
  let record_crash w e =
    w.iw_crashes <- w.iw_crashes + 1;
    if Telemetry.enabled () then
      Telemetry.point "supervisor.crash"
        ~fields:
          [
            ("worker", Telemetry.str w.iw_config.label);
            ("attempt", Telemetry.int w.iw_attempt);
            ("exn", Telemetry.str (Printexc.to_string e));
          ]
  in
  (* retire the current incarnation's learning into the accumulator *)
  let merge w =
    match w.iw_session with
    | None -> ()
    | Some s ->
        best_offer best (Cegis.session_best s);
        w.iw_acc <- Report.Stats.add w.iw_acc (Cegis.session_stats s);
        w.iw_session <- None
  in
  (* (re)start a worker, counting start-up crashes against its budget *)
  let rec start w =
    if w.iw_crashes > max_restarts then w.iw_dead <- true
    else
      match new_session w with
      | s -> w.iw_session <- Some s
      | exception ((Ctx.Timeout | Ctx.Interrupted) as _e) -> w.iw_dead <- true
      | exception e ->
          record_crash w e;
          w.iw_attempt <- w.iw_attempt + 1;
          if w.iw_crashes <= max_restarts then begin
            w.iw_restarts <- w.iw_restarts + 1;
            start w
          end
          else w.iw_dead <- true
  in
  let workers =
    List.mapi
      (fun i config ->
        let w =
          {
            iw_index = i;
            iw_config = config;
            iw_session = None;
            iw_origin = -1;
            iw_cursor = 0;
            iw_out = 0;
            iw_in = 0;
            iw_dead = false;
            iw_won = false;
            iw_crashes = 0;
            iw_restarts = 0;
            iw_attempt = 0;
            iw_acc = Report.Stats.zero;
          }
        in
        start w;
        w)
      configs
  in
  let decided = ref false in
  let step_worker w =
    match w.iw_session with
    | None -> w.iw_dead <- true
    | Some session -> (
        try
          let fresh, len =
            pool_drain pool ~cursor:w.iw_cursor ~self:w.iw_origin
          in
          w.iw_cursor <- len;
          List.iter
            (fun cex ->
              w.iw_in <- w.iw_in + 1;
              Cegis.learn session cex)
            fresh;
          match Cegis.step ~deadline session with
          | Cegis.Done code ->
              decided := true;
              w.iw_won <- true;
              Atomic.set decision (Some (Winner (w.iw_index, code)))
          | Cegis.Progress cex ->
              if pool_publish pool w.iw_origin cex then begin
                w.iw_out <- w.iw_out + 1;
                on_cex cex
              end
          | Cegis.Exhausted ->
              decided := true;
              w.iw_won <- true;
              Atomic.set decision (Some (Proved_unsat w.iw_index))
          | exception Ctx.Interrupted when not (cancelled ()) ->
              (* spurious injected interrupt: session intact, step again
                 next turn *)
              ()
        with
        | Ctx.Timeout | Ctx.Interrupted ->
            merge w;
            w.iw_dead <- true
        | e ->
            record_crash w e;
            merge w;
            w.iw_attempt <- w.iw_attempt + 1;
            if w.iw_crashes <= max_restarts then begin
              w.iw_restarts <- w.iw_restarts + 1;
              start w
            end
            else w.iw_dead <- true)
  in
  let rec spin () =
    if !decided || cancelled () then ()
    else begin
      let progressed = ref false in
      List.iter
        (fun w ->
          if (not !decided) && (not w.iw_dead) && not (cancelled ()) then begin
            progressed := true;
            step_worker w
          end)
        workers;
      if !progressed then spin ()
    end
  in
  spin ();
  List.map
    (fun w ->
      merge w;
      let w_stats =
        {
          w.iw_acc with
          Report.Stats.worker_crashes = w.iw_crashes;
          worker_restarts = w.iw_restarts;
        }
      in
      if Telemetry.enabled () then
        Telemetry.point "portfolio.worker"
          ~fields:
            [
              ("worker", Telemetry.str w.iw_config.label);
              ("config", Telemetry.str (config_to_string w.iw_config));
              ("iterations", Telemetry.int w_stats.Report.Stats.iterations);
              ("published", Telemetry.int w.iw_out);
              ("consumed", Telemetry.int w.iw_in);
              ("finished", Telemetry.bool w.iw_won);
              ("crashes", Telemetry.int w.iw_crashes);
            ];
      { w_stats; w_out = w.iw_out; w_in = w.iw_in; w_finished = w.iw_won })
    workers

(* Reseeded copies of the round-0 configurations for restart round [r].
   Every worker gets a fresh deterministic seed (8191 is coprime to the
   default seed stride 7919) so a restarted race explores new trajectories
   while re-importing the whole counterexample pool on its first drain. *)
let reseed_configs r configs =
  List.map
    (fun c ->
      {
        c with
        label = Printf.sprintf "%sr%d" c.label r;
        seed = Some ((match c.seed with None -> 0 | Some s -> s) + (8191 * r));
      })
    configs

let synthesize ?(timeout = 120.0) ?(jobs = 4) ?(restart_interval = 20.0)
    ?(scheduler = `Auto) ?configs ?(interrupt = fun () -> false)
    ?(initial = []) ?(on_cex = fun _ -> ()) problem =
  if jobs < 1 then invalid_arg "Portfolio.synthesize: jobs must be >= 1";
  Fault.init_from_env ();
  let use_domains =
    match scheduler with
    | `Domains -> true
    | `Interleaved -> false
    | `Auto ->
        (* spawning domains on a host with no spare cores buys no
           parallelism and adds scheduler noise; step the workers
           round-robin in this domain instead *)
        Domain.recommended_domain_count () >= 2
  in
  let configs =
    match configs with
    | Some cs ->
        if List.length cs <> jobs then
          invalid_arg "Portfolio.synthesize: configs length must equal jobs";
        cs
    | None -> default_configs jobs
  in
  let start = Unix.gettimeofday () in
  let deadline = start +. timeout in
  let vars =
    Cegis.make_matrix_vars ~data_len:problem.Cegis.data_len
      ~check_len:problem.Cegis.check_len
  in
  let stop = Atomic.make false in
  let stop_at = Atomic.make 0.0 in
  let decision = Atomic.make None in
  let pool = pool_create () in
  let best = best_create () in
  (* origins are unique across rounds, workers and supervised restarts;
     -1 marks resumed counterexamples so every worker imports them *)
  let origin_counter = Atomic.make 0 in
  List.iter (fun cex -> ignore (pool_publish pool (-1) cex)) initial;
  if Telemetry.enabled () then
    Telemetry.point "portfolio.start"
      ~fields:
        [
          ("jobs", Telemetry.int jobs);
          ( "scheduler",
            Telemetry.str
              (if jobs = 1 then "inline"
               else if use_domains then "domains"
               else "interleaved") );
          ("timeout_s", Telemetry.float timeout);
          ("restart_interval_s", Telemetry.float restart_interval);
          ("resumed_cexes", Telemetry.int (List.length initial));
        ];
  (* Run restart rounds until a decision or the global deadline.  Round r
     gets a budget of [restart_interval * 2^r] (Luby-style doubling keeps
     total restart overhead within a constant factor of the best single
     budget); the counterexample pool carries over, so every new round
     starts from all accumulated refutations instead of from scratch.
     jobs = 1 never restarts: it is the deterministic sequential replay. *)
  let rec rounds r acc_workers round_configs =
    let now = Unix.gettimeofday () in
    let round_deadline =
      if jobs = 1 || restart_interval <= 0.0 then deadline
      else min deadline (now +. (restart_interval *. float_of_int (1 lsl r)))
    in
    Atomic.set stop false;
    if Telemetry.enabled () then
      Telemetry.point "portfolio.round"
        ~fields:
          [
            ("round", Telemetry.int r);
            ("budget_s", Telemetry.float (round_deadline -. now));
          ];
    let run i config =
      run_worker ~problem ~vars ~deadline:round_deadline ~stop ~stop_at
        ~decision ~pool ~best ~origin_counter ~ext_interrupt:interrupt ~on_cex
        i config
    in
    let outcomes =
      match round_configs with
      | [ only ] ->
          (* jobs = 1: run inline, no domain — deterministic replay of the
             sequential loop *)
          [ run 0 only ]
      | _ when not use_domains ->
          run_interleaved ~problem ~vars ~deadline:round_deadline ~decision
            ~pool ~best ~origin_counter ~ext_interrupt:interrupt ~on_cex
            round_configs
      | _ ->
          (* ambient span context (the serve request id) is per-domain
             state: capture it here and re-install in each worker so the
             spawned solvers' events stay correlated to the request *)
          let ctx = Telemetry.current_context () in
          let domains =
            List.mapi
              (fun i c ->
                Domain.spawn (fun () ->
                    with_runtime_request ctx (fun () ->
                        Telemetry.with_context ctx (fun () -> run i c))))
              round_configs
          in
          List.map Domain.join domains
    in
    let workers =
      List.map2
        (fun config o ->
          {
            config;
            stats = o.w_stats;
            shared_out = o.w_out;
            shared_in = o.w_in;
            finished = o.w_finished;
          })
        round_configs outcomes
    in
    let acc_workers = acc_workers @ workers in
    match Atomic.get decision with
    | Some _ -> (acc_workers, round_configs, r + 1)
    | None ->
        if round_deadline >= deadline || interrupt () then
          (acc_workers, round_configs, r + 1)
        else rounds (r + 1) acc_workers (reseed_configs (r + 1) configs)
  in
  let workers, last_configs, rounds_run = rounds 0 [] configs in
  let wall_clock = Unix.gettimeofday () -. start in
  let winner_config i = Some (List.nth last_configs i) in
  let report winner =
    {
      workers;
      winner;
      wall_clock;
      rounds = rounds_run;
      totals = Report.Stats.sum (List.map (fun w -> w.stats) workers);
    }
  in
  let finish outcome =
    if Telemetry.enabled () then begin
      let r = Report.outcome_info outcome in
      Telemetry.point "portfolio.winner"
        ~fields:
          [
            ("outcome", Telemetry.str (Report.outcome_kind outcome));
            ( "winner",
              Telemetry.str
                (match r.winner with
                | Some c -> config_to_string c
                | None -> "-") );
            ("rounds", Telemetry.int r.rounds);
            ("wall_s", Telemetry.float r.wall_clock);
            ( "iterations",
              Telemetry.int r.totals.Report.Stats.iterations );
          ]
    end;
    outcome
  in
  match Atomic.get decision with
  | Some (Winner (i, code)) ->
      finish (Report.Synthesized (code, report (winner_config i)))
  | Some (Proved_unsat i) -> finish (Report.Unsat_config (report (winner_config i)))
  | None -> (
      match best_get best with
      | Some (code, _) -> finish (Report.Partial (code, report None))
      | None -> finish (Report.Timed_out (report None)))

(* ---------- verification race ---------- *)

type verify_outcome = Holds | Refuted of Bitvec.t | Unknown

let verify_strategies =
  [
    ("comb", `Comb);
    ("sat-seq", `Sat Card.Sequential);
    ("sat-tot", `Sat Card.Totalizer);
    ("sat-adder", `Sat Card.Adder);
  ]

let verify_min_distance ?(timeout = 120.0) ?(jobs = 4) code m =
  if jobs < 1 then invalid_arg "Portfolio.verify_min_distance: jobs must be >= 1";
  let start = Unix.gettimeofday () in
  let deadline = start +. timeout in
  let stop = Atomic.make false in
  let decision = Atomic.make None in
  let strategies =
    List.filteri (fun i _ -> i < jobs) verify_strategies
  in
  let interrupt () = Atomic.get stop || Unix.gettimeofday () > deadline in
  let decide name answer =
    if Atomic.compare_and_set decision None (Some (name, answer)) then
      Atomic.set stop true
  in
  let run (name, strategy) =
    try
      let answer =
        match strategy with
        | `Comb -> (
            match Hamming.Distance.counterexample ~interrupt code m with
            | None -> Holds
            | Some d -> Refuted d)
        | `Sat encoding -> (
            match
              Hamming.Distance.sat_counterexample ~deadline ~interrupt
                ~encoding code m
            with
            | None -> Holds
            | Some d -> Refuted d)
      in
      decide name answer
    with Ctx.Timeout | Ctx.Interrupted -> ()
  in
  (match strategies with
  | [ only ] -> run only
  | _ ->
      let ctx = Telemetry.current_context () in
      let domains =
        List.map
          (fun s ->
            Domain.spawn (fun () ->
                with_runtime_request ctx (fun () ->
                    Telemetry.with_context ctx (fun () -> run s))))
          strategies
      in
      List.iter Domain.join domains);
  let wall_clock = Unix.gettimeofday () -. start in
  match Atomic.get decision with
  | Some (name, answer) -> (answer, name, wall_clock)
  | None -> (Unknown, "-", wall_clock)

(* ---------- rendering ---------- *)

let pp_report fmt r =
  Format.fprintf fmt
    "portfolio: %d workers, wall %.3fs, %d iterations, %d conflicts, %d round%s@."
    (List.length r.workers) r.wall_clock r.totals.Report.Stats.iterations
    (r.totals.Report.Stats.syn_conflicts + r.totals.Report.Stats.ver_conflicts)
    r.rounds
    (if r.rounds = 1 then "" else "s");
  (match r.winner with
  | Some c -> Format.fprintf fmt "winner: %s@." (config_to_string c)
  | None -> Format.fprintf fmt "winner: none (timed out)@.");
  List.iter
    (fun w ->
      Format.fprintf fmt
        "  %-40s iters=%-4d vcalls=%-4d syn_cf=%-6d ver_cf=%-6d out=%-3d in=%-3d%s%s@."
        (config_to_string w.config) w.stats.Report.Stats.iterations
        w.stats.Report.Stats.verifier_calls w.stats.Report.Stats.syn_conflicts
        w.stats.Report.Stats.ver_conflicts w.shared_out w.shared_in
        (if w.stats.Report.Stats.worker_crashes > 0 then
           Printf.sprintf " crashes=%d restarts=%d"
             w.stats.Report.Stats.worker_crashes
             w.stats.Report.Stats.worker_restarts
         else "")
        (if w.finished then "  <- decided" else ""))
    r.workers

let report_to_json r =
  let module J = Telemetry.Json in
  J.Obj
    [
      ( "workers",
        J.List
          (List.map
             (fun w ->
               J.Obj
                 [
                   ("config", J.Str (config_to_string w.config));
                   ("stats", Report.Stats.to_json w.stats);
                   ("shared_out", J.Int w.shared_out);
                   ("shared_in", J.Int w.shared_in);
                   ("finished", J.Bool w.finished);
                 ])
             r.workers) );
      ( "winner",
        match r.winner with
        | Some c -> J.Str (config_to_string c)
        | None -> J.Null );
      ("wall_clock_s", J.Float r.wall_clock);
      ("rounds", J.Int r.rounds);
      ("totals", Report.Stats.to_json r.totals);
    ]
