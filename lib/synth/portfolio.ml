open Gf2
open Smtlite

type config = {
  label : string;
  cex_mode : Cegis.cex_mode;
  verifier : Cegis.verifier_mode;
  encoding : Card.encoding;
  seed : int option;
}

type worker_stats = {
  config : config;
  stats : Cegis.stats;
  shared_out : int;
  shared_in : int;
  finished : bool;
}

type report = {
  workers : worker_stats list;
  winner : config option;
  wall_clock : float;
  rounds : int;
  totals : Report.Stats.t;
}

(* deprecated aliases: the one definition lives in Report *)
type ('res, 'info) report_outcome = ('res, 'info) Report.outcome =
  | Synthesized of 'res * 'info
  | Unsat_config of 'info
  | Timed_out of 'info

type outcome = (Hamming.Code.t, report) report_outcome

let config_to_string c =
  let seed = match c.seed with None -> "-" | Some s -> string_of_int s in
  Printf.sprintf "%s(cex=%s ver=%s enc=%s seed=%s)" c.label
    (Cegis.cex_mode_name c.cex_mode)
    (Cegis.verifier_name c.verifier)
    (Card.encoding_name c.encoding)
    seed

(* Worker 0 is exactly the sequential default configuration so that
   [--jobs 1] reproduces [Cegis.synthesize] bit for bit; the rest vary the
   cardinality encoding, counterexample mode, verifier and random seed.
   Past the base set, additional workers recycle encodings with fresh
   seeds. *)
let default_configs jobs =
  let base =
    [|
      { label = "w0"; cex_mode = Cegis.Data_word; verifier = Cegis.Combinatorial;
        encoding = Card.Sequential; seed = None };
      { label = "w1"; cex_mode = Cegis.Data_word; verifier = Cegis.Combinatorial;
        encoding = Card.Totalizer; seed = Some 1 };
      { label = "w2"; cex_mode = Cegis.Data_word; verifier = Cegis.Combinatorial;
        encoding = Card.Adder; seed = Some 2 };
      { label = "w3"; cex_mode = Cegis.Data_word; verifier = Cegis.Combinatorial;
        encoding = Card.Sequential; seed = Some 3 };
      { label = "w4"; cex_mode = Cegis.Data_word; verifier = Cegis.Sat;
        encoding = Card.Totalizer; seed = Some 4 };
      { label = "w5"; cex_mode = Cegis.Data_word; verifier = Cegis.Combinatorial;
        encoding = Card.Pairwise; seed = Some 5 };
      { label = "w6"; cex_mode = Cegis.Whole_candidate; verifier = Cegis.Combinatorial;
        encoding = Card.Sequential; seed = Some 6 };
    |]
  in
  List.init jobs (fun i ->
      if i < Array.length base then base.(i)
      else
        let b = base.(i mod Array.length base) in
        { b with label = Printf.sprintf "w%d" i; seed = Some (i * 7919 + 17) })

(* ---------- shared counterexample pool ---------- *)

(* A grow-only vector of (origin worker, cex) under a mutex.  Workers keep
   a private cursor and drain only entries they have not seen; entries are
   deduplicated on insertion so each distinct witness is transported once. *)
type pool = {
  mutex : Mutex.t;
  mutable items : (int * Cegis.cex) array;
  mutable len : int;
  seen_keys : (string, unit) Hashtbl.t;
}

let pool_create () =
  {
    mutex = Mutex.create ();
    items = Array.make 64 (-1, Cegis.Cex_data (Bitvec.create 0));
    len = 0;
    seen_keys = Hashtbl.create 64;
  }

let cex_key = function
  | Cegis.Cex_data d -> "d:" ^ Bitvec.to_string d
  | Cegis.Cex_candidate c -> "c:" ^ Hamming.Code.to_string c

(* Returns [true] when the cex was fresh (not already pooled). *)
let pool_publish pool origin cex =
  Mutex.protect pool.mutex (fun () ->
      let key = cex_key cex in
      if Hashtbl.mem pool.seen_keys key then false
      else begin
        Hashtbl.add pool.seen_keys key ();
        if pool.len = Array.length pool.items then begin
          let bigger = Array.make (2 * pool.len) pool.items.(0) in
          Array.blit pool.items 0 bigger 0 pool.len;
          pool.items <- bigger
        end;
        pool.items.(pool.len) <- (origin, cex);
        pool.len <- pool.len + 1;
        true
      end)

(* Entries after the cursor that some other worker contributed. *)
let pool_drain pool ~cursor ~self =
  Mutex.protect pool.mutex (fun () ->
      let fresh = ref [] in
      for i = pool.len - 1 downto cursor do
        let origin, cex = pool.items.(i) in
        if origin <> self then fresh := cex :: !fresh
      done;
      (!fresh, pool.len))

(* ---------- the race ---------- *)

type decision =
  | Winner of int * Hamming.Code.t
  | Proved_unsat of int

type worker_outcome = {
  w_stats : Cegis.stats;
  w_out : int;
  w_in : int;
  w_finished : bool;
}

(* [index] is the worker's slot within its round (who to credit in the
   decision); [origin] is unique across rounds so a restarted worker
   re-imports the counterexamples its previous incarnation published.
   [stop_at] records when the stop flag was raised, so losing workers can
   report how long their cooperative cancellation took. *)
let run_worker ~problem ~vars ~deadline ~stop ~stop_at ~decision ~pool ~origin
    index config =
  let interrupt () = Atomic.get stop || Unix.gettimeofday () > deadline in
  let shared_out = ref 0 and shared_in = ref 0 in
  let cursor = ref 0 in
  let finished = ref false in
  let sp =
    Telemetry.begin_span "portfolio.worker"
      ~fields:
        [
          ("worker", Telemetry.str config.label);
          ("config", Telemetry.str (config_to_string config));
          ("origin", Telemetry.int origin);
        ]
  in
  let session =
    Cegis.create_session ~cex_mode:config.cex_mode ~verifier:config.verifier
      ~encoding:config.encoding ?seed:config.seed ~interrupt ~vars problem
  in
  let decide d =
    if Atomic.compare_and_set decision None (Some d) then begin
      finished := true;
      Atomic.set stop_at (Unix.gettimeofday ());
      Atomic.set stop true
    end
  in
  let rec loop () =
    if Atomic.get stop || Unix.gettimeofday () > deadline then ()
    else begin
      (* absorb counterexamples other workers discovered since last step *)
      let fresh, len = pool_drain pool ~cursor:!cursor ~self:origin in
      cursor := len;
      if fresh <> [] then
        Telemetry.counter "portfolio.consume"
          ~fields:[ ("worker", Telemetry.str config.label) ]
          (List.length fresh);
      List.iter
        (fun cex ->
          incr shared_in;
          Cegis.learn session cex)
        fresh;
      match Cegis.step ~deadline session with
      | Cegis.Done code -> decide (Winner (index, code))
      | Cegis.Exhausted ->
          (* sound globally: every imported constraint is implied by the
             specification, so an unsat synthesizer context refutes the
             whole configuration, not just this worker's search *)
          decide (Proved_unsat index)
      | Cegis.Progress cex ->
          if pool_publish pool origin cex then begin
            incr shared_out;
            Telemetry.counter "portfolio.publish"
              ~fields:[ ("worker", Telemetry.str config.label) ]
              1
          end;
          loop ()
    end
  in
  (try loop () with Ctx.Timeout | Ctx.Interrupted -> ());
  if Telemetry.enabled () && (not !finished) && Atomic.get stop then begin
    let t0 = Atomic.get stop_at in
    if t0 > 0.0 then
      Telemetry.gauge "portfolio.cancel_latency"
        ~fields:[ ("worker", Telemetry.str config.label) ]
        (Unix.gettimeofday () -. t0)
  end;
  let w_stats = Cegis.session_stats session in
  Telemetry.end_span sp
    ~fields:
      [
        ("iterations", Telemetry.int w_stats.Report.Stats.iterations);
        ("published", Telemetry.int !shared_out);
        ("consumed", Telemetry.int !shared_in);
        ("finished", Telemetry.bool !finished);
      ];
  { w_stats; w_out = !shared_out; w_in = !shared_in; w_finished = !finished }

(* One domain, K workers: step the sessions round-robin, one CEGIS
   iteration per turn.  On a host without spare cores this has the same
   semantics and sharing behaviour as spawned domains but none of the
   scheduler noise: pool-arrival order is fixed by the rotation, so the
   whole race is deterministic for seeded configurations. *)
let run_interleaved ~problem ~vars ~deadline ~decision ~pool ~origin_base
    configs =
  let deadline_hit () = Unix.gettimeofday () > deadline in
  let workers =
    List.mapi
      (fun i config ->
        let session =
          Cegis.create_session ~cex_mode:config.cex_mode
            ~verifier:config.verifier ~encoding:config.encoding
            ?seed:config.seed ~interrupt:deadline_hit ~vars problem
        in
        (i, config, session, ref 0, ref 0, ref 0, ref false, ref false))
      configs
  in
  let decided = ref false in
  let rec spin () =
    if !decided || deadline_hit () then ()
    else begin
      let progressed = ref false in
      List.iter
        (fun (i, _config, session, cursor, s_out, s_in, dead, won) ->
          if (not !decided) && (not !dead) && not (deadline_hit ()) then begin
            progressed := true;
            try
              let fresh, len =
                pool_drain pool ~cursor:!cursor ~self:(origin_base + i)
              in
              cursor := len;
              List.iter
                (fun cex ->
                  incr s_in;
                  Cegis.learn session cex)
                fresh;
              match Cegis.step ~deadline session with
              | Cegis.Done code ->
                  decided := true;
                  won := true;
                  Atomic.set decision (Some (Winner (i, code)))
              | Cegis.Exhausted ->
                  decided := true;
                  won := true;
                  Atomic.set decision (Some (Proved_unsat i))
              | Cegis.Progress cex ->
                  if pool_publish pool (origin_base + i) cex then incr s_out
            with Ctx.Timeout | Ctx.Interrupted -> dead := true
          end)
        workers;
      if !progressed then spin ()
    end
  in
  spin ();
  List.map
    (fun (_, config, session, _cursor, s_out, s_in, _dead, won) ->
      let w_stats = Cegis.session_stats session in
      if Telemetry.enabled () then
        Telemetry.point "portfolio.worker"
          ~fields:
            [
              ("worker", Telemetry.str config.label);
              ("config", Telemetry.str (config_to_string config));
              ("iterations", Telemetry.int w_stats.Report.Stats.iterations);
              ("published", Telemetry.int !s_out);
              ("consumed", Telemetry.int !s_in);
              ("finished", Telemetry.bool !won);
            ];
      { w_stats; w_out = !s_out; w_in = !s_in; w_finished = !won })
    workers

(* Reseeded copies of the round-0 configurations for restart round [r].
   Every worker gets a fresh deterministic seed (8191 is coprime to the
   default seed stride 7919) so a restarted race explores new trajectories
   while re-importing the whole counterexample pool on its first drain. *)
let reseed_configs r configs =
  List.map
    (fun c ->
      {
        c with
        label = Printf.sprintf "%sr%d" c.label r;
        seed = Some ((match c.seed with None -> 0 | Some s -> s) + (8191 * r));
      })
    configs

let synthesize ?(timeout = 120.0) ?(jobs = 4) ?(restart_interval = 20.0)
    ?(scheduler = `Auto) ?configs problem =
  if jobs < 1 then invalid_arg "Portfolio.synthesize: jobs must be >= 1";
  let use_domains =
    match scheduler with
    | `Domains -> true
    | `Interleaved -> false
    | `Auto ->
        (* spawning domains on a host with no spare cores buys no
           parallelism and adds scheduler noise; step the workers
           round-robin in this domain instead *)
        Domain.recommended_domain_count () >= 2
  in
  let configs =
    match configs with
    | Some cs ->
        if List.length cs <> jobs then
          invalid_arg "Portfolio.synthesize: configs length must equal jobs";
        cs
    | None -> default_configs jobs
  in
  let start = Unix.gettimeofday () in
  let deadline = start +. timeout in
  let vars =
    Cegis.make_matrix_vars ~data_len:problem.Cegis.data_len
      ~check_len:problem.Cegis.check_len
  in
  let stop = Atomic.make false in
  let stop_at = Atomic.make 0.0 in
  let decision = Atomic.make None in
  let pool = pool_create () in
  if Telemetry.enabled () then
    Telemetry.point "portfolio.start"
      ~fields:
        [
          ("jobs", Telemetry.int jobs);
          ( "scheduler",
            Telemetry.str
              (if jobs = 1 then "inline"
               else if use_domains then "domains"
               else "interleaved") );
          ("timeout_s", Telemetry.float timeout);
          ("restart_interval_s", Telemetry.float restart_interval);
        ];
  (* Run restart rounds until a decision or the global deadline.  Round r
     gets a budget of [restart_interval * 2^r] (Luby-style doubling keeps
     total restart overhead within a constant factor of the best single
     budget); the counterexample pool carries over, so every new round
     starts from all accumulated refutations instead of from scratch.
     jobs = 1 never restarts: it is the deterministic sequential replay. *)
  let rec rounds r acc_workers round_configs =
    let now = Unix.gettimeofday () in
    let round_deadline =
      if jobs = 1 || restart_interval <= 0.0 then deadline
      else min deadline (now +. (restart_interval *. float_of_int (1 lsl r)))
    in
    Atomic.set stop false;
    if Telemetry.enabled () then
      Telemetry.point "portfolio.round"
        ~fields:
          [
            ("round", Telemetry.int r);
            ("budget_s", Telemetry.float (round_deadline -. now));
          ];
    let run i config =
      run_worker ~problem ~vars ~deadline:round_deadline ~stop ~stop_at
        ~decision ~pool ~origin:((r * jobs) + i) i config
    in
    let outcomes =
      match round_configs with
      | [ only ] ->
          (* jobs = 1: run inline, no domain — deterministic replay of the
             sequential loop *)
          [ run 0 only ]
      | _ when not use_domains ->
          run_interleaved ~problem ~vars ~deadline:round_deadline ~decision
            ~pool ~origin_base:(r * jobs) round_configs
      | _ ->
          let domains =
            List.mapi
              (fun i c -> Domain.spawn (fun () -> run i c))
              round_configs
          in
          List.map Domain.join domains
    in
    let workers =
      List.map2
        (fun config o ->
          {
            config;
            stats = o.w_stats;
            shared_out = o.w_out;
            shared_in = o.w_in;
            finished = o.w_finished;
          })
        round_configs outcomes
    in
    let acc_workers = acc_workers @ workers in
    match Atomic.get decision with
    | Some _ -> (acc_workers, round_configs, r + 1)
    | None ->
        if round_deadline >= deadline then (acc_workers, round_configs, r + 1)
        else rounds (r + 1) acc_workers (reseed_configs (r + 1) configs)
  in
  let workers, last_configs, rounds_run = rounds 0 [] configs in
  let wall_clock = Unix.gettimeofday () -. start in
  let winner_config i = Some (List.nth last_configs i) in
  let report winner =
    {
      workers;
      winner;
      wall_clock;
      rounds = rounds_run;
      totals = Report.Stats.sum (List.map (fun w -> w.stats) workers);
    }
  in
  let finish outcome =
    if Telemetry.enabled () then begin
      let r = Report.outcome_info outcome in
      Telemetry.point "portfolio.winner"
        ~fields:
          [
            ("outcome", Telemetry.str (Report.outcome_kind outcome));
            ( "winner",
              Telemetry.str
                (match r.winner with
                | Some c -> config_to_string c
                | None -> "-") );
            ("rounds", Telemetry.int r.rounds);
            ("wall_s", Telemetry.float r.wall_clock);
            ( "iterations",
              Telemetry.int r.totals.Report.Stats.iterations );
          ]
    end;
    outcome
  in
  match Atomic.get decision with
  | Some (Winner (i, code)) ->
      finish (Synthesized (code, report (winner_config i)))
  | Some (Proved_unsat i) -> finish (Unsat_config (report (winner_config i)))
  | None -> finish (Timed_out (report None))

(* ---------- verification race ---------- *)

type verify_outcome = Holds | Refuted of Bitvec.t | Unknown

let verify_strategies =
  [
    ("comb", `Comb);
    ("sat-seq", `Sat Card.Sequential);
    ("sat-tot", `Sat Card.Totalizer);
    ("sat-adder", `Sat Card.Adder);
  ]

let verify_min_distance ?(timeout = 120.0) ?(jobs = 4) code m =
  if jobs < 1 then invalid_arg "Portfolio.verify_min_distance: jobs must be >= 1";
  let start = Unix.gettimeofday () in
  let deadline = start +. timeout in
  let stop = Atomic.make false in
  let decision = Atomic.make None in
  let strategies =
    List.filteri (fun i _ -> i < jobs) verify_strategies
  in
  let interrupt () = Atomic.get stop || Unix.gettimeofday () > deadline in
  let decide name answer =
    if Atomic.compare_and_set decision None (Some (name, answer)) then
      Atomic.set stop true
  in
  let run (name, strategy) =
    try
      let answer =
        match strategy with
        | `Comb -> (
            match Hamming.Distance.counterexample ~interrupt code m with
            | None -> Holds
            | Some d -> Refuted d)
        | `Sat encoding -> (
            match
              Hamming.Distance.sat_counterexample ~deadline ~interrupt
                ~encoding code m
            with
            | None -> Holds
            | Some d -> Refuted d)
      in
      decide name answer
    with Ctx.Timeout | Ctx.Interrupted -> ()
  in
  (match strategies with
  | [ only ] -> run only
  | _ ->
      let domains =
        List.map (fun s -> Domain.spawn (fun () -> run s)) strategies
      in
      List.iter Domain.join domains);
  let wall_clock = Unix.gettimeofday () -. start in
  match Atomic.get decision with
  | Some (name, answer) -> (answer, name, wall_clock)
  | None -> (Unknown, "-", wall_clock)

(* ---------- rendering ---------- *)

let pp_report fmt r =
  Format.fprintf fmt
    "portfolio: %d workers, wall %.3fs, %d iterations, %d conflicts, %d round%s@."
    (List.length r.workers) r.wall_clock r.totals.Report.Stats.iterations
    (r.totals.Report.Stats.syn_conflicts + r.totals.Report.Stats.ver_conflicts)
    r.rounds
    (if r.rounds = 1 then "" else "s");
  (match r.winner with
  | Some c -> Format.fprintf fmt "winner: %s@." (config_to_string c)
  | None -> Format.fprintf fmt "winner: none (timed out)@.");
  List.iter
    (fun w ->
      Format.fprintf fmt
        "  %-40s iters=%-4d vcalls=%-4d syn_cf=%-6d ver_cf=%-6d out=%-3d in=%-3d%s@."
        (config_to_string w.config) w.stats.Cegis.iterations
        w.stats.Cegis.verifier_calls w.stats.Cegis.syn_conflicts
        w.stats.Cegis.ver_conflicts w.shared_out w.shared_in
        (if w.finished then "  <- decided" else ""))
    r.workers

let report_to_json r =
  let module J = Telemetry.Json in
  J.Obj
    [
      ( "workers",
        J.List
          (List.map
             (fun w ->
               J.Obj
                 [
                   ("config", J.Str (config_to_string w.config));
                   ("stats", Report.Stats.to_json w.stats);
                   ("shared_out", J.Int w.shared_out);
                   ("shared_in", J.Int w.shared_in);
                   ("finished", J.Bool w.finished);
                 ])
             r.workers) );
      ( "winner",
        match r.winner with
        | Some c -> J.Str (config_to_string c)
        | None -> J.Null );
      ("wall_clock_s", J.Float r.wall_clock);
      ("rounds", J.Int r.rounds);
      ("totals", Report.Stats.to_json r.totals);
    ]
