(** The CEGIS synthesize–verify loop of Algorithm 1 for a fixed
    configuration (data length, check length, target minimum distance).

    The synthesizer solver holds symbolic coefficient-matrix bits plus all
    non-distance constraints and the accumulated counterexamples; the
    verifier checks each candidate's minimum distance and returns a witness
    data word on failure.  Witnesses are turned into new synthesizer
    constraints ("this data word must encode to weight >= md"), which
    generalizes the paper's whole-candidate [makeCex] blocking; the
    original blocking mode is available for the ablation benchmark. *)

type cex_mode =
  | Data_word
      (** learn "codeword of this data word must have weight >= md"
          (small, general counterexamples — §6 "future work" optimization) *)
  | Whole_candidate
      (** block only the exact candidate matrix (the paper's [makeCex]) *)

type verifier_mode =
  | Combinatorial  (** exact enumeration by ascending data weight *)
  | Sat  (** SAT-based verifier, reproducing the paper's methodology *)

(** Stable wire names ("data-word"/"whole-candidate", "comb"/"sat") used in
    CLI flags, [--stats json] output and telemetry events. *)
val cex_mode_name : cex_mode -> string

val verifier_name : verifier_mode -> string

(** Extra synthesizer-side constraints over the symbolic coefficient
    matrix: [entry ~row ~col] is the P-matrix bit variable. *)
type problem = {
  data_len : int;
  check_len : int;
  min_distance : int;
  extra : (entry:(row:int -> col:int -> Smtlite.Expr.t) -> Smtlite.Expr.t) list;
      (** each callback builds one side constraint from the bit variables *)
}

(** A counterexample learned from one failed candidate, in a form that can
    be replayed into {e any} session for the same problem (the portfolio's
    shared pool transports these between workers): the raw witness data, not
    an encoded constraint, so each recipient re-encodes it with its own
    cardinality encoding. *)
type cex =
  | Cex_data of Gf2.Bitvec.t
      (** witness data word whose codeword fell below the distance bound *)
  | Cex_candidate of Hamming.Code.t  (** the blocked candidate itself *)

(** [make_matrix_vars ~data_len ~check_len] draws a fresh block of symbolic
    coefficient-matrix bits from {!Smtlite.Fresh} (whose atomic counter
    makes allocation safe and deterministic across portfolio domains). *)
val make_matrix_vars :
  data_len:int -> check_len:int -> Smtlite.Expr.t array array

(** A resumable CEGIS run: the synthesizer context plus counters.  One
    {!step} call performs exactly one iteration of Algorithm 1, so callers
    (the sequential driver, the parallel portfolio) own the loop and can
    interleave it with counterexample exchange or cancellation checks. *)
type session

(** [create_session ?cex_mode ?verifier ?encoding ?seed ?interrupt ?vars
    problem] prepares a session.  [seed] diversifies the synthesizer's (and
    SAT verifier's) search deterministically; [interrupt] is polled
    cooperatively inside solver search and aborts a pending {!step} with
    {!Smtlite.Ctx.Interrupted} when it returns [true]; [vars] supplies the
    symbolic coefficient-matrix bits (shared across portfolio workers so
    candidates and counterexamples refer to the same expression variables —
    fresh ones are drawn from {!Smtlite.Fresh} otherwise).
    @raise Invalid_argument on an empty problem or mismatched [vars]. *)
val create_session :
  ?cex_mode:cex_mode ->
  ?verifier:verifier_mode ->
  ?encoding:Smtlite.Card.encoding ->
  ?seed:int ->
  ?interrupt:(unit -> bool) ->
  ?vars:Smtlite.Expr.t array array ->
  ?initial:cex list ->
  problem ->
  session

(** The symbolic coefficient-matrix bits of a session ([data_len] rows of
    [check_len] columns). *)
val matrix_vars : session -> Smtlite.Expr.t array array

(** One CEGIS iteration: solve for a candidate, verify it, learn the
    counterexample on failure. *)
type step_result =
  | Done of Hamming.Code.t  (** candidate passed verification *)
  | Progress of cex  (** candidate refuted; the cex is already learned *)
  | Exhausted  (** synthesizer context is unsatisfiable *)

(** [step ?deadline session] performs one iteration.  [deadline] is an
    absolute instant bounding the solver calls inside this step.
    @raise Smtlite.Ctx.Timeout when the deadline passes mid-step.
    @raise Smtlite.Ctx.Interrupted when the session's interrupt fires. *)
val step : ?deadline:float -> session -> step_result

(** [learn session cex] asserts a counterexample produced elsewhere
    (another portfolio worker) into this session, re-encoding it with the
    session's own cardinality encoding. *)
val learn : session -> cex -> unit

(** Statistics of the session so far. *)
val session_stats : session -> Report.Stats.t

(** [session_best session] is the best refuted candidate so far together
    with its verified distance bound: the refuting witness's codeword
    weight, an upper bound on the candidate's minimum distance.  This is
    the anytime result carried by a [Partial] outcome.  [None] until the
    first candidate has been refuted. *)
val session_best : session -> (Hamming.Code.t * int) option

(** [synthesize ?timeout ?cex_mode ?verifier ?encoding ?seed ?interrupt
    ?initial ?on_progress problem] runs the loop.  [timeout] (seconds,
    default 120 as in the paper) bounds the whole call; when it (or a
    genuine [interrupt]) fires and at least one candidate has been refuted,
    the best one is returned as [Partial] rather than discarded.  A
    spurious {!Smtlite.Ctx.Interrupted} (one raised while [interrupt] does
    not actually return [true] — fault injection, stale hooks) retries the
    interrupted step instead of aborting the run.  [initial]
    counterexamples (from a checkpoint) are replayed before the first
    candidate; [on_progress] observes every newly learned counterexample
    (checkpoint writers hook in here).  Equivalent to driving {!step}
    until completion. *)
val synthesize :
  ?timeout:float ->
  ?cex_mode:cex_mode ->
  ?verifier:verifier_mode ->
  ?encoding:Smtlite.Card.encoding ->
  ?seed:int ->
  ?interrupt:(unit -> bool) ->
  ?initial:cex list ->
  ?on_progress:(session -> cex -> unit) ->
  problem ->
  (Hamming.Code.t, Report.Stats.t) Report.outcome
