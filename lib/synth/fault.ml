(* Deterministic fault injection for resilience testing.

   A fault spec names probe sites (e.g. "sat.solve", "ctx.check",
   "worker.start") and, per site, an action (crash / stall / interrupt)
   with an injection probability.  Each (site, action) directive owns a
   splitmix64 stream keyed on the global seed and the directive name, and
   draws one number per probe invocation from an atomic invocation
   counter — so the k-th probe of a site always makes the same
   inject-or-not choice for a given seed, no matter how worker domains
   interleave.  Disabled (the default) the probes cost one load and a
   branch inside Sat.Solver.probe. *)

type action = Crash | Stall | Interrupt | Torn_write

let action_name = function
  | Crash -> "crash"
  | Stall -> "stall"
  | Interrupt -> "interrupt"
  | Torn_write -> "torn_write"

let action_of_name = function
  | "crash" -> Some Crash
  | "stall" -> Some Stall
  | "interrupt" -> Some Interrupt
  | "torn_write" -> Some Torn_write
  | _ -> None

type directive = {
  site : string;
  action : action;
  probability : float;
  max_injections : int option;
  injected : int Atomic.t;
  draws : int Atomic.t;
}

type spec = {
  seed : int;
  stall_s : float;
  directives : directive list;
}

exception Injected of string

(* ---------- deterministic per-directive randomness ---------- *)

let splitmix64 x =
  let open Int64 in
  let x = add x 0x9E3779B97F4A7C15L in
  let x = mul (logxor x (shift_right_logical x 30)) 0xBF58476D1CE4E5B9L in
  let x = mul (logxor x (shift_right_logical x 27)) 0x94D049BB133111EBL in
  logxor x (shift_right_logical x 31)

let directive_base seed d =
  let h = Hashtbl.hash (d.site, action_name d.action) in
  splitmix64 (Int64.of_int (seed lxor (h * 0x9E3779B9)))

(* uniform in [0, 1) from the top 53 bits of the i-th stream element *)
let draw ~base i =
  let bits =
    Int64.shift_right_logical (splitmix64 (Int64.add base (Int64.of_int i))) 11
  in
  Int64.to_float bits /. 9007199254740992.0

(* ---------- spec parsing ---------- *)

let parse text =
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let items =
    List.filter (fun s -> s <> "")
      (List.map String.trim (String.split_on_char ',' text))
  in
  let seed = ref 0 and stall_ms = ref 2.0 and directives = ref [] in
  let parse_item item =
    match String.index_opt item '=' with
    | None -> fail "fault directive %S has no '='" item
    | Some eq -> (
        let key = String.sub item 0 eq in
        let value = String.sub item (eq + 1) (String.length item - eq - 1) in
        match key with
        | "seed" -> (
            match int_of_string_opt value with
            | Some s ->
                seed := s;
                Ok ()
            | None -> fail "fault seed %S is not an integer" value)
        | "stall_ms" -> (
            match float_of_string_opt value with
            | Some ms when ms >= 0.0 ->
                stall_ms := ms;
                Ok ()
            | _ -> fail "fault stall_ms %S is not a non-negative number" value)
        | _ -> (
            (* <site>.<action>=<prob>[:max=<n>] *)
            match String.rindex_opt key '.' with
            | None -> fail "fault directive %S is not <site>.<action>" key
            | Some dot -> (
                let site = String.sub key 0 dot in
                let action_s =
                  String.sub key (dot + 1) (String.length key - dot - 1)
                in
                match action_of_name action_s with
                | None ->
                    fail "unknown fault action %S (crash|stall|interrupt)"
                      action_s
                | Some action -> (
                    let prob_s, max_injections =
                      match String.index_opt value ':' with
                      | None -> (value, Ok None)
                      | Some colon -> (
                          let p = String.sub value 0 colon in
                          let rest =
                            String.sub value (colon + 1)
                              (String.length value - colon - 1)
                          in
                          match String.split_on_char '=' rest with
                          | [ "max"; n ] -> (
                              match int_of_string_opt n with
                              | Some n when n >= 0 -> (p, Ok (Some n))
                              | _ ->
                                  (p, fail "fault max %S is not a count" n))
                          | _ ->
                              (p, fail "fault option %S is not max=<n>" rest))
                    in
                    match (float_of_string_opt prob_s, max_injections) with
                    | _, (Error _ as e) -> e
                    | Some p, Ok max_injections when p >= 0.0 && p <= 1.0 ->
                        directives :=
                          {
                            site;
                            action;
                            probability = p;
                            max_injections;
                            injected = Atomic.make 0;
                            draws = Atomic.make 0;
                          }
                          :: !directives;
                        Ok ()
                    | _ ->
                        fail "fault probability %S is not in [0, 1]" prob_s))))
  in
  let rec go = function
    | [] ->
        Ok
          {
            seed = !seed;
            stall_s = !stall_ms /. 1000.0;
            directives = List.rev !directives;
          }
    | item :: rest -> ( match parse_item item with Ok () -> go rest | Error _ as e -> e)
  in
  go items

(* ---------- the active spec and probe dispatch ---------- *)

let active : spec option ref = ref None

(* Torn-write injections can't be expressed as an exception or a sleep:
   the *caller* must truncate its payload mid-write.  [dispatch] runs
   every directive for a site and reports whether a torn_write fired;
   [probe] (the common entry point) ignores that bit, [probe_write]
   returns it to write sites that know how to tear themselves. *)
let dispatch spec ~torn_ok site =
  let torn = ref false in
  List.iter
    (fun d ->
      if String.equal d.site site then begin
        let i = Atomic.fetch_and_add d.draws 1 in
        let under_max =
          match d.max_injections with
          | None -> true
          | Some m -> Atomic.get d.injected < m
        in
        if
          under_max
          && (torn_ok || d.action <> Torn_write)
          && draw ~base:(directive_base spec.seed d) i < d.probability
        then begin
          Atomic.incr d.injected;
          if Telemetry.enabled () then
            Telemetry.point "fault.inject"
              ~fields:
                [
                  ("site", Telemetry.str site);
                  ("action", Telemetry.str (action_name d.action));
                ];
          match d.action with
          | Crash ->
              raise (Injected (site ^ "." ^ action_name d.action))
          | Stall -> if spec.stall_s > 0.0 then Unix.sleepf spec.stall_s
          | Interrupt -> raise Sat.Solver.Interrupted
          | Torn_write -> torn := true
        end
      end)
    spec.directives;
  !torn

let probe site =
  match !active with
  | None -> ()
  | Some spec -> ignore (dispatch spec ~torn_ok:false site)

let probe_write site =
  match !active with
  | None -> `Full
  | Some spec -> if dispatch spec ~torn_ok:true site then `Torn else `Full

let set_spec spec =
  active := spec;
  Sat.Solver.set_probe (match spec with None -> None | Some _ -> Some probe)

let spec () = !active

let injection_count () =
  match !active with
  | None -> 0
  | Some spec ->
      List.fold_left (fun acc d -> acc + Atomic.get d.injected) 0 spec.directives

let initialized = ref false

let init_from_env () =
  if not !initialized then begin
    initialized := true;
    match Sys.getenv_opt "FEC_FAULT_SPEC" with
    | None | Some "" -> ()
    | Some text -> (
        match parse text with
        | Ok spec -> set_spec (Some spec)
        | Error msg -> failwith ("FEC_FAULT_SPEC: " ^ msg))
  end
