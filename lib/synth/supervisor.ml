(* Crash supervision for synthesis workers.

   A supervised body may raise anything: cooperative-cancellation
   exceptions (Ctx.Timeout / Ctx.Interrupted by default) pass through
   untouched — they are the normal way a losing portfolio worker stops —
   while every other exception is captured as a crash, recorded in
   telemetry, and answered by restarting the body after a jittered
   exponential backoff.  The attempt index is handed to the body so each
   incarnation can reseed itself.  Crash/restart totals feed the new
   Report.Stats counters, so a degraded run is visible in --stats. *)

type policy = {
  max_restarts : int;
  backoff_base : float;
  backoff_max : float;
  jitter : float;
  seed : int;
}

let default_policy =
  {
    max_restarts = 3;
    backoff_base = 0.01;
    backoff_max = 0.5;
    jitter = 0.5;
    seed = 0;
  }

type 'a run = {
  result : ('a, exn) Stdlib.result;
  crashes : int;
  restarts : int;
}

let default_cancellation = function
  | Smtlite.Ctx.Timeout | Smtlite.Ctx.Interrupted -> true
  | _ -> false

(* splitmix64, as in Fault: backoff jitter must be deterministic per
   (seed, label, attempt) so seeded resilience trials are reproducible *)
let splitmix64 x =
  let open Int64 in
  let x = add x 0x9E3779B97F4A7C15L in
  let x = mul (logxor x (shift_right_logical x 30)) 0xBF58476D1CE4E5B9L in
  let x = mul (logxor x (shift_right_logical x 27)) 0x94D049BB133111EBL in
  logxor x (shift_right_logical x 31)

let unit_draw ~seed ~label ~attempt =
  let h = Hashtbl.hash (label, attempt) in
  let bits =
    Int64.shift_right_logical
      (splitmix64 (Int64.of_int (seed lxor (h * 0x9E3779B9))))
      11
  in
  Int64.to_float bits /. 9007199254740992.0

let backoff_delay policy ~label ~attempt =
  let base =
    Float.min policy.backoff_max
      (policy.backoff_base *. Float.pow 2.0 (float_of_int attempt))
  in
  let u = unit_draw ~seed:policy.seed ~label ~attempt in
  Float.max 0.0 (base *. (1.0 +. (policy.jitter *. (u -. 0.5))))

let run ?(policy = default_policy) ?(label = "worker")
    ?(is_cancellation = default_cancellation) body =
  let crashes = ref 0 in
  let restarts = ref 0 in
  let rec attempt i =
    match body ~attempt:i with
    | v -> { result = Ok v; crashes = !crashes; restarts = !restarts }
    | exception e when not (is_cancellation e) ->
        incr crashes;
        if Telemetry.enabled () then
          Telemetry.point "supervisor.crash"
            ~fields:
              [
                ("worker", Telemetry.str label);
                ("attempt", Telemetry.int i);
                ("exn", Telemetry.str (Printexc.to_string e));
              ];
        if !crashes > policy.max_restarts then begin
          if Telemetry.enabled () then
            Telemetry.point "supervisor.giveup"
              ~fields:
                [
                  ("worker", Telemetry.str label);
                  ("crashes", Telemetry.int !crashes);
                ];
          { result = Error e; crashes = !crashes; restarts = !restarts }
        end
        else begin
          let delay = backoff_delay policy ~label ~attempt:i in
          if Telemetry.enabled () then
            Telemetry.point "supervisor.restart"
              ~fields:
                [
                  ("worker", Telemetry.str label);
                  ("attempt", Telemetry.int (i + 1));
                  ("delay_s", Telemetry.float delay);
                ];
          if delay > 0.0 then Unix.sleepf delay;
          incr restarts;
          attempt (i + 1)
        end
  in
  attempt 0
