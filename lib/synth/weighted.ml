open Smtlite

type gen_shape = { check_len : int; min_distance : int }

type result = {
  mapping : int array;
  sum_w : float;
  counts : int * int;
  codes : Hamming.Code.t * Hamming.Code.t;
  iterations : int;
  elapsed : float;
  optimal : bool;
}

(* Per-bit cost if the bit lands on a generator with [t] data bits in
   total: the paper's chooseTimesPow approximation. *)
let cost ~p shape t =
  if t = 0 then 0.0
  else
    Hamming.Robustness.choose_times_pow ~n:(t + shape.check_len)
      ~m:shape.min_distance ~p

let sum_w_of ~p ~weights ~mapping g0 g1 =
  let l = Array.length weights in
  if Array.length mapping <> l then invalid_arg "Weighted.sum_w_of: length mismatch";
  let t0 = Array.fold_left (fun acc g -> if g = 0 then acc + 1 else acc) 0 mapping in
  let t1 = l - t0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun j g ->
      let c = if g = 0 then cost ~p g0 t0 else cost ~p g1 t1 in
      acc := !acc +. (float_of_int weights.(j) *. c))
    mapping;
  !acc

let scale = 1_000_000_000.0

let optimize ?(timeout = 360.0) ?(p = 0.1) ?(initial_bound = 1000.0) ~weights g0 g1 =
  let l = Array.length weights in
  if l = 0 then invalid_arg "Weighted.optimize: empty weights";
  if g0.check_len < 1 || g1.check_len < 1 then
    invalid_arg "Weighted.optimize: check lengths must be positive";
  if Array.exists (fun w -> w < 0) weights then
    invalid_arg "Weighted.optimize: negative weight";
  let start = Unix.gettimeofday () in
  let deadline = start +. timeout in
  let ctx = Ctx.create () in
  let xs = Fresh.make_n l in
  (* x_j true <=> bit j mapped to generator 0 *)
  let xs_arr = Array.of_list xs in
  (* both generators must carry at least one bit *)
  Ctx.assert_ ctx (Card.at_least Card.Sequential xs 1);
  Ctx.assert_ ctx (Card.at_most Card.Sequential xs (l - 1));
  (* unary count of bits on generator 0 *)
  let u = Card.counts Card.Sequential xs in
  let sel_t t =
    if t = 0 then Expr.not_ u.(0)
    else if t = l then u.(l - 1)
    else Expr.and_ [ u.(t - 1); Expr.not_ u.(t) ]
  in
  (* symbolic weighted sums per side *)
  let w0 =
    Bv.sum (List.mapi (fun j x -> Bv.scale weights.(j) [| x |]) xs)
  in
  let w1 =
    Bv.sum (List.mapi (fun j x -> Bv.scale weights.(j) [| Expr.not_ x |]) xs)
  in
  let scaled f = int_of_float (Float.round (f *. scale)) in
  (* assert: under the active count t, a_t*W0 + b_t*W1 <= bound *)
  let bound_constraint bound_scaled =
    let per_t t =
      let a = scaled (cost ~p g0 t) and b = scaled (cost ~p g1 (l - t)) in
      let lhs = Bv.add (Bv.scale a w0) (Bv.scale b w1) in
      Expr.imp (sel_t t)
        (Bv.ule lhs (Bv.of_int ~width:62 bound_scaled))
    in
    Expr.and_ (List.init (l + 1) per_t)
  in
  let iterations = ref 0 in
  let best = ref None in
  let proved_optimal = ref false in
  (try
     let current_bound = ref (scaled initial_bound) in
     let continue_search = ref true in
     while !continue_search do
       Ctx.push ctx;
       Ctx.assert_ ctx (bound_constraint !current_bound);
       incr iterations;
       match Ctx.check ~deadline ctx with
       | Ctx.Unsat ->
           Ctx.pop ctx;
           proved_optimal := !best <> None;
           continue_search := false
       | Ctx.Sat ->
           let mapping =
             Array.map (fun x -> if Ctx.model_bool ctx x then 0 else 1) xs_arr
           in
           let achieved = sum_w_of ~p ~weights ~mapping g0 g1 in
           best := Some (mapping, achieved);
           Ctx.pop ctx;
           let next = scaled achieved - 1 in
           if next < 0 then begin
             proved_optimal := true;
             continue_search := false
           end
           else current_bound := next
     done
   with Ctx.Timeout -> ());
  match !best with
  | None -> None
  | Some (mapping, achieved) ->
      let t0 = Array.fold_left (fun acc g -> if g = 0 then acc + 1 else acc) 0 mapping in
      let t1 = l - t0 in
      (* synthesize concrete generators for the chosen shapes *)
      let synth_code ~data_len shape =
        let remaining = deadline -. Unix.gettimeofday () in
        let timeout = max 5.0 remaining in
        let problem =
          {
            Cegis.data_len;
            check_len = shape.check_len;
            min_distance = shape.min_distance;
            extra = [];
          }
        in
        match Cegis.synthesize ~timeout problem with
        | Report.Synthesized (code, stats) ->
            iterations := !iterations + stats.Report.Stats.iterations;
            code
        | Report.Unsat_config _ | Report.Timed_out _ | Report.Partial _ ->
            (* fall back to a catalog construction of the same shape
               (a partial candidate is unverified, so it does not count) *)
            if shape.min_distance <= 2 then Hamming.Catalog.parity data_len
            else Hamming.Catalog.shortened ~data_len ~check_len:shape.check_len
      in
      let code0 = synth_code ~data_len:t0 g0 in
      let code1 = synth_code ~data_len:t1 g1 in
      Some
        {
          mapping;
          sum_w = achieved;
          counts = (t0, t1);
          codes = (code0, code1);
          iterations = !iterations;
          elapsed = Unix.gettimeofday () -. start;
          optimal = !proved_optimal;
        }
