type check_result = {
  code : Hamming.Code.t;
  check_len : int;
  stats : Report.Stats.t;
}

(* One configuration attempt of an optimization walk, as a telemetry event. *)
let step_point ~walk ~param outcome =
  if Telemetry.enabled () then
    Telemetry.point "optimize.step"
      ~fields:
        [
          ("walk", Telemetry.str walk);
          ("param", Telemetry.int param);
          ("outcome", Telemetry.str (Report.outcome_kind outcome));
          ( "iterations",
            Telemetry.int (Report.outcome_info outcome).Report.Stats.iterations
          );
        ]

(* Only raw data witnesses transfer across configurations: the weight
   constraint a data word induces is implied by the specification for any
   check length, whereas a candidate-shaped counterexample is tied to the
   dimensions it was found at. *)
let transferable_cexes cexes =
  List.filter (function Cegis.Cex_data _ -> true | Cegis.Cex_candidate _ -> false)
    cexes

let minimize_check_len ?timeout ?cex_mode ?verifier ?encoding ?interrupt
    ?(initial = []) ?on_round ?on_cex ~data_len ~md ~check_lo ~check_hi () =
  let initial = transferable_cexes initial in
  let on_progress = Option.map (fun f _session cex -> f cex) on_cex in
  let rec go c acc =
    if c > check_hi then Report.Unsat_config acc
    else begin
      (match on_round with Some f -> f c | None -> ());
      let problem =
        { Cegis.data_len; check_len = c; min_distance = md; extra = [] }
      in
      let outcome =
        Cegis.synthesize ?timeout ?cex_mode ?verifier ?encoding ?interrupt
          ?on_progress ~initial problem
      in
      step_point ~walk:"check_len" ~param:c outcome;
      match outcome with
      | Report.Synthesized (code, stats) ->
          let acc = Report.Stats.add acc stats in
          Report.Synthesized ({ code; check_len = c; stats = acc }, acc)
      | Report.Unsat_config stats -> go (c + 1) (Report.Stats.add acc stats)
      | Report.Timed_out stats -> Report.Timed_out (Report.Stats.add acc stats)
      | Report.Partial (code, stats) ->
          (* the walk's budget died at check length [c], but its session
             saw a near-miss candidate: surface it as the anytime result *)
          let acc = Report.Stats.add acc stats in
          Report.Partial ({ code; check_len = c; stats = acc }, acc)
    end
  in
  go check_lo Report.Stats.zero

type setbits_step = {
  bound : int;
  achieved : int;
  generator : Hamming.Code.t;
  step_stats : Report.Stats.t;
}

let minimize_set_bits ?timeout ?cex_mode ?verifier ?encoding ?interrupt
    ~data_len ~check_len ~md ~start_bound ~stop_bound () =
  let setbit_constraint bound ~entry =
    let bits = ref [] in
    for i = 0 to data_len - 1 do
      for j = 0 to check_len - 1 do
        bits := entry ~row:i ~col:j :: !bits
      done
    done;
    Smtlite.Card.at_most Smtlite.Card.Sequential !bits bound
  in
  let rec go bound acc =
    if bound < stop_bound then List.rev acc
    else
      let problem =
        {
          Cegis.data_len;
          check_len;
          min_distance = md;
          extra = [ setbit_constraint bound ];
        }
      in
      let outcome =
        Cegis.synthesize ?timeout ?cex_mode ?verifier ?encoding ?interrupt
          problem
      in
      step_point ~walk:"set_bits" ~param:bound outcome;
      match outcome with
      | Report.Synthesized (code, stats) ->
          let achieved = Hamming.Code.set_bits code in
          let step = { bound; achieved; generator = code; step_stats = stats } in
          (* tighten strictly below what was achieved *)
          go (achieved - 1) (step :: acc)
      | Report.Unsat_config _ | Report.Timed_out _ | Report.Partial _ ->
          (* the steps already collected are the anytime result of this
             walk: every intermediate generator is returned *)
          List.rev acc
  in
  go start_bound []
