(* On-disk checkpoints of a synthesis session.

   A checkpoint captures everything a CEGIS run has paid for that a fresh
   process can reuse: the counterexample pool (raw witnesses, so any
   configuration can re-encode them), the best-so-far generator with its
   verified bound, the optimization bound in force, and the iteration count
   of the interrupted run (so a resumed run can demonstrate it started
   warm).

   The format is versioned line-oriented text ending in

     end
     crc <8 hex digits>

   where the CRC-32 covers every byte up to and including the "end" line.
   Writes go to a temporary file in the same directory followed by an
   atomic rename, so a crash mid-write leaves either the previous complete
   checkpoint or a temp file that is never read — and if a partial file
   does appear (copy truncation, disk full), the CRC refuses it.  Corrupt
   or version-mismatched checkpoints are reported as errors, never
   trusted. *)

let version = 1

type t = {
  data_len : int;
  check_len : int;
  min_distance : int;
  iterations : int;
  opt_bound : int option;
  best : (Hamming.Code.t * int) option;
  cexes : Cegis.cex list;
}

type error = Io of string | Corrupt of string | Version_mismatch of int

let error_to_string = function
  | Io msg -> "cannot read checkpoint: " ^ msg
  | Corrupt msg -> "corrupt checkpoint: " ^ msg
  | Version_mismatch v ->
      Printf.sprintf "checkpoint version %d is not supported (expected %d)" v
        version

(* one-line code rendering: rows joined with ';' (Matrix.of_string_rows
   accepts it back) *)
let code_to_line code =
  String.map (fun c -> if c = '\n' then ';' else c) (Hamming.Code.to_string code)

let render t =
  let b = Buffer.create 1024 in
  Buffer.add_string b (Printf.sprintf "fecsynth-checkpoint %d\n" version);
  Buffer.add_string b
    (Printf.sprintf "problem %d %d %d\n" t.data_len t.check_len t.min_distance);
  Buffer.add_string b (Printf.sprintf "iterations %d\n" t.iterations);
  (match t.opt_bound with
  | Some n -> Buffer.add_string b (Printf.sprintf "bound %d\n" n)
  | None -> ());
  (match t.best with
  | Some (code, bound) ->
      Buffer.add_string b
        (Printf.sprintf "best %d %s\n" bound (code_to_line code))
  | None -> ());
  List.iter
    (fun cex ->
      match cex with
      | Cegis.Cex_data d ->
          Buffer.add_string b
            (Printf.sprintf "cex d %s\n" (Gf2.Bitvec.to_string d))
      | Cegis.Cex_candidate code ->
          Buffer.add_string b (Printf.sprintf "cex c %s\n" (code_to_line code)))
    t.cexes;
  Buffer.add_string b "end\n";
  let body = Buffer.contents b in
  let crc = Zip.Crc32.digest body in
  body ^ Printf.sprintf "crc %08lX\n" crc

let save ~path t =
  let text = render t in
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let oc = open_out_bin tmp in
  (try
     output_string oc text;
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

exception Bad of string

let load ~path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error (Io msg)
  | text -> (
      try
        let lines = String.split_on_char '\n' text in
        let lines = List.filter (fun l -> l <> "") lines in
        (* split off the trailing "crc" line; everything before it (plus
           the newline that terminated the "end" line) is CRC-covered *)
        let rec split_crc acc = function
          | [ crc_line ] -> (List.rev acc, crc_line)
          | l :: rest -> split_crc (l :: acc) rest
          | [] -> raise (Bad "empty file")
        in
        let body_lines, crc_line = split_crc [] lines in
        let expected_crc =
          match String.split_on_char ' ' crc_line with
          | [ "crc"; hex ] -> (
              match Int32.of_string_opt ("0x" ^ hex) with
              | Some v -> v
              | None -> raise (Bad "unreadable crc"))
          | _ -> raise (Bad "missing crc trailer (truncated?)")
        in
        let body = String.concat "\n" body_lines ^ "\n" in
        if Zip.Crc32.digest body <> expected_crc then
          raise (Bad "crc mismatch");
        let ints ~what n parts =
          let fail () =
            raise (Bad (Printf.sprintf "unreadable %s record" what))
          in
          if List.length parts <> n then fail ()
          else
            List.map
              (fun p -> match int_of_string_opt p with
                | Some v -> v
                | None -> fail ())
              parts
        in
        let parse_code ~what s =
          match Hamming.Code.of_string s with
          | code -> code
          | exception _ ->
              raise (Bad (Printf.sprintf "unreadable %s generator" what))
        in
        let header, records =
          match body_lines with
          | header :: rest -> (header, rest)
          | [] -> raise (Bad "empty checkpoint")
        in
        (match String.split_on_char ' ' header with
        | [ "fecsynth-checkpoint"; v ] -> (
            match int_of_string_opt v with
            | Some v when v = version -> ()
            | Some v -> raise (Bad (Printf.sprintf "version:%d" v))
            | None -> raise (Bad "unreadable version"))
        | _ -> raise (Bad "not a fecsynth checkpoint"));
        let problem = ref None in
        let iterations = ref 0 in
        let opt_bound = ref None in
        let best = ref None in
        let cexes = ref [] in
        let seen_end = ref false in
        List.iter
          (fun line ->
            if !seen_end then raise (Bad "records after end");
            match String.split_on_char ' ' line with
            | "problem" :: parts ->
                (match ints ~what:"problem" 3 parts with
                | [ d; c; m ] when d >= 1 && c >= 1 && m >= 1 ->
                    problem := Some (d, c, m)
                | _ -> raise (Bad "unreadable problem record"))
            | "iterations" :: parts -> (
                match ints ~what:"iterations" 1 parts with
                | [ n ] when n >= 0 -> iterations := n
                | _ -> raise (Bad "unreadable iterations record"))
            | "bound" :: parts -> (
                match ints ~what:"bound" 1 parts with
                | [ n ] -> opt_bound := Some n
                | _ -> raise (Bad "unreadable bound record"))
            | [ "best"; bound; code ] -> (
                match int_of_string_opt bound with
                | Some b -> best := Some (parse_code ~what:"best" code, b)
                | None -> raise (Bad "unreadable best record"))
            | [ "cex"; "d"; bits ] -> (
                match Gf2.Bitvec.of_string bits with
                | d -> cexes := Cegis.Cex_data d :: !cexes
                | exception _ -> raise (Bad "unreadable data witness"))
            | [ "cex"; "c"; code ] ->
                cexes := Cegis.Cex_candidate (parse_code ~what:"cex" code) :: !cexes
            | [ "end" ] -> seen_end := true
            | _ -> raise (Bad ("unknown record: " ^ line)))
          records;
        if not !seen_end then raise (Bad "missing end record (truncated?)");
        let data_len, check_len, min_distance =
          match !problem with
          | Some p -> p
          | None -> raise (Bad "missing problem record")
        in
        (* reject witnesses that do not fit the declared problem: learning
           them would index out of the coefficient matrix *)
        List.iter
          (fun cex ->
            match cex with
            | Cegis.Cex_data d ->
                if Gf2.Bitvec.length d <> data_len then
                  raise (Bad "data witness length mismatch")
            | Cegis.Cex_candidate code ->
                if
                  Hamming.Code.data_len code <> data_len
                  || Hamming.Code.check_len code <> check_len
                then raise (Bad "candidate shape mismatch"))
          !cexes;
        Ok
          {
            data_len;
            check_len;
            min_distance;
            iterations = !iterations;
            opt_bound = !opt_bound;
            best = !best;
            cexes = List.rev !cexes;
          }
      with Bad msg -> (
        match String.index_opt msg ':' with
        | Some i when String.sub msg 0 i = "version" ->
            Error
              (Version_mismatch
                 (int_of_string
                    (String.sub msg (i + 1) (String.length msg - i - 1))))
        | _ -> Error (Corrupt msg)))

let matches_problem t (p : Cegis.problem) =
  t.data_len = p.Cegis.data_len
  && t.check_len = p.Cegis.check_len
  && t.min_distance = p.Cegis.min_distance

(* ---------- incremental writer ---------- *)

module Writer = struct
  type w = {
    path : string;
    min_interval : float;
    mutex : Mutex.t;
    data_len : int;
    check_len : int;
    min_distance : int;
    mutable iterations : int;
    mutable opt_bound : int option;
    mutable best : (Hamming.Code.t * int) option;
    mutable cexes_rev : Cegis.cex list;
    mutable n_cexes : int;
    mutable last_write : float;
    mutable dirty : bool;
  }

  let create ?(min_interval = 0.25) ~path ~data_len ~check_len ~min_distance
      () =
    {
      path;
      min_interval;
      mutex = Mutex.create ();
      data_len;
      check_len;
      min_distance;
      iterations = 0;
      opt_bound = None;
      best = None;
      cexes_rev = [];
      n_cexes = 0;
      last_write = 0.0;
      dirty = false;
    }

  let snapshot_locked w =
    {
      data_len = w.data_len;
      check_len = w.check_len;
      min_distance = w.min_distance;
      iterations = w.iterations;
      opt_bound = w.opt_bound;
      best = w.best;
      cexes = List.rev w.cexes_rev;
    }

  let write_locked w =
    save ~path:w.path (snapshot_locked w);
    w.last_write <- Unix.gettimeofday ();
    w.dirty <- false;
    if Telemetry.enabled () then
      Telemetry.point "checkpoint.write"
        ~fields:
          [
            ("cexes", Telemetry.int w.n_cexes);
            ("iterations", Telemetry.int w.iterations);
          ]

  let maybe_write_locked w =
    if w.dirty && Unix.gettimeofday () -. w.last_write >= w.min_interval then
      write_locked w

  let with_lock w f =
    Mutex.protect w.mutex (fun () ->
        f w;
        maybe_write_locked w)

  let record_cex w cex =
    with_lock w (fun w ->
        w.cexes_rev <- cex :: w.cexes_rev;
        w.n_cexes <- w.n_cexes + 1;
        w.dirty <- true)

  let record_best w code bound =
    with_lock w (fun w ->
        match w.best with
        | Some (_, b) when b >= bound -> ()
        | _ ->
            w.best <- Some (code, bound);
            w.dirty <- true)

  let record_bound w bound =
    with_lock w (fun w ->
        if w.opt_bound <> Some bound then begin
          w.opt_bound <- Some bound;
          w.dirty <- true
        end)

  let record_iterations w n =
    with_lock w (fun w ->
        if w.iterations <> n then begin
          w.iterations <- n;
          w.dirty <- true
        end)

  let flush w =
    Mutex.protect w.mutex (fun () -> if w.dirty then write_locked w)

  let snapshot w = Mutex.protect w.mutex (fun () -> snapshot_locked w)
end
