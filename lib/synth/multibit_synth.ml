(* Two error patterns of weight <= e collide on syndromes exactly when
   their symmetric difference (weight <= 2e) is a codeword, so
   "all patterns of weight <= e distinguishable" is equivalent to
   "minimum distance >= 2e + 1".  The synthesis therefore reuses the CEGIS
   core with that distance target; the gain over the paper's §6 manual
   construction comes out of the same loop (e.g. distinguishing 2-bit
   errors at data length 4 needs only 7 check bits, not the hand-crafted
   matrix's 11). *)

let target_md distinguish =
  if distinguish < 1 then
    invalid_arg "Multibit_synth.synthesize: distinguish must be >= 1";
  (2 * distinguish) + 1

let synthesize ?timeout ~data_len ~check_len ~distinguish () =
  let md = target_md distinguish in
  match
    Cegis.synthesize ?timeout
      { Cegis.data_len; check_len; min_distance = md; extra = [] }
  with
  | Report.Synthesized (code, stats) ->
      (* cross-check the actual multi-bit property, not just the distance *)
      assert (Hamming.Multibit.distinguishes_up_to code distinguish);
      Report.Synthesized (code, stats)
  | Report.Unsat_config stats -> Report.Unsat_config stats
  | Report.Timed_out stats -> Report.Timed_out stats
  | Report.Partial (code, stats) ->
      (* anytime candidate: the multi-bit property is not verified for it,
         so no cross-check here — callers must treat it as unproven *)
      Report.Partial (code, stats)

let minimize_check_len ?timeout ~data_len ~distinguish ~check_lo ~check_hi () =
  let md = target_md distinguish in
  match
    Optimize.minimize_check_len ?timeout ~data_len ~md ~check_lo ~check_hi ()
  with
  | Report.Synthesized (r, _) ->
      Some (r.Optimize.code, r.Optimize.check_len, r.Optimize.stats)
  | Report.Unsat_config _ | Report.Timed_out _ | Report.Partial _ -> None
