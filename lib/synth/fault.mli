(** Deterministic fault injection for resilience testing.

    A fault spec enumerates {e probe sites} — named points in the stack
    that call {!probe} (directly, or through {!Sat.Solver.probe}) — and per
    site an action with an injection probability:

    - ["sat.solve"]: entry of every {!Sat.Solver.solve} call;
    - ["ctx.check"]: entry of every {!Smtlite.Ctx.check};
    - ["worker.start"]: portfolio worker (re)start, before its session is
      built;
    - ["manager.worker"]: session-manager worker loop, once per job
      pickup (the serve daemon's worker domains);
    - ["wire.read"] / ["wire.write"]: the serve event loop, before
      reading from / flushing to a client socket;
    - ["cache.read"] / ["cache.write"]: result-cache lookup and store.

    Actions: [crash] raises {!Injected}; [stall] sleeps [stall_ms];
    [interrupt] raises {!Sat.Solver.Interrupted} spuriously (the resilient
    layers detect that no genuine interrupt fired and retry);
    [torn_write] asks the {e write site} to truncate its payload mid-write
    (simulating a crash between write and rename/flush) — it only fires
    through {!probe_write}, plain {!probe} ignores it.

    Injection decisions are deterministic: each (site, action) directive
    draws from its own splitmix64 stream keyed on the spec seed, indexed by
    an atomic per-directive invocation counter — the k-th probe of a site
    makes the same choice for a given seed regardless of domain
    interleaving.

    The spec comes from the [FEC_FAULT_SPEC] environment variable
    (production code never enables injection otherwise), a comma-separated
    list of [seed=<n>], [stall_ms=<f>] and [<site>.<action>=<prob>[:max=<n>]]
    items, e.g.:

    {[FEC_FAULT_SPEC="seed=42,sat.solve.crash=0.02,worker.start.crash=1.0:max=1"]} *)

type action = Crash | Stall | Interrupt | Torn_write

type directive = {
  site : string;
  action : action;
  probability : float;  (** in [0, 1] *)
  max_injections : int option;  (** cap on injections; [None] = unlimited *)
  injected : int Atomic.t;  (** injections performed so far *)
  draws : int Atomic.t;  (** probe invocations seen (the stream index) *)
}

type spec = {
  seed : int;  (** keys every directive's random stream (default 0) *)
  stall_s : float;  (** stall duration in seconds ([stall_ms], default 2 ms) *)
  directives : directive list;
}

(** Raised by a [crash] injection; the payload is ["<site>.crash"].  Never
    raised unless a spec with a crash directive is active. *)
exception Injected of string

val action_name : action -> string

(** [parse text] parses a [FEC_FAULT_SPEC]-syntax spec. *)
val parse : string -> (spec, string) result

(** [set_spec (Some s)] activates [s] and installs the probe hook into
    {!Sat.Solver.set_probe}; [set_spec None] deactivates injection and
    removes the hook.  Call before spawning worker domains. *)
val set_spec : spec option -> unit

(** The active spec, if any. *)
val spec : unit -> spec option

(** [probe site] runs the active spec's directives for [site] — the entry
    point for probe sites outside the solver (e.g. ["worker.start"]).
    [torn_write] directives are skipped (their stream still advances).
    No-op when injection is inactive. *)
val probe : string -> unit

(** [probe_write site] is {!probe} for write sites: crash/stall/interrupt
    directives behave as usual, and a firing [torn_write] directive is
    reported as [`Torn] — the caller must then truncate its payload and
    treat the write as lost. *)
val probe_write : string -> [ `Full | `Torn ]

(** Total injections performed by the active spec so far. *)
val injection_count : unit -> int

(** [init_from_env ()] activates the spec named by [FEC_FAULT_SPEC] (once;
    later calls are no-ops; no-op when the variable is unset or empty).
    Called from {!Cegis.create_session} and {!Portfolio.synthesize} so any
    entry point honours the variable.
    @raise Failure on a malformed spec — misconfiguration is loud. *)
val init_from_env : unit -> unit
