(** Synthesis of multi-bit-error-detecting codes — the extension the
    paper's §6 sketches as future work ("add number of correctable bit
    errors as a property in the synthesizer, which may allow us to correct
    multi-bit errors using fewer check bits than the manually-crafted
    check matrix").

    The target property: every error pattern of weight 1..[e] has a
    distinct non-zero syndrome, so the decoder can identify (and repair)
    the exact pattern.  The CEGIS verifier finds two patterns with equal
    syndromes (or one with a zero syndrome); the counterexample constraint
    forces the symbolic check matrix to separate them. *)

(** [synthesize ?timeout ~data_len ~check_len ~distinguish ()] searches for
    a coefficient matrix whose code distinguishes all error patterns of
    weight up to [distinguish].
    @raise Invalid_argument if [distinguish < 1]. *)
val synthesize :
  ?timeout:float ->
  data_len:int ->
  check_len:int ->
  distinguish:int ->
  unit ->
  (Hamming.Code.t, Report.Stats.t) Report.outcome

(** [minimize_check_len ?timeout ~data_len ~distinguish ~check_lo ~check_hi ()]
    walks check lengths upward and returns the first synthesizable one —
    answering §6's question of how few check bits suffice. *)
val minimize_check_len :
  ?timeout:float ->
  data_len:int ->
  distinguish:int ->
  check_lo:int ->
  check_hi:int ->
  unit ->
  (Hamming.Code.t * int * Report.Stats.t) option
