open Spec

type task =
  | Fixed of single
  | Min_check_len of single
  | Min_set_bits of single * int
  | Max_distance of single
  | Weighted_mapping of Weighted.gen_shape * Weighted.gen_shape

and single = {
  data_len : int;
  check_lo : int;
  check_hi : int;
  md : int;
  len1_max : int option;
  fixed_bits : (int * int * bool) list;
}

type outcome =
  | Codes of Hamming.Code.t list * Report.Stats.t
  | Weighted_result of Weighted.result
  | Setbits_walk of Optimize.setbits_step list
  | Partial_code of Hamming.Code.t * Report.Stats.t
  | Unsat of string
  | Timeout of string
  | No_solution of string

(* constant folding for the config-level arithmetic of specifications *)
let rec const_int : Ast.expr -> int option = function
  | Ast.Int n -> Some n
  | Ast.Real r when Float.is_integer r -> Some (int_of_float r)
  | Ast.Real _ -> None
  | Ast.Add (a, b) -> Option.bind (const_int a) (fun x -> Option.map (( + ) x) (const_int b))
  | Ast.Sub (a, b) ->
      Option.bind (const_int a) (fun x -> Option.map (fun y -> x - y) (const_int b))
  | Ast.Mul (a, b) -> Option.bind (const_int a) (fun x -> Option.map (( * ) x) (const_int b))
  | Ast.Neg a -> Option.map (fun x -> -x) (const_int a)
  | _ -> None

(* per-generator accumulated facts *)
type gen_facts = {
  mutable data_len_ : int option;
  mutable c_lo : int;
  mutable c_hi : int;
  mutable md_ : int option;
  mutable len1_max_ : int option;
  mutable bits : (int * int * bool) list;
}

let fresh_facts () =
  { data_len_ = None; c_lo = 1; c_hi = 16; md_ = None; len1_max_ = None; bits = [] }

exception Unsupported of string

let unsupported fmt = Printf.ksprintf (fun m -> raise (Unsupported m)) fmt

let analyze prop =
  try
    let conj = Ast.conjuncts prop in
    let len_g = ref 1 in
    let facts : (int, gen_facts) Hashtbl.t = Hashtbl.create 4 in
    let get_facts i =
      match Hashtbl.find_opt facts i with
      | Some f -> f
      | None ->
          let f = fresh_facts () in
          Hashtbl.add facts i f;
          f
    in
    let objectives = ref [] in
    let gen_index e =
      match const_int e with
      | Some i when i >= 0 -> i
      | _ -> unsupported "generator index must be a constant"
    in
    let rec handle_cmp op a b =
      match (a, b) with
      | Ast.Len_g, rhs -> (
          match (op, const_int rhs) with
          | Ast.Eq, Some n when n >= 1 -> len_g := n
          | _ -> unsupported "len_G must be constrained as len_G = <n>")
      | Ast.Func (Ast.Len_d, g), rhs -> (
          match (op, const_int rhs) with
          | Ast.Eq, Some n when n >= 1 -> (get_facts (gen_index g)).data_len_ <- Some n
          | _ -> unsupported "len_d must be fixed: len_d(G[i]) = <n>")
      | Ast.Func (Ast.Len_c, g), rhs -> (
          let f = get_facts (gen_index g) in
          match (op, const_int rhs) with
          | Ast.Eq, Some n ->
              f.c_lo <- n;
              f.c_hi <- n
          | Ast.Le, Some n -> f.c_hi <- min f.c_hi n
          | Ast.Lt, Some n -> f.c_hi <- min f.c_hi (n - 1)
          | Ast.Ge, Some n -> f.c_lo <- max f.c_lo n
          | Ast.Gt, Some n -> f.c_lo <- max f.c_lo (n + 1)
          | _ -> unsupported "len_c bounds must compare against constants")
      | Ast.Func (Ast.Md, g), rhs -> (
          let f = get_facts (gen_index g) in
          match (op, const_int rhs) with
          | (Ast.Eq | Ast.Ge), Some m when m >= 1 -> f.md_ <- Some m
          | Ast.Gt, Some m -> f.md_ <- Some (m + 1)
          | _ -> unsupported "md must be constrained as md(G[i]) = <m> or >= <m>")
      | Ast.Func (Ast.Len_1, g), rhs -> (
          let f = get_facts (gen_index g) in
          match (op, const_int rhs) with
          | Ast.Le, Some n -> f.len1_max_ <- Some n
          | Ast.Lt, Some n -> f.len1_max_ <- Some (n - 1)
          | _ -> unsupported "len_1 supports only upper bounds (<=, <)")
      | Ast.Gen_entry (g, r, c), rhs -> (
          let f = get_facts (gen_index g) in
          match (op, const_int r, const_int c, const_int rhs) with
          | Ast.Eq, Some ri, Some ci, Some v when v = 0 || v = 1 ->
              f.bits <- (ri, ci, v = 1) :: f.bits
          | _ -> unsupported "generator entries must be pinned: G[i](r,c) = 0|1")
      | lhs, rhs when lhs = rhs && op = Ast.Eq -> ()
      | _ -> (
          (* allow the symmetric orientation: <const> <op> <fn> *)
          match (a, b) with
          | (Ast.Int _ | Ast.Real _), _ ->
              let flip = function
                | Ast.Lt -> Ast.Gt
                | Ast.Gt -> Ast.Lt
                | Ast.Le -> Ast.Ge
                | Ast.Ge -> Ast.Le
                | c -> c
              in
              handle_cmp (flip op) b a
          | _ -> unsupported "unsupported comparison %s" (Ast.prop_to_string (Ast.Cmp (op, a, b))))
    and handle = function
      | Ast.True -> ()
      | Ast.False -> unsupported "specification is trivially false"
      | Ast.Cmp (op, a, b) -> handle_cmp op a b
      | Ast.Minimal e -> objectives := `Minimal e :: !objectives
      | Ast.Maximal e -> objectives := `Maximal e :: !objectives
      | Ast.And (a, b) ->
          handle a;
          handle b
      | (Ast.Or _ | Ast.Imp _ | Ast.Not _) as p ->
          unsupported "only conjunctive specifications are supported: %s"
            (Ast.prop_to_string p)
    in
    List.iter handle conj;
    let objectives = List.rev !objectives in
    let single_of i =
      let f = get_facts i in
      let data_len =
        match f.data_len_ with
        | Some n -> n
        | None -> unsupported "len_d(G[%d]) must be fixed" i
      in
      let md =
        match f.md_ with
        | Some m -> m
        | None -> unsupported "md(G[%d]) must be constrained" i
      in
      {
        data_len;
        check_lo = f.c_lo;
        check_hi = f.c_hi;
        md;
        len1_max = f.len1_max_;
        fixed_bits = f.bits;
      }
    in
    if !len_g = 1 then begin
      let s = single_of 0 in
      match objectives with
      | [] -> Ok (Fixed s)
      | [ `Minimal (Ast.Func (Ast.Len_c, _)) ] -> Ok (Min_check_len s)
      | [ `Minimal (Ast.Func (Ast.Len_1, _)) ] ->
          let start = Option.value s.len1_max ~default:(s.data_len * s.check_hi) in
          Ok (Min_set_bits (s, start))
      | [ `Maximal (Ast.Func (Ast.Md, _)) ] -> Ok (Max_distance s)
      | _ -> Error "unsupported objective for a single generator"
    end
    else if !len_g = 2 then begin
      match objectives with
      | [ `Minimal Ast.Sum_w ] ->
          let shape i =
            let f = get_facts i in
            if f.c_lo <> f.c_hi then
              unsupported "weighted synthesis needs fixed len_c(G[%d])" i;
            match f.md_ with
            | Some m -> { Weighted.check_len = f.c_lo; min_distance = m }
            | None -> unsupported "md(G[%d]) must be constrained" i
          in
          Ok (Weighted_mapping (shape 0, shape 1))
      | _ -> Error "two-generator specifications support only minimal(sum_w)"
    end
    else Error "more than two generators are not supported"
  with Unsupported msg -> Error msg

(* translate pinned generator entries into coefficient-matrix constraints;
   language column indices cover the whole generator (identity included) *)
let fixed_bit_constraints s =
  List.map
    (fun (r, c, v) ~entry ->
      if r < 0 || r >= s.data_len then
        invalid_arg (Printf.sprintf "pinned entry row %d out of range" r)
      else if c < s.data_len then
        (* identity part: constraint must agree with I_k *)
        if (r = c) = v then Smtlite.Expr.true_ else Smtlite.Expr.false_
      else
        let col = c - s.data_len in
        let e = entry ~row:r ~col in
        if v then e else Smtlite.Expr.not_ e)
    s.fixed_bits

let len1_constraint s =
  match s.len1_max with
  | None -> []
  | Some bound ->
      [
        (fun ~entry ->
          let bits = ref [] in
          for i = 0 to s.data_len - 1 do
            for j = 0 to s.check_hi - 1 do
              bits := entry ~row:i ~col:j :: !bits
            done
          done;
          Smtlite.Card.at_most Smtlite.Card.Sequential !bits bound);
      ]

let run_single ?timeout ?jobs ?on_report ?(interrupt = fun () -> false)
    ?(initial = []) ?(on_cex = fun (_ : Cegis.cex) -> ()) s =
  (* walk the check-length interval upward; with a fixed length this is a
     single configuration *)
  let synthesize ~initial problem =
    match jobs with
    | None ->
        Cegis.synthesize ?timeout ~interrupt ~initial
          ~on_progress:(fun _ cex -> on_cex cex)
          problem
    | Some jobs ->
        (* portfolio path: race [jobs] configurations, report per-worker
           statistics through the callback, collapse to the sequential
           outcome shape with worker-summed statistics (elapsed becomes the
           race's wall clock rather than summed solver time) *)
        let stats_of (report : Portfolio.report) =
          {
            report.Portfolio.totals with
            Report.Stats.elapsed = report.Portfolio.wall_clock;
          }
        in
        let collapse report outcome =
          (match on_report with Some f -> f report | None -> ());
          outcome
        in
        (match
           Portfolio.synthesize ?timeout ~jobs ~interrupt ~initial ~on_cex
             problem
         with
        | Report.Synthesized (code, report) ->
            collapse report (Report.Synthesized (code, stats_of report))
        | Report.Unsat_config report ->
            collapse report (Report.Unsat_config (stats_of report))
        | Report.Timed_out report ->
            collapse report (Report.Timed_out (stats_of report))
        | Report.Partial (code, report) ->
            collapse report (Report.Partial (code, stats_of report)))
  in
  (* resumed counterexamples must fit the configuration they are replayed
     into: raw data witnesses transfer to any check length, blocked
     candidates only to their own dimensions *)
  let fits c = function
    | Cegis.Cex_data d -> Gf2.Bitvec.length d = s.data_len
    | Cegis.Cex_candidate code ->
        Hamming.Code.data_len code = s.data_len
        && Hamming.Code.check_len code = c
  in
  let rec go c =
    if c > s.check_hi then Unsat "no check length in range admits the spec"
    else if interrupt () then Timeout "interrupted"
    else
      let extra =
        fixed_bit_constraints { s with check_hi = c } @ len1_constraint { s with check_hi = c }
      in
      let problem =
        { Cegis.data_len = s.data_len; check_len = c; min_distance = s.md; extra }
      in
      match synthesize ~initial:(List.filter (fits c) initial) problem with
      | Report.Synthesized (code, stats) -> Codes ([ code ], stats)
      | Report.Unsat_config _ -> go (c + 1)
      | Report.Timed_out _ -> Timeout "synthesis budget exhausted"
      | Report.Partial (code, stats) ->
          (* budget or interrupt fired with a refuted-but-best candidate in
             hand: surface it instead of discarding the work *)
          Partial_code (code, stats)
  in
  go s.check_lo

let run ?timeout ?weights ?p ?jobs ?on_report ?interrupt ?initial ?on_cex prop
    =
  match analyze prop with
  | Error msg -> No_solution msg
  | Ok (Fixed s) | Ok (Min_check_len s) ->
      run_single ?timeout ?jobs ?on_report ?interrupt ?initial ?on_cex s
  | Ok (Max_distance s) ->
      (* grow the distance target until the configuration goes UNSAT; a
         fixed check length is required so "maximal" is well-defined *)
      if s.check_lo <> s.check_hi then
        No_solution "maximal(md) needs a fixed len_c"
      else begin
        let rec grow md best =
          let problem =
            {
              Cegis.data_len = s.data_len;
              check_len = s.check_lo;
              min_distance = md;
              extra = fixed_bit_constraints s @ len1_constraint s;
            }
          in
          match Cegis.synthesize ?timeout ?interrupt problem with
          | Report.Synthesized (code, stats) -> grow (md + 1) (Some (code, stats))
          | Report.Unsat_config _ | Report.Timed_out _ | Report.Partial _ -> best
        in
        match grow s.md None with
        | Some (code, stats) -> Codes ([ code ], stats)
        | None -> Unsat "even the base distance is unsatisfiable"
      end
  | Ok (Min_set_bits (s, start_bound)) -> (
      if s.check_lo <> s.check_hi then
        No_solution "set-bit minimization needs a fixed len_c"
      else
        match
          Optimize.minimize_set_bits ?timeout ?interrupt ~data_len:s.data_len
            ~check_len:s.check_lo ~md:s.md ~start_bound ~stop_bound:0 ()
        with
        | [] -> Unsat "no generator within the starting bound"
        | steps -> Setbits_walk steps)
  | Ok (Weighted_mapping (g0, g1)) -> (
      match weights with
      | None -> No_solution "weighted synthesis requires weights"
      | Some weights -> (
          match Weighted.optimize ?timeout ?p ~weights g0 g1 with
          | Some r -> Weighted_result r
          | None -> No_solution "no mapping found within the initial bound"))
